// Bootstrap registry: the map publishes only once every expected node id
// registered, late hellos are answered immediately from the completed map
// (with re-registration overwriting the node's entry), and fetch_map's
// retry loop survives a registry that starts late or restarts mid-
// bootstrap — the orderings a real launch script produces.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/registry.hpp"

namespace ci::net {
namespace {

constexpr Nanos kDeadlineBudget = 20 * kSecond;

// One node's registration, run to completion on its own thread.
struct Fetcher {
  std::vector<Endpoint> map;
  bool ok = false;
  std::thread thread;

  void start(const Endpoint& registry, consensus::NodeId self, std::uint16_t port) {
    thread = std::thread([this, registry, self, port] {
      ok = fetch_map(registry, self, port, now_nanos() + kDeadlineBudget, nullptr,
                     &map);
    });
  }
  void join() { thread.join(); }
};

TEST(Registry, PublishesTheFullMapOnceEveryNodeRegistered) {
  Registry reg(Endpoint{"127.0.0.1", 0}, 3);
  ASSERT_TRUE(reg.ok());
  ASSERT_NE(reg.endpoint().port, 0);

  Fetcher f[3];
  for (consensus::NodeId i = 0; i < 3; ++i) {
    f[i].start(reg.endpoint(), i, static_cast<std::uint16_t>(10000 + i));
  }
  for (auto& x : f) x.join();

  for (consensus::NodeId i = 0; i < 3; ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    ASSERT_TRUE(f[i].ok);
    ASSERT_EQ(f[i].map.size(), 3u);
    for (consensus::NodeId j = 0; j < 3; ++j) {
      // Loopback registrations resolve to loopback endpoints carrying each
      // node's declared listen port.
      EXPECT_EQ(f[i].map[static_cast<std::size_t>(j)].host, "127.0.0.1");
      EXPECT_EQ(f[i].map[static_cast<std::size_t>(j)].port, 10000 + j);
    }
  }
}

TEST(Registry, DuplicateIdDoesNotPublishEarly) {
  // Two hellos from the SAME id must not satisfy expected=2: the second
  // overwrites, and the map stays unpublished until a distinct id arrives.
  Registry reg(Endpoint{"127.0.0.1", 0}, 2);
  ASSERT_TRUE(reg.ok());

  Fetcher first;
  first.start(reg.endpoint(), 0, 11000);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Re-register node 0 on a fresh port while the first is parked. This
  // cannot publish; both parked connections wait for node 1.
  Fetcher second;
  second.start(reg.endpoint(), 0, 11001);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Fetcher third;
  third.start(reg.endpoint(), 1, 11002);
  first.join();
  second.join();
  third.join();

  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  ASSERT_TRUE(third.ok);
  // Everyone got the map, and node 0's entry is the LAST registration.
  for (const Fetcher* x : {&first, &second, &third}) {
    ASSERT_EQ(x->map.size(), 2u);
    EXPECT_EQ(x->map[0].port, 11001);
    EXPECT_EQ(x->map[1].port, 11002);
  }
}

TEST(Registry, LateHelloIsAnsweredImmediatelyAndOverwrites) {
  Registry reg(Endpoint{"127.0.0.1", 0}, 2);
  ASSERT_TRUE(reg.ok());

  Fetcher f[2];
  f[0].start(reg.endpoint(), 0, 12000);
  f[1].start(reg.endpoint(), 1, 12001);
  f[0].join();
  f[1].join();
  ASSERT_TRUE(f[0].ok && f[1].ok);

  // A restarted node 0 re-registers on a fresh port AFTER publication: it
  // must be answered from the completed map without waiting, and its new
  // endpoint replaces the stale one for this and every future fetch.
  std::vector<Endpoint> late;
  ASSERT_TRUE(fetch_map(reg.endpoint(), 0, 12042, now_nanos() + kDeadlineBudget,
                        nullptr, &late));
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].port, 12042);
  EXPECT_EQ(late[1].port, 12001);

  std::vector<Endpoint> refetch;
  ASSERT_TRUE(fetch_map(reg.endpoint(), 1, 12001, now_nanos() + kDeadlineBudget,
                        nullptr, &refetch));
  ASSERT_EQ(refetch.size(), 2u);
  EXPECT_EQ(refetch[0].port, 12042);
}

TEST(Registry, FetchSurvivesARegistryRestartMidBootstrap) {
  // Node 0 registers with registry A and parks; A dies before publication
  // (its parked connections close). fetch_map's retry loop must redo the
  // whole connect+hello exchange against the replacement registry B on the
  // same endpoint and still come back with the full map.
  Endpoint at;
  Fetcher f0;
  {
    Registry a(Endpoint{"127.0.0.1", 0}, 2);
    ASSERT_TRUE(a.ok());
    at = a.endpoint();
    f0.start(at, 0, 13000);
    // Let node 0's hello land and park before the registry dies.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }  // A's destructor stops the serve loop and drops the parked connection.

  // tcp_listen sets SO_REUSEADDR, so B can rebind A's port right away.
  Registry b(at, 2);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b.endpoint().port, at.port);

  Fetcher f1;
  f1.start(at, 1, 13001);
  f0.join();
  f1.join();

  ASSERT_TRUE(f0.ok);
  ASSERT_TRUE(f1.ok);
  for (const Fetcher* x : {&f0, &f1}) {
    ASSERT_EQ(x->map.size(), 2u);
    EXPECT_EQ(x->map[0].port, 13000);
    EXPECT_EQ(x->map[1].port, 13001);
  }
}

TEST(Registry, CancelAbortsAParkedFetch) {
  Registry reg(Endpoint{"127.0.0.1", 0}, 2);  // never completes: only 1 registers
  ASSERT_TRUE(reg.ok());

  std::atomic<bool> cancel{false};
  std::vector<Endpoint> map;
  std::thread t([&] {
    EXPECT_FALSE(fetch_map(reg.endpoint(), 0, 14000, now_nanos() + kDeadlineBudget,
                           &cancel, &map));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true);
  t.join();  // must return promptly instead of burning the whole deadline
}

}  // namespace
}  // namespace ci::net
