// Length-prefixed TCP framing: the reassembler must re-discover frame
// boundaries no matter how the kernel sliced the byte stream — whole
// frames, several merged into one recv(), a frame torn at EVERY possible
// byte position, and one-byte dribble — and must reject the two prefixes
// that make resynchronization impossible (length 0, length beyond the
// codec's max frame). Plus the producer half: SendRing wrap-around and
// RingFrameWriter laying [prefix][frame bytes] that the reassembler then
// reads back intact.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/send_ring.hpp"

namespace ci::net {
namespace {

constexpr std::uint32_t kMaxFrame = 256;

// A deterministic payload frames are filled from, so a reassembled frame's
// bytes can be checked, not just its length.
std::vector<unsigned char> payload(std::uint32_t len, unsigned char salt) {
  std::vector<unsigned char> out(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    out[i] = static_cast<unsigned char>(salt + i * 7);
  }
  return out;
}

std::vector<unsigned char> prefixed(const std::vector<unsigned char>& frame) {
  std::vector<unsigned char> out(kLenPrefixBytes + frame.size());
  put_len_prefix(out.data(), static_cast<std::uint32_t>(frame.size()));
  std::memcpy(out.data() + kLenPrefixBytes, frame.data(), frame.size());
  return out;
}

// Collects every frame the reassembler completes.
struct Sink {
  std::vector<std::vector<unsigned char>> frames;
  auto cb() {
    return [this](const unsigned char* p, std::uint32_t len) {
      frames.emplace_back(p, p + len);
    };
  }
};

TEST(LenPrefix, RoundTripsEveryByteOrder) {
  unsigned char buf[kLenPrefixBytes];
  for (const std::uint32_t v : {0u, 1u, 0x12u, 0x1234u, 0x123456u, 0x12345678u,
                                0xFFFFFFFFu}) {
    put_len_prefix(buf, v);
    EXPECT_EQ(get_len_prefix(buf), v);
  }
  // Explicitly little-endian: the low byte goes on the wire first.
  put_len_prefix(buf, 0x04030201u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(FrameReassembler, MergedFramesInOneRecvArriveInOrder) {
  const auto a = payload(5, 1), b = payload(32, 2), c = payload(kMaxFrame, 3);
  std::vector<unsigned char> stream;
  for (const auto* f : {&a, &b, &c}) {
    const auto p = prefixed(*f);
    stream.insert(stream.end(), p.begin(), p.end());
  }

  FrameReassembler r(kMaxFrame);
  Sink sink;
  ASSERT_TRUE(r.feed(stream.data(), stream.size(), sink.cb()));
  ASSERT_EQ(sink.frames.size(), 3u);
  EXPECT_EQ(sink.frames[0], a);
  EXPECT_EQ(sink.frames[1], b);
  EXPECT_EQ(sink.frames[2], c);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(FrameReassembler, TornAtEveryBytePosition) {
  // Two frames; cut the stream at every possible boundary and feed the two
  // halves as separate recv()s. The frames must come out identical no
  // matter where the tear landed (inside a prefix, inside a body, at a
  // frame edge).
  const auto a = payload(11, 5), b = payload(27, 6);
  std::vector<unsigned char> stream = prefixed(a);
  const auto pb = prefixed(b);
  stream.insert(stream.end(), pb.begin(), pb.end());

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    FrameReassembler r(kMaxFrame);
    Sink sink;
    ASSERT_TRUE(r.feed(stream.data(), cut, sink.cb()));
    ASSERT_TRUE(r.feed(stream.data() + cut, stream.size() - cut, sink.cb()));
    ASSERT_EQ(sink.frames.size(), 2u);
    EXPECT_EQ(sink.frames[0], a);
    EXPECT_EQ(sink.frames[1], b);
    EXPECT_EQ(r.pending(), 0u);
  }
}

TEST(FrameReassembler, OneByteDribbleReassembles) {
  const auto a = payload(19, 9), b = payload(1, 10);
  std::vector<unsigned char> stream = prefixed(a);
  const auto pb = prefixed(b);
  stream.insert(stream.end(), pb.begin(), pb.end());

  FrameReassembler r(kMaxFrame);
  Sink sink;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(r.feed(stream.data() + i, 1, sink.cb()));
    // The carried partial never exceeds one prefixed frame.
    EXPECT_LE(r.pending(), kLenPrefixBytes + static_cast<std::size_t>(kMaxFrame));
  }
  ASSERT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(sink.frames[0], a);
  EXPECT_EQ(sink.frames[1], b);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(FrameReassembler, PartialTailCarriesAcrossFeeds) {
  const auto a = payload(8, 3), b = payload(40, 4);
  std::vector<unsigned char> stream = prefixed(a);
  const auto pb = prefixed(b);
  stream.insert(stream.end(), pb.begin(), pb.end());

  // First recv holds frame a plus half of b's body.
  const std::size_t half = prefixed(a).size() + kLenPrefixBytes + 20;
  FrameReassembler r(kMaxFrame);
  Sink sink;
  ASSERT_TRUE(r.feed(stream.data(), half, sink.cb()));
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], a);
  EXPECT_EQ(r.pending(), kLenPrefixBytes + 20u);  // b's prefix + 20 body bytes

  ASSERT_TRUE(r.feed(stream.data() + half, stream.size() - half, sink.cb()));
  ASSERT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(sink.frames[1], b);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(FrameReassembler, ZeroLengthPrefixIsFatal) {
  unsigned char buf[kLenPrefixBytes];
  put_len_prefix(buf, 0);
  FrameReassembler r(kMaxFrame);
  Sink sink;
  EXPECT_FALSE(r.feed(buf, sizeof(buf), sink.cb()));
  EXPECT_TRUE(sink.frames.empty());
}

TEST(FrameReassembler, OversizePrefixIsFatal) {
  unsigned char buf[kLenPrefixBytes];
  put_len_prefix(buf, kMaxFrame + 1);
  FrameReassembler r(kMaxFrame);
  Sink sink;
  EXPECT_FALSE(r.feed(buf, sizeof(buf), sink.cb()));
}

TEST(FrameReassembler, OversizePrefixTornAcrossFeedsIsStillFatal) {
  // The bad length is only discoverable once the carried-over partial
  // accumulates all four prefix bytes — the reject must fire there too.
  unsigned char buf[kLenPrefixBytes];
  put_len_prefix(buf, kMaxFrame + 1);
  FrameReassembler r(kMaxFrame);
  Sink sink;
  ASSERT_TRUE(r.feed(buf, 2, sink.cb()));
  EXPECT_EQ(r.pending(), 2u);
  EXPECT_FALSE(r.feed(buf + 2, 2, sink.cb()));
}

TEST(SendRing, WrapAroundPreservesBytes) {
  SendRing ring(64);  // power of two already
  ASSERT_EQ(ring.capacity(), 64u);

  // Fill-drain twice past the capacity so head/tail wrap the index mask.
  std::uint64_t produced = 0, consumed = 0;
  std::vector<unsigned char> out;
  for (int round = 0; round < 5; ++round) {
    const auto chunk = payload(40, static_cast<unsigned char>(round));
    ASSERT_GE(ring.free(), chunk.size());
    ring.push(chunk.data(), chunk.size());
    produced += chunk.size();
    while (ring.readable() > 0) {
      std::size_t n = 0;
      const unsigned char* p = ring.peek(&n);
      ASSERT_GT(n, 0u);
      out.insert(out.end(), p, p + n);
      ring.consume(n);
      consumed += n;
    }
  }
  EXPECT_EQ(produced, consumed);
  // Every byte came out in order: re-derive the expected concatenation.
  std::vector<unsigned char> expect;
  for (int round = 0; round < 5; ++round) {
    const auto chunk = payload(40, static_cast<unsigned char>(round));
    expect.insert(expect.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(out, expect);
}

TEST(RingFrameWriter, LaysAPrefixedFrameTheReassemblerReadsBack) {
  SendRing ring(1 << 10);
  const auto body = payload(37, 8);
  {
    RingFrameWriter w(&ring, static_cast<std::uint32_t>(body.size()));
    // Split the appends, as the codec does field by field.
    w.append(body.data(), 10);
    w.append(body.data() + 10, body.size() - 10);
    w.finish();
  }
  ASSERT_EQ(ring.readable(), kLenPrefixBytes + body.size());

  std::size_t n = 0;
  const unsigned char* p = ring.peek(&n);
  FrameReassembler r(kMaxFrame);
  Sink sink;
  ASSERT_TRUE(r.feed(p, n, sink.cb()));
  ring.consume(n);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0], body);
}

}  // namespace
}  // namespace ci::net
