// Leader kill over real sockets: mid-run, the leader's NetNode drops every
// connection and stops — from its peers' point of view the process died
// (EOF, not an error code). The mesh must take over and finish the full
// client quota, and no command acked before OR after the kill may be lost:
// an ack means the command was replicated, so it must survive into the
// decided log the remaining replicas agree on. This is the socket-level
// twin of the simulator's slow-leader FaultPlan sweeps — fail-stop instead
// of fail-slow, which only a real transport can express.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "core/cluster_spec.hpp"
#include "net/net_cluster.hpp"

namespace ci::net {
namespace {

using consensus::Command;
using core::Backend;
using core::ClusterSpec;
using core::Protocol;
using core::RunResult;

constexpr std::uint64_t kQuota = 40;
constexpr std::int32_t kClients = 2;
constexpr std::uint64_t kKillAfter = 20;  // commits before the leader dies

class LeaderKill : public ::testing::TestWithParam<Protocol> {};

TEST_P(LeaderKill, NoAckedCommandLostAcrossAFailStopLeader) {
  ClusterSpec o;
  o.apply_backend_profile(Backend::kNet);
  o.protocol = GetParam();
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kQuota;
  o.seed = 37;
  o.engine.batch.max_commands = 8;

  NetCluster c(o);
  c.start();

  // Let the mesh commit a batch's worth of real traffic, then fail-stop
  // the initial leader (replica 0 is transport node 0 under group-major
  // placement) while requests are in flight.
  const Nanos kill_deadline = now_nanos() + 30 * kSecond;
  while (c.live_committed() < kKillAfter && now_nanos() < kill_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(c.live_committed(), kKillAfter) << "mesh never got off the ground";
  c.kill_node(0);

  // The survivors must detect the silence, take over, and finish the
  // remaining quota without the dead node.
  c.drive_until(now_nanos() + 60 * kSecond);
  c.stop();
  const RunResult r = c.collect();
  ASSERT_TRUE(c.clients_done()) << "quota stalled after the leader kill";
  EXPECT_TRUE(r.consistent);
  EXPECT_NE(c.deployment().replica_engine(1)->believed_leader(), 0)
      << "nobody took over from the killed leader";

  // Every acked command survived: client i was acked for seqs
  // 1..committed(), and each of those (client, seq) pairs must appear in
  // the decided log (duplicates are legal — a retry can straddle the kill
  // — the executor's dedup applies them once).
  std::set<std::pair<consensus::NodeId, std::uint32_t>> decided;
  for (const Command& cmd : c.deployment().recorder().decided_sequence()) {
    if (cmd.client != consensus::kNoNode) decided.emplace(cmd.client, cmd.seq);
  }
  for (std::int32_t i = 0; i < c.client_count(); ++i) {
    const consensus::NodeId client_node = o.num_replicas + i;
    const std::uint64_t committed = c.client(i)->committed();
    EXPECT_EQ(committed, kQuota);
    for (std::uint32_t s = 1; s <= committed; ++s) {
      EXPECT_TRUE(decided.count({client_node, s}))
          << "client " << client_node << " was acked for seq " << s
          << " but the command is not in the decided log";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LeaderKill,
                         ::testing::Values(Protocol::kMultiPaxos, Protocol::kOnePaxos),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return std::string(info.param == Protocol::kMultiPaxos
                                                  ? "MultiPaxos"
                                                  : "OnePaxos");
                         });

// Killing a FOLLOWER must barely register: the leader keeps committing
// through the remaining majority and the quota completes.
TEST(FollowerKill, MajorityKeepsCommitting) {
  ClusterSpec o;
  o.apply_backend_profile(Backend::kNet);
  o.protocol = Protocol::kMultiPaxos;
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kQuota;
  o.seed = 41;

  NetCluster c(o);
  c.start();
  const Nanos kill_deadline = now_nanos() + 30 * kSecond;
  while (c.live_committed() < kKillAfter && now_nanos() < kill_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(c.live_committed(), kKillAfter);
  c.kill_node(2);  // a follower

  c.drive_until(now_nanos() + 60 * kSecond);
  c.stop();
  const RunResult r = c.collect();
  ASSERT_TRUE(c.clients_done()) << "quota stalled after a follower kill";
  EXPECT_TRUE(r.consistent);
  for (std::int32_t i = 0; i < c.client_count(); ++i) {
    EXPECT_EQ(c.client(i)->committed(), kQuota);
  }
}

}  // namespace
}  // namespace ci::net
