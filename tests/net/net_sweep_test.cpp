// The three-way shape check: one spec through harness::sweep_diff on
// {sim, rt, net} at once — consistency, liveness, exact quota completion,
// and order-of-magnitude message amortization must agree across all three
// runtimes, and the net run must report honest socket traffic (bytes
// including the length prefix). This is the check `--sweep-diff` and
// bench/sweep_diff gate CI on, pinned here as a unit test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cluster_harness.hpp"

namespace ci::harness {
namespace {

using core::Protocol;

TEST(ThreeWaySweep, SimRtAndNetAgreeOnShape) {
  ClusterSpec o;
  o.protocol = Protocol::kMultiPaxos;
  o.num_replicas = 3;
  o.num_clients = 2;
  o.workload.requests_per_client = 25;
  o.seed = 43;
  o.engine.batch.max_commands = 8;

  RunPlan plan;
  plan.duration = 20 * kSecond;  // the quota ends each run long before this
  plan.max_wall = 60 * kSecond;

  const std::vector<Backend> backends = {Backend::kSim, Backend::kRt, Backend::kNet};
  const SweepDiffN d = sweep_diff(backends, ShardSpec(o), plan);

  for (const std::string& m : d.mismatches) ADD_FAILURE() << m;
  EXPECT_TRUE(d.ok());
  ASSERT_EQ(d.runs.size(), backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    SCOPED_TRACE(core::backend_name(backends[i]));
    EXPECT_EQ(d.runs[i].backend, backends[i]);  // order preserved
    const RunResult& r = d.runs[i].result;
    EXPECT_TRUE(r.consistent);
    EXPECT_EQ(r.committed, 50u);
    EXPECT_GT(r.total_messages, 0u);
    EXPECT_GT(r.total_bytes, 0u);
  }

  // The net row's bytes are socket bytes: every frame ships a 4-byte
  // length prefix on top of the codec bytes sim counts, so the per-message
  // average must clear that floor.
  const RunResult& net = d.runs[2].result;
  EXPECT_GT(net.total_bytes, 4 * net.total_messages);
}

TEST(ThreeWaySweep, LegacyTwoWayStillMapsSimAndRt) {
  ClusterSpec o;
  o.protocol = Protocol::kOnePaxos;
  o.num_replicas = 3;
  o.num_clients = 2;
  o.workload.requests_per_client = 15;
  o.seed = 47;

  RunPlan plan;
  plan.duration = 20 * kSecond;
  plan.max_wall = 60 * kSecond;

  const SweepDiff d = sweep_diff(ShardSpec(o), plan);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.sim.committed, 30u);
  EXPECT_EQ(d.rt.committed, 30u);
}

}  // namespace
}  // namespace ci::harness
