// Loopback-mesh parity vs the simulator: the same ShardSpec runs under
// sim::SimCluster and net::NetCluster across {MultiPaxos, 1Paxos} x groups
// {1, 4} x batch {1, 64}, and the socket mesh must reproduce what the
// deterministic backend proved: every client's full ack quota, identical
// per-client acked command sequences (first decisions in seq order — the
// socket mesh may legally re-decide a retry, the executor dedups), cross-
// replica agreement, and a dense private instance space per group. This is
// the adapter claim made testable: frames crossing real sockets change
// nothing the protocol can observe.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/cluster_harness.hpp"
#include "net/net_cluster.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::harness {
namespace {

using consensus::Command;
using consensus::GroupId;
using consensus::NodeId;
using core::AgreementRecorder;
using core::Placement;
using core::Protocol;

constexpr std::uint64_t kQuota = 12;
constexpr std::int32_t kClients = 2;

ShardSpec mesh_spec(Protocol p, Backend backend, std::int32_t groups,
                    std::int32_t batch) {
  ClusterSpec o;
  o.apply_backend_profile(backend);
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kQuota;
  o.seed = 31;
  o.engine.batch.max_commands = batch;
  return ShardSpec(o, groups, Placement::kGroupMajor);
}

// Per-client FIRST-decision seq sequences from a group's recorder — the
// backend-comparable form: duplicates from socket-level retries collapse
// to the first occurrence, which must land in seq order on any backend.
std::map<NodeId, std::vector<std::uint32_t>> first_decided_seqs(
    const AgreementRecorder& rec) {
  std::map<NodeId, std::vector<std::uint32_t>> out;
  std::map<NodeId, std::vector<bool>> seen;
  for (const Command& cmd : rec.decided_sequence()) {
    if (cmd.client == consensus::kNoNode) continue;
    auto& s = seen[cmd.client];
    if (s.size() <= cmd.seq) s.resize(cmd.seq + 1, false);
    if (s[cmd.seq]) continue;
    s[cmd.seq] = true;
    out[cmd.client].push_back(cmd.seq);
  }
  return out;
}

// The invariants every group must satisfy on either backend.
void check_group(core::Deployment& dep, std::int32_t batch_cap) {
  for (std::int32_t i = 0; i < dep.client_count(); ++i) {
    EXPECT_EQ(dep.client(i)->committed(), kQuota) << "client " << i << " ack count";
  }
  const AgreementRecorder& rec = dep.recorder();
  EXPECT_TRUE(rec.consistent());
  const auto& decided = rec.decided();
  ASSERT_FALSE(decided.empty());
  EXPECT_EQ(decided.begin()->first, 0);  // private space starts at 0
  EXPECT_EQ(decided.rbegin()->first,
            static_cast<consensus::Instance>(decided.size()) - 1);  // dense
  for (const auto& [in, slots] : decided) {
    EXPECT_GE(slots.size(), 1u);
    EXPECT_LE(slots.size(), static_cast<std::size_t>(batch_cap)) << "instance " << in;
  }
}

class NetSimParity
    : public ::testing::TestWithParam<std::tuple<Protocol, std::int32_t, std::int32_t>> {
};

TEST_P(NetSimParity, SocketMeshReproducesTheSimulatedAckSequences) {
  const auto [protocol, groups, batch] = GetParam();

  // The deterministic reference run.
  sim::SimCluster base(mesh_spec(protocol, Backend::kSim, groups, batch));
  base.run(20 * kSecond);
  ASSERT_TRUE(base.sharded().clients_done());

  // The same deployment over real sockets.
  net::NetCluster c(mesh_spec(protocol, Backend::kNet, groups, batch));
  c.start();
  c.drive_until(now_nanos() + 60 * kSecond);
  c.stop();
  const RunResult r = c.collect();
  ASSERT_TRUE(c.clients_done()) << "net mesh missed its quota";
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.total_messages, 0u);
  EXPECT_GT(r.total_bytes, 0u);

  for (GroupId g = 0; g < groups; ++g) {
    SCOPED_TRACE("group " + std::to_string(g));
    check_group(c.sharded().group(g), batch);
    check_group(base.sharded().group(g), batch);
    // Identical per-client ack sequences: with the quota met on both
    // backends, each client's first decisions are exactly seq 1..kQuota in
    // order — element for element what the simulator decided.
    const auto net_seqs = first_decided_seqs(c.sharded().recorder(g));
    const auto sim_seqs = first_decided_seqs(base.sharded().recorder(g));
    EXPECT_EQ(net_seqs, sim_seqs);
    for (const auto& [client, seqs] : net_seqs) {
      ASSERT_EQ(seqs.size(), kQuota) << "client " << client;
      for (std::uint32_t i = 0; i < kQuota; ++i) {
        EXPECT_EQ(seqs[i], i + 1) << "client " << client << " decided out of order";
      }
    }
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Protocol, std::int32_t, std::int32_t>>&
        info) {
  std::string name =
      std::get<0>(info.param) == Protocol::kMultiPaxos ? "MultiPaxos" : "OnePaxos";
  name += "G" + std::to_string(std::get<1>(info.param));
  name += "B" + std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetSimParity,
    ::testing::Combine(::testing::Values(Protocol::kMultiPaxos, Protocol::kOnePaxos),
                       ::testing::Values(1, 4), ::testing::Values(1, 64)),
    param_name);

}  // namespace
}  // namespace ci::harness
