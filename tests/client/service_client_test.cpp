// The generic client layer: SubmitHandle semantics, ServiceClient over a
// CUSTOM state machine (the "any consensus::StateMachine" promise), and the
// kClientCmdBatch run path end to end.
#include "client/service_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace ci::client {
namespace {

// A non-KV service: apply() appends the value to a per-replica journal and
// returns the new length; read(k) returns the k-th appended value. Proves
// the layer replicates whatever machine the spec supplies.
class JournalStateMachine final : public consensus::StateMachine {
 public:
  std::uint64_t apply(const Command& cmd) override {
    if (cmd.op != Op::kWrite) return entries_.size();
    entries_.push_back(cmd.value);
    return entries_.size();
  }
  std::uint64_t read(std::uint64_t i) const override {
    return i < entries_.size() ? entries_[static_cast<std::size_t>(i)] : 0;
  }

 private:
  std::vector<std::uint64_t> entries_;
};

ServiceClient::Options sim_opts() {
  ServiceClient::Options o;
  o.backend = core::Backend::kSim;
  o.spec.protocol = core::Protocol::kMultiPaxos;
  return o;
}

TEST(ServiceClient, ServesACustomStateMachine) {
  ServiceClient::Options o = sim_opts();
  o.spec.state_machine_factory = [](consensus::NodeId) {
    return std::make_unique<JournalStateMachine>();
  };
  ServiceClient svc(o);
  Session& s = svc.session(0);
  EXPECT_EQ(s.execute(Op::kWrite, 0, 42), 1u);  // journal length after append
  EXPECT_EQ(s.execute(Op::kWrite, 0, 43), 2u);
  EXPECT_EQ(svc.state_machine(0, 0)->read(0), 42u);
  EXPECT_EQ(svc.state_machine(0, 0)->read(1), 43u);
}

TEST(ServiceClient, SubmitHandlesCompleteIndependently) {
  ServiceClient svc(sim_opts());
  Session& s = svc.session(0);
  SubmitHandle a = s.submit(Op::kWrite, 7, 70);
  SubmitHandle b = s.submit(Op::kWrite, 8, 80);
  SubmitHandle c = s.submit(Op::kWrite, 7, 71);
  EXPECT_TRUE(a.valid() && b.valid() && c.valid());
  EXPECT_EQ(c.wait(), 70u);  // waiting out of order is fine; c sees a's write
  EXPECT_EQ(a.wait(), 0u);
  EXPECT_EQ(b.wait(), 0u);
  EXPECT_TRUE(a.done() && b.done() && c.done());
  EXPECT_EQ(s.execute(Op::kRead, 7, 0), 71u);
  SubmitHandle none;
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(none.done());
}

TEST(ServiceClient, FlushIsACommitBarrier) {
  ServiceClient svc(sim_opts());
  Session& s = svc.session(0);
  for (std::uint64_t i = 1; i <= 100; ++i) s.submit(Op::kWrite, 5, i);  // handles dropped
  s.flush();
  EXPECT_EQ(s.execute(Op::kRead, 5, 0), 100u);
}

// submit_run sends 2..kMaxClientBatchCommands commands per kClientCmdBatch
// frame; the demux decomposes them, so order and per-command results are
// exactly as if they had been submitted singly.
class ClientRuns : public ::testing::TestWithParam<core::Backend> {};

TEST_P(ClientRuns, SubmitRunPreservesOrderAndResults) {
  ServiceClient::Options o = sim_opts();
  o.backend = GetParam();
  ServiceClient svc(o);
  Session& s = svc.session(0);
  AsyncClientEngine& eng = s.group_client(0);

  // A run over one key: each command's result is the previous one's value,
  // which pins both delivery order and exactly-once application.
  std::vector<Command> run;
  for (std::uint64_t i = 1; i <= 12; ++i) {  // > kMaxClientBatchCommands: chunks
    Command c;
    c.op = Op::kWrite;
    c.key = 9;
    c.value = i;
    run.push_back(c);
  }
  std::vector<SubmitHandle> handles = eng.submit_run(run);
  ASSERT_EQ(handles.size(), run.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].wait(), static_cast<std::uint64_t>(i)) << "position " << i;
  }
  EXPECT_EQ(s.execute(Op::kRead, 9, 0), 12u);

  // A 2-command run (the smallest batch frame) and a 1-command "run" (which
  // must fall back to the legacy frame) both work.
  std::vector<Command> pair(2);
  pair[0].op = pair[1].op = Op::kWrite;
  pair[0].key = pair[1].key = 10;
  pair[0].value = 1;
  pair[1].value = 2;
  for (SubmitHandle& h : eng.submit_run(pair)) h.wait();
  std::vector<Command> solo(1);
  solo[0].op = Op::kWrite;
  solo[0].key = 10;
  solo[0].value = 3;
  for (SubmitHandle& h : eng.submit_run(solo)) h.wait();
  EXPECT_EQ(s.execute(Op::kRead, 10, 0), 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ClientRuns,
                         ::testing::Values(core::Backend::kSim, core::Backend::kRt),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

TEST(ServiceClient, ShardedSessionsRouteByKey) {
  ServiceClient::Options o = sim_opts();
  o.groups = 4;
  ServiceClient svc(o);
  Session& s = svc.session(0);
  EXPECT_EQ(s.num_groups(), 4);
  bool seen[4] = {false, false, false, false};
  for (std::uint64_t k = 0; k < 64; ++k) {
    const GroupId g = s.group_of(k);
    ASSERT_GE(g, 0);
    ASSERT_LT(g, 4);
    EXPECT_EQ(g, svc.group_of(k));
    seen[g] = true;
    s.submit(Op::kWrite, k, k + 1);
  }
  s.flush();
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);  // hash spreads
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(s.execute(Op::kRead, k, 0), k + 1);
}

}  // namespace
}  // namespace ci::client
