// Fault-injection tests for the paper's availability claims:
//   * 2PC blocks while ANY replica is slow (§2.2, §7.6);
//   * 1Paxos keeps running with one slow non-critical core, replaces a slow
//     acceptor, replaces a slow leader (Fig. 11), and only stalls while BOTH
//     leader and acceptor are unresponsive (§5.4) — staying safe throughout;
//   * Multi-Paxos survives one slow follower and elects around a slow
//     leader.
//
// "Slow" is a multiplicative CPU cost factor over a time window, matching
// the paper's failure model ("crash" = slow core, §1 fn. 3).
#include <gtest/gtest.h>

#include "core/one_paxos.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::sim {
namespace {

constexpr Nanos kWindowStart = 20 * kMillisecond;
constexpr Nanos kWindowEnd = 120 * kMillisecond;
constexpr Nanos kRunEnd = 300 * kMillisecond;
constexpr double kSlowFactor = 5000;  // one message costs ~3 ms on the slow core

ClusterSpec faulty_opts(Protocol p, std::uint64_t seed = 11) {
  ClusterSpec o;
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = 5;
  o.workload.requests_per_client = 0;  // run for the whole window
  o.seed = seed;
  return o;
}

// Commits whose latency samples land inside/outside a window, measured via
// issued counters sampled around the window by running in phases.
struct PhaseCounts {
  std::uint64_t before = 0;
  std::uint64_t during = 0;
  std::uint64_t after = 0;
};

PhaseCounts run_with_slow_node(ClusterSpec opts, consensus::NodeId victim,
                               double factor = kSlowFactor) {
  SimCluster c(opts);
  c.slow_node(victim, kWindowStart, kWindowEnd, factor);
  PhaseCounts counts;
  c.run(kWindowStart);
  counts.before = c.total_committed();
  c.run(kWindowEnd);
  counts.during = c.total_committed() - counts.before;
  c.run(kRunEnd);
  counts.after = c.total_committed() - counts.before - counts.during;
  EXPECT_TRUE(c.consistent());
  return counts;
}

// ---- 2PC: blocking ----

TEST(TwoPcFaults, SlowCoordinatorHaltsThroughput) {
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kTwoPc), 0);
  EXPECT_GT(pc.before, 100u);
  // §2.2: "after Core 0 becomes slow, only a few requests can commit and
  // the throughput drops to zero".
  EXPECT_LT(pc.during, pc.before / 10);
  EXPECT_GT(pc.after, pc.before);  // recovers once the core speeds up
}

TEST(TwoPcFaults, SlowParticipantAlsoHaltsThroughput) {
  // Blocking means ANY unresponsive replica stalls commits, not just the
  // coordinator (§1: a blocking protocol "is vulnerable to even a single
  // process being slow").
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kTwoPc), 2);
  EXPECT_GT(pc.before, 100u);
  EXPECT_LT(pc.during, pc.before / 10);
  EXPECT_GT(pc.after, pc.before);
}

// ---- 1Paxos: non-blocking ----

TEST(OnePaxosFaults, SlowThirdReplicaDoesNotStallCommits) {
  // Node 2 is neither leader (0) nor active acceptor (1): 1Paxos must keep
  // committing at full speed — the non-blocking property 2PC lacks.
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kOnePaxos), 2);
  EXPECT_GT(pc.before, 100u);
  const double before_rate = static_cast<double>(pc.before) / static_cast<double>(kWindowStart);
  const double during_rate =
      static_cast<double>(pc.during) / static_cast<double>(kWindowEnd - kWindowStart);
  EXPECT_GT(during_rate, before_rate * 0.5);
}

TEST(OnePaxosFaults, SlowAcceptorIsReplaced) {
  ClusterSpec o = faulty_opts(Protocol::kOnePaxos);
  SimCluster c(o);
  c.slow_node(1, kWindowStart, kRunEnd, kSlowFactor);  // acceptor slow forever
  c.run(kRunEnd);
  EXPECT_TRUE(c.consistent());
  // The leader must have replaced the acceptor and continued.
  auto* leader = c.one_paxos(0);
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->is_leader());
  EXPECT_NE(leader->active_acceptor(), 1);
  // Commits continue after the switch.
  SimCluster baseline(o);
  baseline.run(kRunEnd);
  EXPECT_GT(c.total_committed(), baseline.total_committed() / 4);
}

TEST(OnePaxosFaults, SlowLeaderIsReplacedAndThroughputRecovers) {
  // Fig. 11: throughput drops to ~0 during the leader change, then returns.
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kOnePaxos), 0);
  EXPECT_GT(pc.before, 100u);
  EXPECT_GT(pc.during, 0u);  // commits resume within the slow window
  const double after_rate =
      static_cast<double>(pc.after) / static_cast<double>(kRunEnd - kWindowEnd);
  const double before_rate = static_cast<double>(pc.before) / static_cast<double>(kWindowStart);
  EXPECT_GT(after_rate, before_rate * 0.5);
}

TEST(OnePaxosFaults, LeaderChangeElectsDifferentNode) {
  ClusterSpec o = faulty_opts(Protocol::kOnePaxos);
  SimCluster c(o);
  c.slow_node(0, kWindowStart, kRunEnd, kSlowFactor);  // leader slow forever
  c.run(kRunEnd);
  EXPECT_TRUE(c.consistent());
  // Some other node must now lead; with node 1 hosting the acceptor, the
  // takeover falls to node 2 (§5.4 placement keeps leader != acceptor).
  auto* n2 = c.one_paxos(2);
  ASSERT_NE(n2, nullptr);
  EXPECT_TRUE(n2->is_leader());
  EXPECT_EQ(n2->active_acceptor(), 1);
}

TEST(OnePaxosFaults, BothLeaderAndAcceptorSlow_StallsThenRecovers) {
  // §5.4: with N=3, leader+acceptor slow = 2 of 3 nodes slow; neither
  // 1Paxos nor any majority protocol can progress until one responds.
  ClusterSpec o = faulty_opts(Protocol::kOnePaxos);
  SimCluster c(o);
  c.slow_node(0, kWindowStart, kWindowEnd, kSlowFactor);
  c.slow_node(1, kWindowStart, kWindowEnd, kSlowFactor);
  c.run(kWindowStart);
  const auto before = c.total_committed();
  c.run(kWindowEnd);
  const auto during = c.total_committed() - before;
  c.run(kRunEnd);
  const auto after = c.total_committed() - before - during;
  EXPECT_GT(before, 100u);
  EXPECT_LT(during, before / 5);  // (near-)stalled
  EXPECT_GT(after, 0u);           // liveness returns, safety never lost
  EXPECT_TRUE(c.consistent());
}

TEST(OnePaxosFaults, FiveReplicasTolerateTwoSlowNonCriticalNodes) {
  // With N=5, two slow nodes that are neither leader nor acceptor leave the
  // fast path and the utility majority intact.
  ClusterSpec o = faulty_opts(Protocol::kOnePaxos);
  o.num_replicas = 5;
  SimCluster c(o);
  c.slow_node(3, kWindowStart, kWindowEnd, kSlowFactor);
  c.slow_node(4, kWindowStart, kWindowEnd, kSlowFactor);
  const PhaseCounts pc = [&] {
    PhaseCounts counts;
    c.run(kWindowStart);
    counts.before = c.total_committed();
    c.run(kWindowEnd);
    counts.during = c.total_committed() - counts.before;
    c.run(kRunEnd);
    counts.after = c.total_committed() - counts.before - counts.during;
    return counts;
  }();
  EXPECT_TRUE(c.consistent());
  const double before_rate = static_cast<double>(pc.before) / static_cast<double>(kWindowStart);
  const double during_rate =
      static_cast<double>(pc.during) / static_cast<double>(kWindowEnd - kWindowStart);
  EXPECT_GT(during_rate, before_rate * 0.5);
}

TEST(OnePaxosFaults, AcceptorSilentRebootIsDetectedAndReplaced) {
  // The IamFresh/YouMustBeFresh machinery (Fig. 12 l.47): the acceptor loses
  // hpn/ap, the established leader sees an out-of-order abandon and must
  // switch to a fresh backup; consistency holds throughout.
  ClusterSpec o = faulty_opts(Protocol::kOnePaxos);
  SimCluster c(o);
  c.reset_acceptor_state_at(1, 30 * kMillisecond);
  c.run(kRunEnd);
  EXPECT_TRUE(c.consistent());
  auto* leader = c.one_paxos(0);
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->is_leader());
  EXPECT_NE(leader->active_acceptor(), 1);  // rebooted acceptor was replaced
  EXPECT_GT(c.total_committed(), 1000u);    // still making progress
}

// ---- Multi-Paxos: majority-based ----

TEST(MultiPaxosFaults, SlowFollowerDoesNotStallCommits) {
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kMultiPaxos), 2);
  EXPECT_GT(pc.before, 100u);
  const double before_rate = static_cast<double>(pc.before) / static_cast<double>(kWindowStart);
  const double during_rate =
      static_cast<double>(pc.during) / static_cast<double>(kWindowEnd - kWindowStart);
  EXPECT_GT(during_rate, before_rate * 0.5);
}

TEST(MultiPaxosFaults, SlowLeaderTriggersElectionAndRecovery) {
  const PhaseCounts pc = run_with_slow_node(faulty_opts(Protocol::kMultiPaxos), 0);
  EXPECT_GT(pc.before, 100u);
  EXPECT_GT(pc.during, 0u);
  const double after_rate =
      static_cast<double>(pc.after) / static_cast<double>(kRunEnd - kWindowEnd);
  const double before_rate = static_cast<double>(pc.before) / static_cast<double>(kWindowStart);
  EXPECT_GT(after_rate, before_rate * 0.5);
}

}  // namespace
}  // namespace ci::sim
