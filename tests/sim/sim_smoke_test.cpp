// End-to-end smoke tests: every protocol commits client commands under the
// simulator with no faults, agreement stays consistent, and the basic shape
// claims of the paper hold (1Paxos sends fewer messages than Multi-Paxos).
#include <gtest/gtest.h>

#include "sim/sim_cluster.hpp"

namespace ci::sim {
namespace {

ClusterSpec base_opts(Protocol p, std::int32_t clients, std::uint64_t reqs) {
  ClusterSpec o;
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = clients;
  o.workload.requests_per_client = reqs;
  o.seed = 42;
  return o;
}

class EveryProtocolSmoke : public ::testing::TestWithParam<Protocol> {};

TEST_P(EveryProtocolSmoke, SingleClientCommitsAllRequests) {
  SimCluster c(base_opts(GetParam(), 1, 50));
  c.run(2 * kSecond);
  EXPECT_EQ(c.total_committed(), 50u) << protocol_name(GetParam());
  EXPECT_TRUE(c.consistent());
}

TEST_P(EveryProtocolSmoke, FiveClientsCommitAllRequests) {
  SimCluster c(base_opts(GetParam(), 5, 40));
  c.run(2 * kSecond);
  EXPECT_EQ(c.total_committed(), 5u * 40u) << protocol_name(GetParam());
  EXPECT_TRUE(c.consistent());
}

TEST_P(EveryProtocolSmoke, LatencyIsFiniteAndPlausible) {
  SimCluster c(base_opts(GetParam(), 1, 50));
  c.run(2 * kSecond);
  const Histogram h = c.merged_latency();
  ASSERT_EQ(h.count(), 50u);
  // A commit needs at least one network round trip (~2*(trans+prop) ≈ 2 µs)
  // and, without faults, should stay well under a millisecond.
  EXPECT_GT(h.mean(), 1.0 * kMicrosecond);
  EXPECT_LT(h.mean(), 1 * kMillisecond);
}

TEST_P(EveryProtocolSmoke, ReplicaLogsArePrefixConsistent) {
  SimCluster c(base_opts(GetParam(), 3, 30));
  c.run(2 * kSecond);
  const auto& logs = c.delivered_by_node();
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t n = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(logs[a][i], logs[b][i])
            << protocol_name(GetParam()) << ": logs diverge at index " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, EveryProtocolSmoke,
                         ::testing::Values(Protocol::kTwoPc, Protocol::kBasicPaxos,
                                           Protocol::kMultiPaxos, Protocol::kOnePaxos),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kTwoPc:
                               return "TwoPc";
                             case Protocol::kBasicPaxos:
                               return "BasicPaxos";
                             case Protocol::kMultiPaxos:
                               return "MultiPaxos";
                             case Protocol::kOnePaxos:
                               return "OnePaxos";
                           }
                           return "Unknown";
                         });

TEST(SimShape, OnePaxosSendsFewerMessagesThanMultiPaxos) {
  // Fig. 3: 1Paxos halves the boundary-crossing messages of collapsed
  // Multi-Paxos on three nodes.
  auto run_protocol = [](Protocol p) {
    SimCluster c(base_opts(p, 1, 200));
    c.run(2 * kSecond);
    EXPECT_EQ(c.total_committed(), 200u);
    return c.net().total_messages();
  };
  const auto one = run_protocol(Protocol::kOnePaxos);
  const auto multi = run_protocol(Protocol::kMultiPaxos);
  EXPECT_LT(one, multi);
  // Per commit: 1Paxos ~5 messages, Multi-Paxos ~10 (plus heartbeats).
  EXPECT_NEAR(static_cast<double>(one) / 200.0, 5.0, 1.5);
  EXPECT_NEAR(static_cast<double>(multi) / 200.0, 10.0, 2.0);
}

TEST(SimShape, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    ClusterSpec o = base_opts(Protocol::kOnePaxos, 3, 50);
    o.seed = seed;
    SimCluster c(o);
    c.run(2 * kSecond);
    return std::make_tuple(c.total_committed(), c.net().total_messages(),
                           c.merged_latency().mean());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(std::get<1>(run_once(7)), 0u);
}

TEST(SimShape, TwoPcLatencyExceedsOnePaxos) {
  // §7.2 ordering: 1Paxos < Multi-Paxos < 2PC with one client.
  auto mean_latency = [](Protocol p) {
    SimCluster c(base_opts(p, 1, 200));
    c.run(2 * kSecond);
    return c.merged_latency().mean();
  };
  const double opx = mean_latency(Protocol::kOnePaxos);
  const double mpx = mean_latency(Protocol::kMultiPaxos);
  const double tpc = mean_latency(Protocol::kTwoPc);
  EXPECT_LT(opx, mpx);
  EXPECT_LT(mpx, tpc);
}

}  // namespace
}  // namespace ci::sim
