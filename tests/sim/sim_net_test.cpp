// Unit tests for the discrete-event engine itself: the cost model the
// figure reproductions rest on. If these are right, throughput saturation
// in the sims is a consequence of message counts — the paper's claim —
// and not an artifact.
#include "sim/sim_net.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "consensus/wire_codec.hpp"

namespace ci::sim {
namespace {

using consensus::Context;
using consensus::Engine;
using consensus::Message;
using consensus::MsgType;
using consensus::ProtoId;

// Records every delivery with its logical receive time.
class Recorder final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    deliveries.emplace_back(ctx.now(), m);
    if (reply_to >= 0) {
      Message r(MsgType::kPong, ProtoId::kControl, ctx.self(), reply_to);
      ctx.send(reply_to, r);
    }
  }

  std::vector<std::pair<Nanos, Message>> deliveries;
  consensus::NodeId reply_to = -1;
};

// Sends `count` pings to node `dst` at start.
class Pinger final : public Engine {
 public:
  Pinger(consensus::NodeId dst, int count) : dst_(dst), count_(count) {}

  void start(Context& ctx) override {
    for (int i = 0; i < count_; ++i) {
      Message m(MsgType::kPing, ProtoId::kControl, ctx.self(), dst_);
      ctx.send(dst_, m);
    }
  }
  void on_message(Context& ctx, const Message& m) override { last_reply_at = ctx.now(); (void)m; }

  Nanos last_reply_at = -1;

 private:
  consensus::NodeId dst_;
  int count_;
};

LatencyModel flat_model() {
  LatencyModel m;
  m.trans_send = 100;
  m.trans_recv = 200;
  m.prop = 1000;
  m.prop_jitter = 0;
  m.handler_cost = 50;
  return m;
}

TEST(SimNet, SingleMessageTimingMatchesModel) {
  SimNet net(flat_model(), /*seed=*/1, /*tick=*/kMillisecond);
  Pinger pinger(1, 1);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(10 * kMicrosecond);
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  // Send at t=0 costs trans_send (100); arrival at 100 + prop (1000);
  // processing ends at arrival + trans_recv + handler (250).
  EXPECT_EQ(recorder.deliveries[0].first, 100 + 1000 + 200 + 50);
}

TEST(SimNet, SenderPaysPerMessageSerially) {
  SimNet net(flat_model(), 1, kMillisecond);
  Pinger pinger(1, 3);  // three sends back to back
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(10 * kMicrosecond);
  ASSERT_EQ(recorder.deliveries.size(), 3u);
  // Departures at 100, 200, 300; arrivals at 1100, 1200, 1300. The first
  // processes over [1100, 1350); the second arrives while the receiver is
  // busy and processes over [1350, 1600); the third over [1600, 1850).
  EXPECT_EQ(recorder.deliveries[0].first, 1350);
  EXPECT_EQ(recorder.deliveries[1].first, 1600);
  EXPECT_EQ(recorder.deliveries[2].first, 1850);
}

TEST(SimNet, SelfSendIsFreeAndDeferred) {
  SimNet net(flat_model(), 1, kMillisecond);
  // An engine that self-sends once and records both handler invocations.
  class SelfSender final : public Engine {
   public:
    void start(Context& ctx) override {
      Message m(MsgType::kPing, ProtoId::kControl, ctx.self(), ctx.self());
      ctx.send(ctx.self(), m);
      started_at = ctx.now();
    }
    void on_message(Context& ctx, const Message&) override { handled_at = ctx.now(); }
    Nanos started_at = -1;
    Nanos handled_at = -1;
  } node;
  net.add_node(&node);
  net.run_until(10 * kMicrosecond);
  ASSERT_GE(node.handled_at, 0);
  EXPECT_EQ(net.messages_sent(0), 0u);  // no boundary crossing counted
  // Only the receive-side cost is charged (processing is still work).
  EXPECT_EQ(node.handled_at, node.started_at + 250);
}

TEST(SimNet, SlowWindowMultipliesCosts) {
  SimNet net(flat_model(), 1, kMillisecond);
  Pinger pinger(1, 1);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.slow_node(1, 0, kSecond, 10.0);  // receiver 10x slow
  net.run_until(kMillisecond);
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  // Receive processing costs (200+50)*10 instead of 250.
  EXPECT_EQ(recorder.deliveries[0].first, 100 + 1000 + 2500);
}

TEST(SimNet, SlowWindowEndsOnSchedule) {
  SimNet net(flat_model(), 1, kMillisecond);
  Pinger pinger(1, 1);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.slow_node(1, 0, 500, 10.0);  // window ends before the message arrives
  net.run_until(kMillisecond);
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  EXPECT_EQ(recorder.deliveries[0].first, 100 + 1000 + 250);  // normal cost
}

TEST(SimNet, JitterIsDeterministicPerSeed) {
  LatencyModel jittery = flat_model();
  jittery.prop_jitter = 500;
  auto run_once = [&](std::uint64_t seed) {
    SimNet net(jittery, seed, kMillisecond);
    Pinger pinger(1, 5);
    Recorder recorder;
    net.add_node(&pinger);
    net.add_node(&recorder);
    net.run_until(kMillisecond);
    std::vector<Nanos> times;
    for (auto& [t, m] : recorder.deliveries) times.push_back(t);
    return times;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimNet, DropProbabilityLosesMessages) {
  LatencyModel lossy = flat_model();
  lossy.drop_probability = 0.5;
  SimNet net(lossy, 3, kMillisecond);
  Pinger pinger(1, 1000);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(10 * kMillisecond);
  EXPECT_GT(net.messages_dropped(), 300u);
  EXPECT_LT(net.messages_dropped(), 700u);
  EXPECT_EQ(recorder.deliveries.size() + net.messages_dropped(), 1000u);
}

TEST(SimNet, ScheduledCallRunsAtTime) {
  SimNet net(flat_model(), 1, kMillisecond);
  Recorder recorder;
  net.add_node(&recorder);
  bool fired = false;
  net.schedule_call(5 * kMicrosecond, 0, [&] { fired = true; });
  net.run_until(4 * kMicrosecond);
  EXPECT_FALSE(fired);
  net.run_until(6 * kMicrosecond);
  EXPECT_TRUE(fired);
}

TEST(SimNet, TicksKeepFiringForever) {
  SimNet net(flat_model(), 1, 10 * kMicrosecond);
  class TickCounter final : public Engine {
   public:
    void on_message(Context&, const Message&) override {}
    void tick(Context&) override { ticks++; }
    int ticks = 0;
  } node;
  net.add_node(&node);
  net.run_until(kMillisecond);
  EXPECT_GE(node.ticks, 99);
  EXPECT_LE(node.ticks, 101);
}

// The optional bandwidth term (LatencyModel::bytes_per_second), charged from
// the encoded frame size the codec reports. Off by default — the legacy
// per-message arithmetic must hold bit for bit (the timing pins above
// already run with the default model; the OFF case here re-checks with the
// field explicitly zeroed so a future default change cannot slip by).
TEST(SimNet, PerByteCostOffKeepsLegacyTiming) {
  LatencyModel m = flat_model();
  m.bytes_per_second = 0;
  SimNet net(m, 1, kMillisecond);
  Pinger pinger(1, 1);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(10 * kMicrosecond);
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  EXPECT_EQ(recorder.deliveries[0].first, 100 + 1000 + 200 + 50);
}

TEST(SimNet, PerByteCostChargesTheSenderByFrameSize) {
  LatencyModel m = flat_model();
  m.bytes_per_second = 1e9;  // 1 GB/s: 1 ns per frame byte
  SimNet net(m, 1, kMillisecond);
  Pinger pinger(1, 3);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(10 * kMicrosecond);
  ASSERT_EQ(recorder.deliveries.size(), 3u);
  // A kPing frame is the bare 16-byte header, so each send now costs
  // trans_send + 16: departures at 116, 232, 348; arrivals 1116, 1232,
  // 1348; receiver processing (unchanged: the charge is sender-side)
  // serializes over [1116,1366), [1366,1616), [1616,1866).
  const std::size_t ping_bytes =
      wire::frame_size(Message(MsgType::kPing, ProtoId::kControl, 0, 1));
  ASSERT_EQ(ping_bytes, 16u);
  EXPECT_EQ(recorder.deliveries[0].first, 116 + 1000 + 250);
  EXPECT_EQ(recorder.deliveries[1].first, 1366 + 250);
  EXPECT_EQ(recorder.deliveries[2].first, 1616 + 250);
}

TEST(SimNet, PerByteCostScalesWithSlowdownLikeOtherCpuWork) {
  LatencyModel m = flat_model();
  m.bytes_per_second = 1e9;
  SimNet net(m, 1, kMillisecond);
  Pinger pinger(1, 1);
  Recorder recorder;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.slow_node(0, 0, kMillisecond, 10.0);  // sender 10x slow
  net.run_until(10 * kMicrosecond);
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  // (trans_send + 16 bytes) x 10 = 1160, then prop + receive as usual.
  EXPECT_EQ(recorder.deliveries[0].first, 1160 + 1000 + 250);
}

TEST(SimNet, MessagesSentCountsBoundaryCrossingsOnly) {
  SimNet net(flat_model(), 1, kMillisecond);
  Pinger pinger(1, 4);
  Recorder recorder;
  recorder.reply_to = 0;
  net.add_node(&pinger);
  net.add_node(&recorder);
  net.run_until(kMillisecond);
  EXPECT_EQ(net.messages_sent(0), 4u);
  EXPECT_EQ(net.messages_sent(1), 4u);
  EXPECT_EQ(net.total_messages(), 8u);
}

}  // namespace
}  // namespace ci::sim
