// Property sweeps: randomized fault schedules (slow windows, message loss,
// acceptor reboots) over every protocol and many seeds. Invariants checked:
//
//   SAFETY (always):
//     * consistency — no two nodes decide different values for an instance
//       (paper §2.3 safety property (ii), Appendix B for 1Paxos);
//     * non-triviality — only client-issued commands are decided (§2.3 (i));
//     * prefix consistency — replicas execute the same sequence.
//
//   LIVENESS (after faults clear):
//     * every client's full request quota eventually commits.
//
// All schedules derive from the test seed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::sim {
namespace {

constexpr Nanos kFaultWindowEnd = 150 * kMillisecond;
constexpr Nanos kDeadline = 2 * kSecond;

struct SweepParam {
  Protocol protocol;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = protocol_name(info.param.protocol);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

class FaultSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FaultSweep, SafetyAlwaysLivenessEventually) {
  const SweepParam param = GetParam();
  Rng rng(param.seed * 0x9e3779b97f4a7c15ULL + 13);

  ClusterSpec o;
  o.protocol = param.protocol;
  o.num_replicas = 3 + static_cast<std::int32_t>(rng.next_below(2)) * 2;  // 3 or 5
  o.num_clients = 2 + static_cast<std::int32_t>(rng.next_below(4));
  o.workload.requests_per_client = 200;
  // 1 ms think time stretches each client's run across the whole fault
  // schedule (otherwise the quota completes before the first slow window).
  o.workload.think_time = 1 * kMillisecond;
  o.seed = param.seed;
  // Light message loss for the quorum protocols; 2PC in its Barrelfish
  // agreement form assumes reliable channels (§1) but has retransmission
  // timers, so give it loss too on some seeds.
  o.sim.model.drop_probability = rng.next_bool(0.5) ? 0.01 : 0.0;

  SimCluster c(o);

  // 1–3 random slow windows inside [10ms, kFaultWindowEnd).
  const int windows = 1 + static_cast<int>(rng.next_below(3));
  for (int w = 0; w < windows; ++w) {
    const auto victim = static_cast<consensus::NodeId>(rng.next_below(
        static_cast<std::uint64_t>(o.num_replicas)));
    const Nanos from = 10 * kMillisecond +
                       static_cast<Nanos>(rng.next_below(80)) * kMillisecond;
    const Nanos len = (5 + static_cast<Nanos>(rng.next_below(50))) * kMillisecond;
    const double factor = std::pow(10.0, 1.0 + rng.next_double() * 2.5);
    c.slow_node(victim, from, std::min(from + len, kFaultWindowEnd), factor);
  }
  // Occasionally reboot the 1Paxos acceptor mid-run.
  if (param.protocol == Protocol::kOnePaxos && rng.next_bool(0.4)) {
    c.reset_acceptor_state_at(1, 40 * kMillisecond);
  }

  c.run(kDeadline);

  // SAFETY.
  EXPECT_TRUE(c.consistent()) << "agreement violated";
  const auto& logs = c.delivered_by_node();
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t n = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(logs[a][i], logs[b][i]) << "log divergence at " << i;
      }
    }
  }
  // Non-triviality: every decided command was issued by a live client (or is
  // a recovery no-op).
  for (const auto& [in, batch] : c.decided()) {
    for (const auto& cmd : batch) {
      if (cmd.is_noop()) continue;
      ASSERT_GE(cmd.client, 0);
      ASSERT_GE(cmd.seq, 1u);
    }
  }

  // LIVENESS: every quota filled once faults cleared.
  EXPECT_EQ(c.total_committed(),
            static_cast<std::uint64_t>(o.num_clients) * o.workload.requests_per_client)
      << protocol_name(param.protocol) << " failed to recover liveness";
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (Protocol p : {Protocol::kTwoPc, Protocol::kBasicPaxos, Protocol::kMultiPaxos,
                     Protocol::kOnePaxos}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) params.push_back({p, seed});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultSweep, ::testing::ValuesIn(sweep_params()), param_name);

// Read-workload sweep: mixes of reads and writes across protocols must keep
// the same invariants, and (for joint 2PC) local reads must never return a
// value newer than the replica's executed prefix allows.
class ReadMixSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ReadMixSweep, MixedWorkloadsStayConsistent) {
  const SweepParam param = GetParam();
  ClusterSpec o;
  o.protocol = param.protocol;
  o.num_replicas = 3;
  o.joint = true;
  o.joint_local_reads = param.protocol == Protocol::kTwoPc;
  o.workload.requests_per_client = 120;
  o.workload.read_fraction = 0.25 * static_cast<double>(param.seed % 4);  // 0, .25, .5, .75
  o.seed = param.seed;
  SimCluster c(o);
  c.run(kDeadline);
  EXPECT_TRUE(c.consistent());
  EXPECT_EQ(c.total_committed(), 3u * o.workload.requests_per_client);
}

std::vector<SweepParam> readmix_params() {
  std::vector<SweepParam> params;
  for (Protocol p : {Protocol::kTwoPc, Protocol::kMultiPaxos, Protocol::kOnePaxos}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) params.push_back({p, seed});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(ReadMix, ReadMixSweep, ::testing::ValuesIn(readmix_params()),
                         param_name);

}  // namespace
}  // namespace ci::sim
