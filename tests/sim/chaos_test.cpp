// Heavier 1Paxos-focused chaos sweep: every disruption the repository can
// inject, combined — slow windows on rotating victims, message loss, and
// acceptor reboots — across many seeds. 1Paxos runs its full
// reconfiguration machinery repeatedly; safety must hold on every seed and
// liveness must return once the schedule quiets down.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::sim {
namespace {

class OnePaxosChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnePaxosChaos, SurvivesCombinedFaultSchedule) {
  Rng rng(GetParam() * 0x2545F4914F6CDD1DULL + 99);
  ClusterSpec o;
  o.protocol = Protocol::kOnePaxos;
  o.num_replicas = 3 + static_cast<std::int32_t>(rng.next_below(3));  // 3..5
  o.num_clients = 3;
  o.workload.requests_per_client = 300;
  o.workload.think_time = 500 * kMicrosecond;  // stretch across the fault schedule
  o.seed = GetParam();
  o.sim.model.drop_probability = 0.02;
  SimCluster c(o);

  // Rotating slow windows over the first 120 ms, always leaving a majority
  // healthy (victims are chosen one at a time).
  Nanos t = 5 * kMillisecond;
  while (t < 120 * kMillisecond) {
    const auto victim = static_cast<consensus::NodeId>(
        rng.next_below(static_cast<std::uint64_t>(o.num_replicas)));
    const Nanos len = (3 + static_cast<Nanos>(rng.next_below(20))) * kMillisecond;
    const double factor = std::pow(10.0, 1.5 + rng.next_double() * 2.0);
    c.slow_node(victim, t, t + len, factor);
    t += len + static_cast<Nanos>(rng.next_below(10)) * kMillisecond;
  }
  // One or two acceptor reboots mid-run.
  c.reset_acceptor_state_at(1, 30 * kMillisecond);
  if (rng.next_bool(0.5)) {
    const auto backup = static_cast<consensus::NodeId>(2 % o.num_replicas);
    c.reset_acceptor_state_at(backup, 70 * kMillisecond);
  }

  c.run(3 * kSecond);

  EXPECT_TRUE(c.consistent()) << "seed " << GetParam();
  EXPECT_EQ(c.total_committed(), 3u * 300u) << "liveness lost, seed " << GetParam();
  const auto& logs = c.delivered_by_node();
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t n = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(logs[a][i], logs[b][i]) << "divergence at " << i << ", seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnePaxosChaos,
                         ::testing::Range<std::uint64_t>(1, 16),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace ci::sim
