// Hand-stepped 1Paxos semantics against Appendix A:
//   * fast path: accept_request -> single-acceptor learn multicast;
//   * message counts (Fig. 3): 5 boundary crossings per commit on 3 nodes;
//   * acceptor switch (AcceptorChange + fresh adoption, uncommitted
//     proposal handover);
//   * leader switch (LeaderChange + non-fresh adoption, ap registration);
//   * freshness handshake (silent reboot detection);
//   * the §5.4 blocking case (leader+acceptor both unresponsive).
#include "core/one_paxos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_net.hpp"

namespace ci::core {
namespace {

using test::FakeNet;

struct OpxHarness {
  explicit OpxHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      OnePaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 3;
      // settle() advances in 1 ms jumps; the failure detector needs head
      // room above that so an answered ping still counts as "alive".
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.initial_leader = 0;
      cfg.initial_acceptor = 1;
      engines.push_back(std::make_unique<OnePaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  OnePaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  // Advance time + deliver until quiet, `rounds` times.
  void settle(int rounds = 10, Nanos step = 1 * kMillisecond) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(step);
      net.run();
    }
  }

  FakeNet net;
  std::vector<std::unique_ptr<OnePaxosEngine>> engines;
};

TEST(OnePaxos, BootstrapPlacesRoles) {
  OpxHarness h;
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 1);
  EXPECT_FALSE(h.at(1).is_leader());
  EXPECT_FALSE(h.at(1).is_fresh_acceptor());  // pre-adopted by the leader
  EXPECT_TRUE(h.at(2).is_fresh_acceptor());   // backup acceptors stay fresh
  for (NodeId r = 0; r < 3; ++r) EXPECT_EQ(h.at(r).believed_leader(), 0);
}

TEST(OnePaxos, FastPathMessageSequence) {
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  // Leader -> acceptor.
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 1u);
  EXPECT_EQ(h.net.peek(0).type, MsgType::kOpxAcceptReq);
  EXPECT_EQ(h.net.peek(0).dst, 1);
  // Acceptor -> learn multicast to all three replicas.
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(h.net.peek(i).type, MsgType::kOpxLearn);
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(2).log().is_learned(0));
}

TEST(OnePaxos, FigureThreeMessageCount) {
  // Fig. 3 on three nodes: request + accept + 2 remote learns + reply = 5
  // boundary-crossing messages per commit (the acceptor's self-learn is
  // local).
  OpxHarness h;
  const auto total_before = h.net.sent_count(0) + h.net.sent_count(1) + h.net.sent_count(2);
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  const auto total_after = h.net.sent_count(0) + h.net.sent_count(1) + h.net.sent_count(2);
  // The injected client request is external; replicas send: accept(1) +
  // learns(2) + reply(1) = 4.
  EXPECT_EQ(total_after - total_before, 4u);
}

TEST(OnePaxos, PipelinedCommitsKeepOrder) {
  OpxHarness h;
  for (std::uint32_t s = 1; s <= 8; ++s) h.net.inject(test::client_request(3, 0, s));
  h.net.run();
  for (Instance in = 0; in < 8; ++in) {
    ASSERT_TRUE(h.at(2).log().is_learned(in));
    EXPECT_EQ(h.at(2).log().get(in)->seq, static_cast<std::uint32_t>(in + 1));
  }
}

TEST(OnePaxos, AcceptorSwitchOnSilence) {
  OpxHarness h;
  h.net.isolate(1);  // active acceptor goes dark
  h.net.inject(test::client_request(3, 0, 1));
  h.settle();
  // Leader re-established itself with the other backup (node 2).
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 2);
  EXPECT_FALSE(h.at(2).is_fresh_acceptor());
  // And the command committed through the new acceptor.
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_EQ(h.at(0).log().get(0)->client, 3);
}

TEST(OnePaxos, AcceptorSwitchHandsOverUncommittedProposals) {
  OpxHarness h;
  // Send the accept but lose every learn: the acceptor accepted, nobody
  // learned. Then the acceptor dies. The AcceptorChange entry must carry the
  // proposal so the same value lands at instance 0 (Lemma 2a).
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // request -> leader (accept_req queued)
  h.net.step();  // accept_req -> acceptor (learns queued)
  h.net.drop_if([](const Message& m) { return m.type == MsgType::kOpxLearn; });
  h.net.isolate(1);
  h.settle();
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 2);
  ASSERT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_EQ(h.at(0).log().get(0)->client, 3);
  EXPECT_EQ(h.at(0).log().get(0)->seq, 1u);
}

TEST(OnePaxos, LeaderSwitchViaClientSuspicion) {
  OpxHarness h;
  h.net.isolate(0);
  // A client re-sent its request to node 2 with the suspect flag (§7.6).
  Message m = test::client_request(3, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle();
  EXPECT_TRUE(h.at(2).is_leader());
  EXPECT_EQ(h.at(2).active_acceptor(), 1);  // same acceptor, new leader (§5.3)
  EXPECT_TRUE(h.at(2).log().is_learned(0));
  EXPECT_EQ(h.at(1).believed_leader(), 2);
}

TEST(OnePaxos, LeaderSwitchRegistersAcceptorMemory) {
  // The acceptor holds an accepted-but-unlearned value; the new leader must
  // learn it from the prepare response and re-propose it (Lemma 2b).
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // request at leader
  h.net.step();  // accept at acceptor; learns queued
  h.net.drop_if([](const Message& m) { return m.type == MsgType::kOpxLearn; });
  h.net.isolate(0);  // old leader gone; acceptor holds ap[0]
  Message m = test::client_request(4, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle();
  ASSERT_TRUE(h.at(2).is_leader());
  // Instance 0 must hold client 3's original command, NOT client 4's.
  ASSERT_TRUE(h.at(2).log().is_learned(0));
  EXPECT_EQ(h.at(2).log().get(0)->client, 3);
  // Client 4's command follows at the next instance.
  ASSERT_TRUE(h.at(2).log().is_learned(1));
  EXPECT_EQ(h.at(2).log().get(1)->client, 4);
}

TEST(OnePaxos, FreshnessMismatchDropsPrepare) {
  // Adopting a rebooted acceptor with you_must_be_fresh=false must be
  // silently ignored (Fig. 12 l.47).
  OpxHarness h;
  h.at(1).reset_acceptor_state();
  ASSERT_TRUE(h.at(1).is_fresh_acceptor());
  Message prep(MsgType::kOpxPrepareReq, consensus::ProtoId::kOnePaxos, 2, 1);
  prep.u.opx_prepare_req.pn = consensus::ProposalNum{99, 2};
  prep.u.opx_prepare_req.you_must_be_fresh = 0;
  h.net.inject(prep);
  ASSERT_TRUE(h.net.step());
  EXPECT_EQ(h.net.pending(), 0u);  // no response at all
  EXPECT_TRUE(h.at(1).is_fresh_acceptor());
}

TEST(OnePaxos, RebootedAcceptorReplacedByEstablishedLeader) {
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  // The acceptor silently reboots, losing hpn/ap.
  h.at(1).reset_acceptor_state();
  // Next command: the leader's accept hits a fresh acceptor -> abandon with
  // a stale ballot -> the leader (whose proposed map is complete) switches
  // to a fresh backup.
  h.net.inject(test::client_request(3, 0, 2));
  h.settle();
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 2);
  ASSERT_TRUE(h.at(0).log().is_learned(1));
  EXPECT_EQ(h.at(0).log().get(1)->seq, 2u);
}

TEST(OnePaxos, BothLeaderAndAcceptorDownBlocksThreeNodes) {
  // §5.4: N=3 with leader and acceptor dead = 2 of 3 down; the remaining
  // node must NOT fabricate progress (utility majority unreachable).
  OpxHarness h;
  h.net.isolate(0);
  h.net.isolate(1);
  Message m = test::client_request(3, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(30);
  EXPECT_FALSE(h.at(2).is_leader());
  EXPECT_FALSE(h.at(2).log().is_learned(0));
  // One of them heals: progress resumes.
  h.net.heal(1);
  h.settle(30);
  EXPECT_TRUE(h.at(2).is_leader());
  EXPECT_TRUE(h.at(2).log().is_learned(0));
}

TEST(OnePaxos, FiveNodesBlockWhileLeaderAndAcceptorDown) {
  // §5.4 trade-off: with N=5, losing exactly {leader, acceptor} stalls
  // 1Paxos even though a majority (3 of 5) is alive — a takeover proposer
  // must not replace an acceptor whose memory it cannot recover.
  OpxHarness h(5);
  h.net.isolate(0);
  h.net.isolate(1);
  Message m = test::client_request(7, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(30);
  // LeaderChange may succeed (utility majority alive), but adoption cannot.
  EXPECT_FALSE(h.at(2).log().is_learned(0));
  EXPECT_FALSE(h.at(3).log().is_learned(0));
  // The moment the acceptor responds again, the system recovers.
  h.net.heal(1);
  h.settle(30);
  EXPECT_TRUE(h.at(2).log().is_learned(0) || h.at(3).log().is_learned(0) ||
              h.at(4).log().is_learned(0));
  // Safety held throughout (logs agree wherever learned).
}

TEST(OnePaxos, AcceptorHostRefusesTakeover) {
  // §5.4 placement: the node hosting the active acceptor does not also
  // claim leadership.
  OpxHarness h;
  h.net.isolate(0);
  Message m = test::client_request(3, 1, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(5);
  EXPECT_FALSE(h.at(1).is_leader());
}

TEST(OnePaxos, OldLeaderRelinquishesOnObservingLeaderChange) {
  OpxHarness h;
  // Node 0 goes silent long enough for node 2 to take over; when node 0
  // returns it must learn the LeaderChange (utility log / epoch-stamped
  // heartbeats) and stand down (§5.3).
  h.net.isolate(0);
  Message m = test::client_request(3, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle();
  ASSERT_TRUE(h.at(2).is_leader());
  h.net.heal(0);
  h.settle();
  EXPECT_TRUE(h.at(2).is_leader());
  EXPECT_FALSE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).believed_leader(), 2);
}

TEST(OnePaxos, HealthyLeaderNotDeposedBySpuriousClientFlag) {
  // The §7.6 trigger is for genuinely slow leaders: a single suspect-flag
  // request against a leader that demonstrably heartbeats and commits must
  // not cause a takeover — the command is simply forwarded and committed.
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));  // normal traffic commits
  h.net.run();
  ASSERT_TRUE(h.at(0).log().is_learned(0));
  Message m = test::client_request(4, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;  // spurious suspicion
  h.net.inject(m);
  h.settle(3);
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_FALSE(h.at(2).is_leader());
  EXPECT_TRUE(h.at(0).log().is_learned(1));  // forwarded and committed
}

TEST(OnePaxos, DuplicateAcceptRequestRebroadcastsLearn) {
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // leader -> accept_req
  // Capture and duplicate the accept request before delivering it.
  ASSERT_EQ(h.net.pending(), 1u);
  const Message accept = h.net.peek(0);
  h.net.run();
  ASSERT_TRUE(h.at(0).log().is_learned(0));
  h.net.inject(accept);  // duplicate (e.g. a retry racing the learn)
  ASSERT_TRUE(h.net.step());
  // Acceptor answers with a learn (to the leader at least), not a fresh
  // acceptance.
  ASSERT_GE(h.net.pending(), 1u);
  EXPECT_EQ(h.net.peek(0).type, MsgType::kOpxLearn);
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));  // value unchanged
}

TEST(OnePaxos, StaleBallotAcceptAbandoned) {
  OpxHarness h;
  // A forged accept with a stale ballot must be rejected with abandon.
  Message stale(MsgType::kOpxAcceptReq, consensus::ProtoId::kOnePaxos, 2, 1);
  stale.u.opx_accept_req.instance = 0;
  stale.u.opx_accept_req.pn = consensus::ProposalNum{0, 2};  // below hpn {1,0}
  stale.u.opx_accept_req.value = Command{};
  h.net.inject(stale);
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 1u);
  EXPECT_EQ(h.net.peek(0).type, MsgType::kOpxAbandon);
  EXPECT_EQ(h.net.peek(0).dst, 2);
}

TEST(OnePaxos, ClientReadGetsWrittenValue) {
  OpxHarness h3;
  // Write then read through consensus; the read reply must surface the map
  // value via the executor.
  h3.net.inject(test::client_request(3, 0, 1, Op::kWrite, /*key=*/5, /*value=*/77));
  h3.net.run();
  h3.net.inject(test::client_request(3, 0, 2, Op::kRead, /*key=*/5));
  bool saw_reply = false;
  while (h3.net.pending() > 0) {
    if (h3.net.peek(0).type == MsgType::kClientReply &&
        h3.net.peek(0).u.client_reply.seq == 2) {
      saw_reply = true;
      EXPECT_EQ(h3.net.peek(0).u.client_reply.result, 0u);  // NullStateMachine default
    }
    h3.net.step();
  }
  EXPECT_TRUE(saw_reply);
}

TEST(OnePaxos, LearnsAreIdempotentAcrossDuplicates) {
  OpxHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // accept_req queued
  h.net.step();  // learns queued (3)
  // Duplicate one learn message.
  ASSERT_GE(h.net.pending(), 3u);
  const Message learn = h.net.peek(0);
  h.net.inject(learn);
  h.net.run();
  EXPECT_TRUE(h.at(learn.dst).log().is_learned(0));
  EXPECT_EQ(h.at(learn.dst).log().first_gap(), 1);
}

TEST(OnePaxos, SurvivesBackToBackReconfigurations) {
  OpxHarness h(5);
  // Acceptor dies -> switch; then new acceptor dies -> switch again.
  h.net.isolate(1);
  h.net.inject(test::client_request(7, 0, 1));
  h.settle();
  ASSERT_TRUE(h.at(0).is_leader());
  const NodeId a2 = h.at(0).active_acceptor();
  ASSERT_NE(a2, 1);
  h.net.isolate(a2);
  h.net.inject(test::client_request(7, 0, 2));
  h.settle();
  EXPECT_TRUE(h.at(0).is_leader());
  const NodeId a3 = h.at(0).active_acceptor();
  EXPECT_NE(a3, 1);
  EXPECT_NE(a3, a2);
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(0).log().is_learned(1));
}

}  // namespace
}  // namespace ci::core
