// Adversarial interleavings around 1Paxos reconfiguration: dueling
// takeovers, reconfigurations racing each other, full-window handovers, and
// duplicate execution across leader changes. These are the cases Appendix B
// argues about; here they are exercised message by message.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/one_paxos.hpp"
#include "support/fake_net.hpp"

namespace ci::core {
namespace {

using test::FakeNet;

struct OpxHarness {
  explicit OpxHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      OnePaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 13;
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.initial_leader = 0;
      cfg.initial_acceptor = 1;
      engines.push_back(std::make_unique<OnePaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  OnePaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void settle(int rounds = 12, Nanos step = 1 * kMillisecond) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(step);
      net.run();
    }
  }

  int leader_count() {
    int n = 0;
    for (auto& e : engines) n += e->is_leader() ? 1 : 0;
    return n;
  }

  FakeNet net;
  std::vector<std::unique_ptr<OnePaxosEngine>> engines;
};

TEST(OnePaxosRaces, DuelingTakeoversConvergeToOneLeader) {
  // Nodes 2, 3 and 4 all suspect the leader at once (5 nodes so several
  // non-acceptor proposers exist). PaxosUtility serializes the LeaderChange
  // entries; exactly one node must end up leading.
  OpxHarness h(5);
  h.net.isolate(0);
  for (NodeId n : {2, 3, 4}) {
    Message m = test::client_request(10 + n, n, 1);
    m.flags = consensus::kFlagLeaderSuspect;
    h.net.inject(m);
  }
  h.settle(20);
  // The isolated old leader cannot know it was deposed; once healed it must
  // learn the LeaderChange and relinquish, leaving exactly one leader.
  h.net.heal(0);
  h.settle(10);
  EXPECT_EQ(h.leader_count(), 1);
  EXPECT_FALSE(h.at(0).is_leader());
  // All three queued commands commit exactly once each.
  OnePaxosEngine* some = nullptr;
  for (auto& e : h.engines) {
    if (e->is_leader()) some = e.get();
  }
  ASSERT_NE(some, nullptr);
  EXPECT_GE(some->log().first_gap(), 3);
  // Followers (minus the isolated one) agree on the prefix.
  for (NodeId r = 1; r < 5; ++r) {
    for (Instance in = 0; in < some->log().first_gap(); ++in) {
      if (h.at(r).log().is_learned(in)) {
        EXPECT_TRUE(*h.at(r).log().get(in) == *some->log().get(in));
      }
    }
  }
}

TEST(OnePaxosRaces, TakeoverDuringAcceptorSwitch) {
  // The leader starts an AcceptorChange (acceptor 1 dead); concurrently a
  // follower, prodded by a suspicious client, attempts a LeaderChange. The
  // follower's takeover probe goes unanswered (the acceptor it would adopt
  // is dead), so it must NOT announce — announcing would depose the only
  // node that can safely replace the acceptor. The leader completes its
  // switch and both commands commit.
  OpxHarness h;
  h.net.isolate(1);
  h.net.inject(test::client_request(7, 0, 1));  // leader will hit dead acceptor
  Message m = test::client_request(8, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(25);
  EXPECT_EQ(h.leader_count(), 1);
  ASSERT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 2);
  EXPECT_GE(h.at(0).log().first_gap(), 2);  // both client commands committed
}

TEST(OnePaxosRaces, FullWindowHandoverPreservesEveryProposal) {
  // Fill the leader's entire pipeline window with accepted-but-unlearned
  // proposals, then kill the acceptor: the AcceptorChange entry must carry
  // all of them and every one must decide with its original value.
  OpxHarness h;
  const std::int32_t window = consensus::EngineConfig{}.pipeline_window;
  for (std::int32_t s = 1; s <= window; ++s) {
    h.net.inject(test::client_request(7, 0, static_cast<std::uint32_t>(s)));
  }
  // Let accepts reach the acceptor but drop every learn.
  h.net.run();
  // (learns were delivered; instead, re-run scenario with drops)
  OpxHarness h2;
  for (std::int32_t s = 1; s <= window; ++s) {
    h2.net.inject(test::client_request(7, 0, static_cast<std::uint32_t>(s)));
  }
  // Deliver requests and accepts, drop all learns, then isolate.
  for (int i = 0; i < 2 * window + 4; ++i) h2.net.step();
  h2.net.drop_if([](const Message& m) { return m.type == MsgType::kOpxLearn; });
  h2.net.isolate(1);
  h2.settle(25);
  ASSERT_TRUE(h2.at(0).is_leader());
  EXPECT_EQ(h2.at(0).active_acceptor(), 2);
  for (Instance in = 0; in < window; ++in) {
    ASSERT_TRUE(h2.at(0).log().is_learned(in)) << "instance " << in << " lost in handover";
    EXPECT_EQ(h2.at(0).log().get(in)->seq, static_cast<std::uint32_t>(in + 1));
  }
}

TEST(OnePaxosRaces, CommandDecidedTwiceExecutesOnce) {
  // A client retry straddling a leader change can decide the same
  // (client, seq) at two instances; deliveries record both, the executor
  // suppresses the second (checked via the delivered log: same command at
  // two instances is allowed, divergent state is not).
  OpxHarness h;
  h.net.inject(test::client_request(7, 0, 1, consensus::Op::kWrite, 9, 100));
  h.net.step();  // request at leader
  h.net.step();  // accept at acceptor, learns queued
  h.net.drop_if([](const Message& m) { return m.type == MsgType::kOpxLearn; });
  h.net.isolate(0);
  // Retry the same command via node 2 (suspect flag), as a client would.
  Message retry = test::client_request(7, 2, 1, consensus::Op::kWrite, 9, 100);
  retry.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(retry);
  h.settle(20);
  ASSERT_TRUE(h.at(2).is_leader());
  // Instance 0 holds the original proposal (registered from the acceptor's
  // memory); the retry may occupy a later instance with the same command.
  ASSERT_TRUE(h.at(2).log().is_learned(0));
  EXPECT_EQ(h.at(2).log().get(0)->client, 7);
  int occurrences = 0;
  for (Instance in = 0; in < h.at(2).log().first_gap(); ++in) {
    if (h.at(2).log().get(in)->client == 7 && h.at(2).log().get(in)->seq == 1) occurrences++;
  }
  EXPECT_GE(occurrences, 1);  // decided at least once; duplicates tolerated
}

TEST(OnePaxosRaces, StaleHeartbeatCannotRollBackLeaderView) {
  // A deposed leader's heartbeat (older LeaderChange epoch) must not flip
  // followers back to it — the bug class behind Fig. 11's recovery.
  OpxHarness h;
  h.net.isolate(0);
  Message m = test::client_request(7, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle();
  h.net.heal(0);
  ASSERT_TRUE(h.at(2).is_leader());
  ASSERT_EQ(h.at(1).believed_leader(), 2);
  // Forge the old leader's pre-takeover heartbeat (epoch 0).
  Message stale(MsgType::kHeartbeat, consensus::ProtoId::kOnePaxos, 0, 1);
  stale.u.heartbeat.leader = 0;
  stale.u.heartbeat.ballot.counter = 0;  // bootstrap epoch
  h.net.inject(stale);
  h.net.run();
  EXPECT_EQ(h.at(1).believed_leader(), 2);  // unchanged
}

TEST(OnePaxosRaces, ReusedBackupAcceptorIsAdoptedNonFresh) {
  // Acceptor 1 dies -> switch to 2; acceptor 2 dies, 1 heals -> switch back
  // to 1, which still holds its old hpn (non-fresh). The reuse path must
  // adopt it rather than spin on the freshness check.
  OpxHarness h;
  h.net.isolate(1);
  h.net.inject(test::client_request(7, 0, 1));
  h.settle();
  ASSERT_TRUE(h.at(0).is_leader());
  ASSERT_EQ(h.at(0).active_acceptor(), 2);
  h.net.heal(1);
  h.net.isolate(2);
  h.net.inject(test::client_request(7, 0, 2));
  h.settle(25);
  EXPECT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 1);
  EXPECT_TRUE(h.at(0).log().is_learned(1));
  EXPECT_FALSE(h.at(1).is_fresh_acceptor());
}

TEST(OnePaxosRaces, LeaderChangeThenImmediateAcceptorDeath) {
  // §5.3 then §5.2 back to back: node 2 takes over (acceptor 1 alive), then
  // the acceptor dies; as established Global leader node 2 may now switch
  // acceptors — to the healed node 0 or a backup.
  OpxHarness h;
  h.net.isolate(0);
  Message m = test::client_request(7, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle();
  ASSERT_TRUE(h.at(2).is_leader());
  h.net.heal(0);      // old leader returns as a follower
  h.settle(5);
  h.net.isolate(1);   // now the acceptor dies
  h.net.inject(test::client_request(7, 2, 2));
  h.settle(25);
  EXPECT_TRUE(h.at(2).is_leader());
  EXPECT_EQ(h.at(2).active_acceptor(), 0);
  EXPECT_TRUE(h.at(2).log().is_learned(1));
  EXPECT_FALSE(h.at(0).is_leader());
}

}  // namespace
}  // namespace ci::core
