// Unit tests for the sharding layer's pure parts: ShardSpec placement
// arithmetic, the per-group AgreementRecorder isolation invariant, and
// ShardedDeployment wiring (no transport involved).
#include "core/sharded_deployment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/protocol.hpp"

namespace ci::core {
namespace {

using consensus::Command;
using consensus::GroupId;
using consensus::NodeId;
using consensus::Op;

ClusterSpec base_spec(std::int32_t replicas, std::int32_t clients) {
  ClusterSpec o;
  o.protocol = Protocol::kMultiPaxos;
  o.num_replicas = replicas;
  o.num_clients = clients;
  return o;
}

TEST(ShardSpec, GroupMajorLayout) {
  const ShardSpec s(base_spec(3, 2), 4, Placement::kGroupMajor);
  EXPECT_EQ(s.nodes_per_group(), 5);
  EXPECT_EQ(s.total_nodes(), 20);
  EXPECT_EQ(s.global_node(0, 0), 0);
  EXPECT_EQ(s.global_node(0, 4), 4);
  EXPECT_EQ(s.global_node(1, 0), 5);
  EXPECT_EQ(s.global_node(3, 4), 19);
}

TEST(ShardSpec, InterleavedLayout) {
  const ShardSpec s(base_spec(3, 2), 4, Placement::kInterleaved);
  EXPECT_EQ(s.total_nodes(), 20);
  EXPECT_EQ(s.global_node(0, 0), 0);
  EXPECT_EQ(s.global_node(1, 0), 1);
  EXPECT_EQ(s.global_node(3, 0), 3);
  EXPECT_EQ(s.global_node(0, 1), 4);
  EXPECT_EQ(s.global_node(3, 4), 19);
}

TEST(ShardSpec, CoLocatedLayoutSharesNodes) {
  const ShardSpec s(base_spec(3, 2), 4, Placement::kCoLocated);
  EXPECT_EQ(s.total_nodes(), 5);  // one group's footprint
  for (GroupId g = 0; g < 4; ++g) {
    for (NodeId local = 0; local < 5; ++local) {
      EXPECT_EQ(s.global_node(g, local), local);
    }
  }
}

TEST(ShardSpec, NonCoLocatedLayoutsAreBijective) {
  for (const Placement p : {Placement::kGroupMajor, Placement::kInterleaved}) {
    const ShardSpec s(base_spec(3, 2), 3, p);
    std::set<NodeId> seen;
    for (GroupId g = 0; g < s.groups; ++g) {
      for (NodeId local = 0; local < s.nodes_per_group(); ++local) {
        const NodeId global = s.global_node(g, local);
        EXPECT_GE(global, 0);
        EXPECT_LT(global, s.total_nodes());
        EXPECT_TRUE(seen.insert(global).second) << "collision at " << global;
      }
    }
  }
}

TEST(ShardSpec, GroupZeroKeepsTheBaseSeed) {
  ShardSpec s(base_spec(3, 1), 3);
  s.base.seed = 41;
  EXPECT_EQ(s.group_spec(0).seed, 41u);
  EXPECT_EQ(s.group_spec(1).seed, 42u);
  EXPECT_EQ(s.group_spec(2).seed, 43u);
}

Command cmd(NodeId client, std::uint32_t seq, std::uint64_t value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kWrite;
  c.key = 1;
  c.value = value;
  return c;
}

// The cross-group isolation invariant: groups have independent instance
// spaces, so the SAME instance number deciding DIFFERENT values in two
// groups is normal operation — it must not trip either group's recorder.
// Only a conflict within one group is an agreement violation.
TEST(AgreementRecorder, InstanceSpacesAreIsolatedPerGroup) {
  AgreementRecorder g0(3);
  AgreementRecorder g1(3);

  g0.record(0, /*in=*/0, cmd(3, 1, 100));
  g1.record(0, /*in=*/0, cmd(3, 1, 999));  // same instance, different value
  EXPECT_TRUE(g0.consistent());
  EXPECT_TRUE(g1.consistent());

  // Re-delivery of the agreed value on another replica is fine...
  g0.record(1, 0, cmd(3, 1, 100));
  EXPECT_TRUE(g0.consistent());
  // ...but a conflicting value inside the SAME group is a violation.
  g0.record(2, 0, cmd(3, 2, 777));
  EXPECT_FALSE(g0.consistent());
  EXPECT_TRUE(g1.consistent());  // untouched by g0's violation
}

TEST(ShardedDeployment, WiresOneDemuxPerNodeAndOneRecorderPerGroup) {
  const ShardSpec s(base_spec(3, 2), 3, Placement::kGroupMajor);
  ShardedDeployment dep(s, /*auto_start_clients=*/true);

  EXPECT_EQ(dep.num_groups(), 3);
  EXPECT_EQ(dep.num_nodes(), 15);
  // Every node hosts exactly its group's engine under group-major.
  for (GroupId g = 0; g < 3; ++g) {
    for (NodeId local = 0; local < 5; ++local) {
      auto* demux = dep.node_engine(dep.global_node(g, local));
      ASSERT_NE(demux, nullptr);
      EXPECT_EQ(demux->engine_for(g), dep.group(g).node_engine(local));
      EXPECT_EQ(demux->engine_for((g + 1) % 3), nullptr);
    }
  }
  // One kStart target per (group, client).
  EXPECT_EQ(dep.client_targets().size(), 6u);
  // Recorders are distinct objects.
  EXPECT_NE(&dep.recorder(0), &dep.recorder(1));
}

TEST(ShardedDeployment, CoLocatedDemuxHostsEveryGroup) {
  const ShardSpec s(base_spec(3, 1), 4, Placement::kCoLocated);
  ShardedDeployment dep(s, /*auto_start_clients=*/true);
  EXPECT_EQ(dep.num_nodes(), 4);
  for (NodeId n = 0; n < 4; ++n) {
    for (GroupId g = 0; g < 4; ++g) {
      EXPECT_EQ(dep.node_engine(n)->engine_for(g), dep.group(g).node_engine(n));
    }
  }
}

}  // namespace
}  // namespace ci::core
