// Unit tests for the backend-agnostic spec: timeout profiles, fault-plan
// builders, and the deployment builder's wiring rules.
#include "core/cluster_spec.hpp"

#include <gtest/gtest.h>

#include "core/deployment.hpp"

namespace ci::core {
namespace {

TEST(TimeoutProfile, ManyCoreMatchesEngineDefaults) {
  // The spec's default engine knobs, the EngineConfig defaults, and the
  // many_core profile must be one and the same set of constants — the
  // divergence between ClusterOptions / RtClusterOptions / EngineConfig is
  // what this layer removed.
  const ClusterSpec spec;
  const consensus::EngineConfig d;
  EXPECT_EQ(spec.engine.retry_timeout, d.retry_timeout);
  EXPECT_EQ(spec.engine.fd_timeout, d.fd_timeout);
  EXPECT_EQ(spec.engine.heartbeat_period, d.heartbeat_period);
  EXPECT_EQ(spec.engine.pipeline_window, d.pipeline_window);

  ClusterSpec applied;
  applied.apply(TimeoutProfile::many_core());
  EXPECT_EQ(applied.engine.retry_timeout, d.retry_timeout);
  EXPECT_EQ(applied.engine.fd_timeout, d.fd_timeout);
  EXPECT_EQ(applied.engine.heartbeat_period, d.heartbeat_period);
  EXPECT_EQ(applied.workload.request_timeout, ClusterSpec{}.workload.request_timeout);
}

TEST(TimeoutProfile, ProfilesScaleWithTheirRegime) {
  const TimeoutProfile mc = TimeoutProfile::many_core();
  const TimeoutProfile lan = TimeoutProfile::lan();
  const TimeoutProfile rt = TimeoutProfile::real_threads();
  // LAN propagation (135 us) and thread scheduling noise both need longer
  // timers than simulated microsecond messaging.
  EXPECT_GT(lan.retry_timeout, mc.retry_timeout);
  EXPECT_GT(lan.fd_timeout, mc.fd_timeout);
  EXPECT_GT(rt.fd_timeout, mc.fd_timeout);
  EXPECT_GT(lan.pipeline_window, mc.pipeline_window);  // bandwidth-delay product
}

TEST(ClusterSpec, BackendProfileSelection) {
  ClusterSpec s;
  s.apply_backend_profile(Backend::kRt);
  EXPECT_EQ(s.engine.fd_timeout, TimeoutProfile::real_threads().fd_timeout);
  s.apply_backend_profile(Backend::kSim);
  EXPECT_EQ(s.engine.fd_timeout, TimeoutProfile::many_core().fd_timeout);
}

TEST(ClusterSpec, TopologyCounts) {
  ClusterSpec s;
  s.num_replicas = 5;
  s.num_clients = 3;
  EXPECT_EQ(s.client_count(), 3);
  EXPECT_EQ(s.node_count(), 8);
  s.joint = true;  // every replica hosts one client; num_clients ignored
  EXPECT_EQ(s.client_count(), 5);
  EXPECT_EQ(s.node_count(), 5);
}

TEST(FaultPlan, BuilderRecordsEvents) {
  FaultPlan plan;
  plan.slow_node(0, 1 * kMillisecond, 2 * kMillisecond, 50.0)
      .reset_acceptor_at(1, 3 * kMillisecond);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kSlowNode);
  EXPECT_EQ(plan.events[0].factor, 50.0);
  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::kResetAcceptor);
  EXPECT_EQ(plan.events[1].node, 1);
}

TEST(Deployment, SeparateWiring) {
  ClusterSpec s;
  s.num_replicas = 3;
  s.num_clients = 2;
  Deployment d(s, /*auto_start_clients=*/true);
  EXPECT_EQ(d.num_nodes(), 5);
  EXPECT_EQ(d.client_count(), 2);
  ASSERT_EQ(d.client_node_ids().size(), 2u);
  EXPECT_EQ(d.client_node_ids()[0], 3);
  EXPECT_EQ(d.client_node_ids()[1], 4);
  // Replica nodes host the replica engines directly.
  for (consensus::NodeId r = 0; r < 3; ++r) {
    EXPECT_EQ(d.node_engine(r), d.replica_engine(r));
    EXPECT_NE(d.state_machine(r), nullptr);
  }
  // Protocol accessors gate on the spec's protocol.
  EXPECT_NE(d.one_paxos(0), nullptr);
  EXPECT_EQ(d.multi_paxos(0), nullptr);
  EXPECT_EQ(d.two_pc(0), nullptr);
}

TEST(Deployment, JointWiringFoldsClientsIntoReplicaNodes) {
  ClusterSpec s;
  s.num_replicas = 4;
  s.joint = true;
  Deployment d(s, /*auto_start_clients=*/true);
  EXPECT_EQ(d.num_nodes(), 4);
  EXPECT_EQ(d.client_count(), 4);
  for (consensus::NodeId r = 0; r < 4; ++r) {
    EXPECT_EQ(d.client_node_ids()[static_cast<std::size_t>(r)], r);
    // Joint nodes host a composite engine, not the bare replica.
    EXPECT_NE(d.node_engine(r), d.replica_engine(r));
  }
}

TEST(AgreementRecorder, DetectsDivergedDecision) {
  AgreementRecorder rec(2);
  consensus::Command a;
  a.client = 5;
  a.seq = 1;
  consensus::Command b;
  b.client = 6;
  b.seq = 2;
  rec.record(0, /*in=*/1, a);
  EXPECT_TRUE(rec.consistent());
  rec.record(1, /*in=*/1, a);
  EXPECT_TRUE(rec.consistent());  // same value re-delivered: fine
  rec.record(1, /*in=*/2, b);
  EXPECT_TRUE(rec.consistent());
  rec.record(0, /*in=*/2, a);  // different value for instance 2
  EXPECT_FALSE(rec.consistent());
  EXPECT_EQ(rec.deliveries(), 4u);
  EXPECT_EQ(rec.delivered_by_node()[0].size(), 2u);
}

}  // namespace
}  // namespace ci::core
