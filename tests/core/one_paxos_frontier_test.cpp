// Regression tests for the loss-model robustness mechanisms (DESIGN.md §6):
// the allocation frontier, the gap catch-up, and the frontier recovery
// poll. Each reproduces, in miniature and deterministically, a failure the
// chaos fleet found.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/one_paxos.hpp"
#include "support/fake_net.hpp"

namespace ci::core {
namespace {

using test::FakeNet;

struct OpxHarness {
  explicit OpxHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      OnePaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 21;
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.initial_leader = 0;
      cfg.initial_acceptor = 1;
      engines.push_back(std::make_unique<OnePaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  OnePaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void settle(int rounds = 12, Nanos step = 1 * kMillisecond) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(step);
      net.run();
    }
  }

  // Runs to quiet while persistently dropping messages matching pred.
  void run_dropping(const std::function<bool(const Message&)>& pred) {
    while (true) {
      net.drop_if(pred);
      if (net.pending() == 0) return;
      net.step();
    }
  }

  FakeNet net;
  std::vector<std::unique_ptr<OnePaxosEngine>> engines;
};

TEST(OnePaxosFrontier, DecidedInstanceWithLostLearnsIsNeverRefilled) {
  // The seed-7 chaos bug in miniature: leader 0 commits instance 0 but the
  // learns to nodes 2.. are lost; the leader then switches acceptors; a
  // later leader (node 2, with a hole at 0) must NOT allocate instance 0 to
  // a new command — the AcceptorChange frontier forbids it.
  // Five nodes so a majority survives the two failures injected below.
  OpxHarness h(5);
  h.net.inject(test::client_request(7, 0, 1));
  // Deliver everything except learns headed to node 3 (including coalesced
  // catch-up runs): node 3's log keeps a hole at instance 0 while the
  // leader commits it.
  auto drop_learns_to_3 = [](const Message& m) {
    return (m.type == MsgType::kOpxLearn || m.type == MsgType::kOpxLearnRun) && m.dst == 3;
  };
  h.run_dropping(drop_learns_to_3);
  ASSERT_TRUE(h.at(0).log().is_learned(0));
  ASSERT_FALSE(h.at(3).log().is_learned(0));
  // Acceptor 1 dies; leader 0 switches to a backup (AcceptorChange carries
  // frontier >= 1). Keep dropping learns to node 3 throughout.
  h.net.isolate(1);
  h.net.inject(test::client_request(7, 0, 2));
  for (int i = 0; i < 12; ++i) {
    h.net.advance(1 * kMillisecond);
    h.run_dropping(drop_learns_to_3);
  }
  ASSERT_TRUE(h.at(0).is_leader());
  ASSERT_NE(h.at(0).active_acceptor(), 1);
  ASSERT_FALSE(h.at(3).log().is_learned(0));
  // Now node 0 dies too; node 3 (which still has the hole at instance 0)
  // takes over and proposes a brand-new command.
  h.net.isolate(0);
  Message m = test::client_request(8, 3, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(40);
  ASSERT_TRUE(h.at(3).is_leader());
  // Instance 0 must still hold client 7's command wherever it is learned —
  // never client 8's.
  for (NodeId r = 0; r < 5; ++r) {
    const Command* v = h.at(r).log().get(0);
    if (v != nullptr) {
      EXPECT_EQ(v->client, 7) << "instance 0 re-filled at node " << r;
      EXPECT_EQ(v->seq, 1u);
    }
  }
  // Client 8's command landed at an instance above the frontier.
  bool found = false;
  for (Instance in = 1; in < h.at(3).log().end(); ++in) {
    const Command* v = h.at(3).log().get(in);
    if (v != nullptr && v->client == 8) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(OnePaxosFrontier, LaggingLearnerCatchesUpViaHeartbeat) {
  OpxHarness h;
  // Node 2 misses every learn while two commands commit.
  h.net.inject(test::client_request(7, 0, 1));
  h.net.inject(test::client_request(7, 0, 2));
  h.run_dropping(
      [](const Message& m) { return m.type == MsgType::kOpxLearn && m.dst == 2; });
  ASSERT_TRUE(h.at(0).log().is_learned(1));
  ASSERT_FALSE(h.at(2).log().is_learned(0));
  // Heartbeats advertise the leader's commit frontier; node 2 requests a
  // re-send and fills its holes.
  h.settle(5);
  EXPECT_TRUE(h.at(2).log().is_learned(0));
  EXPECT_TRUE(h.at(2).log().is_learned(1));
  EXPECT_EQ(h.at(2).log().first_gap(), h.at(0).log().first_gap());
}

TEST(OnePaxosFrontier, RebootedAcceptorAfterLeaderDeathRecovers) {
  // The seed-13 wedge in miniature: the acceptor reboots while NO
  // established leader exists (old leader dead). The takeover proposer's
  // prepare goes unanswered (freshness mismatch); the long-timeout recovery
  // poll must eventually install a fresh backup and restore liveness.
  OpxHarness h;
  h.net.isolate(0);            // leader gone
  h.at(1).reset_acceptor_state();  // acceptor silently rebooted
  Message m = test::client_request(7, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  // Recovery needs: probe + LC + 3*fd prepare patience + fd poll + a
  // rotation through the dead node 0 + a freshness flip on node 1.
  h.settle(80);
  EXPECT_TRUE(h.at(2).is_leader());
  EXPECT_TRUE(h.at(2).log().is_learned(0));
  EXPECT_EQ(h.at(2).log().get(0)->client, 7);
  // Once the dead old leader returns it must learn the changes and stand
  // down, leaving exactly one leader.
  h.net.heal(0);
  h.settle(10);
  int leaders = 0;
  for (NodeId r = 0; r < 3; ++r) leaders += h.at(r).is_leader() ? 1 : 0;
  EXPECT_EQ(leaders, 1);
  EXPECT_FALSE(h.at(0).is_leader());
}

TEST(OnePaxosFrontier, PrepareRespFrontierBoundsNewLeader) {
  // The acceptor's own frontier must stop a freshly-adopting takeover
  // leader from reusing instances the acceptor has seen, even when the
  // leader's log is empty.
  OpxHarness h;
  h.net.inject(test::client_request(7, 0, 1));
  h.net.inject(test::client_request(7, 0, 2));
  h.net.inject(test::client_request(7, 0, 3));
  h.net.run();
  ASSERT_EQ(h.at(0).log().first_gap(), 3);
  // Node 2 lost everything (fresh log), node 0 dies; node 2 takes over.
  // (Node 2 DID learn in this harness; simulate loss via a fresh engine? —
  // instead verify the adopted frontier directly: after takeover the new
  // leader allocates client 8's command at instance >= 3.)
  h.net.isolate(0);
  Message m = test::client_request(8, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(20);
  ASSERT_TRUE(h.at(2).is_leader());
  bool found_below = false;
  for (Instance in = 0; in < 3; ++in) {
    const Command* v = h.at(2).log().get(in);
    if (v != nullptr && v->client == 8) found_below = true;
  }
  EXPECT_FALSE(found_below);
  ASSERT_TRUE(h.at(2).log().end() >= 4);
}

}  // namespace
}  // namespace ci::core
