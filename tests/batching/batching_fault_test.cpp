// Faults landing mid-batch. Batching changes the unit of agreement, so the
// danger cases are a leader or acceptor failing while multi-command
// instances are accepted but not decided: recovery must re-propose every
// batched value intact (no acked command lost, none decided twice with a
// different value). Two layers:
//   * simulator FaultPlan sweeps (slow-core leader, both protocols) with
//     the agreement recorder checking every acked command survived;
//   * hand-stepped FakeNet scripts (the one_paxos_races_test pattern,
//     extended to batched instances) driving the exact recovery paths:
//     Multi-Paxos phase-1 batch sidecars, the 1Paxos AcceptorChange entry
//     pool, the 1Paxos prepare batch sidecar, and the reordered
//     main-before-sidecar adoption hold.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "consensus/multi_paxos.hpp"
#include "core/one_paxos.hpp"
#include "sim/sim_cluster.hpp"
#include "support/fake_net.hpp"

namespace ci::core {
namespace {

using consensus::Batch;
using consensus::Command;
using consensus::MultiPaxosConfig;
using consensus::MultiPaxosEngine;
using test::FakeNet;

// ---- Simulator FaultPlan sweeps ----

class BatchedSlowLeader : public ::testing::TestWithParam<Protocol> {};

TEST_P(BatchedSlowLeader, NoAckedCommandLostAcrossTheTakeover) {
  ClusterSpec o;
  o.apply_backend_profile(core::Backend::kSim);
  o.protocol = GetParam();
  o.num_replicas = 3;
  o.num_clients = 4;
  o.seed = 13;
  o.engine.batch.max_commands = 8;
  // The initial leader turns into a drowning core mid-run, while batches
  // are in flight, and never heals.
  o.faults.slow_node(0, 50 * kMillisecond, 10 * kSecond, 1000);

  sim::SimCluster c(o);
  c.run(600 * kMillisecond);

  EXPECT_TRUE(c.consistent());
  // Commits continued past the fault: a takeover happened.
  EXPECT_GT(c.total_committed(), 100u);
  EXPECT_NE(c.replica_engine(1)->believed_leader(), 0);

  // Every acked command survived: a closed-loop client with `k` commits was
  // acked for seqs 1..k, and an ack is only sent after the command decided
  // — so each of those (client, seq) pairs must appear in the decided log.
  // (Duplicates across instances are legal — a retry can straddle the
  // takeover — and the executor's (client, seq) dedup applies them once.)
  std::set<std::pair<consensus::NodeId, std::uint32_t>> decided;
  for (const Command& cmd : c.deployment().recorder().decided_sequence()) {
    if (cmd.client != consensus::kNoNode) decided.emplace(cmd.client, cmd.seq);
  }
  for (std::int32_t i = 0; i < c.client_count(); ++i) {
    const consensus::NodeId client_node = o.num_replicas + i;
    const std::uint64_t committed = c.client(i).committed();
    EXPECT_GT(committed, 0u);
    for (std::uint32_t s = 1; s <= committed; ++s) {
      EXPECT_TRUE(decided.count({client_node, s}))
          << "client " << client_node << " was acked for seq " << s
          << " but the command is not in the decided log";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, BatchedSlowLeader,
                         ::testing::Values(Protocol::kMultiPaxos, Protocol::kOnePaxos),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return std::string(info.param == Protocol::kMultiPaxos
                                                  ? "MultiPaxos"
                                                  : "OnePaxos");
                         });

// ---- FakeNet scripting helpers ----

bool queue_has(const FakeNet& net, MsgType t) {
  for (std::size_t j = 0; j < net.pending(); ++j) {
    if (net.peek(j).type == t) return true;
  }
  return false;
}

// Delivers messages (no time advance) until one of type `t` is in flight.
[[nodiscard]] bool step_until_queued(FakeNet& net, MsgType t, int limit = 2000) {
  for (int i = 0; i < limit; ++i) {
    if (queue_has(net, t)) return true;
    if (!net.step()) return false;
  }
  return false;
}

// Delivers messages until no message of type `t` remains in flight.
void step_while_queued(FakeNet& net, MsgType t, int limit = 2000) {
  for (int i = 0; i < limit && queue_has(net, t); ++i) net.step();
}

Batch expected_batch(std::uint32_t first_seq, std::uint32_t last_seq) {
  Batch b;
  for (std::uint32_t s = first_seq; s <= last_seq; ++s) {
    Command c;
    c.client = 7;
    c.seq = s;
    c.op = consensus::Op::kWrite;
    c.key = 1;
    b.push_back(c);
  }
  return b;
}

// Exactly-once occurrence count for client 7's seqs [1, last] in a log.
template <typename EngineT>
void expect_exactly_once(EngineT& engine, std::uint32_t last) {
  for (std::uint32_t s = 1; s <= last; ++s) {
    int occurrences = 0;
    for (consensus::Instance in = 0; in < engine.log().end(); ++in) {
      const Batch* b = engine.log().get_batch(in);
      if (b == nullptr) continue;
      for (const Command& cmd : *b) {
        if (cmd.client == 7 && cmd.seq == s) occurrences++;
      }
    }
    EXPECT_EQ(occurrences, 1) << "seq " << s;
  }
}

// ---- Hand-stepped Multi-Paxos: batched phase-1 recovery ----

struct MpxHarness {
  explicit MpxHarness(std::int32_t batch, std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      MultiPaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 13;
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.base.batch.max_commands = batch;
      cfg.initial_leader = 0;
      engines.push_back(std::make_unique<MultiPaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  MultiPaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void settle(int rounds = 12, Nanos step = 1 * kMillisecond) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(step);
      net.run();
    }
  }

  int leader_count() {
    int n = 0;
    for (auto& e : engines) n += e->is_leader() ? 1 : 0;
    return n;
  }

  FakeNet net;
  std::vector<std::unique_ptr<MultiPaxosEngine>> engines;
};

TEST(MultiPaxosBatchedRaces, TakeoverRecoversAnAcceptedUndecidedBatch) {
  MpxHarness h(/*batch=*/4);
  // Group commit: seq 1 decides alone; seq 2 (first of the burst) goes out
  // alone too, and 3..5 queue behind it and leave as one 3-command batch.
  h.net.inject(test::client_request(7, 0, 1));
  h.net.run();
  for (std::uint32_t s = 2; s <= 5; ++s) h.net.inject(test::client_request(7, 0, s));
  ASSERT_TRUE(step_until_queued(h.net, MsgType::kPhase2BatchReq));
  step_while_queued(h.net, MsgType::kPhase2BatchReq);  // all three acceptors accept
  // Every acceptance broadcast for the batch is lost: the batch is accepted
  // on all three acceptors yet decided nowhere.
  ASSERT_EQ(h.net.drop_if(
                [](const Message& m) { return m.type == MsgType::kPhase2BatchAcked; }),
            9);
  const Instance wedged = h.at(0).log().first_gap();
  ASSERT_FALSE(h.at(0).log().is_learned(wedged));
  h.net.isolate(0);  // the leader dies mid-batch

  // A suspicious client prods node 1 into a takeover; phase 1 must carry
  // the batched accepted value through the kPhase1BatchResp sidecar.
  Message m = test::client_request(9, 1, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(15);

  // The isolated old leader cannot know it was deposed; among live nodes
  // exactly one leads. (Healing it here would make it forward its orphaned
  // window for a legitimate — executor-deduped — second decision, which
  // the exactly-once-in-log check below deliberately excludes.)
  ASSERT_TRUE(h.at(1).is_leader());
  EXPECT_FALSE(h.at(2).is_leader());
  const Batch want = expected_batch(3, 5);
  for (NodeId r : {1, 2}) {
    SCOPED_TRACE("replica " + std::to_string(r));
    ASSERT_TRUE(h.at(r).log().is_learned(wedged));
    EXPECT_TRUE(*h.at(r).log().get_batch(wedged) == want);  // original values, intact
  }
  expect_exactly_once(h.at(1), 5);
  // The prodding client's command committed after the recovered window.
  EXPECT_GE(h.at(1).log().first_gap(), wedged + 2);
}

// ---- Hand-stepped 1Paxos: batched reconfiguration ----

struct OpxBatchHarness {
  explicit OpxBatchHarness(std::int32_t batch, std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      OnePaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 13;
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.base.batch.max_commands = batch;
      cfg.initial_leader = 0;
      cfg.initial_acceptor = 1;
      engines.push_back(std::make_unique<OnePaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  OnePaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void settle(int rounds = 12, Nanos step = 1 * kMillisecond) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(step);
      net.run();
    }
  }

  // Drives the cluster to the canonical mid-batch danger state: instances
  // 0 and 1 ([1], then [2] — the first of the burst flushes alone) decided
  // everywhere; instance 2 = [3,4,5,6] accepted by the active acceptor but
  // learned NOWHERE (every batch learn dropped); seqs 7..8 still queued in
  // the leader's batcher.
  void wedge_batch_at_acceptor() {
    net.inject(test::client_request(7, 0, 1));
    net.run();
    for (std::uint32_t s = 2; s <= 8; ++s) net.inject(test::client_request(7, 0, s));
    ASSERT_TRUE(step_until_queued(net, MsgType::kOpxBatchAcceptReq));
    step_while_queued(net, MsgType::kOpxBatchAcceptReq);  // the acceptor accepts
    ASSERT_EQ(
        net.drop_if([](const Message& m) { return m.type == MsgType::kOpxBatchLearn; }),
        static_cast<int>(engines.size()));  // one learn per learner
    ASSERT_FALSE(at(0).log().is_learned(2));
  }

  FakeNet net;
  std::vector<std::unique_ptr<OnePaxosEngine>> engines;
};

// The wedged batch decided with its original values on `replicas`.
void expect_wedged_batch_decided(OpxBatchHarness& h, std::initializer_list<NodeId> replicas) {
  const Batch mid = expected_batch(3, 6);
  for (NodeId r : replicas) {
    SCOPED_TRACE("replica " + std::to_string(r));
    ASSERT_TRUE(h.at(r).log().is_learned(2));
    EXPECT_TRUE(*h.at(r).log().get_batch(2) == mid);
  }
}

TEST(OnePaxosBatchedRaces, AcceptorChangeCarriesTheBatchedWindow) {
  // The acceptor dies holding an accepted-undecided batch. The leader's
  // AcceptorChange entry must carry the batch through the utility log's
  // command pool, and the re-proposal to the fresh backup must decide the
  // original values (Lemma 2a at batch granularity).
  OpxBatchHarness h(/*batch=*/4);
  h.wedge_batch_at_acceptor();
  h.net.isolate(1);
  h.settle(25);

  ASSERT_TRUE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).active_acceptor(), 2);
  expect_wedged_batch_decided(h, {0, 2});
  // The leader survived, so its queued tail [7,8] followed as a batch.
  ASSERT_GE(h.at(0).log().first_gap(), 4);
  EXPECT_TRUE(*h.at(0).log().get_batch(3) == expected_batch(7, 8));
  expect_exactly_once(h.at(2), 8);
}

TEST(OnePaxosBatchedRaces, TakeoverFetchesWindowBodiesItNeverReceived) {
  // The decoupled AcceptorChange entry names its batched window by
  // (instance, count, digest); the bodies are broadcast out of line when
  // the change is proposed, and an adopter that MISSED that broadcast must
  // fetch them before taking over (fetch-on-adopt, DESIGN.md §1c).
  //
  // Script: on 5 replicas, the acceptor (1) dies holding an accepted,
  // undecided batch. Leader 0 inserts AcceptorChange(->2) — but the window
  // bodies to nodes 3 and 4 are lost, so only node 2 holds them. Leader 0
  // then dies before re-proposing the batch. Node 3 takes over: it reads
  // the decided entry, finds the ref's body missing locally, fetches it
  // from node 2, and only then completes the takeover and re-proposes the
  // original commands (Lemma 2a, sustained through two failures and a lossy
  // body broadcast).
  OpxBatchHarness h(/*batch=*/4, /*replicas=*/5);
  h.wedge_batch_at_acceptor();
  h.net.isolate(1);

  // Let leader 0 notice the silent acceptor and publish the window bodies;
  // lose the copies addressed to 3 and 4.
  for (int i = 0; i < 500 && !queue_has(h.net, MsgType::kOpxWindowBody); ++i) {
    if (!h.net.step()) h.net.advance(1 * kMillisecond);
  }
  ASSERT_TRUE(queue_has(h.net, MsgType::kOpxWindowBody));
  ASSERT_EQ(h.net.drop_if([](const Message& m) {
              return m.type == MsgType::kOpxWindowBody && (m.dst == 3 || m.dst == 4);
            }),
            2);

  // Drive the AcceptorChange to a decision and 0's adoption of the fresh
  // backup 2 — but drop every re-proposal so the wedged instance stays
  // undecided, and keep losing the (retried — the publisher re-broadcasts
  // on the retry cadence while switching) bodies toward 3 and 4, then kill
  // 0. (The drops model 0 dying mid-recovery behind a lossy fabric;
  // FakeNet has no partial-isolation primitive for a single direction.)
  bool adopted = false;
  for (int i = 0; i < 500 && !adopted; ++i) {
    h.net.drop_if([](const Message& m) {
      if (m.type == MsgType::kOpxWindowBody && (m.dst == 3 || m.dst == 4)) return true;
      return (m.type == MsgType::kOpxBatchAcceptReq || m.type == MsgType::kOpxAcceptReq) &&
             m.src == 0;
    });
    if (!h.net.step()) h.net.advance(1 * kMillisecond);
    adopted = h.at(0).is_leader() && h.at(0).active_acceptor() == 2;
  }
  ASSERT_TRUE(adopted);
  ASSERT_FALSE(h.at(2).log().is_learned(2));
  h.net.isolate(0);

  // Node 3 — which never received the body — is prodded into the takeover.
  // Node 4's failure detector may race it; both missed the broadcast, so
  // WHICHEVER proposer wins must first fetch the body from node 2.
  Message m = test::client_request(9, 3, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(60);

  const NodeId winner = h.at(3).is_leader() ? 3 : 4;
  ASSERT_TRUE(h.at(winner).is_leader()) << "no live proposer completed the takeover";
  EXPECT_EQ(h.at(winner).active_acceptor(), 2);
  const Batch mid = expected_batch(3, 6);
  for (NodeId r : {2, 3, 4}) {
    SCOPED_TRACE("replica " + std::to_string(r));
    ASSERT_TRUE(h.at(r).log().is_learned(2));
    EXPECT_TRUE(*h.at(r).log().get_batch(2) == mid);  // original values, intact
  }
  expect_exactly_once(h.at(winner), 6);
}

TEST(OnePaxosBatchedRaces, LeaderChangeAdoptionRecoversBatchedShortTermMemory) {
  // The LEADER dies mid-batch instead. The takeover proposer adopts the
  // surviving acceptor, whose short-term memory holds the batch; it must
  // arrive through the kOpxPrepareBatchResp sidecar and be re-proposed
  // unchanged. (Seqs 7..8 sat in the dead leader's batcher, never accepted
  // and never acked — a real client would retry them.)
  OpxBatchHarness h(/*batch=*/4);
  h.wedge_batch_at_acceptor();
  h.net.isolate(0);

  Message m = test::client_request(9, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);
  h.settle(25);

  ASSERT_TRUE(h.at(2).is_leader());
  expect_wedged_batch_decided(h, {2, 1});
  expect_exactly_once(h.at(2), 6);
  // The prodding client's command committed after the recovered window.
  EXPECT_GE(h.at(2).log().first_gap(), 4);
}

TEST(OnePaxosBatchedRaces, AdoptionWaitsForAReorderedBatchSidecar) {
  // Adversarial delivery: the main prepare response arrives BEFORE the
  // sidecar carrying the batch (jittered links reorder; a lost sidecar
  // resolves through a fresh-ballot retry). The adopter must hold the
  // adoption until its copy of the acceptor's memory is complete —
  // adopting early would re-propose a half-known window.
  OpxBatchHarness h(/*batch=*/4);
  h.wedge_batch_at_acceptor();
  h.net.isolate(0);

  Message m = test::client_request(9, 2, 1);
  m.flags = consensus::kFlagLeaderSuspect;
  h.net.inject(m);

  // Advance time only while the network is quiet (the failure detector has
  // to fire before the takeover starts); from the probe onward everything
  // to the prepare response is message-driven, so no tick can slip a
  // fresh-ballot retry between the sidecar and the main response.
  for (int i = 0; i < 500 && !queue_has(h.net, MsgType::kOpxPrepareBatchResp); ++i) {
    if (!h.net.step()) h.net.advance(1 * kMillisecond);
  }
  ASSERT_TRUE(queue_has(h.net, MsgType::kOpxPrepareBatchResp));
  Message sidecar;
  for (std::size_t j = 0; j < h.net.pending(); ++j) {
    if (h.net.peek(j).type == MsgType::kOpxPrepareBatchResp) sidecar = h.net.peek(j);
  }
  ASSERT_EQ(h.net.drop_if([](const Message& msg) {
              return msg.type == MsgType::kOpxPrepareBatchResp;
            }),
            1);
  h.net.run();  // the main response (num_batched = 1) lands without it
  EXPECT_FALSE(h.at(2).is_leader()) << "adopted with an incomplete report";

  h.net.inject(sidecar);  // the straggler arrives
  h.net.run();
  EXPECT_TRUE(h.at(2).is_leader());
  h.settle(10);
  expect_wedged_batch_decided(h, {2, 1});
  expect_exactly_once(h.at(2), 6);
}

}  // namespace
}  // namespace ci::core
