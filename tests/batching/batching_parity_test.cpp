// Batching parity: batch size x protocol x backend x group count, against
// the batch=1 baseline. Batching changes the unit of agreement, so the
// things it must NOT change are checked here explicitly:
//   * every client's acked command sequence (count and per-client order);
//   * the decided command sequence per group (identical to the baseline on
//     the deterministic backend, loss/dup/order-free on rt);
//   * a dense private instance space per group (batches pack the space, but
//     never hole it);
// plus the two claims the layer exists for: batch=1 reproduces the
// unbatched results exactly, and a saturated leader clears >= 2x throughput
// at batch=64.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/cluster_harness.hpp"
#include "rt/rt_cluster.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::harness {
namespace {

using consensus::Command;
using consensus::GroupId;
using consensus::NodeId;
using core::AgreementRecorder;
using core::Placement;
using core::Protocol;

constexpr std::uint64_t kQuota = 12;
constexpr std::int32_t kClients = 4;

ShardSpec batched_spec(Protocol p, Backend backend, std::int32_t groups,
                       std::int32_t batch) {
  ClusterSpec o;
  o.apply_backend_profile(backend);
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kQuota;
  o.seed = 17;
  o.engine.batch.max_commands = batch;
  return ShardSpec(o, groups, Placement::kGroupMajor);
}

// Per-client decided seq sequences, flattened in (instance, batch-position)
// order from the group's recorder.
std::map<NodeId, std::vector<std::uint32_t>> per_client_seqs(const AgreementRecorder& rec) {
  std::map<NodeId, std::vector<std::uint32_t>> out;
  for (const Command& cmd : rec.decided_sequence()) {
    if (cmd.client != consensus::kNoNode) out[cmd.client].push_back(cmd.seq);
  }
  return out;
}

// Group invariants every configuration must satisfy: full quota per client,
// agreement, dense instance space, batch sizes within policy.
void check_group(core::Deployment& dep, std::int32_t batch_cap) {
  for (std::int32_t i = 0; i < dep.client_count(); ++i) {
    EXPECT_EQ(dep.client(i)->committed(), kQuota) << "client " << i << " ack count";
  }
  const AgreementRecorder& rec = dep.recorder();
  EXPECT_TRUE(rec.consistent());
  const auto& decided = rec.decided();
  ASSERT_FALSE(decided.empty());
  EXPECT_EQ(decided.begin()->first, 0);  // private space starts at 0
  EXPECT_EQ(decided.rbegin()->first,
            static_cast<consensus::Instance>(decided.size()) - 1);  // dense
  for (const auto& [in, slots] : decided) {
    EXPECT_GE(slots.size(), 1u);
    EXPECT_LE(slots.size(), static_cast<std::size_t>(batch_cap)) << "instance " << in;
  }
}

class BatchingParity
    : public ::testing::TestWithParam<std::tuple<Protocol, Backend, std::int32_t, std::int32_t>> {
};

TEST_P(BatchingParity, AcksAndDecidedSequencesMatchTheUnbatchedBaseline) {
  const auto [protocol, backend, groups, batch] = GetParam();
  const ShardSpec shard = batched_spec(protocol, backend, groups, batch);

  if (backend == Backend::kSim) {
    // Baseline first: the same deployment at batch=1.
    sim::SimCluster base(batched_spec(protocol, backend, groups, 1));
    base.run(10 * kSecond);
    ASSERT_TRUE(base.sharded().clients_done());

    sim::SimCluster c(shard);
    c.run(10 * kSecond);
    ASSERT_TRUE(c.sharded().clients_done());

    bool saw_multi_command_batch = false;
    for (GroupId g = 0; g < groups; ++g) {
      SCOPED_TRACE("group " + std::to_string(g));
      check_group(c.sharded().group(g), batch);
      // Identical decided command sequences: every client's commands decide
      // exactly once, in seq order, in both runs — so the per-client
      // sequences match the baseline element for element.
      EXPECT_EQ(per_client_seqs(c.sharded().recorder(g)),
                per_client_seqs(base.sharded().recorder(g)));
      // Batching packs the same commands into no more instances than the
      // baseline needed, and actually formed multi-command batches.
      EXPECT_LE(c.sharded().recorder(g).decided().size(),
                base.sharded().recorder(g).decided().size());
      for (const auto& [in, slots] : c.sharded().recorder(g).decided()) {
        if (slots.size() >= 2) saw_multi_command_batch = true;
      }
    }
    EXPECT_TRUE(saw_multi_command_batch)
        << "batching never engaged: every instance carried one command";
  } else {
    rt::RtCluster c(shard);
    c.start();
    c.drive_until(now_nanos() + 60 * kSecond);
    c.stop();
    const RunResult r = c.collect();
    ASSERT_TRUE(c.clients_done());
    EXPECT_TRUE(r.consistent);
    for (GroupId g = 0; g < groups; ++g) {
      SCOPED_TRACE("group " + std::to_string(g));
      check_group(c.sharded().group(g), batch);
      // rt is nondeterministic (retries may re-decide a command; the
      // executor dedups those), so the sequence check is loss/order based:
      // every acked seq decided, and first occurrences in client order.
      for (const auto& [client, seqs] : per_client_seqs(c.sharded().recorder(g))) {
        std::vector<bool> seen(kQuota + 1, false);
        std::uint32_t last_first_seen = 0;
        for (const std::uint32_t s : seqs) {
          ASSERT_GE(s, 1u);
          ASSERT_LE(s, kQuota);
          if (!seen[s]) {
            EXPECT_EQ(s, last_first_seen + 1) << "client " << client << " decided out of order";
            last_first_seen = s;
            seen[s] = true;
          }
        }
        EXPECT_EQ(last_first_seen, kQuota) << "client " << client << " lost acked commands";
      }
    }
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Protocol, Backend, std::int32_t, std::int32_t>>&
        info) {
  std::string name =
      std::get<0>(info.param) == Protocol::kMultiPaxos ? "MultiPaxos" : "OnePaxos";
  name += "G" + std::to_string(std::get<2>(info.param));
  name += "B" + std::to_string(std::get<3>(info.param));
  name += std::get<1>(info.param) == Backend::kSim ? "_sim" : "_rt";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchingParity,
    ::testing::Combine(::testing::Values(Protocol::kMultiPaxos, Protocol::kOnePaxos),
                       ::testing::Values(Backend::kSim, Backend::kRt),
                       ::testing::Values(1, 4), ::testing::Values(8, 64)),
    param_name);

// Client-side coalescing parity (--client-coalesce): shipping N commands
// per kClientCmdBatch frame changes the wire grouping, never the acked
// command stream. Both backends, coalesce=1 (the legacy frames) vs 8,
// against the uncoalesced baseline on the deterministic backend.
ShardSpec coalesced_spec(Backend backend, std::int32_t groups, std::int32_t coalesce) {
  ClusterSpec o;
  o.apply_backend_profile(backend);
  o.protocol = Protocol::kMultiPaxos;
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kQuota;  // rounds of 8 then a ragged 4
  o.seed = 17;
  o.engine.batch.max_commands = 16;
  o.workload.client_coalesce = coalesce;
  return ShardSpec(o, groups, Placement::kGroupMajor);
}

class CoalesceParity
    : public ::testing::TestWithParam<std::tuple<Backend, std::int32_t>> {};

TEST_P(CoalesceParity, AckSequencesMatchTheUncoalescedBaseline) {
  const auto [backend, coalesce] = GetParam();
  constexpr std::int32_t kGroups = 2;
  const ShardSpec shard = coalesced_spec(backend, kGroups, coalesce);

  if (backend == Backend::kSim) {
    sim::SimCluster base(coalesced_spec(backend, kGroups, 1));
    base.run(10 * kSecond);
    ASSERT_TRUE(base.sharded().clients_done());

    sim::SimCluster c(shard);
    c.run(10 * kSecond);
    ASSERT_TRUE(c.sharded().clients_done());

    for (GroupId g = 0; g < kGroups; ++g) {
      SCOPED_TRACE("group " + std::to_string(g));
      for (std::int32_t i = 0; i < c.sharded().group(g).client_count(); ++i) {
        EXPECT_EQ(c.sharded().group(g).client(i)->committed(), kQuota);
      }
      EXPECT_TRUE(c.sharded().recorder(g).consistent());
      // Identical per-client ack sequences: every command decides exactly
      // once, in seq order, whether it rode a legacy frame or a shared one.
      EXPECT_EQ(per_client_seqs(c.sharded().recorder(g)),
                per_client_seqs(base.sharded().recorder(g)));
    }
    if (coalesce > 1) {
      // The point of the window: fewer boundary crossings for the same
      // acked stream.
      EXPECT_LT(c.net().total_messages(), base.net().total_messages())
          << "coalescing never formed a shared frame";
    } else {
      // coalesce=1 IS the baseline configuration: bit-identical run.
      EXPECT_EQ(c.net().total_messages(), base.net().total_messages());
      EXPECT_EQ(c.net().total_bytes(), base.net().total_bytes());
    }
  } else {
    rt::RtCluster c(shard);
    c.start();
    c.drive_until(now_nanos() + 60 * kSecond);
    c.stop();
    const RunResult r = c.collect();
    ASSERT_TRUE(c.clients_done());
    EXPECT_TRUE(r.consistent);
    for (GroupId g = 0; g < kGroups; ++g) {
      SCOPED_TRACE("group " + std::to_string(g));
      // Same loss/order discipline as the batching sweep: every acked seq
      // decided, first occurrences in client order, none lost.
      for (const auto& [client, seqs] : per_client_seqs(c.sharded().recorder(g))) {
        std::vector<bool> seen(kQuota + 1, false);
        std::uint32_t last_first_seen = 0;
        for (const std::uint32_t s : seqs) {
          ASSERT_GE(s, 1u);
          ASSERT_LE(s, kQuota);
          if (!seen[s]) {
            EXPECT_EQ(s, last_first_seen + 1)
                << "client " << client << " decided out of order";
            last_first_seen = s;
            seen[s] = true;
          }
        }
        EXPECT_EQ(last_first_seen, kQuota) << "client " << client << " lost acked commands";
      }
    }
  }
}

std::string coalesce_param_name(
    const ::testing::TestParamInfo<std::tuple<Backend, std::int32_t>>& info) {
  return "C" + std::to_string(std::get<1>(info.param)) +
         (std::get<0>(info.param) == Backend::kSim ? "_sim" : "_rt");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoalesceParity,
                         ::testing::Combine(::testing::Values(Backend::kSim, Backend::kRt),
                                            ::testing::Values(1, 8)),
                         coalesce_param_name);

// The degenerate case IS the old system: an explicit --batch=1 policy runs
// the legacy wire frames and reproduces the default-configuration results
// bit for bit on the deterministic backend — committed, issued, message
// count, deliveries, and the full latency distribution.
TEST(BatchingDegenerate, BatchOneReproducesUnbatchedResultsBitForBit) {
  for (const Protocol p : {Protocol::kMultiPaxos, Protocol::kOnePaxos}) {
    SCOPED_TRACE(core::protocol_name(p));
    ClusterSpec def;
    def.apply_backend_profile(Backend::kSim);
    def.protocol = p;
    def.num_replicas = 3;
    def.num_clients = 3;
    def.seed = 23;

    ClusterSpec one = def;
    one.engine.batch.max_commands = 1;  // explicit knob, same meaning
    one.engine.batch.flush_after = 50 * kMicrosecond;  // timer is irrelevant at cap 1

    RunPlan plan;
    plan.warmup = 10 * kMillisecond;
    plan.duration = 100 * kMillisecond;
    const RunResult a = run(Backend::kSim, def, plan);
    const RunResult b = run(Backend::kSim, one, plan);
    EXPECT_GT(a.committed, 0u);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_EQ(a.latency.percentile(0.99), b.latency.percentile(0.99));
  }
}

// The acceptance claim: a saturated single-group leader clears >= 2x
// committed throughput at batch=64 (the bench sweeps the full curve; this
// pins the floor in CI on the deterministic backend).
TEST(BatchingAmortization, BatchSixtyFourDoublesSaturatedSimThroughput) {
  auto throughput = [](std::int32_t batch) {
    ClusterSpec o;
    o.apply_backend_profile(Backend::kSim);
    o.protocol = Protocol::kMultiPaxos;
    o.num_replicas = 3;
    o.num_clients = 24;  // enough closed-loop clients to keep a backlog
    o.seed = 21;
    o.engine.batch.max_commands = batch;
    RunPlan plan;
    plan.warmup = 20 * kMillisecond;
    plan.duration = 100 * kMillisecond;
    const RunResult r = run(Backend::kSim, o, plan);
    EXPECT_TRUE(r.consistent);
    return r;
  };
  const RunResult base = throughput(1);
  const RunResult batched = throughput(64);
  EXPECT_GT(base.committed, 0u);
  EXPECT_GE(batched.committed, 2 * base.committed);
  // The mechanism: messages per committed command collapse.
  EXPECT_LT(static_cast<double>(batched.total_messages) /
                static_cast<double>(batched.committed),
            0.5 * static_cast<double>(base.total_messages) /
                static_cast<double>(base.committed));
  // And so do wire bytes per command (shape, not absolute): a batch of k
  // ships k commands behind ONE set of frame headers where the unbatched
  // regime ships k full frames, so per-op bytes must drop even though the
  // per-command client traffic stays. This is the byte-level half of the
  // amortization the decoupled codec preserves.
  ASSERT_GT(base.total_bytes, 0u);
  ASSERT_GT(batched.total_bytes, 0u);
  EXPECT_LT(static_cast<double>(batched.total_bytes) /
                static_cast<double>(batched.committed),
            0.8 * static_cast<double>(base.total_bytes) /
                static_cast<double>(base.committed));
}

}  // namespace
}  // namespace ci::harness
