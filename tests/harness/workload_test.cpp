// The open-loop workload engine (harness/workload.hpp): generator
// determinism and distribution shape without a cluster, then the drivers
// end to end — sim pacing and honest latency, the 50K-logical-session
// multiplexing smoke, inline transactions, the closed-loop companion, and
// wall-clock pacing accuracy on the rt backend.
#include "harness/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "client/service_client.hpp"

namespace ci::harness {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.sessions = 1000;
  p.target_rate = 100000;
  p.key_space = 10000;
  p.seed = 42;
  return p;
}

TEST(ArrivalGen, SameSeedSameSequence) {
  WorkloadProfile p = WorkloadProfile::preset('A');
  p.sessions = 1000;
  p.target_rate = 50000;
  p.value_bytes = 16;
  p.value_bytes_max = 64;
  p.seed = 7;
  ArrivalGen a(p), b(p);
  for (int i = 0; i < 10000; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    ASSERT_EQ(x.at, y.at);
    ASSERT_EQ(x.session, y.session);
    ASSERT_EQ(x.op, y.op);
    ASSERT_EQ(x.key, y.key);
    ASSERT_EQ(x.key2, y.key2);
    ASSERT_EQ(x.value, y.value);
    ASSERT_EQ(x.parts, y.parts);
  }
}

TEST(ArrivalGen, DifferentSeedsDiverge) {
  WorkloadProfile p = small_profile();
  ArrivalGen a(p);
  p.seed = 43;
  ArrivalGen b(p);
  int diffs = 0;
  for (int i = 0; i < 100; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    if (x.at != y.at || x.key != y.key || x.session != y.session) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(ArrivalGen, UniformPacingIsAnExactGrid) {
  WorkloadProfile p = small_profile();
  p.pacing = Pacing::kUniform;
  p.target_rate = 1e6;  // 1 us grid
  ArrivalGen g(p);
  for (Nanos i = 1; i <= 1000; ++i) EXPECT_EQ(g.next().at, i * 1000);
}

TEST(ArrivalGen, PoissonGapsAverageTheTargetRate) {
  WorkloadProfile p = small_profile();
  p.target_rate = 100000;  // mean gap 10 us
  ArrivalGen g(p);
  const int kN = 20000;
  Nanos last = 0, sum = 0;
  for (int i = 0; i < kN; ++i) {
    const Nanos at = g.next().at;
    sum += at - last;
    last = at;
  }
  const double mean = static_cast<double>(sum) / kN;
  EXPECT_GT(mean, 9000.0);   // within 10% of the 10 us expectation
  EXPECT_LT(mean, 11000.0);
}

TEST(ArrivalGen, PresetMixesMatchYcsb) {
  struct Case {
    char preset;
    WlOp counted;
    double lo, hi;
  };
  // Loose brackets over 20000 draws pin the shape, not the constants.
  for (const Case& c : {Case{'A', WlOp::kUpdate, 0.47, 0.53},
                        Case{'B', WlOp::kUpdate, 0.04, 0.06},
                        Case{'D', WlOp::kInsert, 0.04, 0.06},
                        Case{'E', WlOp::kScan, 0.93, 0.97},
                        Case{'F', WlOp::kRmw, 0.47, 0.53}}) {
    WorkloadProfile p = WorkloadProfile::preset(c.preset);
    p.target_rate = 100000;
    p.seed = 5;
    ArrivalGen g(p);
    int hits = 0;
    const int kN = 20000;
    for (int i = 0; i < kN; ++i) hits += g.next().op == c.counted ? 1 : 0;
    const double frac = static_cast<double>(hits) / kN;
    EXPECT_GT(frac, c.lo) << "preset " << c.preset;
    EXPECT_LT(frac, c.hi) << "preset " << c.preset;
  }
  // C is read-only, full stop.
  WorkloadProfile p = WorkloadProfile::preset('C');
  p.target_rate = 100000;
  ArrivalGen g(p);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(g.next().op, WlOp::kRead);
}

TEST(ArrivalGen, InsertsAppendAndLatestReadsChaseThem) {
  WorkloadProfile p = WorkloadProfile::preset('D');
  p.target_rate = 100000;
  p.key_space = 1000;
  p.seed = 9;
  ArrivalGen g(p);
  std::uint64_t last_insert = 0;
  std::uint64_t inserts = 0;
  std::uint64_t hot_tail_reads = 0, reads = 0;
  for (int i = 0; i < 20000; ++i) {
    const Arrival a = g.next();
    if (a.op == WlOp::kInsert) {
      // Fresh keys append past the initial space, strictly increasing.
      EXPECT_GE(a.key, p.key_space);
      if (inserts > 0) {
        EXPECT_EQ(a.key, last_insert + 1);
      }
      last_insert = a.key;
      ++inserts;
    } else if (a.op == WlOp::kRead && inserts > 0) {
      ++reads;
      // "Latest" skew: most reads land within the newest few records.
      EXPECT_LT(a.key, p.key_space + inserts);
      if (a.key + 10 >= p.key_space + inserts) ++hot_tail_reads;
    }
  }
  ASSERT_GT(inserts, 500u);
  ASSERT_GT(reads, 1000u);
  EXPECT_GT(static_cast<double>(hot_tail_reads) / static_cast<double>(reads), 0.3);
}

TEST(ArrivalGen, ValueBytesControlFragmentCount) {
  for (const auto& [bytes, parts] : std::vector<std::pair<int, int>>{
           {1, 1}, {8, 1}, {16, 1}, {17, 2}, {64, 4}, {128, 8}}) {
    WorkloadProfile p = WorkloadProfile::preset('A');
    p.target_rate = 100000;
    p.value_bytes = bytes;
    ArrivalGen g(p);
    for (int i = 0; i < 200; ++i) {
      const Arrival a = g.next();
      if (a.op == WlOp::kUpdate) {
        EXPECT_EQ(a.parts, parts) << bytes << " bytes";
      }
    }
  }
  // A size range draws a spread of fragment counts.
  WorkloadProfile p = WorkloadProfile::preset('A');
  p.target_rate = 100000;
  p.value_bytes = 16;
  p.value_bytes_max = 64;
  ArrivalGen g(p);
  bool saw[5] = {};
  for (int i = 0; i < 2000; ++i) {
    const Arrival a = g.next();
    if (a.op != WlOp::kUpdate) continue;
    ASSERT_GE(a.parts, 1);
    ASSERT_LE(a.parts, 4);
    saw[a.parts] = true;
  }
  EXPECT_TRUE(saw[1] && saw[2] && saw[3] && saw[4]);
}

TEST(ArrivalGen, SessionsStayInRangeAndSpread) {
  WorkloadProfile p = small_profile();
  p.sessions = 50000;
  ArrivalGen g(p);
  std::vector<bool> seen(50000, false);
  std::size_t distinct = 0;
  for (int i = 0; i < 100000; ++i) {
    const Arrival a = g.next();
    ASSERT_LT(a.session, 50000u);
    if (!seen[a.session]) {
      seen[a.session] = true;
      ++distinct;
    }
  }
  // Coupon-collector expectation for 100K uniform draws over 50K sessions
  // is ~43K distinct; 40K is a loose floor.
  EXPECT_GT(distinct, 40000u);
}

client::ServiceClient::Options sim_opts(std::int32_t conduits, std::int32_t groups = 1) {
  client::ServiceClient::Options o;
  o.backend = core::Backend::kSim;
  o.spec.protocol = core::Protocol::kMultiPaxos;
  o.spec.apply(core::TimeoutProfile::many_core());
  o.spec.workload.request_timeout = 10 * kMillisecond;  // session retry timer
  o.spec.engine.batch.max_commands = 16;
  o.num_sessions = conduits;
  o.groups = groups;
  return o;
}

TEST(OpenLoop, SimRunCompletesEverythingAndMeasuresLatency) {
  client::ServiceClient svc(sim_opts(4));
  WorkloadProfile p = WorkloadProfile::preset('A');
  p.sessions = 200;
  p.target_rate = 50000;
  p.key_space = 5000;
  p.seed = 3;
  const std::int64_t kOps = 2000;
  const WorkloadResult r = run_open_loop(svc, p, kOps);
  EXPECT_EQ(r.issued, kOps);
  EXPECT_EQ(r.completed, kOps);
  EXPECT_EQ(r.latency.count(), static_cast<std::uint64_t>(kOps));
  EXPECT_GT(r.latency.percentile(0.5), 0);
  EXPECT_GE(r.latency.percentile(0.99), r.latency.percentile(0.5));
  // 2000 arrivals at 50K/s schedule ~40 ms of virtual time; the measured
  // duration must cover the schedule (time cannot run backwards).
  EXPECT_GE(r.duration, 35 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.offered_rate, 50000.0);
  std::uint64_t issued_by_sessions = 0;
  for (const std::uint32_t n : r.session_ops) issued_by_sessions += n;
  EXPECT_EQ(issued_by_sessions, static_cast<std::uint64_t>(kOps));
}

TEST(OpenLoop, FiftyThousandLogicalSessionsMultiplex) {
  client::ServiceClient svc(sim_opts(4));
  WorkloadProfile p = WorkloadProfile::preset('B');
  p.sessions = 50000;
  p.target_rate = 200000;
  p.key_space = 100000;
  p.seed = 17;
  const std::int64_t kOps = 5000;
  const WorkloadResult r = run_open_loop(svc, p, kOps);
  EXPECT_EQ(r.completed, kOps);
  EXPECT_GT(r.latency.percentile(0.5), 0);
  EXPECT_GT(r.latency.percentile(0.99), 0);
  EXPECT_GT(r.latency.percentile(0.999), 0);
  ASSERT_EQ(r.session_ops.size(), 50000u);
  std::uint64_t sum = 0;
  for (const std::uint32_t n : r.session_ops) sum += n;
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kOps));
}

TEST(OpenLoop, TransactionsCommitInline) {
  client::ServiceClient svc(sim_opts(2, /*groups=*/2));
  WorkloadProfile p;
  p.sessions = 50;
  p.target_rate = 20000;
  p.mix.txn = 1.0;
  p.key_space = 1000;
  p.seed = 23;
  const WorkloadResult r = run_open_loop(svc, p, 200);
  EXPECT_EQ(r.completed, 200);
  EXPECT_EQ(r.latency.count(), 200u);
  EXPECT_GT(r.latency.percentile(0.5), 0);
}

TEST(OpenLoop, ScansAndWideValuesComplete) {
  client::ServiceClient svc(sim_opts(2));
  WorkloadProfile p = WorkloadProfile::preset('E');
  p.sessions = 100;
  p.target_rate = 30000;
  p.key_space = 2000;
  p.value_bytes = 64;  // 4-fragment inserts
  p.seed = 31;
  const WorkloadResult r = run_open_loop(svc, p, 500);
  EXPECT_EQ(r.completed, 500);
  EXPECT_EQ(r.latency.count(), 500u);
}

TEST(OpenLoop, ReadModifyWriteSpansBothRoundTrips) {
  client::ServiceClient svc(sim_opts(2));
  WorkloadProfile p;
  p.sessions = 100;
  p.target_rate = 20000;
  p.mix.rmw = 1.0;
  p.key_space = 2000;
  p.seed = 37;
  const WorkloadResult rmw = run_open_loop(svc, p, 400);
  EXPECT_EQ(rmw.completed, 400);
  client::ServiceClient svc2(sim_opts(2));
  p.mix.rmw = 0.0;  // pure reads, same schedule
  const WorkloadResult rd = run_open_loop(svc2, p, 400);
  EXPECT_EQ(rd.completed, 400);
  // Two round trips cost more than one (virtual time is deterministic
  // enough for a strict comparison of medians).
  EXPECT_GT(rmw.latency.percentile(0.5), rd.latency.percentile(0.5));
}

TEST(ClosedLoop, DrivesAFullPipeline) {
  client::ServiceClient svc(sim_opts(2));
  WorkloadProfile p = WorkloadProfile::preset('A');
  p.sessions = 500;
  p.key_space = 5000;
  p.seed = 41;  // target_rate stays 0: closed loop ignores the schedule
  const std::int64_t kOps = 2000;
  const WorkloadResult r = run_closed_loop(svc, p, kOps, /*depth=*/16);
  EXPECT_EQ(r.issued, kOps);
  EXPECT_EQ(r.completed, kOps);
  EXPECT_GT(r.achieved_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.offered_rate, 0.0);
  EXPECT_GT(r.latency.percentile(0.5), 0);
}

// Wall-clock pacing on the real backend: a uniform 2000/s schedule of 400
// arrivals spans 200 ms; the driver spins to each instant, so the run must
// take at least the schedule and not wildly more (drain tail + slow CI
// machines give the generous upper bound). RUN_SERIAL keeps the node
// threads honest.
TEST(OpenLoop, RtPacingTracksTheWallClock) {
  client::ServiceClient::Options o;
  o.backend = core::Backend::kRt;
  o.spec.protocol = core::Protocol::kMultiPaxos;
  o.num_sessions = 2;
  client::ServiceClient svc(o);
  WorkloadProfile p;
  p.sessions = 20;
  p.pacing = Pacing::kUniform;
  p.target_rate = 2000;
  p.key_space = 1000;
  p.seed = 47;
  const WorkloadResult r = run_open_loop(svc, p, 400);
  EXPECT_EQ(r.completed, 400);
  EXPECT_GE(r.duration, 195 * kMillisecond);  // cannot beat the schedule
  EXPECT_LE(r.duration, 2 * kSecond);         // and must not stall out
  const double achieved = r.achieved_rate();
  EXPECT_GT(achieved, 400.0);  // no collapse: the loop kept pace
  EXPECT_LT(achieved, 2100.0); // cannot exceed the offered rate (plus drain noise)
}

}  // namespace
}  // namespace ci::harness
