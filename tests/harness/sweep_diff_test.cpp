// harness::sweep_diff — the --sweep-diff machinery: one spec, both
// backends, automatic shape diffing. Registered as a ctest case so CI runs
// a real sim-vs-rt sweep every build (shapes only: quota completion,
// consistency, msgs/op within an order of magnitude — never wall-clock
// numbers; rt here is oversubscribed).
#include <gtest/gtest.h>

#include "harness/cluster_harness.hpp"

namespace ci::harness {
namespace {

using core::Protocol;

ClusterSpec sweep_spec(Protocol p, std::int32_t batch) {
  ClusterSpec o;
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = 2;
  o.workload.requests_per_client = 25;
  o.engine.batch.max_commands = batch;
  o.seed = 33;
  return o;
}

RunPlan quota_plan() {
  RunPlan plan;
  plan.duration = 10 * kSecond;  // the quota ends the run long before this
  plan.max_wall = 20 * kSecond;
  return plan;
}

TEST(SweepDiff, MultiPaxosShapesAgreeAcrossBackends) {
  const SweepDiff d = sweep_diff(ShardSpec(sweep_spec(Protocol::kMultiPaxos, 1)),
                                 quota_plan());
  for (const std::string& m : d.mismatches) ADD_FAILURE() << m;
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.sim.committed, d.rt.committed);  // quota: exact agreement
}

TEST(SweepDiff, BatchedOnePaxosShapesAgreeAcrossBackends) {
  // Batched 1Paxos crosses the codec's pooled-body path on both backends.
  const SweepDiff d = sweep_diff(ShardSpec(sweep_spec(Protocol::kOnePaxos, 16)),
                                 quota_plan());
  for (const std::string& m : d.mismatches) ADD_FAILURE() << m;
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.sim.committed, d.rt.committed);
}

TEST(SweepDiff, FlagIsRecognized) {
  const char* argv_with[] = {"bin", "--sweep-diff"};
  const char* argv_without[] = {"bin", "--backend=sim"};
  EXPECT_TRUE(sweep_diff_from_args(2, const_cast<char**>(argv_with)));
  EXPECT_FALSE(sweep_diff_from_args(2, const_cast<char**>(argv_without)));
}

}  // namespace
}  // namespace ci::harness
