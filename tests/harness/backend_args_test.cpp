// Unit tests for the harness flag parsers. backend_from_args must reject
// unknown and missing values loudly (exit 2) instead of silently running
// the default backend — a sweep silently running sim when the user asked
// for a typo'd rt would report the wrong machine's numbers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cluster_harness.hpp"

namespace ci::harness {
namespace {

// argv helper: materializes writable argv from string literals.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(prog_);
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  char prog_[5] = "test";
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

TEST(ParseBackend, RecognizesAllBackends) {
  Backend b = Backend::kRt;
  EXPECT_TRUE(parse_backend("sim", &b));
  EXPECT_EQ(b, Backend::kSim);
  EXPECT_TRUE(parse_backend("rt", &b));
  EXPECT_EQ(b, Backend::kRt);
  EXPECT_TRUE(parse_backend("net", &b));
  EXPECT_EQ(b, Backend::kNet);
}

TEST(ParseBackend, RejectsUnknownNames) {
  Backend b = Backend::kSim;
  EXPECT_FALSE(parse_backend("simulator", &b));
  EXPECT_FALSE(parse_backend("", &b));
  EXPECT_FALSE(parse_backend("SIM", &b));
  EXPECT_EQ(b, Backend::kSim);  // untouched on failure
}

TEST(BackendFromArgs, AbsentFlagYieldsDefault) {
  Args a({"--seed=3"});
  Backend b = Backend::kRt;
  std::string err;
  EXPECT_TRUE(try_backend_from_args(a.argc(), a.argv(), Backend::kSim, &b, &err));
  EXPECT_EQ(b, Backend::kSim);
}

TEST(BackendFromArgs, ParsesEqualsAndSpaceForms) {
  {
    Args a({"--backend=rt"});
    Backend b = Backend::kSim;
    std::string err;
    EXPECT_TRUE(try_backend_from_args(a.argc(), a.argv(), Backend::kSim, &b, &err));
    EXPECT_EQ(b, Backend::kRt);
  }
  {
    Args a({"--backend", "rt"});
    Backend b = Backend::kSim;
    std::string err;
    EXPECT_TRUE(try_backend_from_args(a.argc(), a.argv(), Backend::kSim, &b, &err));
    EXPECT_EQ(b, Backend::kRt);
  }
}

TEST(BackendFromArgs, LastFlagWins) {
  Args a({"--backend=rt", "--backend=sim"});
  Backend b = Backend::kRt;
  std::string err;
  EXPECT_TRUE(try_backend_from_args(a.argc(), a.argv(), Backend::kRt, &b, &err));
  EXPECT_EQ(b, Backend::kSim);
}

TEST(BackendFromArgs, UnknownValueIsAnError) {
  Args a({"--backend=fast"});
  Backend b = Backend::kSim;
  std::string err;
  EXPECT_FALSE(try_backend_from_args(a.argc(), a.argv(), Backend::kSim, &b, &err));
  EXPECT_NE(err.find("fast"), std::string::npos);  // names the offender
}

TEST(BackendFromArgs, MissingValueIsAnError) {
  Args a({"--backend"});
  Backend b = Backend::kSim;
  std::string err;
  EXPECT_FALSE(try_backend_from_args(a.argc(), a.argv(), Backend::kSim, &b, &err));
  EXPECT_NE(err.find("--backend"), std::string::npos);
}

TEST(BackendFromArgs, ExitingWrapperDiesOnBadValue) {
  Args a({"--backend=bogus"});
  EXPECT_EXIT(backend_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
              "unknown backend");
}

TEST(PlacementFromArgs, ParsesAllPolicies) {
  Placement p = Placement::kGroupMajor;
  EXPECT_TRUE(parse_placement("group-major", &p));
  EXPECT_EQ(p, Placement::kGroupMajor);
  EXPECT_TRUE(parse_placement("interleaved", &p));
  EXPECT_EQ(p, Placement::kInterleaved);
  EXPECT_TRUE(parse_placement("colocated", &p));
  EXPECT_EQ(p, Placement::kCoLocated);
  EXPECT_FALSE(parse_placement("striped", &p));
}

TEST(GroupsFromArgs, ParsesAndDefaults) {
  {
    Args a({"--groups=4"});
    EXPECT_EQ(groups_from_args(a.argc(), a.argv()), 4);
  }
  {
    Args a({});
    EXPECT_EQ(groups_from_args(a.argc(), a.argv()), 1);
  }
  {
    Args a({"--groups=0"});
    EXPECT_EXIT(groups_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad group count");
  }
}

TEST(PositionalArgs, SkipsHarnessFlagsAndTheirValues) {
  Args a({"multipaxos", "--backend", "rt", "300", "--groups=4", "--placement", "colocated"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "multipaxos");
  EXPECT_EQ(pos[1], "300");
}

TEST(PositionalArgs, RejectsTypodFlagsInsteadOfDefaulting) {
  Args a({"--group=4"});  // missing the 's'
  EXPECT_EXIT(positional_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(RequireHarnessFlagsOnly, AcceptsKnownRejectsUnknown) {
  {
    Args a({"--backend=sim", "--groups", "2"});
    require_harness_flags_only(a.argc(), a.argv());  // must not exit
  }
  {
    Args a({"--colocated"});
    EXPECT_EXIT(require_harness_flags_only(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "unknown flag");
  }
}

TEST(RequireHarnessFlagsOnly, RejectsFlagsTheBinaryDoesNotConsume) {
  Args a({"--groups=4"});
  EXPECT_EXIT(require_harness_flags_only(a.argc(), a.argv(), {"--backend"}),
              ::testing::ExitedWithCode(2), "not used by this binary");
}

TEST(RequireHarnessFlagsOnly, RejectsTrailingFlagWithoutValue) {
  Args a({"--groups"});
  EXPECT_EXIT(require_harness_flags_only(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BatchFromArgs, ParsesAndDefaults) {
  {
    Args a({"--batch=8"});
    EXPECT_EQ(batch_from_args(a.argc(), a.argv()), 8);
  }
  {
    Args a({"--batch", "64"});
    EXPECT_EQ(batch_from_args(a.argc(), a.argv()), 64);
  }
  {
    Args a({});
    EXPECT_EQ(batch_from_args(a.argc(), a.argv()), 1);  // default: unbatched
  }
}

TEST(BatchFromArgs, RejectsNonPositiveSizes) {
  // --batch=0 must not silently run unbatched: a sweep that asked for
  // batching and got none would report the wrong machine's numbers.
  {
    Args a({"--batch=0"});
    std::int32_t n = 0;
    std::string err;
    EXPECT_FALSE(try_batch_from_args(a.argc(), a.argv(), 1, &n, &err));
    EXPECT_NE(err.find("'0'"), std::string::npos);
    EXPECT_EXIT(batch_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad batch size");
  }
  {
    Args a({"--batch=-3"});
    EXPECT_EXIT(batch_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad batch size");
  }
}

TEST(BatchFromArgs, RejectsGarbageOverflowAndMissingValue) {
  {
    Args a({"--batch=lots"});
    EXPECT_EXIT(batch_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad batch size");
  }
  {
    Args a({"--batch=65"});  // beyond the compile-time ceiling
    EXPECT_EXIT(batch_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad batch size");
  }
  {
    Args a({"--batch"});
    EXPECT_EXIT(batch_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(BatchFlushFromArgs, ParsesMicrosecondsRejectsNegative) {
  {
    Args a({"--batch-flush-us=50"});
    EXPECT_EQ(batch_flush_from_args(a.argc(), a.argv()), 50 * kMicrosecond);
  }
  {
    Args a({});
    EXPECT_EQ(batch_flush_from_args(a.argc(), a.argv()), 0);
  }
  {
    Args a({"--batch-flush-us=-1"});
    EXPECT_EXIT(batch_flush_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad flush timeout");
  }
  {
    // Beyond the overflow-safe bound (strtoll would clamp silently).
    Args a({"--batch-flush-us=9223372036854775807"});
    EXPECT_EXIT(batch_flush_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad flush timeout");
  }
}

TEST(BatchPolicyFromArgs, BundlesBothFlags) {
  Args a({"--batch=16", "--batch-flush-us=200"});
  const consensus::BatchPolicy p = batch_policy_from_args(a.argc(), a.argv());
  EXPECT_EQ(p.max_commands, 16);
  EXPECT_EQ(p.flush_after, 200 * kMicrosecond);
  EXPECT_TRUE(p.batching());
}

TEST(PositionalArgs, SkipsBatchFlagsToo) {
  Args a({"multipaxos", "--batch", "8", "--batch-flush-us=10", "300"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "multipaxos");
  EXPECT_EQ(pos[1], "300");
}

TEST(ShardFromArgs, BundlesGroupsAndPlacement) {
  Args a({"--groups=3", "--placement=colocated"});
  ClusterSpec base;
  base.num_replicas = 5;
  const ShardSpec s = shard_from_args(a.argc(), a.argv(), base);
  EXPECT_EQ(s.groups, 3);
  EXPECT_EQ(s.placement, Placement::kCoLocated);
  EXPECT_EQ(s.base.num_replicas, 5);
}

TEST(ClientCoalesceFromArgs, ParsesAndDefaults) {
  {
    Args a({"--client-coalesce=4"});
    EXPECT_EQ(client_coalesce_from_args(a.argc(), a.argv()), 4);
  }
  {
    Args a({"--client-coalesce", "8"});
    EXPECT_EQ(client_coalesce_from_args(a.argc(), a.argv()), 8);
  }
  {
    Args a({});
    EXPECT_EQ(client_coalesce_from_args(a.argc(), a.argv()), 1);  // default: legacy frames
  }
}

TEST(ClientCoalesceFromArgs, RejectsNonPositiveWindows) {
  // --client-coalesce=0 must not silently run uncoalesced: a sweep that
  // asked for coalescing and got per-command frames would report the wrong
  // wire's numbers (same contract as --batch=0).
  {
    Args a({"--client-coalesce=0"});
    std::int32_t n = 0;
    std::string err;
    EXPECT_FALSE(try_client_coalesce_from_args(a.argc(), a.argv(), 1, &n, &err));
    EXPECT_NE(err.find("'0'"), std::string::npos);
    EXPECT_EXIT(client_coalesce_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad coalesce window");
  }
  {
    Args a({"--client-coalesce=-2"});
    EXPECT_EXIT(client_coalesce_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad coalesce window");
  }
}

TEST(ClientCoalesceFromArgs, RejectsGarbageOverflowAndMissingValue) {
  {
    Args a({"--client-coalesce=lots"});
    EXPECT_EXIT(client_coalesce_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad coalesce window");
  }
  {
    // Beyond kMaxClientBatchCommands: one kClientCmdBatch frame cannot
    // carry more than the inline run capacity.
    Args a({"--client-coalesce=9"});
    EXPECT_EXIT(client_coalesce_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad coalesce window");
  }
  {
    Args a({"--client-coalesce"});
    EXPECT_EXIT(client_coalesce_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(PositionalArgs, SkipsClientCoalesceToo) {
  Args a({"--client-coalesce", "4", "keep"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "keep");
}

TEST(TxnMixFromArgs, ParsesFractionsAndDefaults) {
  {
    Args a({"--txn-mix=0.25"});
    EXPECT_DOUBLE_EQ(txn_mix_from_args(a.argc(), a.argv()), 0.25);
  }
  {
    Args a({"--txn-mix", "1"});
    EXPECT_DOUBLE_EQ(txn_mix_from_args(a.argc(), a.argv()), 1.0);
  }
  {
    Args a({});
    EXPECT_DOUBLE_EQ(txn_mix_from_args(a.argc(), a.argv(), 0.1), 0.1);
  }
}

TEST(TxnMixFromArgs, RejectsOutOfRangeAndGarbage) {
  for (const char* bad : {"--txn-mix=1.5", "--txn-mix=-0.1", "--txn-mix=nan",
                          "--txn-mix=lots", "--txn-mix=0.5x"}) {
    Args a({bad});
    EXPECT_EXIT(txn_mix_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad txn mix")
        << bad;
  }
  {
    Args a({"--txn-mix"});
    EXPECT_EXIT(txn_mix_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(PositionalArgs, SkipsTxnMixToo) {
  Args a({"--txn-mix", "0.3", "keep"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "keep");
}

TEST(ReadMixFromArgs, ParsesFractionsAndDefaults) {
  {
    Args a({"--read-mix=0.9"});
    EXPECT_DOUBLE_EQ(read_mix_from_args(a.argc(), a.argv()), 0.9);
  }
  {
    Args a({"--read-mix", "1"});
    EXPECT_DOUBLE_EQ(read_mix_from_args(a.argc(), a.argv()), 1.0);
  }
  {
    Args a({});
    EXPECT_DOUBLE_EQ(read_mix_from_args(a.argc(), a.argv(), 0.5), 0.5);
  }
}

TEST(ReadMixFromArgs, RejectsOutOfRangeAndGarbage) {
  // A read mix above 1 (or below 0) must not silently clamp: a sweep that
  // asked for 150% reads and measured a clamped 100% would report the wrong
  // workload's numbers.
  for (const char* bad : {"--read-mix=1.5", "--read-mix=-0.1", "--read-mix=nan",
                          "--read-mix=lots", "--read-mix=0.5x"}) {
    Args a({bad});
    EXPECT_EXIT(read_mix_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad read mix")
        << bad;
  }
  {
    Args a({"--read-mix"});
    EXPECT_EXIT(read_mix_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(LeaseMsFromArgs, ParsesMillisecondsAndDefaults) {
  {
    Args a({"--lease-ms=50"});
    EXPECT_EQ(lease_ms_from_args(a.argc(), a.argv()), 50 * kMillisecond);
  }
  {
    Args a({"--lease-ms", "0"});  // 0 = leases off, a legal explicit choice
    EXPECT_EQ(lease_ms_from_args(a.argc(), a.argv()), 0);
  }
  {
    Args a({});
    EXPECT_EQ(lease_ms_from_args(a.argc(), a.argv(), 7 * kMillisecond),
              7 * kMillisecond);
  }
}

TEST(LeaseMsFromArgs, RejectsNegativeGarbageOverflowAndMissingValue) {
  for (const char* bad : {"--lease-ms=-1", "--lease-ms=forever", "--lease-ms=5s",
                          // Beyond the overflow-safe bound (strtoll would
                          // clamp to LLONG_MAX silently).
                          "--lease-ms=9223372036854775807"}) {
    Args a({bad});
    EXPECT_EXIT(lease_ms_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad lease duration")
        << bad;
  }
  {
    Args a({"--lease-ms"});
    EXPECT_EXIT(lease_ms_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(PositionalArgs, SkipsReadMixAndLeaseMsToo) {
  Args a({"--read-mix", "0.9", "--lease-ms=50", "keep"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "keep");
}

TEST(FlushPolicyFromArgs, ParsesBothModesAndDefaults) {
  {
    Args a({"--flush-policy=adaptive"});
    EXPECT_EQ(flush_policy_from_args(a.argc(), a.argv()),
              consensus::BatchPolicy::FlushMode::kAdaptive);
  }
  {
    Args a({"--flush-policy", "fixed"});
    EXPECT_EQ(flush_policy_from_args(a.argc(), a.argv()),
              consensus::BatchPolicy::FlushMode::kFixed);
  }
  {
    Args a({});
    EXPECT_EQ(flush_policy_from_args(a.argc(), a.argv()),
              consensus::BatchPolicy::FlushMode::kFixed);
  }
}

TEST(FlushPolicyFromArgs, RejectsUnknownPoliciesAndMissingValue) {
  // --flush-policy=adptive must not silently run the fixed timer: an A/B
  // latency sweep that measured fixed twice would report a fake win.
  for (const char* bad : {"--flush-policy=adptive", "--flush-policy=auto",
                          "--flush-policy=FIXED"}) {
    Args a({bad});
    EXPECT_EXIT(flush_policy_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "unknown flush policy")
        << bad;
  }
  {
    Args a({"--flush-policy"});
    EXPECT_EXIT(flush_policy_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(BatchPolicyFromArgs, BundlesFlushModeToo) {
  Args a({"--batch=32", "--batch-flush-us=100", "--flush-policy=adaptive"});
  const consensus::BatchPolicy p = batch_policy_from_args(a.argc(), a.argv());
  EXPECT_EQ(p.max_commands, 32);
  EXPECT_EQ(p.flush_after, 100 * kMicrosecond);
  EXPECT_TRUE(p.adaptive());
}

TEST(SessionsFromArgs, ParsesBoundsAndDefaults) {
  {
    Args a({"--sessions=50000"});
    EXPECT_EQ(sessions_from_args(a.argc(), a.argv()), 50000);
  }
  {
    Args a({"--sessions", "1000000"});  // the ceiling itself is legal
    EXPECT_EQ(sessions_from_args(a.argc(), a.argv()), 1000000);
  }
  {
    Args a({});
    EXPECT_EQ(sessions_from_args(a.argc(), a.argv(), 256), 256);
  }
}

TEST(SessionsFromArgs, RejectsZeroOverflowAndGarbage) {
  for (const char* bad : {"--sessions=0", "--sessions=-5", "--sessions=1000001",
                          "--sessions=many", "--sessions=1e6"}) {
    Args a({bad});
    EXPECT_EXIT(sessions_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad session count")
        << bad;
  }
  {
    Args a({"--sessions"});
    EXPECT_EXIT(sessions_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(TargetRateFromArgs, ParsesRatesAndDefaults) {
  {
    Args a({"--target-rate=25000"});
    EXPECT_DOUBLE_EQ(target_rate_from_args(a.argc(), a.argv()), 25000.0);
  }
  {
    Args a({"--target-rate", "0"});  // 0 = closed loop, a legal explicit choice
    EXPECT_DOUBLE_EQ(target_rate_from_args(a.argc(), a.argv()), 0.0);
  }
  {
    Args a({"--target-rate=2.5e5"});  // scientific notation is fine for rates
    EXPECT_DOUBLE_EQ(target_rate_from_args(a.argc(), a.argv()), 250000.0);
  }
  {
    Args a({});
    EXPECT_DOUBLE_EQ(target_rate_from_args(a.argc(), a.argv(), 1000.0), 1000.0);
  }
}

TEST(TargetRateFromArgs, RejectsNegativeAbsurdAndGarbage) {
  for (const char* bad : {"--target-rate=-1", "--target-rate=2e9",
                          "--target-rate=nan", "--target-rate=fast",
                          "--target-rate=1000x"}) {
    Args a({bad});
    EXPECT_EXIT(target_rate_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad target rate")
        << bad;
  }
  {
    Args a({"--target-rate"});
    EXPECT_EXIT(target_rate_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(ZipfFromArgs, ParsesThetaAndDefaults) {
  {
    Args a({"--zipf=0.99"});
    EXPECT_DOUBLE_EQ(zipf_from_args(a.argc(), a.argv()), 0.99);
  }
  {
    Args a({"--zipf", "0"});  // uniform, a legal explicit choice
    EXPECT_DOUBLE_EQ(zipf_from_args(a.argc(), a.argv()), 0.0);
  }
  {
    Args a({});
    EXPECT_DOUBLE_EQ(zipf_from_args(a.argc(), a.argv()), 0.99);
  }
}

TEST(ZipfFromArgs, RejectsOneAndBeyondAndGarbage) {
  // theta = 1 diverges in the zeta-series formula, so the bound is strict.
  for (const char* bad : {"--zipf=1", "--zipf=1.2", "--zipf=-0.1", "--zipf=nan",
                          "--zipf=hot"}) {
    Args a({bad});
    EXPECT_EXIT(zipf_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "bad zipf theta")
        << bad;
  }
  {
    Args a({"--zipf"});
    EXPECT_EXIT(zipf_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(WorkloadFromArgs, ParsesPresetsAndDefaults) {
  {
    Args a({"--workload=A"});
    EXPECT_EQ(workload_from_args(a.argc(), a.argv()), 'A');
  }
  {
    Args a({"--workload", "F"});
    EXPECT_EQ(workload_from_args(a.argc(), a.argv()), 'F');
  }
  {
    Args a({});
    EXPECT_EQ(workload_from_args(a.argc(), a.argv(), 'B'), 'B');
  }
}

TEST(WorkloadFromArgs, RejectsUnknownPresetsAndMissingValue) {
  for (const char* bad : {"--workload=G", "--workload=a", "--workload=AB",
                          "--workload=ycsb-a"}) {
    Args a({bad});
    EXPECT_EXIT(workload_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "unknown workload preset")
        << bad;
  }
  {
    Args a({"--workload"});
    EXPECT_EXIT(workload_from_args(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
                "requires a value");
  }
}

TEST(ValueBytesFromArgs, ParsesBoundsAndDefaults) {
  {
    Args a({"--value-bytes=100"});
    EXPECT_EQ(value_bytes_from_args(a.argc(), a.argv()), 100);
  }
  {
    Args a({"--value-bytes", "128"});  // the 8-fragment ceiling is legal
    EXPECT_EQ(value_bytes_from_args(a.argc(), a.argv()), 128);
  }
  {
    Args a({});
    EXPECT_EQ(value_bytes_from_args(a.argc(), a.argv()), 8);
  }
}

TEST(ValueBytesFromArgs, RejectsZeroOversizedAndGarbage) {
  for (const char* bad : {"--value-bytes=0", "--value-bytes=-8",
                          "--value-bytes=129", "--value-bytes=big",
                          "--value-bytes=64k"}) {
    Args a({bad});
    EXPECT_EXIT(value_bytes_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad value size")
        << bad;
  }
  {
    Args a({"--value-bytes"});
    EXPECT_EXIT(value_bytes_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(PositionalArgs, SkipsWorkloadFlagsToo) {
  Args a({"--sessions", "50000", "--target-rate=1e5", "--zipf=0.9",
          "--workload", "A", "--value-bytes=64", "--flush-policy=adaptive",
          "keep"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "keep");
}

TEST(NetPortBaseFromArgs, ParsesBoundsAndDefaults) {
  {
    Args a({"--net-port-base=15000"});
    EXPECT_EQ(net_port_base_from_args(a.argc(), a.argv()), 15000);
  }
  {
    Args a({"--net-port-base", "0"});  // 0 = ephemeral, a legal explicit choice
    EXPECT_EQ(net_port_base_from_args(a.argc(), a.argv()), 0);
  }
  {
    Args a({"--net-port-base=65535"});  // the ceiling itself is legal
    EXPECT_EQ(net_port_base_from_args(a.argc(), a.argv()), 65535);
  }
  {
    Args a({});
    EXPECT_EQ(net_port_base_from_args(a.argc(), a.argv()), 0);
  }
}

TEST(NetPortBaseFromArgs, RejectsOutOfRangeGarbageAndMissingValue) {
  for (const char* bad : {"--net-port-base=-1", "--net-port-base=65536",
                          "--net-port-base=http", "--net-port-base=80x"}) {
    Args a({bad});
    EXPECT_EXIT(net_port_base_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad net port base")
        << bad;
  }
  {
    Args a({"--net-port-base"});
    EXPECT_EXIT(net_port_base_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(NetRegistryFromArgs, ParsesEndpointsAndDefaults) {
  {
    Args a({"--net-registry=127.0.0.1:19000"});
    EXPECT_EQ(net_registry_from_args(a.argc(), a.argv()), "127.0.0.1:19000");
  }
  {
    Args a({"--net-registry", "localhost:0"});  // port 0 = ephemeral bind
    EXPECT_EQ(net_registry_from_args(a.argc(), a.argv()), "localhost:0");
  }
  {
    Args a({});
    EXPECT_EQ(net_registry_from_args(a.argc(), a.argv()), "");  // loopback ephemeral
  }
}

TEST(NetRegistryFromArgs, RejectsMalformedEndpointsAndMissingValue) {
  // A registry the mesh can never reach must fail at the flag, not as a
  // 20-second bootstrap timeout later.
  for (const char* bad : {"--net-registry=localhost", "--net-registry=:9000",
                          "--net-registry=host:notaport",
                          "--net-registry=host:70000"}) {
    Args a({bad});
    EXPECT_EXIT(net_registry_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad registry endpoint")
        << bad;
  }
  {
    Args a({"--net-registry"});
    EXPECT_EXIT(net_registry_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(NetIoThreadsFromArgs, ParsesBoundsAndDefaults) {
  {
    Args a({"--net-io-threads=2"});
    EXPECT_EQ(net_io_threads_from_args(a.argc(), a.argv()), 2);
  }
  {
    Args a({"--net-io-threads", "0"});  // 0 = self-flushing, a legal choice
    EXPECT_EQ(net_io_threads_from_args(a.argc(), a.argv()), 0);
  }
  {
    Args a({});
    EXPECT_EQ(net_io_threads_from_args(a.argc(), a.argv()), 0);
  }
}

TEST(NetIoThreadsFromArgs, RejectsOutOfRangeGarbageAndMissingValue) {
  for (const char* bad : {"--net-io-threads=-1", "--net-io-threads=65",
                          "--net-io-threads=all", "--net-io-threads=2.5"}) {
    Args a({bad});
    EXPECT_EXIT(net_io_threads_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "bad io-thread count")
        << bad;
  }
  {
    Args a({"--net-io-threads"});
    EXPECT_EXIT(net_io_threads_from_args(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "requires a value");
  }
}

TEST(NetParamsFromArgs, BundlesAllThreeFlags) {
  Args a({"--net-port-base=14000", "--net-registry=127.0.0.1:14100",
          "--net-io-threads=3"});
  const core::NetParams net = net_params_from_args(a.argc(), a.argv());
  EXPECT_EQ(net.port_base, 14000);
  EXPECT_EQ(net.registry, "127.0.0.1:14100");
  EXPECT_EQ(net.io_threads, 3);
}

TEST(PositionalArgs, SkipsNetFlagsToo) {
  Args a({"--net-port-base", "14000", "--net-registry=127.0.0.1:0",
          "--net-io-threads", "2", "keep"});
  const auto pos = positional_args(a.argc(), a.argv());
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "keep");
}

// --help prints the full flag enumeration and exits 0 — from either strict
// scanner, and regardless of the binary's consumed set.
TEST(Usage, HelpPrintsEveryFlagAndExitsZero) {
  const std::string text = usage_text();
  for (const char* flag : {"--backend", "--groups", "--placement", "--batch",
                           "--batch-flush-us", "--flush-policy", "--client-coalesce",
                           "--txn-mix", "--read-mix", "--lease-ms", "--sessions",
                           "--target-rate", "--zipf", "--workload", "--value-bytes",
                           "--net-port-base", "--net-registry", "--net-io-threads",
                           "--sweep-diff", "--help"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag << " missing from usage";
  }
  // (the EXIT matcher regex applies to stderr; usage goes to stdout, so
  // only the exit code is asserted here)
  {
    Args a({"--help"});
    EXPECT_EXIT(positional_args(a.argc(), a.argv()), ::testing::ExitedWithCode(0), "");
  }
  {
    Args a({"--help"});
    EXPECT_EXIT(require_harness_flags_only(a.argc(), a.argv(), {"--backend"}),
                ::testing::ExitedWithCode(0), "");
  }
}

// The unknown-flag contract, restated with the full current flag set in the
// message: a typo exits 2 and names every real flag.
TEST(Usage, UnknownFlagExitsTwoNamingAllFlags) {
  Args a({"--txnmix=0.5"});
  EXPECT_EXIT(require_harness_flags_only(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2),
              "--client-coalesce, --txn-mix, --read-mix, --lease-ms, "
              "--sessions, --target-rate, --zipf, --workload, --value-bytes, "
              "--net-port-base, --net-registry, --net-io-threads, "
              "--sweep-diff, --help");
}

}  // namespace
}  // namespace ci::harness
