// Sharded backend parity: N consensus groups over ONE transport, on both
// backends. Every group must independently commit its full client quota,
// keep cross-replica agreement inside the group, and own a dense private
// instance space — sharing a transport must not let groups bleed into each
// other. Plus the headline scaling property: at an equal total replica
// budget, 4 Multi-Paxos groups out-commit 1 wide group (four leaders vs
// one).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/cluster_harness.hpp"
#include "rt/rt_cluster.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::harness {
namespace {

using consensus::GroupId;
using core::Placement;
using core::Protocol;

constexpr std::uint64_t kRequestsPerClient = 15;
constexpr std::int32_t kGroups = 3;
constexpr std::int32_t kClients = 2;

ShardSpec sharded_spec(Protocol p, Placement placement, Backend backend) {
  ClusterSpec o;
  o.apply_backend_profile(backend);
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = kClients;
  o.workload.requests_per_client = kRequestsPerClient;
  o.seed = 11;
  return ShardSpec(o, kGroups, placement);
}

// Every group committed its whole quota, stayed consistent, and decided a
// dense instance prefix of its own (instances start at 0 in EVERY group —
// the spaces are per-group, not partitioned slices of one shared log).
void check_groups(core::ShardedDeployment& dep) {
  for (GroupId g = 0; g < dep.num_groups(); ++g) {
    SCOPED_TRACE("group " + std::to_string(g));
    EXPECT_EQ(dep.group(g).total_committed(),
              kRequestsPerClient * static_cast<std::uint64_t>(kClients));
    const auto& rec = dep.recorder(g);
    EXPECT_TRUE(rec.consistent());
    EXPECT_GT(rec.deliveries(), 0u);
    const auto& decided = rec.decided();
    ASSERT_FALSE(decided.empty());
    EXPECT_EQ(decided.begin()->first, 0);  // private space starts at 0
    EXPECT_EQ(decided.rbegin()->first,
              static_cast<consensus::Instance>(decided.size()) - 1);  // dense
    // Enough instances for the quota (noops may pad past it).
    EXPECT_GE(decided.size(), kRequestsPerClient * static_cast<std::size_t>(kClients));
  }
}

class ShardedParity
    : public ::testing::TestWithParam<std::tuple<Protocol, Placement, Backend>> {};

TEST_P(ShardedParity, EveryGroupCommitsItsQuotaIndependently) {
  const auto [protocol, placement, backend] = GetParam();
  const ShardSpec shard = sharded_spec(protocol, placement, backend);

  if (backend == Backend::kSim) {
    sim::SimCluster c(shard);
    c.run(10 * kSecond);  // the quota ends the run long before this
    ASSERT_TRUE(c.sharded().clients_done());
    check_groups(c.sharded());
    EXPECT_GT(c.net().total_messages(), 0u);
    // Nothing was dropped on the demux floor: every message found its group.
    for (consensus::NodeId n = 0; n < c.sharded().num_nodes(); ++n) {
      EXPECT_EQ(c.sharded().node_engine(n)->unroutable(), 0u);
    }
    // Per-shard reporting views one group's slice of the run.
    for (GroupId g = 0; g < kGroups; ++g) {
      const RunResult gr = c.group_result(g, c.net().now());
      EXPECT_EQ(gr.committed, kRequestsPerClient * static_cast<std::uint64_t>(kClients));
      EXPECT_TRUE(gr.consistent);
    }
  } else {
    rt::RtCluster c(shard);
    c.start();
    c.drive_until(now_nanos() + 60 * kSecond);
    c.stop();
    const RunResult r = c.collect();  // replays delivery logs into recorders
    ASSERT_TRUE(c.clients_done());
    EXPECT_TRUE(r.consistent);
    check_groups(c.sharded());
    for (GroupId g = 0; g < kGroups; ++g) {
      const RunResult gr = c.collect_group(g);
      EXPECT_EQ(gr.committed, kRequestsPerClient * static_cast<std::uint64_t>(kClients));
      EXPECT_TRUE(gr.consistent);
      EXPECT_GT(gr.duration, 0);
    }
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Protocol, Placement, Backend>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case Protocol::kTwoPc:
      name = "TwoPc";
      break;
    case Protocol::kBasicPaxos:
      name = "BasicPaxos";
      break;
    case Protocol::kMultiPaxos:
      name = "MultiPaxos";
      break;
    case Protocol::kOnePaxos:
      name = "OnePaxos";
      break;
  }
  switch (std::get<1>(info.param)) {
    case Placement::kGroupMajor:
      name += "GroupMajor";
      break;
    case Placement::kInterleaved:
      name += "Interleaved";
      break;
    case Placement::kCoLocated:
      name += "CoLocated";
      break;
  }
  name += std::get<2>(info.param) == Backend::kSim ? "_sim" : "_rt";
  return name;
}

// All protocols under group-major on both backends; the other placements
// under the cheapest protocol pairing to keep the rt thread count sane on
// small machines.
INSTANTIATE_TEST_SUITE_P(
    AllProtocolsGroupMajor, ShardedParity,
    ::testing::Combine(::testing::Values(Protocol::kTwoPc, Protocol::kBasicPaxos,
                                         Protocol::kMultiPaxos, Protocol::kOnePaxos),
                       ::testing::Values(Placement::kGroupMajor),
                       ::testing::Values(Backend::kSim, Backend::kRt)),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    Placements, ShardedParity,
    ::testing::Combine(::testing::Values(Protocol::kMultiPaxos),
                       ::testing::Values(Placement::kInterleaved, Placement::kCoLocated),
                       ::testing::Values(Backend::kSim, Backend::kRt)),
    param_name);

// groups=1 through the sharded path is the same deployment as a plain
// ClusterSpec: identical committed/issued/message counts on the
// deterministic backend.
TEST(ShardedSingleGroup, ReproducesUnshardedSimResults) {
  ClusterSpec o;
  o.apply_backend_profile(Backend::kSim);
  o.protocol = Protocol::kMultiPaxos;
  o.num_replicas = 3;
  o.num_clients = 3;
  o.seed = 5;

  RunPlan plan;
  plan.warmup = 10 * kMillisecond;
  plan.duration = 100 * kMillisecond;
  const RunResult single = run(Backend::kSim, o, plan);
  const RunResult sharded = run(Backend::kSim, ShardSpec(o, 1), plan);

  EXPECT_EQ(sharded.committed, single.committed);
  EXPECT_EQ(sharded.issued, single.issued);
  EXPECT_EQ(sharded.total_messages, single.total_messages);
  EXPECT_EQ(sharded.deliveries, single.deliveries);
  EXPECT_GT(single.committed, 0u);
}

// The FaultPlan is template-scoped under sharding: one slow_node(0,...)
// event slows replica 0 of EVERY group — and 1Paxos rides it out in every
// group (each elects a replacement leader independently).
TEST(ShardedFaultPlan, SlowLeaderHitsEveryGroupAndAllRideThrough) {
  ClusterSpec o;
  o.apply_backend_profile(Backend::kSim);
  o.protocol = Protocol::kOnePaxos;
  o.num_replicas = 3;
  o.num_clients = 2;
  o.seed = 13;
  o.faults.slow_node(0, 50 * kMillisecond, 10 * kSecond, 1000);

  sim::SimCluster c(core::ShardSpec(o, 4, Placement::kInterleaved));
  c.run(600 * kMillisecond);
  for (GroupId g = 0; g < 4; ++g) {
    SCOPED_TRACE("group " + std::to_string(g));
    EXPECT_TRUE(c.sharded().recorder(g).consistent());
    // Commits continued despite the group's leader staying slow: takeover
    // happened in this group, not just in group 0.
    EXPECT_GT(c.sharded().group(g).total_committed(), 100u);
    // And the group abandoned the slowed initial leader.
    EXPECT_NE(c.sharded().group(g).replica_engine(1)->believed_leader(), 0);
  }
}

// The scaling claim behind the whole layer: at 12 replicas total,
// 4 Multi-Paxos groups (4 leaders) out-commit 1 group of 12 (1 leader) —
// strictly — on the deterministic backend.
TEST(ShardedScaling, FourGroupsBeatOneAtEqualReplicaBudget) {
  ClusterSpec wide;
  wide.apply_backend_profile(Backend::kSim);
  wide.protocol = Protocol::kMultiPaxos;
  wide.num_replicas = 12;
  wide.num_clients = 8;
  wide.seed = 9;

  ClusterSpec narrow = wide;
  narrow.num_replicas = 3;
  narrow.num_clients = 2;  // 4 groups x 2 = the same 8 clients

  RunPlan plan;
  plan.warmup = 10 * kMillisecond;
  plan.duration = 150 * kMillisecond;
  const RunResult one = run(Backend::kSim, ShardSpec(wide, 1), plan);
  const RunResult four = run(Backend::kSim, ShardSpec(narrow, 4), plan);

  EXPECT_TRUE(one.consistent);
  EXPECT_TRUE(four.consistent);
  EXPECT_GT(one.committed, 0u);
  EXPECT_GT(four.committed, one.committed);
}

}  // namespace
}  // namespace ci::harness
