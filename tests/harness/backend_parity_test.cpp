// Backend parity: the same ClusterSpec — each of the four protocols, plain
// and joint — runs through the unified harness on BOTH backends and must
// commit its full quota, keep cross-replica agreement, and report a
// non-empty latency histogram. This is the contract the paper's
// sim-vs-hardware comparisons (Fig. 2, 8, 11) rest on: one spec, two
// runtimes, same protocol behavior.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/cluster_harness.hpp"

namespace ci::harness {
namespace {

using core::Protocol;

constexpr std::uint64_t kRequestsPerClient = 25;

ClusterSpec parity_spec(Protocol p, bool joint, Backend backend) {
  ClusterSpec o;
  o.apply_backend_profile(backend);
  o.protocol = p;
  o.num_replicas = 3;
  o.num_clients = 2;
  o.joint = joint;
  o.workload.requests_per_client = kRequestsPerClient;
  o.seed = 21;
  return o;
}

class BackendParity
    : public ::testing::TestWithParam<std::tuple<Protocol, bool, Backend>> {};

TEST_P(BackendParity, CommitsConsistentlyWithLatencies) {
  const auto [protocol, joint, backend] = GetParam();
  const ClusterSpec spec = parity_spec(protocol, joint, backend);

  RunPlan plan;
  plan.duration = 10 * kSecond;  // the quota ends the run long before this
  plan.max_wall = 20 * kSecond;
  const RunResult r = run(backend, spec, plan);

  const std::uint64_t expected =
      kRequestsPerClient * static_cast<std::uint64_t>(spec.client_count());
  EXPECT_EQ(r.committed, expected);
  EXPECT_GE(r.issued, r.committed);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.deliveries, 0u);
  EXPECT_GT(r.latency.count(), 0u);
  EXPECT_GT(r.latency.mean(), 0.0);
  EXPECT_GT(r.total_messages, 0u);
  EXPECT_GT(r.duration, 0);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Protocol, bool, Backend>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case Protocol::kTwoPc:
      name = "TwoPc";
      break;
    case Protocol::kBasicPaxos:
      name = "BasicPaxos";
      break;
    case Protocol::kMultiPaxos:
      name = "MultiPaxos";
      break;
    case Protocol::kOnePaxos:
      name = "OnePaxos";
      break;
  }
  name += std::get<1>(info.param) ? "Joint" : "Separate";
  name += std::get<2>(info.param) == Backend::kSim ? "_sim" : "_rt";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, BackendParity,
    ::testing::Combine(::testing::Values(Protocol::kTwoPc, Protocol::kBasicPaxos,
                                         Protocol::kMultiPaxos, Protocol::kOnePaxos),
                       ::testing::Bool(),
                       ::testing::Values(Backend::kSim, Backend::kRt)),
    param_name);

// The FaultPlan travels with the spec: a mid-run slow leader lets 1Paxos
// keep committing on either backend (the paper's headline claim).
class FaultPlanParity : public ::testing::TestWithParam<Backend> {};

TEST_P(FaultPlanParity, OnePaxosCommitsThroughSlowLeader) {
  const Backend backend = GetParam();
  ClusterSpec o = parity_spec(Protocol::kOnePaxos, /*joint=*/false, backend);
  o.workload.requests_per_client = 0;  // run for the window
  // Leader slow from early in the run until past the window's end.
  o.faults.slow_node(0, 100 * kMillisecond, 10 * kSecond, 1000);

  RunPlan plan;
  plan.duration = backend == Backend::kSim ? 800 * kMillisecond : 1500 * kMillisecond;
  const RunResult r = run(backend, o, plan);

  EXPECT_TRUE(r.consistent);
  // Commits continued despite the leader staying slow: takeover happened.
  EXPECT_GT(r.committed, 100u);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, FaultPlanParity,
                         ::testing::Values(Backend::kSim, Backend::kRt),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

}  // namespace
}  // namespace ci::harness
