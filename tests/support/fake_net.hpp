// Hand-stepped test harness for protocol engines: a FakeNet delivers
// messages one at a time (or in bulk), lets tests drop/reorder specific
// messages, and advances virtual time to fire engine timers. This gives the
// unit tests surgical control that the discrete-event simulator (which
// models costs) does not aim to provide.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/engine.hpp"
#include "consensus/wire_codec.hpp"

namespace ci::test {

using ci::Nanos;
using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;

class FakeNet {
 public:
  // In-flight and externally-captured messages may own pooled command
  // bodies (batches longer than the inline buffer); return them. NOTE:
  // tests that peek-copy a message, drop the original, and re-inject the
  // copy later rely on inline bodies — keep hand-stepped batch sizes at or
  // below consensus::kInlineBatchCommands.
  ~FakeNet() {
    for (const Message& m : queue_) ci::wire::release_body(m);
    for (const Message& m : external_) ci::wire::release_body(m);
  }

  // Engines are registered with dense ids starting at 0.
  void add(Engine* e) {
    auto ctx = std::make_unique<Ctx>();
    ctx->net = this;
    ctx->id = static_cast<NodeId>(ctxs_.size());
    ctx->engine = e;
    ctxs_.push_back(std::move(ctx));
  }

  void start_all() {
    for (auto& c : ctxs_) c->engine->start(*c);
  }

  Nanos now() const { return now_; }

  // Moves time forward and runs every engine's tick once.
  void advance(Nanos d) {
    now_ += d;
    for (auto& c : ctxs_) c->engine->tick(*c);
  }

  void tick_all() {
    for (auto& c : ctxs_) c->engine->tick(*c);
  }

  std::size_t pending() const { return queue_.size(); }
  const Message& peek(std::size_t i = 0) const { return queue_[i]; }

  // Delivers the oldest in-flight message. Returns false if none.
  bool step() {
    if (queue_.empty()) return false;
    Message m = queue_.front();
    queue_.pop_front();
    deliver(m);
    return true;
  }

  // Delivers messages until the network is quiet (bounded by `limit` steps).
  int run(int limit = 100000) {
    int steps = 0;
    while (step()) {
      if (++steps >= limit) break;
    }
    return steps;
  }

  // Removes all in-flight messages matching the predicate; returns count.
  int drop_if(const std::function<bool(const Message&)>& pred) {
    int dropped = 0;
    std::deque<Message> kept;
    for (auto& m : queue_) {
      if (pred(m)) {
        dropped++;
        ci::wire::release_body(m);
      } else {
        kept.push_back(m);
      }
    }
    queue_ = std::move(kept);
    return dropped;
  }

  // Drops every message to or from a node (models an unresponsive core).
  void isolate(NodeId n) { isolated_.insert(n); }
  void heal(NodeId n) { isolated_.erase(n); }

  // From the current virtual time on, node n's PERCEIVED clock (its
  // Context::now()) advances `rate` times virtual time — the clock-skew
  // adversary of the lease staleness tests. Re-anchored at the switch so
  // the perceived clock never jumps backwards.
  void stretch_clock(NodeId n, double rate) {
    auto& c = *ctxs_[static_cast<std::size_t>(n)];
    c.skew_anchor_seen = c.now();
    c.skew_anchor_real = now_;
    c.skew_rate = rate;
  }

  // Injects a message as if sent externally.
  void inject(const Message& m) { queue_.push_back(m); }

  // Per-node delivered (instance, command) records.
  const std::vector<std::pair<Instance, Command>>& delivered(NodeId n) const {
    return ctxs_[static_cast<std::size_t>(n)]->delivered;
  }

  // The node's Context, for driving engine APIs directly from tests.
  Context& ctx(NodeId n) { return *ctxs_[static_cast<std::size_t>(n)]; }

  // All messages ever sent, for message-count assertions.
  std::uint64_t sent_count(NodeId n) const { return ctxs_[static_cast<std::size_t>(n)]->sent; }

  // Messages addressed to ids without a registered engine (e.g. replies to
  // clients the test injected by hand) land here instead of crashing.
  const std::vector<Message>& external() const { return external_; }
  void clear_external() {
    for (const Message& m : external_) ci::wire::release_body(m);
    external_.clear();
  }

 private:
  struct Ctx final : Context {
    NodeId self() const override { return id; }
    Nanos now() const override {
      if (skew_rate == 1.0) return net->now_;
      return skew_anchor_seen +
             static_cast<Nanos>(static_cast<double>(net->now_ - skew_anchor_real) *
                                skew_rate);
    }
    void send(NodeId dst, const Message& m) override {
      Message out = m;
      out.src = id;
      out.dst = dst;
      if (id != dst) sent++;
      if (net->isolated_.count(id) != 0 || net->isolated_.count(dst) != 0) {
        ci::wire::release_body(out);  // send() consumed it; nobody delivers
        return;
      }
      net->queue_.push_back(out);
    }
    void deliver(Instance in, const Command& cmd) override { delivered.emplace_back(in, cmd); }

    FakeNet* net = nullptr;
    NodeId id = -1;
    Engine* engine = nullptr;
    std::uint64_t sent = 0;
    std::vector<std::pair<Instance, Command>> delivered;
    // Clock skew (stretch_clock): perceived = seen + (virtual - real) * rate.
    Nanos skew_anchor_real = 0;
    Nanos skew_anchor_seen = 0;
    double skew_rate = 1.0;
  };

  void deliver(const Message& m) {
    if (isolated_.count(m.dst) != 0) {
      ci::wire::release_body(m);
      return;
    }
    if (m.dst < 0 || m.dst >= static_cast<NodeId>(ctxs_.size())) {
      external_.push_back(m);  // custody parks here until clear/destruction
      return;
    }
    auto& c = ctxs_[static_cast<std::size_t>(m.dst)];
    c->engine->on_message(*c, m);
    ci::wire::release_body(m);
  }

  Nanos now_ = 0;
  std::deque<Message> queue_;
  std::vector<Message> external_;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  std::set<NodeId> isolated_;
};

// Convenience builders.
inline Message client_request(NodeId client, NodeId dst, std::uint32_t seq,
                              consensus::Op op = consensus::Op::kWrite, std::uint64_t key = 1,
                              std::uint64_t value = 0) {
  Message m(MsgType::kClientRequest, consensus::ProtoId::kClient, client, dst);
  m.u.client_request.cmd.client = client;
  m.u.client_request.cmd.seq = seq;
  m.u.client_request.cmd.op = op;
  m.u.client_request.cmd.key = key;
  m.u.client_request.cmd.value = value;
  return m;
}

}  // namespace ci::test
