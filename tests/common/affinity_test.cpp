#include "common/affinity.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ci {
namespace {

TEST(Affinity, ReportsAtLeastOneCore) { EXPECT_GE(online_cores(), 1); }

TEST(Affinity, PinSelfIsBestEffort) {
  // In a restricted container pinning may be forbidden; the call must then
  // report failure rather than abort.
  if (!pinning_available()) {
    EXPECT_FALSE(pin_to_core(0));
    return;
  }
  EXPECT_TRUE(pin_to_core(0));
}

TEST(Affinity, PinFromWorkerThread) {
  if (!pinning_available()) GTEST_SKIP() << "pinning unavailable in this environment";
  bool ok = false;
  std::thread t([&] { ok = pin_to_core(online_cores() - 1); });
  t.join();
  EXPECT_TRUE(ok);
}

TEST(Affinity, NegativeCoreRejected) { EXPECT_FALSE(pin_to_core(-1)); }

TEST(Affinity, CoreIndexWrapsModuloOnlineCores) {
  if (!pinning_available()) GTEST_SKIP() << "pinning unavailable in this environment";
  // Core ids beyond the machine wrap instead of failing, so bench configs
  // written for a 48-core box still run on smaller machines.
  EXPECT_TRUE(pin_to_core(online_cores() + 3));
}

}  // namespace
}  // namespace ci
