#include "common/timeseries.hpp"

#include <gtest/gtest.h>

namespace ci {
namespace {

TEST(TimeSeries, RecordsIntoCorrectBucket) {
  TimeSeries ts(/*origin=*/0, /*bucket_width=*/10 * kMillisecond, /*max_buckets=*/10);
  ts.record(5 * kMillisecond);
  ts.record(15 * kMillisecond);
  ts.record(15 * kMillisecond);
  EXPECT_EQ(ts.bucket(0), 1u);
  EXPECT_EQ(ts.bucket(1), 2u);
  EXPECT_EQ(ts.total(), 3u);
}

TEST(TimeSeries, ClampsOutOfRange) {
  TimeSeries ts(/*origin=*/kSecond, /*bucket_width=*/kMillisecond, /*max_buckets=*/5);
  ts.record(0);                    // before origin -> bucket 0
  ts.record(10 * kSecond);         // far past the end -> last bucket
  EXPECT_EQ(ts.bucket(0), 1u);
  EXPECT_EQ(ts.bucket(4), 1u);
}

TEST(TimeSeries, RateConvertsToPerSecond) {
  TimeSeries ts(0, 10 * kMillisecond, 4);
  for (int i = 0; i < 50; ++i) ts.record(1 * kMillisecond);
  // 50 events in a 10 ms bucket = 5000 events/s.
  EXPECT_DOUBLE_EQ(ts.rate(0), 5000.0);
}

TEST(TimeSeries, MergeAddsCounts) {
  TimeSeries a(0, kMillisecond, 3);
  TimeSeries b(0, kMillisecond, 3);
  a.record(0);
  b.record(0);
  b.record(2 * kMillisecond);
  a.merge(b);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(2), 1u);
}

}  // namespace
}  // namespace ci
