#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ci {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 30000, 1500);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Guards against accidental algorithm changes that would silently change
  // every seeded simulation in the repository.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace ci
