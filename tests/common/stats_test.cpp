#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace ci {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, MinMaxTracked) {
  Summary s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

}  // namespace
}  // namespace ci
