// Distribution sanity for the zipfian sampler the workload engine draws hot
// keys from: skew shape, the uniform degenerate case, determinism, and the
// scramble's spreading property.
#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ci {
namespace {

TEST(Zipf, RanksStayInRange) {
  Rng rng(7);
  Zipf z(100, 0.99);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(z.next(rng), 100u);
  }
}

TEST(Zipf, SkewConcentratesMassOnTheHotRanks) {
  // YCSB theta=0.99 over 1000 items: the analytic head probabilities are
  // P(0) = 1/zeta ~ 0.13 and the top-10 carry roughly half the mass. Assert
  // loose brackets so the test pins the shape, not the constants.
  Rng rng(11);
  Zipf z(1000, 0.99);
  const int kSamples = 200000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kSamples; ++i) counts[static_cast<std::size_t>(z.next(rng))]++;
  const double p0 = static_cast<double>(counts[0]) / kSamples;
  EXPECT_GT(p0, 0.08);
  EXPECT_LT(p0, 0.20);
  int top10 = 0;
  for (int r = 0; r < 10; ++r) top10 += counts[static_cast<std::size_t>(r)];
  const double p_top10 = static_cast<double>(top10) / kSamples;
  EXPECT_GT(p_top10, 0.35);
  // Monotone head: rank 0 strictly beats rank 50 beats rank 500.
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[50], counts[500]);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(13);
  Zipf z(64, 0.0);
  const int kSamples = 128000;  // 2000 expected per rank
  std::vector<int> counts(64, 0);
  for (int i = 0; i < kSamples; ++i) counts[static_cast<std::size_t>(z.next(rng))]++;
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*lo, 1600);  // within ~20% of the 2000 expectation
  EXPECT_LT(*hi, 2400);
}

TEST(Zipf, SameSeedSameSequence) {
  Zipf z(512, 0.9);
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.next(a), z.next(b));
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  Rng rng(1);
  Zipf z(1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(rng), 0u);
}

TEST(ScrambledZipfKey, SpreadsTheHotRanksApart) {
  // The scramble exists so hot ranks are not adjacent keys: the top-8 ranks
  // must map to 8 distinct, non-consecutive keys in a large key space.
  const std::uint64_t kSpace = 1u << 20;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t r = 0; r < 8; ++r) keys.push_back(scrambled_zipf_key(r, kSpace));
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_GT(keys[i] - keys[i - 1], 1u);  // distinct and non-adjacent
  }
  EXPECT_LT(keys.front(), kSpace);
  EXPECT_LT(keys.back(), kSpace);
}

}  // namespace
}  // namespace ci
