#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ci {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  // Log buckets have ~3% relative width.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 1000.0, 1000.0 / 16);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (Nanos v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.percentile(1.0), 31);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  const Nanos p50 = h.percentile(0.50);
  const Nanos p90 = h.percentile(0.90);
  const Nanos p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.05);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1.0), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  const Nanos big = 3'600'000'000'000;  // one hour in ns
  h.record(big);
  EXPECT_EQ(h.max(), big);
  EXPECT_NEAR(static_cast<double>(h.percentile(1.0)), static_cast<double>(big),
              static_cast<double>(big) * 0.05);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(1.0), 0);
}

TEST(Histogram, MeanMatchesArithmetic) {
  Histogram h;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(i * 7);
    sum += i * 7;
  }
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
}

}  // namespace
}  // namespace ci
