// Integration tests: every protocol end-to-end over the real QC-libtask
// transport with pinned threads, plus the rt-side fault injection.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/affinity.hpp"
#include "rt/rt_cluster.hpp"

namespace ci::rt {
namespace {

ClusterSpec opts(Protocol p, std::int32_t clients, std::uint64_t reqs) {
  ClusterSpec o;
  o.apply(core::TimeoutProfile::real_threads());
  o.protocol = p;
  o.num_clients = clients;
  o.workload.requests_per_client = reqs;
  return o;
}

class RtProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(RtProtocols, SingleClientCommits) {
  RtCluster c(opts(GetParam(), 1, 100));
  c.start();
  const RunResult r = c.run_to_completion(20 * kSecond);
  EXPECT_EQ(r.committed, 100u) << protocol_name(GetParam());
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.latency.mean(), 0.0);
}

TEST_P(RtProtocols, FourClientsCommit) {
  RtCluster c(opts(GetParam(), 4, 100));
  c.start();
  const RunResult r = c.run_to_completion(30 * kSecond);
  EXPECT_EQ(r.committed, 400u) << protocol_name(GetParam());
  EXPECT_TRUE(r.consistent);
}

INSTANTIATE_TEST_SUITE_P(Protocols, RtProtocols,
                         ::testing::Values(Protocol::kTwoPc, Protocol::kMultiPaxos,
                                           Protocol::kOnePaxos, Protocol::kBasicPaxos),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kTwoPc:
                               return "TwoPc";
                             case Protocol::kBasicPaxos:
                               return "BasicPaxos";
                             case Protocol::kMultiPaxos:
                               return "MultiPaxos";
                             case Protocol::kOnePaxos:
                               return "OnePaxos";
                           }
                           return "Unknown";
                         });

TEST(RtCluster, JointDeploymentCommits) {
  ClusterSpec o = opts(Protocol::kOnePaxos, 0, 100);
  o.joint = true;
  o.num_replicas = 4;
  RtCluster c(o);
  c.start();
  const RunResult r = c.run_to_completion(20 * kSecond);
  EXPECT_EQ(r.committed, 400u);
  EXPECT_TRUE(r.consistent);
}

TEST(RtCluster, TwoPcJointLocalReadsServeWithoutMessages) {
  ClusterSpec o = opts(Protocol::kTwoPc, 0, 200);
  o.joint = true;
  o.joint_local_reads = true;
  o.workload.read_fraction = 0.75;
  RtCluster c(o);
  c.start();
  const RunResult r = c.run_to_completion(20 * kSecond);
  EXPECT_EQ(r.committed, 600u);
  EXPECT_GT(r.local_reads, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(RtCluster, OnePaxosLatencyBeatsTwoPc) {
  // §7.2's ordering on real hardware. Take the best median of several runs:
  // container scheduling noise only ever adds latency, so min-of-medians is
  // a robust estimator of the protocol's intrinsic cost.
  auto best_median = [](Protocol p) {
    Nanos best = 0;
    for (int run = 0; run < 3; ++run) {
      RtCluster c(opts(p, 1, 2000));
      c.start();
      const RunResult r = c.run_to_completion(30 * kSecond);
      EXPECT_EQ(r.committed, 2000u);
      const Nanos med = r.latency.percentile(0.5);
      best = run == 0 ? med : std::min(best, med);
    }
    return best;
  };
  const Nanos opx = best_median(Protocol::kOnePaxos);
  const Nanos tpc = best_median(Protocol::kTwoPc);
  EXPECT_LT(static_cast<double>(opx), static_cast<double>(tpc) * 1.15)
      << "1Paxos median " << opx << "ns vs 2PC median " << tpc << "ns";
}

std::uint64_t committed_sum(RtCluster& c) {
  std::uint64_t sum = 0;
  for (std::int32_t i = 0; i < c.client_count(); ++i) sum += c.client(i)->committed();
  return sum;
}

TEST(RtCluster, OnePaxosSurvivesSlowLeader) {
  // Fig. 11 shape: throughput drops during the takeover, then recovers.
  // Slowness is injected as per-message stalls (container sandboxes emulate
  // CPU affinity, so burner threads do not contend; see DESIGN.md).
  ClusterSpec o = opts(Protocol::kOnePaxos, 5, 0);
  o.workload.requests_per_client = 0;
  RtCluster c(o);
  c.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t before = committed_sum(c);
  c.throttle_node(0, 2000);  // ~1 ms per message on the leader
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  const std::uint64_t during_end = committed_sum(c);
  c.throttle_node(0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  c.stop();
  const RunResult r = c.collect();
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(before, 1000u);
  // Commits continued during the slow window (takeover happened)...
  EXPECT_GT(during_end - before, 500u) << "1Paxos did not recover during the fault";
  // ...and after it.
  EXPECT_GT(r.committed, during_end + 500u);
}

TEST(RtCluster, TwoPcBlocksUnderSlowCoordinator) {
  ClusterSpec o = opts(Protocol::kTwoPc, 5, 0);
  o.workload.requests_per_client = 0;
  RtCluster c(o);
  c.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t before = committed_sum(c);
  c.throttle_node(0, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const std::uint64_t during = committed_sum(c) - before;
  c.throttle_node(0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  c.stop();
  const RunResult r = c.collect();
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(before, 1000u);
  // Blocking: commits during the 2x-long slow window are a tiny fraction of
  // the pre-fault count — no takeover exists in 2PC (§2.2).
  EXPECT_LT(during, before / 5) << "2PC did not block under a slow coordinator";
  // Throughput returns once the coordinator heals.
  EXPECT_GT(r.committed, before + during);
}

TEST(RtCluster, TwoPcBlocksUnderSlowParticipant) {
  // Any single slow replica halts 2PC (it waits for ALL acks).
  ClusterSpec o = opts(Protocol::kTwoPc, 5, 0);
  o.workload.requests_per_client = 0;
  RtCluster c(o);
  c.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t before = committed_sum(c);
  c.throttle_node(2, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const std::uint64_t during = committed_sum(c) - before;
  c.throttle_node(2, 1);
  c.stop();
  EXPECT_GT(before, 1000u);
  EXPECT_LT(during, before / 5);
}

TEST(RtCluster, OnePaxosToleratesSlowThirdReplica) {
  // Node 2 is neither leader nor acceptor: 1Paxos keeps full throughput.
  ClusterSpec o = opts(Protocol::kOnePaxos, 5, 0);
  o.workload.requests_per_client = 0;
  RtCluster c(o);
  c.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t before = committed_sum(c);
  c.throttle_node(2, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const std::uint64_t during = committed_sum(c) - before;
  c.throttle_node(2, 1);
  c.stop();
  const RunResult r = c.collect();
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(before, 1000u);
  // The window is 2x the warmup: rate must stay comparable, not collapse.
  // On an oversubscribed machine the throttled node's busy-wait burns CPU
  // the whole cluster shares, so allow a deeper (but still non-blocking —
  // contrast 2PC's < 1/5 above) dip there.
  const bool oversubscribed = online_cores() < 9;  // 3 replicas + 5 clients + manager
  EXPECT_GT(during, oversubscribed ? before / 4 : before / 2)
      << "1Paxos stalled on a non-critical slow core";
}

}  // namespace
}  // namespace ci::rt
