// RtNode unit tests: self-send deferral (engine non-reentrancy), backlog
// flushing under a full queue, wire round-trips, and the slow-factor hook.
#include "rt/rt_node.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "rt/wire.hpp"

namespace ci::rt {
namespace {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Message;
using consensus::MsgType;
using consensus::ProtoId;

TEST(Wire, EncodeDecodeRoundTrip) {
  Message m(MsgType::kOpxLearn, ProtoId::kOnePaxos, 1, 2);
  m.u.opx_learn.instance = 7;
  m.u.opx_learn.value.client = 3;
  m.u.opx_learn.value.seq = 9;
  unsigned char buf[kWireBufBytes];
  const std::uint32_t n = encode(m, buf);
  EXPECT_EQ(n, consensus::wire_size(m));
  const Message out = decode(buf, n);
  EXPECT_EQ(out.type, MsgType::kOpxLearn);
  EXPECT_EQ(out.u.opx_learn.instance, 7);
  EXPECT_EQ(out.u.opx_learn.value.seq, 9u);
}

TEST(WireDeath, DecodeRejectsGarbageType) {
  unsigned char buf[kWireBufBytes] = {};
  buf[0] = 0xEE;  // bogus MsgType
  EXPECT_DEATH((void)decode(buf, sizeof(consensus::Message)), "malformed");
}

// Engine that echoes pings back to the sender and counts self-sends.
class PingEcho final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    if (m.type == MsgType::kPing) {
      received.fetch_add(1, std::memory_order_relaxed);
      Message pong(MsgType::kPong, ProtoId::kControl, ctx.self(), m.src);
      ctx.send(m.src, pong);
    } else if (m.type == MsgType::kPong) {
      pongs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::atomic<int> received{0};
  std::atomic<int> pongs{0};
};

// Engine that fires a burst of pings from its tick exactly once.
class BurstPinger final : public Engine {
 public:
  BurstPinger(consensus::NodeId dst, int count) : dst_(dst), count_(count) {}
  void on_message(Context&, const Message& m) override {
    if (m.type == MsgType::kPong) pongs.fetch_add(1, std::memory_order_relaxed);
  }
  void tick(Context& ctx) override {
    if (fired_) return;
    fired_ = true;
    for (int i = 0; i < count_; ++i) {
      Message ping(MsgType::kPing, ProtoId::kControl, ctx.self(), dst_);
      ctx.send(dst_, ping);
    }
  }
  std::atomic<int> pongs{0};

 private:
  consensus::NodeId dst_;
  int count_;
  bool fired_ = false;
};

TEST(RtNode, BurstLargerThanQueueIsBacklogFlushed) {
  // 100 messages burst into a 7-slot queue: the overflow must drain through
  // the pending backlog without loss or reorder.
  qclt::Network net;
  BurstPinger pinger(1, 100);
  PingEcho echo;
  RtNode n0(0, 2, &pinger, &net, -1);
  RtNode n1(1, 2, &echo, &net, -1);
  n0.start();
  n1.start();
  const Nanos deadline = now_nanos() + 10 * kSecond;
  while (pinger.pongs.load() < 100 && now_nanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  n0.request_stop();
  n1.request_stop();
  n0.join();
  n1.join();
  EXPECT_EQ(echo.received.load(), 100);
  EXPECT_EQ(pinger.pongs.load(), 100);
  EXPECT_EQ(n0.messages_sent(), 100u);
  EXPECT_EQ(n1.messages_sent(), 100u);
}

// Engine that self-sends from within a handler; delivery must be deferred
// (not reentrant) and still happen.
class SelfSender final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    if (m.type == MsgType::kPing) {
      in_handler = true;
      Message self(MsgType::kPong, ProtoId::kControl, ctx.self(), ctx.self());
      ctx.send(ctx.self(), self);
      // If delivery were reentrant, self_handled would already be true.
      reentered = self_handled.load();
      in_handler = false;
    } else if (m.type == MsgType::kPong) {
      EXPECT_FALSE(in_handler);
      self_handled.store(true);
    }
  }
  bool in_handler = false;
  bool reentered = false;
  std::atomic<bool> self_handled{false};
};

TEST(RtNode, SelfSendIsDeferredNotReentrant) {
  qclt::Network net;
  BurstPinger pinger(1, 1);
  SelfSender node;
  RtNode n0(0, 2, &pinger, &net, -1);
  RtNode n1(1, 2, &node, &net, -1);
  n0.start();
  n1.start();
  const Nanos deadline = now_nanos() + 10 * kSecond;
  while (!node.self_handled.load() && now_nanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  n0.request_stop();
  n1.request_stop();
  n0.join();
  n1.join();
  EXPECT_TRUE(node.self_handled.load());
  EXPECT_FALSE(node.reentered);
  // Self-sends are not boundary crossings.
  EXPECT_EQ(n1.messages_sent(), 0u);
}

TEST(RtNode, SlowFactorReducesThroughput) {
  qclt::Network net;
  BurstPinger pinger(1, 2000);
  PingEcho echo;
  RtNode n0(0, 2, &pinger, &net, -1);
  RtNode n1(1, 2, &echo, &net, -1);
  n1.set_slow_factor(200);  // ~100 us per processed message
  n0.start();
  n1.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const int slow_count = echo.received.load();
  n1.set_slow_factor(1);
  const Nanos deadline = now_nanos() + 10 * kSecond;
  while (pinger.pongs.load() < 2000 && now_nanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  n0.request_stop();
  n1.request_stop();
  n0.join();
  n1.join();
  // At ~100us each, the slow phase can process at most ~1500 in 150ms;
  // expect well under the full burst, then completion after healing.
  EXPECT_LT(slow_count, 1900);
  EXPECT_EQ(pinger.pongs.load(), 2000);
}

}  // namespace
}  // namespace ci::rt
