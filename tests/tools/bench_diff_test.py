#!/usr/bin/env python3
"""Unit tests for bench/bench_diff.py (the CI perf-regression gate).

Run as `bench_diff_test.py /path/to/bench_diff.py` (ctest passes the path).
Each case writes a pair of BENCH_*.json snapshots into a temp dir and runs
the real script as a subprocess, asserting on exit code and output — the
same surface CI depends on.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

BENCH_DIFF = None  # set from argv in __main__


def write_snapshot(directory, bench, rows):
    path = os.path.join(directory, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": bench, "rows": rows}, f)
    return path


def run_diff(old, new, *extra):
    proc = subprocess.run(
        [sys.executable, BENCH_DIFF, old, new, *extra],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def base_row(label, **overrides):
    row = {
        "label": label,
        "ops_per_sec": 1000.0,
        "msgs_per_op": 3.5,
        "bytes_per_op": 400.0,
        "p50_us": 50.0,
        "p99_us": 120.0,
        "p999_us": 150.0,
        "consistent": True,
    }
    row.update(overrides)
    return row


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.old_dir = os.path.join(self.tmp.name, "old")
        self.new_dir = os.path.join(self.tmp.name, "new")
        os.mkdir(self.old_dir)
        os.mkdir(self.new_dir)

    def tearDown(self):
        self.tmp.cleanup()

    def test_identical_snapshots_pass_the_gate(self):
        rows = [base_row("a"), base_row("b")]
        write_snapshot(self.old_dir, "fig", rows)
        write_snapshot(self.new_dir, "fig", rows)
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("2 rows matched", out)

    def test_throughput_drop_beyond_gate_fails(self):
        write_snapshot(self.old_dir, "fig", [base_row("a")])
        write_snapshot(self.new_dir, "fig", [base_row("a", ops_per_sec=900.0)])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 1, out)
        self.assertIn("regressions beyond the gate", out)
        self.assertIn("ops_per_sec", out)

    def test_latency_growth_beyond_gate_fails(self):
        write_snapshot(self.old_dir, "fig", [base_row("a")])
        write_snapshot(self.new_dir, "fig", [base_row("a", p99_us=200.0)])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 1, out)
        self.assertIn("p99_us", out)

    def test_regression_without_gate_flag_still_exits_zero(self):
        write_snapshot(self.old_dir, "fig", [base_row("a")])
        write_snapshot(self.new_dir, "fig", [base_row("a", ops_per_sec=100.0)])
        code, out = run_diff(self.old_dir, self.new_dir)
        self.assertEqual(code, 0, out)

    def test_one_sided_metric_warns_and_is_not_gated(self):
        old = base_row("a")
        del old["p999_us"]  # OLD snapshot predates the column
        write_snapshot(self.old_dir, "fig", [old])
        write_snapshot(self.new_dir, "fig", [base_row("a", p999_us=9999.0)])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("warning: fig/a p999_us present only in NEW; skipped", out)

    def test_one_sided_metric_in_old_warns_too(self):
        new = base_row("a")
        del new["bytes_per_op"]
        write_snapshot(self.old_dir, "fig", [base_row("a")])
        write_snapshot(self.new_dir, "fig", [new])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("warning: fig/a bytes_per_op present only in OLD; skipped", out)

    def test_unmatched_rows_are_listed_not_fatal(self):
        write_snapshot(self.old_dir, "fig", [base_row("gone")])
        write_snapshot(self.new_dir, "fig", [base_row("fresh")])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("only in OLD: fig/gone", out)
        self.assertIn("only in NEW: fig/fresh", out)

    def test_same_label_different_backend_never_matches(self):
        # A sim row and a net row with the same label are different
        # experiments: they must diff as unmatched, not as a regression,
        # no matter how far apart the numbers are.
        write_snapshot(self.old_dir, "fig", [base_row("a", backend="sim")])
        write_snapshot(
            self.new_dir, "fig", [base_row("a", backend="net", ops_per_sec=10.0)]
        )
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("0 rows matched", out)
        self.assertIn("only in OLD: fig/a@sim", out)
        self.assertIn("only in NEW: fig/a@net", out)

    def test_backend_tagged_rows_match_within_backend(self):
        rows = [base_row("a", backend="net")]
        write_snapshot(self.old_dir, "fig", rows)
        write_snapshot(self.new_dir, "fig", rows)
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 0, out)
        self.assertIn("1 rows matched", out)
        self.assertIn("fig/a@net", out)

    def test_consistency_flip_fails_the_gate(self):
        write_snapshot(self.old_dir, "fig", [base_row("a")])
        write_snapshot(self.new_dir, "fig", [base_row("a", consistent=False)])
        code, out = run_diff(self.old_dir, self.new_dir, "--max-regress-pct", "2")
        self.assertEqual(code, 1, out)
        self.assertIn("INCONSISTENT", out)

    def test_empty_directory_is_an_error(self):
        write_snapshot(self.new_dir, "fig", [base_row("a")])
        code, out = run_diff(self.old_dir, self.new_dir)
        self.assertNotEqual(code, 0)
        self.assertIn("no BENCH_", out)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: bench_diff_test.py /path/to/bench_diff.py")
    BENCH_DIFF = os.path.abspath(sys.argv.pop(1))
    if not os.path.exists(BENCH_DIFF):
        sys.exit(f"error: {BENCH_DIFF} not found")
    unittest.main(verbosity=2)
