// Integration tests for the ReplicatedKv facade and the synchronous client.
#include "kv/kv_store.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace ci::kv {
namespace {

// Every protocol, on both backends: the synchronous sessions block on real
// node threads under rt and pump virtual time under sim.
class KvProtocols
    : public ::testing::TestWithParam<std::tuple<Protocol, core::Backend>> {
 protected:
  static ReplicatedKv::Options opts() {
    ReplicatedKv::Options o;
    o.spec.protocol = std::get<0>(GetParam());
    o.backend = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(KvProtocols, PutGetRoundTrip) {
  ReplicatedKv store(opts());
  auto& s = store.session(0);
  EXPECT_EQ(s.put(1, 100), 0u);    // first write: old value 0
  EXPECT_EQ(s.put(1, 200), 100u);  // returns previous
  EXPECT_EQ(s.get(1), 200u);
  EXPECT_EQ(s.get(999), 0u);  // missing key
}

TEST_P(KvProtocols, SequentialOpsAreOrdered) {
  ReplicatedKv store(opts());
  auto& s = store.session(0);
  for (std::uint64_t i = 1; i <= 200; ++i) s.put(7, i);
  EXPECT_EQ(s.get(7), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, KvProtocols,
    ::testing::Combine(::testing::Values(Protocol::kTwoPc, Protocol::kMultiPaxos,
                                         Protocol::kOnePaxos),
                       ::testing::Values(core::Backend::kRt, core::Backend::kSim)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case Protocol::kTwoPc:
          name = "TwoPc";
          break;
        case Protocol::kBasicPaxos:
          name = "BasicPaxos";
          break;
        case Protocol::kMultiPaxos:
          name = "MultiPaxos";
          break;
        case Protocol::kOnePaxos:
          name = "OnePaxos";
          break;
      }
      return name + "_" + core::backend_name(std::get<1>(info.param));
    });

TEST(ReplicatedKv, ConcurrentSessionsStayConsistent) {
  ReplicatedKv::Options o;
  o.num_sessions = 4;
  ReplicatedKv store(o);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      auto& s = store.session(t);
      for (std::uint64_t i = 1; i <= 100; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 100 + (i % 10);
        s.put(key, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Replicas converge to identical state.
  busy_wait(50 * kMillisecond);
  for (int t = 0; t < 4; ++t) {
    for (std::uint64_t k = 0; k < 10; ++k) {
      const std::uint64_t key = static_cast<std::uint64_t>(t) * 100 + k;
      const std::uint64_t v0 = store.local_read(0, key);
      EXPECT_EQ(store.local_read(1, key), v0);
      EXPECT_EQ(store.local_read(2, key), v0);
    }
  }
}

// Pipelined sessions: put_async keeps a window of commands in flight;
// flush() is the commit barrier. With a batching policy the leader packs
// that backlog into multi-command instances — the facade-level proof that
// sessions actually fill batches.
class KvPipelining : public ::testing::TestWithParam<core::Backend> {};

TEST_P(KvPipelining, PipelinedWritesCommitAndStayOrdered) {
  ReplicatedKv::Options o;
  o.backend = GetParam();
  o.spec.protocol = Protocol::kMultiPaxos;
  o.spec.engine.batch.max_commands = 16;
  ReplicatedKv store(o);
  auto& s = store.session(0);
  for (std::uint64_t i = 1; i <= 300; ++i) s.put_async(7, i);
  s.flush();
  EXPECT_EQ(s.get(7), 300u);  // last write wins: per-session order held
  // A second wave after the barrier keeps working.
  for (std::uint64_t i = 1; i <= 50; ++i) s.put_async(100 + i, i);
  s.flush();
  for (std::uint64_t i = 1; i <= 50; ++i) EXPECT_EQ(s.get(100 + i), i);
}

TEST_P(KvPipelining, AsyncAndSyncOpsInterleave) {
  ReplicatedKv::Options o;
  o.backend = GetParam();
  o.spec.engine.batch.max_commands = 8;
  ReplicatedKv store(o);
  auto& s = store.session(0);
  s.put_async(1, 10);
  s.put_async(2, 20);
  s.flush();
  EXPECT_EQ(s.get(1), 10u);
  EXPECT_EQ(s.put(2, 21), 20u);  // synchronous op after the barrier
  EXPECT_EQ(s.get(2), 21u);
}

INSTANTIATE_TEST_SUITE_P(Backends, KvPipelining,
                         ::testing::Values(core::Backend::kRt, core::Backend::kSim),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

TEST(ReplicatedKv, SurvivesSlowLeader) {
  ReplicatedKv::Options o;
  o.spec.protocol = Protocol::kOnePaxos;
  ReplicatedKv store(o);
  auto& s = store.session(0);
  s.put(5, 50);
  store.throttle_replica(0, 10000);
  // Operations keep committing through the replacement leader.
  EXPECT_EQ(s.put(5, 51), 50u);
  EXPECT_EQ(s.get(5), 51u);
  store.throttle_replica(0, 1);
  EXPECT_EQ(s.put(5, 52), 51u);
}

TEST(ReplicatedKv, HonorsACustomStateMachineFactory) {
  int built = 0;
  ReplicatedKv::Options o;
  o.backend = core::Backend::kSim;
  o.spec.state_machine_factory = [&built](consensus::NodeId) {
    built++;
    return std::make_unique<consensus::MapStateMachine>();
  };
  ReplicatedKv store(o);
  EXPECT_EQ(built, 3);  // one machine per replica, from THIS factory
  auto& s = store.session(0);
  EXPECT_EQ(s.put(1, 5), 0u);
  EXPECT_EQ(s.get(1), 5u);
}

TEST(ReplicatedKv, LocalReadsSeeCommittedStateEventually) {
  ReplicatedKv store(ReplicatedKv::Options{});
  auto& s = store.session(0);
  s.put(11, 1111);
  // Relaxed read may lag but converges quickly without faults.
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    seen = store.local_read(2, 11) == 1111;
    if (!seen) busy_wait(1 * kMillisecond);
  }
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace ci::kv
