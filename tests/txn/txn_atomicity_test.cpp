// Cross-shard transaction semantics on a healthy cluster, both backends:
// multi-group commits are atomic, conflicting transactions vote no and
// abort cleanly, aborts release locks, and the single-key API keeps working
// through the same client layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "client/txn.hpp"
#include "kv/kv_store.hpp"

namespace ci::kv {
namespace {

using client::TxnPhase;
using client::TxnState;

// First key at or after `from` owned by group `g`.
std::uint64_t key_in_group(const ReplicatedKv& store, GroupId g, std::uint64_t from) {
  for (std::uint64_t k = from;; ++k) {
    if (store.group_of(k) == g) return k;
  }
}

class TxnBackends
    : public ::testing::TestWithParam<std::tuple<Protocol, core::Backend>> {
 protected:
  static ReplicatedKv::Options opts(std::int32_t groups) {
    ReplicatedKv::Options o;
    o.spec.protocol = std::get<0>(GetParam());
    o.backend = std::get<1>(GetParam());
    o.groups = groups;
    return o;
  }
};

TEST_P(TxnBackends, CommitsAtomicallyAcrossGroups) {
  ReplicatedKv store(opts(4));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 2, k1 + 1);
  ASSERT_NE(store.group_of(k1), store.group_of(k2));

  TxnHandle h = s.txn().put(k1, 111).put(k2, 222).commit();
  EXPECT_EQ(h.wait(), TxnState::kCommitted);
  EXPECT_NE(h.id(), consensus::kNoTxn);
  EXPECT_EQ(s.get(k1), 111u);
  EXPECT_EQ(s.get(k2), 222u);
}

TEST_P(TxnBackends, SameGroupAndSingleKeyDegenerates) {
  ReplicatedKv store(opts(2));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 1, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);

  // Both keys in ONE group: one participant, which is also the home group.
  EXPECT_EQ(s.txn().put(k1, 5).put(k2, 6).commit().wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 5u);
  EXPECT_EQ(s.get(k2), 6u);

  // Single-key transaction.
  EXPECT_EQ(s.txn().put(k1, 7).commit().wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 7u);

  // Empty transaction commits trivially.
  EXPECT_EQ(s.txn().commit().wait(), TxnState::kCommitted);
}

TEST_P(TxnBackends, ConflictVotesNoThenRetrySucceeds) {
  ReplicatedKv store(opts(2));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);

  // A's prepares enter the logs first (same session => same per-group
  // engines => FIFO), locking both keys. B's prepares then find the locks
  // held and vote no, so B aborts while A commits.
  TxnHandle a = s.txn().put(k1, 100).put(k2, 200).commit();
  TxnHandle b = s.txn().put(k1, 101).put(k2, 201).commit();
  EXPECT_EQ(b.wait(), TxnState::kAborted);
  EXPECT_EQ(a.wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 100u);  // nothing of B is visible
  EXPECT_EQ(s.get(k2), 200u);

  // A's commit and B's abort both released their locks: a retry of B's
  // writes goes through.
  EXPECT_EQ(s.txn().put(k1, 101).put(k2, 201).commit().wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 101u);
  EXPECT_EQ(s.get(k2), 201u);
}

TEST_P(TxnBackends, SingleKeyTrafficInterleavesWithTxns) {
  ReplicatedKv store(opts(2));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);

  EXPECT_EQ(s.put(k1, 1), 0u);
  ASSERT_EQ(s.txn().put(k1, 2).put(k2, 3).commit().wait(), TxnState::kCommitted);
  // A single-key write after the commit sees the transaction's value as the
  // previous one — the txn's writes joined the same replicated log.
  EXPECT_EQ(s.put(k1, 4), 2u);
  EXPECT_EQ(s.get(k2), 3u);
  // Pipelined single-key writes still flow.
  for (std::uint64_t i = 1; i <= 50; ++i) s.put_async(k2, i);
  s.flush();
  EXPECT_EQ(s.get(k2), 50u);
}

TEST_P(TxnBackends, DroppedHandleDoesNotStrandLocks) {
  ReplicatedKv store(opts(2));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
  s.put(k1, 1);
  s.put(k2, 2);
  {
    // commit() launches the prepares (which lock), then the handle dies
    // without wait(): the drop must fire-and-forget an abort so the locks
    // cannot outlive the handle.
    TxnHandle dropped = s.txn().put(k1, 70).put(k2, 71).commit();
    (void)dropped;
  }
  // Session FIFO per group orders the drop-abort before these prepares, so
  // a fresh transaction over the same keys commits (no stranded locks) and
  // nothing of the dropped one is visible.
  EXPECT_EQ(s.txn().put(k1, 80).put(k2, 81).commit().wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 80u);
  EXPECT_EQ(s.get(k2), 81u);
}

TEST_P(TxnBackends, PhaseHookSeesOrderedTransitions) {
  ReplicatedKv store(opts(2));
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
  std::string trace;
  TxnHandle h = s.txn()
                    .put(k1, 9)
                    .put(k2, 10)
                    .on_phase([&trace](TxnPhase p) {
                      trace += p == TxnPhase::kPrepared ? 'P'
                               : p == TxnPhase::kDecided ? 'D'
                                                         : 'A';
                    })
                    .commit();
  EXPECT_EQ(h.wait(), TxnState::kCommitted);
  EXPECT_EQ(trace, "PDA");
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, TxnBackends,
    ::testing::Combine(::testing::Values(Protocol::kMultiPaxos, Protocol::kOnePaxos),
                       ::testing::Values(core::Backend::kSim, core::Backend::kRt)),
    [](const auto& info) {
      const char* p =
          std::get<0>(info.param) == Protocol::kMultiPaxos ? "MultiPaxos" : "OnePaxos";
      return std::string(p) + "_" + core::backend_name(std::get<1>(info.param));
    });

// A transaction on a 2PC group: the intra-group protocol is itself 2PC, so
// this is 2PC over 2PC — the paper's layering taken literally.
TEST(TxnProtocols, WorksOverTwoPcGroups) {
  ReplicatedKv::Options o;
  o.spec.protocol = Protocol::kTwoPc;
  o.backend = core::Backend::kSim;
  o.groups = 2;
  ReplicatedKv store(o);
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
  EXPECT_EQ(s.txn().put(k1, 40).put(k2, 41).commit().wait(), TxnState::kCommitted);
  EXPECT_EQ(s.get(k1), 40u);
  EXPECT_EQ(s.get(k2), 41u);
}

}  // namespace
}  // namespace ci::kv
