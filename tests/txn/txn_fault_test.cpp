// Transaction atomicity under faults: sweeps that kill (throttle into
// uselessness) the home group's leader and a participant group's leader
// mid-prepare and mid-commit, on both backends. The session-store analogue
// of the spec-driven FaultPlan sweeps: throttle_replica is the same
// mechanism FaultEvent::kSlowNode uses, applied at instants the Txn phase
// hook pins exactly (the paper models failures as slow cores, §1 fn. 3).
//
// Invariants checked after every scenario:
//   * an acked (kCommitted) transaction is fully applied — every key on
//     every replica of every participant group carries the txn's value
//     (all-or-nothing visibility);
//   * an aborted transaction left no write behind;
//   * all locks are released — a fresh transaction over the same keys
//     commits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "client/txn.hpp"
#include "kv/kv_store.hpp"

namespace ci::kv {
namespace {

using client::TxnPhase;
using client::TxnState;

constexpr std::uint32_t kKill = 10000;  // slow factor: effectively dead

std::uint64_t key_in_group(const ReplicatedKv& store, GroupId g, std::uint64_t from) {
  for (std::uint64_t k = from;; ++k) {
    if (store.group_of(k) == g) return k;
  }
}

// Waits (politely pumping the store through linearizable gets, which both
// backends accept as a clock) until replica r of key's group converges to
// `expect`; returns false after ~2000 attempts.
bool local_converges(ReplicatedKv& store, KvSession& s, consensus::NodeId r,
                     std::uint64_t key, std::uint64_t expect) {
  for (int i = 0; i < 2000; ++i) {
    if (store.local_read(r, key) == expect) return true;
    (void)s.get(key);  // advances virtual time under sim; real time under rt
    if (store.backend() == core::Backend::kRt) busy_wait(200 * kMicrosecond);
  }
  return false;
}

void expect_fully_applied(ReplicatedKv& store, KvSession& s, std::uint64_t key,
                          std::uint64_t expect, const std::string& what) {
  EXPECT_EQ(s.get(key), expect) << what;
  for (consensus::NodeId r = 0; r < store.num_replicas(); ++r) {
    EXPECT_TRUE(local_converges(store, s, r, key, expect))
        << what << ": replica " << r << " never converged on key " << key;
  }
}

enum class KillWhom { kHomeLeader, kParticipantLeader };
enum class KillWhen { kMidPrepare, kMidCommit };

struct Scenario {
  KillWhom whom;
  KillWhen when;
};

const Scenario kSweep[] = {
    {KillWhom::kHomeLeader, KillWhen::kMidPrepare},
    {KillWhom::kHomeLeader, KillWhen::kMidCommit},
    {KillWhom::kParticipantLeader, KillWhen::kMidPrepare},
    {KillWhom::kParticipantLeader, KillWhen::kMidCommit},
};

class TxnFaults : public ::testing::TestWithParam<core::Backend> {
 protected:
  static ReplicatedKv::Options opts() {
    ReplicatedKv::Options o;
    o.spec.protocol = Protocol::kMultiPaxos;
    o.backend = GetParam();
    o.groups = 2;
    return o;
  }
};

TEST_P(TxnFaults, LeaderKillSweepNeverSplitsATxn) {
  std::uint64_t next_value = 100;
  for (const Scenario& sc : kSweep) {
    ReplicatedKv store(opts());
    auto& s = store.session(0);
    // k1's group (0) is the txn's home group; k2's (1) a plain participant.
    const std::uint64_t k1 = key_in_group(store, 0, 1);
    const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
    const GroupId victim_group = sc.whom == KillWhom::kHomeLeader ? 0 : 1;
    const std::string what = std::string(sc.whom == KillWhom::kHomeLeader
                                             ? "home leader"
                                             : "participant leader") +
                             (sc.when == KillWhen::kMidPrepare ? " killed mid-prepare"
                                                               : " killed mid-commit");
    SCOPED_TRACE(what);

    // Baseline values so "nothing applied" is distinguishable from "never
    // written".
    s.put(k1, 1);
    s.put(k2, 2);

    const std::uint64_t v1 = next_value++;
    const std::uint64_t v2 = next_value++;
    consensus::NodeId victim = consensus::kNoNode;
    auto kill = [&] {
      victim = store.believed_leader(victim_group);
      store.throttle_replica(victim_group, victim, kKill);
    };

    client::Txn txn = s.txn();
    txn.put(k1, v1).put(k2, v2);
    if (sc.when == KillWhen::kMidCommit) {
      // Decision is committed in the home group; the apply fan-out has not
      // started. The kill lands between phases 2 and 3.
      txn.on_phase([&](TxnPhase p) {
        if (p == TxnPhase::kDecided && victim == consensus::kNoNode) kill();
      });
    }
    TxnHandle h = txn.commit();
    if (sc.when == KillWhen::kMidPrepare) kill();  // prepares are in flight

    // The kill only delays: each phase rides a replicated log that elects
    // around the dead leader, so the transaction still commits.
    EXPECT_EQ(h.wait(), TxnState::kCommitted) << what;
    store.throttle_replica(victim_group, victim, 1);  // heal

    expect_fully_applied(store, s, k1, v1, what);
    expect_fully_applied(store, s, k2, v2, what);

    // Locks are gone: a follow-up transaction over the same keys commits.
    EXPECT_EQ(s.txn().put(k1, v1 + 10).put(k2, v2 + 10).commit().wait(),
              TxnState::kCommitted)
        << what << ": follow-up txn blocked (locks leaked?)";
    expect_fully_applied(store, s, k1, v1 + 10, what + " follow-up");
    expect_fully_applied(store, s, k2, v2 + 10, what + " follow-up");
  }
}

TEST_P(TxnFaults, AbortUnderFaultReleasesLocksAndAppliesNothing) {
  ReplicatedKv store(opts());
  auto& s = store.session(0);
  const std::uint64_t k1 = key_in_group(store, 0, 1);
  const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
  s.put(k1, 11);
  s.put(k2, 22);

  // A holds the locks; B will vote no and abort. The participant leader
  // dies right after B's abort decision commits, so the abort fan-out must
  // survive the failover too.
  TxnHandle a = s.txn().put(k1, 30).put(k2, 31).commit();
  consensus::NodeId victim = consensus::kNoNode;
  TxnHandle b = s.txn()
                    .put(k1, 40)
                    .put(k2, 41)
                    .on_phase([&](TxnPhase p) {
                      if (p == TxnPhase::kDecided && victim == consensus::kNoNode) {
                        victim = store.believed_leader(1);
                        store.throttle_replica(1, victim, kKill);
                      }
                    })
                    .commit();
  EXPECT_EQ(b.wait(), TxnState::kAborted);
  EXPECT_EQ(a.wait(), TxnState::kCommitted);
  store.throttle_replica(1, victim, 1);  // heal

  // Nothing of B is visible anywhere; A is fully applied.
  expect_fully_applied(store, s, k1, 30, "winner txn");
  expect_fully_applied(store, s, k2, 31, "winner txn");

  // B's abort released its (never-granted) locks and A's commit its real
  // ones: B's retry commits.
  EXPECT_EQ(s.txn().put(k1, 40).put(k2, 41).commit().wait(), TxnState::kCommitted);
  expect_fully_applied(store, s, k1, 40, "retry");
  expect_fully_applied(store, s, k2, 41, "retry");
}

// A stream of transactions with unique keys while leaders die and heal
// mid-stream: every acked transaction must be fully applied afterwards —
// the "no acked txn is partially applied" sweep.
TEST_P(TxnFaults, AckedTxnStreamSurvivesLeaderChurn) {
  ReplicatedKv store(opts());
  auto& s = store.session(0);
  constexpr int kTxns = 24;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> acked;  // (key, value)

  consensus::NodeId victim0 = consensus::kNoNode;
  consensus::NodeId victim1 = consensus::kNoNode;
  // Every transaction gets keys no earlier transaction touched (the scan
  // windows can otherwise overlap and a later txn's write would mask an
  // earlier one in the final visibility check).
  std::uint64_t next_key = 1000;
  for (int i = 0; i < kTxns; ++i) {
    const std::uint64_t k1 = key_in_group(store, 0, next_key);
    const std::uint64_t k2 = key_in_group(store, 1, k1 + 1);
    next_key = std::max(k1, k2) + 1;
    if (i == kTxns / 3) {
      victim0 = store.believed_leader(0);
      store.throttle_replica(0, victim0, kKill);
    }
    if (i == (2 * kTxns) / 3) {
      store.throttle_replica(0, victim0, 1);
      victim1 = store.believed_leader(1);
      store.throttle_replica(1, victim1, kKill);
    }
    const std::uint64_t v = 5000 + static_cast<std::uint64_t>(i);
    TxnHandle h = s.txn().put(k1, v).put(k2, v).commit();
    ASSERT_EQ(h.wait(), TxnState::kCommitted) << "txn " << i;
    acked.emplace_back(k1, v);
    acked.emplace_back(k2, v);
  }
  if (victim1 != consensus::kNoNode) store.throttle_replica(1, victim1, 1);

  for (const auto& [key, value] : acked) {
    expect_fully_applied(store, s, key, value, "stream txn key " + std::to_string(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TxnFaults,
                         ::testing::Values(core::Backend::kSim, core::Backend::kRt),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

}  // namespace
}  // namespace ci::kv
