#include "consensus/message.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "consensus/batch.hpp"
#include "consensus/wire_codec.hpp"

namespace ci::consensus {
namespace {

TEST(Wire, HeaderOnlyMessagesAreTiny) {
  Message m(MsgType::kPing, ProtoId::kControl, 0, 1);
  EXPECT_EQ(wire_size(m), kMessageHeaderBytes);
  EXPECT_LE(wire_size(m), 16u);
}

TEST(Wire, FastPathMessagesFitOneSlot) {
  // §6.1: the fast path must fit one 128-byte slot (minus the 8-byte
  // fragment header of the framing layer).
  constexpr std::size_t kSlotPayload = 120;
  Message accept(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
  EXPECT_LE(wire_size(accept), kSlotPayload);
  Message learn(MsgType::kOpxLearn, ProtoId::kOnePaxos, 1, 2);
  EXPECT_LE(wire_size(learn), kSlotPayload);
  Message req(MsgType::kClientRequest, ProtoId::kClient, 3, 0);
  EXPECT_LE(wire_size(req), kSlotPayload);
  Message reply(MsgType::kClientReply, ProtoId::kClient, 0, 3);
  EXPECT_LE(wire_size(reply), kSlotPayload);
  Message p2(MsgType::kPhase2Req, ProtoId::kMultiPaxos, 0, 1);
  EXPECT_LE(wire_size(p2), kSlotPayload);
  Message acked(MsgType::kPhase2Acked, ProtoId::kMultiPaxos, 1, 2);
  EXPECT_LE(wire_size(acked), kSlotPayload);
  Message prep(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  EXPECT_LE(wire_size(prep), kSlotPayload);
}

TEST(Wire, VariableSizeTruncatesToUsedProposals) {
  Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase1_resp.num_proposals = 0;
  const std::size_t empty = wire_size(m);
  m.u.phase1_resp.num_proposals = 3;
  EXPECT_EQ(wire_size(m), empty + 3 * sizeof(Proposal));
  m.u.phase1_resp.num_proposals = kMaxProposalsPerMsg;
  EXPECT_EQ(wire_size(m), empty + kMaxProposalsPerMsg * sizeof(Proposal));
}

TEST(Wire, UtilityEntrySizeDependsOnProposals) {
  Message m(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
  m.u.util_phase2_req.entry.kind = UtilityEntry::Kind::kAcceptorChange;
  m.u.util_phase2_req.entry.num_proposals = 0;
  const std::size_t empty = wire_size(m);
  m.u.util_phase2_req.entry.num_proposals = 5;
  EXPECT_EQ(wire_size(m), empty + 5 * sizeof(Proposal));
}

TEST(Wire, RoundTripPreservesContent) {
  Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 2, 1);
  m.u.opx_accept_req.instance = 42;
  m.u.opx_accept_req.pn = ProposalNum{7, 2};
  m.u.opx_accept_req.value.client = 9;
  m.u.opx_accept_req.value.seq = 3;
  m.u.opx_accept_req.value.key = 0xdeadbeef;

  unsigned char buf[1024];
  const std::size_t n = wire_size(m);
  std::memcpy(buf, &m, n);
  Message out;
  std::memcpy(&out, buf, n);
  ASSERT_TRUE(wire_validate(out, n));
  EXPECT_EQ(out.type, MsgType::kOpxAcceptReq);
  EXPECT_EQ(out.u.opx_accept_req.instance, 42);
  EXPECT_EQ(out.u.opx_accept_req.pn, (ProposalNum{7, 2}));
  EXPECT_EQ(out.u.opx_accept_req.value.key, 0xdeadbeefu);
}

TEST(Wire, ValidateRejectsShortBuffers) {
  Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
  EXPECT_FALSE(wire_validate(m, kMessageHeaderBytes));  // payload missing
  EXPECT_FALSE(wire_validate(m, 2));
  EXPECT_TRUE(wire_validate(m, wire_size(m)));
}

TEST(Wire, ValidateRejectsBogusProposalCounts) {
  Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase1_resp.num_proposals = kMaxProposalsPerMsg + 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  m.u.phase1_resp.num_proposals = -1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
}

TEST(Wire, ProposalNumOrdering) {
  EXPECT_LT((ProposalNum{1, 5}), (ProposalNum{2, 0}));
  EXPECT_LT((ProposalNum{2, 0}), (ProposalNum{2, 1}));  // node id breaks ties
  EXPECT_EQ((ProposalNum{2, 1}), (ProposalNum{2, 1}));
  EXPECT_FALSE(ProposalNum{}.valid());
  EXPECT_TRUE((ProposalNum{1, 0}).valid());
}

TEST(Wire, UtilityEntryEquality) {
  UtilityEntry a;
  a.kind = UtilityEntry::Kind::kAcceptorChange;
  a.leader = 0;
  a.acceptor = 2;
  a.num_proposals = 1;
  a.proposals[0] = Proposal{5, ProposalNum{1, 0}, Command{}};
  UtilityEntry b = a;
  EXPECT_TRUE(a == b);
  b.proposals[0].instance = 6;
  EXPECT_FALSE(a == b);
  b = a;
  b.acceptor = 1;
  EXPECT_FALSE(a == b);
}

// ---- Batched payloads ----

Command bcmd(std::uint32_t seq) {
  Command c;
  c.client = 4;
  c.seq = seq;
  c.op = Op::kWrite;
  c.key = 100 + seq;
  c.value = seq * 7;
  return c;
}

TEST(Wire, BatchFramesTruncateToUsedCommands) {
  Message m(MsgType::kPhase2BatchReq, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase2_batch_req.count = 2;
  const std::size_t two = wire_size(m);
  m.u.phase2_batch_req.count = 8;
  EXPECT_EQ(wire_size(m), two + 6 * sizeof(Command));
  // A batch of 8 costs one header where 8 singles cost 8 — the amortization.
  Message single(MsgType::kPhase2Req, ProtoId::kMultiPaxos, 0, 1);
  EXPECT_LT(wire_size(m), 8 * wire_size(single));
}

TEST(Wire, BatchAcceptRoundTripPreservesEveryCommand) {
  Batch value;
  for (std::uint32_t s = 1; s <= 5; ++s) value.push_back(bcmd(s));
  Message m(MsgType::kOpxBatchAcceptReq, ProtoId::kOnePaxos, 0, 1);
  m.u.opx_batch_accept_req.instance = 17;
  m.u.opx_batch_accept_req.pn = ProposalNum{3, 0};
  m.u.opx_batch_accept_req.count = m.u.opx_batch_accept_req.run.pack(value);

  unsigned char buf[ci::wire::kMaxFrameBytes];
  const std::uint32_t n = ci::wire::encode(m, buf);
  EXPECT_EQ(n, wire_size(m));
  Message out;
  ASSERT_TRUE(ci::wire::try_decode(buf, n, &out));
  EXPECT_EQ(out.u.opx_batch_accept_req.instance, 17);
  EXPECT_EQ(unpack_batch(out.u.opx_batch_accept_req.run.data(out.u.opx_batch_accept_req.count),
                         out.u.opx_batch_accept_req.count),
            value);
}

TEST(Wire, BatchLearnRoundTrip) {
  Batch value = {bcmd(1), bcmd(2)};
  Message m(MsgType::kOpxBatchLearn, ProtoId::kOnePaxos, 1, 2);
  m.u.opx_batch_learn.instance = 3;
  m.u.opx_batch_learn.count = m.u.opx_batch_learn.run.pack(value);
  unsigned char buf[ci::wire::kMaxFrameBytes];
  const std::uint32_t n = ci::wire::encode(m, buf);
  Message out;
  ASSERT_TRUE(ci::wire::try_decode(buf, n, &out));
  EXPECT_EQ(unpack_batch(out.u.opx_batch_learn.run.data(out.u.opx_batch_learn.count),
                         out.u.opx_batch_learn.count),
            value);
}

TEST(Wire, ValidateRejectsBogusBatchCounts) {
  Message m(MsgType::kPhase2BatchAcked, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase2_batch_acked.count = 0;  // batches of < 2 use the legacy frames
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  m.u.phase2_batch_acked.count = 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  m.u.phase2_batch_acked.count = kMaxCommandsPerBatch + 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  m.u.phase2_batch_acked.count = 2;
  EXPECT_TRUE(wire_validate(m, sizeof(Message)));
}

TEST(Wire, LegacyUtilityEntryKeepsPreBatchingSize) {
  // num_batched == 0 entries must serialize exactly as before the batching
  // layer: the appended pool region never travels.
  Message m(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
  m.u.util_phase2_req.entry.kind = UtilityEntry::Kind::kAcceptorChange;
  m.u.util_phase2_req.entry.num_proposals = 3;
  EXPECT_EQ(wire_size(m), kMessageHeaderBytes + offsetof(UtilPhase2Req, entry) +
                              offsetof(UtilityEntry, proposals) + 3 * sizeof(Proposal));
}

TEST(Wire, BatchedUtilityEntryRoundTrip) {
  Message m(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
  UtilityEntry& e = m.u.util_phase2_req.entry;
  e.kind = UtilityEntry::Kind::kAcceptorChange;
  e.leader = 0;
  e.acceptor = 2;
  e.frontier = 40;
  e.num_proposals = 1;
  e.proposals[0] = Proposal{5, ProposalNum{2, 0}, bcmd(9)};
  const Batch b0 = {bcmd(1), bcmd(2), bcmd(3)};
  const Batch b1 = {bcmd(4), bcmd(5)};
  e.num_batched = 2;
  e.batched[0].instance = 6;
  e.batched[0].count = 3;
  e.batched[0].digest = batch_digest(b0);
  e.batched[1].instance = 7;
  e.batched[1].count = 2;
  e.batched[1].digest = batch_digest(b1);

  unsigned char buf[ci::wire::kMaxFrameBytes];
  const std::uint32_t n = ci::wire::encode(m, buf);
  EXPECT_EQ(n, wire_size(m));
  EXPECT_LT(n, sizeof(Message));  // refs truncated to their used prefix
  Message out;
  ASSERT_TRUE(ci::wire::try_decode(buf, n, &out));
  const UtilityEntry& oe = out.u.util_phase2_req.entry;
  EXPECT_TRUE(oe == e);
  // The digest is the body's identity: a producer of the same batch
  // computes the same ref, a different batch a different one.
  EXPECT_EQ(oe.batched[0].digest, batch_digest(b0));
  EXPECT_NE(oe.batched[0].digest, batch_digest(b1));
}

TEST(Wire, ValidateRejectsBatchedRefsWithBogusCounts) {
  Message m(MsgType::kUtilAccepted, ProtoId::kUtility, 0, 1);
  UtilityEntry& e = m.u.util_accepted.entry;
  e.kind = UtilityEntry::Kind::kAcceptorChange;
  e.num_batched = 1;
  e.batched[0].instance = 1;
  e.batched[0].count = 1;  // batched refs name >= 2 commands
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  e.batched[0].count = kMaxCommandsPerBatch + 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  e.batched[0].count = 3;
  EXPECT_TRUE(wire_validate(m, sizeof(Message)));
  e.num_batched = kMaxBatchedPerEntry + 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
}

TEST(Wire, BatchingCountersLiveInFormerPadding) {
  // The single-command wire frames must be byte-stable: the new counters
  // occupy padding, so the arrays did not move.
  Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase1_resp.num_proposals = 2;
  m.u.phase1_resp.num_batched = 0;
  EXPECT_EQ(wire_size(m),
            kMessageHeaderBytes + offsetof(Phase1Resp, proposals) + 2 * sizeof(Proposal));
  Message p(MsgType::kOpxPrepareResp, ProtoId::kOnePaxos, 1, 0);
  p.u.opx_prepare_resp.num_accepted = 1;
  EXPECT_EQ(wire_size(p),
            kMessageHeaderBytes + offsetof(OpxPrepareResp, accepted) + sizeof(Proposal));
}

TEST(Wire, CommandEqualityIgnoresPadding) {
  Command a;
  a.client = 1;
  a.seq = 2;
  a.op = Op::kWrite;
  a.key = 3;
  a.value = 4;
  Command b = a;
  b.reserved[0] = 0xFF;  // padding differences must not matter
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ci::consensus
