#include "consensus/message.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ci::consensus {
namespace {

TEST(Wire, HeaderOnlyMessagesAreTiny) {
  Message m(MsgType::kPing, ProtoId::kControl, 0, 1);
  EXPECT_EQ(wire_size(m), kMessageHeaderBytes);
  EXPECT_LE(wire_size(m), 16u);
}

TEST(Wire, FastPathMessagesFitOneSlot) {
  // §6.1: the fast path must fit one 128-byte slot (minus the 8-byte
  // fragment header of the framing layer).
  constexpr std::size_t kSlotPayload = 120;
  Message accept(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
  EXPECT_LE(wire_size(accept), kSlotPayload);
  Message learn(MsgType::kOpxLearn, ProtoId::kOnePaxos, 1, 2);
  EXPECT_LE(wire_size(learn), kSlotPayload);
  Message req(MsgType::kClientRequest, ProtoId::kClient, 3, 0);
  EXPECT_LE(wire_size(req), kSlotPayload);
  Message reply(MsgType::kClientReply, ProtoId::kClient, 0, 3);
  EXPECT_LE(wire_size(reply), kSlotPayload);
  Message p2(MsgType::kPhase2Req, ProtoId::kMultiPaxos, 0, 1);
  EXPECT_LE(wire_size(p2), kSlotPayload);
  Message acked(MsgType::kPhase2Acked, ProtoId::kMultiPaxos, 1, 2);
  EXPECT_LE(wire_size(acked), kSlotPayload);
  Message prep(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  EXPECT_LE(wire_size(prep), kSlotPayload);
}

TEST(Wire, VariableSizeTruncatesToUsedProposals) {
  Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase1_resp.num_proposals = 0;
  const std::size_t empty = wire_size(m);
  m.u.phase1_resp.num_proposals = 3;
  EXPECT_EQ(wire_size(m), empty + 3 * sizeof(Proposal));
  m.u.phase1_resp.num_proposals = kMaxProposalsPerMsg;
  EXPECT_EQ(wire_size(m), empty + kMaxProposalsPerMsg * sizeof(Proposal));
}

TEST(Wire, UtilityEntrySizeDependsOnProposals) {
  Message m(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
  m.u.util_phase2_req.entry.kind = UtilityEntry::Kind::kAcceptorChange;
  m.u.util_phase2_req.entry.num_proposals = 0;
  const std::size_t empty = wire_size(m);
  m.u.util_phase2_req.entry.num_proposals = 5;
  EXPECT_EQ(wire_size(m), empty + 5 * sizeof(Proposal));
}

TEST(Wire, RoundTripPreservesContent) {
  Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 2, 1);
  m.u.opx_accept_req.instance = 42;
  m.u.opx_accept_req.pn = ProposalNum{7, 2};
  m.u.opx_accept_req.value.client = 9;
  m.u.opx_accept_req.value.seq = 3;
  m.u.opx_accept_req.value.key = 0xdeadbeef;

  unsigned char buf[1024];
  const std::size_t n = wire_size(m);
  std::memcpy(buf, &m, n);
  Message out;
  std::memcpy(&out, buf, n);
  ASSERT_TRUE(wire_validate(out, n));
  EXPECT_EQ(out.type, MsgType::kOpxAcceptReq);
  EXPECT_EQ(out.u.opx_accept_req.instance, 42);
  EXPECT_EQ(out.u.opx_accept_req.pn, (ProposalNum{7, 2}));
  EXPECT_EQ(out.u.opx_accept_req.value.key, 0xdeadbeefu);
}

TEST(Wire, ValidateRejectsShortBuffers) {
  Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
  EXPECT_FALSE(wire_validate(m, kMessageHeaderBytes));  // payload missing
  EXPECT_FALSE(wire_validate(m, 2));
  EXPECT_TRUE(wire_validate(m, wire_size(m)));
}

TEST(Wire, ValidateRejectsBogusProposalCounts) {
  Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 0, 1);
  m.u.phase1_resp.num_proposals = kMaxProposalsPerMsg + 1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
  m.u.phase1_resp.num_proposals = -1;
  EXPECT_FALSE(wire_validate(m, sizeof(Message)));
}

TEST(Wire, ProposalNumOrdering) {
  EXPECT_LT((ProposalNum{1, 5}), (ProposalNum{2, 0}));
  EXPECT_LT((ProposalNum{2, 0}), (ProposalNum{2, 1}));  // node id breaks ties
  EXPECT_EQ((ProposalNum{2, 1}), (ProposalNum{2, 1}));
  EXPECT_FALSE(ProposalNum{}.valid());
  EXPECT_TRUE((ProposalNum{1, 0}).valid());
}

TEST(Wire, UtilityEntryEquality) {
  UtilityEntry a;
  a.kind = UtilityEntry::Kind::kAcceptorChange;
  a.leader = 0;
  a.acceptor = 2;
  a.num_proposals = 1;
  a.proposals[0] = Proposal{5, ProposalNum{1, 0}, Command{}};
  UtilityEntry b = a;
  EXPECT_TRUE(a == b);
  b.proposals[0].instance = 6;
  EXPECT_FALSE(a == b);
  b = a;
  b.acceptor = 1;
  EXPECT_FALSE(a == b);
}

TEST(Wire, CommandEqualityIgnoresPadding) {
  Command a;
  a.client = 1;
  a.seq = 2;
  a.op = Op::kWrite;
  a.key = 3;
  a.value = 4;
  Command b = a;
  b.reserved[0] = 0xFF;  // padding differences must not matter
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ci::consensus
