// Allocation guard for the steady-state send path.
//
// The zero-copy refactor's claim is not just "fewer memcpys": once the
// CommandPool free list, the SimNet frame pool, and the event queue have
// warmed up, pushing a full 64-command batch frame through a transport must
// perform ZERO heap allocations — encode writes straight into pooled/slot
// memory, decode refills from the recycled pool blocks, and nothing grows.
// This binary replaces the global operator new/delete with counting
// versions (which is why it is its own ctest entry: the override is
// process-wide) and pins that allocation count to exactly zero across many
// steady-state rounds on both transports' send paths:
//
//   1. SimNet: a closed-loop batch ping-pong — send_from's pooled-frame
//      encode, the decode at delivery, and the event heap, end to end.
//   2. rt: the SlotFrameWriter half of RtNode::send — encode a batch frame
//      directly into SPSC queue slots, reassemble and decode on the reader
//      side, exactly as the node threads do (minus the threads, so the
//      count stays deterministic).
//
// The counter only runs while a test arms it, so gtest bookkeeping outside
// the measured region doesn't pollute the count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include <vector>

#include "client/async_client.hpp"
#include "common/cacheline.hpp"
#include "common/histogram.hpp"
#include "consensus/message.hpp"
#include "consensus/wire_codec.hpp"
#include "harness/workload.hpp"
#include "qclt/connection.hpp"
#include "qclt/spsc_queue.hpp"
#include "rt/wire.hpp"
#include "sim/sim_net.hpp"

namespace {

// Plain (non-atomic) counters: every measured region is single-threaded —
// the simulator runs inline and the rt test drives both queue ends itself.
bool g_armed = false;
std::uint64_t g_armed_allocs = 0;

void* counted_alloc(std::size_t n) {
  if (g_armed) ++g_armed_allocs;
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  if (g_armed) ++g_armed_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ci {
namespace {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::kMaxCommandsPerBatch;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::ProtoId;

Message make_batch(NodeId src, NodeId dst, std::uint64_t round) {
  Message m(MsgType::kPhase2BatchReq, ProtoId::kMultiPaxos, src, dst);
  Command cmds[kMaxCommandsPerBatch] = {};
  for (std::int32_t i = 0; i < kMaxCommandsPerBatch; ++i) {
    cmds[i].client = src;
    cmds[i].seq = static_cast<std::uint32_t>(round * kMaxCommandsPerBatch) +
                  static_cast<std::uint32_t>(i);
    cmds[i].op = consensus::Op::kWrite;
    cmds[i].key = round;
    cmds[i].value = static_cast<std::uint64_t>(i);
  }
  m.u.phase2_batch_req.instance = static_cast<consensus::Instance>(round);
  m.u.phase2_batch_req.count = kMaxCommandsPerBatch;
  m.u.phase2_batch_req.run.assign(cmds, kMaxCommandsPerBatch);
  return m;
}

// Closed loop: sends one full batch, sends the next when the ack arrives.
class BatchPinger final : public Engine {
 public:
  explicit BatchPinger(NodeId dst) : dst_(dst) {}
  void start(Context& ctx) override { send_batch(ctx); }
  void on_message(Context& ctx, const Message&) override {
    ++rounds;
    send_batch(ctx);
  }
  std::uint64_t rounds = 0;

 private:
  void send_batch(Context& ctx) {
    Message m = make_batch(ctx.self(), dst_, rounds);
    ctx.send(dst_, m);
  }
  NodeId dst_;
};

class BatchAcker final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    Message r(MsgType::kPong, ProtoId::kControl, ctx.self(), m.src);
    ctx.send(m.src, r);
  }
};

sim::LatencyModel cheap_model() {
  sim::LatencyModel m;
  m.trans_send = 100;
  m.trans_recv = 100;
  m.prop = 500;
  m.prop_jitter = 0;
  m.handler_cost = 50;
  return m;
}

// The counter itself must be live, or the zero-allocation pins below would
// pass vacuously (e.g. if a build change stopped the replacement operators
// from taking precedence).
TEST(SendAllocGuard, CounterObservesAnOrdinaryAllocation) {
  // Runtime-sized and escaped through a volatile pointer so the compiler
  // cannot elide the allocation pair (C++14 allows eliding paired
  // new/delete — which is exactly what happened to a naive `new int` here).
  volatile std::size_t n = 1024;
  g_armed_allocs = 0;
  g_armed = true;
  auto* p = new unsigned char[n];
  static unsigned char* volatile escape;
  escape = p;
  g_armed = false;
  delete[] escape;
  EXPECT_GE(g_armed_allocs, 1u);
}

TEST(SendAllocGuard, SimSteadyStateBatchRoundsAllocateNothing) {
  sim::SimNet net(cheap_model(), /*seed=*/11, /*tick=*/kMillisecond);
  BatchPinger pinger(1);
  BatchAcker acker;
  net.add_node(&pinger);
  net.add_node(&acker);

  // Warm-up: fills the CommandPool free list, the frame pool, and grows the
  // event heap to its steady-state capacity.
  net.run_until(2 * kMillisecond);
  const std::uint64_t warm_rounds = pinger.rounds;
  ASSERT_GT(warm_rounds, 10u);

  g_armed_allocs = 0;
  g_armed = true;
  net.run_until(20 * kMillisecond);
  g_armed = false;

  const std::uint64_t steady_rounds = pinger.rounds - warm_rounds;
  ASSERT_GT(steady_rounds, 100u);  // the window really ran batches
  // The claim itself: many full 64-command frames sent, encoded, delivered,
  // and decoded — zero heap allocations.
  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state sim send path allocated " << g_armed_allocs << " times over "
      << steady_rounds << " rounds";
}

TEST(SendAllocGuard, RtSlotEncodeDecodeCycleAllocatesNothing) {
  // Queue memory sized and aligned up front (allocations here are fine —
  // this is setup, the very thing a real deployment does once).
  constexpr std::uint32_t kSlots = 32;
  alignas(kCacheLineSize) static unsigned char qmem[sizeof(qclt::SpscQueue) +
                                                    kSlots * kSlotSize];
  qclt::SpscQueue* q = qclt::SpscQueue::init(qmem, kSlots);

  // One full encode -> drain -> decode cycle, exactly as RtNode's send and
  // reader tasks run it (same writer, same fragment reassembly), minus the
  // threads so the count is deterministic.
  auto cycle = [&](std::uint64_t round) {
    Message m = make_batch(0, 1, round);
    const auto frame_len = static_cast<std::uint32_t>(wire::frame_size(m));
    const std::uint32_t frags = qclt::wire::fragments_for(frame_len);
    ASSERT_LE(frags, q->free_slots());

    rt::SlotFrameWriter w(q, frame_len);
    const std::uint32_t written = wire::encode_into(m, w, 0, 1);
    w.finish();
    ASSERT_EQ(written, frame_len);
    wire::release_body(m);

    // Reader side: reassemble the fragments into a contiguous frame.
    static unsigned char buf[wire::kMaxFrameBytes];
    std::uint32_t got = 0;
    for (std::uint32_t f = 0; f < frags; ++f) {
      const auto* slot = static_cast<const unsigned char*>(q->try_front());
      ASSERT_NE(slot, nullptr);
      const auto* hdr = reinterpret_cast<const qclt::wire::FragmentHeader*>(slot);
      ASSERT_EQ(hdr->msg_len, frame_len);
      ASSERT_EQ(hdr->frag_index, f);
      const std::uint32_t chunk =
          std::min<std::uint32_t>(frame_len - got, qclt::wire::kFragPayload);
      std::memcpy(buf + got, slot + sizeof(qclt::wire::FragmentHeader), chunk);
      got += chunk;
      q->release_read();
    }
    ASSERT_EQ(got, frame_len);

    Message d;
    ASSERT_TRUE(wire::try_decode(buf, frame_len, &d));
    ASSERT_EQ(d.u.phase2_batch_req.count, kMaxCommandsPerBatch);
    wire::release_body(d);
  };

  // Warm-up cycle allocates the pool block once; everything after recycles.
  cycle(0);

  g_armed_allocs = 0;
  g_armed = true;
  for (std::uint64_t round = 1; round <= 512; ++round) cycle(round);
  g_armed = false;

  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state rt slot encode/decode allocated " << g_armed_allocs
      << " times over 512 cycles";
}

// The open-loop workload engine's per-arrival work — schedule draw, zipfian
// key choice, session bookkeeping, histogram record — must also stay off
// the allocator: at tens of thousands of logical sessions the generator
// runs once per operation, and a single stray allocation there would
// dominate the driver loop it claims to measure honestly.
TEST(SendAllocGuard, WorkloadArrivalLoopAllocatesNothing) {
  harness::WorkloadProfile p = harness::WorkloadProfile::preset('A');
  p.sessions = 50000;
  p.target_rate = 100000;
  p.key_space = 100000;
  p.value_bytes = 16;
  p.value_bytes_max = 64;
  p.seed = 19;
  harness::ArrivalGen gen(p);  // setup may allocate (zeta table, etc.)
  Histogram latency;
  std::vector<std::uint32_t> session_ops(static_cast<std::size_t>(p.sessions), 0);

  // Warm-up: nothing here grows, but keep the shape of the other pins.
  for (int i = 0; i < 1000; ++i) {
    const harness::Arrival a = gen.next();
    ++session_ops[a.session];
    latency.record(static_cast<Nanos>((a.key & 0xFFFF) + 1));
  }

  g_armed_allocs = 0;
  g_armed = true;
  for (int i = 0; i < 100000; ++i) {
    const harness::Arrival a = gen.next();
    ++session_ops[a.session];
    latency.record(static_cast<Nanos>((a.key & 0xFFFF) + 1));
  }
  g_armed = false;

  ASSERT_EQ(latency.count(), 101000u);
  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state workload arrival loop allocated " << g_armed_allocs
      << " times over 100000 arrivals";
}

namespace {

// Loopback context for the async client pipeline pin: records the seq of
// every outgoing request into a fixed ring so the test can answer them
// after tick() returns (answering inline would re-enter the engine's
// non-recursive mutex).
class LoopbackCtx final : public Context {
 public:
  NodeId self() const override { return 9; }
  Nanos now() const override { return clock; }
  void send(NodeId, const Message& m) override {
    if (m.type == MsgType::kClientRequest) {
      seqs[count++ % kMaxCommandsPerBatch] = m.u.client_request.cmd.seq;
    }
  }
  void deliver(consensus::Instance, const Command&) override {}

  Nanos clock = 0;
  std::uint32_t seqs[kMaxCommandsPerBatch] = {};
  std::uint32_t count = 0;
};

}  // namespace

// The pooled client pipeline (client/async_client.hpp): after the spare
// list warms up, a full submit -> tick(send) -> reply -> wait -> drop-handle
// cycle recycles its Completion and slot state with zero allocations — the
// property that lets the workload driver run tens of thousands of logical
// sessions without the allocator in the loop.
TEST(SendAllocGuard, AsyncClientSubmitCompleteCycleAllocatesNothing) {
  client::AsyncClientConfig cfg;
  cfg.base.self = 9;
  cfg.base.num_replicas = 3;
  LoopbackCtx ctx;
  client::AsyncClientEngine eng(cfg);

  auto cycle = [&](std::uint64_t round) {
    ctx.count = 0;
    client::SubmitHandle h =
        eng.submit(consensus::Op::kWrite, round, round * 3);
    ctx.clock += 1000;
    eng.tick(ctx);  // launches the queued command through ctx.send
    ASSERT_EQ(ctx.count, 1u);
    Message reply(MsgType::kClientReply, ProtoId::kClient, 0, 9);
    reply.u.client_reply.seq = ctx.seqs[0];
    reply.u.client_reply.result = round;
    eng.on_message(ctx, reply);
    ASSERT_TRUE(h.done());
    ASSERT_EQ(h.wait(), round);
  };  // handle dropped here -> its Completion returns to the spare list

  // Warm-up populates the spare list (one Completion, reused thereafter).
  for (std::uint64_t r = 1; r <= 128; ++r) cycle(r);

  g_armed_allocs = 0;
  g_armed = true;
  for (std::uint64_t r = 129; r <= 1024; ++r) cycle(r);
  g_armed = false;

  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state async client cycle allocated " << g_armed_allocs
      << " times over 896 cycles";
}

}  // namespace
}  // namespace ci
