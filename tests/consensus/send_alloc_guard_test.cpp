// Allocation guard for the steady-state send path.
//
// The zero-copy refactor's claim is not just "fewer memcpys": once the
// CommandPool free list, the SimNet frame pool, and the event queue have
// warmed up, pushing a full 64-command batch frame through a transport must
// perform ZERO heap allocations — encode writes straight into pooled/slot
// memory, decode refills from the recycled pool blocks, and nothing grows.
// This binary replaces the global operator new/delete with counting
// versions (which is why it is its own ctest entry: the override is
// process-wide) and pins that allocation count to exactly zero across many
// steady-state rounds on both transports' send paths:
//
//   1. SimNet: a closed-loop batch ping-pong — send_from's pooled-frame
//      encode, the decode at delivery, and the event heap, end to end.
//   2. rt: the SlotFrameWriter half of RtNode::send — encode a batch frame
//      directly into SPSC queue slots, reassemble and decode on the reader
//      side, exactly as the node threads do (minus the threads, so the
//      count stays deterministic).
//
// The counter only runs while a test arms it, so gtest bookkeeping outside
// the measured region doesn't pollute the count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/cacheline.hpp"
#include "consensus/message.hpp"
#include "consensus/wire_codec.hpp"
#include "qclt/connection.hpp"
#include "qclt/spsc_queue.hpp"
#include "rt/wire.hpp"
#include "sim/sim_net.hpp"

namespace {

// Plain (non-atomic) counters: every measured region is single-threaded —
// the simulator runs inline and the rt test drives both queue ends itself.
bool g_armed = false;
std::uint64_t g_armed_allocs = 0;

void* counted_alloc(std::size_t n) {
  if (g_armed) ++g_armed_allocs;
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  if (g_armed) ++g_armed_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ci {
namespace {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::kMaxCommandsPerBatch;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::ProtoId;

Message make_batch(NodeId src, NodeId dst, std::uint64_t round) {
  Message m(MsgType::kPhase2BatchReq, ProtoId::kMultiPaxos, src, dst);
  Command cmds[kMaxCommandsPerBatch] = {};
  for (std::int32_t i = 0; i < kMaxCommandsPerBatch; ++i) {
    cmds[i].client = src;
    cmds[i].seq = static_cast<std::uint32_t>(round * kMaxCommandsPerBatch) +
                  static_cast<std::uint32_t>(i);
    cmds[i].op = consensus::Op::kWrite;
    cmds[i].key = round;
    cmds[i].value = static_cast<std::uint64_t>(i);
  }
  m.u.phase2_batch_req.instance = static_cast<consensus::Instance>(round);
  m.u.phase2_batch_req.count = kMaxCommandsPerBatch;
  m.u.phase2_batch_req.run.assign(cmds, kMaxCommandsPerBatch);
  return m;
}

// Closed loop: sends one full batch, sends the next when the ack arrives.
class BatchPinger final : public Engine {
 public:
  explicit BatchPinger(NodeId dst) : dst_(dst) {}
  void start(Context& ctx) override { send_batch(ctx); }
  void on_message(Context& ctx, const Message&) override {
    ++rounds;
    send_batch(ctx);
  }
  std::uint64_t rounds = 0;

 private:
  void send_batch(Context& ctx) {
    Message m = make_batch(ctx.self(), dst_, rounds);
    ctx.send(dst_, m);
  }
  NodeId dst_;
};

class BatchAcker final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    Message r(MsgType::kPong, ProtoId::kControl, ctx.self(), m.src);
    ctx.send(m.src, r);
  }
};

sim::LatencyModel cheap_model() {
  sim::LatencyModel m;
  m.trans_send = 100;
  m.trans_recv = 100;
  m.prop = 500;
  m.prop_jitter = 0;
  m.handler_cost = 50;
  return m;
}

// The counter itself must be live, or the zero-allocation pins below would
// pass vacuously (e.g. if a build change stopped the replacement operators
// from taking precedence).
TEST(SendAllocGuard, CounterObservesAnOrdinaryAllocation) {
  // Runtime-sized and escaped through a volatile pointer so the compiler
  // cannot elide the allocation pair (C++14 allows eliding paired
  // new/delete — which is exactly what happened to a naive `new int` here).
  volatile std::size_t n = 1024;
  g_armed_allocs = 0;
  g_armed = true;
  auto* p = new unsigned char[n];
  static unsigned char* volatile escape;
  escape = p;
  g_armed = false;
  delete[] escape;
  EXPECT_GE(g_armed_allocs, 1u);
}

TEST(SendAllocGuard, SimSteadyStateBatchRoundsAllocateNothing) {
  sim::SimNet net(cheap_model(), /*seed=*/11, /*tick=*/kMillisecond);
  BatchPinger pinger(1);
  BatchAcker acker;
  net.add_node(&pinger);
  net.add_node(&acker);

  // Warm-up: fills the CommandPool free list, the frame pool, and grows the
  // event heap to its steady-state capacity.
  net.run_until(2 * kMillisecond);
  const std::uint64_t warm_rounds = pinger.rounds;
  ASSERT_GT(warm_rounds, 10u);

  g_armed_allocs = 0;
  g_armed = true;
  net.run_until(20 * kMillisecond);
  g_armed = false;

  const std::uint64_t steady_rounds = pinger.rounds - warm_rounds;
  ASSERT_GT(steady_rounds, 100u);  // the window really ran batches
  // The claim itself: many full 64-command frames sent, encoded, delivered,
  // and decoded — zero heap allocations.
  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state sim send path allocated " << g_armed_allocs << " times over "
      << steady_rounds << " rounds";
}

TEST(SendAllocGuard, RtSlotEncodeDecodeCycleAllocatesNothing) {
  // Queue memory sized and aligned up front (allocations here are fine —
  // this is setup, the very thing a real deployment does once).
  constexpr std::uint32_t kSlots = 32;
  alignas(kCacheLineSize) static unsigned char qmem[sizeof(qclt::SpscQueue) +
                                                    kSlots * kSlotSize];
  qclt::SpscQueue* q = qclt::SpscQueue::init(qmem, kSlots);

  // One full encode -> drain -> decode cycle, exactly as RtNode's send and
  // reader tasks run it (same writer, same fragment reassembly), minus the
  // threads so the count is deterministic.
  auto cycle = [&](std::uint64_t round) {
    Message m = make_batch(0, 1, round);
    const auto frame_len = static_cast<std::uint32_t>(wire::frame_size(m));
    const std::uint32_t frags = qclt::wire::fragments_for(frame_len);
    ASSERT_LE(frags, q->free_slots());

    rt::SlotFrameWriter w(q, frame_len);
    const std::uint32_t written = wire::encode_into(m, w, 0, 1);
    w.finish();
    ASSERT_EQ(written, frame_len);
    wire::release_body(m);

    // Reader side: reassemble the fragments into a contiguous frame.
    static unsigned char buf[wire::kMaxFrameBytes];
    std::uint32_t got = 0;
    for (std::uint32_t f = 0; f < frags; ++f) {
      const auto* slot = static_cast<const unsigned char*>(q->try_front());
      ASSERT_NE(slot, nullptr);
      const auto* hdr = reinterpret_cast<const qclt::wire::FragmentHeader*>(slot);
      ASSERT_EQ(hdr->msg_len, frame_len);
      ASSERT_EQ(hdr->frag_index, f);
      const std::uint32_t chunk =
          std::min<std::uint32_t>(frame_len - got, qclt::wire::kFragPayload);
      std::memcpy(buf + got, slot + sizeof(qclt::wire::FragmentHeader), chunk);
      got += chunk;
      q->release_read();
    }
    ASSERT_EQ(got, frame_len);

    Message d;
    ASSERT_TRUE(wire::try_decode(buf, frame_len, &d));
    ASSERT_EQ(d.u.phase2_batch_req.count, kMaxCommandsPerBatch);
    wire::release_body(d);
  };

  // Warm-up cycle allocates the pool block once; everything after recycles.
  cycle(0);

  g_armed_allocs = 0;
  g_armed = true;
  for (std::uint64_t round = 1; round <= 512; ++round) cycle(round);
  g_armed = false;

  EXPECT_EQ(g_armed_allocs, 0u)
      << "steady-state rt slot encode/decode allocated " << g_armed_allocs
      << " times over 512 cycles";
}

}  // namespace
}  // namespace ci
