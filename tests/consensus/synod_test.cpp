#include "consensus/synod.hpp"

#include <gtest/gtest.h>

namespace ci::consensus {
namespace {

TEST(SynodAcceptor, Phase1RequiresStrictlyHigherBallot) {
  SynodAcceptor<int> a;
  EXPECT_TRUE(a.phase1(ProposalNum{1, 0}));
  EXPECT_FALSE(a.phase1(ProposalNum{1, 0}));  // equal rejected
  EXPECT_FALSE(a.phase1(ProposalNum{0, 5}));  // lower rejected
  EXPECT_TRUE(a.phase1(ProposalNum{2, 0}));
}

TEST(SynodAcceptor, Phase2HonorsPromise) {
  SynodAcceptor<int> a;
  ASSERT_TRUE(a.phase1(ProposalNum{5, 0}));
  EXPECT_FALSE(a.phase2(ProposalNum{4, 1}, 10));  // below the promise
  EXPECT_TRUE(a.phase2(ProposalNum{5, 0}, 10));   // exactly the promise
  EXPECT_TRUE(a.has_accepted);
  EXPECT_EQ(a.accepted_value, 10);
}

TEST(SynodAcceptor, Phase2AboveBumpsPromise) {
  SynodAcceptor<int> a;
  a.phase1(ProposalNum{1, 0});
  EXPECT_TRUE(a.phase2(ProposalNum{3, 1}, 7));  // higher ballot accepted
  EXPECT_EQ(a.promised, (ProposalNum{3, 1}));
  EXPECT_FALSE(a.phase1(ProposalNum{2, 0}));  // now below the bumped promise
}

TEST(SynodAcceptor, AcceptedValueOverwrittenByHigherBallot) {
  SynodAcceptor<int> a;
  a.phase2(ProposalNum{1, 0}, 10);
  a.phase2(ProposalNum{2, 1}, 20);
  EXPECT_EQ(a.accepted_value, 20);
  EXPECT_EQ(a.accepted_pn, (ProposalNum{2, 1}));
}

TEST(SynodLearner, MajorityFiresExactlyOnce) {
  SynodLearner l;
  const ProposalNum pn{1, 0};
  EXPECT_FALSE(l.record(pn, 0, 2));
  EXPECT_TRUE(l.record(pn, 1, 2));   // second acceptance = majority of 3
  EXPECT_FALSE(l.record(pn, 2, 2));  // further acceptances do not re-fire
}

TEST(SynodLearner, DuplicateAcceptorDoesNotCount) {
  SynodLearner l;
  const ProposalNum pn{1, 0};
  EXPECT_FALSE(l.record(pn, 0, 2));
  EXPECT_FALSE(l.record(pn, 0, 2));  // same acceptor again
  EXPECT_FALSE(l.has_majority(2));
}

TEST(SynodLearner, BallotsCountSeparately) {
  SynodLearner l;
  EXPECT_FALSE(l.record(ProposalNum{1, 0}, 0, 2));
  EXPECT_FALSE(l.record(ProposalNum{2, 1}, 1, 2));  // different ballot
  EXPECT_FALSE(l.has_majority(2));
  EXPECT_TRUE(l.record(ProposalNum{2, 1}, 2, 2));
}

TEST(SynodLearner, SingleAcceptorMajorityOfOne) {
  SynodLearner l;
  EXPECT_TRUE(l.record(ProposalNum{1, 0}, 0, 1));
}

}  // namespace
}  // namespace ci::consensus
