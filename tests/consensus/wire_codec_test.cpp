// wire::Codec: randomized round-trips over every frame kind, strict
// truncated-frame rejection, bit-identity of legacy (batch=1) frames with
// the struct-prefix encoding they replaced, pool-custody leak checks, and
// the CI wire budgets (sizeof(Message) and per-frame byte pins) that make
// size regressions fail the build.
#include "consensus/wire_codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "consensus/batch.hpp"
#include "consensus/message.hpp"

namespace ci::consensus {
namespace {

Command rand_cmd(Rng& rng) {
  Command c;
  c.client = static_cast<NodeId>(rng.next_below(32));
  c.seq = static_cast<std::uint32_t>(rng.next_below(1u << 20));
  c.op = rng.next_below(2) == 0 ? Op::kWrite : Op::kRead;
  c.key = rng.next_u64();
  c.value = rng.next_u64();
  return c;
}

Batch rand_batch(Rng& rng, std::int32_t count) {
  Batch b;
  for (std::int32_t i = 0; i < count; ++i) b.push_back(rand_cmd(rng));
  return b;
}

// One randomized message of each batched frame kind, exercising both the
// inline (count <= kInlineBatchCommands) and pooled regimes.
Message rand_batched(Rng& rng, MsgType type, const Batch& value) {
  const Instance in = static_cast<Instance>(rng.next_below(1000));
  const ProposalNum pn{static_cast<std::int64_t>(1 + rng.next_below(50)),
                       static_cast<NodeId>(rng.next_below(5))};
  Message m(type, ProtoId::kOnePaxos, static_cast<NodeId>(rng.next_below(5)),
            static_cast<NodeId>(rng.next_below(5)));
  switch (type) {
    case MsgType::kPhase2BatchReq:
      m.proto = ProtoId::kMultiPaxos;
      m.u.phase2_batch_req.instance = in;
      m.u.phase2_batch_req.pn = pn;
      m.u.phase2_batch_req.count = m.u.phase2_batch_req.run.pack(value);
      break;
    case MsgType::kPhase2BatchAcked:
      m.proto = ProtoId::kMultiPaxos;
      m.u.phase2_batch_acked.instance = in;
      m.u.phase2_batch_acked.pn = pn;
      m.u.phase2_batch_acked.count = m.u.phase2_batch_acked.run.pack(value);
      break;
    case MsgType::kPhase1BatchResp:
      m.proto = ProtoId::kMultiPaxos;
      m.u.phase1_batch_resp.pn = pn;
      m.u.phase1_batch_resp.accepted_pn = pn;
      m.u.phase1_batch_resp.instance = in;
      m.u.phase1_batch_resp.count = m.u.phase1_batch_resp.run.pack(value);
      break;
    case MsgType::kOpxBatchAcceptReq:
      m.u.opx_batch_accept_req.instance = in;
      m.u.opx_batch_accept_req.pn = pn;
      m.u.opx_batch_accept_req.count = m.u.opx_batch_accept_req.run.pack(value);
      break;
    case MsgType::kOpxBatchLearn:
      m.u.opx_batch_learn.instance = in;
      m.u.opx_batch_learn.count = m.u.opx_batch_learn.run.pack(value);
      break;
    case MsgType::kOpxPrepareBatchResp:
      m.u.opx_prepare_batch_resp.acceptor = m.src;
      m.u.opx_prepare_batch_resp.pn = pn;
      m.u.opx_prepare_batch_resp.instance = in;
      m.u.opx_prepare_batch_resp.count = m.u.opx_prepare_batch_resp.run.pack(value);
      break;
    case MsgType::kOpxWindowBody:
      m.u.opx_window_body.instance = in;
      m.u.opx_window_body.digest = batch_digest(value);
      m.u.opx_window_body.count = m.u.opx_window_body.run.pack(value);
      break;
    case MsgType::kOpxLearnRun:
      m.u.opx_learn_run.first_instance = in;
      m.u.opx_learn_run.count = m.u.opx_learn_run.run.pack(value);
      break;
    default:
      ADD_FAILURE() << "not a batched frame kind";
  }
  return m;
}

const MsgType kBatchKinds[] = {
    MsgType::kPhase2BatchReq,  MsgType::kPhase2BatchAcked,    MsgType::kPhase1BatchResp,
    MsgType::kOpxBatchAcceptReq, MsgType::kOpxBatchLearn,
    MsgType::kOpxPrepareBatchResp, MsgType::kOpxWindowBody,
};

// Frame-level equality is semantic equality: encode() reads the commands
// through whatever representation (inline or pooled) each side holds, so
// two messages with identical frames carry identical payloads.
void expect_same_frame(const Message& a, const Message& b) {
  unsigned char fa[ci::wire::kMaxFrameBytes];
  unsigned char fb[ci::wire::kMaxFrameBytes];
  const std::uint32_t na = ci::wire::encode(a, fa);
  const std::uint32_t nb = ci::wire::encode(b, fb);
  ASSERT_EQ(na, nb);
  EXPECT_EQ(std::memcmp(fa, fb, na), 0);
}

TEST(WireCodec, RoundTripRandomizedBatchSizesAllKinds) {
  Rng rng(0xC0DEC);
  const std::size_t live0 = CommandPool::local().live();
  for (const MsgType kind : kBatchKinds) {
    for (int iter = 0; iter < 40; ++iter) {
      // Cover the inline/pooled boundary densely, the rest uniformly.
      const std::int32_t count =
          iter < 8 ? 2 + iter
                   : static_cast<std::int32_t>(2 + rng.next_below(kMaxCommandsPerBatch - 1));
      const Batch value = rand_batch(rng, count);
      Message m = rand_batched(rng, kind, value);
      unsigned char buf[ci::wire::kMaxFrameBytes];
      const std::uint32_t n = ci::wire::encode(m, buf);
      EXPECT_EQ(n, wire_size(m));
      Message out;
      ASSERT_TRUE(ci::wire::try_decode(buf, n, &out)) << "kind " << static_cast<int>(kind)
                                                      << " count " << count;
      expect_same_frame(m, out);
      ci::wire::release_body(out);  // decode-side custody
      ci::wire::release_body(m);    // sender-side custody
    }
  }
  EXPECT_EQ(CommandPool::local().live(), live0) << "pool blocks leaked";
}

TEST(WireCodec, TruncatedFramesAreRejected) {
  Rng rng(0xBAD);
  const std::size_t live0 = CommandPool::local().live();
  std::vector<Message> samples;
  for (const MsgType kind : kBatchKinds) {
    samples.push_back(rand_batched(rng, kind, rand_batch(rng, 2)));
    samples.push_back(rand_batched(rng, kind, rand_batch(rng, kMaxCommandsPerBatch)));
  }
  {
    Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
    m.u.opx_accept_req.instance = 3;
    m.u.opx_accept_req.pn = ProposalNum{2, 0};
    samples.push_back(m);
  }
  {
    Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 1, 0);
    m.u.phase1_resp.pn = ProposalNum{4, 1};
    m.u.phase1_resp.num_proposals = 3;
    samples.push_back(m);
  }
  for (const Message& m : samples) {
    unsigned char buf[ci::wire::kMaxFrameBytes];
    const std::uint32_t n = ci::wire::encode(m, buf);
    Message out;
    for (std::uint32_t k = 0; k < n; ++k) {
      EXPECT_FALSE(ci::wire::try_decode(buf, k, &out))
          << "type " << static_cast<int>(m.type) << " accepted a " << k << "/" << n
          << "-byte prefix";
    }
    ASSERT_TRUE(ci::wire::try_decode(buf, n, &out));
    ci::wire::release_body(out);
    ci::wire::release_body(m);
  }
  EXPECT_EQ(CommandPool::local().live(), live0);
}

TEST(WireCodec, GarbageNeverDecodesToAnUnknownTypeOrLeaks) {
  Rng rng(0xF00D);
  const std::size_t live0 = CommandPool::local().live();
  unsigned char buf[512];
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = rng.next_below(sizeof(buf));
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<unsigned char>(rng.next_below(256));
    }
    Message out;
    if (ci::wire::try_decode(buf, n, &out)) {
      // Random bytes rarely form a valid frame; when they do, the decoded
      // message must be internally consistent.
      EXPECT_TRUE(wire_validate(out, wire_size(out)));
      ci::wire::release_body(out);
    }
  }
  EXPECT_EQ(CommandPool::local().live(), live0);
}

TEST(WireCodec, LegacyFramesStayBitIdenticalToStructPrefix) {
  // The batch=1 promise: every non-batched frame is exactly the struct
  // prefix it always was — a deployment that never batches is byte-stable
  // on the wire across this refactor.
  std::vector<Message> samples;
  {
    Message m(MsgType::kClientRequest, ProtoId::kClient, 3, 0);
    m.u.client_request.cmd.client = 3;
    m.u.client_request.cmd.seq = 9;
    samples.push_back(m);
  }
  {
    Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, 0, 1);
    m.u.opx_accept_req.instance = 42;
    m.u.opx_accept_req.pn = ProposalNum{7, 0};
    samples.push_back(m);
  }
  {
    Message m(MsgType::kPhase1Resp, ProtoId::kMultiPaxos, 1, 2);
    m.u.phase1_resp.pn = ProposalNum{3, 1};
    m.u.phase1_resp.num_proposals = 2;
    samples.push_back(m);
  }
  {
    Message m(MsgType::kHeartbeat, ProtoId::kMultiPaxos, 0, 1);
    m.u.heartbeat.leader = 0;
    m.u.heartbeat.committed = 17;
    samples.push_back(m);
  }
  {
    Message m(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
    m.u.util_phase2_req.instance = 2;
    m.u.util_phase2_req.entry.kind = UtilityEntry::Kind::kAcceptorChange;
    m.u.util_phase2_req.entry.num_proposals = 1;  // num_batched == 0: legacy layout
    samples.push_back(m);
  }
  for (const Message& m : samples) {
    unsigned char frame[ci::wire::kMaxFrameBytes];
    const std::uint32_t n = ci::wire::encode(m, frame);
    ASSERT_EQ(n, wire_size(m));
    EXPECT_EQ(std::memcmp(frame, &m, n), 0)
        << "type " << static_cast<int>(m.type) << " frame diverged from the struct prefix";
  }
}

// kClientCmdBatch: the client-side run frame. Tighter count cap than the
// protocol batches (runs stay inline, so sessions never touch the
// engine-thread-local pool) and full strictness on decode.
TEST(WireCodec, ClientCmdBatchRoundTripsWithinItsCap) {
  Rng rng(0xC11E);
  const std::size_t live0 = CommandPool::local().live();
  // count == 1 is valid since client coalescing: a window can close with a
  // single queued command (senders still prefer kClientRequest for singles,
  // but the decoder must accept what a coalescing sender may emit).
  for (std::int32_t count = 1; count <= kMaxClientBatchCommands; ++count) {
    const Batch value = rand_batch(rng, count);
    Message m(MsgType::kClientCmdBatch, ProtoId::kClient, 7, 0);
    m.u.client_cmd_batch.count = m.u.client_cmd_batch.run.pack(value);
    unsigned char buf[ci::wire::kMaxFrameBytes];
    const std::uint32_t n = ci::wire::encode(m, buf);
    EXPECT_EQ(n, wire_size(m));
    EXPECT_EQ(n, kMessageHeaderBytes + offsetof(ClientCmdBatch, run) +
                     static_cast<std::size_t>(count) * sizeof(Command));
    Message out;
    ASSERT_TRUE(ci::wire::try_decode(buf, n, &out)) << "count " << count;
    expect_same_frame(m, out);
    for (std::uint32_t k = 0; k < n; ++k) {
      EXPECT_FALSE(ci::wire::try_decode(buf, k, &out)) << count << "-run prefix " << k;
    }
  }
  EXPECT_EQ(CommandPool::local().live(), live0) << "client runs must stay inline";
}

TEST(WireCodec, ClientCmdBatchRejectsCountsBeyondTheInlineCap) {
  // Counts the PROTOCOL batches accept (up to 64) are invalid here: a
  // client run longer than the inline capacity must never decode, or the
  // demux would dereference a pool the sender never filled.
  Rng rng(0xC11F);
  const Batch value = rand_batch(rng, kMaxClientBatchCommands);
  Message m(MsgType::kClientCmdBatch, ProtoId::kClient, 7, 0);
  m.u.client_cmd_batch.count = m.u.client_cmd_batch.run.pack(value);
  unsigned char buf[ci::wire::kMaxFrameBytes];
  std::memset(buf, 0, sizeof(buf));
  (void)ci::wire::encode(m, buf);
  for (const std::int32_t bogus : {0, kMaxClientBatchCommands + 1, 64, -3}) {
    std::memcpy(buf + kMessageHeaderBytes, &bogus, sizeof(bogus));
    Message out;
    EXPECT_FALSE(
        ci::wire::try_decode(buf, ci::wire::kMaxFrameBytes, &out))
        << "count " << bogus;
  }
}

// kOpxLearnRun: the coalesced catch-up frame. Its own count window
// (2..kMaxLearnRunCommands) straddles the inline/pooled boundary, so both
// regimes must round-trip and everything outside the window must reject.
TEST(WireCodec, LearnRunRoundTripsAcrossTheInlinePooledBoundary) {
  Rng rng(0x1EA2);
  const std::size_t live0 = CommandPool::local().live();
  for (std::int32_t count = 2; count <= kMaxLearnRunCommands; ++count) {
    const Batch value = rand_batch(rng, count);
    Message m = rand_batched(rng, MsgType::kOpxLearnRun, value);
    unsigned char buf[ci::wire::kMaxFrameBytes];
    const std::uint32_t n = ci::wire::encode(m, buf);
    EXPECT_EQ(n, wire_size(m));
    EXPECT_EQ(n, kMessageHeaderBytes + offsetof(OpxLearnRun, run) +
                     static_cast<std::size_t>(count) * sizeof(Command));
    Message out;
    ASSERT_TRUE(ci::wire::try_decode(buf, n, &out)) << "count " << count;
    EXPECT_EQ(unpack_batch(out.u.opx_learn_run.run.data(out.u.opx_learn_run.count),
                           out.u.opx_learn_run.count),
              value);
    expect_same_frame(m, out);
    for (std::uint32_t k = 0; k < n; ++k) {
      EXPECT_FALSE(ci::wire::try_decode(buf, k, &out)) << count << "-run prefix " << k;
    }
    ci::wire::release_body(out);
    ci::wire::release_body(m);
  }
  EXPECT_EQ(CommandPool::local().live(), live0) << "pool blocks leaked";
}

TEST(WireCodec, LearnRunRejectsCountsOutsideItsWindow) {
  Rng rng(0x1EA3);
  const Batch value = rand_batch(rng, kMaxLearnRunCommands);
  Message m = rand_batched(rng, MsgType::kOpxLearnRun, value);
  unsigned char buf[ci::wire::kMaxFrameBytes];
  std::memset(buf, 0, sizeof(buf));
  (void)ci::wire::encode(m, buf);
  ci::wire::release_body(m);
  // A run of one never travels as kOpxLearnRun (senders degenerate to the
  // legacy kOpxLearn), so 1 is as invalid on decode as 0 or the protocol
  // batch cap.
  for (const std::int32_t bogus :
       {0, 1, kMaxLearnRunCommands + 1, kMaxCommandsPerBatch, -5}) {
    std::memcpy(buf + kMessageHeaderBytes + offsetof(OpxLearnRun, count), &bogus,
                sizeof(bogus));
    Message out;
    EXPECT_FALSE(ci::wire::try_decode(buf, ci::wire::kMaxFrameBytes, &out))
        << "count " << bogus;
  }
}

TEST(WireCodec, PooledDecodeAllocatesAndReleaseReturns) {
  const std::size_t live0 = CommandPool::local().live();
  Rng rng(7);
  const Batch value = rand_batch(rng, kMaxCommandsPerBatch);
  Message m = rand_batched(rng, MsgType::kPhase2BatchReq, value);
  EXPECT_EQ(CommandPool::local().live(), live0 + 1);  // sender-side block
  unsigned char buf[ci::wire::kMaxFrameBytes];
  const std::uint32_t n = ci::wire::encode(m, buf);
  ci::wire::release_body(m);  // transport consumed the send
  EXPECT_EQ(CommandPool::local().live(), live0);
  Message out;
  ASSERT_TRUE(ci::wire::try_decode(buf, n, &out));
  EXPECT_EQ(CommandPool::local().live(), live0 + 1);  // receiver-side block
  EXPECT_EQ(unpack_batch(out.u.phase2_batch_req.run.data(out.u.phase2_batch_req.count),
                         out.u.phase2_batch_req.count),
            value);
  ci::wire::release_body(out);
  EXPECT_EQ(CommandPool::local().live(), live0);
}

TEST(WireCodec, InlineRunsNeverTouchThePool) {
  const std::size_t live0 = CommandPool::local().live();
  Rng rng(11);
  const Batch value = rand_batch(rng, kInlineBatchCommands);
  Message m = rand_batched(rng, MsgType::kOpxBatchLearn, value);
  EXPECT_EQ(CommandPool::local().live(), live0);
  ci::wire::release_body(m);  // must be a no-op
  EXPECT_EQ(CommandPool::local().live(), live0);
}

TEST(CommandPool, RetainReleaseAndGenerationGuard) {
  CommandPool& pool = CommandPool::local();
  const std::size_t live0 = pool.live();
  Rng rng(3);
  const Batch value = rand_batch(rng, 12);
  const BodyRef ref = pool.alloc(value.data(), 12);
  EXPECT_EQ(pool.live(), live0 + 1);
  EXPECT_EQ(unpack_batch(pool.data(ref), 12), value);
  pool.retain(ref);
  pool.release(ref);
  EXPECT_EQ(pool.live(), live0 + 1);  // one reference still out
  EXPECT_EQ(unpack_batch(pool.data(ref), 12), value);
  pool.release(ref);
  EXPECT_EQ(pool.live(), live0);
}

TEST(CommandPoolDeathTest, StaleRefTripsTheGuard) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(5);
  const Batch value = rand_batch(rng, 10);
  CommandPool& pool = CommandPool::local();
  const BodyRef ref = pool.alloc(value.data(), 10);
  pool.release(ref);
  EXPECT_DEATH((void)pool.data(ref), "stale");
}

// ---- CI wire budgets ----
// These pins are the ctest half of the size guard (the static_assert in
// message.hpp is the compile-time half): loosening any of them is an
// explicit, reviewed decision rather than a silent regression.

TEST(WireBudgets, MessageStaysUnderItsBudget) {
  EXPECT_LE(sizeof(Message), kMessageBudgetBytes);
  static_assert(sizeof(Message) <= kMessageBudgetBytes);
  // The worst case used to be ~5.3 KB (the batched UtilityEntry command
  // pool); the decoupling must keep the whole union under ~1.4 KB.
  EXPECT_LE(sizeof(Message), 1408u);
}

TEST(WireBudgets, PerFrameBytesArePinned) {
  // Fast path: one 128-byte slot minus the 8-byte fragment header.
  constexpr std::size_t kSlotPayload = 120;
  for (const MsgType t : {MsgType::kClientRequest, MsgType::kClientReply,
                          MsgType::kOpxAcceptReq, MsgType::kOpxLearn, MsgType::kPhase2Req,
                          MsgType::kPhase2Acked, MsgType::kHeartbeat}) {
    Message m(t, ProtoId::kOnePaxos, 0, 1);
    EXPECT_LE(wire_size(m), kSlotPayload) << "type " << static_cast<int>(t);
  }

  // A full batch frame: header + fixed fields + count commands, nothing else.
  Rng rng(13);
  Message big = rand_batched(rng, MsgType::kPhase2BatchReq, rand_batch(rng, 64));
  EXPECT_EQ(wire_size(big),
            kMessageHeaderBytes + offsetof(Phase2BatchReq, run) + 64 * sizeof(Command));
  ci::wire::release_body(big);

  // A fully-loaded reconfiguration entry: refs, not bodies.
  Message entry(MsgType::kUtilPhase2Req, ProtoId::kUtility, 0, 1);
  UtilityEntry& e = entry.u.util_phase2_req.entry;
  e.kind = UtilityEntry::Kind::kAcceptorChange;
  e.num_proposals = kMaxProposalsPerMsg;
  e.num_batched = kMaxBatchedPerEntry;
  for (std::int32_t i = 0; i < e.num_batched; ++i) e.batched[i].count = 2;
  EXPECT_EQ(wire_size(entry),
            kMessageHeaderBytes + offsetof(UtilPhase2Req, entry) +
                offsetof(UtilityEntry, batched) +
                static_cast<std::size_t>(kMaxBatchedPerEntry) * sizeof(BatchedProposalRef));
  EXPECT_LE(wire_size(entry), ci::wire::kMaxFrameBytes);

  // The codec's global ceiling: the full-capacity batched frame.
  EXPECT_EQ(ci::wire::kMaxFrameBytes,
            kMessageHeaderBytes + ci::wire::kMaxBatchFixedBytes +
                static_cast<std::size_t>(kMaxCommandsPerBatch) * sizeof(Command));

  // Policy-dependent sizing grows with the cap and never exceeds the ceiling.
  consensus::BatchPolicy small;
  small.max_commands = 8;
  consensus::BatchPolicy full;
  full.max_commands = kMaxCommandsPerBatch;
  EXPECT_LT(ci::wire::max_frame_bytes(small), ci::wire::max_frame_bytes(full));
  EXPECT_LE(ci::wire::max_frame_bytes(full), ci::wire::kMaxFrameBytes);
}

TEST(WireBudgets, EncodeCopiesEachFrameByteExactlyOnce) {
  // The zero-copy send-path contract: encode_into moves every frame byte
  // from its source field to the destination in ONE pass. Copied bytes ==
  // frame bytes, with a handful of appends (header, fixed fields, command
  // run) — any second pass (an intermediate stack Message, an extra
  // memcpy) doubles the byte count and fails this pin.
  Rng rng(17);
  std::vector<Message> samples;
  {
    Message m(MsgType::kClientRequest, ProtoId::kClient, 3, 0);
    m.u.client_request.cmd.client = 3;
    samples.push_back(m);
  }
  samples.push_back(rand_batched(rng, MsgType::kPhase2BatchReq,
                                 rand_batch(rng, kMaxCommandsPerBatch)));
  samples.push_back(rand_batched(rng, MsgType::kOpxBatchLearn,
                                 rand_batch(rng, kInlineBatchCommands)));
  samples.push_back(rand_batched(rng, MsgType::kOpxLearnRun,
                                 rand_batch(rng, kMaxLearnRunCommands)));
  for (const Message& m : samples) {
    unsigned char buf[ci::wire::kMaxFrameBytes];
    ci::wire::copy_stats().reset();
    const std::uint32_t n = ci::wire::encode(m, buf);
    EXPECT_EQ(ci::wire::copy_stats().bytes, n)
        << "type " << static_cast<int>(m.type) << ": frame bytes copied more than once";
    EXPECT_LE(ci::wire::copy_stats().appends, 3u) << "type " << static_cast<int>(m.type);
    ci::wire::release_body(m);
  }
}

}  // namespace
}  // namespace ci::consensus
