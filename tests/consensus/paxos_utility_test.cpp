// PaxosUtility semantics (paper §5.2, Appendix B): bootstrap entries,
// lastLeader/lastActiveAcceptor queries, proposal outcome callbacks, and the
// Lemma-level guarantees (one value per utility instance; entries inserted
// serially).
#include "consensus/paxos_utility.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

// Hosts a PaxosUtility as an Engine so FakeNet can drive it.
class UtilityHost final : public Engine {
 public:
  UtilityHost(NodeId self, std::int32_t replicas) {
    EngineConfig cfg;
    cfg.self = self;
    cfg.num_replicas = replicas;
    util = std::make_unique<PaxosUtility>(cfg, [this](Context&, Instance i, const UtilityEntry& e) {
      decided.emplace_back(i, e);
    });
    util->bootstrap(0, 1);
  }

  void on_message(Context& ctx, const Message& m) override { util->on_message(ctx, m); }
  void tick(Context& ctx) override { util->tick(ctx); }

  std::unique_ptr<PaxosUtility> util;
  std::vector<std::pair<Instance, UtilityEntry>> decided;
};

struct UtilHarness {
  explicit UtilHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      hosts.push_back(std::make_unique<UtilityHost>(r, replicas));
      net.add(hosts.back().get());
    }
    net.start_all();
  }

  PaxosUtility& at(NodeId r) { return *hosts[static_cast<std::size_t>(r)]->util; }
  UtilityHost& host(NodeId r) { return *hosts[static_cast<std::size_t>(r)]; }

  // FakeNet context for direct propose() calls: any host's engine context
  // works since propose only uses send/now.
  FakeNet net;
  std::vector<std::unique_ptr<UtilityHost>> hosts;
};

UtilityEntry leader_change(NodeId leader, NodeId acceptor) {
  UtilityEntry e;
  e.kind = UtilityEntry::Kind::kLeaderChange;
  e.leader = leader;
  e.acceptor = acceptor;
  return e;
}

UtilityEntry acceptor_change(NodeId leader, NodeId acceptor) {
  UtilityEntry e;
  e.kind = UtilityEntry::Kind::kAcceptorChange;
  e.leader = leader;
  e.acceptor = acceptor;
  return e;
}

TEST(PaxosUtility, BootstrapSeedsLeaderAndAcceptor) {
  UtilHarness h;
  Instance idx = kNoInstance;
  EXPECT_EQ(h.at(0).last_leader(&idx), 0);
  EXPECT_EQ(idx, 0);
  const auto info = h.at(2).last_active_acceptor();
  EXPECT_EQ(info.acceptor, 1);
  EXPECT_EQ(info.index, 1);
  ASSERT_NE(info.entry, nullptr);
  EXPECT_EQ(info.entry->num_proposals, 0);
  EXPECT_EQ(h.at(0).decided_count(), 2);
}

TEST(PaxosUtility, DecidedEntriesVisibleEverywhere) {
  UtilHarness h;
  for (NodeId r = 0; r < 3; ++r) {
    EXPECT_EQ(h.at(r).decided_count(), 2);
    EXPECT_EQ(h.at(r).decided(0)->kind, UtilityEntry::Kind::kLeaderChange);
    EXPECT_EQ(h.at(r).decided(1)->kind, UtilityEntry::Kind::kAcceptorChange);
  }
}

TEST(PaxosUtility, LastLeaderScansBackwards) {
  UtilHarness h;
  // No messages needed: query logic only.
  EXPECT_EQ(h.at(0).last_leader(), 0);
  EXPECT_EQ(h.at(1).last_leader(), 0);
}

TEST(PaxosUtility, ProposeDecidesOnAllNodes) {
  UtilHarness h;
  bool outcome = false;
  bool fired = false;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), [&](Context&, bool ok) {
    fired = true;
    outcome = ok;
  }));
  h.net.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(outcome);
  for (NodeId r = 0; r < 3; ++r) {
    EXPECT_EQ(h.at(r).decided_count(), 3) << "node " << r;
    EXPECT_EQ(h.at(r).last_leader(), 2) << "node " << r;
  }
}

TEST(PaxosUtility, SecondProposeWhileInFlightIsRejected) {
  UtilHarness h;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), nullptr));
  EXPECT_TRUE(h.at(2).propose_in_flight());
  EXPECT_FALSE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), nullptr));
  h.net.run();
  EXPECT_FALSE(h.at(2).propose_in_flight());
}

TEST(PaxosUtility, ContendingProposersOneWinsOneLoses) {
  UtilHarness h;
  int wins = 0;
  int losses = 0;
  auto count = [&](Context&, bool ok) { ok ? wins++ : losses++; };
  ASSERT_TRUE(h.at(1).propose(h.net.ctx(1), leader_change(1, 0), count));
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), count));
  h.net.run();
  // Timers may be needed if ballots collided.
  for (int i = 0; i < 10 && wins + losses < 2; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(losses, 1);
  // Both proposed at instance 2; exactly one entry sits there, identical on
  // every node (Appendix B: no two values for one instance).
  const UtilityEntry* e0 = h.at(0).decided(2);
  ASSERT_NE(e0, nullptr);
  for (NodeId r = 1; r < 3; ++r) {
    const UtilityEntry* er = h.at(r).decided(2);
    ASSERT_NE(er, nullptr);
    EXPECT_TRUE(*e0 == *er);
  }
}

TEST(PaxosUtility, LoserCanRetryAtNextInstance) {
  UtilHarness h;
  bool n1_done = false;
  bool n1_ok = false;
  ASSERT_TRUE(h.at(1).propose(h.net.ctx(1), acceptor_change(1, 2), nullptr));
  h.net.run();  // node 1's entry decided at instance 2
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 2), [&](Context&, bool ok) {
    n1_done = true;
    n1_ok = ok;
  }));
  h.net.run();
  EXPECT_TRUE(n1_done);
  EXPECT_TRUE(n1_ok);  // fresh instance: no contention
  EXPECT_EQ(h.at(0).last_leader(), 2);
  EXPECT_EQ(h.at(0).last_active_acceptor().acceptor, 2);
}

TEST(PaxosUtility, AcceptorChangeCarriesProposals) {
  UtilHarness h;
  UtilityEntry e = acceptor_change(0, 2);
  e.num_proposals = 2;
  e.proposals[0] = Proposal{5, ProposalNum{3, 0}, Command{}};
  e.proposals[1] = Proposal{6, ProposalNum{3, 0}, Command{}};
  ASSERT_TRUE(h.at(0).propose(h.net.ctx(0), e, nullptr));
  h.net.run();
  const auto info = h.at(2).last_active_acceptor();
  EXPECT_EQ(info.acceptor, 2);
  ASSERT_NE(info.entry, nullptr);
  ASSERT_EQ(info.entry->num_proposals, 2);
  EXPECT_EQ(info.entry->proposals[0].instance, 5);
  EXPECT_EQ(info.entry->proposals[1].instance, 6);
}

TEST(PaxosUtility, ProposeWithMinoritySilentStillDecides) {
  UtilHarness h;
  h.net.isolate(0);
  bool ok = false;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), [&](Context&, bool o) { ok = o; }));
  h.net.run();
  EXPECT_TRUE(ok);  // majority 2 of 3 suffices
  EXPECT_EQ(h.at(1).last_leader(), 2);
  EXPECT_EQ(h.at(0).last_leader(), 0);  // isolated node is behind, not wrong
}

TEST(PaxosUtility, RetryAfterTotalMessageLoss) {
  UtilHarness h;
  bool done = false;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), [&](Context&, bool) { done = true; }));
  // Lose the entire first phase-1 volley.
  h.net.drop_if([](const Message&) { return true; });
  EXPECT_FALSE(done);
  // The retry timer restarts the proposal with a higher ballot.
  for (int i = 0; i < 10 && !done; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(h.at(0).last_leader(), 2);
}

TEST(PaxosUtility, SnapshotAnchoredProposeFailsWhenLogMoved) {
  // The Fig. 12 snapshot-propose pattern: a proposal anchored to a stale
  // index must fail (synchronously) so the caller re-reads its snapshot.
  UtilHarness h;
  const Instance snapshot = h.at(2).next_instance();
  // Someone else inserts an entry first.
  ASSERT_TRUE(h.at(1).propose(h.net.ctx(1), acceptor_change(0, 2), nullptr, snapshot));
  h.net.run();
  ASSERT_EQ(h.at(2).next_instance(), snapshot + 1);
  bool fired = false;
  bool ok = true;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1),
                              [&](Context&, bool o) {
                                fired = true;
                                ok = o;
                              },
                              snapshot));
  EXPECT_TRUE(fired);  // synchronous failure
  EXPECT_FALSE(ok);
  EXPECT_FALSE(h.at(2).propose_in_flight());
  // Retry with a fresh snapshot succeeds.
  bool ok2 = false;
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 2),
                              [&](Context&, bool o) { ok2 = o; }, h.at(2).next_instance()));
  h.net.run();
  EXPECT_TRUE(ok2);
}

TEST(PaxosUtility, LaggingNodeCaughtUpByDecidedShortCircuit) {
  UtilHarness h;
  h.net.isolate(0);
  ASSERT_TRUE(h.at(2).propose(h.net.ctx(2), leader_change(2, 1), nullptr));
  h.net.run();
  ASSERT_EQ(h.at(0).decided_count(), 2);  // node 0 missed instance 2
  h.net.heal(0);
  // Node 0 now proposes at its stale next instance (2); the others answer
  // with the decided entry, it learns, then retries and wins at 3.
  bool first_ok = true;
  ASSERT_TRUE(h.at(0).propose(h.net.ctx(0), acceptor_change(0, 2),
                              [&](Context&, bool ok) { first_ok = ok; }));
  h.net.run();
  EXPECT_FALSE(first_ok);               // lost instance 2 to the old entry
  EXPECT_EQ(h.at(0).decided_count(), 3);  // but caught up
  bool second_ok = false;
  ASSERT_TRUE(h.at(0).propose(h.net.ctx(0), acceptor_change(0, 2),
                              [&](Context&, bool ok) { second_ok = ok; }));
  h.net.run();
  EXPECT_TRUE(second_ok);
  EXPECT_EQ(h.at(1).last_active_acceptor().acceptor, 2);
}

}  // namespace
}  // namespace ci::consensus
