#include "consensus/state_machine.hpp"

#include <gtest/gtest.h>

namespace ci::consensus {
namespace {

Command make(NodeId client, std::uint32_t seq, Op op, std::uint64_t key, std::uint64_t value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = op;
  c.key = key;
  c.value = value;
  return c;
}

TEST(MapStateMachine, WriteThenRead) {
  MapStateMachine sm;
  EXPECT_EQ(sm.apply(make(1, 1, Op::kWrite, 7, 42)), 0u);  // returns old value
  EXPECT_EQ(sm.apply(make(1, 2, Op::kRead, 7, 0)), 42u);
  EXPECT_EQ(sm.read(7), 42u);
  EXPECT_EQ(sm.size(), 1u);
}

TEST(MapStateMachine, OverwriteReturnsOld) {
  MapStateMachine sm;
  sm.apply(make(1, 1, Op::kWrite, 7, 1));
  EXPECT_EQ(sm.apply(make(1, 2, Op::kWrite, 7, 2)), 1u);
  EXPECT_EQ(sm.read(7), 2u);
}

TEST(MapStateMachine, ReadMissingKeyIsZero) {
  MapStateMachine sm;
  EXPECT_EQ(sm.read(99), 0u);
}

TEST(Executor, AppliesOnce) {
  MapStateMachine sm;
  Executor ex(&sm);
  const Command w = make(1, 1, Op::kWrite, 5, 10);
  EXPECT_FALSE(ex.apply(w).duplicate);
  EXPECT_TRUE(ex.apply(w).duplicate);  // retry decided twice
  EXPECT_EQ(sm.read(5), 10u);
}

TEST(Executor, DuplicateDoesNotReapply) {
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 5, 10));
  ex.apply(make(1, 2, Op::kWrite, 5, 20));
  // A stale duplicate of seq 1 must not clobber seq 2's effect.
  EXPECT_TRUE(ex.apply(make(1, 1, Op::kWrite, 5, 10)).duplicate);
  EXPECT_EQ(sm.read(5), 20u);
}

TEST(Executor, SeparateClientsTrackedIndependently) {
  MapStateMachine sm;
  Executor ex(&sm);
  EXPECT_FALSE(ex.apply(make(1, 1, Op::kWrite, 1, 1)).duplicate);
  EXPECT_FALSE(ex.apply(make(2, 1, Op::kWrite, 2, 2)).duplicate);
  EXPECT_TRUE(ex.apply(make(1, 1, Op::kWrite, 1, 1)).duplicate);
}

TEST(Executor, NoopsAreTransparent) {
  Executor ex(nullptr);
  Command noop;  // default: kNoop, no client
  EXPECT_FALSE(ex.apply(noop).duplicate);
  EXPECT_FALSE(ex.apply(noop).duplicate);  // noops never dedup
}

TEST(Executor, ReadResultComesFromStateMachine) {
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 3, 33));
  const auto applied = ex.apply(make(2, 1, Op::kRead, 3, 0));
  EXPECT_FALSE(applied.duplicate);
  EXPECT_EQ(applied.result, 33u);
}

TEST(Executor, DuplicateReturnsCachedResult) {
  // A client retry that straddles a leader change decides twice; the second
  // execution is suppressed but must answer with the original result, or
  // the client would see put(k,v) "return" 0 instead of the old value.
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 5, 50));
  const auto dup = ex.apply(make(1, 2, Op::kWrite, 5, 51));
  EXPECT_FALSE(dup.duplicate);
  EXPECT_EQ(dup.result, 50u);  // old value
  const auto retry = ex.apply(make(1, 2, Op::kWrite, 5, 51));
  EXPECT_TRUE(retry.duplicate);
  EXPECT_EQ(retry.result, 50u);  // cached original result
  EXPECT_EQ(sm.read(5), 51u);    // state unchanged by the retry
}

TEST(Executor, NullStateMachineExecutesWithZeroResults) {
  Executor ex(nullptr);
  const auto applied = ex.apply(make(1, 1, Op::kWrite, 3, 33));
  EXPECT_FALSE(applied.duplicate);
  EXPECT_EQ(applied.result, 0u);
}

}  // namespace
}  // namespace ci::consensus
