#include "consensus/state_machine.hpp"

#include <gtest/gtest.h>

namespace ci::consensus {
namespace {

Command make(NodeId client, std::uint32_t seq, Op op, std::uint64_t key, std::uint64_t value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = op;
  c.key = key;
  c.value = value;
  return c;
}

TEST(MapStateMachine, WriteThenRead) {
  MapStateMachine sm;
  EXPECT_EQ(sm.apply(make(1, 1, Op::kWrite, 7, 42)), 0u);  // returns old value
  EXPECT_EQ(sm.apply(make(1, 2, Op::kRead, 7, 0)), 42u);
  EXPECT_EQ(sm.read(7), 42u);
  EXPECT_EQ(sm.size(), 1u);
}

TEST(MapStateMachine, OverwriteReturnsOld) {
  MapStateMachine sm;
  sm.apply(make(1, 1, Op::kWrite, 7, 1));
  EXPECT_EQ(sm.apply(make(1, 2, Op::kWrite, 7, 2)), 1u);
  EXPECT_EQ(sm.read(7), 2u);
}

TEST(MapStateMachine, ReadMissingKeyIsZero) {
  MapStateMachine sm;
  EXPECT_EQ(sm.read(99), 0u);
}

TEST(Executor, AppliesOnce) {
  MapStateMachine sm;
  Executor ex(&sm);
  const Command w = make(1, 1, Op::kWrite, 5, 10);
  EXPECT_FALSE(ex.apply(w).duplicate);
  EXPECT_TRUE(ex.apply(w).duplicate);  // retry decided twice
  EXPECT_EQ(sm.read(5), 10u);
}

TEST(Executor, DuplicateDoesNotReapply) {
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 5, 10));
  ex.apply(make(1, 2, Op::kWrite, 5, 20));
  // A stale duplicate of seq 1 must not clobber seq 2's effect.
  EXPECT_TRUE(ex.apply(make(1, 1, Op::kWrite, 5, 10)).duplicate);
  EXPECT_EQ(sm.read(5), 20u);
}

TEST(Executor, SeparateClientsTrackedIndependently) {
  MapStateMachine sm;
  Executor ex(&sm);
  EXPECT_FALSE(ex.apply(make(1, 1, Op::kWrite, 1, 1)).duplicate);
  EXPECT_FALSE(ex.apply(make(2, 1, Op::kWrite, 2, 2)).duplicate);
  EXPECT_TRUE(ex.apply(make(1, 1, Op::kWrite, 1, 1)).duplicate);
}

TEST(Executor, NoopsAreTransparent) {
  Executor ex(nullptr);
  Command noop;  // default: kNoop, no client
  EXPECT_FALSE(ex.apply(noop).duplicate);
  EXPECT_FALSE(ex.apply(noop).duplicate);  // noops never dedup
}

TEST(Executor, ReadResultComesFromStateMachine) {
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 3, 33));
  const auto applied = ex.apply(make(2, 1, Op::kRead, 3, 0));
  EXPECT_FALSE(applied.duplicate);
  EXPECT_EQ(applied.result, 33u);
}

TEST(Executor, DuplicateReturnsCachedResult) {
  // A client retry that straddles a leader change decides twice; the second
  // execution is suppressed but must answer with the original result, or
  // the client would see put(k,v) "return" 0 instead of the old value.
  MapStateMachine sm;
  Executor ex(&sm);
  ex.apply(make(1, 1, Op::kWrite, 5, 50));
  const auto dup = ex.apply(make(1, 2, Op::kWrite, 5, 51));
  EXPECT_FALSE(dup.duplicate);
  EXPECT_EQ(dup.result, 50u);  // old value
  const auto retry = ex.apply(make(1, 2, Op::kWrite, 5, 51));
  EXPECT_TRUE(retry.duplicate);
  EXPECT_EQ(retry.result, 50u);  // cached original result
  EXPECT_EQ(sm.read(5), 51u);    // state unchanged by the retry
}

TEST(Executor, NullStateMachineExecutesWithZeroResults) {
  Executor ex(nullptr);
  const auto applied = ex.apply(make(1, 1, Op::kWrite, 3, 33));
  EXPECT_FALSE(applied.duplicate);
  EXPECT_EQ(applied.result, 0u);
}

// ---- Transaction hooks (cross-shard 2PC participation, DESIGN.md §1d) ----

Command make_txn(NodeId client, std::uint32_t seq, Op op, TxnId txn, std::uint64_t key,
                 std::uint64_t value) {
  Command c = make(client, seq, op, key, value);
  c.txn = txn;
  return c;
}

TEST(MapStateMachine, PrepareStagesAndLocksCommitApplies) {
  MapStateMachine sm;
  const TxnId t = make_txn_id(9, 1);
  EXPECT_EQ(sm.txn_prepare(make_txn(9, 1, Op::kTxnPrepare, t, 1, 11)), 1u);  // vote yes
  EXPECT_EQ(sm.txn_prepare(make_txn(9, 2, Op::kTxnPrepare, t, 2, 22)), 1u);
  EXPECT_EQ(sm.locked_keys(), 2u);
  EXPECT_TRUE(sm.has_txn_state(t));
  EXPECT_EQ(sm.read(1), 0u);  // staged, not applied
  EXPECT_EQ(sm.txn_commit(t), 1u);
  EXPECT_EQ(sm.read(1), 11u);
  EXPECT_EQ(sm.read(2), 22u);
  EXPECT_EQ(sm.locked_keys(), 0u);
  EXPECT_FALSE(sm.has_txn_state(t));
  EXPECT_EQ(sm.txn_commit(t), 1u);  // duplicate commit is a harmless no-op
}

TEST(MapStateMachine, ConflictingPrepareVotesNoWithoutStaging) {
  MapStateMachine sm;
  const TxnId a = make_txn_id(9, 1);
  const TxnId b = make_txn_id(9, 2);
  EXPECT_EQ(sm.txn_prepare(make_txn(9, 1, Op::kTxnPrepare, a, 5, 50)), 1u);
  EXPECT_EQ(sm.txn_prepare(make_txn(9, 2, Op::kTxnPrepare, b, 5, 51)), 0u);  // vote no
  EXPECT_FALSE(sm.has_txn_state(b));
  EXPECT_EQ(sm.locked_keys(), 1u);  // only a's lock
  // b's abort (the coordinator aborts after a no vote) releases nothing of
  // a's and is safe with no staged state.
  EXPECT_EQ(sm.txn_abort(b), 1u);
  EXPECT_EQ(sm.locked_keys(), 1u);
  sm.txn_commit(a);
  EXPECT_EQ(sm.read(5), 50u);
  // The key is free again: b's retry can lock it.
  EXPECT_EQ(sm.txn_prepare(make_txn(9, 3, Op::kTxnPrepare, b, 5, 51)), 1u);
}

TEST(MapStateMachine, AbortDiscardsStagedWritesAndReleasesLocks) {
  MapStateMachine sm;
  sm.apply(make(1, 1, Op::kWrite, 7, 70));
  const TxnId t = make_txn_id(2, 1);
  EXPECT_EQ(sm.txn_prepare(make_txn(2, 1, Op::kTxnPrepare, t, 7, 71)), 1u);
  EXPECT_EQ(sm.txn_abort(t), 1u);
  EXPECT_EQ(sm.read(7), 70u);  // old value intact
  EXPECT_EQ(sm.locked_keys(), 0u);
  EXPECT_FALSE(sm.has_txn_state(t));
}

TEST(MapStateMachine, DecideRecordsTheOutcomeUntilTheFinalPrunesIt) {
  MapStateMachine sm;
  const TxnId t = make_txn_id(3, 1);
  EXPECT_EQ(sm.decision(t), -1);
  EXPECT_EQ(sm.txn_decide(t, true), 1u);
  EXPECT_EQ(sm.decision(t), 1);
  EXPECT_EQ(sm.txn_decide(make_txn_id(3, 2), false), 0u);
  EXPECT_EQ(sm.decision(make_txn_id(3, 2)), 0);
  // The final command prunes the record: decisions_ is bounded by LIVE
  // transactions, not by service lifetime.
  sm.txn_commit(t);
  EXPECT_EQ(sm.decision(t), -1);
  sm.txn_abort(make_txn_id(3, 2));
  EXPECT_EQ(sm.decision(make_txn_id(3, 2)), -1);
}

TEST(MapStateMachine, PlainWritesIgnoreTxnLocks) {
  // Locks isolate transactions from each other; single-key commands are
  // linearized by the log independently (documented semantics).
  MapStateMachine sm;
  const TxnId t = make_txn_id(4, 1);
  sm.txn_prepare(make_txn(4, 1, Op::kTxnPrepare, t, 9, 90));
  EXPECT_EQ(sm.apply(make(1, 1, Op::kWrite, 9, 91)), 0u);
  EXPECT_EQ(sm.read(9), 91u);
  sm.txn_commit(t);
  EXPECT_EQ(sm.read(9), 90u);  // staged write applied at commit
}

TEST(Executor, RoutesTxnOpsToHooksWithDedup) {
  MapStateMachine sm;
  Executor ex(&sm);
  const TxnId t = make_txn_id(5, 1);
  const Command prep = make_txn(5, 1, Op::kTxnPrepare, t, 3, 30);
  EXPECT_EQ(ex.apply(prep).result, 1u);  // vote yes
  // A duplicate prepare (client retry straddling a leader change) must not
  // re-stage; the cached vote answers.
  const auto dup = ex.apply(prep);
  EXPECT_TRUE(dup.duplicate);
  EXPECT_EQ(dup.result, 1u);
  EXPECT_EQ(ex.apply(make_txn(5, 2, Op::kTxnDecide, t, 0, 1)).result, 1u);
  EXPECT_EQ(ex.apply(make_txn(5, 3, Op::kTxnCommit, t, 0, 0)).result, 1u);
  EXPECT_EQ(sm.read(3), 30u);
  // A stale duplicate of the prepare arriving after the commit is filtered
  // by seq and cannot re-lock.
  EXPECT_TRUE(ex.apply(prep).duplicate);
  EXPECT_EQ(sm.locked_keys(), 0u);
}

TEST(StateMachine, DefaultHooksVoteYesAndDoNothing) {
  NullStateMachine sm;
  const TxnId t = make_txn_id(6, 1);
  EXPECT_EQ(sm.execute(make_txn(6, 1, Op::kTxnPrepare, t, 1, 2)), 1u);
  EXPECT_EQ(sm.execute(make_txn(6, 2, Op::kTxnDecide, t, 0, 1)), 1u);
  EXPECT_EQ(sm.execute(make_txn(6, 3, Op::kTxnCommit, t, 0, 0)), 1u);
  EXPECT_EQ(sm.execute(make_txn(6, 4, Op::kTxnAbort, t, 0, 0)), 1u);
}

TEST(TxnIds, PackSessionAndCounterNonZero) {
  EXPECT_EQ(make_txn_id(0, 1), 1u);
  EXPECT_NE(make_txn_id(3, 1), make_txn_id(4, 1));
  EXPECT_NE(make_txn_id(3, 1), make_txn_id(3, 2));
  EXPECT_NE(make_txn_id(0, 1), kNoTxn);
}

}  // namespace
}  // namespace ci::consensus
