// The 2PC contention path (§2.2's rollback): two coordinators fighting over
// the same instances must trigger prepare-nacks and rollbacks, and locks
// must be released so progress can resume.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/two_pc.hpp"
#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

// Builds replicas where node `believed[i]` is what replica i THINKS the
// coordinator is — letting tests create dueling coordinators, a
// misconfiguration 2PC itself cannot resolve (it has no ballots).
struct DuelHarness {
  explicit DuelHarness(const std::vector<NodeId>& believed) {
    for (NodeId r = 0; r < static_cast<NodeId>(believed.size()); ++r) {
      TwoPcConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = static_cast<std::int32_t>(believed.size());
      cfg.coordinator = believed[static_cast<std::size_t>(r)];
      engines.push_back(std::make_unique<TwoPcEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  TwoPcEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  FakeNet net;
  std::vector<std::unique_ptr<TwoPcEngine>> engines;
};

TEST(TwoPcRollback, ConflictingPrepareIsNacked) {
  // Both node 0 and node 1 believe they coordinate. Node 0 locks instance 0
  // at node 2 first; node 1's conflicting prepare must be nacked.
  DuelHarness h({0, 1, 0});
  h.net.inject(test::client_request(5, 0, 1, Op::kWrite, 1, 10));
  h.net.inject(test::client_request(6, 1, 1, Op::kWrite, 2, 20));
  // Deliver node 0's full round first: it wins instance 0 everywhere.
  // Then node 1's prepare for ITS instance 0 hits locked/learned state.
  bool saw_nack_or_commit_ack = false;
  int steps = 0;
  while (h.net.step() && ++steps < 1000) {
    for (std::size_t i = 0; i < h.net.pending(); ++i) {
      if (h.net.peek(i).type == MsgType::kTwoPcPrepareNack) saw_nack_or_commit_ack = true;
    }
  }
  // Depending on interleaving the conflict shows as a nack or as a
  // duplicate-commit ack; either way the logs must not diverge.
  for (Instance in = 0; in < 2; ++in) {
    const Command* a = h.at(0).log().get(in);
    const Command* c = h.at(2).log().get(in);
    if (a != nullptr && c != nullptr) {
      EXPECT_TRUE(*a == *c) << "divergence at " << in;
    }
  }
  (void)saw_nack_or_commit_ack;
}

TEST(TwoPcRollback, RollbackReleasesLock) {
  DuelHarness h({0, 0, 0});
  // Manually lock instance 5 at participant 1 via a prepare from node 0.
  Message prep(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  prep.u.two_pc_prepare.instance = 5;
  prep.u.two_pc_prepare.cmd.client = 9;
  prep.u.two_pc_prepare.cmd.seq = 1;
  h.net.inject(prep);
  ASSERT_TRUE(h.net.step());
  EXPECT_TRUE(h.at(1).has_prepared_uncommitted());
  // Roll it back.
  Message rb(MsgType::kTwoPcRollback, ProtoId::kTwoPc, 0, 1);
  rb.u.two_pc_ack.instance = 5;
  h.net.inject(rb);
  h.net.run();
  EXPECT_FALSE(h.at(1).has_prepared_uncommitted());
}

TEST(TwoPcRollback, ConflictingCommandOnLockedInstanceNacked) {
  DuelHarness h({0, 0, 0});
  Message prep(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  prep.u.two_pc_prepare.instance = 7;
  prep.u.two_pc_prepare.cmd.client = 9;
  prep.u.two_pc_prepare.cmd.seq = 1;
  h.net.inject(prep);
  ASSERT_TRUE(h.net.step());
  h.net.run();  // ack flows back (dropped at absent coordinator logic is fine)
  // A DIFFERENT command for the same instance from another would-be
  // coordinator: must be nacked, lock held for the original.
  Message rival(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 2, 1);
  rival.u.two_pc_prepare.instance = 7;
  rival.u.two_pc_prepare.cmd.client = 8;
  rival.u.two_pc_prepare.cmd.seq = 1;
  h.net.inject(rival);
  ASSERT_TRUE(h.net.step());
  ASSERT_GE(h.net.pending(), 1u);
  EXPECT_EQ(h.net.peek(h.net.pending() - 1).type, MsgType::kTwoPcPrepareNack);
  EXPECT_TRUE(h.at(1).has_prepared_uncommitted());
}

TEST(TwoPcRollback, DuplicateSamePrepareReAcked) {
  DuelHarness h({0, 0, 0});
  Message prep(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  prep.u.two_pc_prepare.instance = 3;
  prep.u.two_pc_prepare.cmd.client = 9;
  prep.u.two_pc_prepare.cmd.seq = 2;
  h.net.inject(prep);
  ASSERT_TRUE(h.net.step());
  const std::size_t after_first = h.net.pending();
  ASSERT_GE(after_first, 1u);
  EXPECT_EQ(h.net.peek(after_first - 1).type, MsgType::kTwoPcPrepareAck);
  // The identical prepare again (coordinator retransmission).
  h.net.inject(prep);
  // Drain the first ack, deliver the duplicate.
  h.net.run();
  // No crash, still locked exactly once.
  EXPECT_TRUE(h.at(1).has_prepared_uncommitted());
}

}  // namespace
}  // namespace ci::consensus
