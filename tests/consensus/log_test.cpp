#include "consensus/log.hpp"

#include <gtest/gtest.h>

namespace ci::consensus {
namespace {

Command cmd(NodeId client, std::uint32_t seq) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kWrite;
  return c;
}

TEST(ReplicatedLog, StartsEmpty) {
  ReplicatedLog log;
  EXPECT_EQ(log.first_gap(), 0);
  EXPECT_EQ(log.end(), 0);
  EXPECT_FALSE(log.is_learned(0));
  EXPECT_EQ(log.get(0), nullptr);
}

TEST(ReplicatedLog, LearnAdvancesContiguousPrefix) {
  ReplicatedLog log;
  log.learn(0, cmd(1, 1));
  EXPECT_EQ(log.first_gap(), 1);
  log.learn(1, cmd(1, 2));
  EXPECT_EQ(log.first_gap(), 2);
}

TEST(ReplicatedLog, GapHoldsPrefix) {
  ReplicatedLog log;
  log.learn(0, cmd(1, 1));
  log.learn(2, cmd(1, 3));  // gap at 1
  EXPECT_EQ(log.first_gap(), 1);
  EXPECT_EQ(log.end(), 3);
  log.learn(1, cmd(1, 2));  // fill the gap
  EXPECT_EQ(log.first_gap(), 3);
}

TEST(ReplicatedLog, DuplicateLearnSameValueIsIdempotent) {
  ReplicatedLog log;
  log.learn(0, cmd(1, 1));
  log.learn(0, cmd(1, 1));
  EXPECT_EQ(log.first_gap(), 1);
}

TEST(ReplicatedLogDeath, DuplicateLearnDifferentValueAborts) {
  // The consistency property is a hard runtime invariant.
  ReplicatedLog log;
  log.learn(0, cmd(1, 1));
  EXPECT_DEATH(log.learn(0, cmd(2, 9)), "two different values");
}

TEST(ReplicatedLog, DrainExecutesInOrderOnce) {
  ReplicatedLog log;
  log.learn(1, cmd(1, 2));
  std::vector<Instance> seen;
  log.drain([&](Instance in, const Command&) { seen.push_back(in); });
  EXPECT_TRUE(seen.empty());  // gap at 0 blocks execution
  log.learn(0, cmd(1, 1));
  log.drain([&](Instance in, const Command&) { seen.push_back(in); });
  EXPECT_EQ(seen, (std::vector<Instance>{0, 1}));
  log.drain([&](Instance in, const Command&) { seen.push_back(in); });
  EXPECT_EQ(seen.size(), 2u);  // nothing re-executes
  EXPECT_EQ(log.executed_prefix(), 2);
}

TEST(ReplicatedLog, LargeSparseInstances) {
  ReplicatedLog log;
  log.learn(999, cmd(1, 1));
  EXPECT_EQ(log.end(), 1000);
  EXPECT_EQ(log.first_gap(), 0);
  EXPECT_TRUE(log.is_learned(999));
  EXPECT_FALSE(log.is_learned(500));
}

}  // namespace
}  // namespace ci::consensus
