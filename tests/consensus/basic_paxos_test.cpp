// Hand-stepped Basic-Paxos: two-phase flow per §2.3, contention between
// proposers, nack/backoff, and decided-value catch-up.
#include "consensus/basic_paxos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

struct BpHarness {
  explicit BpHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      EngineConfig cfg;
      cfg.self = r;
      cfg.num_replicas = replicas;
      cfg.seed = 5;
      engines.push_back(std::make_unique<BasicPaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  BasicPaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void settle(int rounds = 10) {
    for (int i = 0; i < rounds; ++i) {
      net.advance(1 * kMillisecond);
      net.run();
    }
  }

  FakeNet net;
  std::vector<std::unique_ptr<BasicPaxosEngine>> engines;
};

TEST(BasicPaxos, RunsBothPhasesForEveryCommand) {
  BpHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  ASSERT_TRUE(h.net.step());
  // Phase 1 to all three replicas (collapsed roles include self).
  int phase1 = 0;
  for (std::size_t i = 0; i < h.net.pending(); ++i) {
    if (h.net.peek(i).type == MsgType::kPhase1Req) phase1++;
  }
  EXPECT_EQ(phase1, 3);
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(1).log().is_learned(0));
  EXPECT_TRUE(h.at(2).log().is_learned(0));
}

TEST(BasicPaxos, AnyReplicaCanPropose) {
  BpHarness h;
  h.net.inject(test::client_request(3, 2, 1));  // to replica 2
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_EQ(h.at(0).log().get(0)->client, 3);
}

TEST(BasicPaxos, MajorityIsEnough) {
  BpHarness h;
  h.net.isolate(2);
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(1).log().is_learned(0));
}

TEST(BasicPaxos, ContendingProposersConverge) {
  BpHarness h;
  // Two replicas advocate different commands concurrently; both must end up
  // in the log (at different instances), never clobbering each other.
  h.net.inject(test::client_request(3, 0, 1));
  h.net.inject(test::client_request(4, 1, 1));
  h.settle(20);
  ASSERT_TRUE(h.at(2).log().is_learned(0));
  ASSERT_TRUE(h.at(2).log().is_learned(1));
  const Command* a = h.at(2).log().get(0);
  const Command* b = h.at(2).log().get(1);
  EXPECT_NE(a->client, b->client);
  EXPECT_TRUE((a->client == 3 && b->client == 4) || (a->client == 4 && b->client == 3));
  // All replicas agree.
  for (NodeId r = 0; r < 3; ++r) {
    EXPECT_TRUE(*h.at(r).log().get(0) == *a);
    EXPECT_TRUE(*h.at(r).log().get(1) == *b);
  }
}

TEST(BasicPaxos, TimeoutRestartsWithHigherBallot) {
  BpHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();
  // Lose the entire phase-1 volley.
  h.net.drop_if([](const Message&) { return true; });
  EXPECT_FALSE(h.at(0).log().is_learned(0));
  h.settle(10);
  EXPECT_TRUE(h.at(0).log().is_learned(0));
}

TEST(BasicPaxos, ManyCommandsFromManyClients) {
  BpHarness h;
  for (NodeId c = 10; c < 14; ++c) {
    for (std::uint32_t s = 1; s <= 5; ++s) {
      h.net.inject(test::client_request(c, c % 3, s));
    }
  }
  h.settle(30);
  // 20 commands decided across the three replicas, identically.
  EXPECT_GE(h.at(0).log().first_gap(), 20);
  for (Instance in = 0; in < h.at(0).log().first_gap(); ++in) {
    ASSERT_TRUE(h.at(1).log().is_learned(in));
    EXPECT_TRUE(*h.at(0).log().get(in) == *h.at(1).log().get(in));
  }
}

}  // namespace
}  // namespace ci::consensus
