// Client engine semantics: closed loop, think time, re-targeting with the
// suspect flag, local-read hook, and stop/start control.
#include "consensus/client.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

// A trivial always-commit replica for driving the client.
class EchoReplica final : public Engine {
 public:
  void on_message(Context& ctx, const Message& m) override {
    if (m.type != MsgType::kClientRequest) return;
    requests++;
    if (requests == 1) first_flags = m.flags;
    last_flags = m.flags;
    if (mute) return;
    Message reply(MsgType::kClientReply, ProtoId::kClient, ctx.self(),
                  m.u.client_request.cmd.client);
    reply.u.client_reply.seq = m.u.client_request.cmd.seq;
    reply.u.client_reply.ok = 1;
    reply.u.client_reply.leader_hint = ctx.self();
    ctx.send(m.u.client_request.cmd.client, reply);
  }

  int requests = 0;
  std::uint16_t first_flags = 0;
  std::uint16_t last_flags = 0;
  bool mute = false;
};

struct ClientHarness {
  explicit ClientHarness(std::uint64_t total = 5, Nanos think = 0, double reads = 0,
                         std::function<bool(const Command&, std::uint64_t*)> local = nullptr) {
    for (int r = 0; r < 3; ++r) {
      replicas.push_back(std::make_unique<EchoReplica>());
      net.add(replicas.back().get());
    }
    ClientConfig cfg;
    cfg.base.self = 3;
    cfg.base.num_replicas = 3;
    cfg.base.seed = 17;
    cfg.initial_target = 0;
    cfg.total_requests = total;
    cfg.think_time = think;
    cfg.read_fraction = reads;
    cfg.request_timeout = 1 * kMillisecond;
    cfg.auto_start = false;
    cfg.local_read = std::move(local);
    client = std::make_unique<ClientEngine>(cfg);
    net.add(client.get());
    net.start_all();
  }

  void start_client() {
    Message m(MsgType::kStart, ProtoId::kControl, -1, 3);
    net.inject(m);
    net.step();
    net.tick_all();
  }

  FakeNet net;
  std::vector<std::unique_ptr<EchoReplica>> replicas;
  std::unique_ptr<ClientEngine> client;
};

TEST(Client, WaitsForStartMessage) {
  ClientHarness h;
  h.net.tick_all();
  EXPECT_EQ(h.client->issued(), 0u);  // §7.1: released by the load manager
  h.start_client();
  EXPECT_EQ(h.client->issued(), 1u);
}

TEST(Client, ClosedLoopOneOutstanding) {
  ClientHarness h;
  h.start_client();
  EXPECT_EQ(h.client->issued(), 1u);
  h.net.tick_all();
  h.net.tick_all();
  EXPECT_EQ(h.client->issued(), 1u);  // nothing new until the reply arrives
  // Step the request to the replica: the reply is queued but undelivered,
  // so still exactly one request is outstanding.
  ASSERT_TRUE(h.net.step());
  EXPECT_EQ(h.client->issued(), 1u);
  // Delivering the reply chains the next request immediately (true closed
  // loop: no timer tick needed between reply and next request).
  ASSERT_TRUE(h.net.step());
  EXPECT_EQ(h.client->issued(), 2u);
  EXPECT_EQ(h.client->committed(), 1u);
}

TEST(Client, CompletesQuotaThenStops) {
  ClientHarness h(/*total=*/5);
  h.start_client();
  for (int i = 0; i < 50 && !h.client->done(); ++i) {
    h.net.run();
    h.net.tick_all();
  }
  EXPECT_TRUE(h.client->done());
  EXPECT_EQ(h.client->committed(), 5u);
  EXPECT_EQ(h.client->issued(), 5u);
  EXPECT_EQ(h.client->latency().count(), 5u);
}

TEST(Client, RetargetsWithSuspectFlagOnTimeout) {
  ClientHarness h;
  h.replicas[0]->mute = true;  // leader swallows requests
  h.start_client();
  EXPECT_EQ(h.replicas[0]->requests, 0);
  h.net.run();
  EXPECT_EQ(h.replicas[0]->requests, 1);
  // Before the timeout: no retry.
  h.net.tick_all();
  h.net.run();
  EXPECT_EQ(h.replicas[1]->requests, 0);
  // After the timeout: resend to the next replica with the suspect flag
  // (later chained requests are ordinary, so check the FIRST one).
  h.net.advance(2 * kMillisecond);
  h.net.run();
  EXPECT_GE(h.replicas[1]->requests, 1);
  EXPECT_EQ(h.replicas[1]->first_flags, kFlagLeaderSuspect);
  EXPECT_EQ(h.client->retries(), 1u);
}

TEST(Client, FollowsLeaderHintFromReply) {
  ClientHarness h(/*total=*/3);
  h.replicas[0]->mute = true;
  h.start_client();
  h.net.advance(2 * kMillisecond);  // timeout -> replica 1 answers
  h.net.run();
  h.net.tick_all();
  h.net.run();
  // Subsequent requests go straight to replica 1 (the hint).
  EXPECT_GE(h.replicas[1]->requests, 2);
  EXPECT_EQ(h.client->believed_leader(), 1);
}

TEST(Client, ThinkTimeDelaysNextRequest) {
  ClientHarness h(/*total=*/3, /*think=*/2 * kMillisecond);
  h.start_client();
  h.net.run();        // reply to request 1
  h.net.tick_all();   // no think time elapsed yet
  EXPECT_EQ(h.client->issued(), 1u);
  h.net.advance(3 * kMillisecond);
  EXPECT_EQ(h.client->issued(), 2u);
}

TEST(Client, LocalReadHookShortCircuits) {
  int local_calls = 0;
  ClientHarness h(/*total=*/10, 0, /*reads=*/1.0,
                  [&](const Command& cmd, std::uint64_t* out) {
                    local_calls++;
                    EXPECT_EQ(cmd.op, Op::kRead);
                    *out = 42;
                    return true;
                  });
  h.start_client();
  for (int i = 0; i < 30 && !h.client->done(); ++i) {
    h.net.run();
    h.net.tick_all();
  }
  EXPECT_TRUE(h.client->done());
  EXPECT_EQ(h.client->local_reads(), 10u);
  EXPECT_EQ(local_calls, 10);
  EXPECT_EQ(h.replicas[0]->requests, 0);  // nothing touched the network
}

TEST(Client, LocalReadFallsBackWhenLocked) {
  ClientHarness h(/*total=*/4, 0, /*reads=*/1.0,
                  [](const Command&, std::uint64_t*) { return false; });  // always locked
  h.start_client();
  for (int i = 0; i < 30 && !h.client->done(); ++i) {
    h.net.run();
    h.net.tick_all();
  }
  EXPECT_TRUE(h.client->done());
  EXPECT_EQ(h.client->local_reads(), 0u);
  EXPECT_GE(h.replicas[0]->requests, 4);  // all went through the protocol
}

TEST(Client, StopHaltsIssuing) {
  ClientHarness h(/*total=*/0);  // unbounded
  h.start_client();
  h.net.run();
  h.net.tick_all();
  const auto before = h.client->issued();
  Message stop(MsgType::kStop, ProtoId::kControl, -1, 3);
  h.net.inject(stop);
  h.net.run();
  h.net.advance(5 * kMillisecond);
  h.net.run();
  EXPECT_EQ(h.client->issued(), before);
}

TEST(Client, StaleRepliesIgnored) {
  ClientHarness h(/*total=*/3);
  h.start_client();
  // Forge a reply for a sequence number the client is not waiting on.
  Message stale(MsgType::kClientReply, ProtoId::kClient, 0, 3);
  stale.u.client_reply.seq = 999;
  h.net.inject(stale);
  h.net.step();
  EXPECT_EQ(h.client->committed(), 0u);
}

}  // namespace
}  // namespace ci::consensus
