// BatchPolicy / Batcher unit tests: the flush-timer edges the batching
// layer's correctness rests on — empty flush, byte-budget overflow, the
// single-oversized-command rule, group-commit accumulation, and the
// bit-identical unbatched degenerate case.
#include "consensus/batch.hpp"

#include <gtest/gtest.h>

namespace ci::consensus {
namespace {

Command cmd(std::uint32_t seq) {
  Command c;
  c.client = 9;
  c.seq = seq;
  c.op = Op::kWrite;
  c.key = seq;
  return c;
}

TEST(BatchPolicy, DefaultIsUnbatched) {
  const BatchPolicy p;
  EXPECT_FALSE(p.batching());
  EXPECT_EQ(p.commands_cap(), 1);
}

TEST(BatchPolicy, CapRespectsCompileTimeCeiling) {
  BatchPolicy p;
  p.max_commands = kMaxCommandsPerBatch * 10;
  EXPECT_EQ(p.commands_cap(), kMaxCommandsPerBatch);
}

TEST(BatchPolicy, MaxBytesShrinksTheCap) {
  BatchPolicy p;
  p.max_commands = 8;
  p.max_bytes = 3 * static_cast<std::int32_t>(sizeof(Command));
  EXPECT_EQ(p.commands_cap(), 3);  // byte budget binds before max_commands
}

TEST(BatchPolicy, SingleOversizedCommandStillTravels) {
  // Commands are indivisible: a byte budget below one command must not
  // wedge the pipeline — the command goes alone.
  BatchPolicy p;
  p.max_commands = 8;
  p.max_bytes = static_cast<std::int32_t>(sizeof(Command)) / 2;
  EXPECT_EQ(p.commands_cap(), 1);
}

TEST(Batcher, EmptyNeverReadyAndTakeYieldsNothing) {
  Batcher b(BatchPolicy{});
  EXPECT_FALSE(b.ready(/*now=*/123, /*outstanding=*/0));
  EXPECT_TRUE(b.take().empty());  // empty flush: no phantom batch
  EXPECT_TRUE(b.drain().empty());
}

TEST(Batcher, UnbatchedPolicyFlushesEveryCommandAlone) {
  Batcher b(BatchPolicy{});
  b.push(cmd(1), 0);
  b.push(cmd(2), 0);
  // Legacy regime: ready regardless of in-flight instances...
  EXPECT_TRUE(b.ready(0, /*outstanding=*/5));
  // ...and one command per take.
  EXPECT_EQ(b.take().size(), 1u);
  EXPECT_EQ(b.take().size(), 1u);
  EXPECT_TRUE(b.empty());
}

TEST(Batcher, FullBatchIsAlwaysReady) {
  BatchPolicy p;
  p.max_commands = 4;
  Batcher b(p);
  for (std::uint32_t s = 1; s <= 4; ++s) b.push(cmd(s), 0);
  EXPECT_TRUE(b.ready(0, /*outstanding=*/7));  // full beats a busy pipeline
  const Batch out = b.take();
  ASSERT_EQ(out.size(), 4u);
  for (std::uint32_t s = 1; s <= 4; ++s) EXPECT_EQ(out[s - 1].seq, s);  // FIFO
}

TEST(Batcher, PartialBatchWaitsWhileInstancesAreInFlight) {
  // Group commit: in-flight decides — not timers — flush the backlog.
  BatchPolicy p;
  p.max_commands = 8;
  Batcher b(p);
  b.push(cmd(1), 0);
  b.push(cmd(2), 0);
  EXPECT_FALSE(b.ready(1 * kSecond, /*outstanding=*/1));
  EXPECT_TRUE(b.ready(1 * kSecond, /*outstanding=*/0));
  EXPECT_EQ(b.take().size(), 2u);
}

TEST(Batcher, IdleFlushHonorsFlushAfter) {
  BatchPolicy p;
  p.max_commands = 8;
  p.flush_after = 100 * kMicrosecond;
  Batcher b(p);
  b.push(cmd(1), /*now=*/1000);
  // Idle pipeline, but the lone command has not waited long enough.
  EXPECT_FALSE(b.ready(1000, 0));
  EXPECT_FALSE(b.ready(1000 + 99 * kMicrosecond, 0));
  EXPECT_TRUE(b.ready(1000 + 100 * kMicrosecond, 0));
}

TEST(Batcher, TakeIsCappedAndKeepsTheRemainder) {
  BatchPolicy p;
  p.max_commands = 3;
  Batcher b(p);
  for (std::uint32_t s = 1; s <= 7; ++s) b.push(cmd(s), 0);
  EXPECT_EQ(b.take().size(), 3u);
  EXPECT_EQ(b.take().size(), 3u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(Batcher, PushFrontIsOverdueAndOrderedFirst) {
  BatchPolicy p;
  p.max_commands = 4;
  p.flush_after = 1 * kSecond;
  Batcher b(p);
  b.push(cmd(2), /*now=*/0);
  b.push_front(cmd(1));  // a race loser re-queued
  EXPECT_TRUE(b.ready(/*now=*/0, /*outstanding=*/0));  // overdue despite flush_after
  const Batch out = b.take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
}

TEST(Batcher, DrainPreservesFifoOrder) {
  BatchPolicy p;
  p.max_commands = 4;
  Batcher b(p);
  for (std::uint32_t s = 1; s <= 5; ++s) b.push(cmd(s), 0);
  const std::vector<Command> all = b.drain();
  ASSERT_EQ(all.size(), 5u);
  for (std::uint32_t s = 1; s <= 5; ++s) EXPECT_EQ(all[s - 1].seq, s);
  EXPECT_TRUE(b.empty());
}

TEST(Batcher, AdaptiveFlushesLoneCommandWithNoGapEstimate) {
  // First-ever arrival: no inter-arrival estimate exists, so holding would
  // be a pure latency tax — the command proposes immediately.
  BatchPolicy p;
  p.max_commands = 8;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  p.flush_after = 100 * kMicrosecond;
  Batcher b(p);
  b.push(cmd(1), /*now=*/1000);
  EXPECT_EQ(b.ewma_gap(), 0);
  EXPECT_TRUE(b.ready(1000, /*outstanding=*/0));
}

TEST(Batcher, AdaptiveFlushesImmediatelyWhenArrivalsAreSparse) {
  // Gap estimate beyond the budget: the next arrival will not show up in
  // time, so waiting buys no fill — p99 at low offered load approaches
  // batch=1 latency.
  BatchPolicy p;
  p.max_commands = 8;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  p.flush_after = 100 * kMicrosecond;
  Batcher b(p);
  b.push(cmd(1), /*now=*/0);
  (void)b.take();
  b.push(cmd(2), /*now=*/5 * kMillisecond);  // 5 ms gap >> 100 us budget
  EXPECT_GE(b.ewma_gap(), p.flush_after);
  EXPECT_TRUE(b.ready(5 * kMillisecond, /*outstanding=*/0));
}

TEST(Batcher, AdaptiveHoldsAFewGapsWhenCompanyIsImminent) {
  // Dense arrivals (2 us apart): the hold is kAdaptiveHoldGaps * gap, far
  // below the fixed timer — company is gathered without paying flush_after.
  BatchPolicy p;
  p.max_commands = 64;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  p.flush_after = 100 * kMicrosecond;
  Batcher b(p);
  Nanos now = 0;
  for (std::uint32_t s = 1; s <= 4; ++s) {
    b.push(cmd(s), now);
    now += 2 * kMicrosecond;
  }
  const Nanos gap = b.ewma_gap();
  ASSERT_GT(gap, 0);
  ASSERT_LT(gap, p.flush_after);
  const Nanos hold = BatchPolicy::kAdaptiveHoldGaps * gap;
  // Oldest command enqueued at 0: not ready before the hold elapses...
  EXPECT_FALSE(b.ready(hold - 1, /*outstanding=*/0));
  // ...ready right at it — two orders of magnitude before flush_after.
  EXPECT_TRUE(b.ready(hold, /*outstanding=*/0));
  EXPECT_LT(hold, p.flush_after / 5);
}

TEST(Batcher, AdaptiveHoldIsCappedByTheBudget) {
  // Gap just under the budget: kAdaptiveHoldGaps * gap would exceed it, so
  // the budget caps the hold — adaptive never waits longer than fixed.
  BatchPolicy p;
  p.max_commands = 64;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  p.flush_after = 100 * kMicrosecond;
  Batcher b(p);
  b.push(cmd(1), /*now=*/0);
  (void)b.take();
  b.push(cmd(2), /*now=*/90 * kMicrosecond);  // gap 90 us, x8 = 720 us > budget
  // One stale sample dominates the EWMA here; the estimate sits below the
  // budget, so the hold engages but must clamp to flush_after.
  ASSERT_LT(b.ewma_gap(), p.flush_after);
  const Nanos enq = 90 * kMicrosecond;
  EXPECT_FALSE(b.ready(enq + p.flush_after - 1, /*outstanding=*/0));
  EXPECT_TRUE(b.ready(enq + p.flush_after, /*outstanding=*/0));
}

TEST(Batcher, AdaptiveDefaultBudgetAppliesWhenFlushAfterUnset) {
  BatchPolicy p;
  p.max_commands = 8;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  EXPECT_EQ(p.adaptive_hold_budget(), BatchPolicy::kAdaptiveDefaultHold);
  p.flush_after = 50 * kMicrosecond;
  EXPECT_EQ(p.adaptive_hold_budget(), 50 * kMicrosecond);
}

TEST(Batcher, AdaptiveFullBatchAndBusyPipelineRulesUnchanged) {
  // The adaptive rule only governs the idle-partial case: a full batch is
  // always ready, and a partial one still waits while instances are in
  // flight (group commit).
  BatchPolicy p;
  p.max_commands = 4;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  Batcher b(p);
  Nanos now = 0;
  for (std::uint32_t s = 1; s <= 2; ++s) {
    b.push(cmd(s), now);
    now += 1 * kMicrosecond;
  }
  EXPECT_FALSE(b.ready(now, /*outstanding=*/3));  // partial + busy: hold
  for (std::uint32_t s = 3; s <= 4; ++s) {
    b.push(cmd(s), now);
    now += 1 * kMicrosecond;
  }
  EXPECT_TRUE(b.ready(now, /*outstanding=*/3));  // full beats a busy pipeline
}

TEST(Batcher, AdaptivePushFrontStaysOverdueAndSkipsTheEstimate) {
  BatchPolicy p;
  p.max_commands = 8;
  p.flush_mode = BatchPolicy::FlushMode::kAdaptive;
  p.flush_after = 1 * kSecond;
  Batcher b(p);
  b.push_front(cmd(1));  // a race loser re-queued
  EXPECT_EQ(b.ewma_gap(), 0);  // re-queues are not arrivals
  EXPECT_TRUE(b.ready(/*now=*/0, /*outstanding=*/0));
}

TEST(BatchWire, PackUnpackRoundTrip) {
  Batch in;
  for (std::uint32_t s = 1; s <= 5; ++s) in.push_back(cmd(s));
  Command buf[kMaxCommandsPerBatch];
  const std::int32_t n = pack_batch(in, buf);
  EXPECT_EQ(n, 5);
  EXPECT_EQ(unpack_batch(buf, n), in);
}

}  // namespace
}  // namespace ci::consensus
