// Hand-stepped 2PC semantics: exact message flow of §2.2 (prepare/ack,
// commit/commit-ack), the wait-for-ALL blocking property, lock windows, and
// retransmission.
#include "consensus/two_pc.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

struct TwoPcHarness {
  explicit TwoPcHarness(std::int32_t replicas = 3) {
    for (NodeId r = 0; r < replicas; ++r) {
      TwoPcConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.coordinator = 0;
      engines.push_back(std::make_unique<TwoPcEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  TwoPcEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  FakeNet net;
  std::vector<std::unique_ptr<TwoPcEngine>> engines;
};

TEST(TwoPc, FullRoundMessageFlow) {
  TwoPcHarness h;
  h.net.inject(test::client_request(/*client=*/3, /*dst=*/0, /*seq=*/1));
  // Client request delivered to coordinator -> 2 prepares out.
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 2u);
  EXPECT_EQ(h.net.peek(0).type, MsgType::kTwoPcPrepare);
  EXPECT_EQ(h.net.peek(1).type, MsgType::kTwoPcPrepare);
  // Both participants lock and ack.
  ASSERT_TRUE(h.net.step());
  ASSERT_TRUE(h.net.step());
  EXPECT_TRUE(h.at(1).has_prepared_uncommitted());
  EXPECT_TRUE(h.at(2).has_prepared_uncommitted());
  // Acks reach the coordinator -> commits broadcast.
  ASSERT_TRUE(h.net.step());
  ASSERT_TRUE(h.net.step());
  ASSERT_GE(h.net.pending(), 2u);
  EXPECT_EQ(h.net.peek(0).type, MsgType::kTwoPcCommit);
  // Drain the rest: commit acks + client reply.
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
  EXPECT_FALSE(h.at(1).has_prepared_uncommitted());
  EXPECT_EQ(h.at(0).log().first_gap(), 1);
  EXPECT_EQ(h.at(1).log().first_gap(), 1);
  EXPECT_EQ(h.at(2).log().first_gap(), 1);
}

TEST(TwoPc, ReplyOnlyAfterAllCommitAcks) {
  TwoPcHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  bool saw_reply_before_acks = false;
  // Deliver everything except one commit-ack; no ClientReply may appear.
  while (h.net.pending() > 0) {
    if (h.net.peek(0).type == MsgType::kTwoPcCommitAck && h.net.peek(0).src == 2) {
      // Hold node 2's commit ack: check that no reply exists yet.
      for (std::size_t i = 0; i < h.net.pending(); ++i) {
        if (h.net.peek(i).type == MsgType::kClientReply) saw_reply_before_acks = true;
      }
      break;
    }
    ASSERT_TRUE(h.net.step());
  }
  EXPECT_FALSE(saw_reply_before_acks);
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
}

TEST(TwoPc, BlocksWhileOneParticipantIsolated) {
  TwoPcHarness h;
  h.net.isolate(2);  // participant 2 unresponsive
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  // Coordinator cannot commit: it lacks node 2's ack (blocking, §2.2).
  EXPECT_EQ(h.at(0).committed_rounds(), 0u);
  EXPECT_TRUE(h.at(0).has_prepared_uncommitted());
  // Node 2 heals; coordinator retransmits on its timer and completes.
  h.net.heal(2);
  h.net.advance(1 * kMillisecond);
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
}

TEST(TwoPc, NonCoordinatorForwardsClientRequests) {
  TwoPcHarness h;
  h.net.inject(test::client_request(3, /*dst=*/1, 1));  // wrong replica
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 1u);
  EXPECT_EQ(h.net.peek(0).dst, 0);  // forwarded to the coordinator
  EXPECT_EQ(h.net.peek(0).u.client_request.cmd.client, 3);
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
}

TEST(TwoPc, PipelinesMultipleInstances) {
  TwoPcHarness h;
  for (std::uint32_t s = 1; s <= 5; ++s) h.net.inject(test::client_request(3, 0, s));
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 5u);
  EXPECT_EQ(h.at(1).log().first_gap(), 5);
}

TEST(TwoPc, DuplicatePrepareReAcked) {
  TwoPcHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  // Inject a duplicate prepare for the committed instance 0.
  Message dup(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, 0, 1);
  dup.u.two_pc_prepare.instance = 0;
  h.net.inject(dup);
  ASSERT_TRUE(h.net.step());
  ASSERT_EQ(h.net.pending(), 1u);
  // Already committed: participant answers with a commit ack, not a fresh lock.
  EXPECT_EQ(h.net.peek(0).type, MsgType::kTwoPcCommitAck);
  EXPECT_FALSE(h.at(1).has_prepared_uncommitted());
}

TEST(TwoPc, RetransmitsPreparesAfterTimeout) {
  TwoPcHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  ASSERT_TRUE(h.net.step());                 // prepares queued
  h.net.drop_if([](const Message& m) { return m.type == MsgType::kTwoPcPrepare; });
  EXPECT_EQ(h.net.pending(), 0u);
  h.net.advance(1 * kMillisecond);           // fire the retry timer
  EXPECT_GE(h.net.pending(), 2u);
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
}

TEST(TwoPc, LockWindowVisibleDuringRound) {
  // §7.5: the "gap between the two phases" is exactly when local reads are
  // forbidden — has_prepared_uncommitted() delimits it.
  TwoPcHarness h;
  EXPECT_FALSE(h.at(1).has_prepared_uncommitted());
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // coordinator sends prepares (self-locks too)
  EXPECT_TRUE(h.at(0).has_prepared_uncommitted());
  h.net.run();
  EXPECT_FALSE(h.at(0).has_prepared_uncommitted());
  EXPECT_FALSE(h.at(1).has_prepared_uncommitted());
}

TEST(TwoPc, SingleReplicaDegenerateCommits) {
  TwoPcHarness h(1);
  h.net.inject(test::client_request(1, 0, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).committed_rounds(), 1u);
  EXPECT_EQ(h.at(0).log().first_gap(), 1);
}

TEST(TwoPc, WindowLimitsInFlightRounds) {
  TwoPcHarness h;
  h.net.isolate(2);  // stall everything
  for (std::uint32_t s = 1; s <= 20; ++s) h.net.inject(test::client_request(3, 0, s));
  h.net.run();
  // Only pipeline_window rounds may be in flight at once.
  EXPECT_TRUE(h.at(0).has_prepared_uncommitted());
  EXPECT_EQ(h.at(0).committed_rounds(), 0u);
  h.net.heal(2);
  h.net.advance(1 * kMillisecond);
  h.net.run();
  // More ticks let the remaining rounds start and finish.
  for (int i = 0; i < 5; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  EXPECT_EQ(h.at(0).committed_rounds(), 20u);
}

}  // namespace
}  // namespace ci::consensus
