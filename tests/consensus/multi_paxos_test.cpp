// Hand-stepped Multi-Paxos semantics: stable-leader phase-1 skip, majority
// learning, leader takeover with value recovery, ballot conflicts, and the
// acceptor-set ablation knob.
#include "consensus/multi_paxos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_net.hpp"

namespace ci::consensus {
namespace {

using test::FakeNet;

struct MpHarness {
  explicit MpHarness(std::int32_t replicas = 3, NodeId initial_leader = 0,
                     std::int32_t acceptors = -1) {
    for (NodeId r = 0; r < replicas; ++r) {
      MultiPaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = replicas;
      cfg.base.seed = 7;
      cfg.initial_leader = initial_leader;
      cfg.acceptor_count = acceptors;
      engines.push_back(std::make_unique<MultiPaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  MultiPaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  FakeNet net;
  std::vector<std::unique_ptr<MultiPaxosEngine>> engines;
};

TEST(MultiPaxos, StableLeaderSkipsPhase1) {
  MpHarness h;
  h.net.inject(test::client_request(3, 0, 1));
  ASSERT_TRUE(h.net.step());
  // The established leader goes straight to phase 2 — no Phase1Req on the
  // wire (the Multi-Paxos optimization, §2.3).
  for (std::size_t i = 0; i < h.net.pending(); ++i) {
    EXPECT_NE(h.net.peek(i).type, MsgType::kPhase1Req);
  }
  h.net.run();
  EXPECT_EQ(h.at(0).log().first_gap(), 1);
  EXPECT_EQ(h.at(1).log().first_gap(), 1);
}

TEST(MultiPaxos, LearnsOnMajorityNotAll) {
  MpHarness h;
  h.net.isolate(2);  // one acceptor down; majority = 2 of 3
  h.net.inject(test::client_request(3, 0, 1));
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(1).log().is_learned(0));
  EXPECT_FALSE(h.at(2).log().is_learned(0));  // isolated
}

TEST(MultiPaxos, ClientReplyCarriesLeaderHint) {
  MpHarness h;
  h.net.inject(test::client_request(3, 1, 1));  // sent to a follower
  bool saw_reply = false;
  while (h.net.step()) {
    for (std::size_t i = 0; i < h.net.pending(); ++i) {
      if (h.net.peek(i).type == MsgType::kClientReply) {
        saw_reply = true;
        EXPECT_EQ(h.net.peek(i).u.client_reply.leader_hint, 0);
      }
    }
  }
  EXPECT_TRUE(saw_reply);
}

TEST(MultiPaxos, TakeoverAfterLeaderSilence) {
  MpHarness h;
  h.net.isolate(0);
  // FD timeout passes; a follower should start phase 1.
  for (int i = 0; i < 10; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  EXPECT_TRUE(h.at(1).is_leader() || h.at(2).is_leader());
  // New leader commits commands without node 0.
  const NodeId leader = h.at(1).is_leader() ? 1 : 2;
  h.net.inject(test::client_request(3, leader, 1));
  h.net.run();
  EXPECT_TRUE(h.at(leader).log().is_learned(0) || h.at(leader).log().first_gap() > 0);
}

TEST(MultiPaxos, TakeoverRecoversAcceptedValue) {
  MpHarness h;
  // Leader proposes; acceptors accept; but all Phase2Acked to the LEADER are
  // lost, so nothing is learned at node 0 while acceptors hold the value.
  h.net.inject(test::client_request(3, 0, 1));
  h.net.step();  // leader -> Phase2Req x3 (incl. self)
  // Acceptors process the accept and broadcast; drop every Phase2Acked.
  h.net.run(6);
  h.net.drop_if([](const Message& m) { return m.type == MsgType::kPhase2Acked; });
  h.net.run();
  ASSERT_FALSE(h.at(1).log().is_learned(0));
  // Old leader goes silent; node 1 takes over and must re-propose the
  // accepted value at instance 0 (Paxos phase-1 constraint).
  h.net.isolate(0);
  for (int i = 0; i < 10; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  ASSERT_TRUE(h.at(1).is_leader() || h.at(2).is_leader());
  EXPECT_TRUE(h.at(1).log().is_learned(0));
  EXPECT_EQ(h.at(1).log().get(0)->client, 3);
  EXPECT_EQ(h.at(1).log().get(0)->seq, 1u);
}

TEST(MultiPaxos, OldLeaderStepsDownOnNack) {
  MpHarness h;
  h.net.isolate(0);
  for (int i = 0; i < 10; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  const NodeId new_leader = h.at(1).is_leader() ? 1 : 2;
  ASSERT_TRUE(h.at(new_leader).is_leader());
  // Node 0 heals and tries to propose with its stale ballot.
  h.net.heal(0);
  h.net.inject(test::client_request(4, 0, 1));
  h.net.run();
  h.net.advance(1 * kMillisecond);
  h.net.run();
  EXPECT_FALSE(h.at(0).is_leader());
  EXPECT_EQ(h.at(0).believed_leader(), new_leader);
}

TEST(MultiPaxos, ColdStartElectsSomeLeader) {
  MpHarness h(3, /*initial_leader=*/kNoNode);
  for (int i = 0; i < 20; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  int leaders = 0;
  for (NodeId r = 0; r < 3; ++r) leaders += h.at(r).is_leader() ? 1 : 0;
  EXPECT_EQ(leaders, 1);
}

TEST(MultiPaxos, SingleAcceptorModeStillCommits) {
  // acceptor_count=1 turns Multi-Paxos into a no-backup single-acceptor
  // variant (ablation A2): fewer messages, fragile acceptor.
  MpHarness h(3, 0, /*acceptors=*/1);
  h.net.inject(test::client_request(3, 0, 1));
  const std::uint64_t before = h.net.sent_count(0);
  h.net.run();
  EXPECT_TRUE(h.at(0).log().is_learned(0));
  EXPECT_TRUE(h.at(2).log().is_learned(0));
  // Leader sends only: 1 accept to the single acceptor (node 0 = itself is
  // the acceptor: zero boundary crossings for accept) + reply.
  EXPECT_LE(h.net.sent_count(0) - before, 3u);
}

TEST(MultiPaxos, WindowCapsOutstandingProposals) {
  MpHarness h;
  h.net.isolate(1);
  h.net.isolate(2);  // nothing can be learned
  for (std::uint32_t s = 1; s <= 30; ++s) h.net.inject(test::client_request(3, 0, s));
  h.net.run();
  // At most pipeline_window accepts can be outstanding; the rest queue.
  EXPECT_LT(h.at(0).log().first_gap(), 1);  // nothing learned
  h.net.heal(1);
  h.net.heal(2);
  for (int i = 0; i < 10; ++i) {
    h.net.advance(1 * kMillisecond);
    h.net.run();
  }
  EXPECT_EQ(h.at(0).log().first_gap(), 30);  // everything eventually commits
}

TEST(MultiPaxos, DuplicateClientCommandExecutesOnce) {
  MpHarness h;
  h.net.inject(test::client_request(3, 0, 1, Op::kWrite, /*key=*/9, /*value=*/1));
  h.net.run();
  // The same (client, seq) again — e.g. a client retry that raced a reply.
  h.net.inject(test::client_request(3, 0, 1, Op::kWrite, 9, 1));
  h.net.run();
  // Two instances may exist, but the delivery record shows the duplicate.
  EXPECT_GE(h.net.delivered(0).size(), 1u);
}

}  // namespace
}  // namespace ci::consensus
