#include "qclt/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"

namespace ci::qclt {
namespace {

struct QueueHolder {
  explicit QueueHolder(std::uint32_t slots)
      : mem(static_cast<unsigned char*>(
            ::operator new(SpscQueue::bytes_required(slots), std::align_val_t{kSlotSize}))),
        q(SpscQueue::init(mem, slots)) {}
  ~QueueHolder() { ::operator delete(mem, std::align_val_t{kSlotSize}); }

  unsigned char* mem;
  SpscQueue* q;
};

TEST(Scheduler, RunsSingleTaskToCompletion) {
  Scheduler s;
  bool ran = false;
  s.spawn([&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.live_tasks(), 0u);
}

TEST(Scheduler, YieldInterleavesTasks) {
  Scheduler s;
  std::string trace;
  s.spawn([&] {
    trace += 'a';
    s.yield();
    trace += 'c';
  });
  s.spawn([&] {
    trace += 'b';
    s.yield();
    trace += 'd';
  });
  s.run();
  EXPECT_EQ(trace, "abcd");
}

TEST(Scheduler, ManyTasksAllComplete) {
  Scheduler s;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    s.spawn([&s, &done] {
      for (int k = 0; k < 5; ++k) s.yield();
      done++;
    });
  }
  s.run();
  EXPECT_EQ(done, 200);
}

TEST(Scheduler, SpawnFromInsideTask) {
  Scheduler s;
  int order = 0;
  int child_ran_at = -1;
  s.spawn([&] {
    order++;
    s.spawn([&] { child_ran_at = ++order; });
    order++;
  });
  s.run();
  EXPECT_EQ(child_ran_at, 3);
}

TEST(Scheduler, DeepCallStackInsideTask) {
  // Validates the custom stack switching with real frames on the stack.
  Scheduler s;
  std::function<int(int)> fib = [&](int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); };
  int result = 0;
  s.spawn([&] { result = fib(16); });
  s.run();
  EXPECT_EQ(result, 987);
}

TEST(Scheduler, WaitReadableBlocksUntilMessage) {
  Scheduler s;
  QueueHolder h(7);
  std::string trace;
  s.spawn([&] {
    trace += "r0";
    EXPECT_TRUE(s.wait_readable(h.q));
    int v = 0;
    EXPECT_TRUE(h.q->try_read(&v, sizeof(v)));
    trace += ";got" + std::to_string(v);
  });
  s.spawn([&] {
    trace += ";w0";
    for (int i = 0; i < 3; ++i) s.yield();  // let the reader block first
    const int v = 41;
    EXPECT_TRUE(h.q->try_write(&v, sizeof(v)));
    trace += ";sent";
  });
  s.run();
  EXPECT_EQ(trace, "r0;w0;sent;got41");
}

TEST(Scheduler, WaitWritableBlocksUntilSpace) {
  Scheduler s;
  QueueHolder h(1);
  int v = 1;
  ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));  // fill the queue
  bool writer_done = false;
  s.spawn([&] {
    EXPECT_TRUE(s.wait_writable(h.q));
    const int w = 2;
    EXPECT_TRUE(h.q->try_write(&w, sizeof(w)));
    writer_done = true;
  });
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) s.yield();
    int out = 0;
    EXPECT_TRUE(h.q->try_read(&out, sizeof(out)));  // free a slot
  });
  s.run();
  EXPECT_TRUE(writer_done);
}

TEST(Scheduler, RequestStopWakesBlockedTasks) {
  Scheduler s;
  QueueHolder h(7);
  bool stopped_wait = false;
  s.spawn([&] {
    const bool readable = s.wait_readable(h.q);
    stopped_wait = !readable;
  });
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) s.yield();
    s.request_stop();
  });
  s.run();
  EXPECT_TRUE(stopped_wait);
}

TEST(Scheduler, WaitReadableReturnsImmediatelyWhenDataPresent) {
  Scheduler s;
  QueueHolder h(7);
  const int v = 5;
  ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
  bool ok = false;
  s.spawn([&] { ok = s.wait_readable(h.q); });
  s.run();
  EXPECT_TRUE(ok);
}

TEST(Scheduler, PingPongThroughTwoQueues) {
  // Two tasks exchanging N messages through a pair of 1-slot queues —
  // the propagation-delay experiment skeleton from paper §3.
  Scheduler s;
  QueueHolder ab(1);
  QueueHolder ba(1);
  constexpr int kRounds = 1000;
  int received_by_b = 0;
  int received_by_a = 0;
  s.spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      while (!ab.q->try_write(&i, sizeof(i))) {
        if (!s.wait_writable(ab.q)) return;
      }
      int echo = -1;
      while (!ba.q->try_read(&echo, sizeof(echo))) {
        if (!s.wait_readable(ba.q)) return;
      }
      EXPECT_EQ(echo, i);
      received_by_a++;
    }
  });
  s.spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      int v = -1;
      while (!ab.q->try_read(&v, sizeof(v))) {
        if (!s.wait_readable(ab.q)) return;
      }
      received_by_b++;
      while (!ba.q->try_write(&v, sizeof(v))) {
        if (!s.wait_writable(ba.q)) return;
      }
    }
  });
  s.run();
  EXPECT_EQ(received_by_b, kRounds);
  EXPECT_EQ(received_by_a, kRounds);
}

TEST(Scheduler, ThisThreadIsSetOnlyDuringRun) {
  EXPECT_EQ(Scheduler::this_thread(), nullptr);
  Scheduler s;
  Scheduler* seen = nullptr;
  s.spawn([&] { seen = Scheduler::this_thread(); });
  s.run();
  EXPECT_EQ(seen, &s);
  EXPECT_EQ(Scheduler::this_thread(), nullptr);
}

TEST(Scheduler, TwoSchedulersOnTwoThreads) {
  // One scheduler per core is the deployment model; ensure thread isolation.
  QueueHolder fwd(7);
  QueueHolder bwd(7);
  constexpr int kMsgs = 10000;
  std::thread t1([&] {
    Scheduler s;
    s.spawn([&] {
      for (int i = 0; i < kMsgs; ++i) {
        while (!fwd.q->try_write(&i, sizeof(i))) s.yield();
      }
    });
    s.run();
  });
  std::thread t2([&] {
    Scheduler s;
    int last = -1;
    s.spawn([&] {
      for (int i = 0; i < kMsgs; ++i) {
        int v;
        while (!fwd.q->try_read(&v, sizeof(v))) s.yield();
        last = v;
      }
      while (!bwd.q->try_write(&last, sizeof(last))) s.yield();
    });
    s.run();
  });
  t1.join();
  t2.join();
  int final_value = -1;
  EXPECT_TRUE(bwd.q->try_read(&final_value, sizeof(final_value)));
  EXPECT_EQ(final_value, kMsgs - 1);
}

TEST(Scheduler, StressManyTasksManyYields) {
  Scheduler s;
  std::uint64_t counter = 0;
  for (int i = 0; i < 64; ++i) {
    s.spawn([&s, &counter] {
      for (int k = 0; k < 1000; ++k) {
        counter++;
        s.yield();
      }
    });
  }
  s.run();
  EXPECT_EQ(counter, 64u * 1000u);
}

}  // namespace
}  // namespace ci::qclt
