#include "qclt/net.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "qclt/connection.hpp"

namespace ci::qclt {
namespace {

TEST(Network, DuplexConnectsBothViews) {
  Network net;
  Duplex a = net.duplex(0, 1);
  Duplex b = net.duplex(1, 0);
  // a.out is b.in and vice versa.
  EXPECT_EQ(a.out, b.in);
  EXPECT_EQ(a.in, b.out);
  EXPECT_EQ(a.peer, 1);
  EXPECT_EQ(b.peer, 0);
}

TEST(Network, DuplexIsIdempotent) {
  Network net;
  Duplex a1 = net.duplex(3, 9);
  Duplex a2 = net.duplex(3, 9);
  EXPECT_EQ(a1.out, a2.out);
  EXPECT_EQ(a1.in, a2.in);
}

TEST(Network, SeparateChannelPerPair) {
  // "there are separate channels per pair of cores" (§6).
  Network net;
  Duplex a = net.duplex(0, 1);
  Duplex b = net.duplex(0, 2);
  EXPECT_NE(a.out, b.out);
  EXPECT_NE(a.in, b.in);
}

TEST(Network, MessageFlowsThroughDuplex) {
  Network net;
  Duplex a = net.duplex(0, 1);
  Duplex b = net.duplex(1, 0);
  const int v = 1234;
  ASSERT_TRUE(a.out->try_write(&v, sizeof(v)));
  int out = 0;
  ASSERT_TRUE(b.in->try_read(&out, sizeof(out)));
  EXPECT_EQ(out, 1234);
}

TEST(Network, DialAndAccept) {
  // Replica waits for clients to connect (netlisten style, §6.2).
  Network net;
  Duplex client = net.dial(/*from=*/5, /*to=*/0);
  Duplex server;
  ASSERT_TRUE(net.accept(0, &server));
  EXPECT_EQ(server.peer, 5);
  const int v = 77;
  ASSERT_TRUE(client.out->try_write(&v, sizeof(v)));
  int out = 0;
  ASSERT_TRUE(server.in->try_read(&out, sizeof(out)));
  EXPECT_EQ(out, 77);
}

TEST(Network, AcceptReturnsFalseWhenNoPendingDial) {
  Network net;
  Duplex d;
  EXPECT_FALSE(net.accept(0, &d));
}

TEST(Network, MultipleDialsAcceptedInOrder) {
  Network net;
  net.dial(10, 0);
  net.dial(11, 0);
  net.dial(12, 0);
  Duplex d;
  ASSERT_TRUE(net.accept(0, &d));
  EXPECT_EQ(d.peer, 10);
  ASSERT_TRUE(net.accept(0, &d));
  EXPECT_EQ(d.peer, 11);
  ASSERT_TRUE(net.accept(0, &d));
  EXPECT_EQ(d.peer, 12);
  EXPECT_FALSE(net.accept(0, &d));
}

TEST(Network, ConcurrentSetupFromManyThreads) {
  Network net;
  constexpr int kNodes = 16;
  std::vector<std::thread> threads;
  threads.reserve(kNodes);
  for (int self = 0; self < kNodes; ++self) {
    threads.emplace_back([&net, self] {
      for (int peer = 0; peer < kNodes; ++peer) {
        if (peer != self) net.duplex(self, peer);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every pair must agree on queue identity.
  for (int a = 0; a < kNodes; ++a) {
    for (int b = a + 1; b < kNodes; ++b) {
      Duplex da = net.duplex(a, b);
      Duplex db = net.duplex(b, a);
      EXPECT_EQ(da.out, db.in);
      EXPECT_EQ(da.in, db.out);
    }
  }
}

TEST(Network, SharedMemoryBackedNetwork) {
  Network net(kDefaultSlots, ShmArena::Backing::kSharedMemory);
  Duplex a = net.duplex(0, 1);
  Duplex b = net.duplex(1, 0);
  const int v = 9;
  ASSERT_TRUE(a.out->try_write(&v, sizeof(v)));
  int out = 0;
  ASSERT_TRUE(b.in->try_read(&out, sizeof(out)));
  EXPECT_EQ(out, 9);
}

TEST(Network, FullMeshMessageExchangeAcrossThreads) {
  Network net;
  constexpr int kNodes = 8;
  // Pre-create the mesh, then every node sends its id to every other node.
  std::vector<std::thread> threads;
  std::vector<std::vector<int>> received(kNodes);
  for (int self = 0; self < kNodes; ++self) {
    threads.emplace_back([&net, &received, self] {
      std::vector<Connection> conns;
      conns.reserve(kNodes);
      for (int peer = 0; peer < kNodes; ++peer) {
        if (peer == self) {
          conns.emplace_back(nullptr, nullptr, nullptr);
          continue;
        }
        Duplex d = net.duplex(self, peer);
        conns.emplace_back(d.out, d.in, nullptr);
      }
      for (int peer = 0; peer < kNodes; ++peer) {
        if (peer == self) continue;
        while (!conns[static_cast<std::size_t>(peer)].try_write(&self, sizeof(self))) {
        }
      }
      int pending = kNodes - 1;
      while (pending > 0) {
        for (int peer = 0; peer < kNodes; ++peer) {
          if (peer == self) continue;
          int v;
          if (conns[static_cast<std::size_t>(peer)].try_read(&v, sizeof(v)) ==
              static_cast<std::int32_t>(sizeof(v))) {
            received[static_cast<std::size_t>(self)].push_back(v);
            pending--;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int self = 0; self < kNodes; ++self) {
    EXPECT_EQ(received[static_cast<std::size_t>(self)].size(), static_cast<std::size_t>(kNodes - 1));
  }
}

}  // namespace
}  // namespace ci::qclt
