// The portable ucontext context-switch backend (used on non-x86-64 targets
// and with -DCI_QCLT_FORCE_UCONTEXT=ON) compiled and exercised directly.
// This binary deliberately does NOT link ci_qclt: it compiles the backend
// translation unit itself with the ucontext macro forced on, so both
// backends get coverage regardless of how the library was built.
#define CI_QCLT_UCONTEXT 1

#include "qclt/context.cpp"  // NOLINT(bugprone-suspicious-include)

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ci::qclt {
namespace {

struct PingPong {
  ExecContext main_ctx{};
  ExecContext task_ctx{};
  std::string trace;
  int result = 0;
};

void task_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int i = 0; i < 3; ++i) {
    pp->trace += "t" + std::to_string(i);
    ctx_switch(pp->task_ctx, pp->main_ctx);
  }
  pp->trace += "end";
  ctx_switch(pp->task_ctx, pp->main_ctx);
  // Never resumed again.
}

TEST(UcontextBackend, PingPongSwitches) {
  PingPong pp;
  std::vector<unsigned char> stack(64 * 1024);
  ctx_create(pp.task_ctx, stack.data(), stack.size(), &task_entry, &pp);
  for (int i = 0; i < 4; ++i) {
    pp.trace += "m" + std::to_string(i);
    ctx_switch(pp.main_ctx, pp.task_ctx);
  }
  EXPECT_EQ(pp.trace, "m0t0m1t1m2t2m3end");
}

int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

void deep_recursion_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->result = fib(18);  // consume real stack on the task side
  ctx_switch(pp->task_ctx, pp->main_ctx);
}

TEST(UcontextBackend, DeepStackUsage) {
  PingPong pp;
  std::vector<unsigned char> stack(128 * 1024);
  ctx_create(pp.task_ctx, stack.data(), stack.size(), &deep_recursion_entry, &pp);
  ctx_switch(pp.main_ctx, pp.task_ctx);
  EXPECT_EQ(pp.result, 2584);
}

void arg_check_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->result = 42;  // proves the argument pointer survived the switch
  ctx_switch(pp->task_ctx, pp->main_ctx);
}

TEST(UcontextBackend, ArgumentPointerDelivered) {
  PingPong pp;
  std::vector<unsigned char> stack(64 * 1024);
  ctx_create(pp.task_ctx, stack.data(), stack.size(), &arg_check_entry, &pp);
  ctx_switch(pp.main_ctx, pp.task_ctx);
  EXPECT_EQ(pp.result, 42);
}

}  // namespace
}  // namespace ci::qclt
