#include "qclt/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"

namespace ci::qclt {
namespace {

struct QueueHolder {
  explicit QueueHolder(std::uint32_t slots)
      : mem(static_cast<unsigned char*>(
            ::operator new(SpscQueue::bytes_required(slots), std::align_val_t{kSlotSize}))),
        q(SpscQueue::init(mem, slots)) {}
  ~QueueHolder() { ::operator delete(mem, std::align_val_t{kSlotSize}); }

  unsigned char* mem;
  SpscQueue* q;
};

TEST(SpscQueue, StartsEmpty) {
  QueueHolder h(7);
  EXPECT_TRUE(h.q->empty());
  EXPECT_EQ(h.q->readable_slots(), 0u);
  EXPECT_EQ(h.q->free_slots(), 7u);
  EXPECT_EQ(h.q->try_front(), nullptr);
}

TEST(SpscQueue, WriteThenRead) {
  QueueHolder h(7);
  const char msg[] = "hello";
  ASSERT_TRUE(h.q->try_write(msg, sizeof(msg)));
  char out[kSlotSize];
  ASSERT_TRUE(h.q->try_read(out, sizeof(out)));
  EXPECT_STREQ(out, "hello");
  EXPECT_TRUE(h.q->empty());
}

TEST(SpscQueue, FillsToExactCapacity) {
  QueueHolder h(7);
  int v = 0;
  for (; v < 7; ++v) ASSERT_TRUE(h.q->try_write(&v, sizeof(v))) << v;
  EXPECT_FALSE(h.q->try_write(&v, sizeof(v)));  // full at 7, as in the paper
  EXPECT_EQ(h.q->free_slots(), 0u);
  EXPECT_EQ(h.q->readable_slots(), 7u);
}

TEST(SpscQueue, FifoOrder) {
  QueueHolder h(7);
  for (int v = 0; v < 5; ++v) ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
  for (int v = 0; v < 5; ++v) {
    int out = -1;
    ASSERT_TRUE(h.q->try_read(&out, sizeof(out)));
    EXPECT_EQ(out, v);
  }
}

TEST(SpscQueue, WrapAroundManyTimes) {
  QueueHolder h(3);
  for (int v = 0; v < 1000; ++v) {
    ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
    int out = -1;
    ASSERT_TRUE(h.q->try_read(&out, sizeof(out)));
    EXPECT_EQ(out, v);
  }
}

TEST(SpscQueue, IndexWrapAtUint32Boundary) {
  // The monotonically increasing 32-bit indices must survive overflow.
  // Simulate many operations near the wrap point via a small queue.
  QueueHolder h(2);
  // 2^31 iterations would be too slow; instead rely on arithmetic: the
  // queue logic only uses (tail - head), which is overflow-safe. Exercise a
  // few million wraps as a smoke test.
  int out;
  for (int v = 0; v < 3'000'000; ++v) {
    ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
    ASSERT_TRUE(h.q->try_read(&out, sizeof(out)));
  }
  EXPECT_EQ(out, 2'999'999);
}

TEST(SpscQueue, AcquireCommitZeroCopy) {
  QueueHolder h(7);
  void* slot = h.q->try_acquire_slot();
  ASSERT_NE(slot, nullptr);
  std::memset(slot, 0xAB, kSlotSize);
  // Not yet visible before commit.
  EXPECT_EQ(h.q->try_front(), nullptr);
  h.q->commit_write();
  const void* front = h.q->try_front();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(static_cast<const unsigned char*>(front)[0], 0xAB);
  EXPECT_EQ(static_cast<const unsigned char*>(front)[kSlotSize - 1], 0xAB);
  h.q->release_read();
  EXPECT_TRUE(h.q->empty());
}

TEST(SpscQueue, SingleSlotQueueAlternates) {
  QueueHolder h(1);
  int v = 42;
  ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
  EXPECT_FALSE(h.q->try_write(&v, sizeof(v)));
  int out;
  ASSERT_TRUE(h.q->try_read(&out, sizeof(out)));
  EXPECT_FALSE(h.q->try_read(&out, sizeof(out)));
  ASSERT_TRUE(h.q->try_write(&v, sizeof(v)));
}

// Cross-thread stress: one writer, one reader, sequence integrity.
TEST(SpscQueue, CrossThreadSequenceIntegrity) {
  QueueHolder h(7);
  constexpr std::uint64_t kCount = 2'000'000;
  std::thread writer([&] {
    for (std::uint64_t v = 0; v < kCount;) {
      if (h.q->try_write(&v, sizeof(v))) {
        ++v;
      } else {
        std::this_thread::yield();  // single-core machines: let the reader drain
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out;
    if (h.q->try_read(&out, sizeof(out))) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  writer.join();
  EXPECT_TRUE(h.q->empty());
}

// Cross-thread stress with full-slot payloads to catch torn reads/writes.
TEST(SpscQueue, CrossThreadFullSlotPayloads) {
  QueueHolder h(7);
  constexpr std::uint32_t kCount = 200'000;
  std::thread writer([&] {
    unsigned char buf[kSlotSize];
    for (std::uint32_t v = 0; v < kCount;) {
      std::memset(buf, static_cast<int>(v & 0xff), kSlotSize);
      std::memcpy(buf, &v, sizeof(v));
      if (h.q->try_write(buf, kSlotSize)) {
        ++v;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint32_t expected = 0; expected < kCount;) {
    unsigned char buf[kSlotSize];
    if (!h.q->try_read(buf, kSlotSize)) {
      std::this_thread::yield();
      continue;
    }
    std::uint32_t v;
    std::memcpy(&v, buf, sizeof(v));
    ASSERT_EQ(v, expected);
    for (std::size_t i = sizeof(v); i < kSlotSize; ++i) {
      ASSERT_EQ(buf[i], static_cast<unsigned char>(expected & 0xff)) << "torn slot at byte " << i;
    }
    ++expected;
  }
  writer.join();
}

TEST(SpscQueue, BytesRequiredGrowsWithCapacity) {
  EXPECT_GT(SpscQueue::bytes_required(7), SpscQueue::bytes_required(1));
  EXPECT_GE(SpscQueue::bytes_required(1), sizeof(SpscQueue) + kSlotSize);
}

}  // namespace
}  // namespace ci::qclt
