// Cross-PROCESS transport test: the paper's deployment uses shm_open so
// separate processes share the queues (§6.1). A forked child writes through
// an SPSC queue placed in a shared-memory arena; the parent reads. This
// pins down that the queue layout contains no process-local pointers and
// that the atomics work across address spaces.
#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>

#include "common/cacheline.hpp"
#include "common/time.hpp"
#include "qclt/shm_arena.hpp"
#include "qclt/spsc_queue.hpp"

namespace ci::qclt {
namespace {

TEST(ShmProcess, ChildWritesParentReads) {
  ShmArena arena(1 << 20, ShmArena::Backing::kSharedMemory);
  void* mem = arena.allocate(SpscQueue::bytes_required(7), kSlotSize);
  SpscQueue* q = SpscQueue::init(mem, 7);

  constexpr std::uint64_t kCount = 50'000;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the writer process. Yield when the queue is full so the reader
    // can run on a shared core, and bail out (nonzero) rather than spin
    // forever if the reader died.
    const Nanos child_deadline = now_nanos() + 60 * kSecond;
    for (std::uint64_t v = 0; v < kCount;) {
      if (q->try_write(&v, sizeof(v))) {
        ++v;
      } else {
        sched_yield();
        if (now_nanos() > child_deadline) _exit(3);
      }
    }
    _exit(0);
  }
  // Parent: the reader.
  std::uint64_t expected = 0;
  const Nanos deadline = now_nanos() + 30 * kSecond;
  while (expected < kCount && now_nanos() < deadline) {
    std::uint64_t out;
    if (q->try_read(&out, sizeof(out))) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      sched_yield();
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(expected, kCount);
}

TEST(ShmProcess, BidirectionalPingPongAcrossProcesses) {
  ShmArena arena(1 << 20, ShmArena::Backing::kSharedMemory);
  SpscQueue* fwd = SpscQueue::init(arena.allocate(SpscQueue::bytes_required(1), kSlotSize), 1);
  SpscQueue* bwd = SpscQueue::init(arena.allocate(SpscQueue::bytes_required(1), kSlotSize), 1);

  constexpr int kRounds = 10'000;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child echoes. Yields keep the ping-pong moving when both processes
    // share one core; the deadline keeps a dead parent from leaking a
    // spinning child.
    const Nanos child_deadline = now_nanos() + 60 * kSecond;
    for (int i = 0; i < kRounds;) {
      int v;
      if (!fwd->try_read(&v, sizeof(v))) {
        sched_yield();
        if (now_nanos() > child_deadline) _exit(3);
        continue;
      }
      while (!bwd->try_write(&v, sizeof(v))) sched_yield();
      ++i;
    }
    _exit(0);
  }
  for (int i = 0; i < kRounds; ++i) {
    while (!fwd->try_write(&i, sizeof(i))) sched_yield();
    int echo = -1;
    while (!bwd->try_read(&echo, sizeof(echo))) sched_yield();
    ASSERT_EQ(echo, i);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace ci::qclt
