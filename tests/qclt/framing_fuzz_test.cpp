// Seeded fuzz of the connection framing layer: random message sizes and
// interleavings must round-trip byte-exact through the 128-byte slot
// queues, including messages larger than the whole queue (blocking mode).
#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "qclt/connection.hpp"

namespace ci::qclt {
namespace {

struct QueueHolder {
  explicit QueueHolder(std::uint32_t slots)
      : mem(static_cast<unsigned char*>(
            ::operator new(SpscQueue::bytes_required(slots), std::align_val_t{kSlotSize}))),
        q(SpscQueue::init(mem, slots)) {}
  ~QueueHolder() { ::operator delete(mem, std::align_val_t{kSlotSize}); }
  unsigned char* mem;
  SpscQueue* q;
};

std::vector<unsigned char> random_payload(Rng& rng, std::uint32_t len) {
  std::vector<unsigned char> v(len);
  for (auto& b : v) b = static_cast<unsigned char>(rng.next_u64());
  return v;
}

class FramingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramingFuzz, PollingRoundTripRandomSizes) {
  Rng rng(GetParam());
  QueueHolder fwd(7);
  QueueHolder bwd(7);
  Connection a(fwd.q, bwd.q);
  Connection b(bwd.q, fwd.q);
  for (int i = 0; i < 500; ++i) {
    // try_write is all-or-nothing: cap at queue capacity.
    const auto len = static_cast<std::uint32_t>(rng.next_below(a.max_message_bytes() + 1));
    const auto msg = random_payload(rng, len);
    ASSERT_TRUE(a.try_write(msg.data(), len));
    std::vector<unsigned char> buf(a.max_message_bytes());
    const auto n = b.try_read(buf.data(), buf.size());
    ASSERT_EQ(n, static_cast<std::int32_t>(len));
    buf.resize(len);
    ASSERT_EQ(buf, msg) << "corruption at iteration " << i << " len " << len;
  }
}

TEST_P(FramingFuzz, CrossThreadStreamingRandomSizes) {
  // Writer thread streams random-size messages (including ones larger than
  // the queue) while the reader reassembles; order and bytes must survive.
  Rng rng(GetParam() * 31 + 7);
  constexpr int kMessages = 400;
  std::vector<std::vector<unsigned char>> messages;
  messages.reserve(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    messages.push_back(random_payload(rng, static_cast<std::uint32_t>(rng.next_below(2000))));
  }
  QueueHolder fwd(7);
  QueueHolder bwd(7);
  std::thread writer([&] {
    Scheduler s;
    Connection a(fwd.q, bwd.q, &s);
    s.spawn([&] {
      for (const auto& m : messages) {
        ASSERT_TRUE(a.write(m.data(), static_cast<std::uint32_t>(m.size())));
      }
    });
    s.run();
  });
  Scheduler s;
  Connection b(bwd.q, fwd.q, &s);
  int received = 0;
  s.spawn([&] {
    std::vector<unsigned char> buf(4096);
    for (int i = 0; i < kMessages; ++i) {
      const auto n = b.read(buf.data(), buf.size());
      ASSERT_EQ(n, static_cast<std::int32_t>(messages[static_cast<std::size_t>(i)].size()));
      ASSERT_TRUE(std::equal(buf.begin(), buf.begin() + n,
                             messages[static_cast<std::size_t>(i)].begin()))
          << "corruption in message " << i;
      received++;
    }
  });
  s.run();
  writer.join();
  EXPECT_EQ(received, kMessages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ci::qclt
