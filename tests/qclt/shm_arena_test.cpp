#include "qclt/shm_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/cacheline.hpp"
#include "qclt/spsc_queue.hpp"

namespace ci::qclt {
namespace {

TEST(ShmArena, AnonymousAllocate) {
  ShmArena arena(1 << 20, ShmArena::Backing::kAnonymous);
  void* a = arena.allocate(100, 64);
  void* b = arena.allocate(100, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 1, 100);
  std::memset(b, 2, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 1);
}

TEST(ShmArena, AlignmentHonored) {
  ShmArena arena(1 << 20, ShmArena::Backing::kAnonymous);
  arena.allocate(3, 1);
  void* p = arena.allocate(64, 128);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 128, 0u);
}

TEST(ShmArena, UsedAccounting) {
  ShmArena arena(4096, ShmArena::Backing::kAnonymous);
  EXPECT_EQ(arena.used(), 0u);
  arena.allocate(100, 1);
  EXPECT_EQ(arena.used(), 100u);
  EXPECT_EQ(arena.capacity(), 4096u);
}

TEST(ShmArena, SharedMemoryBackingWorks) {
  ShmArena arena(1 << 20, ShmArena::Backing::kSharedMemory);
  EXPECT_FALSE(arena.shm_name().empty());
  void* p = arena.allocate(4096, 64);
  std::memset(p, 0x5A, 4096);
  EXPECT_EQ(static_cast<unsigned char*>(p)[4095], 0x5A);
}

TEST(ShmArena, QueueInSharedMemory) {
  // The queue layout must work when placed in an shm_open segment — the
  // paper's cross-process deployment.
  ShmArena arena(1 << 20, ShmArena::Backing::kSharedMemory);
  void* mem = arena.allocate(SpscQueue::bytes_required(7), kSlotSize);
  SpscQueue* q = SpscQueue::init(mem, 7);
  int v = 7;
  EXPECT_TRUE(q->try_write(&v, sizeof(v)));
  int out = 0;
  EXPECT_TRUE(q->try_read(&out, sizeof(out)));
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace ci::qclt
