#include "qclt/connection.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/cacheline.hpp"

namespace ci::qclt {
namespace {

struct QueueHolder {
  explicit QueueHolder(std::uint32_t slots)
      : mem(static_cast<unsigned char*>(
            ::operator new(SpscQueue::bytes_required(slots), std::align_val_t{kSlotSize}))),
        q(SpscQueue::init(mem, slots)) {}
  ~QueueHolder() { ::operator delete(mem, std::align_val_t{kSlotSize}); }

  unsigned char* mem;
  SpscQueue* q;
};

struct ConnPair {
  ConnPair(std::uint32_t slots, Scheduler* sa = nullptr, Scheduler* sb = nullptr)
      : ab(slots), ba(slots), a(ab.q, ba.q, sa), b(ba.q, ab.q, sb) {}
  QueueHolder ab;
  QueueHolder ba;
  Connection a;
  Connection b;
};

std::vector<unsigned char> pattern(std::size_t n) {
  std::vector<unsigned char> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<unsigned char>(i * 31 + 7);
  return v;
}

TEST(Connection, SingleSlotMessageRoundTrip) {
  ConnPair c(7);
  const auto msg = pattern(50);
  ASSERT_TRUE(c.a.try_write(msg.data(), static_cast<std::uint32_t>(msg.size())));
  unsigned char buf[256];
  const auto n = c.b.try_read(buf, sizeof(buf));
  ASSERT_EQ(n, 50);
  EXPECT_EQ(std::memcmp(buf, msg.data(), 50), 0);
}

TEST(Connection, EmptyMessage) {
  ConnPair c(7);
  ASSERT_TRUE(c.a.try_write(nullptr, 0));
  unsigned char buf[8];
  EXPECT_EQ(c.b.try_read(buf, sizeof(buf)), 0);
}

TEST(Connection, MaxSingleFragmentSize) {
  ConnPair c(7);
  const auto msg = pattern(wire::kFragPayload);
  ASSERT_TRUE(c.a.try_write(msg.data(), static_cast<std::uint32_t>(msg.size())));
  EXPECT_EQ(c.ab.q->readable_slots(), 1u);  // exactly one slot used
  std::vector<unsigned char> buf(wire::kFragPayload);
  EXPECT_EQ(c.b.try_read(buf.data(), buf.size()),
            static_cast<std::int32_t>(wire::kFragPayload));
  EXPECT_EQ(buf, msg);
}

TEST(Connection, MultiFragmentMessage) {
  ConnPair c(7);
  const auto msg = pattern(wire::kFragPayload * 3 + 17);
  ASSERT_TRUE(c.a.try_write(msg.data(), static_cast<std::uint32_t>(msg.size())));
  EXPECT_EQ(c.ab.q->readable_slots(), 4u);
  std::vector<unsigned char> buf(msg.size());
  EXPECT_EQ(c.b.try_read(buf.data(), buf.size()), static_cast<std::int32_t>(msg.size()));
  EXPECT_EQ(buf, msg);
}

TEST(Connection, TryWriteFailsWhenFull) {
  ConnPair c(2);
  const auto big = pattern(wire::kFragPayload * 2);  // needs both slots
  ASSERT_TRUE(c.a.try_write(big.data(), static_cast<std::uint32_t>(big.size())));
  const auto one = pattern(4);
  EXPECT_FALSE(c.a.try_write(one.data(), 4));  // no space left
  std::vector<unsigned char> buf(big.size());
  EXPECT_EQ(c.b.try_read(buf.data(), buf.size()), static_cast<std::int32_t>(big.size()));
  EXPECT_TRUE(c.a.try_write(one.data(), 4));  // space reclaimed
}

TEST(Connection, TryReadReturnsMinusOneWhenIncomplete) {
  // Reader sees a partial fragment sequence: must buffer, not deliver.
  ConnPair c(7);
  const auto msg = pattern(wire::kFragPayload * 2);
  // Hand-write only the first fragment.
  wire::FragmentHeader hdr{static_cast<std::uint32_t>(msg.size()), 0, 0};
  unsigned char slot[kSlotSize];
  std::memcpy(slot, &hdr, sizeof(hdr));
  std::memcpy(slot + sizeof(hdr), msg.data(), wire::kFragPayload);
  ASSERT_TRUE(c.ab.q->try_write(slot, kSlotSize));
  std::vector<unsigned char> buf(msg.size());
  EXPECT_EQ(c.b.try_read(buf.data(), buf.size()), -1);
  // Now the second fragment arrives.
  hdr.frag_index = 1;
  std::memcpy(slot, &hdr, sizeof(hdr));
  std::memcpy(slot + sizeof(hdr), msg.data() + wire::kFragPayload, wire::kFragPayload);
  ASSERT_TRUE(c.ab.q->try_write(slot, kSlotSize));
  EXPECT_EQ(c.b.try_read(buf.data(), buf.size()), static_cast<std::int32_t>(msg.size()));
  EXPECT_EQ(buf, msg);
}

TEST(Connection, InterleavedSmallMessages) {
  ConnPair c(7);
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t len : {1u, 7u, 64u, 100u}) {
      const auto msg = pattern(len);
      ASSERT_TRUE(c.a.try_write(msg.data(), len));
      std::vector<unsigned char> buf(len);
      ASSERT_EQ(c.b.try_read(buf.data(), buf.size()), static_cast<std::int32_t>(len));
      ASSERT_EQ(buf, msg);
    }
  }
}

TEST(Connection, BlockingWriteStreamsLargeMessageThroughSmallQueue) {
  // A message larger than the queue must stream fragment by fragment while
  // the peer drains — exercising wait_writable.
  Scheduler s;
  ConnPair c(3, &s, &s);
  const auto msg = pattern(wire::kFragPayload * 7 + 5);
  std::vector<unsigned char> got;
  s.spawn([&] {
    std::vector<unsigned char> buf(msg.size());
    const auto n = c.b.read(buf.data(), buf.size());
    ASSERT_EQ(n, static_cast<std::int32_t>(msg.size()));
    got.assign(buf.begin(), buf.begin() + n);
  });
  s.spawn([&] { EXPECT_TRUE(c.a.write(msg.data(), static_cast<std::uint32_t>(msg.size()))); });
  s.run();
  EXPECT_EQ(got, msg);
}

TEST(Connection, BlockingReadWakesOnWrite) {
  Scheduler s;
  ConnPair c(7, &s, &s);
  int got = -1;
  s.spawn([&] {
    int v = 0;
    EXPECT_EQ(c.b.read(&v, sizeof(v)), static_cast<std::int32_t>(sizeof(v)));
    got = v;
  });
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) s.yield();
    const int v = 99;
    EXPECT_TRUE(c.a.write(&v, sizeof(v)));
  });
  s.run();
  EXPECT_EQ(got, 99);
}

TEST(Connection, BlockingReadReturnsMinusOneOnStop) {
  Scheduler s;
  ConnPair c(7, &s, &s);
  std::int32_t result = 0;
  s.spawn([&] {
    unsigned char buf[16];
    result = c.b.read(buf, sizeof(buf));
  });
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) s.yield();
    s.request_stop();
  });
  s.run();
  EXPECT_EQ(result, -1);
}

TEST(Connection, ManyMessagesBothDirections) {
  Scheduler s;
  ConnPair c(7, &s, &s);
  constexpr int kMsgs = 5000;
  int a_received = 0;
  int b_received = 0;
  s.spawn([&] {
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_TRUE(c.a.write(&i, sizeof(i)));
      int v;
      ASSERT_EQ(c.a.read(&v, sizeof(v)), static_cast<std::int32_t>(sizeof(v)));
      ASSERT_EQ(v, i * 2);
      a_received++;
    }
  });
  s.spawn([&] {
    for (int i = 0; i < kMsgs; ++i) {
      int v;
      ASSERT_EQ(c.b.read(&v, sizeof(v)), static_cast<std::int32_t>(sizeof(v)));
      const int reply = v * 2;
      ASSERT_TRUE(c.b.write(&reply, sizeof(reply)));
      b_received++;
    }
  });
  s.run();
  EXPECT_EQ(a_received, kMsgs);
  EXPECT_EQ(b_received, kMsgs);
}

TEST(Connection, MaxMessageBytesMatchesCapacity) {
  ConnPair c(7);
  EXPECT_EQ(c.a.max_message_bytes(), 7 * wire::kFragPayload);
}

TEST(ConnectionWire, FragmentMath) {
  EXPECT_EQ(wire::fragments_for(0), 1u);
  EXPECT_EQ(wire::fragments_for(1), 1u);
  EXPECT_EQ(wire::fragments_for(wire::kFragPayload), 1u);
  EXPECT_EQ(wire::fragments_for(wire::kFragPayload + 1), 2u);
  EXPECT_EQ(wire::fragments_for(3 * wire::kFragPayload), 3u);
}

}  // namespace
}  // namespace ci::qclt
