// Hand-stepped lease semantics (DESIGN.md §1f) for both engines:
//   * grant acquisition over heartbeats and the read fast path (no log
//     entry, applied-state answer, epoch-stamped reply);
//   * lease off -> reads replicate like any command;
//   * lapse without renewal;
//   * takeover suppression: with synchronized clocks a follower's grant
//     outlives the leader's discounted belief, so no two nodes ever claim
//     the fast path at once;
//   * the staleness adversary: followers whose clocks run fast past
//     lease_epsilon depose the leader while it still believes its lease —
//     the deposed leader serves a provably stale read until the new
//     regime's first higher-ballot message reaches it, after which it
//     steps down and never serves again.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/multi_paxos.hpp"
#include "consensus/state_machine.hpp"
#include "core/one_paxos.hpp"
#include "support/fake_net.hpp"

namespace ci {
namespace {

using consensus::kNoInstance;
using consensus::MapStateMachine;
using consensus::Message;
using consensus::MsgType;
using consensus::MultiPaxosConfig;
using consensus::MultiPaxosEngine;
using consensus::NodeId;
using consensus::Op;
using core::OnePaxosConfig;
using core::OnePaxosEngine;
using test::FakeNet;

// Scans the externally-captured replies for the one answering (client, seq).
const Message* reply_to(const FakeNet& net, NodeId client, std::uint32_t seq) {
  for (const Message& m : net.external()) {
    if (m.type == MsgType::kClientReply && m.dst == client &&
        m.u.client_reply.seq == seq) {
      return &m;
    }
  }
  return nullptr;
}

constexpr Nanos kLease = 10 * kMillisecond;
constexpr Nanos kEpsilon = 1 * kMillisecond;

struct MpLeaseHarness {
  explicit MpLeaseHarness(Nanos lease = kLease, Nanos epsilon = kEpsilon) {
    for (NodeId r = 0; r < 3; ++r) {
      MultiPaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = 3;
      cfg.base.seed = 11;
      cfg.base.lease_duration = lease;
      cfg.base.lease_epsilon = epsilon;
      sms.push_back(std::make_unique<MapStateMachine>());
      cfg.base.state_machine = sms.back().get();
      engines.push_back(std::make_unique<MultiPaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  MultiPaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  // Runs enough heartbeat rounds (200 us period) for grants to come back.
  void acquire_lease() {
    for (int i = 0; i < 5; ++i) {
      net.advance(200 * kMicrosecond);
      net.run();
    }
  }

  bool leader_holds_lease(NodeId r) { return at(r).holds_lease(net.ctx(r).now()); }

  FakeNet net;
  std::vector<std::unique_ptr<MapStateMachine>> sms;
  std::vector<std::unique_ptr<MultiPaxosEngine>> engines;
};

TEST(MultiPaxosLease, FastReadServesAppliedStateWithoutLogEntry) {
  MpLeaseHarness h;
  h.acquire_lease();
  ASSERT_TRUE(h.leader_holds_lease(0));

  h.net.inject(test::client_request(9, 0, 1, Op::kWrite, 1, 7));
  h.net.run();
  ASSERT_EQ(h.at(0).log().first_gap(), 1);
  h.net.clear_external();

  h.net.inject(test::client_request(9, 0, 2, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 1u);
  EXPECT_EQ(h.at(0).log().first_gap(), 1);  // no instance consumed
  const Message* r = reply_to(h.net, 9, 2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->u.client_reply.result, 7u);
  EXPECT_EQ(r->u.client_reply.instance, kNoInstance);
  EXPECT_NE(r->u.client_reply.lease_epoch, 0u);
  EXPECT_EQ(r->u.client_reply.lease_epoch, h.at(0).write_epoch());
}

TEST(MultiPaxosLease, LeaseOffReadsReplicate) {
  MpLeaseHarness h(/*lease=*/0, /*epsilon=*/0);
  h.acquire_lease();  // heartbeats flow, but carry no lease rounds
  EXPECT_FALSE(h.leader_holds_lease(0));
  h.net.inject(test::client_request(9, 0, 1, Op::kWrite, 1, 7));
  h.net.run();
  h.net.inject(test::client_request(9, 0, 2, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 0u);
  EXPECT_EQ(h.at(0).log().first_gap(), 2);  // the read took an instance
  const Message* r = reply_to(h.net, 9, 2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->u.client_reply.result, 7u);
}

TEST(MultiPaxosLease, LapsesWithoutRenewal) {
  MpLeaseHarness h;
  h.acquire_lease();
  ASSERT_TRUE(h.leader_holds_lease(0));
  h.net.isolate(0);                      // no further grants reach the leader
  h.net.advance(kLease + kMillisecond);  // past every recorded expiry
  EXPECT_FALSE(h.leader_holds_lease(0));
}

TEST(MultiPaxosLease, SynchronizedClocksNeverOverlapRegimes) {
  MpLeaseHarness h;
  h.acquire_lease();
  ASSERT_TRUE(h.leader_holds_lease(0));

  const Nanos t0 = h.net.now();
  h.net.isolate(0);
  NodeId new_leader = consensus::kNoNode;
  for (int i = 0; i < 400 && new_leader == consensus::kNoNode; ++i) {
    h.net.advance(100 * kMicrosecond);
    h.net.run();
    if (h.at(1).is_leader()) new_leader = 1;
    if (h.at(2).is_leader()) new_leader = 2;
  }
  ASSERT_NE(new_leader, consensus::kNoNode);
  // The grants suppressed the takeover far past the 1 ms failure detector...
  EXPECT_GE(h.net.now() - t0, 8 * kMillisecond);
  // ...and the old leader's discounted belief expired strictly earlier, so
  // there was no instant with two fast-path servers.
  EXPECT_FALSE(h.leader_holds_lease(0));
}

TEST(MultiPaxosLease, FastFollowerClocksPastEpsilonAdmitOneStaleRead) {
  MpLeaseHarness h;
  h.acquire_lease();
  h.net.inject(test::client_request(9, 0, 1, Op::kWrite, 1, 7));
  h.net.run();
  ASSERT_TRUE(h.leader_holds_lease(0));

  // (rate - 1) * lease = 4 * 10 ms >> epsilon: the grants lapse in ~2 ms of
  // true time while the leader believes its lease for ~9 ms.
  h.net.stretch_clock(1, 5.0);
  h.net.stretch_clock(2, 5.0);
  h.net.isolate(0);
  NodeId new_leader = consensus::kNoNode;
  for (int i = 0; i < 60 && new_leader == consensus::kNoNode; ++i) {
    h.net.advance(100 * kMicrosecond);
    h.net.run();
    if (h.at(1).is_leader()) new_leader = 1;
    if (h.at(2).is_leader()) new_leader = 2;
  }
  ASSERT_NE(new_leader, consensus::kNoNode);
  // The unsafe overlap the epsilon discount exists to prevent: a new regime
  // is live while the deposed leader still believes its lease.
  ASSERT_TRUE(h.leader_holds_lease(0));

  h.net.inject(test::client_request(5, new_leader, 1, Op::kWrite, 1, 99));
  h.net.run();
  EXPECT_EQ(h.at(new_leader).log().first_gap(), 2);

  // Heal the old leader and let a read reach it BEFORE any higher-ballot
  // message does: it serves the stale value from its applied state.
  h.net.heal(0);
  h.net.clear_external();
  h.net.inject(test::client_request(6, 0, 1, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 1u);
  const Message* stale = reply_to(h.net, 6, 1);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->u.client_reply.result, 7u);  // NOT 99: provably stale

  // The new regime's heartbeats carry a higher ballot; on first contact the
  // deposed leader steps down, resets its ledger, and stops serving.
  for (int i = 0; i < 50; ++i) {
    h.net.advance(200 * kMicrosecond);
    h.net.run();
  }
  EXPECT_FALSE(h.at(0).is_leader());
  EXPECT_FALSE(h.leader_holds_lease(0));
  h.net.clear_external();
  h.net.inject(test::client_request(8, 0, 1, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 1u);  // unchanged: no fast path anymore
  const Message* fresh = reply_to(h.net, 8, 1);
  ASSERT_NE(fresh, nullptr);  // forwarded to the new leader, answered fresh
  EXPECT_EQ(fresh->u.client_reply.result, 99u);
}

struct OpxLeaseHarness {
  explicit OpxLeaseHarness(Nanos lease = 12 * kMillisecond, Nanos epsilon = kEpsilon) {
    for (NodeId r = 0; r < 3; ++r) {
      OnePaxosConfig cfg;
      cfg.base.self = r;
      cfg.base.num_replicas = 3;
      cfg.base.seed = 3;
      cfg.base.fd_timeout = 3 * kMillisecond;
      cfg.base.lease_duration = lease;
      cfg.base.lease_epsilon = epsilon;
      cfg.initial_leader = 0;
      cfg.initial_acceptor = 1;
      sms.push_back(std::make_unique<MapStateMachine>());
      cfg.base.state_machine = sms.back().get();
      engines.push_back(std::make_unique<OnePaxosEngine>(cfg));
      net.add(engines.back().get());
    }
    net.start_all();
  }

  OnePaxosEngine& at(NodeId r) { return *engines[static_cast<std::size_t>(r)]; }

  void acquire_lease() {
    for (int i = 0; i < 5; ++i) {
      net.advance(500 * kMicrosecond);
      net.run();
    }
  }

  bool leader_holds_lease(NodeId r) { return at(r).holds_lease(net.ctx(r).now()); }

  FakeNet net;
  std::vector<std::unique_ptr<MapStateMachine>> sms;
  std::vector<std::unique_ptr<OnePaxosEngine>> engines;
};

TEST(OnePaxosLease, FastReadServesAppliedStateWithoutLogEntry) {
  OpxLeaseHarness h;
  h.acquire_lease();
  ASSERT_TRUE(h.leader_holds_lease(0));

  h.net.inject(test::client_request(9, 0, 1, Op::kWrite, 1, 7));
  h.net.run();
  ASSERT_EQ(h.at(0).log().first_gap(), 1);
  h.net.clear_external();

  h.net.inject(test::client_request(9, 0, 2, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 1u);
  EXPECT_EQ(h.at(0).log().first_gap(), 1);
  const Message* r = reply_to(h.net, 9, 2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->u.client_reply.result, 7u);
  EXPECT_EQ(r->u.client_reply.instance, kNoInstance);
  EXPECT_NE(r->u.client_reply.lease_epoch, 0u);
}

TEST(OnePaxosLease, LeaseOffReadsReplicate) {
  OpxLeaseHarness h(/*lease=*/0, /*epsilon=*/0);
  h.acquire_lease();
  EXPECT_FALSE(h.leader_holds_lease(0));
  h.net.inject(test::client_request(9, 0, 1, Op::kWrite, 1, 7));
  h.net.run();
  h.net.inject(test::client_request(9, 0, 2, Op::kRead, 1));
  h.net.run();
  EXPECT_EQ(h.at(0).lease_reads(), 0u);
  EXPECT_EQ(h.at(0).log().first_gap(), 2);
  const Message* r = reply_to(h.net, 9, 2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->u.client_reply.result, 7u);
}

TEST(OnePaxosLease, GrantsSuppressTakeoverPastFailureDetector) {
  OpxLeaseHarness h;
  h.acquire_lease();
  ASSERT_TRUE(h.leader_holds_lease(0));

  const Nanos t0 = h.net.now();
  h.net.isolate(0);
  NodeId new_leader = consensus::kNoNode;
  for (int i = 0; i < 80 && new_leader == consensus::kNoNode; ++i) {
    h.net.advance(500 * kMicrosecond);
    h.net.run();
    if (h.at(1).is_leader()) new_leader = 1;
    if (h.at(2).is_leader()) new_leader = 2;
  }
  ASSERT_NE(new_leader, consensus::kNoNode);
  // Grants (12 ms) held the takeover well past the 3 ms failure detector;
  // the deposed leader's discounted belief was gone by then.
  EXPECT_GE(h.net.now() - t0, 9 * kMillisecond);
  EXPECT_FALSE(h.leader_holds_lease(0));
}

}  // namespace
}  // namespace ci
