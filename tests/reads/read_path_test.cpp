// The linearizable read path end to end through the client layer:
//   * lease-served reads agree with replicated ground truth on both
//     protocols and both backends (fast-path use asserted via engine
//     introspection under sim, where virtual time is quiescent between
//     session calls);
//   * session-ordered freshness survives the staleness adversary — follower
//     clocks stretched past lease_epsilon plus a leader kill — on sim AND
//     rt;
//   * the opt-in near-cache: hits while the epoch stands still, wholesale
//     invalidation the moment any reply reveals a newer epoch,
//     write-through population;
//   * read-only snapshot transactions return a consistent cut across
//     groups while cross-shard writers keep mutating the invariant pair.
#include <gtest/gtest.h>

#include <string>

#include "client/service_client.hpp"
#include "consensus/multi_paxos.hpp"
#include "core/one_paxos.hpp"

namespace ci::client {
namespace {

using consensus::NodeId;

constexpr Nanos kLease = 20 * kMillisecond;
constexpr Nanos kEpsilon = 2 * kMillisecond;

ServiceClient::Options lease_opts(core::Backend backend, core::Protocol protocol) {
  ServiceClient::Options o;
  o.backend = backend;
  o.spec.protocol = protocol;
  if (backend == core::Backend::kSim) {
    // Microsecond timers so heartbeat (and thus lease) rounds complete
    // within the virtual time a short session pumps.
    o.spec.apply(core::TimeoutProfile::many_core());
    o.spec.workload.request_timeout = 10 * kMillisecond;
  }
  o.spec.engine.lease_duration = kLease;
  o.spec.engine.lease_epsilon = kEpsilon;
  return o;
}

// Fast-path reads served across group 0's replicas (sim only: under rt the
// node threads own this state).
std::uint64_t fast_reads(ServiceClient& svc, core::Protocol protocol) {
  std::uint64_t n = 0;
  for (NodeId r = 0; r < svc.num_replicas(); ++r) {
    if (protocol == core::Protocol::kMultiPaxos) {
      if (auto* e = svc.deployment().group(0).multi_paxos(r)) n += e->lease_reads();
    } else {
      if (auto* e = svc.deployment().group(0).one_paxos(r)) n += e->lease_reads();
    }
  }
  return n;
}

struct ReadCase {
  core::Backend backend;
  core::Protocol protocol;
};

class ReadPath : public ::testing::TestWithParam<ReadCase> {};

TEST_P(ReadPath, LeaseReadsMatchReplicatedTruth) {
  const ReadCase c = GetParam();
  ServiceClient svc(lease_opts(c.backend, c.protocol));
  Session& s = svc.session(0);

  for (std::uint64_t k = 0; k < 8; ++k) s.execute(Op::kWrite, k, 100 + k);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(s.execute(Op::kRead, k, 0), 100 + k);
  }

  if (c.backend == core::Backend::kSim) {
    // Keep reading until a heartbeat round has granted the lease: every
    // iteration must still return the replicated truth, whichever path
    // served it.
    int rounds = 0;
    while (fast_reads(svc, c.protocol) == 0 && rounds < 5000) {
      ++rounds;
      ASSERT_EQ(s.execute(Op::kRead, 3, 0), 103u);
    }
    EXPECT_GT(fast_reads(svc, c.protocol), 0u);
    // Fast-path reads observe later writes immediately (they answer from
    // the applied machine, behind the same commit order).
    s.execute(Op::kWrite, 3, 999);
    EXPECT_EQ(s.execute(Op::kRead, 3, 0), 999u);
  }
}

// The acceptance scenario: stretch every follower's clock well past the
// epsilon bound, then kill the leader (the paper's slow-core failure
// model). The session must keep reading its own writes through the
// failover — replies retarget it to the new regime before any read could
// land on the deposed leader.
TEST_P(ReadPath, StretchedClocksPlusLeaderKillStayFresh) {
  const ReadCase c = GetParam();
  if (c.protocol != core::Protocol::kMultiPaxos) {
    GTEST_SKIP() << "leader-kill failover sweep runs on Multi-Paxos";
  }
  ServiceClient svc(lease_opts(c.backend, c.protocol));
  Session& s = svc.session(0);

  const std::uint64_t key = 3;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    s.execute(Op::kWrite, key, i);
    ASSERT_EQ(s.execute(Op::kRead, key, 0), i);
  }

  const NodeId leader = svc.believed_leader(0);
  ASSERT_NE(leader, consensus::kNoNode);
  for (NodeId r = 0; r < svc.num_replicas(); ++r) {
    // (4 - 1) * lease >> epsilon: grants lapse in a quarter of the time the
    // leader believes them.
    if (r != leader) svc.stretch_clock(r, 4.0);
  }
  // Factor 1000 is a clean kill: a mildly slow leader limps along serving
  // timeouts for much longer (simulated) time before the failover settles.
  svc.throttle_replica(leader, 1000);

  for (std::uint64_t i = 6; i <= 10; ++i) {
    s.execute(Op::kWrite, key, i);
    ASSERT_EQ(s.execute(Op::kRead, key, 0), i) << "stale read after failover";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ReadPath,
    ::testing::Values(ReadCase{core::Backend::kSim, core::Protocol::kMultiPaxos},
                      ReadCase{core::Backend::kSim, core::Protocol::kOnePaxos},
                      ReadCase{core::Backend::kRt, core::Protocol::kMultiPaxos},
                      ReadCase{core::Backend::kRt, core::Protocol::kOnePaxos}),
    [](const auto& info) {
      return std::string(core::backend_name(info.param.backend)) +
             (info.param.protocol == core::Protocol::kMultiPaxos ? "_mp" : "_opx");
    });

TEST(NearCache, HitsWhileEpochStandsInvalidatesOnNewerEpoch) {
  ServiceClient::Options o = lease_opts(core::Backend::kSim, core::Protocol::kMultiPaxos);
  o.num_sessions = 2;
  ServiceClient svc(o);
  Session& s = svc.session(0);
  s.enable_near_cache();

  s.execute(Op::kWrite, 5, 1);  // write-through: (5 -> 1) under the ack epoch
  EXPECT_EQ(s.near_cache_hits(), 0u);
  EXPECT_EQ(s.execute(Op::kRead, 5, 0), 1u);  // epoch unchanged: a hit
  EXPECT_EQ(s.near_cache_hits(), 1u);

  s.execute(Op::kWrite, 7, 9);  // the ack reveals a newer epoch...
  EXPECT_EQ(s.execute(Op::kRead, 5, 0), 1u);  // ...so this MISSES and refetches
  EXPECT_EQ(s.near_cache_hits(), 1u);
  EXPECT_EQ(s.execute(Op::kRead, 5, 0), 1u);  // recached under the new epoch
  EXPECT_EQ(s.near_cache_hits(), 2u);
  EXPECT_EQ(s.execute(Op::kRead, 7, 0), 9u);  // write-through entry also hits
  EXPECT_EQ(s.near_cache_hits(), 3u);

  // Another session's write advances the group's epoch; this session's next
  // contact with the leader reveals it and invalidates the whole cache, so
  // the read after that fetches the fresh value.
  svc.session(1).execute(Op::kWrite, 5, 2);
  s.execute(Op::kWrite, 8, 1);
  const std::uint64_t hits_before = s.near_cache_hits();
  EXPECT_EQ(s.execute(Op::kRead, 5, 0), 2u);
  EXPECT_EQ(s.near_cache_hits(), hits_before);  // it was a miss
}

TEST(SnapshotTxn, ReadOnlyCutIsConsistentAcrossGroupsUnderWriters) {
  ServiceClient::Options o = lease_opts(core::Backend::kSim, core::Protocol::kMultiPaxos);
  o.groups = 2;
  ServiceClient svc(o);
  Session& s = svc.session(0);

  // Two keys in different groups carrying the invariant k1 + k2 == 100.
  std::uint64_t k1 = 0, k2 = 1;
  while (svc.group_of(k2) == svc.group_of(k1)) ++k2;
  ASSERT_EQ(s.txn().put(k1, 50).put(k2, 50).commit().wait(), TxnState::kCommitted);

  int committed_cuts = 0;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    // The writer transaction is launched (prepares in flight) but not yet
    // decided while the reader's version sandwich runs.
    TxnHandle writer = s.txn().put(k1, 50 + i).put(k2, 50 - i).commit();
    TxnHandle reader = s.txn().get(k1).get(k2).commit();
    EXPECT_EQ(reader.id(), consensus::kNoTxn);  // no 2PC round, no locks
    const TxnState cut = reader.wait();
    if (cut == TxnState::kCommitted) {
      ++committed_cuts;
      EXPECT_EQ(reader.value(0) + reader.value(1), 100u)
          << "snapshot mixed two atomic writes";
    }
    ASSERT_EQ(writer.wait(), TxnState::kCommitted);
  }
  EXPECT_GT(committed_cuts, 0);

  // After the last writer settles, single-key reads see its pair intact.
  EXPECT_EQ(s.execute(Op::kRead, k1, 0) + s.execute(Op::kRead, k2, 0), 100u);
}

}  // namespace
}  // namespace ci::client
