// The asynchronous replicated-service client engine: the bridge between
// application threads and the event-driven engine world, and the layer the
// public client API (service_client.hpp) is built on.
//
// One AsyncClientEngine occupies one node of one consensus group. The core
// operation is submit(): queue a command, get a SubmitHandle completion
// token back immediately. Blocking is a wrapper — execute() is
// submit().wait(), flush() waits for everything in flight. Retarget/retry
// behavior mirrors ClientEngine (§7.6): on timeout the request goes to the
// next replica with the leader-suspect flag set.
//
// Backend bridging: under the real-thread runtime the hosting node's thread
// drives the engine and waiters block on a condition variable. Under the
// simulator nothing runs until somebody advances virtual time, so waiters
// call the configured pump() in a loop (with the engine unlocked) until the
// completion lands — exactly the bridging the synchronous client had.
//
// Pipelining: up to kMaxOutstanding commands ride concurrently (submit
// blocks for ROOM, never for commits); that backlog is what lets a batching
// leader (EngineConfig::batch) fill multi-command instances. submit_run()
// additionally marks a run of commands to travel to the replica in shared
// kClientCmdBatch frames (one frame per kMaxClientBatchCommands chunk) —
// the cross-shard transaction driver uses it for its per-group fan-out.
// Retries always degrade to per-command legacy frames, so a lost batch
// frame costs nothing but the amortization.
//
// Allocation discipline: the pipeline is bounded, so ALL per-command state
// lives in fixed arrays — a ring for the not-yet-sent backlog, a slot array
// for the awaiting-reply window — and Completion objects are recycled
// through a spare list once both the engine and the application have
// dropped them. After warmup a steady-state submit/complete cycle performs
// no heap allocation (pinned by the alloc-guard suite), which is what lets
// the open-loop workload engine (harness/workload.hpp) drive tens of
// thousands of logical sessions without the allocator in the loop.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "consensus/engine.hpp"

namespace ci::client {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::Op;

struct AsyncClientConfig {
  consensus::EngineConfig base;
  NodeId initial_target = 0;
  Nanos request_timeout = 10 * kMillisecond;

  // Coalescing window: N > 1 lets each tick gather up to N consecutive
  // plain queued commands (those not already part of a submit_run() run)
  // into one kClientCmdBatch frame. N = 1 sends every command as a legacy
  // kClientRequest — bit-identical to the uncoalesced wire. Bounded by
  // kMaxClientBatchCommands; retries always degrade to legacy frames.
  std::int32_t coalesce = 1;

  // Simulator bridge: when set, blocking waits advance virtual time by
  // calling this (expected to run the simulation for a slice) instead of
  // sleeping on the condition variable.
  std::function<void()> pump;
};

class AsyncClientEngine;

// Completion token for one submitted command. Default-constructed handles
// are invalid; valid ones stay usable until the engine is destroyed (the
// engine, not the handle, owns the protocol state — dropping a handle
// simply discards the result). Handles may be polled or waited from any
// thread except the engine's hosting node thread.
class SubmitHandle {
 public:
  SubmitHandle() = default;

  bool valid() const { return state_ != nullptr; }
  // Non-blocking: has the command committed (reply received)?
  bool done() const;
  // Blocks (or pumps, under sim) until the command commits; returns the
  // operation result (previous value for writes, value for reads, the vote
  // for transaction prepares).
  std::uint64_t wait();
  // The replying leader's cache epoch (ClientReply::lease_epoch), 0 when
  // the reply predates leases or the command has not completed. Valid only
  // after done()/wait(); the Session near-cache keys entries on it.
  std::uint32_t lease_epoch() const;
  // When the reply was processed, in the hosting node's clock (virtual
  // nanoseconds under sim, wall nanoseconds under rt); 0 until done(). The
  // workload engine measures honest open-loop latency against this instead
  // of its own polling time, so reaping late never flatters the tail.
  Nanos completed_at() const;

 private:
  friend class AsyncClientEngine;

  struct Completion {
    bool done = false;
    std::uint64_t result = 0;
    std::uint32_t lease_epoch = 0;
    Nanos completed_at = 0;
  };

  SubmitHandle(AsyncClientEngine* engine, std::shared_ptr<Completion> state)
      : engine_(engine), state_(std::move(state)) {}

  AsyncClientEngine* engine_ = nullptr;
  std::shared_ptr<Completion> state_;
};

class AsyncClientEngine final : public Engine {
 public:
  // Pipeline depth bound: one batching leader can absorb at most this many
  // commands into a single instance anyway.
  static constexpr std::int32_t kMaxOutstanding = consensus::kMaxCommandsPerBatch;

  explicit AsyncClientEngine(const AsyncClientConfig& cfg)
      : cfg_(cfg), target_(cfg.initial_target) {
    spare_.reserve(2 * static_cast<std::size_t>(kMaxOutstanding));
  }

  // ---- Application side (any thread but the hosting node's) ----

  // Queue one command; returns its completion token. Blocks only when the
  // pipeline is full. The key/value form covers plain operations; the
  // Command form carries transaction ops (op + txn stamped by the caller;
  // client and seq are stamped here).
  SubmitHandle submit(Op op, std::uint64_t key, std::uint64_t value) {
    Command cmd;
    cmd.op = op;
    cmd.key = key;
    cmd.value = value;
    return submit(cmd);
  }

  SubmitHandle submit(const Command& proto) {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() < kMaxOutstanding; });
    return enqueue_locked(proto, /*run=*/0);
  }

  // Queue a run of commands that should share kClientCmdBatch frames on
  // their first send (chunked to kMaxClientBatchCommands per frame). The
  // run must fit the pipeline whole.
  std::vector<SubmitHandle> submit_run(const std::vector<Command>& protos) {
    CI_CHECK(static_cast<std::int32_t>(protos.size()) <= kMaxOutstanding);
    std::vector<SubmitHandle> handles;
    handles.reserve(protos.size());
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this, &protos] {
      return in_flight_count() + static_cast<std::int32_t>(protos.size()) <=
             kMaxOutstanding;
    });
    const std::uint32_t run = ++next_run_;
    for (const Command& proto : protos) handles.push_back(enqueue_locked(proto, run));
    return handles;
  }

  // Blocking one-shot: submit and wait.
  std::uint64_t execute(Op op, std::uint64_t key, std::uint64_t value) {
    return submit(op, key, value).wait();
  }

  // Blocks until every command submitted so far committed.
  void flush() {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() == 0; });
  }

  // Room left in the pipeline right now (how many submits would not block).
  std::int32_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return kMaxOutstanding - in_flight_count();
  }

  // The newest nonzero ClientReply::lease_epoch seen from this group's
  // leader — the group's current cache epoch as far as this engine knows.
  // 0 until a lease-epoch-stamped reply arrives.
  std::uint32_t latest_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_epoch_;
  }

  // An already-completed handle carrying `result` — what a near-cache hit
  // hands back so cached and replicated reads share one call shape.
  SubmitHandle completed_handle(std::uint64_t result, std::uint32_t epoch) {
    auto state = std::make_shared<SubmitHandle::Completion>();
    state->done = true;
    state->result = result;
    state->lease_epoch = epoch;
    return SubmitHandle(this, std::move(state));
  }

  // ---- Engine side (hosting node thread) ----

  void on_message(Context& ctx, const Message& m) override {
    if (m.type != MsgType::kClientReply) return;
    std::lock_guard<std::mutex> lock(mu_);
    const std::int32_t slot = find_sent_locked(m.u.client_reply.seq);
    if (slot < 0) return;
    if (m.u.client_reply.leader_hint != consensus::kNoNode) {
      target_ = m.u.client_reply.leader_hint;
    }
    Sent& f = sent_[static_cast<std::size_t>(slot)];
    f.completion->done = true;
    f.completion->result = m.u.client_reply.result;
    f.completion->lease_epoch = m.u.client_reply.lease_epoch;
    f.completion->completed_at = ctx.now();
    if (m.u.client_reply.lease_epoch != 0) {
      latest_epoch_ = m.u.client_reply.lease_epoch;
    }
    release_sent_locked(slot);
    done_cv_.notify_all();
  }

  void tick(Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    const Nanos now = ctx.now();
    // Launch queued commands from the hosting node's thread. Members of one
    // run travel together in kClientCmdBatch frames; everything else goes
    // as a legacy kClientRequest.
    while (queued_count_ > 0) {
      if (queued_front().run != 0) {
        launch_chunk_locked(ctx, now, /*run=*/queued_front().run,
                            consensus::kMaxClientBatchCommands);
        continue;
      }
      if (cfg_.coalesce > 1) {
        launch_chunk_locked(
            ctx, now, /*run=*/0,
            std::min(cfg_.coalesce, consensus::kMaxClientBatchCommands));
        continue;
      }
      Pending p = pop_queued();
      send_locked(ctx, p.cmd, /*suspect=*/false);
      store_sent_locked(p.cmd, std::move(p.completion), now);
    }
    // Retry stragglers individually, in submission (seq) order; rotate the
    // target at most once per tick so several outstanding commands cannot
    // spin it around the ring.
    std::array<std::int32_t, kMaxOutstanding> overdue;
    std::int32_t n = 0;
    for (std::int32_t i = 0; i < kMaxOutstanding; ++i) {
      Sent& f = sent_[static_cast<std::size_t>(i)];
      if (!f.used || now - f.last_sent < cfg_.request_timeout) continue;
      // Insertion sort by seq: the window is 64 slots and usually nearly
      // ordered, so this stays cheap and allocation-free.
      std::int32_t j = n++;
      while (j > 0 &&
             sent_[static_cast<std::size_t>(overdue[static_cast<std::size_t>(j - 1)])]
                     .cmd.seq > f.cmd.seq) {
        overdue[static_cast<std::size_t>(j)] = overdue[static_cast<std::size_t>(j - 1)];
        --j;
      }
      overdue[static_cast<std::size_t>(j)] = i;
    }
    bool rotated = false;
    for (std::int32_t k = 0; k < n; ++k) {
      Sent& f = sent_[static_cast<std::size_t>(overdue[static_cast<std::size_t>(k)])];
      if (!rotated) {
        target_ = (target_ + 1) % cfg_.base.num_replicas;
        rotated = true;
      }
      f.last_sent = now;
      send_locked(ctx, f.cmd, /*suspect=*/true);
    }
  }

  NodeId believed_leader() const override { return target_; }

 private:
  friend class SubmitHandle;

  struct Pending {
    Command cmd;
    std::shared_ptr<SubmitHandle::Completion> completion;
    std::uint32_t run = 0;  // nonzero: batch with same-run neighbors
  };

  struct Sent {
    bool used = false;
    Command cmd;
    std::shared_ptr<SubmitHandle::Completion> completion;
    Nanos last_sent = 0;
  };

  std::int32_t in_flight_count() const { return queued_count_ + sent_count_; }

  // ---- queued ring (capacity kMaxOutstanding; in_flight_count() <=
  // kMaxOutstanding is the submit-side invariant, so it never overflows) ----

  Pending& queued_front() { return queued_[static_cast<std::size_t>(queued_head_)]; }

  Pending pop_queued() {
    Pending p = std::move(queued_[static_cast<std::size_t>(queued_head_)]);
    queued_head_ = (queued_head_ + 1) % kMaxOutstanding;
    --queued_count_;
    return p;
  }

  void push_queued(Pending p) {
    CI_CHECK(queued_count_ < kMaxOutstanding);
    const std::int32_t tail = (queued_head_ + queued_count_) % kMaxOutstanding;
    queued_[static_cast<std::size_t>(tail)] = std::move(p);
    ++queued_count_;
  }

  // ---- sent slots ----

  std::int32_t find_sent_locked(std::uint32_t seq) const {
    for (std::int32_t i = 0; i < kMaxOutstanding; ++i) {
      const Sent& f = sent_[static_cast<std::size_t>(i)];
      if (f.used && f.cmd.seq == seq) return i;
    }
    return -1;
  }

  void store_sent_locked(const Command& cmd,
                         std::shared_ptr<SubmitHandle::Completion> completion,
                         Nanos now) {
    for (std::int32_t i = 0; i < kMaxOutstanding; ++i) {
      Sent& f = sent_[static_cast<std::size_t>(i)];
      if (f.used) continue;
      f.used = true;
      f.cmd = cmd;
      f.completion = std::move(completion);
      f.last_sent = now;
      ++sent_count_;
      return;
    }
    CI_CHECK_MSG(false, "sent window overflow (pipeline invariant broken)");
  }

  void release_sent_locked(std::int32_t slot) {
    Sent& f = sent_[static_cast<std::size_t>(slot)];
    f.used = false;
    --sent_count_;
    // Recycle the completion once the application drops its handle: the
    // spare list is scanned at enqueue time for an entry nobody else
    // references. Entries still held by the app stay parked here (they
    // become reusable when the handle is dropped), so the list's size is
    // bounded by the number of handles alive at once.
    spare_.push_back(std::move(f.completion));
  }

  std::shared_ptr<SubmitHandle::Completion> acquire_completion_locked() {
    for (std::size_t i = spare_.size(); i > 0; --i) {
      auto& c = spare_[i - 1];
      if (c.use_count() != 1) continue;  // an app handle still reads it
      auto out = std::move(c);
      spare_[i - 1] = std::move(spare_.back());
      spare_.pop_back();
      *out = SubmitHandle::Completion{};
      return out;
    }
    return std::make_shared<SubmitHandle::Completion>();
  }

  SubmitHandle enqueue_locked(const Command& proto, std::uint32_t run) {
    Pending p;
    p.cmd = proto;
    p.cmd.client = cfg_.base.self;
    p.cmd.seq = ++next_seq_;
    p.completion = acquire_completion_locked();
    p.run = run;
    SubmitHandle handle(this, p.completion);
    push_queued(std::move(p));
    return handle;
  }

  // The front of the queue starts a chunk: peel up to `window` consecutive
  // commands with the same run id (run 0 = plain commands under coalescing)
  // and ship them in one kClientCmdBatch frame. A chunk of one keeps the
  // legacy kClientRequest — the wire never pays the batch header for a
  // single command.
  void launch_chunk_locked(Context& ctx, Nanos now, std::uint32_t run,
                           std::int32_t window) {
    std::array<Pending, consensus::kMaxClientBatchCommands> chunk;
    std::int32_t count = 0;
    while (queued_count_ > 0 && queued_front().run == run && count < window) {
      chunk[static_cast<std::size_t>(count++)] = pop_queued();
    }
    if (count == 1) {
      send_locked(ctx, chunk[0].cmd, /*suspect=*/false);
    } else {
      Message m(MsgType::kClientCmdBatch, consensus::ProtoId::kClient, cfg_.base.self,
                target_);
      Command cmds[consensus::kMaxClientBatchCommands];
      for (std::int32_t i = 0; i < count; ++i) cmds[i] = chunk[static_cast<std::size_t>(i)].cmd;
      m.u.client_cmd_batch.count = count;
      m.u.client_cmd_batch.run.assign(cmds, count);
      ctx.send(target_, m);
    }
    for (std::int32_t i = 0; i < count; ++i) {
      Pending& p = chunk[static_cast<std::size_t>(i)];
      store_sent_locked(p.cmd, std::move(p.completion), now);
    }
  }

  template <typename Pred>
  void wait_locked(std::unique_lock<std::mutex>& lock, Pred pred) {
    if (cfg_.pump) {
      while (!pred()) {
        lock.unlock();
        cfg_.pump();  // advances the simulation; may re-enter on_message/tick
        lock.lock();
      }
    } else {
      done_cv_.wait(lock, pred);
    }
  }

  void send_locked(Context& ctx, const Command& cmd, bool suspect) {
    Message m(MsgType::kClientRequest, consensus::ProtoId::kClient, cfg_.base.self, target_);
    if (suspect) m.flags = consensus::kFlagLeaderSuspect;
    m.u.client_request.cmd = cmd;
    ctx.send(target_, m);
  }

  AsyncClientConfig cfg_;
  NodeId target_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t next_run_ = 0;
  // Not yet sent (tick launches them): fixed ring, FIFO.
  std::array<Pending, kMaxOutstanding> queued_;
  std::int32_t queued_head_ = 0;
  std::int32_t queued_count_ = 0;
  // Awaiting a reply: fixed slot array (order-free; retries re-sort by seq).
  std::array<Sent, kMaxOutstanding> sent_;
  std::int32_t sent_count_ = 0;
  // Recycled Completion objects (see release_sent_locked).
  std::vector<std::shared_ptr<SubmitHandle::Completion>> spare_;
  std::uint32_t latest_epoch_ = 0;  // newest nonzero reply epoch
};

inline bool SubmitHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return state_->done;
}

inline std::uint64_t SubmitHandle::wait() {
  CI_CHECK_MSG(state_ != nullptr, "waiting on an invalid SubmitHandle");
  std::unique_lock<std::mutex> lock(engine_->mu_);
  engine_->wait_locked(lock, [this] { return state_->done; });
  return state_->result;
}

inline std::uint32_t SubmitHandle::lease_epoch() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return state_->done ? state_->lease_epoch : 0;
}

inline Nanos SubmitHandle::completed_at() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return state_->done ? state_->completed_at : 0;
}

}  // namespace ci::client
