// The asynchronous replicated-service client engine: the bridge between
// application threads and the event-driven engine world, and the layer the
// public client API (service_client.hpp) is built on.
//
// One AsyncClientEngine occupies one node of one consensus group. The core
// operation is submit(): queue a command, get a SubmitHandle completion
// token back immediately. Blocking is a wrapper — execute() is
// submit().wait(), flush() waits for everything in flight. Retarget/retry
// behavior mirrors ClientEngine (§7.6): on timeout the request goes to the
// next replica with the leader-suspect flag set.
//
// Backend bridging: under the real-thread runtime the hosting node's thread
// drives the engine and waiters block on a condition variable. Under the
// simulator nothing runs until somebody advances virtual time, so waiters
// call the configured pump() in a loop (with the engine unlocked) until the
// completion lands — exactly the bridging the synchronous client had.
//
// Pipelining: up to kMaxOutstanding commands ride concurrently (submit
// blocks for ROOM, never for commits); that backlog is what lets a batching
// leader (EngineConfig::batch) fill multi-command instances. submit_run()
// additionally marks a run of commands to travel to the replica in shared
// kClientCmdBatch frames (one frame per kMaxClientBatchCommands chunk) —
// the cross-shard transaction driver uses it for its per-group fan-out.
// Retries always degrade to per-command legacy frames, so a lost batch
// frame costs nothing but the amortization.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "consensus/engine.hpp"

namespace ci::client {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::Op;

struct AsyncClientConfig {
  consensus::EngineConfig base;
  NodeId initial_target = 0;
  Nanos request_timeout = 10 * kMillisecond;

  // Coalescing window: N > 1 lets each tick gather up to N consecutive
  // plain queued commands (those not already part of a submit_run() run)
  // into one kClientCmdBatch frame. N = 1 sends every command as a legacy
  // kClientRequest — bit-identical to the uncoalesced wire. Bounded by
  // kMaxClientBatchCommands; retries always degrade to legacy frames.
  std::int32_t coalesce = 1;

  // Simulator bridge: when set, blocking waits advance virtual time by
  // calling this (expected to run the simulation for a slice) instead of
  // sleeping on the condition variable.
  std::function<void()> pump;
};

class AsyncClientEngine;

// Completion token for one submitted command. Default-constructed handles
// are invalid; valid ones stay usable until the engine is destroyed (the
// engine, not the handle, owns the protocol state — dropping a handle
// simply discards the result). Handles may be polled or waited from any
// thread except the engine's hosting node thread.
class SubmitHandle {
 public:
  SubmitHandle() = default;

  bool valid() const { return state_ != nullptr; }
  // Non-blocking: has the command committed (reply received)?
  bool done() const;
  // Blocks (or pumps, under sim) until the command commits; returns the
  // operation result (previous value for writes, value for reads, the vote
  // for transaction prepares).
  std::uint64_t wait();
  // The replying leader's cache epoch (ClientReply::lease_epoch), 0 when
  // the reply predates leases or the command has not completed. Valid only
  // after done()/wait(); the Session near-cache keys entries on it.
  std::uint32_t lease_epoch() const;

 private:
  friend class AsyncClientEngine;

  struct Completion {
    bool done = false;
    std::uint64_t result = 0;
    std::uint32_t lease_epoch = 0;
  };

  SubmitHandle(AsyncClientEngine* engine, std::shared_ptr<Completion> state)
      : engine_(engine), state_(std::move(state)) {}

  AsyncClientEngine* engine_ = nullptr;
  std::shared_ptr<Completion> state_;
};

class AsyncClientEngine final : public Engine {
 public:
  // Pipeline depth bound: one batching leader can absorb at most this many
  // commands into a single instance anyway.
  static constexpr std::int32_t kMaxOutstanding = consensus::kMaxCommandsPerBatch;

  explicit AsyncClientEngine(const AsyncClientConfig& cfg)
      : cfg_(cfg), target_(cfg.initial_target) {}

  // ---- Application side (any thread but the hosting node's) ----

  // Queue one command; returns its completion token. Blocks only when the
  // pipeline is full. The key/value form covers plain operations; the
  // Command form carries transaction ops (op + txn stamped by the caller;
  // client and seq are stamped here).
  SubmitHandle submit(Op op, std::uint64_t key, std::uint64_t value) {
    Command cmd;
    cmd.op = op;
    cmd.key = key;
    cmd.value = value;
    return submit(cmd);
  }

  SubmitHandle submit(const Command& proto) {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() < kMaxOutstanding; });
    return enqueue_locked(proto, /*run=*/0);
  }

  // Queue a run of commands that should share kClientCmdBatch frames on
  // their first send (chunked to kMaxClientBatchCommands per frame). The
  // run must fit the pipeline whole.
  std::vector<SubmitHandle> submit_run(const std::vector<Command>& protos) {
    CI_CHECK(static_cast<std::int32_t>(protos.size()) <= kMaxOutstanding);
    std::vector<SubmitHandle> handles;
    handles.reserve(protos.size());
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this, &protos] {
      return in_flight_count() + static_cast<std::int32_t>(protos.size()) <=
             kMaxOutstanding;
    });
    const std::uint32_t run = ++next_run_;
    for (const Command& proto : protos) handles.push_back(enqueue_locked(proto, run));
    return handles;
  }

  // Blocking one-shot: submit and wait.
  std::uint64_t execute(Op op, std::uint64_t key, std::uint64_t value) {
    return submit(op, key, value).wait();
  }

  // Blocks until every command submitted so far committed.
  void flush() {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() == 0; });
  }

  // The newest nonzero ClientReply::lease_epoch seen from this group's
  // leader — the group's current cache epoch as far as this engine knows.
  // 0 until a lease-epoch-stamped reply arrives.
  std::uint32_t latest_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_epoch_;
  }

  // An already-completed handle carrying `result` — what a near-cache hit
  // hands back so cached and replicated reads share one call shape.
  SubmitHandle completed_handle(std::uint64_t result, std::uint32_t epoch) {
    auto state = std::make_shared<SubmitHandle::Completion>();
    state->done = true;
    state->result = result;
    state->lease_epoch = epoch;
    return SubmitHandle(this, std::move(state));
  }

  // ---- Engine side (hosting node thread) ----

  void on_message(Context& ctx, const Message& m) override {
    (void)ctx;
    if (m.type != MsgType::kClientReply) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sent_.find(m.u.client_reply.seq);
    if (it == sent_.end()) return;
    if (m.u.client_reply.leader_hint != consensus::kNoNode) {
      target_ = m.u.client_reply.leader_hint;
    }
    it->second.completion->done = true;
    it->second.completion->result = m.u.client_reply.result;
    it->second.completion->lease_epoch = m.u.client_reply.lease_epoch;
    if (m.u.client_reply.lease_epoch != 0) {
      latest_epoch_ = m.u.client_reply.lease_epoch;
    }
    sent_.erase(it);
    done_cv_.notify_all();
  }

  void tick(Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    const Nanos now = ctx.now();
    // Launch queued commands from the hosting node's thread. Members of one
    // run travel together in kClientCmdBatch frames; everything else goes
    // as a legacy kClientRequest.
    while (!queued_.empty()) {
      if (queued_.front().run != 0) {
        launch_run_locked(ctx, now);
        continue;
      }
      if (cfg_.coalesce > 1) {
        launch_coalesced_locked(ctx, now);
        continue;
      }
      Pending p = std::move(queued_.front());
      queued_.pop_front();
      send_locked(ctx, p.cmd, /*suspect=*/false);
      sent_.emplace(p.cmd.seq, InFlight{p.cmd, std::move(p.completion), now});
    }
    // Retry stragglers individually; rotate the target at most once per
    // tick so several outstanding commands cannot spin it around the ring.
    bool rotated = false;
    for (auto& [seq, f] : sent_) {
      if (now - f.last_sent < cfg_.request_timeout) continue;
      if (!rotated) {
        target_ = (target_ + 1) % cfg_.base.num_replicas;
        rotated = true;
      }
      f.last_sent = now;
      send_locked(ctx, f.cmd, /*suspect=*/true);
    }
  }

  NodeId believed_leader() const override { return target_; }

 private:
  friend class SubmitHandle;

  struct Pending {
    Command cmd;
    std::shared_ptr<SubmitHandle::Completion> completion;
    std::uint32_t run = 0;  // nonzero: batch with same-run neighbors
  };

  struct InFlight {
    Command cmd;
    std::shared_ptr<SubmitHandle::Completion> completion;
    Nanos last_sent = 0;
  };

  std::int32_t in_flight_count() const {
    return static_cast<std::int32_t>(queued_.size() + sent_.size());
  }

  SubmitHandle enqueue_locked(const Command& proto, std::uint32_t run) {
    Pending p;
    p.cmd = proto;
    p.cmd.client = cfg_.base.self;
    p.cmd.seq = ++next_seq_;
    p.completion = std::make_shared<SubmitHandle::Completion>();
    p.run = run;
    queued_.push_back(p);
    return SubmitHandle(this, std::move(p.completion));
  }

  // Front of the queue is a run member: peel off up to a frame's worth of
  // its siblings and send them in one kClientCmdBatch (single leftovers go
  // as a legacy frame — the wire promise is that one command never rides a
  // batch frame).
  void launch_run_locked(Context& ctx, Nanos now) {
    const std::uint32_t run = queued_.front().run;
    std::vector<Pending> chunk;
    while (!queued_.empty() && queued_.front().run == run &&
           static_cast<std::int32_t>(chunk.size()) < consensus::kMaxClientBatchCommands) {
      chunk.push_back(std::move(queued_.front()));
      queued_.pop_front();
    }
    if (chunk.size() == 1) {
      send_locked(ctx, chunk[0].cmd, /*suspect=*/false);
    } else {
      Message m(MsgType::kClientCmdBatch, consensus::ProtoId::kClient, cfg_.base.self,
                target_);
      std::vector<Command> cmds;
      cmds.reserve(chunk.size());
      for (const Pending& p : chunk) cmds.push_back(p.cmd);
      m.u.client_cmd_batch.count = static_cast<std::int32_t>(cmds.size());
      m.u.client_cmd_batch.run.assign(cmds.data(), m.u.client_cmd_batch.count);
      ctx.send(target_, m);
    }
    for (Pending& p : chunk) {
      const std::uint32_t seq = p.cmd.seq;
      sent_.emplace(seq, InFlight{p.cmd, std::move(p.completion), now});
    }
  }

  // Front of the queue is a plain command and coalescing is on: close the
  // window over up to cfg_.coalesce consecutive plain commands and ship
  // them in one kClientCmdBatch. A window that closes with one command
  // (queue drained, or a run boundary hit) keeps the legacy frame — the
  // wire never pays the batch header for a single command.
  void launch_coalesced_locked(Context& ctx, Nanos now) {
    const std::int32_t window =
        std::min(cfg_.coalesce, consensus::kMaxClientBatchCommands);
    std::vector<Pending> chunk;
    while (!queued_.empty() && queued_.front().run == 0 &&
           static_cast<std::int32_t>(chunk.size()) < window) {
      chunk.push_back(std::move(queued_.front()));
      queued_.pop_front();
    }
    if (chunk.size() == 1) {
      send_locked(ctx, chunk[0].cmd, /*suspect=*/false);
    } else {
      Message m(MsgType::kClientCmdBatch, consensus::ProtoId::kClient, cfg_.base.self,
                target_);
      std::vector<Command> cmds;
      cmds.reserve(chunk.size());
      for (const Pending& p : chunk) cmds.push_back(p.cmd);
      m.u.client_cmd_batch.count = static_cast<std::int32_t>(cmds.size());
      m.u.client_cmd_batch.run.assign(cmds.data(), m.u.client_cmd_batch.count);
      ctx.send(target_, m);
    }
    for (Pending& p : chunk) {
      const std::uint32_t seq = p.cmd.seq;
      sent_.emplace(seq, InFlight{p.cmd, std::move(p.completion), now});
    }
  }

  template <typename Pred>
  void wait_locked(std::unique_lock<std::mutex>& lock, Pred pred) {
    if (cfg_.pump) {
      while (!pred()) {
        lock.unlock();
        cfg_.pump();  // advances the simulation; may re-enter on_message/tick
        lock.lock();
      }
    } else {
      done_cv_.wait(lock, pred);
    }
  }

  void send_locked(Context& ctx, const Command& cmd, bool suspect) {
    Message m(MsgType::kClientRequest, consensus::ProtoId::kClient, cfg_.base.self, target_);
    if (suspect) m.flags = consensus::kFlagLeaderSuspect;
    m.u.client_request.cmd = cmd;
    ctx.send(target_, m);
  }

  AsyncClientConfig cfg_;
  NodeId target_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t next_run_ = 0;
  std::deque<Pending> queued_;             // not yet sent (tick launches them)
  std::map<std::uint32_t, InFlight> sent_;  // awaiting a reply, by seq
  std::uint32_t latest_epoch_ = 0;          // newest nonzero reply epoch
};

inline bool SubmitHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return state_->done;
}

inline std::uint64_t SubmitHandle::wait() {
  CI_CHECK_MSG(state_ != nullptr, "waiting on an invalid SubmitHandle");
  std::unique_lock<std::mutex> lock(engine_->mu_);
  engine_->wait_locked(lock, [this] { return state_->done; });
  return state_->result;
}

inline std::uint32_t SubmitHandle::lease_epoch() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return state_->done ? state_->lease_epoch : 0;
}

}  // namespace ci::client
