#include "client/service_client.hpp"

#include <mutex>

#include "common/affinity.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/sim_net.hpp"

namespace ci::client {

GroupId default_router(std::uint64_t key, std::int32_t groups) {
  // Keys are often small sequential integers, so run them through the
  // SplitMix64 finalizer to keep the shards balanced.
  return groups <= 1 ? 0
                     : static_cast<GroupId>(SplitMix64(key).next() %
                                            static_cast<std::uint64_t>(groups));
}

SubmitHandle Session::submit(Op op, std::uint64_t key, std::uint64_t value) {
  const GroupId g = group_of(key);
  AsyncClientEngine& client = *per_group_[static_cast<std::size_t>(g)];
  if (near_cache_ && op == Op::kRead) {
    const auto& map = cache_[static_cast<std::size_t>(g)];
    const auto it = map.find(key);
    // Serve only while the entry's epoch is still the newest this session
    // has seen — one intervening write (any key) observed in any reply
    // advances latest_epoch() and every older entry stops matching.
    if (it != map.end() && it->second.epoch != 0 &&
        it->second.epoch == client.latest_epoch()) {
      ++near_cache_hits_;
      return client.completed_handle(it->second.value, it->second.epoch);
    }
  }
  return client.submit(op, key, value);
}

std::uint64_t Session::execute(Op op, std::uint64_t key, std::uint64_t value) {
  SubmitHandle h = submit(op, key, value);
  const std::uint64_t result = h.wait();
  if (near_cache_ && (op == Op::kRead || op == Op::kWrite)) {
    const std::uint32_t epoch = h.lease_epoch();
    // A write's reply carries the epoch AFTER it applied, so caching the
    // written value under it is a correct read-your-writes fast path.
    if (epoch != 0) {
      cache_store(group_of(key), key, op == Op::kWrite ? value : result, epoch);
    }
  }
  return result;
}

void Session::cache_store(GroupId g, std::uint64_t key, std::uint64_t value,
                          std::uint32_t epoch) {
  auto& map = cache_[static_cast<std::size_t>(g)];
  if (map.size() >= kNearCacheMaxEntries && map.find(key) == map.end()) map.clear();
  map[key] = CacheEntry{value, epoch};
}

void Session::flush() {
  for (auto& client : per_group_) client->flush();
}

GroupId Session::group_of(std::uint64_t key) const {
  return router_(key, num_groups());
}

NodeId Session::believed_leader_for(std::uint64_t key) const {
  return per_group_[static_cast<std::size_t>(group_of(key))]->believed_leader();
}

// Simulator transport for sessions: virtual time only advances while some
// session blocks in a wait, pumping slices through run_until. The mutex
// serializes pumps from concurrent session threads.
struct ServiceClient::SimState {
  static constexpr Nanos kPumpSlice = 50 * kMicrosecond;

  std::mutex mu;
  std::unique_ptr<sim::SimNet> net;

  void pump() {
    std::lock_guard<std::mutex> lock(mu);
    net->run_until(net->now() + kPumpSlice);
  }
};

ServiceClient::ServiceClient(const Options& opts)
    : opts_([&] {
        Options o = opts;
        o.spec.num_clients = 0;  // sessions replace workload clients
        o.spec.joint = false;
        return o;
      }()),
      dep_(core::ShardSpec(opts_.spec, opts_.groups, opts_.placement),
           /*auto_start_clients=*/true) {
  const std::int32_t R = opts_.spec.num_replicas;
  const std::int32_t G = opts_.groups;
  const std::int32_t S = opts_.num_sessions;
  CI_CHECK(G >= 1);
  CI_CHECK(S >= 1);
  const std::int32_t replica_nodes = dep_.num_nodes();
  const std::int32_t total = replica_nodes + S;

  const bool is_sim = opts_.backend == core::Backend::kSim;
  if (is_sim) sim_ = std::make_unique<SimState>();

  for (std::int32_t s = 0; s < S; ++s) {
    const core::ShardedDeployment::ExternalSeat seat = dep_.next_external_seat();
    auto session = std::make_unique<Session>();
    session->router_ = opts_.router != nullptr ? opts_.router : &default_router;
    session->local_id_ = seat.local;
    std::vector<consensus::Engine*> engines;
    for (GroupId g = 0; g < G; ++g) {
      AsyncClientConfig cc;
      cc.base = opts_.spec.engine;
      cc.base.self = seat.local;  // group-local id, same in every group
      cc.base.num_replicas = R;
      cc.base.seed = opts_.spec.seed;
      cc.base.state_machine = nullptr;
      cc.request_timeout = opts_.spec.workload.request_timeout;
      cc.coalesce = opts_.spec.workload.client_coalesce;
      if (is_sim) cc.pump = [state = sim_.get()] { state->pump(); };
      session->per_group_.push_back(std::make_unique<AsyncClientEngine>(cc));
      engines.push_back(session->per_group_.back().get());
    }
    session_demux_.push_back(dep_.make_external_demux(seat.global, seat.local, engines));
    sessions_.push_back(std::move(session));
  }

  if (is_sim) {
    sim_->net = std::make_unique<sim::SimNet>(opts_.spec.sim.model, opts_.spec.seed,
                                              opts_.spec.sim.tick_period);
    for (consensus::NodeId n = 0; n < replica_nodes; ++n) {
      sim_->net->add_node(dep_.node_engine(n));
    }
    for (auto& d : session_demux_) sim_->net->add_node(d.get());
    // No deliver hook on either backend: the facade exposes no agreement
    // introspection, and recording every delivery would grow recorder state
    // unboundedly over the service's lifetime (deployments with a bounded
    // run window are where the recorders earn their keep).
    // Bring the replicas up (leader election, first heartbeats) so the
    // first session op does not pay the cold-start latency.
    sim_->net->run_until(1 * kMillisecond);
    return;
  }

  if (opts_.backend == core::Backend::kNet) {
    net::Endpoint registry_at;  // loopback ephemeral unless the spec names one
    if (!opts_.spec.net.registry.empty()) {
      CI_CHECK_MSG(net::parse_endpoint(opts_.spec.net.registry, &registry_at),
                   "bad net.registry endpoint");
    }
    registry_ = std::make_unique<net::Registry>(registry_at, total);
    CI_CHECK_MSG(registry_->ok(), "cannot bind the net registry");
    if (opts_.spec.net.io_threads > 0) {
      io_pool_ = std::make_unique<net::IoPool>(opts_.spec.net.io_threads);
    }
    net::MeshConfig mesh;
    mesh.registry = registry_->endpoint();
    mesh.total_nodes = total;
    mesh.port_base = opts_.spec.net.port_base;
    mesh.ring_bytes = net::ring_bytes_for(opts_.spec.engine.batch);
    for (consensus::NodeId n = 0; n < replica_nodes; ++n) {
      net_nodes_.push_back(
          std::make_unique<net::NetNode>(n, dep_.node_engine(n), mesh, io_pool_.get()));
    }
    for (std::int32_t s = 0; s < S; ++s) {
      net_nodes_.push_back(std::make_unique<net::NetNode>(
          replica_nodes + s, session_demux_[static_cast<std::size_t>(s)].get(), mesh,
          io_pool_.get()));
    }
    // Sessions submit on demand (no kStart release: there are no workload
    // clients), so starting the mesh is the whole bring-up.
    for (auto& n : net_nodes_) n->start();
    return;
  }

  net_ = std::make_unique<qclt::Network>(rt::slots_for(opts_.spec.engine.batch));
  const bool pin = opts_.spec.rt.pin && pinning_available();
  for (consensus::NodeId n = 0; n < replica_nodes; ++n) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        n, total, dep_.node_engine(n), net_.get(),
        pin ? static_cast<int>(n) % online_cores() : -1));
  }
  for (std::int32_t s = 0; s < S; ++s) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        replica_nodes + s, total, session_demux_[static_cast<std::size_t>(s)].get(),
        net_.get(), pin ? static_cast<int>(replica_nodes + s) % online_cores() : -1));
  }
  for (auto& n : nodes_) n->start();
}

ServiceClient::~ServiceClient() {
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
  for (auto& n : net_nodes_) n->request_stop();
  for (auto& n : net_nodes_) n->join();
}

Session& ServiceClient::session(std::int32_t i) {
  CI_CHECK(i >= 0 && i < session_count());
  return *sessions_[static_cast<std::size_t>(i)];
}

consensus::StateMachine* ServiceClient::state_machine(GroupId g, consensus::NodeId r) {
  CI_CHECK(g >= 0 && g < num_groups());
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  return dep_.group(g).state_machine(r);
}

GroupId ServiceClient::group_of(std::uint64_t key) const {
  return (opts_.router != nullptr ? opts_.router : &default_router)(key, opts_.groups);
}

void ServiceClient::throttle_replica(consensus::NodeId r, std::uint32_t factor) {
  for (GroupId g = 0; g < opts_.groups; ++g) throttle_replica(g, r, factor);
}

void ServiceClient::throttle_replica(GroupId g, consensus::NodeId r, std::uint32_t factor) {
  CI_CHECK(g >= 0 && g < opts_.groups);
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  const consensus::NodeId node = dep_.global_node(g, r);
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    if (factor <= 1) {
      sim_->net->heal_node(node, sim_->net->now());
    } else {
      sim_->net->slow_node(node, sim_->net->now(), sim_->net->now() + 3600 * kSecond,
                           static_cast<double>(factor));
    }
    return;
  }
  if (opts_.backend == core::Backend::kNet) {
    net_nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
    return;
  }
  nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
}

void ServiceClient::stretch_clock(consensus::NodeId r, double rate) {
  for (GroupId g = 0; g < opts_.groups; ++g) stretch_clock(g, r, rate);
}

void ServiceClient::stretch_clock(GroupId g, consensus::NodeId r, double rate) {
  CI_CHECK(g >= 0 && g < opts_.groups);
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  CI_CHECK(rate > 0.0);
  const consensus::NodeId node = dep_.global_node(g, r);
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    sim_->net->stretch_clock(node, rate);
    return;
  }
  if (opts_.backend == core::Backend::kNet) {
    net_nodes_[static_cast<std::size_t>(node)]->stretch_clock(rate);
    return;
  }
  nodes_[static_cast<std::size_t>(node)]->stretch_clock(rate);
}

consensus::NodeId ServiceClient::believed_leader(GroupId g) const {
  CI_CHECK(g >= 0 && g < opts_.groups);
  // Deployment hands out mutable engine pointers; the query is read-only.
  return const_cast<ServiceClient*>(this)->dep_.group(g).replica_engine(0)->believed_leader();
}

std::uint64_t ServiceClient::total_messages() const {
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    return sim_->net->total_messages();
  }
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->messages_sent();
  for (const auto& n : net_nodes_) sum += n->messages_sent();
  return sum;
}

std::uint64_t ServiceClient::total_bytes() const {
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    return sim_->net->total_bytes();
  }
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->bytes_sent();
  for (const auto& n : net_nodes_) sum += n->bytes_sent();
  return sum;
}

Nanos ServiceClient::sim_now() const {
  if (opts_.backend != core::Backend::kSim) return 0;
  std::lock_guard<std::mutex> lock(sim_->mu);
  return sim_->net->now();
}

void ServiceClient::sim_run_until(Nanos t) {
  if (opts_.backend != core::Backend::kSim) return;
  std::lock_guard<std::mutex> lock(sim_->mu);
  if (t > sim_->net->now()) sim_->net->run_until(t);
}

}  // namespace ci::client
