// The public client surface of the repository: one ServiceClient hosts a
// replicated (and optionally sharded) service — ANY consensus::StateMachine,
// chosen by ClusterSpec::state_machine_factory — on either backend, and
// hands out Sessions that talk to it.
//
// A Session owns one AsyncClientEngine per consensus group behind a single
// transport node (the per-group fan-out a transaction coordinator needs,
// made explicit instead of hidden inside a KV facade). Its API is
// async-first: submit() returns a SubmitHandle completion token; execute()
// is the blocking wrapper; txn() opens a cross-shard transaction committed
// by 2PC across groups (client/txn.hpp). Single-key routing hashes the key
// to its owning group.
//
// Backends: under kRt every replica and every session occupies a pinned
// thread exchanging real frames; under kNet those threads exchange the
// same frames over a loopback TCP socket mesh (registry bootstrap, length-
// prefixed streams); under kSim the replicas live in the deterministic
// simulator and blocked sessions pump virtual time from the calling thread
// — the same bridging the synchronous KV sessions always had.
// kv::ReplicatedKv/kv::KvSession are now a thin typed facade over this
// layer.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "client/async_client.hpp"
#include "client/txn.hpp"
#include "core/cluster_spec.hpp"
#include "core/sharded_deployment.hpp"
#include "net/net_node.hpp"
#include "net/registry.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"

namespace ci::sim {
class SimNet;
}

namespace ci::client {

using consensus::GroupId;

// The default key->group router: SplitMix64-finalized hash, so small
// sequential keys spread evenly across shards.
GroupId default_router(std::uint64_t key, std::int32_t groups);

class ServiceClient;

// One application handle: per-group async clients sharing one transport
// node. May be driven by one application thread at a time (sessions are
// independent of each other).
class Session {
 public:
  using Router = GroupId (*)(std::uint64_t key, std::int32_t groups);

  // Single-command API, routed by key. submit() never blocks on commits
  // (only for pipeline room); execute() is submit().wait() plus near-cache
  // bookkeeping when the cache is enabled.
  SubmitHandle submit(Op op, std::uint64_t key, std::uint64_t value);
  std::uint64_t execute(Op op, std::uint64_t key, std::uint64_t value);

  // Opt-in near-cache (DESIGN.md §1f): caches read/write results keyed by
  // (key, lease epoch). A cached value is served — as a pre-completed
  // SubmitHandle, no network round trip — only while its epoch equals the
  // newest epoch this session has observed from the group's leader, so any
  // reply that reveals an intervening write invalidates every older entry
  // at once. Gives session-monotonic reads: a cache hit is exactly as fresh
  // as the session's latest observed reply, never fresher.
  void enable_near_cache() {
    near_cache_ = true;
    cache_.resize(per_group_.size());
  }
  std::uint64_t near_cache_hits() const { return near_cache_hits_; }

  // Blocks until everything submitted through this session committed.
  void flush();

  // Opens a cross-shard transaction builder (see txn.hpp).
  Txn txn() { return Txn(this); }

  GroupId group_of(std::uint64_t key) const;
  std::int32_t num_groups() const { return static_cast<std::int32_t>(per_group_.size()); }
  // The replica this session believes leads `key`'s group (group-local id).
  NodeId believed_leader_for(std::uint64_t key) const;

  // The group's raw engine, for callers that address groups directly (the
  // transaction driver, benches).
  AsyncClientEngine& group_client(GroupId g) {
    return *per_group_[static_cast<std::size_t>(g)];
  }

 private:
  friend class ServiceClient;
  friend class Txn;
  friend class TxnHandle;

  struct CacheEntry {
    std::uint64_t value = 0;
    std::uint32_t epoch = 0;  // 0 = never serve (reply predates leases)
  };
  // Bound per group; overflow clears the map (an epoch-keyed cache rebuilds
  // itself in one round of reads, so eviction policy is not worth state).
  static constexpr std::size_t kNearCacheMaxEntries = 4096;

  void cache_store(GroupId g, std::uint64_t key, std::uint64_t value,
                   std::uint32_t epoch);

  std::vector<std::unique_ptr<AsyncClientEngine>> per_group_;
  Router router_ = &default_router;
  NodeId local_id_ = consensus::kNoNode;  // group-local id (stamps txn ids)
  std::uint32_t next_txn_ = 0;
  bool near_cache_ = false;
  std::vector<std::unordered_map<std::uint64_t, CacheEntry>> cache_;  // per group
  std::uint64_t near_cache_hits_ = 0;
};

class ServiceClient {
 public:
  struct Options {
    Options() {
      spec.apply(core::TimeoutProfile::real_threads());
      spec.workload.request_timeout = 10 * kMillisecond;  // session retry timer
      spec.num_clients = 0;  // sessions replace workload clients
    }

    // protocol / num_replicas / engine knobs / state_machine_factory /
    // rt.pin / sim model all come from here; num_clients and the
    // closed-loop workload are ignored (sessions replace them). With
    // groups > 1 this is the per-group template of a ShardSpec.
    core::ClusterSpec spec;
    core::Backend backend = core::Backend::kRt;
    std::int32_t num_sessions = 1;
    std::int32_t groups = 1;
    core::Placement placement = core::Placement::kGroupMajor;
    Session::Router router = nullptr;  // null = default_router
  };

  explicit ServiceClient(const Options& opts);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  Session& session(std::int32_t i);
  std::int32_t session_count() const { return static_cast<std::int32_t>(sessions_.size()); }

  // Replica r's applied machine in group g, for relaxed local reads and
  // test introspection (r is a group-local id).
  consensus::StateMachine* state_machine(GroupId g, consensus::NodeId r);
  const consensus::StateMachine* state_machine(GroupId g, consensus::NodeId r) const {
    return const_cast<ServiceClient*>(this)->state_machine(g, r);
  }

  // Fault injection: multiply the per-message cost of replica `r` (a
  // group-local id) of group `g` — or of EVERY group in the one-argument
  // form (under co-location that is one shared node anyway).
  void throttle_replica(consensus::NodeId r, std::uint32_t factor);
  void throttle_replica(GroupId g, consensus::NodeId r, std::uint32_t factor);

  // Fault injection: from now on replica `r`'s local clock runs `rate`
  // times real (or virtual) speed — rate > 1 models the fast clock that
  // would let a deposed leader believe a lease past its true expiry. The
  // lease staleness tests drive this past TimeoutProfile::lease_epsilon.
  void stretch_clock(consensus::NodeId r, double rate);
  void stretch_clock(GroupId g, consensus::NodeId r, double rate);

  // Which replica (group-local id) group `g` currently believes leads it.
  consensus::NodeId believed_leader(GroupId g) const;

  GroupId group_of(std::uint64_t key) const;
  std::int32_t num_groups() const { return dep_.num_groups(); }
  std::int32_t num_replicas() const { return opts_.spec.num_replicas; }
  core::Backend backend() const { return opts_.backend; }

  // Transport traffic so far (boundary-crossing messages / encoded frame
  // bytes) — what the txn benches divide by to get msgs-per-op.
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  // Virtual time under sim (0 under rt, where wall clocks apply).
  Nanos sim_now() const;
  // Advances the simulation to virtual time `t` (no-op when t has passed,
  // and on the rt backend, where wall time advances itself). This is the
  // open-loop workload driver's clock: it paces arrivals by running the
  // cluster to each arrival's scheduled instant instead of blocking in a
  // session wait. Call only between session operations (not from a reply
  // callback); concurrent callers serialize on the pump mutex.
  void sim_run_until(Nanos t);

  core::ShardedDeployment& deployment() { return dep_; }

 private:
  struct SimState;  // simulator transport + the pump mutex

  Options opts_;
  core::ShardedDeployment dep_;  // replicas only (sessions are wired here, per backend)
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<consensus::GroupDemuxEngine>> session_demux_;

  // rt backend
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<rt::RtNode>> nodes_;

  // net backend: in-process bootstrap registry + one socket-mesh node per
  // replica and per session (same thread-per-node shape as rt)
  std::unique_ptr<net::Registry> registry_;
  std::unique_ptr<net::IoPool> io_pool_;
  std::vector<std::unique_ptr<net::NetNode>> net_nodes_;

  // sim backend
  std::unique_ptr<SimState> sim_;
};

}  // namespace ci::client
