#include "client/txn.hpp"

#include <algorithm>

#include "client/service_client.hpp"
#include "common/check.hpp"

namespace ci::client {

using consensus::kNoTxn;
using consensus::make_txn_id;

// Everything one in-flight transaction needs: the cross-group analogue of
// TwoPcEngine::Round, with SubmitHandles standing in for the ack mask (each
// handle is a whole replicated group's ack).
struct TxnHandle::Work {
  Session* session = nullptr;
  TxnId txn = kNoTxn;
  GroupId home = 0;
  TxnState state = TxnState::kPending;
  bool settled = false;        // wait() ran to completion
  bool decided = false;        // the anchor (kTxnPrepareDecide) committed
  bool decided_commit = false; // ... and its outcome was commit

  // The home group's first put, withheld from the prepare fan-out: wait()
  // ships it as the kTxnPrepareDecide anchor once every other vote is in,
  // folding the home group's prepare, the replicated decision, and the home
  // final into ONE replicated command. Until then nothing is locked or
  // staged under this key, so a dropped handle has nothing to release here.
  std::uint64_t anchor_key = 0;
  std::uint64_t anchor_value = 0;

  // Participant groups in first-use order with their prepare handles
  // (the home group appears only when it has puts BEYOND the anchor);
  // finals are the per-group commit/abort handles.
  std::vector<GroupId> participants;
  std::vector<SubmitHandle> prepares;
  std::vector<SubmitHandle> finals;

  // Read-only snapshot transactions: the staged keys and, after a
  // successful sandwich, their values. Such a transaction never locks or
  // stages anything, so `participants` stays empty and the drop path in
  // ~Work has nothing to resolve.
  std::vector<std::uint64_t> get_keys;
  std::vector<std::uint64_t> values;

  std::function<void(TxnPhase)> hook;

  void notify(TxnPhase p) {
    if (hook) hook(p);
  }

  // A handle dropped before wait() settled must not strand the locks its
  // prepares took: fire-and-forget the resolution. Per-group engine queues
  // are FIFO, so these finals land AFTER the still-queued prepares in every
  // participant log. An already-committed decision (a hook threw mid-wait)
  // is honored; anything earlier aborts — no participant has applied, so
  // aborting everywhere keeps the all-or-nothing invariant. The withheld
  // anchor needs nothing: if the anchor never launched, its key was never
  // locked; if it committed, the home group already applied and a duplicate
  // final there is a no-op.
  ~Work() {
    if (settled || txn == kNoTxn) return;
    for (const GroupId g : participants) {
      Command fin;
      fin.op = decided && decided_commit ? Op::kTxnCommit : Op::kTxnAbort;
      fin.txn = txn;
      (void)session->group_client(g).submit(fin);  // result discarded
    }
  }
};

Txn& Txn::put(std::uint64_t key, std::uint64_t value) {
  for (auto& [k, v] : puts_) {
    if (k == key) {
      v = value;  // last client-side write to a key wins
      return *this;
    }
  }
  puts_.emplace_back(key, value);
  return *this;
}

Txn& Txn::get(std::uint64_t key) {
  if (std::find(gets_.begin(), gets_.end(), key) == gets_.end()) gets_.push_back(key);
  return *this;
}

Txn& Txn::on_phase(std::function<void(TxnPhase)> hook) {
  hook_ = std::move(hook);
  return *this;
}

TxnHandle Txn::commit() {
  CI_CHECK_MSG(session_ != nullptr, "Txn already committed (or moved from)");
  Session* session = session_;
  session_ = nullptr;  // the builder is spent: a second commit() trips above
  auto work = std::make_shared<TxnHandle::Work>();
  work->session = session;
  work->hook = std::move(hook_);
  CI_CHECK_MSG(puts_.empty() || gets_.empty(),
               "a transaction is either read-only (get) or write-only (put)");
  if (!gets_.empty()) {
    // Read-only: no replicated command, no locks — wait() runs the version
    // sandwich. txn stays kNoTxn so a dropped handle resolves nothing.
    work->get_keys = std::move(gets_);
    return TxnHandle(std::move(work));
  }
  if (puts_.empty()) {
    // Nothing to do: trivially committed.
    work->state = TxnState::kCommitted;
    work->settled = true;
    return TxnHandle(std::move(work));
  }

  work->txn = make_txn_id(session->local_id_, ++session->next_txn_);
  work->home = session->group_of(puts_.front().first);
  // The first put IS the anchor: it prepares inside the kTxnPrepareDecide
  // command wait() sends to the home group, not in this fan-out.
  work->anchor_key = puts_.front().first;
  work->anchor_value = puts_.front().second;

  // Group the remaining writes; the home group leads the participant list
  // (when it has non-anchor puts) so finals address it consistently.
  std::vector<std::vector<Command>> by_group(
      static_cast<std::size_t>(session->num_groups()));
  for (std::size_t i = 1; i < puts_.size(); ++i) {
    const auto& [key, value] = puts_[i];
    Command c;
    c.op = Op::kTxnPrepare;
    c.txn = work->txn;
    c.key = key;
    c.value = value;
    by_group[static_cast<std::size_t>(session->group_of(key))].push_back(c);
  }

  auto launch_group = [&](GroupId g) {
    const auto& cmds = by_group[static_cast<std::size_t>(g)];
    if (cmds.empty()) return;
    CI_CHECK_MSG(static_cast<std::int32_t>(cmds.size()) <=
                     AsyncClientEngine::kMaxOutstanding,
                 "transaction writes more keys in one group than the pipeline holds");
    work->participants.push_back(g);
    AsyncClientEngine& client = session->group_client(g);
    if (cmds.size() == 1) {
      work->prepares.push_back(client.submit(cmds.front()));
    } else {
      // Multi-key groups share kClientCmdBatch frames for the fan-out.
      for (SubmitHandle& h : client.submit_run(cmds)) {
        work->prepares.push_back(std::move(h));
      }
    }
  };
  launch_group(work->home);
  for (GroupId g = 0; g < session->num_groups(); ++g) {
    if (g != work->home) launch_group(g);
  }
  return TxnHandle(std::move(work));
}

TxnId TxnHandle::id() const { return work_ ? work_->txn : kNoTxn; }

std::uint64_t TxnHandle::value(std::size_t i) const {
  CI_CHECK_MSG(work_ != nullptr && work_->settled &&
                   work_->state == TxnState::kCommitted,
               "value() before a committed wait()");
  CI_CHECK(i < work_->values.size());
  return work_->values[i];
}

TxnState TxnHandle::wait() {
  CI_CHECK_MSG(work_ != nullptr, "waiting on an invalid TxnHandle");
  Work& w = *work_;
  if (w.settled) return w.state;

  // Read-only snapshot: the version sandwich (txn.hpp). Each round is a
  // per-key fan-out through the per-group clients; under a lease-holding
  // leader every read is one fast-path round trip, no log entry. The
  // sandwich bypasses the session near-cache on purpose — the versions must
  // come from the authority the values come from.
  if (!w.get_keys.empty()) {
    Session& s = *w.session;
    const std::size_t n = w.get_keys.size();
    std::vector<std::uint64_t> v1(n), v2(n), vals(n);
    const auto fan_out = [&](Op op, std::vector<std::uint64_t>& out) {
      std::vector<SubmitHandle> handles;
      handles.reserve(n);
      for (const std::uint64_t key : w.get_keys) {
        Command c;
        c.op = op;
        c.key = key;
        handles.push_back(s.group_client(s.group_of(key)).submit(c));
      }
      for (std::size_t i = 0; i < n; ++i) out[i] = handles[i].wait();
    };
    for (int attempt = 0; attempt < Txn::kSnapshotAttempts; ++attempt) {
      fan_out(Op::kReadVersioned, v1);
      fan_out(Op::kRead, vals);
      fan_out(Op::kReadVersioned, v2);
      if (v1 == v2) {
        // No key changed across the whole window, so the values coexisted
        // at any instant inside it: a consistent cut.
        w.values = std::move(vals);
        w.state = TxnState::kCommitted;
        w.settled = true;
        w.notify(TxnPhase::kApplied);
        return w.state;
      }
    }
    w.state = TxnState::kAborted;  // a writer raced every attempt
    w.settled = true;
    w.notify(TxnPhase::kApplied);
    return w.state;
  }

  // PREPARE: collect every participant's vote. Each wait() rides the
  // group's replicated log, so a leader failover mid-prepare just delays
  // the reply — the command (and with it the lock/stage) survives in the
  // group.
  bool all_yes = true;
  for (SubmitHandle& h : w.prepares) all_yes &= h.wait() == 1;
  w.notify(TxnPhase::kPrepared);

  // PREPARE+DECIDE: ship the withheld anchor to the home group. One
  // replicated command prepares the anchor key, folds in the other votes,
  // records the decision, and applies or aborts at home — after it commits
  // the transaction's fate is settled durably AND the home group is done;
  // everything beyond is remote (retried) application. Its result IS the
  // outcome: the anchor's own vote is the last input, so the classic
  // decide round-trip disappears from the wire. The flags are set before
  // the hook fires so a throwing hook leaves Work able to resolve
  // faithfully (~Work).
  Command anchor;
  anchor.op = Op::kTxnPrepareDecide;
  anchor.txn = w.txn;
  anchor.key = w.anchor_key;
  anchor.value = w.anchor_value;
  anchor.reserved[0] = all_yes ? 1 : 0;
  const bool committed =
      w.session->group_client(w.home).submit(anchor).wait() == 1;
  w.decided = true;
  w.decided_commit = committed;
  w.notify(TxnPhase::kDecided);

  // COMMIT/ABORT: apply (or discard) on every REMOTE participant; locks
  // release either way. The home group already applied inside the anchor,
  // so its final leg is gone too. The ack — wait() returning — only
  // happens after ALL participants applied, so an acked transaction is
  // fully visible.
  for (const GroupId g : w.participants) {
    if (g == w.home) continue;  // the anchor was the home group's final
    Command fin;
    fin.op = committed ? Op::kTxnCommit : Op::kTxnAbort;
    fin.txn = w.txn;
    w.finals.push_back(w.session->group_client(g).submit(fin));
  }
  for (SubmitHandle& h : w.finals) h.wait();
  w.state = committed ? TxnState::kCommitted : TxnState::kAborted;
  w.settled = true;
  w.notify(TxnPhase::kApplied);
  return w.state;
}

}  // namespace ci::client
