#include "client/txn.hpp"

#include <algorithm>

#include "client/service_client.hpp"
#include "common/check.hpp"

namespace ci::client {

using consensus::kNoTxn;
using consensus::make_txn_id;

// Everything one in-flight transaction needs: the cross-group analogue of
// TwoPcEngine::Round, with SubmitHandles standing in for the ack mask (each
// handle is a whole replicated group's ack).
struct TxnHandle::Work {
  Session* session = nullptr;
  TxnId txn = kNoTxn;
  GroupId home = 0;
  TxnState state = TxnState::kPending;
  bool settled = false;        // wait() ran to completion
  bool decided = false;        // the kTxnDecide command committed
  bool decided_commit = false; // ... and its outcome was commit

  // Participant groups in first-use order (home first) with their prepare
  // handles; finals are the per-group commit/abort handles.
  std::vector<GroupId> participants;
  std::vector<SubmitHandle> prepares;
  std::vector<SubmitHandle> finals;

  std::function<void(TxnPhase)> hook;

  void notify(TxnPhase p) {
    if (hook) hook(p);
  }

  // A handle dropped before wait() settled must not strand the locks its
  // prepares took: fire-and-forget the resolution. Per-group engine queues
  // are FIFO, so these finals land AFTER the still-queued prepares in every
  // participant log. An already-committed decision (a hook threw mid-wait)
  // is honored; anything earlier aborts — no participant has applied, so
  // aborting everywhere keeps the all-or-nothing invariant.
  ~Work() {
    if (settled || txn == kNoTxn) return;
    for (const GroupId g : participants) {
      Command fin;
      fin.op = decided && decided_commit ? Op::kTxnCommit : Op::kTxnAbort;
      fin.txn = txn;
      (void)session->group_client(g).submit(fin);  // result discarded
    }
  }
};

Txn& Txn::put(std::uint64_t key, std::uint64_t value) {
  for (auto& [k, v] : puts_) {
    if (k == key) {
      v = value;  // last client-side write to a key wins
      return *this;
    }
  }
  puts_.emplace_back(key, value);
  return *this;
}

Txn& Txn::on_phase(std::function<void(TxnPhase)> hook) {
  hook_ = std::move(hook);
  return *this;
}

TxnHandle Txn::commit() {
  CI_CHECK_MSG(session_ != nullptr, "Txn already committed (or moved from)");
  Session* session = session_;
  session_ = nullptr;  // the builder is spent: a second commit() trips above
  auto work = std::make_shared<TxnHandle::Work>();
  work->session = session;
  work->hook = std::move(hook_);
  if (puts_.empty()) {
    // Nothing to do: trivially committed.
    work->state = TxnState::kCommitted;
    work->settled = true;
    return TxnHandle(std::move(work));
  }

  work->txn = make_txn_id(session->local_id_, ++session->next_txn_);
  work->home = session->group_of(puts_.front().first);

  // Group the writes; the home group leads the participant list so decide
  // and finals address it consistently.
  std::vector<std::vector<Command>> by_group(
      static_cast<std::size_t>(session->num_groups()));
  for (const auto& [key, value] : puts_) {
    Command c;
    c.op = Op::kTxnPrepare;
    c.txn = work->txn;
    c.key = key;
    c.value = value;
    by_group[static_cast<std::size_t>(session->group_of(key))].push_back(c);
  }

  auto launch_group = [&](GroupId g) {
    const auto& cmds = by_group[static_cast<std::size_t>(g)];
    if (cmds.empty()) return;
    CI_CHECK_MSG(static_cast<std::int32_t>(cmds.size()) <=
                     AsyncClientEngine::kMaxOutstanding,
                 "transaction writes more keys in one group than the pipeline holds");
    work->participants.push_back(g);
    AsyncClientEngine& client = session->group_client(g);
    if (cmds.size() == 1) {
      work->prepares.push_back(client.submit(cmds.front()));
    } else {
      // Multi-key groups share kClientCmdBatch frames for the fan-out.
      for (SubmitHandle& h : client.submit_run(cmds)) {
        work->prepares.push_back(std::move(h));
      }
    }
  };
  launch_group(work->home);
  for (GroupId g = 0; g < session->num_groups(); ++g) {
    if (g != work->home) launch_group(g);
  }
  return TxnHandle(std::move(work));
}

TxnId TxnHandle::id() const { return work_ ? work_->txn : kNoTxn; }

TxnState TxnHandle::wait() {
  CI_CHECK_MSG(work_ != nullptr, "waiting on an invalid TxnHandle");
  Work& w = *work_;
  if (w.settled) return w.state;

  // PREPARE: collect every participant's vote. Each wait() rides the
  // group's replicated log, so a leader failover mid-prepare just delays
  // the reply — the command (and with it the lock/stage) survives in the
  // group.
  bool all_yes = true;
  for (SubmitHandle& h : w.prepares) all_yes &= h.wait() == 1;
  w.notify(TxnPhase::kPrepared);

  // DECIDE: replicate the outcome in the home group. After this commits,
  // the transaction's fate is settled durably; everything beyond is
  // (retried) application. The flags are set before the hook fires so a
  // throwing hook leaves Work able to resolve faithfully (~Work).
  Command decide;
  decide.op = Op::kTxnDecide;
  decide.txn = w.txn;
  decide.value = all_yes ? 1 : 0;
  w.session->group_client(w.home).submit(decide).wait();
  w.decided = true;
  w.decided_commit = all_yes;
  w.notify(TxnPhase::kDecided);

  // COMMIT/ABORT: apply (or discard) on every participant; locks release
  // either way. The ack — wait() returning — only happens after ALL
  // participants applied, so an acked transaction is fully visible.
  for (const GroupId g : w.participants) {
    Command fin;
    fin.op = all_yes ? Op::kTxnCommit : Op::kTxnAbort;
    fin.txn = w.txn;
    w.finals.push_back(w.session->group_client(g).submit(fin));
  }
  for (SubmitHandle& h : w.finals) h.wait();
  w.state = all_yes ? TxnState::kCommitted : TxnState::kAborted;
  w.settled = true;
  w.notify(TxnPhase::kApplied);
  return w.state;
}

}  // namespace ci::client
