// Cross-shard transactions: classic two-phase commit run ACROSS consensus
// groups, where every participant — and the coordinator's decision — is
// replicated (paper §2.2: "consensus groups make blocking protocols safe to
// layer"). See DESIGN.md §1d for the full flow and the non-blocking
// argument.
//
// The protocol, driven from the submitting session. The first put is the
// ANCHOR: it belongs to the transaction's HOME group (its key's group) and
// is withheld from the prepare fan-out so the home group's prepare, the
// replicated decision, and the home final collapse into one command:
//   1. PREPARE   — one kTxnPrepare command per written key EXCEPT the
//                  anchor, submitted to the key's owning group through that
//                  group's ordinary replicated log (multi-key groups share
//                  kClientCmdBatch frames). Executing the prepare locks the
//                  key and stages the value; the reply carries the
//                  participant's vote.
//   2. PREPARE+  — once every other vote is in, the coordinator ships the
//      DECIDE      anchor as one kTxnPrepareDecide command to the home
//                  group, carrying the combined remote vote in reserved[0].
//                  Executing it prepares the anchor key, folds in that vote,
//                  records the decision, and applies or aborts AT HOME — all
//                  in one log entry; the reply is the outcome. Once it
//                  commits, the outcome is durable against any single
//                  replica failure — this is what removes the classic 2PC
//                  blocking window, where a dead coordinator strands
//                  participants holding locks — and the home group needs no
//                  further command.
//   3. COMMIT/   — one kTxnCommit (or kTxnAbort) command per REMOTE
//      ABORT       participant group applies the staged writes (or discards
//                  them) and releases the locks, again through the
//                  replicated logs.
//
// Versus the classic flow (prepare per key + kTxnDecide + final per group),
// the anchor removes two replicated commands from every transaction — a
// 2-key/2-group transaction runs 3 replicated commands instead of 5, and
// the wire messages per transaction drop accordingly (DESIGN.md §1e).
//
// The handle acks (wait() returns kCommitted) only after every participant
// applied, so an acked transaction is never partially visible. Conflicting
// prepares vote no instead of waiting — a deterministic log cannot block —
// so concurrent transactions over the same keys abort-and-retry rather than
// deadlock. The coordinator mirrors the single-group TwoPcEngine's round
// structure (consensus::TwoPcPhase: prepare fan-out / decision fan-out) one
// layer up: participants are groups, and each "send" is a replicated
// command instead of a point-to-point message.
//
// Dropping a TxnHandle without wait()ing does not strand locks: the last
// reference fire-and-forgets the resolution (abort, or commit if the
// decision already committed). Like SubmitHandle, a TxnHandle must not
// outlive the ServiceClient that owns its session — the drop path submits
// through the session's engines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "client/async_client.hpp"

namespace ci::client {

class Session;

using consensus::GroupId;
using consensus::TxnId;

enum class TxnState : std::uint8_t { kPending, kCommitted, kAborted };

// Progress points reported to the Txn::on_phase hook, in order. Fault tests
// use the hook to kill leaders exactly mid-prepare / mid-commit.
enum class TxnPhase : std::uint8_t {
  kPrepared,  // every remote vote collected, anchor not yet submitted
  kDecided,   // anchor committed: decision durable AND applied at home,
              // remote finals not yet applied
  kApplied,   // every participant applied the outcome
};

// Completion token for one transaction. wait() drives the remaining phases
// (prepares are already in flight when commit() returns) and blocks — or
// pumps virtual time, under sim — until the outcome is applied everywhere.
class TxnHandle {
 public:
  TxnHandle() = default;

  bool valid() const { return work_ != nullptr; }
  TxnId id() const;
  TxnState wait();
  bool committed() { return wait() == TxnState::kCommitted; }

  // Read-only transactions: the value of the i-th get() (in staging
  // order). Valid only after wait() returned kCommitted.
  std::uint64_t value(std::size_t i) const;

 private:
  friend class Txn;
  struct Work;
  explicit TxnHandle(std::shared_ptr<Work> work) : work_(std::move(work)) {}
  std::shared_ptr<Work> work_;
};

// Builder: stage writes, then commit() to launch the 2PC. One transaction
// writes each key at most once (a second put to the same key overwrites the
// staged value client-side).
//
// Alternatively stage READS with get() — a read-only snapshot transaction.
// It commits without any replicated command or lock: wait() runs a version
// sandwich over the staged keys (versioned reads V1, value reads, versioned
// reads V2, each a per-key fan-out through the ordinary read path — lease
// fast path when the leader holds one). All versions unchanged ⇒ no key was
// written during the whole window, so the values coexisted at one instant:
// a consistent cut. A write race re-runs the sandwich; after
// kSnapshotAttempts collisions wait() returns kAborted (retry-visible, like
// a write-write conflict abort). get() and put() cannot be mixed in one
// transaction — read-write transactions would need real read locks.
class Txn {
 public:
  // Sandwich re-runs before a read-only transaction gives up and aborts.
  static constexpr int kSnapshotAttempts = 3;

  explicit Txn(Session* session) : session_(session) {}

  Txn& put(std::uint64_t key, std::uint64_t value);
  Txn& get(std::uint64_t key);

  // Test/fault-injection hook, called at each TxnPhase transition during
  // wait(). Installed before commit().
  Txn& on_phase(std::function<void(TxnPhase)> hook);

  // Launches the prepare fan-out and returns the completion token. The
  // builder is spent afterwards — a second commit() CHECK-fails rather
  // than silently launching the writes a second time.
  TxnHandle commit();

 private:
  Session* session_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> puts_;
  std::vector<std::uint64_t> gets_;
  std::function<void(TxnPhase)> hook_;
};

}  // namespace ci::client
