#include "harness/cluster_harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "net/net_cluster.hpp"
#include "rt/rt_cluster.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::harness {
namespace {

// The single source of truth for the harness's flags (all value-taking:
// the space form consumes the next argv slot). flag_value() refuses names
// missing from this table, so the strict scanners below cannot drift from
// the parsers.
constexpr const char* kValueFlags[] = {"--backend", "--groups", "--placement",
                                       "--batch", "--batch-flush-us",
                                       "--flush-policy", "--client-coalesce",
                                       "--txn-mix", "--read-mix", "--lease-ms",
                                       "--sessions", "--target-rate", "--zipf",
                                       "--workload", "--value-bytes",
                                       "--net-port-base", "--net-registry",
                                       "--net-io-threads"};
// Valueless flags: presence is the whole message. --help is recognized by
// the strict scanners (print usage, exit 0) and always legal, so binaries
// need not list it in their consumed sets.
constexpr const char* kBoolFlags[] = {"--sweep-diff", "--help"};

bool is_harness_flag(const char* name) {
  for (const char* flag : kValueFlags) {
    if (std::strcmp(name, flag) == 0) return true;
  }
  return false;
}

// The one matcher both scanners share: how (if at all) `arg` invokes flag
// `name`. kSpace means the value sits in the NEXT argv slot.
enum class FlagForm { kNone, kEquals, kSpace };

FlagForm flag_form(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return FlagForm::kNone;
  if (arg[n] == '=') return FlagForm::kEquals;
  if (arg[n] == '\0') return FlagForm::kSpace;
  return FlagForm::kNone;  // longer flag sharing the prefix (--groupsize)
}

RunResult run_sim_backend(const ShardSpec& shard, const RunPlan& plan) {
  sim::SimCluster c(shard);
  c.run(plan.warmup);
  const std::uint64_t committed_warm = c.total_committed();
  const std::uint64_t issued_warm = c.total_issued();
  const std::uint64_t local_reads_warm = c.sharded().total_local_reads();
  const std::uint64_t messages_warm = c.net().total_messages();
  const std::uint64_t bytes_warm = c.net().total_bytes();
  c.run(plan.warmup + plan.duration);
  const Nanos measured = std::max<Nanos>(c.net().now() - plan.warmup, 1);
  RunResult res = c.result(measured);
  res.committed -= committed_warm;
  res.issued -= issued_warm;
  res.local_reads -= local_reads_warm;
  res.total_messages -= messages_warm;
  res.total_bytes -= bytes_warm;
  return res;
}

RunResult run_rt_backend(const ShardSpec& shard, const RunPlan& plan) {
  rt::RtCluster c(shard);
  c.start();
  const Nanos t0 = now_nanos();
  c.drive_until(t0 + plan.warmup);
  const std::uint64_t committed_warm = c.live_committed();
  const std::uint64_t issued_warm = c.live_issued();
  const std::uint64_t local_reads_warm = c.live_local_reads();
  const std::uint64_t messages_warm = c.live_messages();
  const std::uint64_t bytes_warm = c.live_bytes();
  const Nanos measure_start = now_nanos();
  c.drive_until(t0 + std::min(plan.warmup + plan.duration, plan.max_wall));
  const Nanos measured = std::max<Nanos>(now_nanos() - measure_start, 1);
  c.stop();
  RunResult res = c.collect();
  res.committed -= committed_warm;
  res.issued -= issued_warm;
  res.local_reads -= local_reads_warm;
  res.total_messages -= messages_warm;
  res.total_bytes -= bytes_warm;
  res.duration = measured;
  return res;
}

// Same warmup-subtraction shape as run_rt_backend, but the cluster is a
// loopback socket mesh: total_messages/total_bytes count actual frames and
// socket bytes (length prefix included), so msgs/op and bytes/op rows are
// honest wire numbers.
RunResult run_net_backend(const ShardSpec& shard, const RunPlan& plan) {
  net::NetCluster c(shard);
  c.start();
  const Nanos t0 = now_nanos();
  c.drive_until(t0 + plan.warmup);
  const std::uint64_t committed_warm = c.live_committed();
  const std::uint64_t issued_warm = c.live_issued();
  const std::uint64_t local_reads_warm = c.live_local_reads();
  const std::uint64_t messages_warm = c.live_messages();
  const std::uint64_t bytes_warm = c.live_bytes();
  const Nanos measure_start = now_nanos();
  c.drive_until(t0 + std::min(plan.warmup + plan.duration, plan.max_wall));
  const Nanos measured = std::max<Nanos>(now_nanos() - measure_start, 1);
  c.stop();
  RunResult res = c.collect();
  res.committed -= committed_warm;
  res.issued -= issued_warm;
  res.local_reads -= local_reads_warm;
  res.total_messages -= messages_warm;
  res.total_bytes -= bytes_warm;
  res.duration = measured;
  return res;
}

// Scans argv for `--name=value` or `--name value`. Returns the value, or
// nullptr when absent. A flag present without a value sets *malformed.
const char* flag_value(int argc, char** argv, const char* name, bool* malformed) {
  CI_CHECK_MSG(is_harness_flag(name), "flag not registered in kValueFlags");
  const char* found = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    switch (flag_form(arg, name)) {
      case FlagForm::kNone:
        break;
      case FlagForm::kEquals:
        found = arg + std::strlen(name) + 1;
        break;
      case FlagForm::kSpace:
        if (i + 1 >= argc) {
          *malformed = true;
          return nullptr;
        }
        found = argv[++i];
        break;
    }
  }
  return found;
}

[[noreturn]] void usage_exit(const char* err) {
  std::fprintf(stderr, "%s\n", err);
  std::exit(2);
}

}  // namespace

bool parse_backend(const char* s, Backend* out) {
  if (std::strcmp(s, "sim") == 0) {
    *out = Backend::kSim;
    return true;
  }
  if (std::strcmp(s, "rt") == 0) {
    *out = Backend::kRt;
    return true;
  }
  if (std::strcmp(s, "net") == 0) {
    *out = Backend::kNet;
    return true;
  }
  return false;
}

bool parse_placement(const char* s, Placement* out) {
  if (std::strcmp(s, "group-major") == 0) {
    *out = Placement::kGroupMajor;
    return true;
  }
  if (std::strcmp(s, "interleaved") == 0) {
    *out = Placement::kInterleaved;
    return true;
  }
  if (std::strcmp(s, "colocated") == 0) {
    *out = Placement::kCoLocated;
    return true;
  }
  return false;
}

bool try_backend_from_args(int argc, char** argv, Backend def, Backend* out,
                           std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--backend", &malformed);
  if (malformed) {
    *err = "--backend requires a value (expected --backend=sim|rt|net)";
    return false;
  }
  if (value == nullptr) return true;
  if (!parse_backend(value, out)) {
    *err = std::string("unknown backend '") + value +
           "' (expected --backend=sim|rt|net)";
    return false;
  }
  return true;
}

Backend backend_from_args(int argc, char** argv, Backend def) {
  Backend b = def;
  std::string err;
  if (!try_backend_from_args(argc, argv, def, &b, &err)) usage_exit(err.c_str());
  return b;
}

std::int32_t groups_from_args(int argc, char** argv, std::int32_t def) {
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--groups", &malformed);
  if (malformed) usage_exit("--groups requires a value (expected --groups=N)");
  if (value == nullptr) return def;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 1 ||
      n > std::numeric_limits<std::int32_t>::max()) {
    std::fprintf(stderr, "bad group count '%s' (expected --groups=N, N >= 1)\n", value);
    std::exit(2);
  }
  return static_cast<std::int32_t>(n);
}

Placement placement_from_args(int argc, char** argv, Placement def) {
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--placement", &malformed);
  if (malformed) {
    usage_exit("--placement requires a value (group-major|interleaved|colocated)");
  }
  if (value == nullptr) return def;
  Placement p = def;
  if (!parse_placement(value, &p)) {
    std::fprintf(stderr,
                 "unknown placement '%s' (expected group-major|interleaved|colocated)\n",
                 value);
    std::exit(2);
  }
  return p;
}

ShardSpec shard_from_args(int argc, char** argv, const ClusterSpec& base) {
  return ShardSpec(base, groups_from_args(argc, argv), placement_from_args(argc, argv));
}

bool try_batch_from_args(int argc, char** argv, std::int32_t def, std::int32_t* out,
                         std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--batch", &malformed);
  if (malformed) {
    *err = "--batch requires a value (expected --batch=N, 1 <= N <= " +
           std::to_string(consensus::kMaxCommandsPerBatch) + ")";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 1 || n > consensus::kMaxCommandsPerBatch) {
    *err = std::string("bad batch size '") + value + "' (expected --batch=N, 1 <= N <= " +
           std::to_string(consensus::kMaxCommandsPerBatch) + ")";
    return false;
  }
  *out = static_cast<std::int32_t>(n);
  return true;
}

std::int32_t batch_from_args(int argc, char** argv, std::int32_t def) {
  std::int32_t n = def;
  std::string err;
  if (!try_batch_from_args(argc, argv, def, &n, &err)) usage_exit(err.c_str());
  return n;
}

bool try_batch_flush_from_args(int argc, char** argv, Nanos def, Nanos* out,
                               std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--batch-flush-us", &malformed);
  if (malformed) {
    *err = "--batch-flush-us requires a value (expected --batch-flush-us=T, T >= 0)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long long t = std::strtoll(value, &end, 10);
  // Bounded so the microsecond->nanosecond multiply cannot overflow (and
  // strtoll's silent clamp to LLONG_MAX cannot sneak through): an hour is
  // far beyond any sane flush timer.
  constexpr long long kMaxFlushUs = 3600LL * 1000 * 1000;
  if (end == value || *end != '\0' || t < 0 || t > kMaxFlushUs) {
    *err = std::string("bad flush timeout '") + value +
           "' (expected --batch-flush-us=T microseconds, 0 <= T <= 3600000000)";
    return false;
  }
  *out = static_cast<Nanos>(t) * kMicrosecond;
  return true;
}

Nanos batch_flush_from_args(int argc, char** argv, Nanos def) {
  Nanos t = def;
  std::string err;
  if (!try_batch_flush_from_args(argc, argv, def, &t, &err)) usage_exit(err.c_str());
  return t;
}

bool try_flush_policy_from_args(int argc, char** argv,
                                consensus::BatchPolicy::FlushMode def,
                                consensus::BatchPolicy::FlushMode* out,
                                std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--flush-policy", &malformed);
  if (malformed) {
    *err = "--flush-policy requires a value (expected --flush-policy=fixed|adaptive)";
    return false;
  }
  if (value == nullptr) return true;
  if (std::strcmp(value, "fixed") == 0) {
    *out = consensus::BatchPolicy::FlushMode::kFixed;
    return true;
  }
  if (std::strcmp(value, "adaptive") == 0) {
    *out = consensus::BatchPolicy::FlushMode::kAdaptive;
    return true;
  }
  *err = std::string("unknown flush policy '") + value +
         "' (expected --flush-policy=fixed|adaptive)";
  return false;
}

consensus::BatchPolicy::FlushMode flush_policy_from_args(
    int argc, char** argv, consensus::BatchPolicy::FlushMode def) {
  consensus::BatchPolicy::FlushMode m = def;
  std::string err;
  if (!try_flush_policy_from_args(argc, argv, def, &m, &err)) usage_exit(err.c_str());
  return m;
}

consensus::BatchPolicy batch_policy_from_args(int argc, char** argv) {
  consensus::BatchPolicy policy;
  policy.max_commands = batch_from_args(argc, argv);
  policy.flush_after = batch_flush_from_args(argc, argv);
  policy.flush_mode = flush_policy_from_args(argc, argv);
  return policy;
}

bool try_client_coalesce_from_args(int argc, char** argv, std::int32_t def,
                                   std::int32_t* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--client-coalesce", &malformed);
  if (malformed) {
    *err = "--client-coalesce requires a value (expected --client-coalesce=N, 1 <= N <= " +
           std::to_string(consensus::kMaxClientBatchCommands) + ")";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 1 || n > consensus::kMaxClientBatchCommands) {
    *err = std::string("bad coalesce window '") + value +
           "' (expected --client-coalesce=N, 1 <= N <= " +
           std::to_string(consensus::kMaxClientBatchCommands) + ")";
    return false;
  }
  *out = static_cast<std::int32_t>(n);
  return true;
}

std::int32_t client_coalesce_from_args(int argc, char** argv, std::int32_t def) {
  std::int32_t n = def;
  std::string err;
  if (!try_client_coalesce_from_args(argc, argv, def, &n, &err)) usage_exit(err.c_str());
  return n;
}

bool try_txn_mix_from_args(int argc, char** argv, double def, double* out,
                          std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--txn-mix", &malformed);
  if (malformed) {
    *err = "--txn-mix requires a value (expected --txn-mix=P, 0 <= P <= 1)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const double p = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(p >= 0.0) || !(p <= 1.0)) {
    *err = std::string("bad txn mix '") + value +
           "' (expected --txn-mix=P, a fraction 0 <= P <= 1)";
    return false;
  }
  *out = p;
  return true;
}

double txn_mix_from_args(int argc, char** argv, double def) {
  double p = def;
  std::string err;
  if (!try_txn_mix_from_args(argc, argv, def, &p, &err)) usage_exit(err.c_str());
  return p;
}

bool try_read_mix_from_args(int argc, char** argv, double def, double* out,
                            std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--read-mix", &malformed);
  if (malformed) {
    *err = "--read-mix requires a value (expected --read-mix=P, 0 <= P <= 1)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const double p = std::strtod(value, &end);
  // !(p >= 0) also rejects NaN, which every ordered comparison fails.
  if (end == value || *end != '\0' || !(p >= 0.0) || !(p <= 1.0)) {
    *err = std::string("bad read mix '") + value +
           "' (expected --read-mix=P, a fraction 0 <= P <= 1)";
    return false;
  }
  *out = p;
  return true;
}

double read_mix_from_args(int argc, char** argv, double def) {
  double p = def;
  std::string err;
  if (!try_read_mix_from_args(argc, argv, def, &p, &err)) usage_exit(err.c_str());
  return p;
}

bool try_lease_ms_from_args(int argc, char** argv, Nanos def, Nanos* out,
                            std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--lease-ms", &malformed);
  if (malformed) {
    *err = "--lease-ms requires a value (expected --lease-ms=T, T >= 0)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long long t = std::strtoll(value, &end, 10);
  // Bounded so the millisecond->nanosecond multiply cannot overflow (and a
  // strtoll clamp to LLONG_MAX cannot sneak through); an hour-long lease is
  // far beyond any sane failover budget.
  constexpr long long kMaxLeaseMs = 3600LL * 1000;
  if (end == value || *end != '\0' || t < 0 || t > kMaxLeaseMs) {
    *err = std::string("bad lease duration '") + value +
           "' (expected --lease-ms=T milliseconds, 0 <= T <= 3600000; 0 = off)";
    return false;
  }
  *out = static_cast<Nanos>(t) * kMillisecond;
  return true;
}

Nanos lease_ms_from_args(int argc, char** argv, Nanos def) {
  Nanos t = def;
  std::string err;
  if (!try_lease_ms_from_args(argc, argv, def, &t, &err)) usage_exit(err.c_str());
  return t;
}

bool try_sessions_from_args(int argc, char** argv, std::int64_t def,
                            std::int64_t* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--sessions", &malformed);
  if (malformed) {
    *err = "--sessions requires a value (expected --sessions=N, 1 <= N <= 1000000)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long long n = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || n < 1 || n > 1000000) {
    *err = std::string("bad session count '") + value +
           "' (expected --sessions=N, 1 <= N <= 1000000)";
    return false;
  }
  *out = static_cast<std::int64_t>(n);
  return true;
}

std::int64_t sessions_from_args(int argc, char** argv, std::int64_t def) {
  std::int64_t n = def;
  std::string err;
  if (!try_sessions_from_args(argc, argv, def, &n, &err)) usage_exit(err.c_str());
  return n;
}

bool try_target_rate_from_args(int argc, char** argv, double def, double* out,
                               std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--target-rate", &malformed);
  if (malformed) {
    *err = "--target-rate requires a value (expected --target-rate=R ops/sec, "
           "0 <= R <= 1e9; 0 = closed loop)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const double r = std::strtod(value, &end);
  // !(r >= 0) also rejects NaN; the ceiling keeps nanosecond gap math sane
  // (1e9 ops/sec is already a 1 ns inter-arrival).
  if (end == value || *end != '\0' || !(r >= 0.0) || !(r <= 1e9)) {
    *err = std::string("bad target rate '") + value +
           "' (expected --target-rate=R ops/sec, 0 <= R <= 1e9; 0 = closed loop)";
    return false;
  }
  *out = r;
  return true;
}

double target_rate_from_args(int argc, char** argv, double def) {
  double r = def;
  std::string err;
  if (!try_target_rate_from_args(argc, argv, def, &r, &err)) usage_exit(err.c_str());
  return r;
}

bool try_zipf_from_args(int argc, char** argv, double def, double* out,
                        std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--zipf", &malformed);
  if (malformed) {
    *err = "--zipf requires a value (expected --zipf=T, 0 <= T < 1)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const double t = std::strtod(value, &end);
  // The zeta-series formula diverges at theta = 1, so the bound is strict.
  if (end == value || *end != '\0' || !(t >= 0.0) || !(t < 1.0)) {
    *err = std::string("bad zipf theta '") + value +
           "' (expected --zipf=T, 0 <= T < 1; 0 = uniform)";
    return false;
  }
  *out = t;
  return true;
}

double zipf_from_args(int argc, char** argv, double def) {
  double t = def;
  std::string err;
  if (!try_zipf_from_args(argc, argv, def, &t, &err)) usage_exit(err.c_str());
  return t;
}

bool try_workload_from_args(int argc, char** argv, char def, char* out,
                            std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--workload", &malformed);
  if (malformed) {
    *err = "--workload requires a value (expected --workload=A..F)";
    return false;
  }
  if (value == nullptr) return true;
  if (value[0] < 'A' || value[0] > 'F' || value[1] != '\0') {
    *err = std::string("unknown workload preset '") + value +
           "' (expected --workload=A..F, the YCSB presets)";
    return false;
  }
  *out = value[0];
  return true;
}

char workload_from_args(int argc, char** argv, char def) {
  char w = def;
  std::string err;
  if (!try_workload_from_args(argc, argv, def, &w, &err)) usage_exit(err.c_str());
  return w;
}

bool try_value_bytes_from_args(int argc, char** argv, std::int32_t def,
                               std::int32_t* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--value-bytes", &malformed);
  if (malformed) {
    *err = "--value-bytes requires a value (expected --value-bytes=V, 1 <= V <= 128)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  // 128 = 8 fragment commands of 16 payload bytes, the widest record one
  // client batch frame can carry (harness/workload.hpp).
  if (end == value || *end != '\0' || v < 1 || v > 128) {
    *err = std::string("bad value size '") + value +
           "' (expected --value-bytes=V, 1 <= V <= 128)";
    return false;
  }
  *out = static_cast<std::int32_t>(v);
  return true;
}

std::int32_t value_bytes_from_args(int argc, char** argv, std::int32_t def) {
  std::int32_t v = def;
  std::string err;
  if (!try_value_bytes_from_args(argc, argv, def, &v, &err)) usage_exit(err.c_str());
  return v;
}

bool try_net_port_base_from_args(int argc, char** argv, std::int32_t def,
                                 std::int32_t* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--net-port-base", &malformed);
  if (malformed) {
    *err = "--net-port-base requires a value (expected --net-port-base=P, "
           "0 <= P <= 65535; 0 = ephemeral)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long p = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || p < 0 || p > 65535) {
    *err = std::string("bad net port base '") + value +
           "' (expected --net-port-base=P, 0 <= P <= 65535; 0 = ephemeral)";
    return false;
  }
  *out = static_cast<std::int32_t>(p);
  return true;
}

std::int32_t net_port_base_from_args(int argc, char** argv, std::int32_t def) {
  std::int32_t p = def;
  std::string err;
  if (!try_net_port_base_from_args(argc, argv, def, &p, &err)) usage_exit(err.c_str());
  return p;
}

bool try_net_registry_from_args(int argc, char** argv, const std::string& def,
                                std::string* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--net-registry", &malformed);
  if (malformed) {
    *err = "--net-registry requires a value (expected --net-registry=host:port)";
    return false;
  }
  if (value == nullptr) return true;
  net::Endpoint ep;
  if (!net::parse_endpoint(value, &ep)) {
    *err = std::string("bad registry endpoint '") + value +
           "' (expected --net-registry=host:port)";
    return false;
  }
  *out = value;
  return true;
}

std::string net_registry_from_args(int argc, char** argv, const std::string& def) {
  std::string at = def;
  std::string err;
  if (!try_net_registry_from_args(argc, argv, def, &at, &err)) usage_exit(err.c_str());
  return at;
}

bool try_net_io_threads_from_args(int argc, char** argv, std::int32_t def,
                                  std::int32_t* out, std::string* err) {
  *out = def;
  bool malformed = false;
  const char* value = flag_value(argc, argv, "--net-io-threads", &malformed);
  if (malformed) {
    *err = "--net-io-threads requires a value (expected --net-io-threads=N, "
           "0 <= N <= 64; 0 = nodes flush their own sockets)";
    return false;
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 0 || n > 64) {
    *err = std::string("bad io-thread count '") + value +
           "' (expected --net-io-threads=N, 0 <= N <= 64; 0 = nodes flush "
           "their own sockets)";
    return false;
  }
  *out = static_cast<std::int32_t>(n);
  return true;
}

std::int32_t net_io_threads_from_args(int argc, char** argv, std::int32_t def) {
  std::int32_t n = def;
  std::string err;
  if (!try_net_io_threads_from_args(argc, argv, def, &n, &err)) usage_exit(err.c_str());
  return n;
}

core::NetParams net_params_from_args(int argc, char** argv) {
  core::NetParams net;
  net.port_base = static_cast<std::uint16_t>(net_port_base_from_args(argc, argv));
  net.registry = net_registry_from_args(argc, argv);
  net.io_threads = net_io_threads_from_args(argc, argv);
  return net;
}

const char* usage_text() {
  return
      "harness flags (all binaries in bench/ and examples/ accept the subset\n"
      "they consume; anything else exits 2):\n"
      "  --backend=sim|rt|net      runtime: deterministic simulator, pinned\n"
      "                            threads, or a TCP socket mesh\n"
      "  --groups=N                consensus groups to shard over (N >= 1)\n"
      "  --placement=group-major|interleaved|colocated\n"
      "                            how groups map onto transport nodes\n"
      "  --batch=N                 commands per agreement instance (1 <= N <= 64)\n"
      "  --batch-flush-us=T        max microseconds a partial batch waits (T >= 0)\n"
      "  --flush-policy=fixed|adaptive\n"
      "                            partial-batch hold rule: full timer, or flush\n"
      "                            early when arrivals look sparse\n"
      "  --client-coalesce=N       commands per client-side kClientCmdBatch frame\n"
      "                            (1 <= N <= 8; 1 = legacy per-command frames)\n"
      "  --txn-mix=P               fraction of ops issued as cross-shard\n"
      "                            transactions (0 <= P <= 1)\n"
      "  --read-mix=P              fraction of workload ops issued as reads\n"
      "                            (0 <= P <= 1)\n"
      "  --lease-ms=T              leader lease duration in milliseconds\n"
      "                            (T >= 0; 0 = leases off, reads replicate)\n"
      "  --sessions=N              logical open-loop sessions to emulate\n"
      "                            (1 <= N <= 1000000)\n"
      "  --target-rate=R           aggregate open-loop arrival rate in ops/sec\n"
      "                            (0 <= R <= 1e9; 0 = closed loop)\n"
      "  --zipf=T                  zipfian key-skew theta (0 <= T < 1; 0 = uniform)\n"
      "  --workload=A..F           YCSB preset selecting the op mix\n"
      "  --value-bytes=V           record payload size in bytes (1 <= V <= 128)\n"
      "  --net-port-base=P         net backend: node i listens on port P + i\n"
      "                            (0 <= P <= 65535; 0 = ephemeral ports)\n"
      "  --net-registry=host:port  net backend: where the bootstrap registry\n"
      "                            binds (default: loopback, ephemeral port)\n"
      "  --net-io-threads=N        net backend: dedicated socket-flusher threads\n"
      "                            (0 <= N <= 64; 0 = nodes flush their own)\n"
      "  --sweep-diff              also run the spec on the other backends and\n"
      "                            diff the result shapes\n"
      "  --help                    print this text and exit\n"
      "Flags take --name=value or --name value form; the last occurrence wins.\n";
}

namespace {

// Walks argv once; calls on_positional for every non-flag argument and
// exits(2) on a dash-prefixed argument that is not a harness flag, a flag
// missing its space-form value, or (with a non-empty `consumed` list) a
// harness flag the binary never reads.
template <typename Fn>
void scan_args(int argc, char** argv, std::initializer_list<const char*> consumed,
               Fn on_positional) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-') {
      on_positional(arg);
      continue;
    }
    if (std::strcmp(arg, "--help") == 0) {
      std::fputs(usage_text(), stdout);
      std::exit(0);
    }
    bool known = false;
    for (const char* flag : kBoolFlags) {
      if (std::strcmp(arg, flag) != 0) continue;
      if (consumed.size() > 0 &&
          std::find_if(consumed.begin(), consumed.end(), [flag](const char* c) {
            return std::strcmp(c, flag) == 0;
          }) == consumed.end()) {
        std::fprintf(stderr, "flag '%s' is not used by this binary\n", flag);
        std::exit(2);
      }
      known = true;
      break;
    }
    for (const char* flag : kValueFlags) {
      if (known) break;
      const FlagForm form = flag_form(arg, flag);
      if (form == FlagForm::kNone) continue;
      if (consumed.size() > 0 &&
          std::find_if(consumed.begin(), consumed.end(), [flag](const char* c) {
            return std::strcmp(c, flag) == 0;
          }) == consumed.end()) {
        std::fprintf(stderr, "flag '%s' is not used by this binary\n", flag);
        std::exit(2);
      }
      if (form == FlagForm::kSpace) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value\n", flag);
          std::exit(2);
        }
        ++i;  // skip its value
      }
      known = true;
      break;
    }
    if (!known) {
      std::fprintf(stderr,
                   "unknown flag '%s' (harness flags: --backend, --groups, --placement, "
                   "--batch, --batch-flush-us, --flush-policy, --client-coalesce, "
                   "--txn-mix, --read-mix, --lease-ms, --sessions, --target-rate, "
                   "--zipf, --workload, --value-bytes, --net-port-base, "
                   "--net-registry, --net-io-threads, --sweep-diff, --help)\n",
                   arg);
      std::exit(2);
    }
  }
}

}  // namespace

std::vector<std::string> positional_args(int argc, char** argv) {
  std::vector<std::string> out;
  scan_args(argc, argv, {}, [&out](const char* arg) { out.emplace_back(arg); });
  return out;
}

void require_harness_flags_only(int argc, char** argv,
                                std::initializer_list<const char*> consumed) {
  scan_args(argc, argv, consumed, [](const char*) {});
}

RunResult run(Backend b, const ShardSpec& shard, const RunPlan& plan) {
  switch (b) {
    case Backend::kSim:
      return run_sim_backend(shard, plan);
    case Backend::kRt:
      return run_rt_backend(shard, plan);
    case Backend::kNet:
      return run_net_backend(shard, plan);
  }
  CI_CHECK_MSG(false, "unreachable backend");
}

RunResult run(Backend b, const ClusterSpec& spec, const RunPlan& plan) {
  return run(b, ShardSpec(spec), plan);
}

bool sweep_diff_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-diff") == 0) return true;
  }
  return false;
}

namespace {

// One formatted complaint; keeps the shape checks below readable.
void mismatch(std::vector<std::string>* out, const std::string& what) {
  out->push_back(what);
}

}  // namespace

SweepDiffN sweep_diff(const std::vector<Backend>& backends, const ShardSpec& shard,
                      const RunPlan& plan) {
  CI_CHECK_MSG(!backends.empty(), "sweep_diff needs at least one backend");
  for (std::size_t i = 0; i < backends.size(); ++i) {
    for (std::size_t j = i + 1; j < backends.size(); ++j) {
      CI_CHECK_MSG(backends[i] != backends[j], "duplicate backend in sweep_diff list");
    }
  }

  SweepDiffN d;
  // One logical spec, one runtime per requested backend. Each side gets its
  // backend's timeout profile (virtual microsecond timers vs real
  // oversubscribed threads/sockets) — the same adaptation every
  // cross-backend comparison in the repo makes.
  for (const Backend b : backends) {
    ShardSpec side = shard;
    side.base.apply_backend_profile(b);
    d.runs.push_back({b, run(b, side, plan)});
  }
  auto* m = &d.mismatches;

  const std::uint64_t per_client = shard.base.workload.requests_per_client;
  for (const BackendRun& r : d.runs) {
    const std::string who = core::backend_name(r.backend);

    // Safety shape: agreement must hold on every backend, full stop.
    if (!r.result.consistent) {
      mismatch(m, who + " run inconsistent (cross-replica disagreement)");
    }

    // Liveness shape: every backend makes progress on the same spec.
    if (r.result.committed == 0) mismatch(m, who + " committed nothing");

    // Quota shape: a closed-loop request quota must complete on every side —
    // the one throughput-independent count the backends can agree on exactly.
    if (per_client > 0) {
      const std::uint64_t quota = per_client *
                                  static_cast<std::uint64_t>(shard.base.client_count()) *
                                  static_cast<std::uint64_t>(shard.groups);
      if (r.result.committed != quota) {
        mismatch(m, who + " committed " + std::to_string(r.result.committed) +
                        " of a " + std::to_string(quota) + "-request quota");
      }
    }
  }

  // Amortization shape: messages per committed op is a structural property
  // of the protocol/batch configuration, not of the clock — every backend
  // must land within an order of magnitude of the FIRST one (by convention
  // sim, the deterministic reference; rt/net retries under an oversubscribed
  // machine account for the slack — trust shapes, not numbers).
  const BackendRun& ref = d.runs.front();
  if (ref.result.committed > 0) {
    const double ref_mpo = static_cast<double>(ref.result.total_messages) /
                           static_cast<double>(ref.result.committed);
    for (std::size_t i = 1; i < d.runs.size(); ++i) {
      const BackendRun& r = d.runs[i];
      if (r.result.committed == 0) continue;
      const double mpo = static_cast<double>(r.result.total_messages) /
                         static_cast<double>(r.result.committed);
      if (ref_mpo > 0 && mpo > 0 && (mpo / ref_mpo > 10.0 || ref_mpo / mpo > 10.0)) {
        mismatch(m, std::string("msgs/op diverged: ") + core::backend_name(ref.backend) +
                        " " + std::to_string(ref_mpo) + " vs " +
                        core::backend_name(r.backend) + " " + std::to_string(mpo));
      }
    }
  }
  return d;
}

SweepDiff sweep_diff(const ShardSpec& shard, const RunPlan& plan) {
  SweepDiffN n = sweep_diff({Backend::kSim, Backend::kRt}, shard, plan);
  SweepDiff d;
  d.sim = n.runs[0].result;
  d.rt = n.runs[1].result;
  d.mismatches = std::move(n.mismatches);
  return d;
}

}  // namespace ci::harness
