#include "harness/cluster_harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rt/rt_cluster.hpp"
#include "sim/sim_cluster.hpp"

namespace ci::harness {
namespace {

RunResult run_sim_backend(const ClusterSpec& spec, const RunPlan& plan) {
  sim::SimCluster c(spec);
  c.run(plan.warmup);
  const std::uint64_t committed_warm = c.total_committed();
  const std::uint64_t issued_warm = c.total_issued();
  const std::uint64_t local_reads_warm = c.deployment().total_local_reads();
  const std::uint64_t messages_warm = c.net().total_messages();
  c.run(plan.warmup + plan.duration);
  const Nanos measured = std::max<Nanos>(c.net().now() - plan.warmup, 1);
  RunResult res = c.result(measured);
  res.committed -= committed_warm;
  res.issued -= issued_warm;
  res.local_reads -= local_reads_warm;
  res.total_messages -= messages_warm;
  return res;
}

RunResult run_rt_backend(const ClusterSpec& spec, const RunPlan& plan) {
  rt::RtCluster c(spec);
  c.start();
  const Nanos t0 = now_nanos();
  c.drive_until(t0 + plan.warmup);
  const std::uint64_t committed_warm = c.live_committed();
  const std::uint64_t issued_warm = c.live_issued();
  const std::uint64_t local_reads_warm = c.live_local_reads();
  const std::uint64_t messages_warm = c.live_messages();
  const Nanos measure_start = now_nanos();
  c.drive_until(t0 + std::min(plan.warmup + plan.duration, plan.max_wall));
  const Nanos measured = std::max<Nanos>(now_nanos() - measure_start, 1);
  c.stop();
  RunResult res = c.collect();
  res.committed -= committed_warm;
  res.issued -= issued_warm;
  res.local_reads -= local_reads_warm;
  res.total_messages -= messages_warm;
  res.duration = measured;
  return res;
}

}  // namespace

bool parse_backend(const char* s, Backend* out) {
  if (std::strcmp(s, "sim") == 0) {
    *out = Backend::kSim;
    return true;
  }
  if (std::strcmp(s, "rt") == 0) {
    *out = Backend::kRt;
    return true;
  }
  return false;
}

Backend backend_from_args(int argc, char** argv, Backend def) {
  Backend b = def;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--backend=", 10) == 0) {
      value = arg + 10;
    } else if (std::strcmp(arg, "--backend") == 0 && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    if (!parse_backend(value, &b)) {
      std::fprintf(stderr, "unknown backend '%s' (expected --backend=sim|rt)\n", value);
      std::exit(2);
    }
  }
  return b;
}

RunResult run(Backend b, const ClusterSpec& spec, const RunPlan& plan) {
  return b == Backend::kSim ? run_sim_backend(spec, plan) : run_rt_backend(spec, plan);
}

}  // namespace ci::harness
