// The open-loop workload engine (DESIGN.md §1g): drives a ServiceClient the
// way a real population of clients would — arrivals happen when the outside
// world decides, not when the service finishes the previous request.
//
// Closed-loop benches (a fixed window of always-pending requests) measure
// peak throughput honestly but LIE about tail latency under load: when the
// service stalls, a closed loop stops offering work, so the stall never
// shows up in the recorded percentiles (coordinated omission). Here the
// arrival schedule is generated independently of service progress — Poisson
// or uniformly paced at an aggregate target rate — and every operation's
// latency is measured from its SCHEDULED arrival instant to the engine's
// reply timestamp (SubmitHandle::completed_at). An op issued late because
// the pipeline was full is charged the queueing delay it actually suffered.
//
// Scale model: `sessions` is the number of LOGICAL sessions (who is asking),
// multiplexed over the ServiceClient's physical sessions ("conduits" — each
// one transport node + per-group async engines). The aggregate of N Poisson
// sources of rate r/N is exactly one Poisson source of rate r with each
// arrival assigned to a uniformly random session, so a single O(1)-per-
// arrival generator emulates a million-session population without a
// million timer wheels. Per-session state is one pooled counter array,
// allocated once up front; the steady-state arrival->issue->reap loop
// performs no heap allocation (pinned by the alloc-guard suite).
//
// Operation shapes follow the YCSB presets A–F (WorkloadProfile::preset):
// zipfian hot keys (common/zipf.hpp), read/update/insert/scan/read-modify-
// write mixes, plus a cross-shard transaction fraction for custom mixes.
// Values wider than one command's 16 payload bytes are modeled as
// ceil(value_bytes/16) fragment commands submitted together; the op
// completes when the last fragment commits. Transactions only expose a
// blocking commit today, so a txn arrival is waited inline — arrivals
// scheduled behind it are issued late, and (by the honest-latency rule
// above) that delay is charged to them rather than hidden.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "consensus/types.hpp"

namespace ci::client {
class ServiceClient;
}

namespace ci::harness {

// How inter-arrival gaps are drawn: kPoisson draws exponential gaps (a
// memoryless aggregate, the honest default); kUniform paces arrivals on an
// exact 1/rate grid (useful for pacing-accuracy tests).
enum class Pacing : std::uint8_t { kPoisson, kUniform };

// What one arrival asks the service to do.
enum class WlOp : std::uint8_t {
  kRead,    // read every fragment of one record
  kUpdate,  // overwrite every fragment of one record
  kInsert,  // append a fresh record past the initial key space
  kScan,    // short ordered run of reads (YCSB E), 1..8 records
  kRmw,     // read fragment 0, then overwrite the record (YCSB F)
  kTxn,     // two-key cross-shard transaction, committed inline
};

// Fractions must sum to <= 1; the remainder is read. `latest_reads` skews
// reads toward recently inserted records (YCSB D) instead of the scrambled
// zipfian space.
struct WorkloadMix {
  double update = 0.0;
  double insert = 0.0;
  double scan = 0.0;
  double rmw = 0.0;
  double txn = 0.0;
  bool latest_reads = false;
};

struct WorkloadProfile {
  std::int64_t sessions = 1;       // logical sessions (1 .. 1e6)
  double target_rate = 0.0;        // aggregate ops/sec; open loop requires > 0
  Pacing pacing = Pacing::kPoisson;
  double zipf_theta = 0.99;        // 0 = uniform; must be < 1
  std::uint64_t key_space = 100000;
  WorkloadMix mix;                 // default: 100% zipfian reads (YCSB C)
  std::int32_t value_bytes = 8;    // record payload, 1..128 (1..8 fragments)
  std::int32_t value_bytes_max = 0;  // > value_bytes: uniform size in range
  std::uint64_t seed = 1;

  // The YCSB preset table: A 50/50 read/update, B 95/5 read/update,
  // C read-only, D 95/5 latest-read/insert, E 95/5 scan/insert,
  // F 50/50 read/read-modify-write. Everything else keeps its default.
  static WorkloadProfile preset(char workload);
};

// One generated arrival. `at` is the scheduled instant as an offset from
// workload start; latency is measured from it regardless of when the op was
// actually issued.
struct Arrival {
  Nanos at = 0;
  std::uint32_t session = 0;
  WlOp op = WlOp::kRead;
  std::uint64_t key = 0;
  std::uint64_t key2 = 0;   // second txn key
  std::uint64_t value = 0;  // written value (updates/inserts/rmw/txn)
  std::uint8_t parts = 1;   // record fragments, or scan length for kScan
};

// The deterministic O(1)-per-arrival generator: same profile + seed yields
// the same arrival sequence on any backend. Exposed separately from the
// drivers so tests can pin determinism and distribution shape without a
// cluster.
class ArrivalGen {
 public:
  explicit ArrivalGen(const WorkloadProfile& profile);

  Arrival next();

  const WorkloadProfile& profile() const { return profile_; }

 private:
  std::uint8_t draw_parts();

  WorkloadProfile profile_;
  Rng rng_;
  Zipf zipf_;
  Nanos clock_ = 0;          // last scheduled instant
  std::uint64_t inserted_ = 0;  // records appended past key_space so far
  // Cumulative mix thresholds (update, insert, scan, rmw, txn), in [0,1].
  std::array<double, 5> thresholds_{};
};

// What a run measured. Latency is nanoseconds from scheduled arrival to
// engine reply (open loop) or from issue to reply (closed loop).
struct WorkloadResult {
  std::int64_t issued = 0;
  std::int64_t completed = 0;
  Nanos duration = 0;        // virtual (sim) or wall (rt) elapsed time
  double offered_rate = 0;   // ops/sec the schedule asked for (0 = closed)
  Histogram latency;
  // Ops issued per logical session; sums to `issued`. Sized `sessions`.
  std::vector<std::uint32_t> session_ops;

  double achieved_rate() const {
    return duration <= 0 ? 0.0
                         : static_cast<double>(completed) * 1e9 /
                               static_cast<double>(duration);
  }
};

// Runs `ops` open-loop arrivals against `svc` at profile.target_rate (> 0
// required), then drains everything in flight. Logical session s is carried
// by conduit s % svc.session_count(). Under sim the driver advances virtual
// time to each scheduled instant; under rt it spins on the monotonic clock.
WorkloadResult run_open_loop(client::ServiceClient& svc,
                             const WorkloadProfile& profile, std::int64_t ops);

// Peak-throughput companion: ignores the arrival schedule and keeps up to
// `depth` operations in flight per conduit (the classic closed loop), using
// the same generator for keys and op mix. target_rate is ignored.
WorkloadResult run_closed_loop(client::ServiceClient& svc,
                               const WorkloadProfile& profile, std::int64_t ops,
                               std::int32_t depth);

}  // namespace ci::harness
