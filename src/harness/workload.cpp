#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "client/service_client.hpp"
#include "common/check.hpp"

namespace ci::harness {

using consensus::Op;

namespace {

constexpr std::int32_t kMaxParts = consensus::kMaxClientBatchCommands;
// One Command carries 16 payload bytes (key + value), so a record of V
// bytes is ceil(V/16) fragment commands.
constexpr std::int32_t kFragmentBytes = 16;
// Fragment j of a record lives at key + j * stride, far past any initial
// key space, so fragments of different records never collide.
constexpr std::uint64_t kFragmentStride = 1ull << 40;

std::uint64_t fragment_key(std::uint64_t key, std::uint8_t j) {
  return key + static_cast<std::uint64_t>(j) * kFragmentStride;
}

}  // namespace

WorkloadProfile WorkloadProfile::preset(char workload) {
  WorkloadProfile p;
  switch (workload) {
    case 'A': p.mix.update = 0.5; break;
    case 'B': p.mix.update = 0.05; break;
    case 'C': break;  // read-only is the default mix
    case 'D': p.mix.insert = 0.05; p.mix.latest_reads = true; break;
    case 'E': p.mix.insert = 0.05; p.mix.scan = 0.95; break;
    case 'F': p.mix.rmw = 0.5; break;
    default: CI_CHECK_MSG(false, "unknown YCSB preset (expected A..F)");
  }
  return p;
}

ArrivalGen::ArrivalGen(const WorkloadProfile& profile)
    : profile_(profile), rng_(profile.seed),
      zipf_(profile.key_space, profile.zipf_theta) {
  CI_CHECK_MSG(profile_.sessions >= 1 && profile_.sessions <= 1000000,
               "sessions out of range");
  CI_CHECK(profile_.key_space >= 1);
  CI_CHECK(profile_.value_bytes >= 1 &&
           profile_.value_bytes <= kMaxParts * kFragmentBytes);
  CI_CHECK(profile_.value_bytes_max == 0 ||
           (profile_.value_bytes_max >= profile_.value_bytes &&
            profile_.value_bytes_max <= kMaxParts * kFragmentBytes));
  const WorkloadMix& m = profile_.mix;
  CI_CHECK(m.update >= 0 && m.insert >= 0 && m.scan >= 0 && m.rmw >= 0 &&
           m.txn >= 0);
  double c = m.update;
  thresholds_[0] = c;
  thresholds_[1] = (c += m.insert);
  thresholds_[2] = (c += m.scan);
  thresholds_[3] = (c += m.rmw);
  thresholds_[4] = (c += m.txn);
  CI_CHECK_MSG(c <= 1.0 + 1e-9, "workload mix fractions exceed 1");
}

std::uint8_t ArrivalGen::draw_parts() {
  std::int32_t bytes = profile_.value_bytes;
  if (profile_.value_bytes_max > profile_.value_bytes) {
    bytes += static_cast<std::int32_t>(rng_.next_below(static_cast<std::uint64_t>(
        profile_.value_bytes_max - profile_.value_bytes + 1)));
  }
  return static_cast<std::uint8_t>((bytes + kFragmentBytes - 1) / kFragmentBytes);
}

Arrival ArrivalGen::next() {
  Arrival a;
  // The schedule draw comes first and is independent of the op draw, so
  // pacing tests see the same arrival instants whatever the mix.
  if (profile_.target_rate > 0) {
    double gap_s;
    if (profile_.pacing == Pacing::kPoisson) {
      // Inverse-CDF exponential; 1-u keeps the argument away from log(0).
      gap_s = -std::log(1.0 - rng_.next_double()) / profile_.target_rate;
    } else {
      gap_s = 1.0 / profile_.target_rate;
    }
    clock_ += std::max<Nanos>(static_cast<Nanos>(gap_s * 1e9 + 0.5), 1);
  }
  a.at = clock_;
  a.session = static_cast<std::uint32_t>(
      rng_.next_below(static_cast<std::uint64_t>(profile_.sessions)));

  const double u = rng_.next_double();
  if (u < thresholds_[0]) a.op = WlOp::kUpdate;
  else if (u < thresholds_[1]) a.op = WlOp::kInsert;
  else if (u < thresholds_[2]) a.op = WlOp::kScan;
  else if (u < thresholds_[3]) a.op = WlOp::kRmw;
  else if (u < thresholds_[4]) a.op = WlOp::kTxn;
  else a.op = WlOp::kRead;

  switch (a.op) {
    case WlOp::kRead:
      if (profile_.mix.latest_reads && inserted_ > 0) {
        // YCSB "latest": rank r is the r-th newest record in the ordered
        // space (inserts land at the top), so recency order is meaningful
        // and the scramble does not apply.
        a.key = profile_.key_space + inserted_ - 1 - zipf_.next(rng_);
      } else {
        a.key = scrambled_zipf_key(zipf_.next(rng_), profile_.key_space);
      }
      a.parts = draw_parts();
      break;
    case WlOp::kUpdate:
    case WlOp::kRmw:
      a.key = scrambled_zipf_key(zipf_.next(rng_), profile_.key_space);
      a.value = rng_.next_u64();
      a.parts = draw_parts();
      break;
    case WlOp::kInsert:
      a.key = profile_.key_space + inserted_++;
      a.value = rng_.next_u64();
      a.parts = draw_parts();
      break;
    case WlOp::kScan: {
      // Scans walk the ORDERED space, so the start rank maps to the key
      // directly (no scramble), clamped so the run stays in range.
      std::uint64_t len =
          1 + rng_.next_below(static_cast<std::uint64_t>(kMaxParts));
      len = std::min<std::uint64_t>(len, profile_.key_space);
      std::uint64_t start = zipf_.next(rng_);
      start = std::min(start, profile_.key_space - len);
      a.key = start;
      a.parts = static_cast<std::uint8_t>(len);
      break;
    }
    case WlOp::kTxn:
      a.key = scrambled_zipf_key(zipf_.next(rng_), profile_.key_space);
      a.key2 = scrambled_zipf_key(zipf_.next(rng_), profile_.key_space);
      if (a.key2 == a.key) a.key2 = (a.key2 + 1) % profile_.key_space;
      a.value = rng_.next_u64();
      break;
  }
  return a;
}

namespace {

// One in-flight operation: up to kMaxParts completion handles plus the
// staged write half of a read-modify-write. Flights live in a fixed pool;
// the steady-state loop recycles them without touching the allocator.
struct Flight {
  Nanos scheduled = 0;       // absolute instant latency is measured from
  std::uint32_t session = 0;
  bool rmw_read_phase = false;  // true: h[0] is the read, write still staged
  std::uint8_t count = 0;    // live handles
  std::uint8_t checked = 0;  // prefix of handles already confirmed done
  std::uint8_t write_parts = 0;
  std::uint64_t write_key = 0;
  std::uint64_t write_value = 0;
  std::array<client::SubmitHandle, static_cast<std::size_t>(kMaxParts)> h;
};

class Driver {
 public:
  Driver(client::ServiceClient& svc, const WorkloadProfile& profile)
      : svc_(svc), gen_(profile), conduits_(svc.session_count()),
        // Every active flight pins at least one pipeline slot between
        // reaps, so the conduits' total pipeline capacity (plus the flight
        // being issued) bounds how many can be live at once.
        pool_(static_cast<std::size_t>(conduits_) *
                  static_cast<std::size_t>(svc.num_groups()) *
                  static_cast<std::size_t>(client::AsyncClientEngine::kMaxOutstanding) +
              16) {
    CI_CHECK(conduits_ >= 1);
    free_.reserve(pool_.size());
    active_.reserve(pool_.size());
    for (std::size_t i = pool_.size(); i > 0; --i) {
      free_.push_back(static_cast<std::int32_t>(i - 1));
    }
    result_.session_ops.assign(static_cast<std::size_t>(profile.sessions), 0);
  }

  WorkloadResult run_open(std::int64_t ops) {
    CI_CHECK_MSG(gen_.profile().target_rate > 0,
                 "open loop requires a target rate");
    start_ = now();
    for (std::int64_t i = 0; i < ops; ++i) {
      const Arrival a = gen_.next();
      advance_to(start_ + a.at);
      reap();
      issue(a, start_ + a.at);
    }
    drain();
    finish(gen_.profile().target_rate);
    return std::move(result_);
  }

  WorkloadResult run_closed(std::int64_t ops, std::int32_t depth) {
    CI_CHECK(depth >= 1);
    const std::int64_t window = static_cast<std::int64_t>(depth) * conduits_;
    start_ = now();
    while (result_.issued < ops) {
      if (static_cast<std::int64_t>(active_.size()) >= window) block_on_one();
      reap();
      while (result_.issued < ops &&
             static_cast<std::int64_t>(active_.size()) < window) {
        issue(gen_.next(), now());  // schedule ignored: issue = arrival
      }
    }
    drain();
    finish(0.0);
    return std::move(result_);
  }

 private:
  Nanos now() const {
    return svc_.backend() == core::Backend::kSim ? svc_.sim_now() : now_nanos();
  }

  // Open-loop pacing: run virtual time forward under sim; spin on the
  // monotonic clock under rt (sleeping would quantize the schedule).
  void advance_to(Nanos t) {
    if (svc_.backend() == core::Backend::kSim) {
      svc_.sim_run_until(t);
      return;
    }
    while (now_nanos() < t) {
    }
  }

  client::Session& conduit_of(std::uint32_t session) {
    return svc_.session(static_cast<std::int32_t>(
        session % static_cast<std::uint32_t>(conduits_)));
  }

  void issue(const Arrival& a, Nanos scheduled) {
    ++result_.issued;
    ++result_.session_ops[a.session];
    client::Session& conduit = conduit_of(a.session);
    if (a.op == WlOp::kTxn) {
      // Transactions only expose a blocking commit; the wait advances time
      // and later arrivals are charged the delay (header: honesty rule).
      conduit.txn().put(a.key, a.value).put(a.key2, a.value).commit().committed();
      result_.latency.record(std::max<Nanos>(now() - scheduled, 1));
      ++result_.completed;
      return;
    }
    Flight& f = acquire_flight();
    f.scheduled = scheduled;
    f.session = a.session;
    f.checked = 0;
    f.rmw_read_phase = false;
    f.count = a.parts;
    switch (a.op) {
      case WlOp::kRead:
        for (std::uint8_t j = 0; j < a.parts; ++j)
          f.h[j] = conduit.submit(Op::kRead, fragment_key(a.key, j), 0);
        break;
      case WlOp::kScan:
        for (std::uint8_t j = 0; j < a.parts; ++j)
          f.h[j] = conduit.submit(Op::kRead, a.key + j, 0);
        break;
      case WlOp::kUpdate:
      case WlOp::kInsert:
        for (std::uint8_t j = 0; j < a.parts; ++j)
          f.h[j] = conduit.submit(Op::kWrite, fragment_key(a.key, j), a.value);
        break;
      case WlOp::kRmw:
        f.rmw_read_phase = true;
        f.count = 1;
        f.write_key = a.key;
        f.write_value = a.value;
        f.write_parts = a.parts;
        f.h[0] = conduit.submit(Op::kRead, fragment_key(a.key, 0), 0);
        break;
      case WlOp::kTxn:
        break;  // handled above
    }
  }

  Flight& acquire_flight() {
    while (free_.empty()) {
      // Pool pressure: every slot still carries an uncommitted command, so
      // advance time until one lands.
      block_on_one();
      reap();
    }
    const std::int32_t idx = free_.back();
    free_.pop_back();
    active_.push_back(idx);
    return pool_[static_cast<std::size_t>(idx)];
  }

  // Sweep the active flights: advance each one's confirmed-done prefix,
  // launch staged read-modify-write writes, record and recycle the
  // finished. Completion time is the engine's reply stamp, not the sweep
  // instant, so reaping late never flatters the tail.
  void reap() {
    for (std::size_t i = 0; i < active_.size();) {
      Flight& f = pool_[static_cast<std::size_t>(active_[i])];
      while (f.checked < f.count && f.h[f.checked].done()) ++f.checked;
      if (f.checked < f.count) {
        ++i;
        continue;
      }
      if (f.rmw_read_phase) {
        // The read landed; the write half rides the same flight so the
        // recorded latency spans both round trips.
        f.rmw_read_phase = false;
        f.checked = 0;
        f.count = f.write_parts;
        client::Session& conduit = conduit_of(f.session);
        for (std::uint8_t j = 0; j < f.write_parts; ++j)
          f.h[j] = conduit.submit(Op::kWrite, fragment_key(f.write_key, j),
                                  f.write_value);
        ++i;
        continue;
      }
      Nanos done_at = 0;
      for (std::uint8_t j = 0; j < f.count; ++j)
        done_at = std::max(done_at, f.h[j].completed_at());
      result_.latency.record(std::max<Nanos>(done_at - f.scheduled, 1));
      ++result_.completed;
      // Drop the handles so the engine can recycle their completions.
      for (std::uint8_t j = 0; j < f.count; ++j) f.h[j] = client::SubmitHandle();
      free_.push_back(active_[i]);
      active_[i] = active_.back();
      active_.pop_back();
    }
  }

  // Block (pumping virtual time under sim) until SOME outstanding command
  // lands — any one will do, progress is what matters.
  void block_on_one() {
    if (active_.empty()) return;
    Flight& f = pool_[static_cast<std::size_t>(active_.front())];
    if (f.checked < f.count) f.h[f.checked].wait();
  }

  void drain() {
    while (!active_.empty()) {
      block_on_one();
      reap();
    }
  }

  void finish(double offered) {
    result_.duration = std::max<Nanos>(now() - start_, 1);
    result_.offered_rate = offered;
  }

  client::ServiceClient& svc_;
  ArrivalGen gen_;
  std::int32_t conduits_;
  std::vector<Flight> pool_;
  std::vector<std::int32_t> free_;    // recycled pool indices (LIFO)
  std::vector<std::int32_t> active_;  // live pool indices (order-free)
  WorkloadResult result_;
  Nanos start_ = 0;
};

}  // namespace

WorkloadResult run_open_loop(client::ServiceClient& svc,
                             const WorkloadProfile& profile, std::int64_t ops) {
  Driver d(svc, profile);
  return d.run_open(ops);
}

WorkloadResult run_closed_loop(client::ServiceClient& svc,
                               const WorkloadProfile& profile, std::int64_t ops,
                               std::int32_t depth) {
  Driver d(svc, profile);
  return d.run_closed(ops, depth);
}

}  // namespace ci::harness
