// Backend-agnostic cluster harness: run one ClusterSpec on either backend
// and get one RunResult back. This is the layer benches, examples, and the
// parity tests program against; `--backend={sim,rt}` selects the runtime at
// the command line.
#pragma once

#include "core/cluster_spec.hpp"
#include "core/run_result.hpp"

namespace ci::harness {

using core::Backend;
using core::ClusterSpec;
using core::RunResult;

// "sim" / "rt" -> Backend. Returns false on anything else.
bool parse_backend(const char* s, Backend* out);

// Scans argv for `--backend=sim|rt` (or `--backend sim`); returns `def`
// when the flag is absent. Prints usage and exits(2) on a bad value.
Backend backend_from_args(int argc, char** argv, Backend def = Backend::kSim);

// How to drive the run. Virtual time under sim, wall time under rt.
struct RunPlan {
  // Excluded from committed/issued/message counts (latency histograms span
  // the whole run on both backends).
  Nanos warmup = 0;
  // Measurement window. A request quota (workload.requests_per_client > 0)
  // may end the run earlier; the result's `duration` reports the window
  // actually measured.
  Nanos duration = 1 * kSecond;
  // Safety net for the rt backend (threads can't outrun a hung protocol the
  // way virtual time can).
  Nanos max_wall = 30 * kSecond;
};

// Builds the cluster on the chosen backend, runs the plan, tears it down.
RunResult run(Backend b, const ClusterSpec& spec, const RunPlan& plan);

}  // namespace ci::harness
