// Backend-agnostic cluster harness: run one ClusterSpec (or a sharded
// ShardSpec) on any backend and get one RunResult back. This is the
// layer benches, examples, and the parity tests program against;
// `--backend={sim,rt,net}`, `--groups=N` and `--placement=...` select the
// runtime and the sharding layout at the command line.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "core/cluster_spec.hpp"
#include "core/run_result.hpp"

namespace ci::harness {

using core::Backend;
using core::ClusterSpec;
using core::Placement;
using core::RunResult;
using core::ShardSpec;

// "sim" / "rt" / "net" -> Backend. Returns false on anything else.
bool parse_backend(const char* s, Backend* out);

// "group-major" / "interleaved" / "colocated" -> Placement.
bool parse_placement(const char* s, Placement* out);

// Scans argv for `--backend=sim|rt|net` (or `--backend sim`). Returns
// false with a message in *err on an unknown value or a missing one; *out
// holds `def` when the flag is absent.
bool try_backend_from_args(int argc, char** argv, Backend def, Backend* out,
                           std::string* err);

// Exiting wrappers for CLI binaries: print the error and exit(2) on any
// malformed flag (unknown value, missing value).
Backend backend_from_args(int argc, char** argv, Backend def = Backend::kSim);
std::int32_t groups_from_args(int argc, char** argv, std::int32_t def = 1);
Placement placement_from_args(int argc, char** argv,
                              Placement def = Placement::kGroupMajor);

// `--batch=N`: commands per agreement instance (leader-side batching;
// consensus/batch.hpp). Non-positive, non-numeric, or beyond the
// compile-time ceiling is an error — `--batch=0` must not silently run
// unbatched. The try_ form reports instead of exiting; *out holds `def`
// when the flag is absent.
bool try_batch_from_args(int argc, char** argv, std::int32_t def, std::int32_t* out,
                         std::string* err);
std::int32_t batch_from_args(int argc, char** argv, std::int32_t def = 1);

// `--batch-flush-us=T`: microseconds a partial batch may wait before it is
// flushed (BatchPolicy::flush_after); T >= 0, default 0 = flush at once.
bool try_batch_flush_from_args(int argc, char** argv, Nanos def, Nanos* out,
                               std::string* err);
Nanos batch_flush_from_args(int argc, char** argv, Nanos def = 0);

// The batching flags (--batch, --batch-flush-us, --flush-policy) folded
// into one policy (defaults: unbatched, fixed flush).
consensus::BatchPolicy batch_policy_from_args(int argc, char** argv);

// `--client-coalesce=N`: commands per client-side kClientCmdBatch frame
// (WorkloadSpec::client_coalesce). N = 1 keeps the legacy one-frame-per-
// command wire; bounded by consensus::kMaxClientBatchCommands. Non-positive,
// non-numeric, or oversized values exit 2 — like --batch, `--client-
// coalesce=0` must not silently run uncoalesced.
bool try_client_coalesce_from_args(int argc, char** argv, std::int32_t def,
                                   std::int32_t* out, std::string* err);
std::int32_t client_coalesce_from_args(int argc, char** argv, std::int32_t def = 1);

// `--txn-mix=P`: fraction (0 <= P <= 1) of workload operations issued as
// cross-shard transactions instead of single-key commands (client/txn.hpp).
// Consumed by the transaction benches/examples; anything outside [0, 1] or
// non-numeric exits 2.
bool try_txn_mix_from_args(int argc, char** argv, double def, double* out,
                           std::string* err);
double txn_mix_from_args(int argc, char** argv, double def = 0.0);

// `--read-mix=P`: fraction (0 <= P <= 1) of workload operations issued as
// reads (WorkloadSpec::read_fraction / a bench's own mix sweep). Anything
// outside [0, 1] or non-numeric exits 2.
bool try_read_mix_from_args(int argc, char** argv, double def, double* out,
                            std::string* err);
double read_mix_from_args(int argc, char** argv, double def = 0.0);

// `--lease-ms=T`: leader lease duration in milliseconds
// (TimeoutProfile::lease / EngineConfig::lease_duration). T = 0 keeps
// leases off (reads replicate); negative, non-numeric, or beyond an hour
// exits 2. Returned in nanoseconds.
bool try_lease_ms_from_args(int argc, char** argv, Nanos def, Nanos* out,
                            std::string* err);
Nanos lease_ms_from_args(int argc, char** argv, Nanos def = 0);

// `--flush-policy=fixed|adaptive`: how a partial batch decides to stop
// waiting (BatchPolicy::flush_mode). `fixed` holds every partial batch for
// the full --batch-flush-us; `adaptive` watches the observed inter-arrival
// gap and flushes immediately once the next command looks farther away than
// the budget (consensus/batch.hpp). Anything else exits 2.
bool try_flush_policy_from_args(int argc, char** argv, consensus::BatchPolicy::FlushMode def,
                                consensus::BatchPolicy::FlushMode* out, std::string* err);
consensus::BatchPolicy::FlushMode flush_policy_from_args(
    int argc, char** argv,
    consensus::BatchPolicy::FlushMode def = consensus::BatchPolicy::FlushMode::kFixed);

// `--sessions=N`: logical sessions the open-loop workload engine emulates
// (harness/workload.hpp), 1 <= N <= 1000000. Non-numeric or out-of-range
// exits 2.
bool try_sessions_from_args(int argc, char** argv, std::int64_t def,
                            std::int64_t* out, std::string* err);
std::int64_t sessions_from_args(int argc, char** argv, std::int64_t def = 1);

// `--target-rate=R`: aggregate open-loop arrival rate in ops/sec
// (WorkloadProfile::target_rate); 0 <= R <= 1e9, 0 = closed loop. Negative,
// non-numeric, or absurd values exit 2.
bool try_target_rate_from_args(int argc, char** argv, double def, double* out,
                               std::string* err);
double target_rate_from_args(int argc, char** argv, double def = 0.0);

// `--zipf=T`: zipfian skew theta for workload key choice
// (WorkloadProfile::zipf_theta); 0 <= T < 1 (0 = uniform; the YCSB-standard
// hot skew is 0.99). Out-of-range or non-numeric exits 2.
bool try_zipf_from_args(int argc, char** argv, double def, double* out,
                        std::string* err);
double zipf_from_args(int argc, char** argv, double def = 0.99);

// `--workload=A..F`: YCSB preset selecting the op mix
// (WorkloadProfile::preset). A single letter A-F; anything else exits 2.
bool try_workload_from_args(int argc, char** argv, char def, char* out,
                            std::string* err);
char workload_from_args(int argc, char** argv, char def = 'C');

// `--value-bytes=V`: record payload size in bytes (WorkloadProfile::
// value_bytes); 1 <= V <= 128 (a 16-byte command payload times at most 8
// fragments). Out-of-range or non-numeric exits 2.
bool try_value_bytes_from_args(int argc, char** argv, std::int32_t def,
                               std::int32_t* out, std::string* err);
std::int32_t value_bytes_from_args(int argc, char** argv, std::int32_t def = 8);

// `--net-port-base=P`: first listen port for the net backend's socket mesh
// (core::NetParams::port_base); node i listens on P + i. 0 <= P <= 65535,
// 0 = ephemeral ports (the registry map publishes them either way).
// Non-numeric or out-of-range exits 2.
bool try_net_port_base_from_args(int argc, char** argv, std::int32_t def,
                                 std::int32_t* out, std::string* err);
std::int32_t net_port_base_from_args(int argc, char** argv, std::int32_t def = 0);

// `--net-registry=<host:port>`: where the net backend's bootstrap registry
// binds (core::NetParams::registry). Must parse as host:port; anything else
// exits 2. Default "" = loopback with an ephemeral port.
bool try_net_registry_from_args(int argc, char** argv, const std::string& def,
                                std::string* out, std::string* err);
std::string net_registry_from_args(int argc, char** argv,
                                   const std::string& def = std::string());

// `--net-io-threads=N`: dedicated socket-flusher threads for the net
// backend (core::NetParams::io_threads); 0 <= N <= 64, 0 = every node
// thread flushes its own send rings. Non-numeric or out-of-range exits 2.
bool try_net_io_threads_from_args(int argc, char** argv, std::int32_t def,
                                  std::int32_t* out, std::string* err);
std::int32_t net_io_threads_from_args(int argc, char** argv, std::int32_t def = 0);

// The three net flags folded into one NetParams (defaults: loopback
// ephemeral registry, ephemeral node ports, self-flushing nodes).
core::NetParams net_params_from_args(int argc, char** argv);

// The usage text every harness-flag binary shares: enumerates ALL harness
// flags (--backend, --groups, --placement, --batch, --batch-flush-us,
// --flush-policy, --client-coalesce, --txn-mix, --read-mix, --lease-ms,
// --sessions, --target-rate, --zipf, --workload, --value-bytes,
// --net-port-base, --net-registry, --net-io-threads, --sweep-diff, --help)
// with their value shapes. The strict scanners print it and exit 0 when
// argv carries `--help`.
const char* usage_text();

// `base` plus whatever `--groups` / `--placement` say: the one-liner that
// makes any existing bench spec shardable.
ShardSpec shard_from_args(int argc, char** argv, const ClusterSpec& base);

// argv minus the harness's flags (and their space-form values, e.g.
// `--backend rt`). Any OTHER dash-prefixed argument prints an error and
// exits(2): for binaries whose entire flag surface is the harness's, a
// typo'd `--group=4` must not silently run the default configuration.
std::vector<std::string> positional_args(int argc, char** argv);

// The same strictness for binaries without positional arguments: exits(2)
// on any dash-prefixed argument that is not a harness flag, on a harness
// flag missing its value, and — when `consumed` is non-empty — on a
// harness flag this binary does not actually read (passing --groups to a
// bench that sweeps group counts itself must not silently no-op).
void require_harness_flags_only(int argc, char** argv,
                                std::initializer_list<const char*> consumed = {});

// How to drive the run. Virtual time under sim, wall time under rt.
struct RunPlan {
  // Excluded from committed/issued/message counts (latency histograms span
  // the whole run on both backends).
  Nanos warmup = 0;
  // Measurement window. A request quota (workload.requests_per_client > 0)
  // may end the run earlier; the result's `duration` reports the window
  // actually measured.
  Nanos duration = 1 * kSecond;
  // Safety net for the rt backend (threads can't outrun a hung protocol the
  // way virtual time can).
  Nanos max_wall = 30 * kSecond;
};

// Builds the cluster on the chosen backend, runs the plan, tears it down.
// The sharded overload merges per-group results; the ClusterSpec one is
// the single-group special case.
RunResult run(Backend b, const ShardSpec& shard, const RunPlan& plan);
RunResult run(Backend b, const ClusterSpec& spec, const RunPlan& plan);

// ---- Backend sweep diffing (--sweep-diff) ----
//
// Runs the SAME spec on a list of backends and diffs the RunResults by
// SHAPE, not absolute numbers: virtual-time throughput, oversubscribed
// wall clocks, and socket round trips are incomparable, but consistency,
// liveness, quota completion, and order-of-magnitude message amortization
// must agree. `mismatches` is empty when the shapes line up; each entry is
// a human-readable complaint naming the offending backend.
struct BackendRun {
  Backend backend = Backend::kSim;
  RunResult result;
};

struct SweepDiffN {
  std::vector<BackendRun> runs;  // same order as the requested backends
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

// Each backend gets its canonical timeout profile applied before running;
// msgs/op is compared pairwise against the FIRST backend in the list (by
// convention sim, the deterministic reference). `backends` must be
// non-empty and duplicate-free.
SweepDiffN sweep_diff(const std::vector<Backend>& backends, const ShardSpec& shard,
                      const RunPlan& plan);

// The classic two-way form: sim vs rt, same checks, kept for the benches
// and tests that predate the backend-list API.
struct SweepDiff {
  RunResult sim;
  RunResult rt;
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

SweepDiff sweep_diff(const ShardSpec& shard, const RunPlan& plan);

// True when argv carries `--sweep-diff` (a valueless flag, recognized by
// the strict scanners; a binary that reads it lists it in its `consumed`
// set like any other harness flag). `bench/fig_batching_amortization`
// honors it by appending a sim-vs-rt shape diff of a representative spec;
// `bench/sweep_diff` is the standalone CLI for arbitrary specs.
bool sweep_diff_from_args(int argc, char** argv);

}  // namespace ci::harness
