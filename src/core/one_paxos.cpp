#include "core/one_paxos.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace ci::core {

namespace {

std::uint64_t client_key(const Command& cmd) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cmd.client)) << 32) | cmd.seq;
}

}  // namespace

OnePaxosEngine::OnePaxosEngine(const OnePaxosConfig& cfg)
    : cfg_(cfg),
      executor_(cfg.base.state_machine),
      rng_(cfg.base.seed + static_cast<std::uint64_t>(cfg.base.self) * 6700417),
      utility_(cfg.base, [this](Context& ctx, Instance idx, const UtilityEntry& e) {
        on_utility_decided(ctx, idx, e);
      }),
      pending_(cfg.base.batch) {
  CI_CHECK(cfg_.initial_leader != cfg_.initial_acceptor);
  CI_CHECK(is_replica(cfg_.base, cfg_.initial_leader));
  CI_CHECK(is_replica(cfg_.base, cfg_.initial_acceptor));
  utility_.bootstrap(cfg_.initial_leader, cfg_.initial_acceptor);
  current_leader_ = cfg_.initial_leader;
  pn_counter_ = 1;
  if (cfg_.base.self == cfg_.initial_leader) {
    // Appendix B initialization: the initial leader starts already adopted
    // by the initial acceptor at ballot {1, leader}.
    i_am_leader_ = true;
    active_acceptor_ = cfg_.initial_acceptor;
    my_pn_ = ProposalNum{1, cfg_.initial_leader};
  }
  if (cfg_.base.self == cfg_.initial_acceptor) {
    i_am_fresh_ = false;
    hpn_ = ProposalNum{1, cfg_.initial_leader};
  }
  ever_acceptors_.insert(cfg_.initial_acceptor);
  fd_jitter_ = static_cast<Nanos>(
      rng_.next_below(static_cast<std::uint64_t>(cfg_.base.fd_timeout / 4) + 1));
  lease_.configure(cfg_.base.lease_duration, cfg_.base.lease_epsilon);
}

void OnePaxosEngine::start(Context& ctx) {
  last_leader_contact_ = ctx.now();
  last_acceptor_contact_ = ctx.now();
  leader_progress_at_ = ctx.now();
}

ProposalNum OnePaxosEngine::new_pn() {
  pn_counter_++;
  return ProposalNum{pn_counter_, cfg_.base.self};
}

bool OnePaxosEngine::suspect_leader(Nanos now) const {
  if (current_leader_ == cfg_.base.self) return !i_am_leader_;
  return now - last_leader_contact_ >= cfg_.base.fd_timeout + fd_jitter_;
}

void OnePaxosEngine::reset_acceptor_state() {
  hpn_ = ProposalNum{};
  ap_.clear();
  i_am_fresh_ = true;
}

// ---------------------------------------------------------------- messages

void OnePaxosEngine::on_message(Context& ctx, const Message& m) {
  if (m.src == current_leader_ && m.src != cfg_.base.self) last_leader_contact_ = ctx.now();
  if (m.proto == ProtoId::kUtility) {
    // A live lease grant is a promise not to support any OTHER node's
    // configuration proposals — the utility log IS this protocol's election.
    // Drop the ballot-carrying requests; the candidate retries after the
    // grant lapses. (The grantee's own proposals — acceptor rotations — and
    // all responses/learns pass through untouched.)
    if ((m.type == MsgType::kUtilPhase1Req || m.type == MsgType::kUtilPhase2Req) &&
        granted_.blocks(m.src, ctx.now())) {
      return;
    }
    utility_.on_message(ctx, m);
    return;
  }
  switch (m.type) {
    case MsgType::kClientRequest:
      handle_client_request(ctx, m);
      return;
    case MsgType::kOpxAcceptReq:
      scratch_.assign(1, m.u.opx_accept_req.value);
      handle_accept_req(ctx, m.u.opx_accept_req.instance, m.u.opx_accept_req.pn, scratch_,
                        m.src);
      return;
    case MsgType::kOpxBatchAcceptReq:
      handle_accept_req(
          ctx, m.u.opx_batch_accept_req.instance, m.u.opx_batch_accept_req.pn,
          unpack_batch(m.u.opx_batch_accept_req.run.data(m.u.opx_batch_accept_req.count),
                       m.u.opx_batch_accept_req.count),
          m.src);
      return;
    case MsgType::kOpxLearn:
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      scratch_.assign(1, m.u.opx_learn.value);
      learn(ctx, m.u.opx_learn.instance, scratch_);
      return;
    case MsgType::kOpxBatchLearn:
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      learn(ctx, m.u.opx_batch_learn.instance,
            unpack_batch(m.u.opx_batch_learn.run.data(m.u.opx_batch_learn.count),
                         m.u.opx_batch_learn.count));
      return;
    case MsgType::kOpxLearnRun: {
      // A catch-up run: count consecutive instances, one command each.
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      const OpxLearnRun& p = m.u.opx_learn_run;
      const Command* cmds = p.run.data(p.count);
      for (std::int32_t i = 0; i < p.count; ++i) {
        scratch_.assign(1, cmds[i]);
        learn(ctx, p.first_instance + i, scratch_);
      }
      return;
    }
    case MsgType::kOpxPrepareReq:
      handle_prepare_req(ctx, m);
      return;
    case MsgType::kOpxPrepareResp:
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      handle_prepare_resp(ctx, m);
      return;
    case MsgType::kOpxPrepareBatchResp:
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      handle_prepare_batch_resp(ctx, m);
      return;
    case MsgType::kOpxWindowBody:
      handle_window_body(ctx, m);
      return;
    case MsgType::kOpxWindowFetchReq:
      handle_window_fetch(ctx, m);
      return;
    case MsgType::kOpxAbandon:
      handle_abandon(ctx, m);
      return;
    case MsgType::kHeartbeat: {
      if (m.u.heartbeat.leader == cfg_.base.self) return;
      const Instance epoch = m.u.heartbeat.ballot.counter;
      if (epoch < current_leader_epoch_) return;  // deposed leader's echo
      if (i_am_leader_ && epoch > current_leader_epoch_) {
        // A LeaderChange newer than ours exists that we have not learned
        // yet; the heartbeat is authoritative evidence.
        relinquish(ctx, m.u.heartbeat.leader);
      }
      current_leader_ = m.u.heartbeat.leader;
      current_leader_epoch_ = epoch;
      last_leader_contact_ = ctx.now();
      // Track whether the leader's commit frontier moves: heartbeats alone
      // do not prove usefulness (a slow leader heartbeats while drowning).
      // A mid-recovery leader counts as progressing — its heartbeats say so.
      if (m.u.heartbeat.committed > leader_committed_seen_ ||
          (m.flags & kFlagEstablishing) != 0) {
        leader_committed_seen_ = std::max(leader_committed_seen_, m.u.heartbeat.committed);
        leader_progress_at_ = ctx.now();
      }
      // Lease renewal: grant to the sender unless we already follow a NEWER
      // view (guarded above: epoch >= current_leader_epoch_ here).
      if (cfg_.base.lease_duration > 0 && m.u.heartbeat.lease_seq != 0) {
        granted_.grant(m.u.heartbeat.leader, ctx.now(), cfg_.base.lease_duration);
        Message g(MsgType::kLeaseGrant, ProtoId::kOnePaxos, cfg_.base.self,
                  m.u.heartbeat.leader);
        g.u.lease_grant.grantor = cfg_.base.self;
        g.u.lease_grant.lease_seq = m.u.heartbeat.lease_seq;
        g.u.lease_grant.ballot = m.u.heartbeat.ballot;
        ctx.send(m.u.heartbeat.leader, g);
      }
      if (m.u.heartbeat.committed > log_.first_gap() &&
          ctx.now() - last_catchup_sent_ >= cfg_.base.retry_timeout) {
        // The leader has decided instances we miss (lost learns): ask for a
        // re-send so local execution can progress.
        last_catchup_sent_ = ctx.now();
        Message req(MsgType::kOpxCatchupReq, ProtoId::kOnePaxos, cfg_.base.self, m.src);
        req.u.opx_catchup_req.from_instance = log_.first_gap();
        ctx.send(m.src, req);
      }
      return;
    }
    case MsgType::kOpxCatchupReq: {
      // Any node re-sends the decided values it knows (bounded window).
      // Consecutive single-command instances coalesce into one
      // kOpxLearnRun frame; multi-command batches and undecided gaps
      // break the run and ship as their own legacy learn frames.
      const Instance from = m.u.opx_catchup_req.from_instance;
      const Instance to = std::min(from + kMaxLearnRunCommands, log_.end());
      Batch run;  // one command per coalesced instance
      Instance run_start = kNoInstance;
      const auto flush_run = [&] {
        if (run.empty()) return;
        send_learn_run(ctx, m.src, run_start, run);
        run.clear();
      };
      for (Instance in = from; in < to; ++in) {
        const Batch* v = log_.get_batch(in);
        if (v == nullptr || v->size() != 1) {
          flush_run();
          if (v != nullptr) send_learn(ctx, m.src, in, *v);
          continue;
        }
        if (run.empty()) run_start = in;
        run.push_back(v->front());
      }
      flush_run();
      return;
    }
    case MsgType::kPing: {
      Message pong(MsgType::kPong, ProtoId::kOnePaxos, cfg_.base.self, m.src);
      pong.u.heartbeat.committed = log_.end();  // frontier evidence for recovery polls
      ctx.send(m.src, pong);
      return;
    }
    case MsgType::kLeaseGrant:
      handle_lease_grant(m);
      return;
    case MsgType::kPong:
      if (m.src == active_acceptor_) last_acceptor_contact_ = ctx.now();
      if (recovery_poll_) {
        alloc_frontier_ = std::max(alloc_frontier_, m.u.heartbeat.committed);
      }
      if (m.src == probe_acceptor_) {
        // The acceptor we want to adopt is alive: announce the takeover.
        probe_acceptor_ = kNoNode;
        begin_leader_change(ctx);
      }
      return;
    default:
      return;
  }
}

void OnePaxosEngine::handle_client_request(Context& ctx, const Message& m) {
  const Command& cmd = m.u.client_request.cmd;
  if (i_am_leader_) {
    if (try_lease_read(ctx, cmd)) return;
    pending_.push(cmd, ctx.now());
    pump(ctx);
    return;
  }
  if (switching_ != Switch::kNone || prepare_outstanding_ || utility_.propose_in_flight()) {
    pending_.push(cmd, ctx.now());  // takeover in progress; propose once adopted
    return;
  }
  const Nanos now = ctx.now();
  const bool fd_suspects = suspect_leader(now);
  if (fd_suspects || (m.flags & kFlagLeaderSuspect) != 0) {
    // The client came to us because the leader looks slow (§7.6). Act when
    // our own failure detector agrees, or when the leader demonstrably
    // makes no commit progress despite heartbeating (a drowning core).
    // A leader mid-recovery marks its heartbeats as establishing and gets
    // patience — deposing it would restart the recovery (the LeaderChange
    // ping-pong). Otherwise hold the command; tick() acts later.
    const bool no_progress = now - leader_progress_at_ >= cfg_.base.fd_timeout * 2;
    pending_.push(cmd, now);
    if (fd_suspects || no_progress) try_takeover(ctx);
    return;
  }
  Message fwd = m;
  fwd.dst = current_leader_;
  ctx.send(current_leader_, fwd);
}

// The lease read fast path (DESIGN.md §1f): a leader holding unexpired
// grants from a majority of replicas (itself included) answers reads from
// its applied state machine — no log entry, no acceptor round trip, which
// on 1Paxos's single-acceptor fast path removes BOTH remaining hops.
// Gated on read_floor_ so a fresh leader first applies everything the
// previous regime may have exposed to its own lease readers.
bool OnePaxosEngine::try_lease_read(Context& ctx, const Command& cmd) {
  if (cmd.op != Op::kRead && cmd.op != Op::kReadVersioned) return false;
  if (!lease_.held(ctx.now(), cfg_.base.num_replicas, /*self_votes=*/true)) return false;
  if (log_.first_gap() < read_floor_) return false;
  const StateMachine* sm = cfg_.base.state_machine;
  Message reply(MsgType::kClientReply, ProtoId::kClient, cfg_.base.self, cmd.client);
  reply.u.client_reply.seq = cmd.seq;
  reply.u.client_reply.ok = 1;
  reply.u.client_reply.instance = kNoInstance;  // no log entry backs this read
  reply.u.client_reply.result =
      sm == nullptr ? 0
      : cmd.op == Op::kRead ? sm->read(cmd.key)
                            : sm->versioned_read(cmd.key);
  reply.u.client_reply.leader_hint = cfg_.base.self;
  reply.u.client_reply.lease_epoch = write_epoch_;
  ctx.send(cmd.client, reply);
  ++lease_reads_;
  return true;
}

// Grants echo the view version our heartbeats carry; anything else is from
// a regime we no longer run (reset() on relinquish also guarantees stale
// echoes find no recorded send time).
void OnePaxosEngine::handle_lease_grant(const Message& m) {
  if (m.u.lease_grant.ballot.node != cfg_.base.self ||
      m.u.lease_grant.ballot.counter != current_leader_epoch_) {
    return;
  }
  if (!is_replica(cfg_.base, m.src)) return;
  lease_.on_grant(m.src, m.u.lease_grant.lease_seq);
}

// Outstanding instances under batching: the uncommitted window — and the
// union of TWO windows after a handover — must fit one AcceptorChange
// entry's proposals/batched arrays (kMaxProposalsPerMsg entries each).
// Batch SIZE no longer constrains the depth: entries carry (instance,
// count, digest) refs and the command bodies travel out of line, so a
// batch-64 leader pipelines as deeply as an unbatched one (the old command
// pool clamped this to one instance at full batch).
std::int32_t OnePaxosEngine::effective_window() const {
  const BatchPolicy& p = cfg_.base.batch;
  if (!p.batching()) return cfg_.base.pipeline_window;
  return std::max(std::min(cfg_.base.pipeline_window, kMaxProposalsPerMsg / 2), 1);
}

void OnePaxosEngine::pump(Context& ctx) {
  while (pending_.ready(ctx.now(), proposed_.size()) &&
         static_cast<std::int32_t>(proposed_.size()) < effective_window()) {
    Instance in = std::max({next_instance_, log_.first_gap(), alloc_frontier_});
    while (log_.is_learned(in) || proposed_.count(in) != 0) in++;
    next_instance_ = in + 1;
    const Batch value = pending_.take();
    for (const Command& cmd : value) {
      if (cmd.client != kNoNode) advocated_.insert(client_key(cmd));
    }
    proposed_[in] = value;  // getAny: remember what we advocate for `in`
    send_accept(ctx, in);
  }
}

void OnePaxosEngine::send_accept(Context& ctx, Instance in) {
  auto& t = accept_times_[in];
  if (t.first_sent == 0) t.first_sent = ctx.now();
  t.last_sent = ctx.now();
  const Batch& value = proposed_.at(in);
  if (value.size() == 1) {
    Message m(MsgType::kOpxAcceptReq, ProtoId::kOnePaxos, cfg_.base.self, active_acceptor_);
    m.u.opx_accept_req.instance = in;
    m.u.opx_accept_req.pn = my_pn_;
    m.u.opx_accept_req.value = value.front();
    ctx.send(active_acceptor_, m);
  } else {
    Message m(MsgType::kOpxBatchAcceptReq, ProtoId::kOnePaxos, cfg_.base.self,
              active_acceptor_);
    m.u.opx_batch_accept_req.instance = in;
    m.u.opx_batch_accept_req.pn = my_pn_;
    m.u.opx_batch_accept_req.count = m.u.opx_batch_accept_req.run.pack(value);
    ctx.send(active_acceptor_, m);
  }
}

// One learn frame for `value`, in whichever encoding its size calls for.
void OnePaxosEngine::send_learn(Context& ctx, NodeId dst, Instance in, const Batch& value) {
  if (value.size() == 1) {
    Message l(MsgType::kOpxLearn, ProtoId::kOnePaxos, cfg_.base.self, dst);
    l.u.opx_learn.instance = in;
    l.u.opx_learn.value = value.front();
    ctx.send(dst, l);
  } else {
    Message l(MsgType::kOpxBatchLearn, ProtoId::kOnePaxos, cfg_.base.self, dst);
    l.u.opx_batch_learn.instance = in;
    l.u.opx_batch_learn.count = l.u.opx_batch_learn.run.pack(value);
    ctx.send(dst, l);
  }
}

// One frame for a run of consecutive single-command decided instances
// starting at `first` (cmds[i] decides first + i). A run of one degenerates
// to the legacy kOpxLearn so idle catch-up traffic is unchanged.
void OnePaxosEngine::send_learn_run(Context& ctx, NodeId dst, Instance first,
                                    const Batch& cmds) {
  if (cmds.size() == 1) {
    send_learn(ctx, dst, first, cmds);
    return;
  }
  CI_CHECK(cmds.size() <= static_cast<std::size_t>(kMaxLearnRunCommands));
  Message l(MsgType::kOpxLearnRun, ProtoId::kOnePaxos, cfg_.base.self, dst);
  l.u.opx_learn_run.first_instance = first;
  l.u.opx_learn_run.count = l.u.opx_learn_run.run.pack(cmds);
  ctx.send(dst, l);
}

void OnePaxosEngine::handle_accept_req(Context& ctx, Instance in, ProposalNum pn,
                                       const Batch& value, NodeId src) {
  if (!(pn == hpn_)) {
    Message ab(MsgType::kOpxAbandon, ProtoId::kOnePaxos, cfg_.base.self, src);
    ab.u.opx_abandon.higher_pn = hpn_;
    ctx.send(src, ab);
    return;
  }
  if (log_.is_learned(in)) {
    // Already decided and pruned from ap: remind only the retrying leader.
    send_learn(ctx, src, in, *log_.get_batch(in));
    return;
  }
  auto it = ap_.find(in);
  if (it == ap_.end()) {
    it = ap_.emplace(in, AcceptedValue{pn, value}).first;
#ifdef CI_OPX_TRACE
    if (in == CI_OPX_TRACE) {
      std::fprintf(stderr, "[t=%lld] node %d ACCEPTS in=%lld (c%d,s%u) pn={%lld,%d} from %d\n",
                   (long long)ctx.now(), cfg_.base.self, (long long)in,
                   it->second.value.front().client, it->second.value.front().seq,
                   (long long)pn.counter, pn.node, src);
    }
#endif
  }
  // Accepted (or a retry of an accepted proposal): multicast the learn
  // message to every learner — re-broadcasting covers lost learns, exactly
  // as in Fig. 12.
  for (NodeId r = 0; r < cfg_.base.num_replicas; ++r) {
    send_learn(ctx, r, in, it->second.value);
  }
}

void OnePaxosEngine::learn(Context& ctx, Instance in, const Batch& v) {
  if (log_.is_learned(in)) return;
  log_.learn(in, v);
  ap_.erase(in);
  accept_times_.erase(in);
  // Any published window body for this instance is superseded by the
  // decision; prune every digest keyed to it.
  window_bodies_.erase(
      window_bodies_.lower_bound({in, 0}),
      window_bodies_.upper_bound({in, std::numeric_limits<std::uint64_t>::max()}));
  auto it = proposed_.find(in);
  if (it != proposed_.end()) {
    if (!(it->second == v)) {
      // We advocated a different value for this instance (lost a race
      // around a reconfiguration): re-propose the commands of ours that
      // did not make it, ahead of new arrivals.
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        if (std::find(v.begin(), v.end(), *rit) == v.end()) pending_.push_front(*rit);
      }
    }
    proposed_.erase(it);
  }
  log_.drain([&](Instance din, const Command& dcmd) {
    const Executor::Applied applied = executor_.apply(dcmd);
    // Advance the near-cache epoch on every applied mutation (deterministic
    // across replicas: a function of the applied log prefix; skips 0 on
    // wrap, 0 meaning "epoch not reported").
    if (!applied.duplicate && !dcmd.is_noop() && dcmd.op != Op::kRead &&
        dcmd.op != Op::kReadVersioned) {
      if (++write_epoch_ == 0) ++write_epoch_;
    }
    ctx.deliver(din, dcmd);
    auto adv = advocated_.find(client_key(dcmd));
    if (adv != advocated_.end()) {
      Message reply(MsgType::kClientReply, ProtoId::kClient, cfg_.base.self, dcmd.client);
      reply.u.client_reply.seq = dcmd.seq;
      reply.u.client_reply.ok = 1;
      reply.u.client_reply.instance = din;
      reply.u.client_reply.result = applied.result;
      reply.u.client_reply.leader_hint = i_am_leader_ ? cfg_.base.self : current_leader_;
      reply.u.client_reply.lease_epoch = write_epoch_;
      ctx.send(dcmd.client, reply);
      advocated_.erase(adv);
    }
  });
  if (i_am_leader_) pump(ctx);
}

// ------------------------------------------------------- adopt an acceptor

void OnePaxosEngine::send_prepare(Context& ctx, bool must_be_fresh) {
  CI_CHECK(active_acceptor_ != kNoNode);
  my_pn_ = new_pn();
  if (!prepare_outstanding_) prepare_first_sent_ = ctx.now();  // retries keep the first timestamp
  prepare_outstanding_ = true;
  prepare_fresh_flag_ = must_be_fresh;
  prepare_last_sent_ = ctx.now();
  // A fresh ballot obsoletes any partially-collected report.
  prepare_batched_.clear();
  prepare_main_held_ = false;
  Message m(MsgType::kOpxPrepareReq, ProtoId::kOnePaxos, cfg_.base.self, active_acceptor_);
  m.u.opx_prepare_req.pn = my_pn_;
  m.u.opx_prepare_req.you_must_be_fresh = must_be_fresh ? 1 : 0;
  ctx.send(active_acceptor_, m);
}

void OnePaxosEngine::handle_prepare_req(Context& ctx, const Message& m) {
  const ProposalNum pn = m.u.opx_prepare_req.pn;
  const bool must_be_fresh = m.u.opx_prepare_req.you_must_be_fresh != 0;
  if (pn > hpn_) {
    if (i_am_fresh_ != must_be_fresh) {
      // Freshness mismatch (Fig. 12 line 47): the proposer's view of this
      // acceptor is stale — e.g. we silently rebooted and lost hpn/ap.
      // Silently drop; the proposer times out and switches acceptor.
      return;
    }
    i_am_fresh_ = false;
    hpn_ = pn;
    Message resp(MsgType::kOpxPrepareResp, ProtoId::kOnePaxos, cfg_.base.self, m.src);
    resp.u.opx_prepare_resp.acceptor = cfg_.base.self;
    resp.u.opx_prepare_resp.pn = pn;
    // One past the highest instance this acceptor has seen: the adopter's
    // allocation lower bound.
    Instance frontier = std::max(log_.end(), alloc_frontier_);
    if (!ap_.empty()) frontier = std::max(frontier, ap_.rbegin()->first + 1);
    resp.u.opx_prepare_resp.frontier = frontier;
    std::int32_t n = 0;
    std::int32_t nb = 0;
    for (const auto& [in, acc] : ap_) {
      if (acc.value.size() == 1) {
        if (n >= kMaxProposalsPerMsg) break;
        resp.u.opx_prepare_resp.accepted[n++] = Proposal{in, acc.pn, acc.value.front()};
      } else {
        // Batched ap entries ride as sidecars ahead of the main response,
        // which counts them so the adopter knows when its copy of our
        // short-term memory is complete.
        if (nb >= kMaxProposalsPerMsg) break;
        Message side(MsgType::kOpxPrepareBatchResp, ProtoId::kOnePaxos, cfg_.base.self,
                     m.src);
        side.u.opx_prepare_batch_resp.acceptor = cfg_.base.self;
        side.u.opx_prepare_batch_resp.pn = pn;
        side.u.opx_prepare_batch_resp.instance = in;
        side.u.opx_prepare_batch_resp.count = side.u.opx_prepare_batch_resp.run.pack(acc.value);
        ctx.send(m.src, side);
        nb++;
      }
    }
    resp.u.opx_prepare_resp.num_accepted = n;
    resp.u.opx_prepare_resp.num_batched = nb;
    ctx.send(m.src, resp);
  } else {
    Message ab(MsgType::kOpxAbandon, ProtoId::kOnePaxos, cfg_.base.self, m.src);
    ab.u.opx_abandon.higher_pn = hpn_;
    ctx.send(m.src, ab);
  }
}

void OnePaxosEngine::handle_prepare_batch_resp(Context& ctx, const Message& m) {
  // Same staleness guards as the main response (Fig. 12).
  if (i_am_leader_ || m.u.opx_prepare_batch_resp.acceptor != active_acceptor_ ||
      !(m.u.opx_prepare_batch_resp.pn == my_pn_)) {
    return;
  }
  prepare_batched_[m.u.opx_prepare_batch_resp.instance] =
      unpack_batch(m.u.opx_prepare_batch_resp.run.data(m.u.opx_prepare_batch_resp.count),
                   m.u.opx_prepare_batch_resp.count);
  if (prepare_main_held_ &&
      static_cast<std::int32_t>(prepare_batched_.size()) >=
          prepare_held_main_.u.opx_prepare_resp.num_batched) {
    const Message main = prepare_held_main_;
    prepare_main_held_ = false;
    adopt(ctx, main);
  }
}

void OnePaxosEngine::handle_prepare_resp(Context& ctx, const Message& m) {
  // Fig. 12: "if (IamLeader || Ai != Aa) return".
  if (i_am_leader_ || m.u.opx_prepare_resp.acceptor != active_acceptor_ ||
      !(m.u.opx_prepare_resp.pn == my_pn_)) {
    return;
  }
  if (static_cast<std::int32_t>(prepare_batched_.size()) <
      m.u.opx_prepare_resp.num_batched) {
    // Sidecars still in flight (reordered): hold the adoption until they
    // land. A lost sidecar resolves through the retry path — the next
    // prepare uses a fresh ballot and the acceptor reports again.
    prepare_main_held_ = true;
    prepare_held_main_ = m;
    return;
  }
  adopt(ctx, m);
}

void OnePaxosEngine::adopt(Context& ctx, const Message& m) {
  prepare_outstanding_ = false;
  prepare_main_held_ = false;
  i_am_leader_ = true;
  stuck_gap_ = kNoInstance;  // a fresh reign restarts the gap patience clock
  current_leader_ = cfg_.base.self;
  alloc_frontier_ = std::max(alloc_frontier_, m.u.opx_prepare_resp.frontier);
  // The acceptor's frontier bounds every instance the previous regime could
  // have decided — and so every value its lease readers could have seen.
  // Serve no lease read until our applied prefix covers all of it.
  read_floor_ = std::max(read_floor_, alloc_frontier_);
  register_proposals(m.u.opx_prepare_resp.accepted, m.u.opx_prepare_resp.num_accepted);
  for (const auto& [in, value] : prepare_batched_) register_batched(in, value);
  prepare_batched_.clear();
  // Re-propose every uncommitted value we are responsible for, then take
  // new client commands.
  for (const auto& [in, value] : proposed_) {
    next_instance_ = std::max(next_instance_, in + 1);
    accept_times_.erase(in);
    send_accept(ctx, in);
  }
  pump(ctx);
}

void OnePaxosEngine::handle_abandon(Context& ctx, const Message& m) {
  if (m.src != active_acceptor_) return;  // stale abandon from an old acceptor
  const ProposalNum higher = m.u.opx_abandon.higher_pn;
  pn_counter_ = std::max(pn_counter_, higher.counter);
  if (prepare_outstanding_) {
    // Our adoption attempt was outbid. If the utility log still names us
    // Global leader, the competing ballot is a leftover from a previous
    // leadership stint (e.g. a reused backup's old hpn): escalate the
    // ballot and knock again. Otherwise a real successor exists.
    const NodeId global_leader = utility_.last_leader();
    if (global_leader == cfg_.base.self) {
      send_prepare(ctx, prepare_fresh_flag_);
    } else {
      relinquish(ctx, global_leader);
    }
    return;
  }
  if (!i_am_leader_) return;
  if (higher > my_pn_) {
    // Somebody holds a higher ballot at our acceptor: our leadership is
    // gone (they will have announced a LeaderChange; we learn the new
    // leader from the utility log / heartbeats).
    relinquish(ctx, kNoNode);
    return;
  }
  // The acceptor rejected a ballot it should be promised to: it lost its
  // volatile state (silent reboot). Only an established leader — whose
  // `proposed` map covers everything the old incarnation accepted — may
  // replace it with a fresh backup ("the last leader should switch the
  // rebooted acceptor", Appendix A prose).
  on_acceptor_failure(ctx);
}

void OnePaxosEngine::register_proposals(const Proposal* props, std::int32_t n) {
  for (std::int32_t i = 0; i < n; ++i) {
    const Proposal& p = props[i];
    if (log_.is_learned(p.instance)) continue;
    proposed_[p.instance] = single_batch(p.value);  // Fig. 13 registerProposals
    next_instance_ = std::max(next_instance_, p.instance + 1);
  }
  CI_CHECK_MSG(static_cast<std::int32_t>(proposed_.size()) <= kMaxProposalsPerMsg,
               "uncommitted window overflow");
}

void OnePaxosEngine::register_batched(Instance in, const Batch& value) {
  if (log_.is_learned(in)) return;
  proposed_[in] = value;
  next_instance_ = std::max(next_instance_, in + 1);
  CI_CHECK_MSG(static_cast<std::int32_t>(proposed_.size()) <= kMaxProposalsPerMsg,
               "uncommitted window overflow");
}

// Packs the uncommitted window into an AcceptorChange entry: single-command
// values in the legacy proposals array, batched values as (instance, count,
// digest) refs whose bodies publish_window_bodies() ships out of line.
// Overflow is a hard invariant violation — dropping an uncommitted value
// here could let a successor refill a partially-learned instance with a
// different value (Lemma 2a) — and effective_window() sizes the window so
// even the union of two handovers fits.
void OnePaxosEngine::fill_uncommitted(UtilityEntry* entry) const {
  std::int32_t np = 0;
  std::int32_t nb = 0;
  for (const auto& [in, value] : proposed_) {
    if (log_.is_learned(in)) continue;
    if (value.size() == 1) {
      CI_CHECK_MSG(np < kMaxProposalsPerMsg, "uncommitted window overflows one entry");
      entry->proposals[np++] = Proposal{in, my_pn_, value.front()};
    } else {
      CI_CHECK_MSG(nb < kMaxBatchedPerEntry, "uncommitted batches overflow one entry");
      BatchedProposalRef ref;
      ref.instance = in;
      ref.count = static_cast<std::int32_t>(value.size());
      ref.digest = batch_digest(value);
      entry->batched[nb++] = ref;
    }
  }
  entry->num_proposals = np;
  entry->num_batched = nb;
}

// Ships the bodies behind an AcceptorChange entry's batched refs to every
// replica (and into our own store): by the time the entry decides, anyone
// who may later adopt it holds the bodies its refs name. The refs were
// computed from proposed_ (fill_uncommitted), so walking proposed_ directly
// publishes exactly the ref'd bodies — which also makes this safely
// re-runnable from tick() for as long as this leadership is mid-switch
// (loss of a one-shot broadcast plus a publisher death must not strand the
// decided entry's refs; fetch-on-adopt covers the receivers that missed
// every round).
void OnePaxosEngine::publish_window_bodies(Context& ctx) {
  for (const auto& [in, value] : proposed_) {
    if (value.size() <= 1 || log_.is_learned(in)) continue;
    const std::uint64_t digest = batch_digest(value);
    store_window_body(in, digest, value);
    for (NodeId n = 0; n < cfg_.base.num_replicas; ++n) {
      if (n == cfg_.base.self) continue;
      Message body(MsgType::kOpxWindowBody, ProtoId::kOnePaxos, cfg_.base.self, n);
      body.u.opx_window_body.instance = in;
      body.u.opx_window_body.digest = digest;
      body.u.opx_window_body.count = body.u.opx_window_body.run.pack(value);
      ctx.send(n, body);
    }
  }
  last_body_publish_ = ctx.now();
}

void OnePaxosEngine::store_window_body(Instance in, std::uint64_t digest,
                                       const Batch& value) {
  if (log_.is_learned(in)) return;  // the decided value supersedes any body
  window_bodies_[{in, digest}] = value;
}

const Batch* OnePaxosEngine::find_window_body(Instance in, std::uint64_t digest) const {
  const auto it = window_bodies_.find({in, digest});
  if (it != window_bodies_.end()) return &it->second;
  // Our own advocacy and our acceptor-role memory can answer too: both hold
  // the very batch the ref describes if the digests agree.
  const auto pit = proposed_.find(in);
  if (pit != proposed_.end() && batch_digest(pit->second) == digest) return &pit->second;
  const auto ait = ap_.find(in);
  if (ait != ap_.end() && batch_digest(ait->second.value) == digest) {
    return &ait->second.value;
  }
  return nullptr;
}

void OnePaxosEngine::handle_window_body(Context& ctx, const Message& m) {
  (void)ctx;
  const OpxWindowBody& p = m.u.opx_window_body;
  Batch value = unpack_batch(p.run.data(p.count), p.count);
  // The digest binds the body to the decided entry; a mismatch means a
  // corrupt or stale frame — never store it under the claimed key.
  if (batch_digest(value) != p.digest) return;
  store_window_body(p.instance, p.digest, value);
}

void OnePaxosEngine::handle_window_fetch(Context& ctx, const Message& m) {
  const Instance in = m.u.opx_window_fetch_req.instance;
  const std::uint64_t digest = m.u.opx_window_fetch_req.digest;
  if (log_.is_learned(in)) {
    // Decided since: the learn supersedes the body (the fetcher will skip
    // the ref once it sees the instance decided).
    send_learn(ctx, m.src, in, *log_.get_batch(in));
    return;
  }
  const Batch* body = find_window_body(in, digest);
  if (body == nullptr) return;  // silence; the fetcher retries elsewhere
  Message reply(MsgType::kOpxWindowBody, ProtoId::kOnePaxos, cfg_.base.self, m.src);
  reply.u.opx_window_body.instance = in;
  reply.u.opx_window_body.digest = digest;
  reply.u.opx_window_body.count = reply.u.opx_window_body.run.pack(*body);
  ctx.send(m.src, reply);
}

// ------------------------------------------------------ failure handling

NodeId OnePaxosEngine::select_acceptor(NodeId failed) const {
  // Deterministic round-robin over the replicas, skipping ourselves (§5.4
  // placement: leader and acceptor on separate nodes) and the failed node.
  NodeId candidate = failed == kNoNode ? cfg_.base.self : failed;
  for (std::int32_t i = 0; i < cfg_.base.num_replicas; ++i) {
    candidate = (candidate + 1) % cfg_.base.num_replicas;
    if (candidate != cfg_.base.self && candidate != failed) return candidate;
  }
  return kNoNode;  // fewer than 2 usable replicas
}

void OnePaxosEngine::on_acceptor_failure(Context& ctx) {
  // Fig. 12 "Upon AcceptorFailure".
  if (switching_ != Switch::kNone || utility_.propose_in_flight()) return;
  Instance idx = kNoInstance;
  const NodeId global_leader = utility_.last_leader(&idx);
  if (global_leader != cfg_.base.self) {
    // Somebody thought I am dead.
    relinquish(ctx, global_leader);
    return;
  }
  const NodeId failed = active_acceptor_;
  const NodeId next = select_acceptor(failed);
  if (next == kNoNode) return;
  UtilityEntry entry;
  entry.kind = UtilityEntry::Kind::kAcceptorChange;
  entry.leader = cfg_.base.self;
  entry.acceptor = next;
  // Everything this leadership ever allocated lies below this frontier; the
  // next adopter must not re-fill instances whose learns were lost.
  entry.frontier = std::max({next_instance_, log_.end(), alloc_frontier_});
  fill_uncommitted(&entry);
  // Bodies first, entry second: replicas should hold the bodies before the
  // refs that name them decide (fetch-on-adopt covers lost bodies, and
  // tick() keeps republishing while the switch is in flight).
  publish_window_bodies(ctx);
  switching_ = Switch::kAcceptorChange;
  pending_acceptor_ = next;
  // A backup that never served as acceptor must be fresh; a reused one
  // legitimately holds an hpn from its previous stint.
  pending_must_be_fresh_ = ever_acceptors_.count(next) == 0;
  // Anchor to the snapshot this decision was computed from (Fig. 12 l.3/10):
  // a concurrent reconfiguration makes the proposal fail instead of
  // installing a stale view.
  const Instance snapshot = utility_.next_instance();
  const bool started = utility_.propose(ctx, entry, [this](Context& cctx, bool ok) {
    switching_ = Switch::kNone;
    if (!ok) {
      // Another entry won this utility instance; if it made someone else
      // the Global leader we must stand down, otherwise retry later.
      if (utility_.last_leader() != cfg_.base.self) relinquish(cctx, utility_.last_leader());
      return;
    }
    active_acceptor_ = pending_acceptor_;
    i_am_leader_ = false;  // must re-adopt the new acceptor (Fig. 12 l.13)
    prepare_outstanding_ = false;
    prepare_can_rotate_ = true;  // our proposed map is complete
    last_acceptor_contact_ = cctx.now();
    send_prepare(cctx, pending_must_be_fresh_);
  }, snapshot);
  if (!started) switching_ = Switch::kNone;
}

void OnePaxosEngine::try_takeover(Context& ctx) {
  // Fig. 12 "proc propose", non-leader path — stage 1: probe the acceptor.
  if (i_am_leader_ || switching_ != Switch::kNone || prepare_outstanding_ ||
      utility_.propose_in_flight()) {
    return;
  }
  // A live lease grant is a promise not to move against the grantee; the
  // takeover resumes once it lapses (a dead leader stops renewing).
  if (granted_.live(ctx.now())) return;
  const PaxosUtility::AcceptorInfo info = utility_.last_active_acceptor();
  CI_CHECK_MSG(info.acceptor != kNoNode, "no bootstrap AcceptorChange entry");
  if (info.acceptor == cfg_.base.self) {
    // We host the acceptor role; adopting ourselves would collapse the
    // leader/acceptor separation (§5.4). Let another proposer take over.
    return;
  }
  if (probe_acceptor_ != kNoNode) return;  // probe already in flight
  probe_acceptor_ = info.acceptor;
  probe_sent_ = ctx.now();
  Message ping(MsgType::kPing, ProtoId::kOnePaxos, cfg_.base.self, info.acceptor);
  ctx.send(info.acceptor, ping);
}

void OnePaxosEngine::begin_leader_change(Context& ctx) {
  // Stage 2, after the acceptor answered the probe.
  if (i_am_leader_ || switching_ != Switch::kNone || prepare_outstanding_ ||
      utility_.propose_in_flight()) {
    return;
  }
  const PaxosUtility::AcceptorInfo info = utility_.last_active_acceptor();
  if (info.acceptor == kNoNode || info.acceptor == cfg_.base.self) return;
  // Resolve the entry's batched refs to bodies BEFORE announcing anything:
  // an adopter must be able to re-propose every uncommitted value the entry
  // names (Lemma 2a). Missing bodies — the publish broadcast was lost, or
  // we joined late — are fetched from the other replicas and the takeover
  // resumes on a later tick once they land.
  std::vector<std::pair<Instance, Batch>> resolved;
  bool missing = false;
  for (std::int32_t i = 0; i < info.entry->num_batched; ++i) {
    const BatchedProposalRef& r = info.entry->batched[i];
    if (log_.is_learned(r.instance)) continue;  // decided: nothing to re-propose
    const Batch* body = find_window_body(r.instance, r.digest);
    if (body != nullptr) {
      resolved.emplace_back(r.instance, *body);
      continue;
    }
    missing = true;
    for (NodeId n = 0; n < cfg_.base.num_replicas; ++n) {
      if (n == cfg_.base.self) continue;
      Message fetch(MsgType::kOpxWindowFetchReq, ProtoId::kOnePaxos, cfg_.base.self, n);
      fetch.u.opx_window_fetch_req.instance = r.instance;
      fetch.u.opx_window_fetch_req.digest = r.digest;
      ctx.send(n, fetch);
    }
  }
  if (missing) return;  // fetch-on-adopt in flight; tick() retries the takeover
  UtilityEntry entry;
  entry.kind = UtilityEntry::Kind::kLeaderChange;
  entry.leader = cfg_.base.self;
  entry.acceptor = info.acceptor;
  pending_acceptor_ = info.acceptor;
  pending_register_.assign(info.entry->proposals,
                           info.entry->proposals + info.entry->num_proposals);
  pending_register_batched_ = std::move(resolved);
  switching_ = Switch::kLeaderChange;
  // Anchor to the snapshot the acceptor id was read from (Fig. 12 l.27/29):
  // if any entry lands in between — e.g. the old leader replacing the
  // acceptor — this proposal fails and we re-read instead of adopting a
  // stale acceptor.
  const Instance snapshot = utility_.next_instance();
  const bool started = utility_.propose(ctx, entry, [this](Context& cctx, bool ok) {
    switching_ = Switch::kNone;
    if (!ok) {
      active_acceptor_ = kNoNode;  // Fig. 12 l.31: retry later from scratch
      return;
    }
    active_acceptor_ = pending_acceptor_;
    current_leader_ = cfg_.base.self;
    last_acceptor_contact_ = cctx.now();
    prepare_outstanding_ = false;
    prepare_can_rotate_ = false;  // we need the old acceptor's memory
    for (const Proposal& p : pending_register_) register_proposals(&p, 1);
    for (const auto& [in, value] : pending_register_batched_) register_batched(in, value);
    // The previous leader already adopted this acceptor: expect it to be
    // non-fresh (see the fidelity note in the class comment).
    send_prepare(cctx, /*must_be_fresh=*/false);
  }, snapshot);
  if (!started) switching_ = Switch::kNone;
}

void OnePaxosEngine::relinquish(Context& ctx, NodeId new_leader) {
  const bool had_role = i_am_leader_ || prepare_outstanding_;
  i_am_leader_ = false;
  lease_.reset();  // our grants supported the reign we just lost
  prepare_outstanding_ = false;
  prepare_main_held_ = false;
  prepare_batched_.clear();
  active_acceptor_ = kNoNode;
  recovery_poll_ = false;
  probe_acceptor_ = kNoNode;
  if (new_leader != kNoNode && new_leader != cfg_.base.self) {
    current_leader_ = new_leader;
    last_leader_contact_ = ctx.now();
  }
  if (had_role) {
    // Hand unfinished commands to whoever leads now; executor dedup makes
    // double proposals harmless.
    for (const auto& [in, value] : proposed_) {
      for (const Command& cmd : value) {
        if (cmd.client != kNoNode) pending_.push(cmd, ctx.now());
      }
    }
    proposed_.clear();
    accept_times_.clear();
    forward_pending(ctx);
  }
}

void OnePaxosEngine::forward_pending(Context& ctx) {
  if (current_leader_ == kNoNode || current_leader_ == cfg_.base.self) return;
  for (const Command& cmd : pending_.drain()) {
    if (cmd.client == kNoNode) continue;
    Message fwd(MsgType::kClientRequest, ProtoId::kOnePaxos, cfg_.base.self, current_leader_);
    fwd.u.client_request.cmd = cmd;
    ctx.send(current_leader_, fwd);
  }
}

void OnePaxosEngine::on_utility_decided(Context& ctx, Instance idx, const UtilityEntry& e) {
  if (e.acceptor != kNoNode) ever_acceptors_.insert(e.acceptor);
  alloc_frontier_ = std::max(alloc_frontier_, e.frontier);
  if (e.kind == UtilityEntry::Kind::kLeaderChange) {
    current_leader_epoch_ = std::max(current_leader_epoch_, idx);
    if (e.leader != cfg_.base.self) {
      // "If the leader observes this announcement, it must consider its
      // position as relinquished" (§5.3).
      relinquish(ctx, e.leader);
    }
  } else if (e.kind == UtilityEntry::Kind::kAcceptorChange) {
    if (e.leader != cfg_.base.self && (i_am_leader_ || prepare_outstanding_)) {
      // Lemma 1: only the Global leader inserts AcceptorChange — seeing a
      // foreign one means our leadership is stale.
      relinquish(ctx, e.leader);
    }
  }
}

// ----------------------------------------------------------------- timers

void OnePaxosEngine::tick(Context& ctx) {
  utility_.tick(ctx);
  const Nanos now = ctx.now();

  // While our AcceptorChange (or the adoption that follows it — the phase
  // where a decided entry's refs exist but the window has not re-decided)
  // is in flight, keep the out-of-line window bodies flowing on the retry
  // cadence: the utility proposal retries to a decision on its own, and a
  // decided entry whose bodies were all lost would otherwise leave any
  // future adopter with nothing to fetch.
  if ((switching_ == Switch::kAcceptorChange ||
       (prepare_outstanding_ && prepare_can_rotate_)) &&
      now - last_body_publish_ >= cfg_.base.retry_timeout) {
    publish_window_bodies(ctx);
  }

  // A global leader still establishing itself (prepare in flight after a
  // LeaderChange/AcceptorChange) also heartbeats: follower detectors must
  // stay quiet or they depose it mid-recovery and restart the dance.
  const bool establishing =
      prepare_outstanding_ && utility_.last_leader() == cfg_.base.self;
  if ((i_am_leader_ || establishing) &&
      now - last_heartbeat_sent_ >= cfg_.base.heartbeat_period) {
    last_heartbeat_sent_ = now;
    // With leases on, each heartbeat round is also a renewal round (an
    // establishing leader renews too — grants shield its recovery from
    // impatient takeovers just as they shield its reads later).
    const std::uint32_t lease_seq = lease_.enabled() ? lease_.open_round(now) : 0;
    for (NodeId r = 0; r < cfg_.base.num_replicas; ++r) {
      if (r == cfg_.base.self) continue;
      Message hb(MsgType::kHeartbeat, ProtoId::kOnePaxos, cfg_.base.self, r);
      if (establishing) hb.flags = kFlagEstablishing;  // buys recovery patience
      hb.u.heartbeat.leader = cfg_.base.self;
      hb.u.heartbeat.lease_seq = lease_seq;
      hb.u.heartbeat.committed = log_.first_gap();
      hb.u.heartbeat.ballot.counter = current_leader_epoch_;  // view version
      hb.u.heartbeat.ballot.node = cfg_.base.self;
      ctx.send(r, hb);
    }
  }

  if (i_am_leader_) {
    // Flush-timer path: a partial batch whose oldest command waited
    // flush_after goes out now (no-op in the unbatched regime: pending_ is
    // non-empty only while the window is full).
    pump(ctx);
    // Retry outstanding accepts; detect a silent acceptor.
    bool acceptor_suspect = false;
    for (auto& [in, t] : accept_times_) {
      if (proposed_.count(in) == 0) continue;
      if (now - t.first_sent >= cfg_.base.fd_timeout) acceptor_suspect = true;
      if (now - t.last_sent >= cfg_.base.retry_timeout) send_accept(ctx, in);
    }
    if (accept_times_.empty()) {
      // Idle: keep probing the acceptor so its failure is noticed before
      // the next client request stalls on it.
      if (now - last_ping_sent_ >= cfg_.base.heartbeat_period) {
        last_ping_sent_ = now;
        Message ping(MsgType::kPing, ProtoId::kOnePaxos, cfg_.base.self, active_acceptor_);
        ctx.send(active_acceptor_, ping);
      }
      if (now - last_acceptor_contact_ >= cfg_.base.fd_timeout) acceptor_suspect = true;
    }
    if (acceptor_suspect) on_acceptor_failure(ctx);
    // A leader whose own log has holes below the allocation frontier (lost
    // learns from a previous reign) cannot execute or reply past them; pull
    // the values from the other replicas.
    if (log_.first_gap() < alloc_frontier_) {
      const Instance gap = log_.first_gap();
      if (gap != stuck_gap_) {
        stuck_gap_ = gap;
        stuck_gap_since_ = now;
      }
      if (now - last_catchup_sent_ >= cfg_.base.retry_timeout) {
        last_catchup_sent_ = now;
        for (NodeId r = 0; r < cfg_.base.num_replicas; ++r) {
          if (r == cfg_.base.self) continue;
          Message req(MsgType::kOpxCatchupReq, ProtoId::kOnePaxos, cfg_.base.self, r);
          req.u.opx_catchup_req.from_instance = gap;
          ctx.send(r, req);
        }
      }
      // Many catch-up rounds later the gap is still unanswered: no replica
      // has the instance learned, so its accept died before any acceptor
      // recorded it (a proposer relinquished mid-flight and higher
      // instances moved the frontier past the hole). The paper lets
      // proposers "safely restart the Paxos instance" (§4.3): re-run it
      // with a noop through the current acceptor. A decided-but-unlearned
      // value, were one still in flight somewhere, beats the noop —
      // learn() keeps the first decision and drops our advocacy (noops are
      // never re-pended).
      if (proposed_.count(gap) == 0 &&
          now - stuck_gap_since_ >= cfg_.base.fd_timeout * 4) {
        scratch_.assign(1, Command{});
        proposed_[gap] = scratch_;
        send_accept(ctx, gap);
      }
    } else {
      stuck_gap_ = kNoInstance;
    }
    return;
  }

  if (prepare_outstanding_) {
    if (prepare_can_rotate_ && now - prepare_first_sent_ >= cfg_.base.fd_timeout) {
      // We are the Global leader adopting a backup after our own
      // AcceptorChange, so our `proposed` map is complete. A silent target
      // may be dead — or a reused backup that rebooted and now fails the
      // freshness check. Try the flipped expectation once (safe for an
      // established leader), then pick another backup
      // (on_acceptor_failure re-verifies global leadership).
      if (!prepare_fresh_flag_ && !prepare_flip_tried_) {
        prepare_flip_tried_ = true;
        prepare_outstanding_ = false;
        send_prepare(ctx, /*must_be_fresh=*/true);
        return;
      }
      prepare_flip_tried_ = false;
      prepare_outstanding_ = false;
      on_acceptor_failure(ctx);
    } else if (!prepare_can_rotate_ &&
               now - prepare_first_sent_ >= cfg_.base.fd_timeout * 3) {
      // Takeover adoption has gone unanswered for a long time: the acceptor
      // is dead or silently rebooted, and its short-term memory is
      // unrecoverable — but we ARE the Global leader (the LeaderChange
      // decided). Under the paper's reliable links, every fully-broadcast
      // learn reached its learners, so a frontier poll over the reachable
      // replicas bounds every allocation; above it we may safely restart
      // with a different acceptor ("the proposers can safely restart the
      // Paxos instance", §4.3). Poll, wait one detector period, switch.
      if (utility_.last_leader() != cfg_.base.self) {
        relinquish(ctx, utility_.last_leader());
      } else if (!recovery_poll_) {
        recovery_poll_ = true;
        recovery_poll_started_ = now;
        alloc_frontier_ = std::max(alloc_frontier_, log_.end());
        for (NodeId r = 0; r < cfg_.base.num_replicas; ++r) {
          if (r == cfg_.base.self) continue;
          Message ping(MsgType::kPing, ProtoId::kOnePaxos, cfg_.base.self, r);
          ctx.send(r, ping);
        }
      } else if (now - recovery_poll_started_ >= cfg_.base.fd_timeout) {
        recovery_poll_ = false;
        prepare_outstanding_ = false;
        on_acceptor_failure(ctx);  // AcceptorChange with the polled frontier
      }
    } else if (now - prepare_last_sent_ >= cfg_.base.retry_timeout) {
      // Keep knocking. A takeover proposer (fresh flag false) must NOT
      // hastily replace the acceptor: it does not know the acceptor's
      // short-term memory, and losing it can violate consistency. This is
      // the §5.4 trade-off — wait for the acceptor (or the recovery poll
      // above, once the silence is long enough to mean reboot/death).
      // Retries use a fresh ballot so a response to an older ballot cannot
      // be confused with the current attempt.
      send_prepare(ctx, prepare_fresh_flag_);
    }
    return;
  }

  if (probe_acceptor_ != kNoNode && now - probe_sent_ >= cfg_.base.fd_timeout) {
    // The acceptor never answered the takeover probe: with the leader also
    // suspected this is the §5.4 blocked configuration; retry later.
    probe_acceptor_ = kNoNode;
  }
  if (switching_ == Switch::kNone && !utility_.propose_in_flight() &&
      probe_acceptor_ == kNoNode) {
    if (suspect_leader(now) && (current_leader_ != cfg_.base.self || !pending_.empty())) {
      try_takeover(ctx);
    } else if (!pending_.empty() && current_leader_ != kNoNode &&
               current_leader_ != cfg_.base.self &&
               now - last_leader_contact_ <= cfg_.base.fd_timeout / 2) {
      // Forward held commands only on recent positive evidence the leader
      // is alive — a command queued on client suspicion must not be lobbed
      // at a silent leader just because our own detector has not fired yet.
      forward_pending(ctx);
    }
  }
}

}  // namespace ci::core
