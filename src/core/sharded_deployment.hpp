// The sharded deployment builder: N independent consensus groups, one
// transport.
//
// A ShardedDeployment owns one core::Deployment per group (engines, state
// machines, clients, AgreementRecorder — all per group, so agreement is
// checked inside each group and never across groups), one GroupRouting
// table per group (local<->global node ids under the spec's placement
// policy), and one GroupDemuxEngine per transport node. Backends host the
// demuxes exactly the way they used to host raw engines; everything
// group-related happens behind them.
//
// groups == 1 under kGroupMajor is the identity layout: local ids equal
// global ids and every demux hosts exactly one engine, so a single-group
// ShardSpec reproduces the unsharded deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "consensus/group.hpp"
#include "core/cluster_spec.hpp"
#include "core/deployment.hpp"
#include "core/run_result.hpp"

namespace ci::core {

using consensus::GroupId;

class ShardedDeployment {
 public:
  ShardedDeployment(const ShardSpec& shard, bool auto_start_clients);
  ~ShardedDeployment();

  ShardedDeployment(const ShardedDeployment&) = delete;
  ShardedDeployment& operator=(const ShardedDeployment&) = delete;

  const ShardSpec& shard() const { return shard_; }
  std::int32_t num_groups() const { return shard_.groups; }
  // Transport nodes the backends must host (excluding externals).
  std::int32_t num_nodes() const { return shard_.total_nodes(); }

  Deployment& group(GroupId g) {
    CI_CHECK(g >= 0 && g < num_groups());
    return *groups_[static_cast<std::size_t>(g)];
  }
  const Deployment& group(GroupId g) const {
    CI_CHECK(g >= 0 && g < num_groups());
    return *groups_[static_cast<std::size_t>(g)];
  }
  AgreementRecorder& recorder(GroupId g) { return group(g).recorder(); }

  consensus::NodeId global_node(GroupId g, consensus::NodeId local) const {
    return shard_.global_node(g, local);
  }

  // The engine a transport should host on node `id`: always a demux.
  consensus::GroupDemuxEngine* node_engine(consensus::NodeId id) {
    return demux_[static_cast<std::size_t>(id)].get();
  }

  // Every (group, transport node) pair hosting a client engine — the
  // targets of rt's per-group kStart broadcast. Under co-location one node
  // appears once per group.
  const std::vector<std::pair<GroupId, consensus::NodeId>>& client_targets() const {
    return client_targets_;
  }

  // One delivery sink for every demux; `global` is the transport node the
  // delivering engine runs on. Sim records live; rt logs per node thread
  // and replays after join.
  using DeliverHook =
      std::function<void(consensus::NodeId global, GroupId g, consensus::NodeId local,
                         consensus::Instance in, const consensus::Command& cmd)>;
  void set_deliver_hook(DeliverHook hook);

  // Registers an external participant (e.g. a client-layer session) that
  // talks inside EVERY group from one extra transport node past
  // num_nodes(): maps `local` to `global` in each group's routing table and
  // returns a demux hosting `per_group[g]` as group g's engine. Call before
  // the transport starts; the demux is owned by the caller, the routing by
  // this object.
  std::unique_ptr<consensus::GroupDemuxEngine> make_external_demux(
      consensus::NodeId global, consensus::NodeId local,
      const std::vector<consensus::Engine*>& per_group);

  // Id allocation for external sessions: the k-th session (k = sessions
  // registered so far) occupies transport node num_nodes()+k and group-local
  // participant id nodes_per_group()+k in every group. ServiceClient wires
  // its sessions through this so backends can size transports as
  // num_nodes() + external_count().
  struct ExternalSeat {
    consensus::NodeId global = consensus::kNoNode;
    consensus::NodeId local = consensus::kNoNode;
  };
  ExternalSeat next_external_seat() const {
    return ExternalSeat{num_nodes() + externals_, shard_.nodes_per_group() + externals_};
  }
  std::int32_t external_count() const { return externals_; }

  // ---- Aggregates over all groups (live-readable where Deployment's are) ----
  bool clients_done() const;
  std::uint64_t total_committed() const;
  std::uint64_t total_issued() const;
  std::uint64_t total_local_reads() const;
  Histogram merged_latency() const;
  bool consistent() const;
  std::uint64_t deliveries() const;

  // Merged result (committed/issued/latency summed over groups; consistent
  // = every group's recorder agreed). The backend fills duration and
  // total_messages.
  RunResult collect() const;
  // One group's view, for per-shard reporting.
  RunResult collect_group(GroupId g) const { return group(g).collect(); }

 private:
  ShardSpec shard_;
  std::vector<std::unique_ptr<Deployment>> groups_;
  std::vector<std::unique_ptr<consensus::GroupRouting>> routing_;  // per group
  std::vector<std::unique_ptr<consensus::GroupDemuxEngine>> demux_;  // per node
  std::vector<std::pair<GroupId, consensus::NodeId>> client_targets_;
  std::int32_t externals_ = 0;  // external sessions registered so far
};

}  // namespace ci::core
