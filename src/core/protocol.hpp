// Protocol selection and node composition shared by the simulator and the
// real-thread runtime — the top-level factory of the library.
#pragma once

#include <memory>

#include "consensus/engine.hpp"

namespace ci::core {

using consensus::Context;
using consensus::Engine;
using consensus::EngineConfig;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;

enum class Protocol { kTwoPc, kBasicPaxos, kMultiPaxos, kOnePaxos };

const char* protocol_name(Protocol p);

struct ProtocolOptions {
  // 2PC coordinator / Paxos-family initial leader.
  NodeId leader = 0;
  // 1Paxos initial active acceptor (§5.4 placement: != leader).
  NodeId initial_acceptor = 1;
  // Multi-Paxos acceptor-set size (-1 = all replicas) for the A2 ablation.
  std::int32_t acceptor_count = -1;
};

// Builds the replica engine for one node.
std::unique_ptr<Engine> make_replica_engine(Protocol p, const EngineConfig& cfg,
                                            const ProtocolOptions& opts);

// A joint node (paper §7.4): one replica engine plus one client engine
// sharing a node id. Client-facing traffic routes to the client engine,
// everything else to the replica.
class JointEngine final : public Engine {
 public:
  JointEngine(Engine* replica, Engine* client) : replica_(replica), client_(client) {}

  void start(Context& ctx) override {
    replica_->start(ctx);
    client_->start(ctx);
  }

  void on_message(Context& ctx, const Message& m) override {
    switch (m.type) {
      case MsgType::kClientReply:
      case MsgType::kStart:
      case MsgType::kStop:
        client_->on_message(ctx, m);
        return;
      default:
        replica_->on_message(ctx, m);
        return;
    }
  }

  void tick(Context& ctx) override {
    replica_->tick(ctx);
    client_->tick(ctx);
  }

  NodeId believed_leader() const override { return replica_->believed_leader(); }

 private:
  Engine* replica_;
  Engine* client_;
};

}  // namespace ci::core
