// The unified result of running a ClusterSpec on any backend.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/time.hpp"

namespace ci::core {

struct RunResult {
  std::uint64_t committed = 0;    // client requests acknowledged
  std::uint64_t issued = 0;       // client requests sent (>= committed)
  std::uint64_t local_reads = 0;  // reads serviced without the network (§7.5)
  std::uint64_t total_messages = 0;  // boundary-crossing messages (Fig. 3's count)
  std::uint64_t total_bytes = 0;     // encoded wire frame bytes behind them
  std::uint64_t deliveries = 0;      // state-machine executions across replicas
  Nanos duration = 0;  // measured window: virtual time (sim) or wall time (rt)
  Histogram latency;   // per-request commit latency, merged over clients
  bool consistent = true;  // cross-replica per-instance agreement held

  double throughput_ops() const {
    return duration > 0 ? static_cast<double>(committed) * 1e9 /
                              static_cast<double>(duration)
                        : 0.0;
  }
};

}  // namespace ci::core
