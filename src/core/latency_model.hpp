// Network cost models for the discrete-event simulator.
//
// The simulator charges a node's CPU for every message it sends and
// receives (the *transmission* delay of §3) and delays delivery by the
// link's *propagation* delay. The two presets encode the paper's own §3
// measurements:
//
//             trans    prop     trans/prop
//   many-core 0.5 µs   0.55 µs  ~1
//   LAN       2 µs     135 µs   ~0.015
//
// Because cores process events serially, throughput saturation emerges from
// message counts — the paper's central claim — rather than being scripted.
//
// Lives in core (not sim) because the backend-agnostic ClusterSpec carries
// it as the sim-backend parameterization.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace ci::core {

struct LatencyModel {
  Nanos trans_send = 500;       // CPU cost to put one message on the medium
  Nanos trans_recv = 500;       // CPU cost to take one message off it
  Nanos prop = 550;             // propagation delay between two nodes
  Nanos prop_jitter = 100;      // uniform extra [0, prop_jitter)
  Nanos handler_cost = 100;     // protocol work per message
  double drop_probability = 0;  // per-message loss (0 on many-core: §1 —
                                // "link failures are not an issue")

  // Optional per-byte sender cost: when > 0, putting a frame on the medium
  // additionally charges frame_bytes / bytes_per_second of CPU, using the
  // encoded frame size the wire codec reports (what a socket backend would
  // push through the kernel — batched frames cost more than heartbeats).
  // 0 = off: runs stay bit-reproducible with the pre-bandwidth model, which
  // charges per message only. A LAN model would set this to link bandwidth.
  double bytes_per_second = 0;

  Nanos per_byte_cost(std::size_t frame_bytes) const {
    if (bytes_per_second <= 0) return 0;
    return static_cast<Nanos>(static_cast<double>(frame_bytes) * 1e9 / bytes_per_second);
  }

  static LatencyModel many_core() { return LatencyModel{}; }

  static LatencyModel lan() {
    LatencyModel m;
    m.trans_send = 2 * kMicrosecond;
    m.trans_recv = 2 * kMicrosecond;
    m.prop = 135 * kMicrosecond;
    m.prop_jitter = 20 * kMicrosecond;
    m.handler_cost = 1 * kMicrosecond;
    return m;
  }
};

}  // namespace ci::core
