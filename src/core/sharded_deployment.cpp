#include "core/sharded_deployment.hpp"

#include "common/check.hpp"

namespace ci::core {

using consensus::NodeId;

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kGroupMajor:
      return "group-major";
    case Placement::kInterleaved:
      return "interleaved";
    case Placement::kCoLocated:
      return "colocated";
  }
  return "?";
}

ShardedDeployment::ShardedDeployment(const ShardSpec& shard, bool auto_start_clients)
    : shard_(shard) {
  CI_CHECK(shard_.groups >= 1);
  const std::int32_t G = shard_.groups;
  const std::int32_t per_group = shard_.nodes_per_group();
  // Guard total_nodes() against int32 overflow (the CLI accepts any group
  // count up to INT32_MAX) and the routing tables against runaway memory:
  // each group's dense global->local table spans up to total_nodes()
  // entries, so the tables sum to ~groups x total_nodes(). 4M entries
  // (~16 MB) is far beyond anything a one-machine deployment can host.
  const std::int64_t engines64 = static_cast<std::int64_t>(G) * per_group;
  const std::int64_t span64 =  // what one group's dense table spans
      shard_.placement == Placement::kCoLocated ? per_group : engines64;
  CI_CHECK_MSG(engines64 <= (1 << 20) && span64 * G <= (1 << 22),
               "sharded deployment too large (groups x nodes_per_group)");

  for (GroupId g = 0; g < G; ++g) {
    groups_.push_back(std::make_unique<Deployment>(shard_.group_spec(g), auto_start_clients));
    auto routing = std::make_unique<consensus::GroupRouting>();
    for (NodeId local = 0; local < per_group; ++local) {
      routing->map(local, shard_.global_node(g, local));
    }
    routing_.push_back(std::move(routing));
  }

  for (NodeId n = 0; n < shard_.total_nodes(); ++n) {
    demux_.push_back(std::make_unique<consensus::GroupDemuxEngine>(n));
  }
  for (GroupId g = 0; g < G; ++g) {
    for (NodeId local = 0; local < per_group; ++local) {
      const NodeId global = shard_.global_node(g, local);
      demux_[static_cast<std::size_t>(global)]->add_group(
          g, groups_[static_cast<std::size_t>(g)]->node_engine(local), local,
          routing_[static_cast<std::size_t>(g)].get());
    }
    for (const NodeId local : groups_[static_cast<std::size_t>(g)]->client_node_ids()) {
      client_targets_.emplace_back(g, shard_.global_node(g, local));
    }
  }
}

ShardedDeployment::~ShardedDeployment() = default;

void ShardedDeployment::set_deliver_hook(DeliverHook hook) {
  for (auto& d : demux_) {
    const NodeId global = d->global_self();
    d->set_deliver_hook([hook, global](GroupId g, NodeId local, consensus::Instance in,
                                       const consensus::Command& cmd) {
      hook(global, g, local, in, cmd);
    });
  }
}

std::unique_ptr<consensus::GroupDemuxEngine> ShardedDeployment::make_external_demux(
    NodeId global, NodeId local, const std::vector<consensus::Engine*>& per_group) {
  CI_CHECK(global >= num_nodes());
  CI_CHECK(static_cast<std::int32_t>(per_group.size()) == shard_.groups);
  auto demux = std::make_unique<consensus::GroupDemuxEngine>(global);
  for (GroupId g = 0; g < shard_.groups; ++g) {
    routing_[static_cast<std::size_t>(g)]->map(local, global);
    demux->add_group(g, per_group[static_cast<std::size_t>(g)], local,
                     routing_[static_cast<std::size_t>(g)].get());
  }
  externals_++;
  return demux;
}

bool ShardedDeployment::clients_done() const {
  for (const auto& d : groups_) {
    if (!d->clients_done()) return false;
  }
  return true;
}

std::uint64_t ShardedDeployment::total_committed() const {
  std::uint64_t sum = 0;
  for (const auto& d : groups_) sum += d->total_committed();
  return sum;
}

std::uint64_t ShardedDeployment::total_issued() const {
  std::uint64_t sum = 0;
  for (const auto& d : groups_) sum += d->total_issued();
  return sum;
}

std::uint64_t ShardedDeployment::total_local_reads() const {
  std::uint64_t sum = 0;
  for (const auto& d : groups_) sum += d->total_local_reads();
  return sum;
}

Histogram ShardedDeployment::merged_latency() const {
  Histogram h;
  for (const auto& d : groups_) h.merge(d->merged_latency());
  return h;
}

bool ShardedDeployment::consistent() const {
  for (const auto& d : groups_) {
    if (!d->recorder().consistent()) return false;
  }
  return true;
}

std::uint64_t ShardedDeployment::deliveries() const {
  std::uint64_t sum = 0;
  for (const auto& d : groups_) sum += d->recorder().deliveries();
  return sum;
}

RunResult ShardedDeployment::collect() const {
  RunResult res;
  res.committed = total_committed();
  res.issued = total_issued();
  res.local_reads = total_local_reads();
  res.latency = merged_latency();
  res.deliveries = deliveries();
  res.consistent = consistent();
  return res;
}

}  // namespace ci::core
