#include "core/deployment.hpp"

#include "common/check.hpp"
#include "consensus/multi_paxos.hpp"
#include "consensus/two_pc.hpp"
#include "core/one_paxos.hpp"

namespace ci::core {

using consensus::ClientConfig;
using consensus::Command;
using consensus::EngineConfig;
using consensus::NodeId;

Deployment::Deployment(const ClusterSpec& spec, bool auto_start_clients)
    : spec_(spec), recorder_(spec.num_replicas) {
  const std::int32_t R = spec_.num_replicas;
  const std::int32_t C = spec_.client_count();
  CI_CHECK(R >= 1);

  auto base_cfg = [&](NodeId self) {
    EngineConfig cfg = spec_.engine;
    cfg.self = self;
    cfg.num_replicas = R;
    cfg.seed = spec_.seed;
    cfg.state_machine = nullptr;
    return cfg;
  };

  ProtocolOptions popts;
  popts.acceptor_count = spec_.acceptor_count;
  for (NodeId r = 0; r < R; ++r) {
    sms_.push_back(spec_.state_machine_factory
                       ? spec_.state_machine_factory(r)
                       : std::make_unique<consensus::MapStateMachine>());
    CI_CHECK_MSG(sms_.back() != nullptr, "state_machine_factory returned null");
    EngineConfig cfg = base_cfg(r);
    cfg.state_machine = sms_.back().get();
    replicas_.push_back(make_replica_engine(spec_.protocol, cfg, popts));
  }

  for (std::int32_t c = 0; c < C; ++c) {
    const NodeId self = spec_.joint ? c : R + c;
    ClientConfig cc;
    cc.base = base_cfg(self);
    cc.initial_target = 0;  // the paper's clients start at core 0
    cc.request_timeout = spec_.workload.request_timeout;
    cc.think_time = spec_.workload.think_time;
    cc.read_fraction = spec_.workload.read_fraction;
    cc.total_requests = spec_.workload.requests_per_client;
    cc.coalesce = spec_.workload.client_coalesce;
    cc.auto_start = auto_start_clients;
    if (spec_.joint && spec_.joint_local_reads && spec_.protocol == Protocol::kTwoPc) {
      auto* replica =
          static_cast<consensus::TwoPcEngine*>(replicas_[static_cast<std::size_t>(c)].get());
      auto* sm = sms_[static_cast<std::size_t>(c)].get();
      cc.local_read = [replica, sm](const Command& cmd, std::uint64_t* out) {
        // §7.5: serviceable locally unless the replica sits between the two
        // phases of an ongoing 2PC round.
        if (replica->has_prepared_uncommitted()) return false;
        *out = sm->read(cmd.key);
        return true;
      };
    }
    clients_.push_back(std::make_unique<consensus::ClientEngine>(cc));
    client_node_ids_.push_back(self);
  }

  if (spec_.joint) {
    for (NodeId r = 0; r < R; ++r) {
      joint_engines_.push_back(std::make_unique<JointEngine>(
          replicas_[static_cast<std::size_t>(r)].get(),
          clients_[static_cast<std::size_t>(r)].get()));
      node_order_.push_back(joint_engines_.back().get());
    }
  } else {
    for (NodeId r = 0; r < R; ++r) node_order_.push_back(replicas_[static_cast<std::size_t>(r)].get());
    for (std::int32_t c = 0; c < C; ++c) node_order_.push_back(clients_[static_cast<std::size_t>(c)].get());
  }
}

Deployment::~Deployment() = default;

OnePaxosEngine* Deployment::one_paxos(NodeId r) {
  if (spec_.protocol != Protocol::kOnePaxos) return nullptr;
  return static_cast<OnePaxosEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

consensus::MultiPaxosEngine* Deployment::multi_paxos(NodeId r) {
  if (spec_.protocol != Protocol::kMultiPaxos) return nullptr;
  return static_cast<consensus::MultiPaxosEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

consensus::TwoPcEngine* Deployment::two_pc(NodeId r) {
  if (spec_.protocol != Protocol::kTwoPc) return nullptr;
  return static_cast<consensus::TwoPcEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

bool Deployment::clients_done() const {
  for (const auto& c : clients_) {
    if (!c->done()) return false;
  }
  return true;
}

std::uint64_t Deployment::total_committed() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->committed();
  return sum;
}

std::uint64_t Deployment::total_issued() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->issued();
  return sum;
}

std::uint64_t Deployment::total_local_reads() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->local_reads();
  return sum;
}

Histogram Deployment::merged_latency() const {
  Histogram h;
  for (const auto& c : clients_) h.merge(c->latency());
  return h;
}

RunResult Deployment::collect() const {
  RunResult res;
  res.committed = total_committed();
  res.issued = total_issued();
  res.local_reads = total_local_reads();
  res.latency = merged_latency();
  res.deliveries = recorder_.deliveries();
  res.consistent = recorder_.consistent();
  return res;
}

}  // namespace ci::core
