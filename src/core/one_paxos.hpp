// 1Paxos — the paper's contribution (§4–5, Appendix A).
//
// A Paxos-family protocol whose acceptor role is played by a *single* node
// at a time, with availability provided by idle backup acceptors instead of
// acceptor replication. The fast path per command is:
//
//     client -> leader: request
//     leader -> active acceptor: accept_request(in, pn, v)
//     acceptor -> all learners: learn(in, v)
//     leader -> client: reply
//
// — half the boundary-crossing messages of collapsed Multi-Paxos on three
// nodes (Fig. 3), which is the whole point on a many-core where transmission
// delay dominates (§3).
//
// Reconfiguration goes through PaxosUtility (§5.2–5.4):
//   * AcceptorFailure: only the Global leader may replace the acceptor; the
//     AcceptorChange entry carries the uncommitted proposals so the next
//     adopter re-proposes identical values (Lemma 2a).
//   * LeaderFailure: any proposer announces LeaderChange(me, A) for the
//     *current* acceptor, then adopts it with a prepare request; the
//     prepare response returns the acceptor's short-term memory (Lemma 2b).
//   * The IamFresh / YouMustBeFresh handshake rejects adopt attempts whose
//     freshness expectation mismatches the acceptor's, catching silent
//     acceptor reboots. NOTE: the published pseudo-code (Fig. 12 line 34)
//     sets YouMustBeFresh = true on the leader-takeover path, which would
//     make every takeover hit this check; per the prose we send false there
//     (see DESIGN.md "Pseudo-code fidelity note").
//
// Placement follows §5.4: the initial leader and initial active acceptor are
// distinct nodes, so a single slow core can always be routed around.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "consensus/engine.hpp"
#include "consensus/lease.hpp"
#include "consensus/log.hpp"
#include "consensus/paxos_utility.hpp"
#include "consensus/state_machine.hpp"

namespace ci::core {

using namespace ci::consensus;

struct OnePaxosConfig {
  EngineConfig base;
  NodeId initial_leader = 0;
  NodeId initial_acceptor = 1;
};

class OnePaxosEngine final : public Engine {
 public:
  explicit OnePaxosEngine(const OnePaxosConfig& cfg);

  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;
  NodeId believed_leader() const override { return current_leader_; }

  bool is_leader() const { return i_am_leader_; }
  // The acceptor this node (as leader) currently works with; kNoNode on
  // followers.
  NodeId active_acceptor() const { return active_acceptor_; }
  bool is_fresh_acceptor() const { return i_am_fresh_; }
  const ReplicatedLog& log() const { return log_; }
  const PaxosUtility& utility() const { return utility_; }

  // Test hook: models the paper's "acceptor silently reboots" scenario by
  // dropping all volatile acceptor-role state (hpn, ap, freshness).
  void reset_acceptor_state();

  // Lease introspection (tests/reads): does this node hold the read fast
  // path at `now`, and its current near-cache epoch.
  bool holds_lease(Nanos now) const {
    return i_am_leader_ && lease_.held(now, cfg_.base.num_replicas, /*self_votes=*/true) &&
           log_.first_gap() >= read_floor_;
  }
  std::uint32_t write_epoch() const { return write_epoch_; }
  std::uint64_t lease_reads() const { return lease_reads_; }

 private:
  struct AcceptTimes {
    Nanos first_sent = 0;
    Nanos last_sent = 0;
  };
  enum class Switch : std::uint8_t { kNone, kAcceptorChange, kLeaderChange };

  // An accepted-but-undecided value in the acceptor's short-term memory.
  struct AcceptedValue {
    ProposalNum pn;
    Batch value;
  };

  // Fast path.
  void handle_client_request(Context& ctx, const Message& m);
  bool try_lease_read(Context& ctx, const Command& cmd);
  void handle_lease_grant(const Message& m);
  void pump(Context& ctx);
  std::int32_t effective_window() const;
  void send_accept(Context& ctx, Instance in);
  void send_learn(Context& ctx, NodeId dst, Instance in, const Batch& value);
  void send_learn_run(Context& ctx, NodeId dst, Instance first, const Batch& cmds);
  void handle_accept_req(Context& ctx, Instance in, ProposalNum pn, const Batch& value,
                         NodeId src);
  void learn(Context& ctx, Instance in, const Batch& v);

  // Adoption / reconfiguration.
  void send_prepare(Context& ctx, bool must_be_fresh);
  void handle_prepare_req(Context& ctx, const Message& m);
  void handle_prepare_resp(Context& ctx, const Message& m);
  void handle_prepare_batch_resp(Context& ctx, const Message& m);
  void adopt(Context& ctx, const Message& m);
  void handle_abandon(Context& ctx, const Message& m);
  void on_acceptor_failure(Context& ctx);
  void try_takeover(Context& ctx);
  void begin_leader_change(Context& ctx);
  void on_utility_decided(Context& ctx, Instance idx, const UtilityEntry& e);
  void relinquish(Context& ctx, NodeId new_leader);
  NodeId select_acceptor(NodeId failed) const;
  void register_proposals(const Proposal* props, std::int32_t n);
  void register_batched(Instance in, const Batch& value);
  void fill_uncommitted(UtilityEntry* entry) const;
  // Out-of-line window bodies (AcceptorChange batched refs; DESIGN.md §1c).
  void publish_window_bodies(Context& ctx);
  void store_window_body(Instance in, std::uint64_t digest, const Batch& value);
  const Batch* find_window_body(Instance in, std::uint64_t digest) const;
  void handle_window_body(Context& ctx, const Message& m);
  void handle_window_fetch(Context& ctx, const Message& m);
  ProposalNum new_pn();
  bool suspect_leader(Nanos now) const;
  void forward_pending(Context& ctx);

  OnePaxosConfig cfg_;
  ReplicatedLog log_;
  Executor executor_;
  Rng rng_;
  PaxosUtility utility_;

  // Proposer / leader state (Fig. 12/13 variables).
  bool i_am_leader_ = false;              // IamLeader
  NodeId active_acceptor_ = kNoNode;      // Aa (kNoNode == null)
  ProposalNum my_pn_;                     // pn
  std::int64_t pn_counter_ = 0;
  std::map<Instance, Batch> proposed_;    // proposed[], uncommitted only
  std::map<Instance, AcceptTimes> accept_times_;
  Batcher pending_;
  std::unordered_set<std::uint64_t> advocated_;
  Instance next_instance_ = 0;
  // Reused single-command wrapper for the legacy-frame dispatch path, so
  // the unbatched regime stays allocation-free per message (handlers copy
  // the value before any re-entry can occur).
  Batch scratch_;
  // Lower bound below which no new command may ever be allocated: the max
  // of every AcceptorChange frontier observed and every adopted acceptor's
  // frontier. Protects already-decided instances whose learn this node
  // missed (message loss) from being re-filled.
  Instance alloc_frontier_ = 0;

  // Outstanding prepare request.
  bool prepare_outstanding_ = false;
  bool prepare_fresh_flag_ = false;
  // True when this adoption follows our own AcceptorChange: our `proposed`
  // map is complete, so a dead target may be rotated away from. False after
  // a LeaderChange takeover: the old acceptor's memory is irreplaceable and
  // we must wait for it (§5.4).
  bool prepare_can_rotate_ = false;
  // One freshness-expectation flip per adoption: a reused backup that
  // silently rebooted looks fresh when we expect non-fresh. An established
  // leader (complete proposed map) may safely adopt it as fresh; a takeover
  // proposer must NOT (the mismatch there signals unrecoverable data loss).
  bool prepare_flip_tried_ = false;
  Nanos prepare_first_sent_ = 0;
  Nanos prepare_last_sent_ = 0;
  // Batched ap entries arrive as kOpxPrepareBatchResp sidecars ahead of the
  // main response, which counts them; the main response is held here until
  // the count is complete (reordering), and retries with a fresh ballot
  // cover loss. Both keyed to my_pn_ — send_prepare clears them.
  std::map<Instance, Batch> prepare_batched_;
  bool prepare_main_held_ = false;
  Message prepare_held_main_;

  // Reconfiguration in flight.
  Switch switching_ = Switch::kNone;
  NodeId pending_acceptor_ = kNoNode;
  bool pending_must_be_fresh_ = true;
  std::vector<Proposal> pending_register_;
  std::vector<std::pair<Instance, Batch>> pending_register_batched_;

  // Bodies of batched uncommitted values named by AcceptorChange refs,
  // keyed (instance, digest): filled by kOpxWindowBody broadcasts (and by
  // our own publishes), consulted when adopting an entry, answered back out
  // on kOpxWindowFetchReq, pruned as instances decide. Bounded by the
  // uncommitted window the refs describe.
  std::map<std::pair<Instance, std::uint64_t>, Batch> window_bodies_;
  // Last publish_window_bodies broadcast; tick() republishes on the retry
  // cadence while an AcceptorChange (or the adoption that follows it) is
  // in flight, so a lost broadcast doesn't depend on fetch alone.
  Nanos last_body_publish_ = 0;

  // Takeover probe: §5.3 allows a proposer to take the leadership "given
  // that the active acceptor is still running" — so the acceptor is pinged
  // first, and the LeaderChange is announced only after it answers.
  // Announcing toward a dead acceptor would depose the one node that holds
  // the knowledge needed to replace it (see the races test).
  NodeId probe_acceptor_ = kNoNode;
  Nanos probe_sent_ = 0;

  // Frontier recovery poll: run by a Global leader whose takeover adoption
  // went unanswered long enough to mean the acceptor rebooted or died (its
  // short-term memory is gone either way). Pongs carry each replica's log
  // end; their max bounds every allocation that could have been partially
  // learned, making a fresh AcceptorChange safe.
  bool recovery_poll_ = false;
  Nanos recovery_poll_started_ = 0;

  // Every node that has ever been the active acceptor (from the utility
  // log). A reused backup is adopted with you_must_be_fresh=false: it still
  // holds an hpn from its previous stint, which is not a reboot.
  std::set<NodeId> ever_acceptors_;

  // Acceptor role state.
  ProposalNum hpn_;                       // hpn
  bool i_am_fresh_ = true;                // IamFresh
  std::map<Instance, AcceptedValue> ap_;  // ap

  // Views / failure detection. The leader view is versioned by the utility
  // index of the LeaderChange that installed it, so stale heartbeats from a
  // slow deposed leader cannot roll the view back.
  NodeId current_leader_ = kNoNode;
  Instance current_leader_epoch_ = 0;  // bootstrap LeaderChange index
  Nanos last_leader_contact_ = 0;
  Instance leader_committed_seen_ = 0;  // commit frontier from heartbeats
  Nanos leader_progress_at_ = 0;        // last time that frontier moved
  Nanos last_acceptor_contact_ = 0;
  Nanos last_heartbeat_sent_ = 0;
  Nanos last_ping_sent_ = 0;
  Nanos last_catchup_sent_ = 0;
  // Leader-side gap-restart bookkeeping (§4.3): the first unlearned
  // instance we are stuck behind and since when. When catch-up rounds to
  // every replica leave the same gap unanswered for several detector
  // periods, no reachable replica learned the instance — its accept was
  // lost before any acceptor saw it — and the leader re-runs the instance
  // with a noop through the current acceptor (ordinary Paxos, so a racing
  // late learn still wins via the is_learned guard).
  Instance stuck_gap_ = kNoInstance;
  Nanos stuck_gap_since_ = 0;
  Nanos fd_jitter_ = 0;

  // Leader leases (DESIGN.md §1f; off unless cfg_.base.lease_duration > 0).
  // 1Paxos elects through the utility log, so the follower-side promise
  // gates kUtilPhase1Req/kUtilPhase2Req from non-grantees and try_takeover,
  // rather than a Paxos phase 1. Grants echo the heartbeat's view version
  // ({current_leader_epoch_, leader}), and the electorate is all replicas.
  LeaseLedger lease_;      // leader side: grants followers gave us
  FollowerLease granted_;  // follower side: our outstanding promise
  // No lease read below this applied frontier: set from the adopted
  // acceptor's frontier, which bounds every instance the previous regime
  // could have decided (and so could have exposed to its own lease readers).
  Instance read_floor_ = 0;
  // Applied-mutation counter, stamped into ClientReply::lease_epoch as the
  // session near-cache epoch. Deterministic across replicas (a function of
  // the applied log prefix); starts at 1 (0 = "not reported"), skips 0 on
  // u32 wrap.
  std::uint32_t write_epoch_ = 1;
  std::uint64_t lease_reads_ = 0;  // fast-path reads served (introspection)
};

}  // namespace ci::core

