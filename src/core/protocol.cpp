#include "core/protocol.hpp"

#include "consensus/basic_paxos.hpp"
#include "consensus/multi_paxos.hpp"
#include "consensus/two_pc.hpp"
#include "core/one_paxos.hpp"

namespace ci::core {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kTwoPc:
      return "2PC";
    case Protocol::kBasicPaxos:
      return "Basic-Paxos";
    case Protocol::kMultiPaxos:
      return "Multi-Paxos";
    case Protocol::kOnePaxos:
      return "1Paxos";
  }
  return "?";
}

std::unique_ptr<Engine> make_replica_engine(Protocol p, const EngineConfig& cfg,
                                            const ProtocolOptions& opts) {
  switch (p) {
    case Protocol::kTwoPc: {
      consensus::TwoPcConfig tc;
      tc.base = cfg;
      tc.coordinator = opts.leader;
      return std::make_unique<consensus::TwoPcEngine>(tc);
    }
    case Protocol::kBasicPaxos:
      return std::make_unique<consensus::BasicPaxosEngine>(cfg);
    case Protocol::kMultiPaxos: {
      consensus::MultiPaxosConfig mc;
      mc.base = cfg;
      mc.initial_leader = opts.leader;
      mc.acceptor_count = opts.acceptor_count;
      return std::make_unique<consensus::MultiPaxosEngine>(mc);
    }
    case Protocol::kOnePaxos: {
      OnePaxosConfig oc;
      oc.base = cfg;
      oc.initial_leader = opts.leader;
      oc.initial_acceptor = cfg.num_replicas > 1 ? opts.initial_acceptor : opts.leader;
      return std::make_unique<OnePaxosEngine>(oc);
    }
  }
  return nullptr;
}

}  // namespace ci::core
