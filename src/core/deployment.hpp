// The shared deployment builder: turns a ClusterSpec into wired engines.
//
// Both backends used to duplicate this — SimCluster::build() and RtCluster's
// constructor each created state machines, replica engines, client engines,
// the 2PC-Joint local-read hook, and joint co-location. Deployment does it
// once; SimCluster and RtCluster only attach the result to their transport
// (SimNet vs qclt::Network) and drive time.
//
// Node id layout (shared by both backends):
//   * separate:  replicas 0..R-1, clients R..R+C-1
//   * joint:     nodes 0..R-1, each hosting replica r + client r (§7.4)
// Backend-private helpers (rt's load manager) take ids past node_count().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "consensus/client.hpp"
#include "consensus/state_machine.hpp"
#include "core/cluster_spec.hpp"
#include "core/run_result.hpp"

namespace ci::consensus {
class MultiPaxosEngine;
class TwoPcEngine;
}  // namespace ci::consensus

namespace ci::core {

class OnePaxosEngine;

// Cross-node agreement record: instance -> first value delivered; every
// later delivery must match (consistency) and every delivered command must
// have been issued by a client (non-triviality). Backends feed it from
// their delivery paths: sim live from the deliver callback, rt post-join
// from each node's delivered log. Not internally synchronized.
//
// Under batching an instance's value is a run of commands, delivered one by
// one in batch order; each node's deliveries arrive in log order, so a
// per-node cursor recovers the position inside the instance and the record
// compares command-by-command. When a node moves past an instance, the
// batch LENGTH it delivered is checked against the first complete delivery
// too — agreeing on a prefix but not the length is still disagreement.
class AgreementRecorder {
 public:
  explicit AgreementRecorder(std::int32_t num_replicas)
      : delivered_(static_cast<std::size_t>(num_replicas)) {}

  void record(consensus::NodeId node, consensus::Instance in,
              const consensus::Command& cmd) {
    deliveries_++;
    std::int32_t offset = 0;
    if (node >= 0 && node < static_cast<consensus::NodeId>(delivered_.size())) {
      delivered_[static_cast<std::size_t>(node)].push_back(cmd);
      Cursor& cur = cursors_[node];
      if (cur.in == in) {
        offset = ++cur.offset;
      } else {
        if (cur.in != consensus::kNoInstance) finalize_length(cur.in, cur.offset + 1);
        cur.in = in;
        cur.offset = 0;
      }
    }
    auto& slots = decided_[in];
    if (offset < static_cast<std::int32_t>(slots.size())) {
      if (!(slots[static_cast<std::size_t>(offset)] == cmd)) consistent_ = false;
    } else if (offset == static_cast<std::int32_t>(slots.size())) {
      slots.push_back(cmd);
    } else {
      consistent_ = false;  // a delivery skipped a slot: orders diverged
    }
    if (!cmd.is_noop() && cmd.client == consensus::kNoNode) consistent_ = false;
  }

  bool consistent() const { return consistent_; }
  std::uint64_t deliveries() const { return deliveries_; }

  // Decided values by instance (each a batch of >= 1 commands).
  const std::map<consensus::Instance, std::vector<consensus::Command>>& decided() const {
    return decided_;
  }

  // The decided commands flattened in (instance, batch-position) order —
  // the canonical command sequence parity tests compare.
  std::vector<consensus::Command> decided_sequence() const {
    std::vector<consensus::Command> out;
    for (const auto& [in, slots] : decided_) out.insert(out.end(), slots.begin(), slots.end());
    return out;
  }

  // Per-replica delivered sequences, for prefix checks.
  const std::vector<std::vector<consensus::Command>>& delivered_by_node() const {
    return delivered_;
  }

 private:
  struct Cursor {
    consensus::Instance in = consensus::kNoInstance;
    std::int32_t offset = 0;
  };

  void finalize_length(consensus::Instance in, std::int32_t length) {
    auto [it, inserted] = lengths_.emplace(in, length);
    if (!inserted && it->second != length) consistent_ = false;
  }

  std::map<consensus::Instance, std::vector<consensus::Command>> decided_;
  std::map<consensus::Instance, std::int32_t> lengths_;  // first finalized batch length
  std::map<consensus::NodeId, Cursor> cursors_;
  std::vector<std::vector<consensus::Command>> delivered_;
  bool consistent_ = true;
  std::uint64_t deliveries_ = 0;
};

class Deployment {
 public:
  // auto_start_clients: sim clients self-start at t=0; rt clients wait for
  // the load manager's kStart broadcast (§7.1).
  Deployment(const ClusterSpec& spec, bool auto_start_clients);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  const ClusterSpec& spec() const { return spec_; }
  std::int32_t num_replicas() const { return spec_.num_replicas; }
  std::int32_t num_nodes() const { return spec_.node_count(); }

  // The engine a transport should host on node `id` (a JointEngine on joint
  // deployments).
  consensus::Engine* node_engine(consensus::NodeId id) {
    return node_order_[static_cast<std::size_t>(id)];
  }

  // Node ids that host a client (targets of rt's kStart broadcast).
  const std::vector<consensus::NodeId>& client_node_ids() const {
    return client_node_ids_;
  }

  consensus::Engine* replica_engine(consensus::NodeId r) {
    return replicas_[static_cast<std::size_t>(r)].get();
  }
  // The replica's applied machine (whatever spec.state_machine_factory
  // built; MapStateMachine by default). Callers that configured a custom
  // factory know the concrete type.
  consensus::StateMachine* state_machine(consensus::NodeId r) {
    return sms_[static_cast<std::size_t>(r)].get();
  }
  consensus::ClientEngine* client(std::int32_t i) {
    return clients_[static_cast<std::size_t>(i)].get();
  }
  const consensus::ClientEngine* client(std::int32_t i) const {
    return clients_[static_cast<std::size_t>(i)].get();
  }
  std::int32_t client_count() const { return static_cast<std::int32_t>(clients_.size()); }

  // Protocol-specific accessors (null when the spec runs another protocol).
  OnePaxosEngine* one_paxos(consensus::NodeId r);
  consensus::MultiPaxosEngine* multi_paxos(consensus::NodeId r);
  consensus::TwoPcEngine* two_pc(consensus::NodeId r);

  // ---- Client-side aggregation (live-readable: counters are atomics) ----
  bool clients_done() const;
  std::uint64_t total_committed() const;
  std::uint64_t total_issued() const;
  std::uint64_t total_local_reads() const;
  Histogram merged_latency() const;

  AgreementRecorder& recorder() { return recorder_; }
  const AgreementRecorder& recorder() const { return recorder_; }

  // Client + agreement side of a RunResult; the backend fills duration and
  // total_messages.
  RunResult collect() const;

 private:
  ClusterSpec spec_;
  std::vector<std::unique_ptr<consensus::StateMachine>> sms_;  // one per replica
  std::vector<std::unique_ptr<consensus::Engine>> replicas_;      // protocol engines
  std::vector<std::unique_ptr<consensus::ClientEngine>> clients_;
  std::vector<std::unique_ptr<consensus::Engine>> joint_engines_;
  std::vector<consensus::Engine*> node_order_;  // what the transport hosts
  std::vector<consensus::NodeId> client_node_ids_;
  AgreementRecorder recorder_;
};

}  // namespace ci::core
