// The backend-agnostic deployment specification.
//
// One ClusterSpec describes a full experiment — protocol, topology, engine
// knobs, client workload, fault schedule — and runs unchanged on either
// backend: the discrete-event simulator (sim) or the real pinned-thread
// runtime (rt). The per-backend structs at the bottom carry only what a
// spec cannot abstract over (the simulator's cost model, thread pinning).
//
// See DESIGN.md "Deployment layer" for how SimCluster / RtCluster consume
// this through core::Deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consensus/engine.hpp"
#include "core/latency_model.hpp"
#include "core/protocol.hpp"

namespace ci::core {

// Which runtime executes the spec. kSim is the deterministic many-core
// simulation of §3's cost model; kRt is QC-libtask message passing between
// pinned OS threads (§6-7); kNet is the TCP socket mesh (src/net) — the
// same wire::Codec frames over real sockets, the step from "consensus
// inside one machine" to a deployable replicated service.
enum class Backend { kSim, kRt, kNet };

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim:
      return "sim";
    case Backend::kRt:
      return "rt";
    case Backend::kNet:
      return "net";
  }
  return "?";
}

// Closed-loop client workload (§7.1): send, wait for the commit ACK,
// optionally think, repeat.
struct WorkloadSpec {
  Nanos request_timeout = 2 * kMillisecond;
  Nanos think_time = 0;                  // §7.4 uses 2 ms between requests
  double read_fraction = 0.0;            // §7.5 read workloads
  std::uint64_t requests_per_client = 0; // 0 = run until deadline/stop
  // Client-side coalescing (`--client-coalesce`): N > 1 ships N commands
  // per client round / per session tick in shared kClientCmdBatch frames;
  // 1 = one legacy frame per command (bit-identical to the classic wire).
  std::int32_t client_coalesce = 1;
};

// A named, internally-consistent set of timer constants. The three profiles
// are the three regimes the paper runs in; they replace the divergent
// defaults that used to be restated across EngineConfig, ClusterOptions and
// RtClusterOptions.
struct TimeoutProfile {
  Nanos retry_timeout;
  Nanos fd_timeout;
  Nanos heartbeat_period;
  Nanos request_timeout;
  Nanos tick_period;  // sim event granularity; ignored by rt
  std::int32_t pipeline_window;
  // Leader leases (DESIGN.md §1f). All three stock profiles ship with
  // leases OFF (0): a lease changes the wire (heartbeats open renewal
  // rounds, followers answer with kLeaseGrant frames), so it is strictly
  // opt-in — `--lease-ms` on the harness, or set these two directly. When
  // opting in, lease must comfortably exceed heartbeat_period (renewals
  // ride heartbeats) and lease_epsilon is the clock-skew margin subtracted
  // from every grant; a lease below fd_timeout + epsilon buys nothing.
  Nanos lease = 0;
  Nanos lease_epsilon = 0;

  // Simulated many-core (microsecond message costs) — the EngineConfig
  // defaults.
  static TimeoutProfile many_core() {
    consensus::EngineConfig d;
    return TimeoutProfile{d.retry_timeout, d.fd_timeout, d.heartbeat_period,
                          2 * kMillisecond, 20 * kMicrosecond, d.pipeline_window};
  }

  // Simulated LAN (prop 135 µs needs millisecond timers, and a pipeline
  // deep enough for the bandwidth-delay product — the paper's LAN
  // deployments were not window-limited).
  static TimeoutProfile lan() {
    return TimeoutProfile{20 * kMillisecond, 200 * kMillisecond, 50 * kMillisecond,
                          500 * kMillisecond, 1 * kMillisecond, 128};
  }

  // Real threads. The failure detector is generous: container/VM scheduling
  // can stall a healthy thread for several milliseconds, and false
  // suspicion triggers gratuitous reconfiguration.
  static TimeoutProfile real_threads() {
    consensus::EngineConfig d;
    return TimeoutProfile{2 * kMillisecond, 25 * kMillisecond, 2 * kMillisecond,
                          10 * kMillisecond, 20 * kMicrosecond, d.pipeline_window};
  }
};

// One fault-injection event, interpreted by the backend:
//   * kSlowNode — the node's processing slows by `factor` during
//     [at, until). Sim scales the node's simulated CPU costs; rt stalls the
//     node thread per message (RtNode::set_slow_factor). The paper models
//     failures as slow cores (§1 fn. 3).
//   * kResetAcceptor — 1Paxos-only silent acceptor reboot at `at`
//     (DESIGN.md A3); deterministic state surgery, so sim-only.
//   * kStretchClock — from `at` on, the node's LOCAL clock runs at `factor`
//     times real (virtual or wall) time: Context::now() returns
//     at + (t - at) * factor. factor > 1 models a fast local clock.
//     Applied to a leader's FOLLOWERS it is the lease protocol's adversary:
//     their grants lapse early in true time, so they can depose the leader
//     while it still believes its lease — past the epsilon guard once
//     (factor - 1) * lease_duration > lease_epsilon. (A fast clock on the
//     leader itself is conservative: it only expires its belief sooner.)
//     Both backends apply it (sim via the NodeCtx clock, rt via RtNode).
// `node` is a deployment-local id. Under a sharded spec the plan is part of
// the per-group template like everything else in the ClusterSpec: each
// event applies to node `node` of EVERY group (a slow leader means every
// group's leader is slow), mapped to transport nodes by the placement.
struct FaultEvent {
  enum class Kind { kSlowNode, kResetAcceptor, kStretchClock };
  Kind kind = Kind::kSlowNode;
  consensus::NodeId node = 0;
  Nanos at = 0;     // relative to run start (virtual or wall)
  Nanos until = 0;  // end of a slow window
  double factor = 1.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  FaultPlan& slow_node(consensus::NodeId node, Nanos at, Nanos until, double factor) {
    events.push_back({FaultEvent::Kind::kSlowNode, node, at, until, factor});
    return *this;
  }

  FaultPlan& reset_acceptor_at(consensus::NodeId node, Nanos at) {
    events.push_back({FaultEvent::Kind::kResetAcceptor, node, at, 0, 1.0});
    return *this;
  }

  // The node's local clock runs at `rate` x true time from `at` on (no end:
  // a skewed oscillator does not heal itself). rate > 1 = fast clock.
  FaultPlan& stretch_clock(consensus::NodeId node, Nanos at, double rate) {
    events.push_back({FaultEvent::Kind::kStretchClock, node, at, 0, rate});
    return *this;
  }
};

// Simulator-only parameters.
struct SimParams {
  LatencyModel model = LatencyModel::many_core();
  Nanos tick_period = 20 * kMicrosecond;
};

// Real-thread-only parameters.
struct RtParams {
  bool pin = true;  // pin node threads to cores (wraps modulo the machine)
};

// Socket-mesh-only parameters (src/net). The defaults run a self-contained
// loopback deployment: an in-process registry on an ephemeral port, nodes
// listening on ephemeral ports, each node thread flushing its own sockets.
struct NetParams {
  // Node i listens on port_base + i; 0 = ephemeral ports (the registry map
  // is how peers learn them either way).
  std::uint16_t port_base = 0;
  // Where the registry binds, as "host:port" (`--net-registry`). Empty =
  // 127.0.0.1 with an ephemeral port.
  std::string registry;
  // Dedicated socket-flusher threads draining the per-connection send
  // rings; 0 = every node thread flushes its own rings in its poll loop.
  std::int32_t io_threads = 0;
};

struct ClusterSpec {
  Protocol protocol = Protocol::kOnePaxos;
  std::int32_t num_replicas = 3;
  std::int32_t num_clients = 1;
  bool joint = false;  // clients co-located with replicas (§7.4); then
                       // num_clients is ignored and every replica hosts one
  bool joint_local_reads = false;  // 2PC-Joint local read optimization (§7.5)
  std::uint64_t seed = 1;

  // Multi-Paxos acceptor-set ablation (DESIGN.md A2); -1 = all replicas.
  std::int32_t acceptor_count = -1;

  // The one copy of the engine knobs. Deployment stamps the per-node fields
  // (self, num_replicas, seed, state_machine) when wiring each engine; only
  // the timers and pipeline_window are read from here.
  consensus::EngineConfig engine;

  // Builds the applied state machine for replica `r` of each group. Null =
  // consensus::MapStateMachine (the repo's KV). This is what makes the
  // client layer (client::ServiceClient) serve ANY replicated service: the
  // deployment replicates whatever machine the spec supplies, and the
  // transaction hooks (StateMachine::txn_*) let it participate in
  // cross-shard 2PC if it implements them.
  std::function<std::unique_ptr<consensus::StateMachine>(consensus::NodeId r)>
      state_machine_factory;

  WorkloadSpec workload;
  FaultPlan faults;

  SimParams sim;
  RtParams rt;
  NetParams net;

  ClusterSpec& apply(const TimeoutProfile& p) {
    engine.retry_timeout = p.retry_timeout;
    engine.fd_timeout = p.fd_timeout;
    engine.heartbeat_period = p.heartbeat_period;
    engine.pipeline_window = p.pipeline_window;
    engine.lease_duration = p.lease;
    engine.lease_epsilon = p.lease_epsilon;
    workload.request_timeout = p.request_timeout;
    sim.tick_period = p.tick_period;
    return *this;
  }

  // Canonical profile for a backend: many-core simulation vs real threads.
  ClusterSpec& apply_backend_profile(Backend b) {
    return apply(b == Backend::kSim ? TimeoutProfile::many_core()
                                    : TimeoutProfile::real_threads());
  }

  std::int32_t client_count() const { return joint ? num_replicas : num_clients; }

  // Protocol nodes (excluding backend-private helpers such as rt's load
  // manager): joint deployments fold each client into its replica's node.
  std::int32_t node_count() const {
    return joint ? num_replicas : num_replicas + num_clients;
  }
};

// How a sharded deployment lays its groups' participants out over the
// transport's node ids (the simulated cores / pinned threads):
//   * kGroupMajor — group g owns the contiguous id block
//     [g*node_count, (g+1)*node_count): replicas cluster per group, like
//     giving each shard its own socket.
//   * kInterleaved — participant p of group g sits at p*groups + g:
//     same-role nodes of different groups are neighbors, spreading each
//     group across the machine.
//   * kCoLocated — every group's participant p shares transport node p:
//     one core hosts one replica of EVERY group (the paper's §2.1 end
//     state — many small groups partitioning one machine's state). Total
//     node count stays at one group's node_count.
enum class Placement { kGroupMajor, kInterleaved, kCoLocated };

const char* placement_name(Placement p);

// N independent consensus groups built from one ClusterSpec template.
// groups == 1 with kGroupMajor is exactly the single-group deployment.
// Each group gets its own engines, its own instance space, its own
// AgreementRecorder, and a derived seed (base.seed + g) so groups do not
// run in RNG lockstep (group 0 keeps the base seed).
struct ShardSpec {
  ClusterSpec base;
  std::int32_t groups = 1;
  Placement placement = Placement::kGroupMajor;

  ShardSpec() = default;
  explicit ShardSpec(ClusterSpec b, std::int32_t g = 1,
                     Placement p = Placement::kGroupMajor)
      : base(std::move(b)), groups(g), placement(p) {}

  std::int32_t nodes_per_group() const { return base.node_count(); }

  std::int32_t total_nodes() const {
    return placement == Placement::kCoLocated ? nodes_per_group()
                                              : groups * nodes_per_group();
  }

  // Transport node hosting participant `local` of group `g`.
  consensus::NodeId global_node(consensus::GroupId g, consensus::NodeId local) const {
    switch (placement) {
      case Placement::kGroupMajor:
        return g * nodes_per_group() + local;
      case Placement::kInterleaved:
        return local * groups + g;
      case Placement::kCoLocated:
        return local;
    }
    return consensus::kNoNode;
  }

  ClusterSpec group_spec(consensus::GroupId g) const {
    ClusterSpec s = base;
    s.seed = base.seed + static_cast<std::uint64_t>(g);
    return s;
  }
};

}  // namespace ci::core
