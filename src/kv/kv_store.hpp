// ReplicatedKv — the library's "downstream user" facade: an in-process
// replicated (and optionally sharded) key/value store whose replicas keep
// consistent through any of the agreement protocols. This is the paper's
// motivating use case (§2.1: OS/service state partitioned across many
// small consensus groups inside one machine, as in Barrelfish's replicated
// capability system).
//
// Since the client-layer redesign this is a THIN TYPED FACADE over
// client::ServiceClient (client/service_client.hpp): the generic layer owns
// the deployment, the per-group session fan-out, both backends' transports
// and the sim pump bridging; this file only types the API in KV terms
// (put/get over u64 keys, MapStateMachine replicas). Cross-shard
// transactions come straight through: KvSession::txn() opens a
// client::Txn committed by 2PC across the owning groups.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/service_client.hpp"
#include "core/cluster_spec.hpp"

namespace ci::kv {

using client::SubmitHandle;
using client::Txn;
using client::TxnHandle;
using consensus::GroupId;
using core::Protocol;
using core::protocol_name;

// One application handle: put/get routed by key to the owning group's
// replicated log. May be driven by one application thread at a time
// (sessions are independent).
class KvSession {
 public:
  // Linearizable within the key's group: put returns the old value, get
  // the current one.
  std::uint64_t execute(consensus::Op op, std::uint64_t key, std::uint64_t value) {
    return session_->execute(op, key, value);
  }
  std::uint64_t put(std::uint64_t key, std::uint64_t value) {
    return execute(consensus::Op::kWrite, key, value);
  }
  std::uint64_t get(std::uint64_t key) { return execute(consensus::Op::kRead, key, 0); }

  // Pipelined write: queue and return without waiting for the commit (the
  // returned old value is discarded). Keeps many commands in flight per
  // session, which is what fills a batching leader's multi-command
  // instances. flush() blocks until everything queued so far committed;
  // call it before reading keys written through put_async.
  //
  // Ordering caveat: pipelined writes commit in submission order on a
  // stable leader, but a leader failover can commit concurrently-in-flight
  // writes out of order (a lost proposal's retry lands after a later one).
  // Where failover-order matters, use the synchronous put() — it keeps one
  // command in flight — or flush() between order-dependent writes.
  void put_async(std::uint64_t key, std::uint64_t value) {
    session_->submit(consensus::Op::kWrite, key, value);  // handle discarded
  }
  void flush() { session_->flush(); }

  // Cross-shard transaction builder: txn().put(k1,v1).put(k2,v2).commit()
  // commits atomically across the keys' owning groups (client/txn.hpp).
  Txn txn() { return session_->txn(); }

  // Which group (shard) owns `key`.
  GroupId group_of(std::uint64_t key) const { return session_->group_of(key); }
  // The replica this session believes leads `key`'s group (a group-local
  // replica id).
  consensus::NodeId believed_leader_for(std::uint64_t key) const {
    return session_->believed_leader_for(key);
  }

  // The generic session underneath, for callers outgrowing the KV typing.
  client::Session& generic() { return *session_; }

 private:
  friend class ReplicatedKv;
  explicit KvSession(client::Session* session) : session_(session) {}
  client::Session* session_;
};

class ReplicatedKv {
 public:
  struct Options {
    Options() = default;

    // protocol / num_replicas / engine knobs / rt.pin / sim model all come
    // from here (defaults from client::ServiceClient::Options: real-thread
    // timeout profile, 10 ms session retry); num_clients and the
    // closed-loop workload are ignored (sessions replace them). With
    // groups > 1 this is the per-group template of a ShardSpec.
    // These mirror client::ServiceClient::Options one for one (the facade
    // forwards them in kv_store.cpp — extend BOTH when the client layer
    // grows a knob).
    core::ClusterSpec spec = client::ServiceClient::Options().spec;
    core::Backend backend = core::Backend::kRt;
    std::int32_t num_sessions = 1;  // independent client handles
    std::int32_t groups = 1;        // consensus groups the key space shards over
    core::Placement placement = core::Placement::kGroupMajor;
    client::Session::Router router = nullptr;  // key->group; null = splitmix hash
  };

  explicit ReplicatedKv(const Options& opts);

  ReplicatedKv(const ReplicatedKv&) = delete;
  ReplicatedKv& operator=(const ReplicatedKv&) = delete;

  KvSession& session(std::int32_t i);
  std::int32_t session_count() const { return client_.session_count(); }

  // Relaxed-consistency local read (§7.5: "for more relaxed read
  // consistency guarantees, local reads may be performed even with
  // non-blocking protocols"): reads replica `r`'s executed state — in the
  // group that owns `key` — without a protocol round trip; may lag the
  // commit frontier. `r` is a group-local replica id. This is deliberately
  // NOT the linearizable read path: KvSession::get() is — it rides the
  // leader, which with leases enabled (EngineConfig::lease_duration,
  // DESIGN.md §1f) answers from applied state without a log entry while
  // staying linearizable. Use local_read only where staleness is
  // acceptable by design.
  std::uint64_t local_read(consensus::NodeId r, std::uint64_t key) const;

  // Fault injection: multiply the per-message cost of replica `r` (a
  // group-local id) of group `g` — or of EVERY group in the one-argument
  // form (under co-location that is one shared node anyway).
  void throttle_replica(consensus::NodeId r, std::uint32_t factor) {
    client_.throttle_replica(r, factor);
  }
  void throttle_replica(GroupId g, consensus::NodeId r, std::uint32_t factor) {
    client_.throttle_replica(g, r, factor);
  }

  // Which replica (group-local id) group `g` currently believes leads it.
  consensus::NodeId believed_leader(GroupId g) const {
    return client_.believed_leader(g);
  }
  consensus::NodeId believed_leader() const { return believed_leader(0); }

  GroupId group_of(std::uint64_t key) const { return client_.group_of(key); }
  std::int32_t num_groups() const { return client_.num_groups(); }
  std::int32_t num_replicas() const { return client_.num_replicas(); }
  core::Backend backend() const { return client_.backend(); }

  // The generic client underneath (traffic counters, deployment access).
  client::ServiceClient& generic() { return client_; }
  const client::ServiceClient& generic() const { return client_; }

 private:
  client::ServiceClient client_;
  std::vector<std::unique_ptr<KvSession>> sessions_;
};

}  // namespace ci::kv
