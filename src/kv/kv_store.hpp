// ReplicatedKv — the library's "downstream user" facade: an in-process
// replicated (and optionally sharded) key/value store whose replicas keep
// consistent through any of the agreement protocols. This is the paper's
// motivating use case (§2.1: OS/service state partitioned across many
// small consensus groups inside one machine, as in Barrelfish's replicated
// capability system).
//
// Like every deployment in the repo it is specified by a core::ClusterSpec
// — here the per-group template of a core::ShardSpec — and runs on either
// backend: real QC-libtask message passing on pinned cores (kRt, the
// paper's setup) or the deterministic many-core simulator (kSim, where
// synchronous sessions pump virtual time from the calling thread).
//
// Sharding: with groups > 1 the key space is hash-partitioned across
// groups. Each session owns one synchronous client per group behind a
// single transport node; put/get route by key, so application code is
// oblivious to the layout. Cross-group operations are single-key only —
// there is no cross-shard transaction layer (yet).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster_spec.hpp"
#include "core/sharded_deployment.hpp"
#include "kv/sync_client.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"

namespace ci::kv {

using consensus::GroupId;
using core::Protocol;
using core::protocol_name;

// One application handle: a set of per-group synchronous clients sharing a
// transport node; execute() hashes the key to its owning group. May be
// driven by one application thread at a time (sessions are independent).
class KvSession {
 public:
  // Linearizable within the key's group: put returns the old value, get
  // the current one.
  std::uint64_t execute(consensus::Op op, std::uint64_t key, std::uint64_t value);
  std::uint64_t put(std::uint64_t key, std::uint64_t value) {
    return execute(consensus::Op::kWrite, key, value);
  }
  std::uint64_t get(std::uint64_t key) { return execute(consensus::Op::kRead, key, 0); }

  // Pipelined write: queue and return without waiting for the commit (the
  // returned old value is discarded). Keeps many commands in flight per
  // session, which is what fills a batching leader's multi-command
  // instances. flush() blocks until everything queued so far committed;
  // call it before reading keys written through put_async.
  //
  // Ordering caveat: pipelined writes commit in submission order on a
  // stable leader, but a leader failover can commit concurrently-in-flight
  // writes out of order (a lost proposal's retry lands after a later one).
  // Where failover-order matters, use the synchronous put() — it keeps one
  // command in flight — or flush() between order-dependent writes.
  void put_async(std::uint64_t key, std::uint64_t value);
  void flush();

  // Which group (shard) owns `key`.
  GroupId group_of(std::uint64_t key) const;
  // The replica this session believes leads `key`'s group (a group-local
  // replica id).
  consensus::NodeId believed_leader_for(std::uint64_t key) const;

 private:
  friend class ReplicatedKv;
  std::vector<std::unique_ptr<SyncClientEngine>> per_group_;
};

class ReplicatedKv {
 public:
  struct Options {
    Options() {
      spec.apply(core::TimeoutProfile::real_threads());
      spec.workload.request_timeout = 10 * kMillisecond;  // session retry timer
      spec.num_clients = 0;  // synchronous sessions replace workload clients
    }

    // protocol / num_replicas / engine knobs / rt.pin / sim model all come
    // from here; num_clients and the closed-loop workload are ignored
    // (sessions replace them). With groups > 1 this is the per-group
    // template of a ShardSpec.
    core::ClusterSpec spec;
    core::Backend backend = core::Backend::kRt;
    std::int32_t num_sessions = 1;  // independent synchronous client handles
    std::int32_t groups = 1;        // consensus groups the key space shards over
    core::Placement placement = core::Placement::kGroupMajor;
  };

  explicit ReplicatedKv(const Options& opts);
  ~ReplicatedKv();

  ReplicatedKv(const ReplicatedKv&) = delete;
  ReplicatedKv& operator=(const ReplicatedKv&) = delete;

  KvSession& session(std::int32_t i);
  std::int32_t session_count() const { return static_cast<std::int32_t>(sessions_.size()); }

  // Relaxed-consistency local read (§7.5: "for more relaxed read
  // consistency guarantees, local reads may be performed even with
  // non-blocking protocols"): reads replica `r`'s executed state — in the
  // group that owns `key` — without a protocol round trip; may lag the
  // commit frontier. `r` is a group-local replica id.
  std::uint64_t local_read(consensus::NodeId r, std::uint64_t key) const;

  // Fault injection: multiply the per-message cost of replica `r` (a
  // group-local id) of group `g` — or of EVERY group in the one-argument
  // form (under co-location that is one shared node anyway).
  void throttle_replica(consensus::NodeId r, std::uint32_t factor);
  void throttle_replica(GroupId g, consensus::NodeId r, std::uint32_t factor);

  // Which replica (group-local id) group `g` currently believes leads it.
  consensus::NodeId believed_leader(GroupId g) const;
  consensus::NodeId believed_leader() const { return believed_leader(0); }

  GroupId group_of(std::uint64_t key) const;
  std::int32_t num_groups() const { return dep_.num_groups(); }
  std::int32_t num_replicas() const { return opts_.spec.num_replicas; }
  core::Backend backend() const { return opts_.backend; }

 private:
  struct SimState;  // simulator transport + the pump mutex

  Options opts_;
  core::ShardedDeployment dep_;  // replicas only (sessions are wired here, per backend)
  std::vector<std::unique_ptr<KvSession>> sessions_;
  std::vector<std::unique_ptr<consensus::GroupDemuxEngine>> session_demux_;

  // rt backend
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<rt::RtNode>> nodes_;

  // sim backend
  std::unique_ptr<SimState> sim_;
};

}  // namespace ci::kv
