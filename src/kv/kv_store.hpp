// ReplicatedKv — the library's "downstream user" facade: an in-process
// replicated key/value store whose replicas keep consistent through any of
// the agreement protocols. This is the paper's motivating use case (§2.1:
// software-managed replica consistency for state that must be shared, as in
// Barrelfish's replicated capability system).
//
// Like every deployment in the repo it is specified by a core::ClusterSpec
// and runs on either backend: real QC-libtask message passing on pinned
// cores (kRt, the paper's setup) or the deterministic many-core simulator
// (kSim, where synchronous sessions pump virtual time from the calling
// thread).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster_spec.hpp"
#include "core/deployment.hpp"
#include "kv/sync_client.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"

namespace ci::kv {

using core::Protocol;
using core::protocol_name;

class ReplicatedKv {
 public:
  struct Options {
    Options() {
      spec.apply(core::TimeoutProfile::real_threads());
      spec.workload.request_timeout = 10 * kMillisecond;  // session retry timer
      spec.num_clients = 0;  // synchronous sessions replace workload clients
    }

    // protocol / num_replicas / engine knobs / rt.pin / sim model all come
    // from here; num_clients and the closed-loop workload are ignored
    // (sessions replace them).
    core::ClusterSpec spec;
    core::Backend backend = core::Backend::kRt;
    std::int32_t num_sessions = 1;  // independent synchronous client handles
  };

  explicit ReplicatedKv(const Options& opts);
  ~ReplicatedKv();

  ReplicatedKv(const ReplicatedKv&) = delete;
  ReplicatedKv& operator=(const ReplicatedKv&) = delete;

  // Synchronous sessions; each may be driven by one application thread at a
  // time. Linearizable through the protocol: put returns the old value, get
  // the current one.
  SyncClientEngine& session(std::int32_t i) { return *sessions_[static_cast<std::size_t>(i)]; }
  std::int32_t session_count() const { return static_cast<std::int32_t>(sessions_.size()); }

  // Relaxed-consistency local read (§7.5: "for more relaxed read
  // consistency guarantees, local reads may be performed even with
  // non-blocking protocols"): reads replica `r`'s executed state without a
  // protocol round trip; may lag the commit frontier.
  std::uint64_t local_read(consensus::NodeId r, std::uint64_t key) const;

  // Fault injection: multiply replica `r`'s per-message cost.
  void throttle_replica(consensus::NodeId r, std::uint32_t factor);

  consensus::NodeId believed_leader() const;
  std::int32_t num_replicas() const { return opts_.spec.num_replicas; }
  core::Backend backend() const { return opts_.backend; }

 private:
  struct SimState;  // simulator transport + the pump mutex

  Options opts_;
  core::Deployment dep_;  // replicas only (sessions are wired here, per backend)
  std::vector<std::unique_ptr<SyncClientEngine>> sessions_;

  // rt backend
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<rt::RtNode>> nodes_;

  // sim backend
  std::unique_ptr<SimState> sim_;
};

}  // namespace ci::kv
