// ReplicatedKv — the library's "downstream user" facade: an in-process
// replicated key/value store whose replicas keep consistent through any of
// the agreement protocols, over real QC-libtask message passing on pinned
// cores. This is the paper's motivating use case (§2.1: software-managed
// replica consistency for state that must be shared, as in Barrelfish's
// replicated capability system).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "consensus/state_machine.hpp"
#include "core/protocol.hpp"
#include "kv/sync_client.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"

namespace ci::kv {

using core::Protocol;
using core::protocol_name;

class ReplicatedKv {
 public:
  struct Options {
    Protocol protocol = Protocol::kOnePaxos;
    std::int32_t num_replicas = 3;
    std::int32_t num_sessions = 1;  // independent synchronous client handles
    bool pin = true;
    Nanos fd_timeout = 25 * kMillisecond;
    Nanos request_timeout = 10 * kMillisecond;
  };

  explicit ReplicatedKv(const Options& opts);
  ~ReplicatedKv();

  ReplicatedKv(const ReplicatedKv&) = delete;
  ReplicatedKv& operator=(const ReplicatedKv&) = delete;

  // Synchronous sessions; each may be driven by one application thread at a
  // time. Linearizable through the protocol: put returns the old value, get
  // the current one.
  SyncClientEngine& session(std::int32_t i) { return *sessions_[static_cast<std::size_t>(i)]; }
  std::int32_t session_count() const { return static_cast<std::int32_t>(sessions_.size()); }

  // Relaxed-consistency local read (§7.5: "for more relaxed read
  // consistency guarantees, local reads may be performed even with
  // non-blocking protocols"): reads replica `r`'s executed state without a
  // protocol round trip; may lag the commit frontier.
  std::uint64_t local_read(consensus::NodeId r, std::uint64_t key) const {
    return sms_[static_cast<std::size_t>(r)]->read(key);
  }

  // Fault injection: multiply replica `r`'s per-message cost.
  void throttle_replica(consensus::NodeId r, std::uint32_t factor);

  consensus::NodeId believed_leader() const { return replicas_[0]->believed_leader(); }
  std::int32_t num_replicas() const { return opts_.num_replicas; }

 private:
  Options opts_;
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<consensus::MapStateMachine>> sms_;
  std::vector<std::unique_ptr<consensus::Engine>> replicas_;
  std::vector<std::unique_ptr<SyncClientEngine>> sessions_;
  std::vector<std::unique_ptr<rt::RtNode>> nodes_;
};

}  // namespace ci::kv
