// A synchronous (blocking-call) client for the agreement protocols: the
// bridge between application threads and the event-driven engine world.
//
// One SyncClientEngine occupies one node; application threads call
// execute() and block until the command commits. Retarget/retry behavior
// mirrors ClientEngine (§7.6): on timeout the request goes to the next
// replica with the leader-suspect flag set.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "consensus/engine.hpp"

namespace ci::kv {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::Op;

struct SyncClientConfig {
  consensus::EngineConfig base;
  NodeId initial_target = 0;
  Nanos request_timeout = 10 * kMillisecond;

  // Backend bridge. Under the real-thread runtime the hosting node's thread
  // drives the engine, so execute() just blocks on a condition variable.
  // Under the simulator nothing runs until somebody advances virtual time:
  // when set, execute() calls pump() in a loop (with the session unlocked)
  // until the reply lands; the callback is expected to advance the
  // simulation by a slice.
  std::function<void()> pump;
};

class SyncClientEngine final : public Engine {
 public:
  explicit SyncClientEngine(const SyncClientConfig& cfg) : cfg_(cfg), target_(cfg.initial_target) {}

  // Blocking; callable from any thread except the hosting node's. Returns
  // the operation result (previous value for writes, value for reads).
  std::uint64_t execute(Op op, std::uint64_t key, std::uint64_t value) {
    std::unique_lock<std::mutex> lock(mu_);
    caller_cv_.wait(lock, [this] { return !op_pending_; });  // serialize callers
    op_pending_ = true;
    op_done_ = false;
    next_seq_++;
    pending_cmd_ = Command{};
    pending_cmd_.client = cfg_.base.self;
    pending_cmd_.seq = next_seq_;
    pending_cmd_.op = op;
    pending_cmd_.key = key;
    pending_cmd_.value = value;
    op_submitted_ = false;
    if (cfg_.pump) {
      while (!op_done_) {
        lock.unlock();
        cfg_.pump();  // advances the simulation; may re-enter on_message/tick
        lock.lock();
      }
    } else {
      done_cv_.wait(lock, [this] { return op_done_; });
    }
    const std::uint64_t result = result_;
    op_pending_ = false;
    caller_cv_.notify_one();
    return result;
  }

  std::uint64_t put(std::uint64_t key, std::uint64_t value) {
    return execute(Op::kWrite, key, value);
  }
  std::uint64_t get(std::uint64_t key) { return execute(Op::kRead, key, 0); }

  // ---- Engine side (hosting node thread) ----

  void on_message(Context& ctx, const Message& m) override {
    (void)ctx;
    if (m.type != MsgType::kClientReply) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!op_pending_ || !op_submitted_ || m.u.client_reply.seq != pending_cmd_.seq) return;
    if (m.u.client_reply.leader_hint != consensus::kNoNode) {
      target_ = m.u.client_reply.leader_hint;
    }
    result_ = m.u.client_reply.result;
    op_done_ = true;
    done_cv_.notify_all();
  }

  void tick(Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!op_pending_ || op_done_) return;
    const Nanos now = ctx.now();
    if (!op_submitted_) {
      op_submitted_ = true;
      suspect_ = false;
      send_locked(ctx, now);
      return;
    }
    if (now - last_sent_ >= cfg_.request_timeout) {
      target_ = (target_ + 1) % cfg_.base.num_replicas;
      suspect_ = true;
      send_locked(ctx, now);
    }
  }

  NodeId believed_leader() const override { return target_; }

 private:
  void send_locked(Context& ctx, Nanos now) {
    last_sent_ = now;
    Message m(MsgType::kClientRequest, consensus::ProtoId::kClient, cfg_.base.self, target_);
    if (suspect_) m.flags = consensus::kFlagLeaderSuspect;
    m.u.client_request.cmd = pending_cmd_;
    ctx.send(target_, m);
  }

  SyncClientConfig cfg_;
  NodeId target_;

  std::mutex mu_;
  std::condition_variable caller_cv_;
  std::condition_variable done_cv_;
  bool op_pending_ = false;
  bool op_submitted_ = false;
  bool op_done_ = false;
  bool suspect_ = false;
  std::uint32_t next_seq_ = 0;
  Command pending_cmd_;
  std::uint64_t result_ = 0;
  Nanos last_sent_ = 0;
};

}  // namespace ci::kv
