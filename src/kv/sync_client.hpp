// A synchronous (blocking-call) client for the agreement protocols: the
// bridge between application threads and the event-driven engine world.
//
// One SyncClientEngine occupies one node; application threads call
// execute() and block until the command commits. Retarget/retry behavior
// mirrors ClientEngine (§7.6): on timeout the request goes to the next
// replica with the leader-suspect flag set.
//
// Pipelining: submit() queues a command and returns immediately (bounded by
// kMaxOutstanding; it blocks for room, never for commits), flush() blocks
// until everything submitted so far committed. A pipelined session keeps
// many commands in flight at once, which is what lets a batching leader
// (EngineConfig::batch) fill multi-command instances instead of seeing one
// command per round trip per session.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>

#include "consensus/engine.hpp"

namespace ci::kv {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;
using consensus::Op;

struct SyncClientConfig {
  consensus::EngineConfig base;
  NodeId initial_target = 0;
  Nanos request_timeout = 10 * kMillisecond;

  // Backend bridge. Under the real-thread runtime the hosting node's thread
  // drives the engine, so execute() just blocks on a condition variable.
  // Under the simulator nothing runs until somebody advances virtual time:
  // when set, execute() calls pump() in a loop (with the session unlocked)
  // until the reply lands; the callback is expected to advance the
  // simulation by a slice.
  std::function<void()> pump;
};

class SyncClientEngine final : public Engine {
 public:
  // Pipeline depth bound: one batching leader can absorb at most this many
  // commands into a single instance anyway.
  static constexpr std::int32_t kMaxOutstanding = consensus::kMaxCommandsPerBatch;

  explicit SyncClientEngine(const SyncClientConfig& cfg) : cfg_(cfg), target_(cfg.initial_target) {}

  // Blocking; callable from any thread except the hosting node's. Returns
  // the operation result (previous value for writes, value for reads).
  std::uint64_t execute(Op op, std::uint64_t key, std::uint64_t value) {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() < kMaxOutstanding; });
    const std::uint32_t seq = enqueue_locked(op, key, value);
    wait_locked(lock, [this, seq] { return results_.count(seq) != 0; });
    const std::uint64_t result = results_[seq];
    results_.erase(seq);
    return result;
  }

  std::uint64_t put(std::uint64_t key, std::uint64_t value) {
    return execute(Op::kWrite, key, value);
  }
  std::uint64_t get(std::uint64_t key) { return execute(Op::kRead, key, 0); }

  // Pipelined operation: queue and return (the result is discarded when it
  // arrives). Blocks only when the pipeline is full.
  void submit(Op op, std::uint64_t key, std::uint64_t value) {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() < kMaxOutstanding; });
    discard_.insert(enqueue_locked(op, key, value));
  }

  // Blocks until every submitted/executing command committed.
  void flush() {
    std::unique_lock<std::mutex> lock(mu_);
    wait_locked(lock, [this] { return in_flight_count() == 0; });
  }

  // ---- Engine side (hosting node thread) ----

  void on_message(Context& ctx, const Message& m) override {
    (void)ctx;
    if (m.type != MsgType::kClientReply) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sent_.find(m.u.client_reply.seq);
    if (it == sent_.end()) return;
    if (m.u.client_reply.leader_hint != consensus::kNoNode) {
      target_ = m.u.client_reply.leader_hint;
    }
    const std::uint32_t seq = it->first;
    sent_.erase(it);
    if (discard_.erase(seq) == 0) results_[seq] = m.u.client_reply.result;
    done_cv_.notify_all();
  }

  void tick(Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    const Nanos now = ctx.now();
    // Launch queued commands from the hosting node's thread.
    while (!queued_.empty()) {
      InFlight f;
      f.cmd = queued_.front();
      queued_.pop_front();
      f.last_sent = now;
      send_locked(ctx, f.cmd, /*suspect=*/false);
      sent_.emplace(f.cmd.seq, f);
    }
    // Retry stragglers; rotate the target at most once per tick so several
    // outstanding commands cannot spin it around the ring.
    bool rotated = false;
    for (auto& [seq, f] : sent_) {
      if (now - f.last_sent < cfg_.request_timeout) continue;
      if (!rotated) {
        target_ = (target_ + 1) % cfg_.base.num_replicas;
        rotated = true;
      }
      f.last_sent = now;
      send_locked(ctx, f.cmd, /*suspect=*/true);
    }
  }

  NodeId believed_leader() const override { return target_; }

 private:
  struct InFlight {
    Command cmd;
    Nanos last_sent = 0;
  };

  std::int32_t in_flight_count() const {
    return static_cast<std::int32_t>(queued_.size() + sent_.size());
  }

  std::uint32_t enqueue_locked(Op op, std::uint64_t key, std::uint64_t value) {
    next_seq_++;
    Command cmd;
    cmd.client = cfg_.base.self;
    cmd.seq = next_seq_;
    cmd.op = op;
    cmd.key = key;
    cmd.value = value;
    queued_.push_back(cmd);
    return next_seq_;
  }

  template <typename Pred>
  void wait_locked(std::unique_lock<std::mutex>& lock, Pred pred) {
    if (cfg_.pump) {
      while (!pred()) {
        lock.unlock();
        cfg_.pump();  // advances the simulation; may re-enter on_message/tick
        lock.lock();
      }
    } else {
      done_cv_.wait(lock, pred);
    }
  }

  void send_locked(Context& ctx, const Command& cmd, bool suspect) {
    Message m(MsgType::kClientRequest, consensus::ProtoId::kClient, cfg_.base.self, target_);
    if (suspect) m.flags = consensus::kFlagLeaderSuspect;
    m.u.client_request.cmd = cmd;
    ctx.send(target_, m);
  }

  SyncClientConfig cfg_;
  NodeId target_;

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::uint32_t next_seq_ = 0;
  std::deque<Command> queued_;            // not yet sent (tick launches them)
  std::map<std::uint32_t, InFlight> sent_;  // awaiting a reply, by seq
  std::set<std::uint32_t> discard_;       // submit()ted: drop the result
  std::map<std::uint32_t, std::uint64_t> results_;  // completed execute() ops
};

}  // namespace ci::kv
