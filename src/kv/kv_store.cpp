#include "kv/kv_store.hpp"

#include <mutex>

#include "common/affinity.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/sim_net.hpp"

namespace ci::kv {

using consensus::NodeId;

namespace {

// Keys are often small sequential integers, so run them through the
// SplitMix64 finalizer to keep the shards balanced.
GroupId group_of_key(std::uint64_t key, std::int32_t groups) {
  return groups <= 1 ? 0
                     : static_cast<GroupId>(SplitMix64(key).next() %
                                            static_cast<std::uint64_t>(groups));
}

}  // namespace

std::uint64_t KvSession::execute(consensus::Op op, std::uint64_t key, std::uint64_t value) {
  return per_group_[static_cast<std::size_t>(group_of(key))]->execute(op, key, value);
}

void KvSession::put_async(std::uint64_t key, std::uint64_t value) {
  per_group_[static_cast<std::size_t>(group_of(key))]->submit(consensus::Op::kWrite, key,
                                                              value);
}

void KvSession::flush() {
  for (auto& client : per_group_) client->flush();
}

GroupId KvSession::group_of(std::uint64_t key) const {
  return group_of_key(key, static_cast<std::int32_t>(per_group_.size()));
}

NodeId KvSession::believed_leader_for(std::uint64_t key) const {
  return per_group_[static_cast<std::size_t>(group_of(key))]->believed_leader();
}

// Simulator transport for synchronous sessions: virtual time only advances
// while some session blocks in execute(), pumping slices through run_until.
// The mutex serializes pumps from concurrent session threads.
struct ReplicatedKv::SimState {
  static constexpr Nanos kPumpSlice = 50 * kMicrosecond;

  std::mutex mu;
  std::unique_ptr<sim::SimNet> net;

  void pump() {
    std::lock_guard<std::mutex> lock(mu);
    net->run_until(net->now() + kPumpSlice);
  }
};

ReplicatedKv::ReplicatedKv(const Options& opts)
    : opts_([&] {
        Options o = opts;
        o.spec.num_clients = 0;  // sessions replace workload clients
        o.spec.joint = false;
        return o;
      }()),
      dep_(core::ShardSpec(opts_.spec, opts_.groups, opts_.placement),
           /*auto_start_clients=*/true) {
  const std::int32_t R = opts_.spec.num_replicas;
  const std::int32_t G = opts_.groups;
  const std::int32_t S = opts_.num_sessions;
  CI_CHECK(G >= 1);
  CI_CHECK(S >= 1);
  const std::int32_t replica_nodes = dep_.num_nodes();
  const std::int32_t total = replica_nodes + S;

  const bool is_sim = opts_.backend == core::Backend::kSim;
  if (is_sim) sim_ = std::make_unique<SimState>();

  for (std::int32_t s = 0; s < S; ++s) {
    auto session = std::make_unique<KvSession>();
    std::vector<consensus::Engine*> engines;
    for (GroupId g = 0; g < G; ++g) {
      SyncClientConfig cc;
      cc.base = opts_.spec.engine;
      cc.base.self = R + s;  // group-local id, same in every group
      cc.base.num_replicas = R;
      cc.base.seed = opts_.spec.seed;
      cc.base.state_machine = nullptr;
      cc.request_timeout = opts_.spec.workload.request_timeout;
      if (is_sim) cc.pump = [state = sim_.get()] { state->pump(); };
      session->per_group_.push_back(std::make_unique<SyncClientEngine>(cc));
      engines.push_back(session->per_group_.back().get());
    }
    session_demux_.push_back(
        dep_.make_external_demux(replica_nodes + s, R + s, engines));
    sessions_.push_back(std::move(session));
  }

  if (is_sim) {
    sim_->net = std::make_unique<sim::SimNet>(opts_.spec.sim.model, opts_.spec.seed,
                                              opts_.spec.sim.tick_period);
    for (NodeId n = 0; n < replica_nodes; ++n) sim_->net->add_node(dep_.node_engine(n));
    for (auto& d : session_demux_) sim_->net->add_node(d.get());
    // No deliver hook on either backend: the facade exposes no agreement
    // introspection, and recording every delivery would grow recorder state
    // unboundedly over the store's lifetime (deployments with a bounded
    // run window are where the recorders earn their keep).
    // Bring the replicas up (leader election, first heartbeats) so the
    // first session op does not pay the cold-start latency.
    sim_->net->run_until(1 * kMillisecond);
    return;
  }

  net_ = std::make_unique<qclt::Network>(rt::slots_for(opts_.spec.engine.batch));
  const bool pin = opts_.spec.rt.pin && pinning_available();
  for (NodeId n = 0; n < replica_nodes; ++n) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        n, total, dep_.node_engine(n), net_.get(),
        pin ? static_cast<int>(n) % online_cores() : -1));
  }
  for (std::int32_t s = 0; s < S; ++s) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        replica_nodes + s, total, session_demux_[static_cast<std::size_t>(s)].get(),
        net_.get(), pin ? static_cast<int>(replica_nodes + s) % online_cores() : -1));
  }
  for (auto& n : nodes_) n->start();
}

ReplicatedKv::~ReplicatedKv() {
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
}

KvSession& ReplicatedKv::session(std::int32_t i) {
  CI_CHECK(i >= 0 && i < session_count());
  return *sessions_[static_cast<std::size_t>(i)];
}

GroupId ReplicatedKv::group_of(std::uint64_t key) const {
  return group_of_key(key, opts_.groups);
}

std::uint64_t ReplicatedKv::local_read(NodeId r, std::uint64_t key) const {
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  const GroupId g = group_of(key);
  return const_cast<ReplicatedKv*>(this)->dep_.group(g).state_machine(r)->read(key);
}

void ReplicatedKv::throttle_replica(NodeId r, std::uint32_t factor) {
  for (GroupId g = 0; g < opts_.groups; ++g) throttle_replica(g, r, factor);
}

void ReplicatedKv::throttle_replica(GroupId g, NodeId r, std::uint32_t factor) {
  CI_CHECK(g >= 0 && g < opts_.groups);
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  const NodeId node = dep_.global_node(g, r);
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    if (factor <= 1) {
      sim_->net->heal_node(node, sim_->net->now());
    } else {
      sim_->net->slow_node(node, sim_->net->now(), sim_->net->now() + 3600 * kSecond,
                           static_cast<double>(factor));
    }
    return;
  }
  nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
}

consensus::NodeId ReplicatedKv::believed_leader(GroupId g) const {
  CI_CHECK(g >= 0 && g < opts_.groups);
  // Deployment hands out mutable engine pointers; the query is read-only.
  return const_cast<ReplicatedKv*>(this)->dep_.group(g).replica_engine(0)->believed_leader();
}

}  // namespace ci::kv
