#include "kv/kv_store.hpp"

#include <mutex>

#include "common/affinity.hpp"
#include "common/check.hpp"
#include "sim/sim_net.hpp"

namespace ci::kv {

using consensus::NodeId;

// Simulator transport for synchronous sessions: virtual time only advances
// while some session blocks in execute(), pumping slices through run_until.
// The mutex serializes pumps from concurrent session threads.
struct ReplicatedKv::SimState {
  static constexpr Nanos kPumpSlice = 50 * kMicrosecond;

  std::mutex mu;
  std::unique_ptr<sim::SimNet> net;

  void pump() {
    std::lock_guard<std::mutex> lock(mu);
    net->run_until(net->now() + kPumpSlice);
  }
};

ReplicatedKv::ReplicatedKv(const Options& opts)
    : opts_([&] {
        Options o = opts;
        o.spec.num_clients = 0;  // sessions replace workload clients
        o.spec.joint = false;
        return o;
      }()),
      dep_(opts_.spec, /*auto_start_clients=*/true) {
  const std::int32_t R = opts_.spec.num_replicas;
  const std::int32_t S = opts_.num_sessions;
  CI_CHECK(S >= 1);
  const std::int32_t total = R + S;

  const bool is_sim = opts_.backend == core::Backend::kSim;
  if (is_sim) sim_ = std::make_unique<SimState>();

  for (std::int32_t s = 0; s < S; ++s) {
    SyncClientConfig cc;
    cc.base = opts_.spec.engine;
    cc.base.self = R + s;
    cc.base.num_replicas = R;
    cc.base.seed = opts_.spec.seed;
    cc.base.state_machine = nullptr;
    cc.request_timeout = opts_.spec.workload.request_timeout;
    if (is_sim) cc.pump = [state = sim_.get()] { state->pump(); };
    sessions_.push_back(std::make_unique<SyncClientEngine>(cc));
  }

  if (is_sim) {
    sim_->net = std::make_unique<sim::SimNet>(opts_.spec.sim.model, opts_.spec.seed,
                                              opts_.spec.sim.tick_period);
    for (NodeId r = 0; r < R; ++r) sim_->net->add_node(dep_.node_engine(r));
    for (auto& s : sessions_) sim_->net->add_node(s.get());
    // Bring the replicas up (leader election, first heartbeats) so the
    // first session op does not pay the cold-start latency.
    sim_->net->run_until(1 * kMillisecond);
    return;
  }

  net_ = std::make_unique<qclt::Network>();
  const bool pin = opts_.spec.rt.pin && pinning_available();
  for (NodeId r = 0; r < R; ++r) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        r, total, dep_.node_engine(r), net_.get(),
        pin ? static_cast<int>(r) % online_cores() : -1));
  }
  for (std::int32_t s = 0; s < S; ++s) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        R + s, total, sessions_[static_cast<std::size_t>(s)].get(), net_.get(),
        pin ? static_cast<int>(R + s) % online_cores() : -1));
  }
  for (auto& n : nodes_) n->start();
}

ReplicatedKv::~ReplicatedKv() {
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
}

std::uint64_t ReplicatedKv::local_read(NodeId r, std::uint64_t key) const {
  return const_cast<ReplicatedKv*>(this)->dep_.state_machine(r)->read(key);
}

void ReplicatedKv::throttle_replica(NodeId r, std::uint32_t factor) {
  CI_CHECK(r >= 0 && r < opts_.spec.num_replicas);
  if (opts_.backend == core::Backend::kSim) {
    std::lock_guard<std::mutex> lock(sim_->mu);
    if (factor <= 1) {
      sim_->net->heal_node(r, sim_->net->now());
    } else {
      sim_->net->slow_node(r, sim_->net->now(), sim_->net->now() + 3600 * kSecond,
                           static_cast<double>(factor));
    }
    return;
  }
  nodes_[static_cast<std::size_t>(r)]->set_slow_factor(factor);
}

consensus::NodeId ReplicatedKv::believed_leader() const {
  // Deployment hands out mutable engine pointers; the query is read-only.
  return const_cast<ReplicatedKv*>(this)->dep_.replica_engine(0)->believed_leader();
}

}  // namespace ci::kv
