#include "kv/kv_store.hpp"

#include "common/affinity.hpp"
#include "common/check.hpp"

namespace ci::kv {

ReplicatedKv::ReplicatedKv(const Options& opts) : opts_(opts) {
  const std::int32_t R = opts.num_replicas;
  const std::int32_t S = opts.num_sessions;
  CI_CHECK(R >= 1);
  CI_CHECK(S >= 1);
  const std::int32_t total = R + S;

  net_ = std::make_unique<qclt::Network>();

  core::ProtocolOptions popts;
  for (consensus::NodeId r = 0; r < R; ++r) {
    sms_.push_back(std::make_unique<consensus::MapStateMachine>());
    consensus::EngineConfig cfg;
    cfg.self = r;
    cfg.num_replicas = R;
    cfg.fd_timeout = opts.fd_timeout;
    cfg.state_machine = sms_.back().get();
    replicas_.push_back(core::make_replica_engine(opts.protocol, cfg, popts));
  }
  for (std::int32_t s = 0; s < S; ++s) {
    SyncClientConfig cc;
    cc.base.self = R + s;
    cc.base.num_replicas = R;
    cc.request_timeout = opts.request_timeout;
    sessions_.push_back(std::make_unique<SyncClientEngine>(cc));
  }

  const bool pin = opts.pin && pinning_available();
  for (consensus::NodeId r = 0; r < R; ++r) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        r, total, replicas_[static_cast<std::size_t>(r)].get(), net_.get(),
        pin ? static_cast<int>(r) % online_cores() : -1));
  }
  for (std::int32_t s = 0; s < S; ++s) {
    nodes_.push_back(std::make_unique<rt::RtNode>(
        R + s, total, sessions_[static_cast<std::size_t>(s)].get(), net_.get(),
        pin ? static_cast<int>(R + s) % online_cores() : -1));
  }
  for (auto& n : nodes_) n->start();
}

ReplicatedKv::~ReplicatedKv() {
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
}

void ReplicatedKv::throttle_replica(consensus::NodeId r, std::uint32_t factor) {
  CI_CHECK(r >= 0 && r < opts_.num_replicas);
  nodes_[static_cast<std::size_t>(r)]->set_slow_factor(factor);
}

}  // namespace ci::kv
