#include "kv/kv_store.hpp"

#include "common/check.hpp"

namespace ci::kv {

namespace {

client::ServiceClient::Options to_client_options(const ReplicatedKv::Options& opts) {
  client::ServiceClient::Options o;
  // The factory travels as-is: null means MapStateMachine (the KV service);
  // a caller-supplied factory is honored — local_read and the txn hooks go
  // through the StateMachine virtuals, so a custom machine (e.g. an
  // instrumented Map variant in tests) keeps the whole facade working.
  o.spec = opts.spec;
  o.backend = opts.backend;
  o.num_sessions = opts.num_sessions;
  o.groups = opts.groups;
  o.placement = opts.placement;
  o.router = opts.router;
  return o;
}

}  // namespace

ReplicatedKv::ReplicatedKv(const Options& opts) : client_(to_client_options(opts)) {
  for (std::int32_t s = 0; s < client_.session_count(); ++s) {
    sessions_.push_back(std::unique_ptr<KvSession>(new KvSession(&client_.session(s))));
  }
}

KvSession& ReplicatedKv::session(std::int32_t i) {
  CI_CHECK(i >= 0 && i < session_count());
  return *sessions_[static_cast<std::size_t>(i)];
}

std::uint64_t ReplicatedKv::local_read(consensus::NodeId r, std::uint64_t key) const {
  const GroupId g = client_.group_of(key);
  return client_.state_machine(g, r)->read(key);
}

}  // namespace ci::kv
