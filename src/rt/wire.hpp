// Message (de)serialization for the QC-libtask transport. Messages are
// trivially copyable; only the wire_size() prefix travels, so fast-path
// messages occupy a single 128-byte queue slot.
#pragma once

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "consensus/batch.hpp"
#include "consensus/message.hpp"
#include "qclt/connection.hpp"

namespace ci::rt {

// Large enough for the biggest message (a batched reconfiguration entry
// sets the worst case since the batching layer).
inline constexpr std::size_t kWireBufBytes = sizeof(consensus::Message);

// Queue slots per connection: the paper's seven suffice for unbatched
// traffic, but RtNode's non-blocking try_write needs every fragment of a
// frame to fit the queue at once — batched frames span dozens of 128-byte
// slots, so batching deployments size their queues for the biggest frame
// plus headroom for the small control traffic behind it.
inline std::uint32_t slots_for(const consensus::BatchPolicy& policy) {
  if (!policy.batching()) return qclt::kDefaultSlots;
  const auto frame = static_cast<std::uint32_t>(sizeof(consensus::Message));
  return std::max(qclt::kDefaultSlots, qclt::wire::fragments_for(frame) + 2);
}

inline std::uint32_t encode(const consensus::Message& m, unsigned char* buf) {
  const std::size_t n = consensus::wire_size(m);
  CI_CHECK(n <= kWireBufBytes);
  std::memcpy(buf, &m, n);
  return static_cast<std::uint32_t>(n);
}

inline consensus::Message decode(const unsigned char* buf, std::size_t n) {
  consensus::Message m;
  CI_CHECK(n >= consensus::kMessageHeaderBytes && n <= sizeof(consensus::Message));
  std::memcpy(&m, buf, n);
  CI_CHECK_MSG(consensus::wire_validate(m, n), "malformed message on the wire");
  return m;
}

}  // namespace ci::rt
