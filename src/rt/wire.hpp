// Frame (de)serialization for the QC-libtask transport — a thin veneer over
// the shared wire::Codec (consensus/wire_codec.hpp), which both backends
// and any future socket backend speak. Fast-path messages occupy a single
// 128-byte queue slot; batched frames and reconfiguration entries span a
// few fragments.
//
// Everything here is sized from the codec's real frame bytes, NOT from
// sizeof(Message): in-memory messages keep long command runs out of line,
// so the two quantities are independent.
#pragma once

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "consensus/batch.hpp"
#include "consensus/wire_codec.hpp"
#include "qclt/connection.hpp"

namespace ci::rt {

// Encode/read buffer capacity: the largest frame the codec can produce.
inline constexpr std::size_t kWireBufBytes = wire::kMaxFrameBytes;

// Stack budget for tasks that handle frames: a handful of Message
// temporaries (decode copy, demux rewrite, handler locals, the self-queue
// copy) plus the encode/read frame buffers, on top of the scheduler's
// plain-code default.
inline constexpr std::size_t kTaskStackBytes =
    32 * 1024 + 8 * sizeof(consensus::Message) + 4 * wire::kMaxFrameBytes;

// Queue slots per connection: the paper's seven suffice for unbatched
// traffic, but RtNode's non-blocking try_write needs every fragment of a
// frame to fit the queue at once — so batching deployments size their
// queues from the codec's largest frame under the policy, plus headroom
// for the small control traffic behind it.
inline std::uint32_t slots_for(const consensus::BatchPolicy& policy) {
  if (!policy.batching()) return qclt::kDefaultSlots;
  return std::max(qclt::kDefaultSlots,
                  qclt::wire::fragments_for(wire::max_frame_bytes(policy)) + 2);
}

inline std::uint32_t encode(const consensus::Message& m, unsigned char* buf) {
  return wire::encode(m, buf);
}

inline consensus::Message decode(const unsigned char* buf, std::size_t n) {
  consensus::Message m;
  CI_CHECK_MSG(wire::try_decode(buf, n, &m), "malformed message on the wire");
  return m;
}

}  // namespace ci::rt
