// Frame (de)serialization for the QC-libtask transport — a thin veneer over
// the shared wire::Codec (consensus/wire_codec.hpp), which both backends
// and any future socket backend speak. Fast-path messages occupy a single
// 128-byte queue slot; batched frames and reconfiguration entries span a
// few fragments.
//
// Everything here is sized from the codec's real frame bytes, NOT from
// sizeof(Message): in-memory messages keep long command runs out of line,
// so the two quantities are independent.
#pragma once

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "consensus/batch.hpp"
#include "consensus/wire_codec.hpp"
#include "qclt/connection.hpp"

namespace ci::rt {

// Encode/read buffer capacity: the largest frame the codec can produce.
inline constexpr std::size_t kWireBufBytes = wire::kMaxFrameBytes;

// Stack budget for tasks that handle frames: a handful of Message
// temporaries (decode copy, demux rewrite, handler locals, the self-queue
// copy) plus the encode/read frame buffers, on top of the scheduler's
// plain-code default.
inline constexpr std::size_t kTaskStackBytes =
    32 * 1024 + 8 * sizeof(consensus::Message) + 4 * wire::kMaxFrameBytes;

// Queue slots per connection: the paper's seven suffice for unbatched
// traffic, but RtNode's non-blocking try_write needs every fragment of a
// frame to fit the queue at once — so batching deployments size their
// queues from the codec's largest frame under the policy, plus headroom
// for the small control traffic behind it.
inline std::uint32_t slots_for(const consensus::BatchPolicy& policy) {
  if (!policy.batching()) return qclt::kDefaultSlots;
  return std::max(qclt::kDefaultSlots,
                  qclt::wire::fragments_for(wire::max_frame_bytes(policy)) + 2);
}

inline std::uint32_t encode(const consensus::Message& m, unsigned char* buf) {
  return wire::encode(m, buf);
}

// FrameWriter that lays a frame straight into SPSC queue slots, stamping
// fragment headers as it crosses slot boundaries — the zero-copy half of
// RtNode::send: field bytes go from the in-memory Message (or its pooled
// run) directly into the shared-memory slot, with no intermediate frame
// buffer. The caller reserves capacity up front (free_slots() >=
// fragments_for(frame_len)); acquiring a slot then never fails, so the
// whole frame publishes, slot by slot, in one pass. finish() commits the
// trailing partial slot.
class SlotFrameWriter final : public wire::FrameWriter {
 public:
  SlotFrameWriter(qclt::SpscQueue* q, std::uint32_t frame_len) : q_(q), len_(frame_len) {}

  void finish() {
    CI_CHECK_MSG(written_ == len_, "frame length mismatch at finish");
    if (slot_ != nullptr) {
      q_->commit_write();
      slot_ = nullptr;
    }
  }

 private:
  void do_append(const void* data, std::size_t n) override {
    const auto* src = static_cast<const unsigned char*>(data);
    while (n > 0) {
      if (slot_ == nullptr) {
        slot_ = static_cast<unsigned char*>(q_->try_acquire_slot());
        CI_CHECK_MSG(slot_ != nullptr, "caller reserved too few slots");
        auto* hdr = reinterpret_cast<qclt::wire::FragmentHeader*>(slot_);
        hdr->msg_len = len_;
        hdr->frag_index = frag_index_++;
        hdr->reserved = 0;
        slot_off_ = 0;
      }
      const std::size_t chunk = std::min(n, qclt::wire::kFragPayload - slot_off_);
      std::memcpy(slot_ + sizeof(qclt::wire::FragmentHeader) + slot_off_, src, chunk);
      slot_off_ += chunk;
      src += chunk;
      n -= chunk;
      written_ += static_cast<std::uint32_t>(chunk);
      if (slot_off_ == qclt::wire::kFragPayload) {
        q_->commit_write();
        slot_ = nullptr;
      }
    }
  }

  qclt::SpscQueue* q_;
  const std::uint32_t len_;
  std::uint32_t written_ = 0;
  unsigned char* slot_ = nullptr;
  std::size_t slot_off_ = 0;
  std::uint16_t frag_index_ = 0;
};

inline consensus::Message decode(const unsigned char* buf, std::size_t n) {
  consensus::Message m;
  CI_CHECK_MSG(wire::try_decode(buf, n, &m), "malformed message on the wire");
  return m;
}

}  // namespace ci::rt
