// Message (de)serialization for the QC-libtask transport. Messages are
// trivially copyable; only the wire_size() prefix travels, so fast-path
// messages occupy a single 128-byte queue slot.
#pragma once

#include <cstring>

#include "common/check.hpp"
#include "consensus/message.hpp"

namespace ci::rt {

// Large enough for the biggest reconfiguration message.
inline constexpr std::size_t kWireBufBytes = 1024;
static_assert(kWireBufBytes >= sizeof(consensus::Message));

inline std::uint32_t encode(const consensus::Message& m, unsigned char* buf) {
  const std::size_t n = consensus::wire_size(m);
  CI_CHECK(n <= kWireBufBytes);
  std::memcpy(buf, &m, n);
  return static_cast<std::uint32_t>(n);
}

inline consensus::Message decode(const unsigned char* buf, std::size_t n) {
  consensus::Message m;
  CI_CHECK(n >= consensus::kMessageHeaderBytes && n <= sizeof(consensus::Message));
  std::memcpy(&m, buf, n);
  CI_CHECK_MSG(consensus::wire_validate(m, n), "malformed message on the wire");
  return m;
}

}  // namespace ci::rt
