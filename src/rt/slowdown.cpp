#include "rt/slowdown.hpp"

#include "common/affinity.hpp"

namespace ci::rt {

void CoreBurner::start(int core, int count) {
  stop();
  stop_.store(false, std::memory_order_relaxed);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this, core] {
      pin_to_core(core);
      // The paper's load: continuously multiply a number by itself.
      volatile double x = 1.0000001;
      while (!stop_.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 4096; ++k) x = x * x + 1.0e-9;
      }
    });
  }
}

void CoreBurner::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) t.join();
  threads_.clear();
}

}  // namespace ci::rt
