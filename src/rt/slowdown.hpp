// CPU-burner fault injection: the paper slows a core by running "8
// CPU-intensive processes on it; each process is a bash script that
// continuously multiplies a number by itself" (§2.2, §7.6). We reproduce
// that with busy-spin threads pinned to the victim core, so the replica
// pinned there gets ~1/(burners+1) of its cycles plus scheduler churn.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ci::rt {

class CoreBurner {
 public:
  CoreBurner() = default;
  ~CoreBurner() { stop(); }

  CoreBurner(const CoreBurner&) = delete;
  CoreBurner& operator=(const CoreBurner&) = delete;

  // Starts `count` burner threads pinned to `core`.
  void start(int core, int count = 8);

  // Stops and joins all burners.
  void stop();

  bool running() const { return !threads_.empty(); }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace ci::rt
