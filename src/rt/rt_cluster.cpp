#include "rt/rt_cluster.hpp"

#include <chrono>
#include <map>
#include <thread>

#include "common/affinity.hpp"
#include "common/check.hpp"
#include "consensus/two_pc.hpp"

namespace ci::rt {

using consensus::Command;
using consensus::EngineConfig;
using consensus::Instance;
using consensus::NodeId;

// The paper's load manager (§7.1, run on core 47): releases all clients
// with a start message once its node is up.
class RtCluster::LoadManagerEngine final : public consensus::Engine {
 public:
  explicit LoadManagerEngine(std::vector<NodeId> client_ids)
      : client_ids_(std::move(client_ids)) {}

  void start(consensus::Context& ctx) override {
    for (const NodeId c : client_ids_) {
      consensus::Message m(consensus::MsgType::kStart, consensus::ProtoId::kControl,
                           ctx.self(), c);
      ctx.send(c, m);
    }
  }

  void on_message(consensus::Context&, const consensus::Message&) override {}

 private:
  std::vector<NodeId> client_ids_;
};

RtCluster::RtCluster(const RtClusterOptions& opts) : opts_(opts) {
  const std::int32_t R = opts_.num_replicas;
  const std::int32_t C = opts_.joint ? R : opts_.num_clients;
  // Node ids: replicas, then (separate) clients, then the load manager.
  const std::int32_t manager_id = opts_.joint ? R : R + C;
  const std::int32_t total = manager_id + 1;
  CI_CHECK(R >= 1);

  net_ = std::make_unique<qclt::Network>();

  auto base_cfg = [&](NodeId self) {
    EngineConfig cfg;
    cfg.self = self;
    cfg.num_replicas = R;
    cfg.retry_timeout = opts_.retry_timeout;
    cfg.fd_timeout = opts_.fd_timeout;
    cfg.heartbeat_period = opts_.heartbeat_period;
    cfg.seed = opts_.seed;
    return cfg;
  };

  core::ProtocolOptions popts;
  popts.acceptor_count = opts_.acceptor_count;
  for (NodeId r = 0; r < R; ++r) {
    sms_.push_back(std::make_unique<consensus::MapStateMachine>());
    EngineConfig cfg = base_cfg(r);
    cfg.state_machine = sms_.back().get();
    replicas_.push_back(core::make_replica_engine(opts_.protocol, cfg, popts));
    burners_.push_back(std::make_unique<CoreBurner>());
  }

  for (std::int32_t c = 0; c < C; ++c) {
    const NodeId self = opts_.joint ? c : R + c;
    consensus::ClientConfig cc;
    cc.base = base_cfg(self);
    cc.initial_target = 0;
    cc.request_timeout = opts_.request_timeout;
    cc.think_time = opts_.think_time;
    cc.read_fraction = opts_.read_fraction;
    cc.total_requests = opts_.requests_per_client;
    cc.auto_start = false;  // released by the load manager (kStart)
    if (opts_.joint && opts_.joint_local_reads && opts_.protocol == Protocol::kTwoPc) {
      auto* replica =
          static_cast<consensus::TwoPcEngine*>(replicas_[static_cast<std::size_t>(c)].get());
      auto* sm = sms_[static_cast<std::size_t>(c)].get();
      cc.local_read = [replica, sm](const Command& cmd, std::uint64_t* out) {
        if (replica->has_prepared_uncommitted()) return false;
        *out = sm->read(cmd.key);
        return true;
      };
    }
    clients_.push_back(std::make_unique<ClientEngine>(cc));
  }

  std::vector<NodeId> client_ids;
  if (opts_.joint) {
    for (NodeId r = 0; r < R; ++r) {
      joint_engines_.push_back(std::make_unique<core::JointEngine>(
          replicas_[static_cast<std::size_t>(r)].get(),
          clients_[static_cast<std::size_t>(r)].get()));
      nodes_.push_back(std::make_unique<RtNode>(r, total, joint_engines_.back().get(),
                                                net_.get(), core_for(r)));
      client_ids.push_back(r);
    }
  } else {
    for (NodeId r = 0; r < R; ++r) {
      nodes_.push_back(std::make_unique<RtNode>(r, total, replicas_[static_cast<std::size_t>(r)].get(),
                                                net_.get(), core_for(r)));
    }
    for (std::int32_t c = 0; c < C; ++c) {
      const NodeId self = R + c;
      nodes_.push_back(std::make_unique<RtNode>(self, total,
                                                clients_[static_cast<std::size_t>(c)].get(),
                                                net_.get(), core_for(self)));
      client_ids.push_back(self);
    }
  }
  load_manager_ = std::make_unique<LoadManagerEngine>(std::move(client_ids));
  // The load manager runs on the machine's last core (core 47 in §7.1).
  nodes_.push_back(std::make_unique<RtNode>(manager_id, total, load_manager_.get(), net_.get(),
                                            opts_.pin && pinning_available()
                                                ? online_cores() - 1
                                                : -1));
}

RtCluster::~RtCluster() { stop(); }

int RtCluster::core_for(NodeId node) const {
  if (!opts_.pin || !pinning_available()) return -1;
  // Replicas on cores 0..R-1, clients following, wrapped modulo the
  // machine (the paper used a 48-core box; we report oversubscription).
  return static_cast<int>(node) % online_cores();
}

void RtCluster::start() {
  CI_CHECK(!started_);
  started_ = true;
  started_at_ = now_nanos();
  // The load-manager node broadcasts kStart from its engine start() hook,
  // releasing every client (§7.1).
  for (auto& n : nodes_) n->start();
}

bool RtCluster::clients_done() const {
  for (const auto& c : clients_) {
    if (!c->done()) return false;
  }
  return true;
}

void RtCluster::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopped_at_ = now_nanos();
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
  for (auto& b : burners_) b->stop();
}

RtResult RtCluster::run_to_completion(Nanos max_wall) {
  const Nanos deadline = now_nanos() + max_wall;
  while (now_nanos() < deadline && !clients_done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop();
  return collect();
}

RtResult RtCluster::collect() {
  CI_CHECK(stopped_);
  RtResult res;
  res.wall_time = stopped_at_ - started_at_;
  for (const auto& c : clients_) {
    res.committed += c->committed();
    res.issued += c->issued();
    res.local_reads += c->local_reads();
    res.latency.merge(c->latency());
  }
  res.throughput_ops = static_cast<double>(res.committed) * 1e9 /
                       static_cast<double>(res.wall_time > 0 ? res.wall_time : 1);
  std::map<Instance, Command> decided;
  for (const auto& n : nodes_) {
    res.total_messages += n->messages_sent();
    for (const auto& [in, cmd] : n->delivered()) {
      auto [it, inserted] = decided.emplace(in, cmd);
      if (!inserted && !(it->second == cmd)) res.consistent = false;
    }
  }
  return res;
}

void RtCluster::slow_core_of(NodeId node, int burner_count) {
  CI_CHECK(node >= 0 && node < opts_.num_replicas);
  burners_[static_cast<std::size_t>(node)]->start(core_for(node), burner_count);
}

void RtCluster::heal_core_of(NodeId node) {
  burners_[static_cast<std::size_t>(node)]->stop();
}

void RtCluster::throttle_node(NodeId node, std::uint32_t factor) {
  CI_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
}

}  // namespace ci::rt
