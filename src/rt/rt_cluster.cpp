#include "rt/rt_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/affinity.hpp"
#include "common/check.hpp"

namespace ci::rt {

using consensus::NodeId;
using core::FaultEvent;

// The paper's load manager (§7.1, run on core 47): releases all clients
// with a start message once its node is up. Sharded deployments get one
// kStart per (group, client node) so every group's demux can route it.
class RtCluster::LoadManagerEngine final : public consensus::Engine {
 public:
  explicit LoadManagerEngine(std::vector<std::pair<GroupId, NodeId>> targets)
      : targets_(std::move(targets)) {}

  void start(consensus::Context& ctx) override {
    for (const auto& [g, node] : targets_) {
      consensus::Message m(consensus::MsgType::kStart, consensus::ProtoId::kControl,
                           ctx.self(), node);
      m.group = g;
      ctx.send(node, m);
    }
  }

  void on_message(consensus::Context&, const consensus::Message&) override {}

 private:
  std::vector<std::pair<GroupId, NodeId>> targets_;
};

RtCluster::RtCluster(const ClusterSpec& spec) : RtCluster(ShardSpec(spec)) {}

RtCluster::RtCluster(const ShardSpec& shard)
    : shard_(shard), dep_(shard, /*auto_start_clients=*/false) {
  // Node ids: the deployment's transport nodes, then the load manager.
  const NodeId manager_id = dep_.num_nodes();
  const std::int32_t total = manager_id + 1;

  for (const FaultEvent& f : shard_.base.faults.events) {
    // Silent acceptor reboot is deterministic state surgery; only the
    // simulator can apply it race-free. Slow windows and clock stretches
    // both apply cleanly at wall-clock offsets.
    CI_CHECK(f.kind == FaultEvent::Kind::kSlowNode ||
             f.kind == FaultEvent::Kind::kStretchClock);
  }
  stretch_fired_.assign(shard_.base.faults.events.size(), false);

  net_ = std::make_unique<qclt::Network>(slots_for(shard_.base.engine.batch));

  delivery_logs_.resize(static_cast<std::size_t>(dep_.num_nodes()));
  dep_.set_deliver_hook([this](NodeId global, GroupId g, NodeId local,
                               consensus::Instance in, const consensus::Command& cmd) {
    delivery_logs_[static_cast<std::size_t>(global)].emplace_back(g, local, in, cmd);
  });

  for (NodeId n = 0; n < dep_.num_nodes(); ++n) {
    burners_.push_back(std::make_unique<CoreBurner>());
    nodes_.push_back(std::make_unique<RtNode>(n, total, dep_.node_engine(n), net_.get(),
                                              core_for(n)));
  }
  load_manager_ = std::make_unique<LoadManagerEngine>(dep_.client_targets());
  // The load manager runs on the machine's last core (core 47 in §7.1).
  nodes_.push_back(std::make_unique<RtNode>(manager_id, total, load_manager_.get(),
                                            net_.get(),
                                            shard_.base.rt.pin && pinning_available()
                                                ? online_cores() - 1
                                                : -1));
}

RtCluster::~RtCluster() { stop(); }

int RtCluster::core_for(NodeId node) const {
  if (!shard_.base.rt.pin || !pinning_available()) return -1;
  // Transport node ids map straight onto cores, wrapped modulo the machine
  // (the paper used a 48-core box; we report oversubscription). The
  // placement policy decides which group's replicas share a core.
  return static_cast<int>(node) % online_cores();
}

void RtCluster::start() {
  CI_CHECK(!started_);
  started_ = true;
  started_at_ = now_nanos();
  // The load-manager node broadcasts kStart from its engine start() hook,
  // releasing every client of every group (§7.1).
  for (auto& n : nodes_) n->start();
}

void RtCluster::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopped_at_ = now_nanos();
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
  for (auto& b : burners_) b->stop();
}

void RtCluster::apply_faults(Nanos elapsed) {
  // Recompute each planned node's factor from ALL windows active now
  // (mirrors SimNet::speed_factor's max-over-windows), so overlapping
  // windows compose and healing one window cannot erase another.
  for (std::size_t i = 0; i < shard_.base.faults.events.size(); ++i) {
    const FaultEvent& f = shard_.base.faults.events[i];
    if (f.kind == FaultEvent::Kind::kStretchClock) {
      // One-shot: re-anchoring every poll would compound the transform.
      if (stretch_fired_[i] || elapsed < f.at) continue;
      stretch_fired_[i] = true;
      for (GroupId g = 0; g < dep_.num_groups(); ++g) {
        nodes_[static_cast<std::size_t>(dep_.global_node(g, f.node))]->stretch_clock(
            f.factor);
      }
      continue;
    }
    double factor = 1.0;
    for (const FaultEvent& g : shard_.base.faults.events) {
      if (g.kind != FaultEvent::Kind::kSlowNode) continue;
      if (g.node == f.node && elapsed >= g.at && elapsed < g.until) {
        factor = std::max(factor, g.factor);
      }
    }
    // Round, and never round an intended fault down to the healthy
    // sentinel (rt stall granularity is (factor-1) x 500ns).
    const auto quantized =
        factor <= 1.0 ? 1u
                      : std::max(2u, static_cast<std::uint32_t>(factor + 0.5));
    // Template semantics: the fault hits its group-local node in EVERY
    // group (one shared transport node under co-location).
    for (GroupId g = 0; g < dep_.num_groups(); ++g) {
      throttle_node(dep_.global_node(g, f.node), quantized);
    }
  }
}

void RtCluster::drive_until(Nanos wall_deadline) {
  while (now_nanos() < wall_deadline && !clients_done()) {
    tick_faults();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

RunResult RtCluster::run_to_completion(Nanos max_wall) {
  drive_until(now_nanos() + max_wall);
  stop();
  return collect();
}

std::uint64_t RtCluster::live_messages() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->messages_sent();
  return sum;
}

std::uint64_t RtCluster::live_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->bytes_sent();
  return sum;
}

void RtCluster::replay_delivery_logs() {
  CI_CHECK(stopped_);
  // Feed each node's delivered log into its group's agreement recorder
  // once (the logs are safe to read after join()).
  if (collected_) return;
  collected_ = true;
  for (const auto& log : delivery_logs_) {
    for (const auto& [g, local, in, cmd] : log) {
      dep_.recorder(g).record(local, in, cmd);
    }
  }
}

RunResult RtCluster::collect() {
  replay_delivery_logs();
  RunResult res = dep_.collect();
  res.duration = stopped_at_ - started_at_;
  res.total_messages = live_messages();
  res.total_bytes = live_bytes();
  return res;
}

RunResult RtCluster::collect_group(GroupId g) {
  replay_delivery_logs();
  RunResult res = dep_.collect_group(g);
  res.duration = stopped_at_ - started_at_;
  // total_messages stays 0: transport send counters are per node, and a
  // node's traffic is not attributable to one group (co-location shares
  // nodes across groups). Read collect() for whole-transport counts.
  return res;
}

void RtCluster::slow_core_of(NodeId node, int burner_count) {
  CI_CHECK(node >= 0 && node < dep_.num_nodes());
  burners_[static_cast<std::size_t>(node)]->start(core_for(node), burner_count);
}

void RtCluster::heal_core_of(NodeId node) {
  CI_CHECK(node >= 0 && node < dep_.num_nodes());
  burners_[static_cast<std::size_t>(node)]->stop();
}

void RtCluster::throttle_node(NodeId node, std::uint32_t factor) {
  CI_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
}

}  // namespace ci::rt
