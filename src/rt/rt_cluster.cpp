#include "rt/rt_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/affinity.hpp"
#include "common/check.hpp"

namespace ci::rt {

using consensus::NodeId;
using core::FaultEvent;

// The paper's load manager (§7.1, run on core 47): releases all clients
// with a start message once its node is up.
class RtCluster::LoadManagerEngine final : public consensus::Engine {
 public:
  explicit LoadManagerEngine(std::vector<NodeId> client_ids)
      : client_ids_(std::move(client_ids)) {}

  void start(consensus::Context& ctx) override {
    for (const NodeId c : client_ids_) {
      consensus::Message m(consensus::MsgType::kStart, consensus::ProtoId::kControl,
                           ctx.self(), c);
      ctx.send(c, m);
    }
  }

  void on_message(consensus::Context&, const consensus::Message&) override {}

 private:
  std::vector<NodeId> client_ids_;
};

RtCluster::RtCluster(const ClusterSpec& spec)
    : spec_(spec), dep_(spec, /*auto_start_clients=*/false) {
  // Node ids: the deployment's nodes, then the load manager.
  const NodeId manager_id = dep_.num_nodes();
  const std::int32_t total = manager_id + 1;

  for (const FaultEvent& f : spec_.faults.events) {
    // Silent acceptor reboot is deterministic state surgery; only the
    // simulator can apply it race-free.
    CI_CHECK(f.kind == FaultEvent::Kind::kSlowNode);
  }

  net_ = std::make_unique<qclt::Network>();

  for (NodeId r = 0; r < spec_.num_replicas; ++r) {
    burners_.push_back(std::make_unique<CoreBurner>());
  }
  for (NodeId n = 0; n < dep_.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<RtNode>(n, total, dep_.node_engine(n), net_.get(),
                                              core_for(n)));
  }
  load_manager_ = std::make_unique<LoadManagerEngine>(dep_.client_node_ids());
  // The load manager runs on the machine's last core (core 47 in §7.1).
  nodes_.push_back(std::make_unique<RtNode>(manager_id, total, load_manager_.get(),
                                            net_.get(),
                                            spec_.rt.pin && pinning_available()
                                                ? online_cores() - 1
                                                : -1));
}

RtCluster::~RtCluster() { stop(); }

int RtCluster::core_for(NodeId node) const {
  if (!spec_.rt.pin || !pinning_available()) return -1;
  // Replicas on cores 0..R-1, clients following, wrapped modulo the
  // machine (the paper used a 48-core box; we report oversubscription).
  return static_cast<int>(node) % online_cores();
}

void RtCluster::start() {
  CI_CHECK(!started_);
  started_ = true;
  started_at_ = now_nanos();
  // The load-manager node broadcasts kStart from its engine start() hook,
  // releasing every client (§7.1).
  for (auto& n : nodes_) n->start();
}

void RtCluster::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopped_at_ = now_nanos();
  for (auto& n : nodes_) n->request_stop();
  for (auto& n : nodes_) n->join();
  for (auto& b : burners_) b->stop();
}

void RtCluster::apply_faults(Nanos elapsed) {
  // Recompute each planned node's factor from ALL windows active now
  // (mirrors SimNet::speed_factor's max-over-windows), so overlapping
  // windows compose and healing one window cannot erase another.
  for (const FaultEvent& f : spec_.faults.events) {
    double factor = 1.0;
    for (const FaultEvent& g : spec_.faults.events) {
      if (g.node == f.node && elapsed >= g.at && elapsed < g.until) {
        factor = std::max(factor, g.factor);
      }
    }
    // Round, and never round an intended fault down to the healthy
    // sentinel (rt stall granularity is (factor-1) x 500ns).
    const auto quantized =
        factor <= 1.0 ? 1u
                      : std::max(2u, static_cast<std::uint32_t>(factor + 0.5));
    throttle_node(f.node, quantized);
  }
}

void RtCluster::drive_until(Nanos wall_deadline) {
  while (now_nanos() < wall_deadline && !clients_done()) {
    tick_faults();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

RunResult RtCluster::run_to_completion(Nanos max_wall) {
  drive_until(now_nanos() + max_wall);
  stop();
  return collect();
}

std::uint64_t RtCluster::live_messages() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->messages_sent();
  return sum;
}

RunResult RtCluster::collect() {
  CI_CHECK(stopped_);
  // Feed each node's delivered log into the shared agreement recorder once
  // (the logs are safe to read after join()).
  if (!collected_) {
    collected_ = true;
    for (const auto& n : nodes_) {
      for (const auto& [in, cmd] : n->delivered()) {
        dep_.recorder().record(n->id(), in, cmd);
      }
    }
  }
  RunResult res = dep_.collect();
  res.duration = stopped_at_ - started_at_;
  res.total_messages = live_messages();
  return res;
}

void RtCluster::slow_core_of(NodeId node, int burner_count) {
  CI_CHECK(node >= 0 && node < spec_.num_replicas);
  burners_[static_cast<std::size_t>(node)]->start(core_for(node), burner_count);
}

void RtCluster::heal_core_of(NodeId node) {
  burners_[static_cast<std::size_t>(node)]->stop();
}

void RtCluster::throttle_node(NodeId node, std::uint32_t factor) {
  CI_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)]->set_slow_factor(factor);
}

}  // namespace ci::rt
