#include "rt/rt_node.hpp"

#include <chrono>
#include <thread>

#include "common/affinity.hpp"
#include "common/time.hpp"

namespace ci::rt {

RtNode::RtNode(NodeId self, std::int32_t total_nodes, Engine* engine, qclt::Network* net,
               int core)
    : self_(self),
      total_nodes_(total_nodes),
      engine_(engine),
      net_(net),
      core_(core),
      ctx_(std::make_unique<Ctx>(this)),
      // Construct the scheduler here (not on the node thread) so
      // request_stop() from other threads never races its creation.
      sched_(std::make_unique<qclt::Scheduler>(kTaskStackBytes)),
      pending_(static_cast<std::size_t>(total_nodes)) {}

RtNode::~RtNode() {
  request_stop();
  join();
}

void RtNode::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void RtNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  sched_->request_stop();
}

void RtNode::join() {
  if (thread_.joinable()) thread_.join();
}

void RtNode::send(NodeId dst, const Message& m) {
  if (dst == self_) {
    // Defer: engines are not reentrant, and local delivery between
    // collapsed roles costs no boundary crossing. The copy shares the
    // message's pooled body (if any); custody moves to the self queue and
    // drain_self_queue releases it after delivery.
    Message out = m;
    out.src = self_;
    out.dst = dst;
    self_queue_.push_back(out);
    return;
  }
  ctx_->sent.fetch_add(1, std::memory_order_relaxed);
  const auto n = static_cast<std::uint32_t>(wire::frame_size(m));
  ctx_->sent_bytes.fetch_add(n, std::memory_order_relaxed);
  auto& conn = conns_[static_cast<std::size_t>(dst)];
  auto& backlog = pending_[static_cast<std::size_t>(dst)];
  qclt::SpscQueue* q = conn->out_queue();
  if (backlog.empty() && q->free_slots() >= qclt::wire::fragments_for(n)) {
    // Fast path: encode the frame straight into the reserved SPSC slots —
    // each field byte moves exactly once, engine memory to shared-memory
    // slot, with src/dst stamped mid-flight (no frame buffer, no Message
    // copy just to rewrite two header fields).
    SlotFrameWriter w(q, n);
    const std::uint32_t written = wire::encode_into(m, w, self_, dst);
    CI_CHECK(written == n);
    w.finish();
    wire::release_body(m);  // send() consumes the message's pooled body
    return;
  }
  // Queue full (or older messages still waiting): encode into the FIFO
  // backlog instead; flush_pending replays the finished frames.
  alignas(Message) unsigned char buf[kWireBufBytes];
  wire::BufferWriter w(buf);
  const std::uint32_t written = wire::encode_into(m, w, self_, dst);
  CI_CHECK(written == n);
  wire::release_body(m);
  backlog.emplace_back(buf, buf + n);
}

void RtNode::flush_pending(NodeId peer) {
  auto& backlog = pending_[static_cast<std::size_t>(peer)];
  auto& conn = conns_[static_cast<std::size_t>(peer)];
  while (!backlog.empty()) {
    const auto& frame = backlog.front();
    if (!conn->try_write(frame.data(), static_cast<std::uint32_t>(frame.size()))) return;
    backlog.pop_front();
  }
}

void RtNode::drain_self_queue() {
  while (!self_queue_.empty()) {
    const Message m = self_queue_.front();
    self_queue_.pop_front();
    engine_->on_message(*ctx_, m);
    wire::release_body(m);
  }
}

void RtNode::maybe_stall() {
  const std::uint32_t f = slow_factor_.load(std::memory_order_relaxed);
  if (f <= 1) return;
  // Sleep, don't spin: on a dedicated core the node's processing rate
  // collapses identically either way, but on an oversubscribed machine a
  // busy-wait would burn timeslices the *healthy* nodes need — the fault
  // would slow the whole cluster instead of one node.
  std::this_thread::sleep_for(std::chrono::nanoseconds(static_cast<Nanos>(f - 1) * 500));
}

void RtNode::thread_main() {
  if (core_ >= 0) pin_to_core(core_);
  if (stop_.load(std::memory_order_relaxed)) return;

  // Connections to every peer (netlisten/dial collapsed into an eager mesh).
  conns_.resize(static_cast<std::size_t>(total_nodes_));
  for (NodeId peer = 0; peer < total_nodes_; ++peer) {
    if (peer == self_) continue;
    const qclt::Duplex d = net_->duplex(self_, peer);
    conns_[static_cast<std::size_t>(peer)] =
        std::make_unique<qclt::Connection>(d.out, d.in, sched_.get());
  }

  // One blocking reader task per peer (§6.2).
  for (NodeId peer = 0; peer < total_nodes_; ++peer) {
    if (peer == self_) continue;
    auto* conn = conns_[static_cast<std::size_t>(peer)].get();
    sched_->spawn(
        [this, conn] {
          unsigned char buf[kWireBufBytes];
          while (!sched_->stopping()) {
            const std::int32_t n = conn->read(buf, sizeof(buf));
            if (n < 0) return;  // stopped
            maybe_stall();
            const Message m = decode(buf, static_cast<std::size_t>(n));
            engine_->on_message(*ctx_, m);
            wire::release_body(m);  // decode allocated any pooled body
            drain_self_queue();
            // One message per slice: a busy peer must not starve the other
            // readers or the tick task (heartbeats, retries).
            sched_->yield();
          }
        },
        "reader");
  }

  // Main task: ticks, deferred local delivery, backlog flushing.
  sched_->spawn(
      [this] {
        engine_->start(*ctx_);
        drain_self_queue();
        while (!sched_->stopping()) {
          maybe_stall();
          engine_->tick(*ctx_);
          drain_self_queue();
          for (NodeId peer = 0; peer < total_nodes_; ++peer) {
            if (peer != self_) flush_pending(peer);
          }
          sched_->yield();
        }
      },
      "main");

  sched_->run();

  // Pooled bodies are thread-local; anything still parked in the self
  // queue must go back to this thread's pool before the thread exits.
  for (const Message& m : self_queue_) wire::release_body(m);
  self_queue_.clear();
}

}  // namespace ci::rt
