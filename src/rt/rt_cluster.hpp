// The rt backend adapter: plugs a core::ShardedDeployment into real OS
// threads over QC-libtask message passing, mirroring the paper's setup
// (§7.1): replica nodes pinned to cores 0..R-1, clients on the following
// cores, a "load manager" that releases the clients with a start message,
// and slow-core fault injection.
//
// All wiring (including the group demux layer) and agreement checking live
// in the shared deployment layers; this class owns the transport and
// threads, logs each node's deliveries from its own thread (replayed into
// the per-group agreement recorders at collect()), and applies the spec's
// FaultPlan at wall-clock offsets while running.
//
// Constructing from a plain ClusterSpec runs the single-group layout; the
// single-group accessors below then address group 0.
//
// On machines with fewer cores than nodes, pinning wraps modulo the core
// count (oversubscription), which the benches report alongside results.
#pragma once

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "core/cluster_spec.hpp"
#include "core/sharded_deployment.hpp"
#include "core/run_result.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"
#include "rt/slowdown.hpp"

namespace ci::rt {

using consensus::ClientEngine;
using consensus::GroupId;
using core::ClusterSpec;
using core::Protocol;
using core::protocol_name;
using core::RunResult;
using core::ShardSpec;

class RtCluster {
 public:
  explicit RtCluster(const ClusterSpec& spec);
  explicit RtCluster(const ShardSpec& shard);
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  // Starts node threads and releases the clients.
  void start();

  // Blocks until all clients finished their quota or `max_wall` elapsed
  // (whichever first), applying the spec's FaultPlan along the way, then
  // stops all nodes.
  RunResult run_to_completion(Nanos max_wall = 30 * kSecond);

  // Manual control for time-series experiments (Fig. 11). For commit
  // timestamps, call client(i)->set_commit_series(...) before start().
  void stop();
  RunResult collect();
  RunResult collect_group(GroupId g);

  // Slow the core hosting transport node `node` with busy threads (paper
  // §7.6). Only effective where thread affinity really constrains
  // scheduling (bare metal); container sandboxes often emulate affinity.
  void slow_core_of(consensus::NodeId node, int burners = 8);
  void heal_core_of(consensus::NodeId node);

  // Portable slow-core injection: multiplies the node's per-message cost
  // (see RtNode::set_slow_factor). factor 1 = healthy. `node` is a
  // transport id; under sharding, map through sharded().global_node.
  void throttle_node(consensus::NodeId node, std::uint32_t factor);

  // Applies any FaultPlan events whose wall-clock offset has been reached.
  // run_to_completion calls this itself; manual drivers (and the harness)
  // call it from their poll loops.
  void tick_faults() { apply_faults(now_nanos() - started_at_); }

  // The canonical poll loop: ticks faults until `wall_deadline` (absolute
  // now_nanos() time) or until every client finished its quota.
  void drive_until(Nanos wall_deadline);

  core::ShardedDeployment& sharded() { return dep_; }
  std::int32_t num_groups() const { return dep_.num_groups(); }
  core::Deployment& deployment() { return dep_.group(0); }
  ClientEngine* client(std::int32_t i) { return dep_.group(0).client(i); }
  std::int32_t client_count() const { return dep_.group(0).client_count(); }
  bool clients_done() const { return dep_.clients_done(); }

  // Live counters (atomics only) for windowed measurement while running;
  // aggregated over every group.
  std::uint64_t live_committed() const { return dep_.total_committed(); }
  std::uint64_t live_issued() const { return dep_.total_issued(); }
  std::uint64_t live_local_reads() const { return dep_.total_local_reads(); }
  std::uint64_t live_messages() const;
  std::uint64_t live_bytes() const;

 private:
  class LoadManagerEngine;

  int core_for(consensus::NodeId node) const;
  void apply_faults(Nanos elapsed);
  void replay_delivery_logs();

  ShardSpec shard_;
  core::ShardedDeployment dep_;
  std::unique_ptr<consensus::Engine> load_manager_;
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<RtNode>> nodes_;
  std::vector<std::unique_ptr<CoreBurner>> burners_;  // per transport node
  // Per transport node: every (group, local id, instance, command) its
  // engines executed. Written only by that node's thread (outer vector
  // never resizes while running), read after join().
  std::vector<std::vector<std::tuple<GroupId, consensus::NodeId, consensus::Instance,
                                     consensus::Command>>>
      delivery_logs_;
  // One-shot latch per planned kStretchClock event (index into
  // faults.events): a skewed oscillator is applied once, never re-anchored.
  std::vector<bool> stretch_fired_;
  Nanos started_at_ = 0;
  Nanos stopped_at_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  bool collected_ = false;
};

}  // namespace ci::rt
