// Real-thread deployment mirroring the paper's experimental setup (§7.1):
// replica nodes pinned to cores 0..R-1, clients on the following cores, a
// "load manager" that releases the clients with a start message, and
// CPU-burner fault injection.
//
// On machines with fewer cores than nodes, pinning wraps modulo the core
// count (oversubscription), which the benches report alongside results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "common/timeseries.hpp"
#include "consensus/client.hpp"
#include "core/protocol.hpp"
#include "qclt/net.hpp"
#include "rt/rt_node.hpp"
#include "rt/slowdown.hpp"

namespace ci::rt {

using consensus::ClientEngine;
using core::Protocol;
using core::protocol_name;

struct RtClusterOptions {
  Protocol protocol = Protocol::kOnePaxos;
  std::int32_t num_replicas = 3;
  std::int32_t num_clients = 1;
  bool joint = false;                  // clients co-located with replicas (§7.4)
  bool joint_local_reads = false;      // 2PC-Joint local reads (§7.5)
  bool pin = true;                     // pin node threads to cores

  // Engine knobs. The failure detector is generous: container/VM scheduling
  // can stall a healthy thread for several milliseconds, and false
  // suspicion triggers gratuitous reconfiguration.
  Nanos retry_timeout = 2 * kMillisecond;
  Nanos fd_timeout = 25 * kMillisecond;
  Nanos heartbeat_period = 2 * kMillisecond;

  // Client workload.
  Nanos request_timeout = 10 * kMillisecond;
  Nanos think_time = 0;
  double read_fraction = 0.0;
  std::uint64_t requests_per_client = 100;  // §7.1: each client sends 100

  std::int32_t acceptor_count = -1;  // Multi-Paxos ablation
  std::uint64_t seed = 1;
};

struct RtResult {
  std::uint64_t committed = 0;
  std::uint64_t issued = 0;
  std::uint64_t local_reads = 0;
  Nanos wall_time = 0;
  Histogram latency;
  double throughput_ops = 0;  // committed per second of wall time
  std::uint64_t total_messages = 0;
  bool consistent = true;  // cross-replica per-instance agreement
};

class RtCluster {
 public:
  explicit RtCluster(const RtClusterOptions& opts);
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  // Starts node threads and releases the clients.
  void start();

  // Blocks until all clients finished their quota or `max_wall` elapsed
  // (whichever first), then stops all nodes.
  RtResult run_to_completion(Nanos max_wall = 30 * kSecond);

  // Manual control for time-series experiments (Fig. 11). For commit
  // timestamps, call client(i)->set_commit_series(...) before start().
  void stop();
  RtResult collect();

  // Slow the core hosting `node` with busy threads (paper §7.6). Only
  // effective where thread affinity really constrains scheduling (bare
  // metal); container sandboxes often emulate affinity.
  void slow_core_of(consensus::NodeId node, int burners = 8);
  void heal_core_of(consensus::NodeId node);

  // Portable slow-core injection: multiplies the node's per-message cost
  // (see RtNode::set_slow_factor). factor 1 = healthy.
  void throttle_node(consensus::NodeId node, std::uint32_t factor);

  ClientEngine* client(std::int32_t i) { return clients_[static_cast<std::size_t>(i)].get(); }
  std::int32_t client_count() const { return static_cast<std::int32_t>(clients_.size()); }
  bool clients_done() const;

 private:
  class LoadManagerEngine;

  int core_for(consensus::NodeId node) const;

  RtClusterOptions opts_;
  std::unique_ptr<consensus::Engine> load_manager_;
  std::unique_ptr<qclt::Network> net_;
  std::vector<std::unique_ptr<consensus::MapStateMachine>> sms_;
  std::vector<std::unique_ptr<consensus::Engine>> replicas_;
  std::vector<std::unique_ptr<ClientEngine>> clients_;
  std::vector<std::unique_ptr<consensus::Engine>> joint_engines_;
  std::vector<std::unique_ptr<RtNode>> nodes_;
  std::vector<std::unique_ptr<CoreBurner>> burners_;  // per replica id
  Nanos started_at_ = 0;
  Nanos stopped_at_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ci::rt
