// One protocol node on one OS thread, pinned to one core — the deployment
// unit of §7.1 (replicas on cores 0..2, clients on the rest, via taskset).
//
// Inside the thread a QC-libtask scheduler runs:
//   * one reader task per peer connection, blocking on the incoming queue
//     (the paper's fdread-style interface, §6.2) and feeding the engine;
//   * a main task that drives engine ticks, drains deferred self-sends, and
//     flushes sends that found their outgoing queue full.
//
// Engine handlers run inside whichever task delivered the message; sends
// are non-blocking (overflow goes to a per-peer pending buffer) so an
// engine can never deadlock on a full queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/engine.hpp"
#include "qclt/connection.hpp"
#include "qclt/net.hpp"
#include "qclt/scheduler.hpp"
#include "rt/wire.hpp"

namespace ci::rt {

using consensus::Command;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::NodeId;

class RtNode {
 public:
  // `total_nodes` peers are assumed to occupy ids [0, total_nodes); the
  // full mesh is created through `net`. core < 0 leaves the thread unpinned.
  RtNode(NodeId self, std::int32_t total_nodes, Engine* engine, qclt::Network* net, int core);
  ~RtNode();

  RtNode(const RtNode&) = delete;
  RtNode& operator=(const RtNode&) = delete;

  void start();
  void request_stop();
  void join();

  // Portable slow-core injection: every message this node processes (and
  // every tick) costs an extra (factor-1) x 500ns busy-wait, collapsing the
  // node's processing rate the way a contended core would. Used when real
  // core pinning is unavailable (container sandboxes emulate affinity);
  // see CoreBurner for the paper's literal burner-process method.
  void set_slow_factor(std::uint32_t factor) {
    slow_factor_.store(factor == 0 ? 1 : factor, std::memory_order_relaxed);
  }

  // Clock-skew injection: from now on the engine's ctx.now() advances
  // `rate` times the wall clock, re-anchored so the perceived clock stays
  // continuous at the switch. The three fields are stored relaxed — the
  // node thread may briefly mix old and new anchors at the switch instant,
  // which perturbs the perceived time by at most the in-flight window; the
  // lease staleness tests stretch once and then settle, so the transient is
  // harmless. rate > 1 models the fast clock a deposed leader would need to
  // overrun its lease.
  void stretch_clock(double rate) {
    const Nanos t = now_nanos();
    const double old_rate = clock_rate_.load(std::memory_order_relaxed);
    const Nanos anchor_real = clock_anchor_real_.load(std::memory_order_relaxed);
    const Nanos anchor_seen = clock_anchor_seen_.load(std::memory_order_relaxed);
    const Nanos seen_now =
        anchor_seen +
        static_cast<Nanos>(static_cast<double>(t - anchor_real) * old_rate);
    clock_anchor_real_.store(t, std::memory_order_relaxed);
    clock_anchor_seen_.store(seen_now, std::memory_order_relaxed);
    clock_rate_.store(rate, std::memory_order_relaxed);
  }

  NodeId id() const { return self_; }
  std::uint64_t messages_sent() const { return ctx_->sent.load(std::memory_order_relaxed); }
  // Encoded frame bytes behind messages_sent() (boundary crossings only).
  std::uint64_t bytes_sent() const { return ctx_->sent_bytes.load(std::memory_order_relaxed); }

 private:
  class Ctx final : public consensus::Context {
   public:
    explicit Ctx(RtNode* node) : node_(node) {}
    NodeId self() const override { return node_->self_; }
    Nanos now() const override {
      const Nanos t = now_nanos();
      const double rate = node_->clock_rate_.load(std::memory_order_relaxed);
      if (rate == 1.0) return t;
      const Nanos anchor_real = node_->clock_anchor_real_.load(std::memory_order_relaxed);
      const Nanos anchor_seen = node_->clock_anchor_seen_.load(std::memory_order_relaxed);
      return anchor_seen +
             static_cast<Nanos>(static_cast<double>(t - anchor_real) * rate);
    }
    void send(NodeId dst, const Message& m) override { node_->send(dst, m); }
    // Delivery reporting happens in the GroupDemuxEngine hosted on every
    // node (RtCluster's hook logs per node thread and replays into the
    // per-group recorders after join()); the transport has no channel.
    void deliver(Instance, const Command&) override {}

    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> sent_bytes{0};

   private:
    RtNode* node_;
  };

  void thread_main();
  void send(NodeId dst, const Message& m);
  void flush_pending(NodeId peer);
  void drain_self_queue();
  void maybe_stall();

  NodeId self_;
  std::int32_t total_nodes_;
  Engine* engine_;
  qclt::Network* net_;
  int core_;

  std::unique_ptr<Ctx> ctx_;
  std::unique_ptr<qclt::Scheduler> sched_;
  std::vector<std::unique_ptr<qclt::Connection>> conns_;  // index = peer id; self = null
  std::vector<std::deque<std::vector<unsigned char>>> pending_;  // overflow per peer
  std::deque<Message> self_queue_;  // deferred self-sends (no reentrancy)
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint32_t> slow_factor_{1};
  // Perceived-clock skew (stretch_clock): seen + (wall - real) * rate.
  std::atomic<Nanos> clock_anchor_real_{0};
  std::atomic<Nanos> clock_anchor_seen_{0};
  std::atomic<double> clock_rate_{1.0};
};

}  // namespace ci::rt
