#include "qclt/shm_arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>

#include "common/check.hpp"

namespace ci::qclt {

namespace {

std::string unique_shm_name() {
  static std::atomic<unsigned> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/ci_qclt_%d_%u", static_cast<int>(::getpid()),
                counter.fetch_add(1));
  return buf;
}

}  // namespace

ShmArena::ShmArena(std::size_t bytes, Backing backing) : backing_(backing) {
  CI_CHECK(bytes > 0);
  capacity_ = bytes;
  if (backing == Backing::kSharedMemory) {
    shm_name_ = unique_shm_name();
    fd_ = ::shm_open(shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    CI_CHECK_MSG(fd_ >= 0, "shm_open failed");
    CI_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0, "ftruncate failed");
    base_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  } else {
    base_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  }
  CI_CHECK_MSG(base_ != MAP_FAILED, "mmap failed");
}

ShmArena::~ShmArena() {
  if (base_ != nullptr && base_ != MAP_FAILED) ::munmap(base_, capacity_);
  if (fd_ >= 0) {
    ::close(fd_);
    ::shm_unlink(shm_name_.c_str());
  }
}

void* ShmArena::allocate(std::size_t bytes, std::size_t alignment) {
  CI_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  const std::size_t aligned = (used_ + alignment - 1) & ~(alignment - 1);
  CI_CHECK_MSG(aligned + bytes <= capacity_, "ShmArena exhausted");
  used_ = aligned + bytes;
  return static_cast<unsigned char*>(base_) + aligned;
}

}  // namespace ci::qclt
