// Connection establishment between nodes, in the style of libtask's
// netlisten/netdial (paper §6.2): a replica listens, clients dial, and each
// established connection is a pair of SPSC queues (one per direction,
// paper Fig. 6).
//
// Queue memory comes from a shared arena so the same code runs over
// anonymous memory (threads) or an shm_open segment (processes). All Network
// methods are setup-path only and internally locked; the queues themselves
// are the lock-free data path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "qclt/shm_arena.hpp"
#include "qclt/spsc_queue.hpp"

namespace ci::qclt {

// The two directed queues between a pair of endpoints, from one side's
// point of view.
struct Duplex {
  SpscQueue* out = nullptr;  // written by this side
  SpscQueue* in = nullptr;   // read by this side
  int peer = -1;
};

class Network {
 public:
  explicit Network(std::uint32_t slots_per_queue = kDefaultSlots,
                   ShmArena::Backing backing = ShmArena::Backing::kAnonymous)
      : slots_(slots_per_queue), backing_(backing) {}

  std::uint32_t slots_per_queue() const { return slots_; }

  // Dials from `from` to `to`: creates the queue pair if absent, records a
  // pending accept for `to`, and returns `from`'s view of the duplex.
  Duplex dial(int from, int to) {
    std::lock_guard<std::mutex> lock(mu_);
    Pair& p = pair_locked(from, to);
    pending_accepts_[to].push_back(from);
    return view_locked(p, from, to);
  }

  // Accepts one pending dial at `self`; returns false if none is pending.
  bool accept(int self, Duplex* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_accepts_.find(self);
    if (it == pending_accepts_.end() || it->second.empty()) return false;
    const int from = it->second.front();
    it->second.pop_front();
    Pair& p = pair_locked(from, self);
    *out = view_locked(p, self, from);
    return true;
  }

  // Returns `self`'s duplex to `peer`, creating the queue pair if needed.
  // Used by runtimes that set up a full mesh eagerly.
  Duplex duplex(int self, int peer) {
    std::lock_guard<std::mutex> lock(mu_);
    Pair& p = pair_locked(self, peer);
    return view_locked(p, self, peer);
  }

 private:
  struct Pair {
    SpscQueue* low_to_high = nullptr;  // written by min(a,b)
    SpscQueue* high_to_low = nullptr;  // written by max(a,b)
  };

  Pair& pair_locked(int a, int b) {
    CI_CHECK(a != b);
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    Pair& p = pairs_[key];
    if (p.low_to_high == nullptr) {
      p.low_to_high = make_queue_locked();
      p.high_to_low = make_queue_locked();
    }
    return p;
  }

  Duplex view_locked(Pair& p, int self, int peer) {
    Duplex d;
    d.peer = peer;
    if (self < peer) {
      d.out = p.low_to_high;
      d.in = p.high_to_low;
    } else {
      d.out = p.high_to_low;
      d.in = p.low_to_high;
    }
    return d;
  }

  SpscQueue* make_queue_locked() {
    const std::size_t bytes = SpscQueue::bytes_required(slots_);
    if (arenas_.empty() || arenas_.back()->capacity() - arenas_.back()->used() < bytes + kSlotSize) {
      arenas_.push_back(std::make_unique<ShmArena>(kArenaBytes, backing_));
    }
    void* mem = arenas_.back()->allocate(bytes, kSlotSize);
    return SpscQueue::init(mem, slots_);
  }

  static constexpr std::size_t kArenaBytes = 4 * 1024 * 1024;

  std::mutex mu_;
  std::uint32_t slots_;
  ShmArena::Backing backing_;
  std::vector<std::unique_ptr<ShmArena>> arenas_;
  std::map<std::pair<int, int>, Pair> pairs_;
  std::map<int, std::deque<int>> pending_accepts_;
};

}  // namespace ci::qclt
