// Execution-context switching for user-level tasks.
//
// QC-libtask's whole point (paper §6.2) is that delivering a message costs a
// lightweight *user-level* context switch instead of an OS one. The default
// backend is ~20 instructions of x86-64 assembly that swap callee-saved
// registers and the stack pointer; a ucontext backend is kept for other
// architectures and for debugging (-DCI_QCLT_FORCE_UCONTEXT=ON), at the cost
// of a sigprocmask syscall per switch.
#pragma once

#include <cstddef>

#if !defined(CI_QCLT_UCONTEXT) && !defined(__x86_64__)
#define CI_QCLT_UCONTEXT 1
#endif

#if CI_QCLT_UCONTEXT
#include <ucontext.h>
#endif

namespace ci::qclt {

struct ExecContext {
#if CI_QCLT_UCONTEXT
  ucontext_t uc;
#else
  void* sp = nullptr;
#endif
};

using CtxEntryFn = void (*)(void*);

// Prepares `ctx` so the first switch into it calls entry(arg) on the given
// stack. `stack_base` is the lowest address; the stack grows down from
// stack_base + stack_size.
void ctx_create(ExecContext& ctx, void* stack_base, std::size_t stack_size, CtxEntryFn entry,
                void* arg);

// Saves the current context into `from` and resumes `to`.
void ctx_switch(ExecContext& from, ExecContext& to);

}  // namespace ci::qclt
