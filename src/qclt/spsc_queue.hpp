// Single-producer single-consumer queue of fixed 128-byte slots — the
// communication channel of QC-libtask (paper §6.1).
//
// Layout follows the paper: a small number of slots (seven by default), each
// 128 bytes (two cache lines), with a head pointer moved only by the reader
// and a tail pointer moved only by the writer, so no locks are required.
// Writer- and reader-owned fields live on separate cache lines; each side
// additionally caches the other side's index to avoid re-fetching the remote
// cache line on every operation.
//
// The queue is a standard-layout object constructed over caller-provided
// memory (heap or a shared-memory arena), so the exact same layout works
// across threads and across processes.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>

#include "common/cacheline.hpp"
#include "common/check.hpp"

namespace ci::qclt {

// Number of usable slots per queue, as in the paper.
inline constexpr std::uint32_t kDefaultSlots = 7;

class SpscQueue {
 public:
  // Bytes needed to host a queue with `capacity` usable slots.
  static std::size_t bytes_required(std::uint32_t capacity) {
    return sizeof(SpscQueue) + static_cast<std::size_t>(capacity) * kSlotSize;
  }

  // Constructs a queue in `mem` (which must be at least bytes_required() and
  // kCacheLineSize-aligned). The queue does not own the memory.
  static SpscQueue* init(void* mem, std::uint32_t capacity) {
    CI_CHECK(capacity > 0);
    CI_CHECK(reinterpret_cast<std::uintptr_t>(mem) % kCacheLineSize == 0);
    return new (mem) SpscQueue(capacity);
  }

  std::uint32_t capacity() const { return capacity_; }

  // ---- Writer side (exactly one thread/process) ----

  // Returns a pointer to the next free 128-byte slot, or nullptr if the
  // queue is full. The slot becomes visible to the reader only after
  // commit_write().
  void* try_acquire_slot() {
    const std::uint32_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ >= capacity_) return nullptr;
    }
    return slot_at(t % capacity_);
  }

  void commit_write() {
    const std::uint32_t t = tail_.load(std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
  }

  // Convenience: copy `len` (<= kSlotSize) bytes into the next slot.
  bool try_write(const void* data, std::size_t len) {
    CI_CHECK(len <= kSlotSize);
    void* slot = try_acquire_slot();
    if (slot == nullptr) return false;
    std::memcpy(slot, data, len);
    commit_write();
    return true;
  }

  // Number of free slots from the writer's point of view (refreshes the
  // cached head so the answer is current).
  std::uint32_t free_slots() {
    const std::uint32_t t = tail_.load(std::memory_order_relaxed);
    cached_head_ = head_.load(std::memory_order_acquire);
    return capacity_ - (t - cached_head_);
  }

  // ---- Reader side (exactly one thread/process) ----

  // Returns the oldest unread slot, or nullptr if the queue is empty. The
  // slot stays valid until release_read().
  const void* try_front() {
    const std::uint32_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return nullptr;
    }
    return slot_at(h % capacity_);
  }

  void release_read() {
    const std::uint32_t h = head_.load(std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  // Convenience: copy the next slot out. Returns false when empty.
  bool try_read(void* out, std::size_t len) {
    CI_CHECK(len <= kSlotSize);
    const void* slot = try_front();
    if (slot == nullptr) return false;
    std::memcpy(out, slot, len);
    release_read();
    return true;
  }

  // Number of readable slots from the reader's point of view.
  std::uint32_t readable_slots() {
    const std::uint32_t h = head_.load(std::memory_order_relaxed);
    cached_tail_ = tail_.load(std::memory_order_acquire);
    return cached_tail_ - h;
  }

  // ---- Either side (approximate when used concurrently) ----
  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

 private:
  explicit SpscQueue(std::uint32_t capacity) : capacity_(capacity) {}

  void* slot_at(std::uint32_t i) {
    return slots_ + static_cast<std::size_t>(i) * kSlotSize;
  }
  const void* slot_at(std::uint32_t i) const {
    return slots_ + static_cast<std::size_t>(i) * kSlotSize;
  }

  // Writer-owned cache line.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> tail_{0};
  std::uint32_t cached_head_ = 0;

  // Reader-owned cache line.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> head_{0};
  std::uint32_t cached_tail_ = 0;

  // Shared, read-only after init.
  alignas(kCacheLineSize) const std::uint32_t capacity_;

  // Slot storage begins at the next cache line (flexible tail).
  alignas(kSlotSize) unsigned char slots_[];
};

static_assert(std::is_standard_layout_v<SpscQueue>);

}  // namespace ci::qclt
