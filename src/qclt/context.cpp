#include "qclt/context.hpp"

#include <cstdint>

#include "common/check.hpp"

namespace ci::qclt {

#if CI_QCLT_UCONTEXT

namespace {

void entry_thunk(unsigned hi, unsigned lo, unsigned fhi, unsigned flo) {
  auto arg = reinterpret_cast<void*>((static_cast<std::uintptr_t>(hi) << 32) | lo);
  auto entry = reinterpret_cast<CtxEntryFn>((static_cast<std::uintptr_t>(fhi) << 32) | flo);
  entry(arg);
  CI_CHECK_MSG(false, "task entry returned");
}

}  // namespace

void ctx_create(ExecContext& ctx, void* stack_base, std::size_t stack_size, CtxEntryFn entry,
                void* arg) {
  CI_CHECK(getcontext(&ctx.uc) == 0);
  ctx.uc.uc_stack.ss_sp = stack_base;
  ctx.uc.uc_stack.ss_size = stack_size;
  ctx.uc.uc_link = nullptr;
  const auto a = reinterpret_cast<std::uintptr_t>(arg);
  const auto f = reinterpret_cast<std::uintptr_t>(entry);
  makecontext(&ctx.uc, reinterpret_cast<void (*)()>(entry_thunk), 4,
              static_cast<unsigned>(a >> 32), static_cast<unsigned>(a & 0xffffffffu),
              static_cast<unsigned>(f >> 32), static_cast<unsigned>(f & 0xffffffffu));
}

void ctx_switch(ExecContext& from, ExecContext& to) {
  CI_CHECK(swapcontext(&from.uc, &to.uc) == 0);
}

#else  // x86-64 assembly backend

extern "C" {
void ci_qclt_ctx_switch(void** save_sp, void* restore_sp);
void ci_qclt_ctx_entry();
}

void ctx_create(ExecContext& ctx, void* stack_base, std::size_t stack_size, CtxEntryFn entry,
                void* arg) {
  auto base = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  base &= ~static_cast<std::uintptr_t>(15);  // 16-align the stack top
  auto* sp = reinterpret_cast<std::uint64_t*>(base);
  // Stack as ci_qclt_ctx_switch expects it (top to bottom): scratch slot,
  // return address, then rbp/rbx/r12/r13/r14/r15 in pop order.
  *--sp = 0;                                              // alignment scratch
  *--sp = reinterpret_cast<std::uint64_t>(&ci_qclt_ctx_entry);  // 'return' target
  *--sp = 0;                                              // rbp
  *--sp = reinterpret_cast<std::uint64_t>(entry);         // rbx -> entry fn
  *--sp = reinterpret_cast<std::uint64_t>(arg);           // r12 -> argument
  *--sp = 0;                                              // r13
  *--sp = 0;                                              // r14
  *--sp = 0;                                              // r15
  ctx.sp = sp;
}

void ctx_switch(ExecContext& from, ExecContext& to) {
  ci_qclt_ctx_switch(&from.sp, to.sp);
}

#endif

}  // namespace ci::qclt
