// Memory arena backing the message queues.
//
// The paper creates the communication channels in memory obtained from
// shm_open (§6.1) so that separate processes can map them. This arena
// supports both that mode and an anonymous-mapping mode for the common
// threads-in-one-process deployment; queue layout is identical in both.
#pragma once

#include <cstddef>
#include <string>

namespace ci::qclt {

class ShmArena {
 public:
  enum class Backing { kAnonymous, kSharedMemory };

  // Creates an arena of `bytes` bytes. For kSharedMemory a unique
  // /dev/shm object is created (and unlinked on destruction).
  ShmArena(std::size_t bytes, Backing backing);
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  // Bump allocation; never freed individually. Aborts when exhausted
  // (arena sizing is a deployment decision, not a runtime condition).
  void* allocate(std::size_t bytes, std::size_t alignment);

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  Backing backing() const { return backing_; }
  const std::string& shm_name() const { return shm_name_; }

 private:
  void* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  Backing backing_;
  std::string shm_name_;
  int fd_ = -1;
};

}  // namespace ci::qclt
