#include "qclt/scheduler.hpp"

#include <thread>
#include <utility>

#include "common/check.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ci::qclt {

namespace {

thread_local Scheduler* tls_scheduler = nullptr;

void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

}  // namespace

Task::Task(std::function<void()> fn, std::size_t stack_size, std::string name)
    : fn_(std::move(fn)),
      stack_(new unsigned char[stack_size]),
      stack_size_(stack_size),
      name_(std::move(name)) {}

Scheduler::Scheduler(std::size_t default_stack_size) : default_stack_size_(default_stack_size) {}

Scheduler::~Scheduler() = default;

Scheduler* Scheduler::this_thread() { return tls_scheduler; }

Task* Scheduler::spawn(std::function<void()> fn, std::string name) {
  auto task = std::unique_ptr<Task>(new Task(std::move(fn), default_stack_size_, std::move(name)));
  Task* t = task.get();
  t->sched_ = this;
  ctx_create(t->ctx_, t->stack_.get(), t->stack_size_, &Scheduler::task_trampoline, t);
  tasks_.push_back(std::move(task));
  ready_.push_back(t);
  live_tasks_++;
  return t;
}

void Scheduler::task_trampoline(void* self) {
  auto* t = static_cast<Task*>(self);
  t->fn_();
  t->state_ = Task::State::kDone;
  t->sched_->live_tasks_--;
  t->sched_->back_to_scheduler();
  CI_CHECK_MSG(false, "resumed a finished task");
}

void Scheduler::switch_to(Task* t) {
  current_ = t;
  t->state_ = Task::State::kRunning;
  ctx_switch(main_ctx_, t->ctx_);
  current_ = nullptr;
}

void Scheduler::back_to_scheduler() {
  Task* t = current_;
  ctx_switch(t->ctx_, main_ctx_);
}

void Scheduler::run() {
  CI_CHECK_MSG(tls_scheduler == nullptr, "nested Scheduler::run on one thread");
  tls_scheduler = this;
  // Busy-poll while work flows (the paper's runtime owns its core), but
  // give the OS thread up after a streak of slices in which no waiter made
  // progress. On a dedicated core the yield returns immediately; on an
  // oversubscribed machine (fewer cores than nodes) it is what lets the
  // peer holding the protocol's next message run at all — without it every
  // idle node burns full timeslices on empty ticks and a single agreement
  // round takes tens of scheduler quanta.
  int idle_streak = 0;
  constexpr int kIdleSpinSlices = 64;
  while (live_tasks_ > 0) {
    bool progress = false;
    if (ready_.empty()) {
      if (!poll_waiters()) {
        cpu_relax();
        if (++idle_streak >= kIdleSpinSlices) {
          idle_streak = 0;
          std::this_thread::yield();
        }
        continue;
      }
      progress = true;
    }
    Task* t = ready_.front();
    ready_.pop_front();
    switch_to(t);
    switch (t->state_) {
      case Task::State::kRunning:  // plain yield
        t->state_ = Task::State::kReady;
        ready_.push_back(t);
        break;
      case Task::State::kWaiting:
        waiting_.push_back(t);
        break;
      case Task::State::kDone:
        progress = true;
        break;
      case Task::State::kReady:
        CI_CHECK_MSG(false, "task returned in Ready state");
    }
    // Poll between task slices as well so that waiters are not starved by a
    // long ready queue.
    if (poll_waiters()) progress = true;
    if (progress) {
      idle_streak = 0;
    } else if (++idle_streak >= kIdleSpinSlices) {
      idle_streak = 0;
      std::this_thread::yield();
    }
  }
  tls_scheduler = nullptr;
}

void Scheduler::yield() {
  CI_CHECK_MSG(current_ != nullptr, "yield outside a task");
  back_to_scheduler();
}

bool Scheduler::wait_readable(SpscQueue* q) {
  CI_CHECK_MSG(current_ != nullptr, "wait outside a task");
  if (q->readable_slots() > 0) return true;
  if (stopping_) return false;
  current_->wait_kind_ = Task::WaitKind::kReadable;
  current_->wait_queue_ = q;
  current_->state_ = Task::State::kWaiting;
  back_to_scheduler();
  return q->readable_slots() > 0;  // false => woken by stop
}

bool Scheduler::wait_writable(SpscQueue* q) {
  CI_CHECK_MSG(current_ != nullptr, "wait outside a task");
  if (q->free_slots() > 0) return true;
  if (stopping_) return false;
  current_->wait_kind_ = Task::WaitKind::kWritable;
  current_->wait_queue_ = q;
  current_->state_ = Task::State::kWaiting;
  back_to_scheduler();
  return q->free_slots() > 0;
}

bool Scheduler::poll_waiters() {
  if (waiting_.empty()) return false;
  bool any = false;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    Task* t = waiting_[i];
    bool ready = stopping_;
    if (!ready) {
      switch (t->wait_kind_) {
        case Task::WaitKind::kReadable:
          ready = t->wait_queue_->readable_slots() > 0;
          break;
        case Task::WaitKind::kWritable:
          ready = t->wait_queue_->free_slots() > 0;
          break;
        case Task::WaitKind::kNone:
          ready = true;
          break;
      }
    }
    if (ready) {
      t->wait_kind_ = Task::WaitKind::kNone;
      t->wait_queue_ = nullptr;
      t->state_ = Task::State::kReady;
      ready_.push_back(t);
      any = true;
    } else {
      waiting_[kept++] = t;
    }
  }
  waiting_.resize(kept);
  return any;
}

}  // namespace ci::qclt
