// Cooperative user-level task scheduler — the libtask-style core of
// QC-libtask (paper §6.2).
//
// One Scheduler runs per OS thread (one per core in the runtime). Tasks are
// spawned for each connection; a task that reads from an empty queue (or
// writes to a full one) blocks, its wait condition joins the scheduler's
// waiting list, and the scheduler polls all waiting conditions whenever it
// runs out of ready tasks — "the scheduler checks for all waiting reads and,
// upon receiving a message, loads the context of the corresponding reading
// thread".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qclt/context.hpp"
#include "qclt/spsc_queue.hpp"

namespace ci::qclt {

class Scheduler;

class Task {
 public:
  enum class State : std::uint8_t { kReady, kRunning, kWaiting, kDone };

  State state() const { return state_; }
  const char* name() const { return name_.c_str(); }

 private:
  friend class Scheduler;

  enum class WaitKind : std::uint8_t { kNone, kReadable, kWritable };

  Task(std::function<void()> fn, std::size_t stack_size, std::string name);

  std::function<void()> fn_;
  std::unique_ptr<unsigned char[]> stack_;
  std::size_t stack_size_;
  ExecContext ctx_{};
  State state_ = State::kReady;
  WaitKind wait_kind_ = WaitKind::kNone;
  SpscQueue* wait_queue_ = nullptr;
  std::string name_;
  Scheduler* sched_ = nullptr;
};

class Scheduler {
 public:
  explicit Scheduler(std::size_t default_stack_size = 32 * 1024);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a task. May be called before run() or from inside a task.
  Task* spawn(std::function<void()> fn, std::string name = "task");

  // Runs until every task has finished or request_stop() was called and all
  // tasks have observed it and returned.
  void run();

  // Asks tasks to finish: every blocked wait returns false ("stopped") and
  // stopping() turns true. Callable from inside a task or from another
  // thread (the flag is read in the scheduler loop).
  void request_stop() { stopping_.store(true, std::memory_order_relaxed); }
  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

  // ---- Called from inside tasks ----

  // Gives up the core; the task stays ready and runs again after others.
  void yield();

  // Blocks the current task until `q` has a readable slot. Returns false if
  // woken by request_stop() instead.
  bool wait_readable(SpscQueue* q);

  // Blocks the current task until `q` has a free slot. Returns false if
  // woken by request_stop() instead.
  bool wait_writable(SpscQueue* q);

  // The task currently executing on this scheduler (nullptr from outside).
  Task* current() const { return current_; }

  std::size_t live_tasks() const { return live_tasks_; }

  // Scheduler driving the calling OS thread, if any.
  static Scheduler* this_thread();

 private:
  friend class Task;

  static void task_trampoline(void* self);
  void switch_to(Task* t);
  void back_to_scheduler();
  // Moves waiters whose condition holds (or everything, when stopping) to
  // the ready queue. Returns true if any task became ready.
  bool poll_waiters();

  std::deque<Task*> ready_;
  std::vector<Task*> waiting_;
  std::vector<std::unique_ptr<Task>> tasks_;
  ExecContext main_ctx_{};
  Task* current_ = nullptr;
  std::size_t live_tasks_ = 0;
  std::size_t default_stack_size_;
  std::atomic<bool> stopping_{false};
};

}  // namespace ci::qclt
