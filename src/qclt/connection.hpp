// Framed, message-oriented view over a pair of SPSC slot queues.
//
// Fast-path protocol messages fit a single 128-byte slot; rare large
// messages (1Paxos AcceptorChange carrying uncommitted proposals) are split
// into consecutive fragments. Fragments of one message are contiguous in the
// queue because each queue has exactly one writer.
//
// Two APIs are offered, mirroring QC-libtask:
//   * blocking  — read()/write() yield the current user-level task until
//     progress is possible (the paper's fdread/fdwrite style);
//   * polling   — try_read()/try_write() for event-loop users.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "qclt/scheduler.hpp"
#include "qclt/spsc_queue.hpp"

namespace ci::qclt {

namespace wire {

struct FragmentHeader {
  std::uint32_t msg_len;     // total message length in bytes
  std::uint16_t frag_index;  // 0-based fragment number
  std::uint16_t reserved;
};
static_assert(sizeof(FragmentHeader) == 8);

inline constexpr std::size_t kFragPayload = kSlotSize - sizeof(FragmentHeader);

inline std::uint32_t fragments_for(std::uint32_t len) {
  if (len == 0) return 1;
  return static_cast<std::uint32_t>((len + kFragPayload - 1) / kFragPayload);
}

}  // namespace wire

class Connection {
 public:
  // `out` is written by this side, `in` is read by this side. `sched` may be
  // null when only the try_* API is used.
  Connection(SpscQueue* out, SpscQueue* in, Scheduler* sched = nullptr)
      : out_(out), in_(in), sched_(sched) {}

  SpscQueue* out_queue() { return out_; }
  SpscQueue* in_queue() { return in_; }

  // Largest message this connection can carry (all fragments must fit the
  // queue simultaneously for the all-or-nothing try_write).
  std::size_t max_message_bytes() const { return out_->capacity() * wire::kFragPayload; }

  // ---- Polling API ----

  // Writes the whole message or nothing; false when the queue lacks space.
  bool try_write(const void* data, std::uint32_t len) {
    const std::uint32_t frags = wire::fragments_for(len);
    CI_CHECK_MSG(frags <= out_->capacity(), "message exceeds connection capacity");
    if (out_->free_slots() < frags) return false;
    write_fragments(data, len, frags);
    return true;
  }

  // Appends a complete message to `buf` if one is fully available; returns
  // its length or -1. Partial fragment sequences are buffered internally, so
  // a false return never loses data.
  std::int32_t try_read(void* buf, std::size_t cap) {
    while (true) {
      const void* slot = in_->try_front();
      if (slot == nullptr) return -1;
      const auto* hdr = static_cast<const wire::FragmentHeader*>(slot);
      const auto* payload = static_cast<const unsigned char*>(slot) + sizeof(wire::FragmentHeader);
      const std::uint32_t len = hdr->msg_len;
      const std::uint32_t frags = wire::fragments_for(len);
      if (frags == 1) {
        CI_CHECK_MSG(hdr->frag_index == 0, "fragment stream out of sync");
        CI_CHECK_MSG(len <= cap, "read buffer too small");
        std::memcpy(buf, payload, len);
        in_->release_read();
        return static_cast<std::int32_t>(len);
      }
      // Multi-fragment path.
      CI_CHECK_MSG(hdr->frag_index == reassembly_next_, "fragment stream out of sync");
      if (hdr->frag_index == 0) reassembly_.clear();
      const std::size_t off = reassembly_.size();
      const std::size_t chunk =
          static_cast<std::uint32_t>(hdr->frag_index) + 1 == frags ? len - off : wire::kFragPayload;
      reassembly_.insert(reassembly_.end(), payload, payload + chunk);
      in_->release_read();
      reassembly_next_++;
      if (reassembly_next_ == frags) {
        reassembly_next_ = 0;
        CI_CHECK_MSG(len <= cap, "read buffer too small");
        std::memcpy(buf, reassembly_.data(), len);
        reassembly_.clear();
        return static_cast<std::int32_t>(len);
      }
      // Continue looping: more fragments may already be queued.
    }
  }

  // ---- Blocking API (must run inside a task of `sched`) ----

  // Returns false only when the scheduler is stopping.
  bool write(const void* data, std::uint32_t len) {
    CI_CHECK(sched_ != nullptr);
    const std::uint32_t frags = wire::fragments_for(len);
    // Blocking mode may stream messages larger than the queue: fragments are
    // written as slots free up (the reader tolerates partial sequences), so
    // wait per-fragment rather than for `frags` slots at once.
    const auto* src = static_cast<const unsigned char*>(data);
    std::uint32_t remaining = len;
    for (std::uint32_t i = 0; i < frags; ++i) {
      void* slot;
      while ((slot = out_->try_acquire_slot()) == nullptr) {
        if (!sched_->wait_writable(out_) && out_->free_slots() == 0) return false;
      }
      auto* hdr = static_cast<wire::FragmentHeader*>(slot);
      hdr->msg_len = len;
      hdr->frag_index = static_cast<std::uint16_t>(i);
      hdr->reserved = 0;
      const std::size_t chunk =
          remaining < wire::kFragPayload ? remaining : wire::kFragPayload;
      std::memcpy(static_cast<unsigned char*>(slot) + sizeof(wire::FragmentHeader), src, chunk);
      out_->commit_write();
      src += chunk;
      remaining -= static_cast<std::uint32_t>(chunk);
    }
    return true;
  }

  // Returns message length, or -1 when the scheduler is stopping.
  std::int32_t read(void* buf, std::size_t cap) {
    CI_CHECK(sched_ != nullptr);
    while (true) {
      const std::int32_t n = try_read(buf, cap);
      if (n >= 0) return n;
      if (!sched_->wait_readable(in_) && in_->readable_slots() == 0) return -1;
    }
  }

 private:
  void write_fragments(const void* data, std::uint32_t len, std::uint32_t frags) {
    const auto* src = static_cast<const unsigned char*>(data);
    std::uint32_t remaining = len;
    for (std::uint32_t i = 0; i < frags; ++i) {
      void* slot = out_->try_acquire_slot();
      CI_CHECK(slot != nullptr);  // caller reserved space
      auto* hdr = static_cast<wire::FragmentHeader*>(slot);
      hdr->msg_len = len;
      hdr->frag_index = static_cast<std::uint16_t>(i);
      hdr->reserved = 0;
      const std::size_t chunk =
          remaining < wire::kFragPayload ? remaining : wire::kFragPayload;
      std::memcpy(static_cast<unsigned char*>(slot) + sizeof(wire::FragmentHeader), src, chunk);
      out_->commit_write();
      src += chunk;
      remaining -= static_cast<std::uint32_t>(chunk);
    }
  }

  SpscQueue* out_;
  SpscQueue* in_;
  Scheduler* sched_;
  std::vector<unsigned char> reassembly_;
  std::uint32_t reassembly_next_ = 0;
};

}  // namespace ci::qclt
