#include "sim/sim_net.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "consensus/wire_codec.hpp"

namespace ci::sim {

SimNet::SimNet(const LatencyModel& model, std::uint64_t seed, Nanos tick_period)
    : model_(model), rng_(seed), tick_period_(tick_period) {
  CI_CHECK(tick_period_ > 0);
}

SimNet::~SimNet() {
  // Undelivered self-sends own their pooled command bodies (the sender's
  // custody moved into the event on send); return them to the pool.
  // Cross-node events hold only encoded frames — their bodies went back to
  // the pool at encode time.
  for (Event& e : event_queue_) {
    if (e.kind == Event::Kind::kMessage && e.msg != nullptr) wire::release_body(*e.msg);
  }
}

std::unique_ptr<unsigned char[]> SimNet::acquire_frame() {
  if (!frame_pool_.empty()) {
    auto buf = std::move(frame_pool_.back());
    frame_pool_.pop_back();
    return buf;
  }
  return std::make_unique<unsigned char[]>(wire::kMaxFrameBytes);
}

void SimNet::recycle_frame(std::unique_ptr<unsigned char[]> frame) {
  frame_pool_.push_back(std::move(frame));
}

void SimNet::add_node(Engine* engine) {
  CI_CHECK(!started_);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<NodeCtx>(this, id, engine));
}

void SimNet::slow_node(NodeId node, Nanos from, Nanos to, double factor) {
  CI_CHECK(factor >= 1.0);
  nodes_[static_cast<std::size_t>(node)]->slow_windows.emplace_back(from, to, factor);
}

void SimNet::heal_node(NodeId node, Nanos t) {
  for (auto& [from, to, factor] : nodes_[static_cast<std::size_t>(node)]->slow_windows) {
    if (from <= t && to > t) to = t;  // only windows open at t; future ones stand
  }
}

void SimNet::stretch_clock(NodeId node, double rate) {
  CI_CHECK(rate > 0.0);
  NodeCtx& n = *nodes_[static_cast<std::size_t>(node)];
  // Re-anchor at the current virtual time so the perceived clock is
  // continuous across the rate change (it jumps in SLOPE, not in value).
  const Nanos seen_now =
      n.skew_anchor_seen +
      static_cast<Nanos>(static_cast<double>(now_ - n.skew_anchor_real) * n.skew_rate);
  n.skew_anchor_real = now_;
  n.skew_anchor_seen = seen_now;
  n.skew_rate = rate;
}

void SimNet::schedule_call(Nanos t, NodeId node, std::function<void()> fn) {
  Event e;
  e.time = t;
  e.seq = seq_++;
  e.kind = Event::Kind::kCall;
  e.node = node;
  e.call = std::move(fn);
  push_event(std::move(e));
}

double SimNet::speed_factor(const NodeCtx& n, Nanos t) const {
  double f = 1.0;
  for (const auto& [from, to, factor] : n.slow_windows) {
    if (t >= from && t < to) f = std::max(f, factor);
  }
  return f;
}

void SimNet::push_event(Event e) {
  event_queue_.push_back(std::move(e));
  std::push_heap(event_queue_.begin(), event_queue_.end(), EventAfter{});
}

std::uint64_t SimNet::total_messages() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->sent;
  return sum;
}

std::uint64_t SimNet::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->sent_bytes;
  return sum;
}

void SimNet::send_from(NodeCtx& src, NodeId dst, const Message& m) {
  CI_CHECK(dst >= 0 && dst < static_cast<NodeId>(nodes_.size()));
  Event e;
  e.seq = seq_++;
  e.kind = Event::Kind::kMessage;
  e.node = dst;
  if (dst == src.id_) {
    // Local delivery between collapsed roles: no node boundary is crossed,
    // nothing is serialized, no transmission cost is charged (Fig. 3 counts
    // only crossing messages). Delivered once the current handler finishes.
    e.msg = std::make_unique<Message>(m);
    e.msg->src = src.id_;
    e.msg->dst = dst;
    e.time = src.busy_until;
    push_event(std::move(e));
    return;
  }
  const double f = speed_factor(src, src.busy_until);
  const std::size_t frame_bytes = wire::frame_size(m);
  // trans_send is the per-message cost; per_byte_cost (off by default) adds
  // the bandwidth term from the frame size the codec reports. Both are CPU
  // work on the sending core, so both scale with its slowdown factor.
  src.busy_until += static_cast<Nanos>(
      static_cast<double>(model_.trans_send + model_.per_byte_cost(frame_bytes)) * f);
  src.logical_now = src.busy_until;
  src.sent++;
  src.sent_bytes += frame_bytes;
  if (model_.drop_probability > 0 && rng_.next_bool(model_.drop_probability)) {
    dropped_++;
    wire::release_body(m);  // send consumed the body; the frame dies unsent
    return;
  }
  // Encode at send: the event carries the wire frame, with src/dst stamped
  // mid-encode — the in-memory Message and its pooled run are released here,
  // and each field byte moved exactly once.
  e.frame = acquire_frame();
  wire::BufferWriter w(e.frame.get());
  const std::uint32_t written = wire::encode_into(m, w, src.id_, dst);
  CI_CHECK(written == frame_bytes);
  wire::release_body(m);
  e.frame_len = written;
  const Nanos jitter =
      model_.prop_jitter > 0 ? static_cast<Nanos>(rng_.next_below(
                                   static_cast<std::uint64_t>(model_.prop_jitter)))
                             : 0;
  e.time = src.busy_until + model_.prop + jitter;
  push_event(std::move(e));
}

void SimNet::process(Event& e) {
  NodeCtx& n = *nodes_[static_cast<std::size_t>(e.node)];
  switch (e.kind) {
    case Event::Kind::kMessage: {
      const Nanos t0 = std::max(e.time, n.busy_until);
      const double f = speed_factor(n, t0);
      n.busy_until = t0 + static_cast<Nanos>(
                              static_cast<double>(model_.trans_recv + model_.handler_cost) * f);
      n.logical_now = n.busy_until;
      if (e.frame != nullptr) {
        // Cross-node: decode the wire frame the sender encoded (allocating a
        // fresh pooled body if the frame carries a command run), deliver,
        // then recycle both the body and the buffer.
        Message m;
        CI_CHECK_MSG(wire::try_decode(e.frame.get(), e.frame_len, &m),
                     "malformed frame in the sim network");
        n.engine_->on_message(n, m);
        wire::release_body(m);
        recycle_frame(std::move(e.frame));
      } else {
        n.engine_->on_message(n, *e.msg);
        wire::release_body(*e.msg);  // delivery consumed the event's custody
      }
      break;
    }
    case Event::Kind::kTick: {
      // Ticks wait for the CPU like any other work but cost ~nothing
      // themselves; their sends are charged normally.
      const Nanos t0 = std::max(e.time, n.busy_until);
      n.logical_now = t0;
      n.busy_until = std::max(n.busy_until, t0);
      n.engine_->tick(n);
      Event next;
      next.time = e.time + tick_period_;
      next.seq = seq_++;
      next.kind = Event::Kind::kTick;
      next.node = e.node;
      push_event(std::move(next));
      break;
    }
    case Event::Kind::kCall: {
      n.logical_now = std::max(e.time, n.logical_now);
      e.call();
      break;
    }
  }
}

void SimNet::run_until(Nanos until) {
  if (!started_) {
    started_ = true;
    for (auto& n : nodes_) {
      n->logical_now = 0;
      n->engine_->start(*n);
    }
    // Stagger first ticks so nodes do not act in lockstep.
    const auto count = static_cast<Nanos>(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Event t;
      t.time = tick_period_ * (static_cast<Nanos>(i) + 1) / std::max<Nanos>(count, 1);
      t.seq = seq_++;
      t.kind = Event::Kind::kTick;
      t.node = static_cast<NodeId>(i);
      push_event(std::move(t));
    }
  }
  while (!event_queue_.empty() && event_queue_.front().time <= until) {
    std::pop_heap(event_queue_.begin(), event_queue_.end(), EventAfter{});
    Event e = std::move(event_queue_.back());
    event_queue_.pop_back();
    now_ = e.time;
    process(e);
  }
  now_ = std::max(now_, until);
}

}  // namespace ci::sim
