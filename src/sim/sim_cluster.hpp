// The sim backend adapter: plugs a core::ShardedDeployment into the
// deterministic discrete-event SimNet and drives virtual time.
//
// All wiring (engines, state machines, clients, joint co-location, the
// group demux layer) and all agreement checking live in the shared
// deployment layers (core/deployment, core/sharded_deployment); this class
// only owns the transport, translates the FaultPlan into SimNet
// slow-windows/scheduled calls, and implements the run loop.
//
// Constructing from a plain ClusterSpec runs the single-group (groups=1)
// layout, which is bit-identical to the pre-sharding behavior; the
// single-group accessors below then address group 0.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "core/cluster_spec.hpp"
#include "core/sharded_deployment.hpp"
#include "core/run_result.hpp"
#include "sim/sim_net.hpp"

namespace ci::sim {

using consensus::ClientEngine;
using consensus::GroupId;
using core::ClusterSpec;
using core::Protocol;
using core::protocol_name;
using core::ShardSpec;

class SimCluster {
 public:
  explicit SimCluster(const ClusterSpec& spec);
  explicit SimCluster(const ShardSpec& shard);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  SimNet& net() { return *net_; }
  core::ShardedDeployment& sharded() { return dep_; }
  std::int32_t num_groups() const { return dep_.num_groups(); }
  // Group 0's deployment — the whole deployment when unsharded.
  core::Deployment& deployment() { return dep_.group(0); }

  // Ad-hoc fault injection (tests schedule these relative to now; specs can
  // instead carry a FaultPlan, applied at construction). `node` is a
  // transport node id: under sharding, map through
  // sharded().global_node(g, local).
  void slow_node(consensus::NodeId node, Nanos from, Nanos to, double factor);
  // 1Paxos-only: silent acceptor reboot of group 0's replica `node` at t.
  void reset_acceptor_state_at(consensus::NodeId node, Nanos t);

  // Runs until `deadline` or until every client of every group finished its
  // request quota (checked at millisecond granularity), plus nothing further.
  void run(Nanos deadline);

  // Unified result over the whole run so far, merged across groups;
  // `duration` is the window the caller wants throughput computed over.
  core::RunResult result(Nanos duration) const;
  core::RunResult group_result(GroupId g, Nanos duration) const;

  // ---- Convenience forwards; aggregates span all groups, engine/client
  // accessors address group 0 (tests predating sharding use these) ----
  std::uint64_t total_committed() const { return dep_.total_committed(); }
  std::uint64_t total_issued() const { return dep_.total_issued(); }
  Histogram merged_latency() const { return dep_.merged_latency(); }
  double throughput_ops_per_sec(Nanos duration) const;
  const ClientEngine& client(std::int32_t i) const { return *dep_.group(0).client(i); }
  ClientEngine& mutable_client(std::int32_t i) { return *dep_.group(0).client(i); }
  std::int32_t client_count() const { return dep_.group(0).client_count(); }

  bool consistent() const { return dep_.consistent(); }
  std::uint64_t total_deliveries() const { return dep_.deliveries(); }
  // Instance -> decided batch (one command per batch unless batching is on).
  const std::map<consensus::Instance, std::vector<consensus::Command>>& decided() const {
    return dep_.group(0).recorder().decided();
  }
  const std::vector<std::vector<consensus::Command>>& delivered_by_node() const {
    return dep_.group(0).recorder().delivered_by_node();
  }

  consensus::Engine* replica_engine(consensus::NodeId r) { return dep_.group(0).replica_engine(r); }
  core::OnePaxosEngine* one_paxos(consensus::NodeId r) { return dep_.group(0).one_paxos(r); }
  consensus::MultiPaxosEngine* multi_paxos(consensus::NodeId r) { return dep_.group(0).multi_paxos(r); }
  consensus::TwoPcEngine* two_pc(consensus::NodeId r) { return dep_.group(0).two_pc(r); }

 private:
  ShardSpec shard_;
  core::ShardedDeployment dep_;
  std::unique_ptr<SimNet> net_;
};

}  // namespace ci::sim
