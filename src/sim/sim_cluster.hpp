// Assembles a full simulated deployment: R replicas running one of the four
// protocols, C closed-loop clients (optionally co-located with the replicas
// — the paper's "Joint" deployments, §7.4), a seeded fault schedule, and the
// agreement-invariant recorder used by the property tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/timeseries.hpp"
#include "consensus/basic_paxos.hpp"
#include "consensus/client.hpp"
#include "consensus/multi_paxos.hpp"
#include "consensus/two_pc.hpp"
#include "core/one_paxos.hpp"
#include "core/protocol.hpp"
#include "sim/sim_net.hpp"

namespace ci::sim {

using consensus::ClientConfig;
using consensus::ClientEngine;
using consensus::EngineConfig;
using core::Protocol;
using core::protocol_name;

struct ClusterOptions {
  Protocol protocol = Protocol::kOnePaxos;
  std::int32_t num_replicas = 3;
  std::int32_t num_clients = 1;
  bool joint = false;  // clients co-located with replicas (§7.4); then
                       // num_clients is ignored and every replica hosts one
  bool joint_local_reads = false;  // 2PC-Joint local read optimization (§7.5)

  LatencyModel model = LatencyModel::many_core();
  std::uint64_t seed = 1;
  Nanos tick_period = 20 * kMicrosecond;

  // Engine knobs (copied into every engine config).
  Nanos retry_timeout = 200 * kMicrosecond;
  Nanos fd_timeout = 1 * kMillisecond;
  Nanos heartbeat_period = 200 * kMicrosecond;
  // Outstanding-instance window. High-latency (LAN) sweeps need a deep
  // pipeline to fill the bandwidth-delay product; values above
  // kMaxProposalsPerMsg are only safe in fault-free runs (a reconfiguration
  // could not hand over the full uncommitted window and would abort).
  std::int32_t pipeline_window = consensus::kMaxProposalsPerMsg / 2;

  // Client workload.
  Nanos request_timeout = 2 * kMillisecond;
  Nanos think_time = 0;
  double read_fraction = 0.0;
  std::uint64_t requests_per_client = 0;  // 0 = until deadline

  // Multi-Paxos acceptor-set ablation (DESIGN.md A2).
  std::int32_t acceptor_count = -1;
};

class SimCluster {
 public:
  explicit SimCluster(const ClusterOptions& opts);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  SimNet& net() { return *net_; }

  // Fault injection (forwarded to SimNet; replica ids only).
  void slow_node(consensus::NodeId node, Nanos from, Nanos to, double factor);
  // 1Paxos-only: silent acceptor reboot at time t.
  void reset_acceptor_state_at(consensus::NodeId node, Nanos t);

  // Runs until `deadline` or until every client finished its request quota
  // (checked at millisecond granularity), plus nothing further.
  void run(Nanos deadline);

  // ---- Results ----
  std::uint64_t total_committed() const;
  std::uint64_t total_issued() const;
  Histogram merged_latency() const;
  double throughput_ops_per_sec(Nanos duration) const;
  const ClientEngine& client(std::int32_t i) const { return *clients_[static_cast<std::size_t>(i)]; }
  std::int32_t client_count() const { return static_cast<std::int32_t>(clients_.size()); }
  ClientEngine& mutable_client(std::int32_t i) { return *clients_[static_cast<std::size_t>(i)]; }

  // Cross-node agreement record: instance -> first value delivered; the
  // checker verifies every later delivery matches (consistency) and that
  // every delivered command was issued by a client (non-triviality).
  bool consistent() const { return consistent_; }
  std::uint64_t total_deliveries() const { return deliveries_; }
  const std::map<consensus::Instance, consensus::Command>& decided() const { return decided_; }

  // Per-replica delivered sequences, for prefix checks.
  const std::vector<std::vector<consensus::Command>>& delivered_by_node() const {
    return delivered_;
  }

  consensus::Engine* replica_engine(consensus::NodeId r) {
    return replicas_[static_cast<std::size_t>(r)].get();
  }
  core::OnePaxosEngine* one_paxos(consensus::NodeId r);
  consensus::MultiPaxosEngine* multi_paxos(consensus::NodeId r);
  consensus::TwoPcEngine* two_pc(consensus::NodeId r);

 private:
  void build();

  ClusterOptions opts_;
  std::unique_ptr<SimNet> net_;
  std::vector<std::unique_ptr<consensus::Engine>> replicas_;       // protocol engines
  std::vector<std::unique_ptr<consensus::MapStateMachine>> sms_;   // one per replica
  std::vector<std::unique_ptr<ClientEngine>> clients_;             // client engines
  std::vector<std::unique_ptr<consensus::Engine>> node_engines_;   // what SimNet sees

  std::map<consensus::Instance, consensus::Command> decided_;
  std::vector<std::vector<consensus::Command>> delivered_;
  bool consistent_ = true;
  std::uint64_t deliveries_ = 0;
};

}  // namespace ci::sim
