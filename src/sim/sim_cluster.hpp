// The sim backend adapter: plugs a core::Deployment into the deterministic
// discrete-event SimNet and drives virtual time.
//
// All wiring (engines, state machines, clients, joint co-location) and all
// agreement checking live in the shared deployment layer (core/deployment);
// this class only owns the transport, translates the FaultPlan into SimNet
// slow-windows/scheduled calls, and implements the run loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "core/cluster_spec.hpp"
#include "core/deployment.hpp"
#include "core/run_result.hpp"
#include "sim/sim_net.hpp"

namespace ci::sim {

using consensus::ClientEngine;
using core::ClusterSpec;
using core::Protocol;
using core::protocol_name;

class SimCluster {
 public:
  explicit SimCluster(const ClusterSpec& spec);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  SimNet& net() { return *net_; }
  core::Deployment& deployment() { return dep_; }

  // Ad-hoc fault injection (tests schedule these relative to now; specs can
  // instead carry a FaultPlan, applied at construction).
  void slow_node(consensus::NodeId node, Nanos from, Nanos to, double factor);
  // 1Paxos-only: silent acceptor reboot at time t.
  void reset_acceptor_state_at(consensus::NodeId node, Nanos t);

  // Runs until `deadline` or until every client finished its request quota
  // (checked at millisecond granularity), plus nothing further.
  void run(Nanos deadline);

  // Unified result over the whole run so far; `duration` is the window the
  // caller wants throughput computed over (usually the measured window).
  core::RunResult result(Nanos duration) const;

  // ---- Convenience forwards (tests address the deployment through these) ----
  std::uint64_t total_committed() const { return dep_.total_committed(); }
  std::uint64_t total_issued() const { return dep_.total_issued(); }
  Histogram merged_latency() const { return dep_.merged_latency(); }
  double throughput_ops_per_sec(Nanos duration) const;
  const ClientEngine& client(std::int32_t i) const { return *dep_.client(i); }
  ClientEngine& mutable_client(std::int32_t i) { return *dep_.client(i); }
  std::int32_t client_count() const { return dep_.client_count(); }

  bool consistent() const { return dep_.recorder().consistent(); }
  std::uint64_t total_deliveries() const { return dep_.recorder().deliveries(); }
  const std::map<consensus::Instance, consensus::Command>& decided() const {
    return dep_.recorder().decided();
  }
  const std::vector<std::vector<consensus::Command>>& delivered_by_node() const {
    return dep_.recorder().delivered_by_node();
  }

  consensus::Engine* replica_engine(consensus::NodeId r) { return dep_.replica_engine(r); }
  core::OnePaxosEngine* one_paxos(consensus::NodeId r) { return dep_.one_paxos(r); }
  consensus::MultiPaxosEngine* multi_paxos(consensus::NodeId r) { return dep_.multi_paxos(r); }
  consensus::TwoPcEngine* two_pc(consensus::NodeId r) { return dep_.two_pc(r); }

 private:
  ClusterSpec spec_;
  core::Deployment dep_;
  std::unique_ptr<SimNet> net_;
};

}  // namespace ci::sim
