#include "sim/sim_cluster.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ci::sim {

using consensus::Command;
using consensus::Context;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::MsgType;
using consensus::NodeId;

SimCluster::SimCluster(const ClusterOptions& opts) : opts_(opts) { build(); }

SimCluster::~SimCluster() = default;

void SimCluster::build() {
  const std::int32_t R = opts_.num_replicas;
  const std::int32_t C = opts_.joint ? R : opts_.num_clients;
  CI_CHECK(R >= 1);

  net_ = std::make_unique<SimNet>(opts_.model, opts_.seed, opts_.tick_period);
  delivered_.resize(static_cast<std::size_t>(R));

  auto base_cfg = [&](NodeId self) {
    EngineConfig cfg;
    cfg.self = self;
    cfg.num_replicas = R;
    cfg.retry_timeout = opts_.retry_timeout;
    cfg.fd_timeout = opts_.fd_timeout;
    cfg.heartbeat_period = opts_.heartbeat_period;
    cfg.pipeline_window = opts_.pipeline_window;
    cfg.seed = opts_.seed;
    return cfg;
  };

  // Replica engines.
  core::ProtocolOptions popts;
  popts.acceptor_count = opts_.acceptor_count;
  for (NodeId r = 0; r < R; ++r) {
    sms_.push_back(std::make_unique<consensus::MapStateMachine>());
    EngineConfig cfg = base_cfg(r);
    cfg.state_machine = sms_.back().get();
    replicas_.push_back(core::make_replica_engine(opts_.protocol, cfg, popts));
  }

  // Client engines.
  for (std::int32_t c = 0; c < C; ++c) {
    const NodeId self = opts_.joint ? c : R + c;
    ClientConfig cc;
    cc.base = base_cfg(self);
    cc.initial_target = 0;  // the paper's clients start at core 0
    cc.request_timeout = opts_.request_timeout;
    cc.think_time = opts_.think_time;
    cc.read_fraction = opts_.read_fraction;
    cc.total_requests = opts_.requests_per_client;
    cc.auto_start = true;
    if (opts_.joint && opts_.joint_local_reads && opts_.protocol == Protocol::kTwoPc) {
      auto* replica = static_cast<consensus::TwoPcEngine*>(replicas_[static_cast<std::size_t>(c)].get());
      auto* sm = sms_[static_cast<std::size_t>(c)].get();
      cc.local_read = [replica, sm](const Command& cmd, std::uint64_t* out) {
        // §7.5: serviceable locally unless the replica sits between the two
        // phases of an ongoing 2PC round.
        if (replica->has_prepared_uncommitted()) return false;
        *out = sm->read(cmd.key);
        return true;
      };
    }
    clients_.push_back(std::make_unique<ClientEngine>(cc));
  }

  // Nodes as SimNet sees them.
  if (opts_.joint) {
    for (NodeId r = 0; r < R; ++r) {
      node_engines_.push_back(std::make_unique<core::JointEngine>(
          replicas_[static_cast<std::size_t>(r)].get(), clients_[static_cast<std::size_t>(r)].get()));
      net_->add_node(node_engines_.back().get());
    }
  } else {
    for (NodeId r = 0; r < R; ++r) net_->add_node(replicas_[static_cast<std::size_t>(r)].get());
    for (std::int32_t c = 0; c < C; ++c) net_->add_node(clients_[static_cast<std::size_t>(c)].get());
  }

  net_->set_deliver_cb([this](NodeId node, Instance in, const Command& cmd) {
    deliveries_++;
    if (node >= 0 && node < static_cast<NodeId>(delivered_.size())) {
      delivered_[static_cast<std::size_t>(node)].push_back(cmd);
    }
    auto [it, inserted] = decided_.emplace(in, cmd);
    if (!inserted && !(it->second == cmd)) consistent_ = false;  // consistency violation
    if (!cmd.is_noop() && cmd.client == consensus::kNoNode) consistent_ = false;
  });
}

void SimCluster::slow_node(NodeId node, Nanos from, Nanos to, double factor) {
  net_->slow_node(node, from, to, factor);
}

void SimCluster::reset_acceptor_state_at(NodeId node, Nanos t) {
  auto* opx = one_paxos(node);
  CI_CHECK(opx != nullptr);
  net_->schedule_call(t, node, [opx] { opx->reset_acceptor_state(); });
}

void SimCluster::run(Nanos deadline) {
  const Nanos step = 1 * kMillisecond;
  Nanos t = std::min(step, deadline);
  while (true) {
    net_->run_until(t);
    if (t >= deadline) return;
    if (opts_.requests_per_client > 0) {
      bool all_done = true;
      for (const auto& c : clients_) {
        if (!c->done()) {
          all_done = false;
          break;
        }
      }
      if (all_done) return;
    }
    t = std::min(t + step, deadline);
  }
}

std::uint64_t SimCluster::total_committed() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->committed();
  return sum;
}

std::uint64_t SimCluster::total_issued() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->issued();
  return sum;
}

Histogram SimCluster::merged_latency() const {
  Histogram h;
  for (const auto& c : clients_) h.merge(c->latency());
  return h;
}

double SimCluster::throughput_ops_per_sec(Nanos duration) const {
  return static_cast<double>(total_committed()) * static_cast<double>(kSecond) /
         static_cast<double>(duration);
}

core::OnePaxosEngine* SimCluster::one_paxos(NodeId r) {
  if (opts_.protocol != Protocol::kOnePaxos) return nullptr;
  return static_cast<core::OnePaxosEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

consensus::MultiPaxosEngine* SimCluster::multi_paxos(NodeId r) {
  if (opts_.protocol != Protocol::kMultiPaxos) return nullptr;
  return static_cast<consensus::MultiPaxosEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

consensus::TwoPcEngine* SimCluster::two_pc(NodeId r) {
  if (opts_.protocol != Protocol::kTwoPc) return nullptr;
  return static_cast<consensus::TwoPcEngine*>(replicas_[static_cast<std::size_t>(r)].get());
}

}  // namespace ci::sim
