#include "sim/sim_cluster.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/one_paxos.hpp"

namespace ci::sim {

using consensus::Command;
using consensus::Instance;
using consensus::NodeId;
using core::FaultEvent;

SimCluster::SimCluster(const ClusterSpec& spec) : SimCluster(ShardSpec(spec)) {}

SimCluster::SimCluster(const ShardSpec& shard)
    : shard_(shard), dep_(shard, /*auto_start_clients=*/true) {
  net_ = std::make_unique<SimNet>(shard_.base.sim.model, shard_.base.seed,
                                  shard_.base.sim.tick_period);
  for (NodeId n = 0; n < dep_.num_nodes(); ++n) net_->add_node(dep_.node_engine(n));
  // Sim is single-threaded: record into the per-group recorders live.
  dep_.set_deliver_hook([this](NodeId, GroupId g, NodeId local, Instance in,
                               const Command& cmd) {
    dep_.recorder(g).record(local, in, cmd);
  });
  // The FaultPlan is part of the per-group template: each event hits its
  // group-local node in EVERY group (under co-location that is one shared
  // transport node; duplicate windows compose by max, so that's harmless).
  for (const FaultEvent& f : shard_.base.faults.events) {
    for (GroupId g = 0; g < dep_.num_groups(); ++g) {
      const NodeId node = dep_.global_node(g, f.node);
      switch (f.kind) {
        case FaultEvent::Kind::kSlowNode:
          net_->slow_node(node, f.at, f.until, f.factor);
          break;
        case FaultEvent::Kind::kResetAcceptor: {
          auto* opx = dep_.group(g).one_paxos(f.node);
          CI_CHECK(opx != nullptr);
          net_->schedule_call(f.at, node, [opx] { opx->reset_acceptor_state(); });
          break;
        }
        case FaultEvent::Kind::kStretchClock:
          net_->schedule_call(f.at, node, [net = net_.get(), node, rate = f.factor] {
            net->stretch_clock(node, rate);
          });
          break;
      }
    }
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::slow_node(NodeId node, Nanos from, Nanos to, double factor) {
  net_->slow_node(node, from, to, factor);
}

void SimCluster::reset_acceptor_state_at(NodeId node, Nanos t) {
  auto* opx = dep_.group(0).one_paxos(node);
  CI_CHECK(opx != nullptr);
  net_->schedule_call(t, dep_.global_node(0, node), [opx] { opx->reset_acceptor_state(); });
}

void SimCluster::run(Nanos deadline) {
  const Nanos step = 1 * kMillisecond;
  Nanos t = std::min(step, deadline);
  while (true) {
    net_->run_until(t);
    if (t >= deadline) return;
    if (shard_.base.workload.requests_per_client > 0 && dep_.clients_done()) return;
    t = std::min(t + step, deadline);
  }
}

core::RunResult SimCluster::result(Nanos duration) const {
  core::RunResult res = dep_.collect();
  res.duration = duration;
  res.total_messages = net_->total_messages();
  res.total_bytes = net_->total_bytes();
  return res;
}

core::RunResult SimCluster::group_result(GroupId g, Nanos duration) const {
  core::RunResult res = dep_.collect_group(g);
  res.duration = duration;
  // total_messages stays 0: transport send counters are per node, and a
  // node's traffic is not attributable to one group (co-location shares
  // nodes across groups). Read result() for whole-transport counts.
  return res;
}

double SimCluster::throughput_ops_per_sec(Nanos duration) const {
  return static_cast<double>(total_committed()) * static_cast<double>(kSecond) /
         static_cast<double>(duration);
}

}  // namespace ci::sim
