#include "sim/sim_cluster.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/one_paxos.hpp"

namespace ci::sim {

using consensus::Command;
using consensus::Instance;
using consensus::NodeId;
using core::FaultEvent;

SimCluster::SimCluster(const ClusterSpec& spec)
    : spec_(spec), dep_(spec, /*auto_start_clients=*/true) {
  net_ = std::make_unique<SimNet>(spec_.sim.model, spec_.seed, spec_.sim.tick_period);
  for (NodeId n = 0; n < dep_.num_nodes(); ++n) net_->add_node(dep_.node_engine(n));
  net_->set_deliver_cb([this](NodeId node, Instance in, const Command& cmd) {
    dep_.recorder().record(node, in, cmd);
  });
  for (const FaultEvent& f : spec_.faults.events) {
    switch (f.kind) {
      case FaultEvent::Kind::kSlowNode:
        net_->slow_node(f.node, f.at, f.until, f.factor);
        break;
      case FaultEvent::Kind::kResetAcceptor:
        reset_acceptor_state_at(f.node, f.at);
        break;
    }
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::slow_node(NodeId node, Nanos from, Nanos to, double factor) {
  net_->slow_node(node, from, to, factor);
}

void SimCluster::reset_acceptor_state_at(NodeId node, Nanos t) {
  auto* opx = dep_.one_paxos(node);
  CI_CHECK(opx != nullptr);
  net_->schedule_call(t, node, [opx] { opx->reset_acceptor_state(); });
}

void SimCluster::run(Nanos deadline) {
  const Nanos step = 1 * kMillisecond;
  Nanos t = std::min(step, deadline);
  while (true) {
    net_->run_until(t);
    if (t >= deadline) return;
    if (spec_.workload.requests_per_client > 0 && dep_.clients_done()) return;
    t = std::min(t + step, deadline);
  }
}

core::RunResult SimCluster::result(Nanos duration) const {
  core::RunResult res = dep_.collect();
  res.duration = duration;
  res.total_messages = net_->total_messages();
  return res;
}

double SimCluster::throughput_ops_per_sec(Nanos duration) const {
  return static_cast<double>(total_committed()) * static_cast<double>(kSecond) /
         static_cast<double>(duration);
}

}  // namespace ci::sim
