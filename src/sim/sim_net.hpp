// Deterministic discrete-event simulation of a many-core "network" of
// protocol engines.
//
// Each node is one Engine with a serially-busy CPU (`busy_until`): receiving
// a message, running its handler, and sending each outgoing message all
// advance the node's clock by the model's costs, scaled by the node's
// current slowdown factor. Fault injection = slowdown windows (the paper
// models failures as slow cores, §1 fn.3) plus arbitrary scheduled calls
// (e.g. the acceptor silent-reboot hook).
//
// Runs are bit-reproducible for a given (cluster, seed): the event queue
// orders by (time, sequence number) and all jitter comes from one seeded RNG.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "consensus/engine.hpp"
#include "core/latency_model.hpp"

namespace ci::sim {

using consensus::Command;
using consensus::Engine;
using consensus::Instance;
using consensus::Message;
using consensus::NodeId;
using core::LatencyModel;

class SimNet {
 public:
  SimNet(const LatencyModel& model, std::uint64_t seed, Nanos tick_period);
  // Messages still in flight may own pooled command bodies; hand them back.
  ~SimNet();

  // Nodes must be added before run(); ids are dense from 0.
  void add_node(Engine* engine);

  // Multiplies the node's CPU costs by `factor` during [from, to).
  void slow_node(NodeId node, Nanos from, Nanos to, double factor);

  // Ends every slow window still open at time t for `node` (heal).
  void heal_node(NodeId node, Nanos t);

  // From the current virtual time on, the node's PERCEIVED clock (what its
  // engine's ctx.now() returns) advances `rate` times virtual time — the
  // clock-skew fault the lease safety argument must survive. Event order
  // and CPU costs are untouched; only the node's view of time is skewed,
  // continuously re-anchored at the switch point.
  void stretch_clock(NodeId node, double rate);

  // Runs fn at virtual time t on the given node (models environment events
  // such as an acceptor reboot).
  void schedule_call(Nanos t, NodeId node, std::function<void()> fn);

  // Processes events until virtual time reaches `until` (or the queue runs
  // dry, which cannot happen while ticking). Can be called repeatedly with
  // increasing deadlines.
  void run_until(Nanos until);

  // Stop ticking a node (ends the simulation cleanly once the queue drains).
  Nanos now() const { return now_; }

  // Boundary-crossing messages sent per node (self-sends excluded) — the
  // quantity Fig. 3 counts.
  std::uint64_t messages_sent(NodeId node) const { return nodes_[static_cast<std::size_t>(node)]->sent; }
  std::uint64_t total_messages() const;
  std::uint64_t messages_dropped() const { return dropped_; }
  // Encoded frame bytes behind those messages (wire::frame_size per send):
  // what a socket backend would actually push through the kernel.
  std::uint64_t total_bytes() const;

 private:
  // Move-only: payloads ride behind pointers so heap sift operations move
  // ~80 bytes instead of copying a multi-kilobyte Message union or frame.
  //
  // Cross-node messages are ENCODED AT SEND: the event carries the wire
  // frame (a pooled buffer, recycled after delivery or drop), not the
  // in-memory Message — each field byte moves exactly once, engine memory
  // to frame, mirroring what a socket backend would transmit. Self-sends
  // keep the full Message copy: no node boundary is crossed, so nothing is
  // serialized (and nothing is charged).
  struct Event {
    Nanos time = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t { kMessage, kTick, kCall } kind = Kind::kMessage;
    NodeId node = -1;
    std::unique_ptr<Message> msg;               // kMessage, self-sends only
    std::unique_ptr<unsigned char[]> frame;     // kMessage, cross-node only
    std::uint32_t frame_len = 0;
    std::function<void()> call;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Min-heap "later" comparator: heap front = earliest (time, seq). The
  // (time, seq) order is total, so run order — and with it bit-exact
  // reproducibility — is independent of the heap's internal layout.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const { return a > b; }
  };

  class NodeCtx final : public consensus::Context {
   public:
    NodeCtx(SimNet* net, NodeId id, Engine* engine) : net_(net), id_(id), engine_(engine) {}

    NodeId self() const override { return id_; }
    // The node's PERCEIVED clock: virtual time through the skew transform
    // (identity until SimNet::stretch_clock re-anchors it).
    Nanos now() const override {
      if (skew_rate == 1.0) return logical_now;
      return skew_anchor_seen +
             static_cast<Nanos>(static_cast<double>(logical_now - skew_anchor_real) *
                                skew_rate);
    }
    void send(NodeId dst, const Message& m) override { net_->send_from(*this, dst, m); }
    // Delivery reporting happens in the GroupDemuxEngine hosted on every
    // node (its deliver hook feeds the per-group agreement recorders); the
    // transport itself has no delivery channel.
    void deliver(Instance, const Command&) override {}

    SimNet* net_;
    NodeId id_;
    Engine* engine_;
    Nanos busy_until = 0;
    Nanos logical_now = 0;
    std::uint64_t sent = 0;
    std::uint64_t sent_bytes = 0;
    std::vector<std::tuple<Nanos, Nanos, double>> slow_windows;
    // Clock skew (stretch_clock): perceived = seen + (virtual - real) * rate.
    Nanos skew_anchor_real = 0;
    Nanos skew_anchor_seen = 0;
    double skew_rate = 1.0;
  };

  void send_from(NodeCtx& src, NodeId dst, const Message& m);
  double speed_factor(const NodeCtx& n, Nanos t) const;
  void push_event(Event e);
  void process(Event& e);
  std::unique_ptr<unsigned char[]> acquire_frame();
  void recycle_frame(std::unique_ptr<unsigned char[]> frame);

  LatencyModel model_;
  Rng rng_;
  Nanos tick_period_;
  Nanos now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  // Binary min-heap over (time, seq), maintained with std::push_heap /
  // std::pop_heap (std::priority_queue cannot hand move-only elements back).
  std::vector<Event> event_queue_;
  // Recycled frame buffers (each wire::kMaxFrameBytes): the steady state
  // allocates nothing per send — in-flight depth sets the pool's high-water
  // mark once and buffers cycle through it thereafter.
  std::vector<std::unique_ptr<unsigned char[]>> frame_pool_;
};

}  // namespace ci::sim
