// Basic-Paxos (the original Synod protocol, paper §2.3) with collapsed
// roles: every replica is proposer, acceptor and learner.
//
// Any replica proposes client commands for the next free instance; ballots
// resolve contention between concurrent proposers. Both phases run for every
// command (no stable-leader optimization — that is Multi-Paxos). Used
// standalone in tests and as the reference the paper's §2.3 describes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "common/rng.hpp"
#include "consensus/engine.hpp"
#include "consensus/log.hpp"
#include "consensus/state_machine.hpp"
#include "consensus/synod.hpp"

namespace ci::consensus {

class BasicPaxosEngine final : public Engine {
 public:
  explicit BasicPaxosEngine(const EngineConfig& cfg);

  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;

  const ReplicatedLog& log() const { return log_; }

 private:
  struct ProposerState {
    enum class Phase : std::uint8_t { kPrepare, kAccept, kDone };
    Phase phase = Phase::kPrepare;
    ProposalNum pn;
    Command own_value;            // what we advocate
    Command value;                // what we actually propose (may be adopted)
    std::uint64_t promise_mask = 0;
    ProposalNum highest_accepted;  // constraint from phase-1 responses
    bool constrained = false;
    Nanos last_send = 0;
    std::int64_t backoff_rounds = 0;
  };

  void propose_next(Context& ctx);
  void start_prepare(Context& ctx, Instance in, ProposerState& p);
  void start_accept(Context& ctx, Instance in, ProposerState& p);
  void handle_phase1_req(Context& ctx, const Message& m);
  void handle_phase1_resp(Context& ctx, const Message& m);
  void handle_phase2_req(Context& ctx, const Message& m);
  void handle_phase2_acked(Context& ctx, const Message& m);
  void handle_nack(Context& ctx, const Message& m);
  void learn(Context& ctx, Instance in, const Command& cmd);
  ProposalNum next_ballot();

  EngineConfig cfg_;
  ReplicatedLog log_;
  Executor executor_;
  Rng rng_;

  std::deque<Command> pending_;
  std::map<Instance, ProposerState> proposing_;
  // Acceptor cells are per instance in Basic-Paxos; decided cells pruned.
  std::unordered_map<Instance, SynodAcceptor<Command>> acceptors_;
  std::unordered_map<Instance, SynodLearner> learners_;
  std::unordered_map<Instance, Command> learned_values_;  // acked values per instance
  std::int64_t ballot_counter_ = 0;
  Instance next_free_ = 0;
  std::unordered_map<std::uint64_t, Instance> advocated_;  // (client,seq) -> instance
};

}  // namespace ci::consensus
