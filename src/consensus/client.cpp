#include "consensus/client.hpp"

namespace ci::consensus {

ClientEngine::ClientEngine(const ClientConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.base.seed + static_cast<std::uint64_t>(cfg.base.self) * 104729),
      target_(cfg.initial_target) {}

void ClientEngine::start(Context& ctx) {
  if (cfg_.auto_start) {
    started_ = true;
    next_issue_at_ = ctx.now();
  }
}

Command ClientEngine::make_command() {
  Command cmd;
  cmd.client = cfg_.base.self;
  cmd.seq = current_seq_;
  cmd.op = rng_.next_double() < cfg_.read_fraction ? Op::kRead : Op::kWrite;
  cmd.key = static_cast<std::uint64_t>(cfg_.base.self);
  cmd.value = current_seq_;
  return cmd;
}

void ClientEngine::issue_next(Context& ctx) {
  // Locally-serviceable reads complete immediately; keep issuing (bounded,
  // so one call cannot consume the whole quota in zero simulated time)
  // until a request actually reaches the network.
  for (int burst = 0; burst < kMaxLocalBurst; ++burst) {
    if (done()) return;
    const Nanos now = ctx.now();
    if (now < next_issue_at_) return;  // think time pending
    current_seq_++;
    issued_++;
    current_cmd_ = make_command();

    if (current_cmd_.op == Op::kRead && cfg_.local_read) {
      std::uint64_t result = 0;
      if (cfg_.local_read(current_cmd_, &result)) {
        // Serviced from the co-located replica without touching the network.
        local_reads_.fetch_add(1, std::memory_order_relaxed);
        committed_++;
        latency_.record(0);
        if (commit_series_ != nullptr) commit_series_->record(now);
        next_issue_at_ = now + cfg_.think_time;
        waiting_ = false;
        if (cfg_.think_time > 0) return;
        continue;
      }
    }

    first_sent_ = now;
    last_sent_ = now;
    waiting_ = true;
    Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
    m.u.client_request.cmd = current_cmd_;
    ctx.send(target_, m);
    return;
  }
}

void ClientEngine::on_message(Context& ctx, const Message& m) {
  switch (m.type) {
    case MsgType::kStart:
      if (!started_) {
        started_ = true;
        next_issue_at_ = ctx.now();
      }
      return;
    case MsgType::kStop:
      started_ = false;
      waiting_ = false;
      return;
    case MsgType::kClientReply: {
      if (!waiting_ || m.u.client_reply.seq != current_seq_) return;  // stale
      waiting_ = false;
      const Nanos now = ctx.now();
      latency_.record(now - first_sent_);
      committed_++;
      if (commit_series_ != nullptr) commit_series_->record(now);
      if (m.u.client_reply.leader_hint != kNoNode) target_ = m.u.client_reply.leader_hint;
      next_issue_at_ = now + cfg_.think_time;
      // True closed loop: with no think time the next request goes out as
      // part of handling the reply, not on the next timer tick.
      if (started_ && cfg_.think_time == 0) issue_next(ctx);
      return;
    }
    default:
      return;
  }
}

void ClientEngine::tick(Context& ctx) {
  if (!started_) return;
  const Nanos now = ctx.now();
  if (waiting_) {
    if (now - last_sent_ >= cfg_.request_timeout) {
      // The target looks slow; try the next replica with the same command
      // (the (client, seq) dedup makes the duplicate harmless).
      target_ = (target_ + 1) % cfg_.base.num_replicas;
      retries_++;
      last_sent_ = now;
      Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
      // Tell the replica we suspect the leader (paper §7.6: replicas start
      // a takeover when re-targeted clients reach them).
      m.flags = kFlagLeaderSuspect;
      m.u.client_request.cmd = current_cmd_;
      ctx.send(target_, m);
    }
    return;
  }
  if (now >= next_issue_at_ && !done()) issue_next(ctx);
}

}  // namespace ci::consensus
