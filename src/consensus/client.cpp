#include "consensus/client.hpp"

#include <algorithm>

#include "common/time.hpp"

namespace ci::consensus {

namespace {

// Latency of a locally-serviced read. ctx.now() is useless here — under the
// simulator virtual time is frozen for the whole callback, so the elapsed
// virtual time is always zero — and recording 0 poisoned the histogram's
// low percentiles. Measure the actual state-machine lookup on the wall
// clock instead, clamped to 1 ns so the sample is never zero.
template <typename Fn>
bool timed_local_read(const Fn& local_read, const Command& cmd, std::uint64_t* result,
                      Nanos* elapsed) {
  const Nanos begin = now_nanos();
  const bool hit = local_read(cmd, result);
  *elapsed = std::max<Nanos>(now_nanos() - begin, 1);
  return hit;
}

}  // namespace

ClientEngine::ClientEngine(const ClientConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.base.seed + static_cast<std::uint64_t>(cfg.base.self) * 104729),
      target_(cfg.initial_target) {}

void ClientEngine::start(Context& ctx) {
  if (cfg_.auto_start) {
    started_ = true;
    next_issue_at_ = ctx.now();
  }
}

Command ClientEngine::make_command() {
  Command cmd;
  cmd.client = cfg_.base.self;
  cmd.seq = current_seq_;
  cmd.op = rng_.next_double() < cfg_.read_fraction ? Op::kRead : Op::kWrite;
  cmd.key = static_cast<std::uint64_t>(cfg_.base.self);
  cmd.value = current_seq_;
  return cmd;
}

void ClientEngine::issue_round(Context& ctx) {
  if (done()) return;
  const Nanos now = ctx.now();
  if (now < next_issue_at_) return;  // think time pending
  // One round = up to `coalesce` commands (bounded by the wire frame's
  // command cap and the remaining request quota), shipped together.
  std::int32_t want = std::min(cfg_.coalesce, kMaxClientBatchCommands);
  if (cfg_.total_requests != 0) {
    const std::uint64_t left = cfg_.total_requests - std::min(
        cfg_.total_requests, issued_.load(std::memory_order_relaxed));
    want = static_cast<std::int32_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(want), left));
  }
  if (want <= 0) return;
  round_cmds_.clear();
  round_done_.clear();
  for (std::int32_t i = 0; i < want; ++i) {
    current_seq_++;
    issued_++;
    Command cmd = make_command();
    if (cmd.op == Op::kRead && cfg_.local_read) {
      std::uint64_t result = 0;
      Nanos elapsed = 0;
      if (timed_local_read(cfg_.local_read, cmd, &result, &elapsed)) {
        local_reads_.fetch_add(1, std::memory_order_relaxed);
        committed_++;
        latency_.record(elapsed);
        if (commit_series_ != nullptr) commit_series_->record(now);
        continue;
      }
    }
    round_cmds_.push_back(cmd);
    round_done_.push_back(false);
  }
  if (round_cmds_.empty()) {
    // Every command was serviced locally; the round never touches the wire.
    next_issue_at_ = now + cfg_.think_time;
    waiting_ = false;
    return;
  }
  round_open_ = static_cast<std::int32_t>(round_cmds_.size());
  first_sent_ = now;
  last_sent_ = now;
  waiting_ = true;
  if (round_open_ == 1) {
    // A window of one stays on the legacy frame (the wire promise: senders
    // never pay the batch header for a single command).
    Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
    m.u.client_request.cmd = round_cmds_[0];
    ctx.send(target_, m);
    return;
  }
  Message m(MsgType::kClientCmdBatch, ProtoId::kClient, cfg_.base.self, target_);
  m.u.client_cmd_batch.count = round_open_;
  m.u.client_cmd_batch.run.assign(round_cmds_.data(), round_open_);
  ctx.send(target_, m);
}

void ClientEngine::on_round_reply(Context& ctx, const Message& m) {
  if (!waiting_) return;  // stale
  const std::uint32_t seq = m.u.client_reply.seq;
  for (std::size_t i = 0; i < round_cmds_.size(); ++i) {
    if (round_cmds_[i].seq != seq || round_done_[i]) continue;
    round_done_[i] = true;
    round_open_--;
    const Nanos now = ctx.now();
    latency_.record(now - first_sent_);
    committed_++;
    if (commit_series_ != nullptr) commit_series_->record(now);
    if (m.u.client_reply.leader_hint != kNoNode) target_ = m.u.client_reply.leader_hint;
    if (round_open_ == 0) {
      waiting_ = false;
      next_issue_at_ = now + cfg_.think_time;
      if (started_ && cfg_.think_time == 0) issue_round(ctx);
    }
    return;
  }
}

void ClientEngine::retry_round(Context& ctx, Nanos now) {
  if (now - last_sent_ < cfg_.request_timeout) return;
  // Degrade to per-command legacy frames on the next replica: a lost batch
  // frame costs the amortization, never correctness (per-command (client,
  // seq) dedup absorbs duplicates exactly like the single-request retry).
  target_ = (target_ + 1) % cfg_.base.num_replicas;
  retries_++;
  last_sent_ = now;
  for (std::size_t i = 0; i < round_cmds_.size(); ++i) {
    if (round_done_[i]) continue;
    Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
    m.flags = kFlagLeaderSuspect;
    m.u.client_request.cmd = round_cmds_[i];
    ctx.send(target_, m);
  }
}

void ClientEngine::issue_next(Context& ctx) {
  // Locally-serviceable reads complete immediately; keep issuing (bounded,
  // so one call cannot consume the whole quota in zero simulated time)
  // until a request actually reaches the network.
  for (int burst = 0; burst < kMaxLocalBurst; ++burst) {
    if (done()) return;
    const Nanos now = ctx.now();
    if (now < next_issue_at_) return;  // think time pending
    current_seq_++;
    issued_++;
    current_cmd_ = make_command();

    if (current_cmd_.op == Op::kRead && cfg_.local_read) {
      std::uint64_t result = 0;
      Nanos elapsed = 0;
      if (timed_local_read(cfg_.local_read, current_cmd_, &result, &elapsed)) {
        // Serviced from the co-located replica without touching the network.
        local_reads_.fetch_add(1, std::memory_order_relaxed);
        committed_++;
        latency_.record(elapsed);
        if (commit_series_ != nullptr) commit_series_->record(now);
        next_issue_at_ = now + cfg_.think_time;
        waiting_ = false;
        if (cfg_.think_time > 0) return;
        continue;
      }
    }

    first_sent_ = now;
    last_sent_ = now;
    waiting_ = true;
    Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
    m.u.client_request.cmd = current_cmd_;
    ctx.send(target_, m);
    return;
  }
}

void ClientEngine::on_message(Context& ctx, const Message& m) {
  switch (m.type) {
    case MsgType::kStart:
      if (!started_) {
        started_ = true;
        next_issue_at_ = ctx.now();
      }
      return;
    case MsgType::kStop:
      started_ = false;
      waiting_ = false;
      round_cmds_.clear();
      round_done_.clear();
      round_open_ = 0;
      return;
    case MsgType::kClientReply: {
      if (cfg_.coalesce > 1) {
        on_round_reply(ctx, m);
        return;
      }
      if (!waiting_ || m.u.client_reply.seq != current_seq_) return;  // stale
      waiting_ = false;
      const Nanos now = ctx.now();
      latency_.record(now - first_sent_);
      committed_++;
      if (commit_series_ != nullptr) commit_series_->record(now);
      if (m.u.client_reply.leader_hint != kNoNode) target_ = m.u.client_reply.leader_hint;
      next_issue_at_ = now + cfg_.think_time;
      // True closed loop: with no think time the next request goes out as
      // part of handling the reply, not on the next timer tick.
      if (started_ && cfg_.think_time == 0) issue_next(ctx);
      return;
    }
    default:
      return;
  }
}

void ClientEngine::tick(Context& ctx) {
  if (!started_) return;
  const Nanos now = ctx.now();
  if (cfg_.coalesce > 1) {
    if (waiting_) {
      retry_round(ctx, now);
    } else if (now >= next_issue_at_ && !done()) {
      issue_round(ctx);
    }
    return;
  }
  if (waiting_) {
    if (now - last_sent_ >= cfg_.request_timeout) {
      // The target looks slow; try the next replica with the same command
      // (the (client, seq) dedup makes the duplicate harmless).
      target_ = (target_ + 1) % cfg_.base.num_replicas;
      retries_++;
      last_sent_ = now;
      Message m(MsgType::kClientRequest, ProtoId::kClient, cfg_.base.self, target_);
      // Tell the replica we suspect the leader (paper §7.6: replicas start
      // a takeover when re-targeted clients reach them).
      m.flags = kFlagLeaderSuspect;
      m.u.client_request.cmd = current_cmd_;
      ctx.send(target_, m);
    }
    return;
  }
  if (now >= next_issue_at_ && !done()) issue_next(ctx);
}

}  // namespace ci::consensus
