// The application state machine replicated by the agreement protocols, and
// the exactly-once executor every replica runs over its log.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consensus/types.hpp"

namespace ci::consensus {

// Deterministic state machine. apply() returns the operation result (the
// value read, for kRead; implementations choose what writes return).
//
// Transaction participation (cross-shard 2PC, DESIGN.md §1d): the txn hooks
// let a replicated group serve as one participant of a transaction that
// spans groups. All hooks execute from the replicated log, so every replica
// of the group walks the same lock/stage/apply sequence deterministically:
//   * txn_prepare — called once per (txn, key) write: lock the key and
//     stage the value, returning the participant's vote (1 = yes, 0 = no;
//     a key locked by ANOTHER live transaction must vote no — voting is the
//     only conflict resolution, there is no waiting inside a deterministic
//     log). A no vote must leave nothing locked or staged for that command.
//   * txn_commit — apply every staged write of the txn, release its locks.
//   * txn_abort — discard staged writes, release locks.
//   * txn_decide — home-group bookkeeping: record the coordinator's
//     replicated decision (the durable commit point of the 2PC).
// The defaults vote yes and do nothing, so state machines that never see
// transactions are unaffected.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual std::uint64_t apply(const Command& cmd) = 0;

  // Relaxed local read (§7.5): a replica's current value for `key` without
  // a protocol round trip. Services without a keyed read return 0.
  virtual std::uint64_t read(std::uint64_t key) const {
    (void)key;
    return 0;
  }

  // Per-key write version, bumped on EVERY applied write of `key` (equal
  // values included). Snapshot read-only transactions bracket their value
  // reads with version reads: unchanged versions prove the values formed
  // one consistent cut (no ABA — version moves even when the value does
  // not). Services without versions return 0, which makes the snapshot
  // check vacuous (documented: the cut degrades to independent reads).
  virtual std::uint64_t versioned_read(std::uint64_t key) const {
    (void)key;
    return 0;
  }

  virtual std::uint64_t txn_prepare(const Command& cmd) {
    (void)cmd;
    return 1;
  }
  virtual std::uint64_t txn_commit(TxnId txn) {
    (void)txn;
    return 1;
  }
  virtual std::uint64_t txn_abort(TxnId txn) {
    (void)txn;
    return 1;
  }
  virtual std::uint64_t txn_decide(TxnId txn, bool commit) {
    (void)txn;
    return commit ? 1 : 0;
  }

  // The dispatcher the Executor drives: routes transaction ops to the hooks
  // above and everything else to apply().
  std::uint64_t execute(const Command& cmd) {
    switch (cmd.op) {
      case Op::kTxnPrepare:
        return txn_prepare(cmd);
      case Op::kTxnCommit:
        return txn_commit(cmd.txn);
      case Op::kTxnAbort:
        return txn_abort(cmd.txn);
      case Op::kTxnDecide:
        return txn_decide(cmd.txn, cmd.value != 0);
      case Op::kTxnPrepareDecide: {
        // The home group's anchor: prepare + decide + final in ONE log
        // entry, composed from the hooks above so every StateMachine gets
        // it for free. reserved[0] carries the other participants' combined
        // vote; the anchor key only locks when the txn can still commit (an
        // already-doomed txn must leave nothing locked or staged here).
        const bool others_yes = cmd.reserved[0] != 0;
        const bool commit = others_yes && txn_prepare(cmd) != 0;
        txn_decide(cmd.txn, commit);
        if (commit) {
          txn_commit(cmd.txn);
        } else {
          txn_abort(cmd.txn);
        }
        return commit ? 1 : 0;
      }
      case Op::kReadVersioned:
        return versioned_read(cmd.key);
      default:
        return apply(cmd);
    }
  }
};

// Discards writes, reads return zero. Used by benches where only agreement
// cost matters (the paper's requests carry no payload, §7.1).
class NullStateMachine final : public StateMachine {
 public:
  std::uint64_t apply(const Command&) override { return 0; }
};

// A replicated key/value map: writes store, reads (and writes) return the
// previous value. Queryable locally for joint-deployment local reads (§7.5).
//
// Transactions: prepare locks the key and stages the write (vote no when
// another live transaction holds the lock), commit applies staged writes
// and releases, abort releases without applying. Locks isolate transactions
// from EACH OTHER only; plain kWrite commands are linearized by the log
// independently and do not consult the lock table (relaxed reads likewise).
class MapStateMachine final : public StateMachine {
 public:
  std::uint64_t apply(const Command& cmd) override {
    switch (cmd.op) {
      case Op::kWrite: {
        auto [it, inserted] = map_.try_emplace(cmd.key, cmd.value);
        const std::uint64_t old = inserted ? 0 : it->second;
        it->second = cmd.value;
        ++versions_[cmd.key];
        return old;
      }
      case Op::kRead:
        return read(cmd.key);
      case Op::kNoop:
        return 0;
      default:
        return 0;  // txn ops never reach apply (execute() routes them)
    }
  }

  std::uint64_t read(std::uint64_t key) const override {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

  std::uint64_t versioned_read(std::uint64_t key) const override {
    auto it = versions_.find(key);
    return it == versions_.end() ? 0 : it->second;
  }

  std::uint64_t txn_prepare(const Command& cmd) override {
    auto [it, inserted] = locks_.try_emplace(cmd.key, cmd.txn);
    if (!inserted && it->second != cmd.txn) return 0;  // locked by another txn
    staged_[cmd.txn].emplace_back(cmd.key, cmd.value);
    return 1;
  }

  std::uint64_t txn_commit(TxnId txn) override {
    decisions_.erase(txn);  // the final reached the home group: record done
    auto it = staged_.find(txn);
    if (it == staged_.end()) return 1;  // already finished (duplicate decision)
    for (const auto& [key, value] : it->second) {
      map_[key] = value;
      ++versions_[key];
      release_lock(txn, key);
    }
    staged_.erase(it);
    return 1;
  }

  std::uint64_t txn_abort(TxnId txn) override {
    decisions_.erase(txn);
    auto it = staged_.find(txn);
    if (it == staged_.end()) return 1;
    for (const auto& [key, value] : it->second) release_lock(txn, key);
    staged_.erase(it);
    return 1;
  }

  std::uint64_t txn_decide(TxnId txn, bool commit) override {
    decisions_[txn] = commit ? 1 : 0;
    return commit ? 1 : 0;
  }

  std::size_t size() const { return map_.size(); }

  // Test introspection: transactions holding locks / staged writes here.
  std::size_t locked_keys() const { return locks_.size(); }
  bool has_txn_state(TxnId txn) const { return staged_.count(txn) != 0; }
  // -1 = no decision recorded (this replica is not the txn's home group, or
  // the decide has not executed here yet).
  int decision(TxnId txn) const {
    auto it = decisions_.find(txn);
    return it == decisions_.end() ? -1 : it->second;
  }

 private:
  void release_lock(TxnId txn, std::uint64_t key) {
    auto lk = locks_.find(key);
    if (lk != locks_.end() && lk->second == txn) locks_.erase(lk);
  }

  std::unordered_map<std::uint64_t, std::uint64_t> map_;
  // Per-key write counter backing versioned_read (bumped alongside every
  // map_ write, so replicas agree on versions deterministically).
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;
  std::unordered_map<std::uint64_t, TxnId> locks_;  // key -> holding txn
  std::unordered_map<TxnId, std::vector<std::pair<std::uint64_t, std::uint64_t>>> staged_;
  // Home-group decision record, covering the decide->apply window; the
  // final command (txn_commit/txn_abort always reaches the home group —
  // it is a participant by construction) prunes it, so live transactions
  // bound its size and a reused TxnId (the 20-bit counter wraps after ~1M
  // txns per session) cannot meet a stale record.
  std::unordered_map<TxnId, std::uint8_t> decisions_;
};

// Applies log entries exactly once per (client, seq): a command can occupy
// two instances after a client retry straddles a leader change, and the
// duplicate must not re-execute. The last result per client is cached so a
// deduplicated retry still answers with the original result.
class Executor {
 public:
  explicit Executor(StateMachine* sm) : sm_(sm) {}

  struct Applied {
    bool duplicate = false;
    std::uint64_t result = 0;
  };

  Applied apply(const Command& cmd) {
    Applied out;
    if (cmd.is_noop()) return out;
    if (cmd.client != kNoNode) {
      auto [it, inserted] = last_.try_emplace(cmd.client, LastOp{cmd.seq, 0});
      if (!inserted) {
        if (cmd.seq < it->second.seq) {
          out.duplicate = true;  // older than the cache: result long gone
          return out;
        }
        if (cmd.seq == it->second.seq) {
          out.duplicate = true;
          out.result = it->second.result;
          return out;
        }
        it->second.seq = cmd.seq;
      }
      if (sm_ != nullptr) out.result = sm_->execute(cmd);
      it->second.result = out.result;
      return out;
    }
    if (sm_ != nullptr) out.result = sm_->execute(cmd);
    return out;
  }

  std::uint64_t executed_commands() const {
    std::uint64_t n = 0;
    for (const auto& [client, last] : last_) n += last.seq;
    return n;
  }

 private:
  struct LastOp {
    std::uint32_t seq = 0;
    std::uint64_t result = 0;
  };

  StateMachine* sm_;
  std::unordered_map<NodeId, LastOp> last_;
};

}  // namespace ci::consensus
