// The application state machine replicated by the agreement protocols, and
// the exactly-once executor every replica runs over its log.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "consensus/types.hpp"

namespace ci::consensus {

// Deterministic state machine. apply() returns the operation result (the
// value read, for kRead; implementations choose what writes return).
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual std::uint64_t apply(const Command& cmd) = 0;
};

// Discards writes, reads return zero. Used by benches where only agreement
// cost matters (the paper's requests carry no payload, §7.1).
class NullStateMachine final : public StateMachine {
 public:
  std::uint64_t apply(const Command&) override { return 0; }
};

// A replicated key/value map: writes store, reads (and writes) return the
// previous value. Queryable locally for joint-deployment local reads (§7.5).
class MapStateMachine final : public StateMachine {
 public:
  std::uint64_t apply(const Command& cmd) override {
    switch (cmd.op) {
      case Op::kWrite: {
        auto [it, inserted] = map_.try_emplace(cmd.key, cmd.value);
        const std::uint64_t old = inserted ? 0 : it->second;
        it->second = cmd.value;
        return old;
      }
      case Op::kRead:
        return read(cmd.key);
      case Op::kNoop:
        return 0;
    }
    return 0;
  }

  std::uint64_t read(std::uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

// Applies log entries exactly once per (client, seq): a command can occupy
// two instances after a client retry straddles a leader change, and the
// duplicate must not re-execute. The last result per client is cached so a
// deduplicated retry still answers with the original result.
class Executor {
 public:
  explicit Executor(StateMachine* sm) : sm_(sm) {}

  struct Applied {
    bool duplicate = false;
    std::uint64_t result = 0;
  };

  Applied apply(const Command& cmd) {
    Applied out;
    if (cmd.is_noop()) return out;
    if (cmd.client != kNoNode) {
      auto [it, inserted] = last_.try_emplace(cmd.client, LastOp{cmd.seq, 0});
      if (!inserted) {
        if (cmd.seq < it->second.seq) {
          out.duplicate = true;  // older than the cache: result long gone
          return out;
        }
        if (cmd.seq == it->second.seq) {
          out.duplicate = true;
          out.result = it->second.result;
          return out;
        }
        it->second.seq = cmd.seq;
      }
      if (sm_ != nullptr) out.result = sm_->apply(cmd);
      it->second.result = out.result;
      return out;
    }
    if (sm_ != nullptr) out.result = sm_->apply(cmd);
    return out;
  }

  std::uint64_t executed_commands() const {
    std::uint64_t n = 0;
    for (const auto& [client, last] : last_) n += last.seq;
    return n;
  }

 private:
  struct LastOp {
    std::uint32_t seq = 0;
    std::uint64_t result = 0;
  };

  StateMachine* sm_;
  std::unordered_map<NodeId, LastOp> last_;
};

}  // namespace ci::consensus
