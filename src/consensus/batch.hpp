// Leader-side request batching: the knob, the value type, and the
// accumulator.
//
// Batching changes the unit of agreement from one client command to an
// ordered run of commands (a Batch): the leader packs pending requests into
// one instance, acceptors accept / learn the run as a single value, and the
// execution path fans the run back out — every command is applied, delivered
// and acked individually, in batch order. This amortizes the per-message
// leader cost that dominates throughput on a many-core (paper §3: cores
// process events serially, so saturation emerges from message counts).
//
// The degenerate policy (max_commands == 1, the default) produces only
// single-command batches, which travel in the exact legacy wire frames —
// an unbatched deployment's traffic and results are reproduced bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

// The value one agreement instance decides: 1..kMaxCommandsPerBatch
// commands, ordered. Size 1 is the classic one-command-per-instance regime.
using Batch = std::vector<Command>;

inline Batch single_batch(const Command& cmd) { return Batch{cmd}; }

struct BatchPolicy {
  // What governs the idle-pipeline flush of a PARTIAL batch:
  //   * kFixed — the classic timer: hold up to flush_after unconditionally
  //     (bit-identical to the pre-adaptive behavior, and the default);
  //   * kAdaptive — the hold is derived from the observed arrival rate: a
  //     lone command flushes immediately when the next arrival is not
  //     expected within the budget, and waits at most a handful of
  //     predicted inter-arrival gaps when company IS imminent. flush_after
  //     becomes the upper bound of the hold (the "budget"); 0 keeps the
  //     stock kAdaptiveDefaultHold.
  enum class FlushMode : std::uint8_t { kFixed, kAdaptive };

  // Commands per instance; 1 (default) reproduces unbatched behavior
  // bit-identically. Clamped to [1, kMaxCommandsPerBatch].
  std::int32_t max_commands = 1;

  // Payload-byte budget per batch. Commands are indivisible: a single
  // command always travels even when it alone exceeds the budget.
  std::int32_t max_bytes = kMaxCommandsPerBatch * static_cast<std::int32_t>(sizeof(Command));

  // How long a partial batch may wait for company ONCE THE PIPELINE IS
  // IDLE. Group commit proper needs no timer: while instances are in
  // flight, arrivals accumulate, and each decide flushes the whole backlog
  // as one batch — the batch size adapts to load by itself. The timer only
  // governs the idle case: 0 (default) proposes a lone command immediately
  // (work-conserving, no added latency), T > 0 holds it up to T hoping for
  // company (trading latency for fill at low load). Under kAdaptive this is
  // the hold's UPPER BOUND, not its value.
  Nanos flush_after = 0;

  FlushMode flush_mode = FlushMode::kFixed;

  // Adaptive-mode constants. The hold is min(budget, kAdaptiveHoldGaps *
  // ewma_gap): at high arrival rates a few gaps buy most of the fill a
  // fixed timer would (the in-flight decide accumulates the rest — group
  // commit), while the budget caps the worst case when the gap estimate is
  // stale. kAdaptiveDefaultHold is the budget when flush_after is unset —
  // roughly a few decide round trips under the sim cost model.
  static constexpr std::int64_t kAdaptiveHoldGaps = 8;
  static constexpr Nanos kAdaptiveDefaultHold = 200 * kMicrosecond;

  bool batching() const { return max_commands > 1; }

  bool adaptive() const { return flush_mode == FlushMode::kAdaptive; }

  // The adaptive hold budget: flush_after when set, the stock default
  // otherwise (an adaptive policy with no timer configured must still be
  // allowed to hold — the whole point is that IT decides when not to).
  Nanos adaptive_hold_budget() const {
    return flush_after > 0 ? flush_after : kAdaptiveDefaultHold;
  }

  // Commands per batch after every cap (max_commands, the byte budget, the
  // compile-time ceiling); never below 1.
  std::int32_t commands_cap() const {
    std::int32_t cap = std::min(max_commands, kMaxCommandsPerBatch);
    cap = std::min(cap, max_bytes / static_cast<std::int32_t>(sizeof(Command)));
    return std::max(cap, 1);
  }
};

// FIFO of commands waiting for a leader pipeline slot, with the flush
// policy folded in. Engines push on arrival and take() a batch whenever
// ready() says the head of the queue should be proposed.
class Batcher {
 public:
  Batcher() = default;
  explicit Batcher(const BatchPolicy& policy) : policy_(policy) {}

  const BatchPolicy& policy() const { return policy_; }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  void push(const Command& cmd, Nanos now) {
    // Arrival-rate estimate for the adaptive flush rule: EWMA of the
    // inter-arrival gap, clamped to >= 1 ns so a measured gap is never
    // confused with the "no estimate yet" zero. Re-queues (push_front) are
    // not arrivals and leave the estimate alone.
    if (last_arrival_ != kNoTime && now >= last_arrival_) {
      const Nanos gap = std::max<Nanos>(now - last_arrival_, 1);
      ewma_gap_ = ewma_gap_ == 0 ? gap : (3 * ewma_gap_ + gap) / 4;
    }
    last_arrival_ = now;
    q_.push_back({cmd, now});
  }

  // Re-queue at the front (a command that lost an instance race must be
  // re-proposed before new arrivals). Front-of-queue age makes it flush
  // immediately under any flush_after.
  void push_front(const Command& cmd) { q_.push_front({cmd, kNoTime}); }

  // True when a batch should be proposed now. `outstanding` is the number
  // of instances the caller already has in flight:
  //   * unbatched policy — any pending command goes at once (the classic
  //     regime, bit-identical to pre-batching behavior);
  //   * batching — a full batch always goes; a partial batch goes only when
  //     the pipeline is idle and its oldest command has waited out the
  //     flush policy (group commit: in-flight decides flush the accumulated
  //     backlog). kFixed waits flush_after unconditionally; kAdaptive waits
  //     only while the arrival-rate estimate says company is imminent —
  //     see idle_hold().
  // Re-queued commands (push_front) count as overdue: a race loser must be
  // re-proposed as soon as the pipeline allows.
  bool ready(Nanos now, std::size_t outstanding) const {
    if (q_.empty()) return false;
    if (!policy_.batching()) return true;
    if (static_cast<std::int32_t>(q_.size()) >= policy_.commands_cap()) return true;
    if (outstanding > 0) return false;
    const Nanos enqueued = q_.front().enqueued;
    return enqueued == kNoTime || now - enqueued >= idle_hold();
  }

  // How long the oldest command of a partial batch holds on an idle
  // pipeline. kFixed: flush_after, always. kAdaptive: 0 when there is no
  // gap estimate yet or arrivals are too sparse for company to show up
  // within the budget (the p99-at-low-load win: a lone command proposes at
  // batch=1 latency); otherwise a handful of predicted gaps, capped by the
  // budget (enough fill to keep msgs/op amortized at mid load — saturation
  // never gets here, full batches and in-flight accumulation flush first).
  Nanos idle_hold() const {
    if (!policy_.adaptive()) return policy_.flush_after;
    const Nanos budget = policy_.adaptive_hold_budget();
    if (ewma_gap_ == 0 || ewma_gap_ >= budget) return 0;
    return std::min<Nanos>(budget, BatchPolicy::kAdaptiveHoldGaps * ewma_gap_);
  }

  // The current inter-arrival estimate (0 = no estimate yet); test hook.
  Nanos ewma_gap() const { return ewma_gap_; }

  // Pops the next batch (up to the policy's cap), FIFO. Empty iff empty().
  Batch take() {
    Batch out;
    const std::int32_t cap = policy_.commands_cap();
    while (!q_.empty() && static_cast<std::int32_t>(out.size()) < cap) {
      out.push_back(q_.front().cmd);
      q_.pop_front();
    }
    return out;
  }

  // Drains everything in FIFO order (forwarding to another leader).
  std::vector<Command> drain() {
    std::vector<Command> out;
    out.reserve(q_.size());
    for (const Pending& p : q_) out.push_back(p.cmd);
    q_.clear();
    return out;
  }

 private:
  // Sentinel enqueue time for re-queued commands: always overdue.
  static constexpr Nanos kNoTime = -1;

  struct Pending {
    Command cmd;
    Nanos enqueued = 0;
  };

  BatchPolicy policy_;
  std::deque<Pending> q_;
  Nanos last_arrival_ = kNoTime;  // newest push() time (re-queues excluded)
  Nanos ewma_gap_ = 0;            // EWMA inter-arrival gap; 0 = no estimate
};

// ---- Wire helpers ----
// Batches travel as count-prefixed Command runs. In memory a run is a
// CommandRun (message.hpp): inline for short runs, pooled for long ones;
// on the wire the codec serializes only the used commands.

inline std::int32_t pack_batch(const Batch& b, Command* out) {
  CI_CHECK(!b.empty() &&
           b.size() <= static_cast<std::size_t>(kMaxCommandsPerBatch));
  std::copy(b.begin(), b.end(), out);
  return static_cast<std::int32_t>(b.size());
}

inline Batch unpack_batch(const Command* cmds, std::int32_t count) {
  CI_CHECK(count >= 1 && count <= kMaxCommandsPerBatch);
  return Batch(cmds, cmds + count);
}

// Order-sensitive digest of a command run (FNV-1a over the semantic fields,
// seeded by the count; padding excluded). AcceptorChange entries identify
// their batched uncommitted values by (instance, count, digest) and the
// bodies travel out of line — the digest is what lets an adopter verify a
// fetched body against the decided entry (see message.hpp BatchedProposalRef
// and DESIGN.md §1c).
inline std::uint64_t batch_digest(const Command* cmds, std::int32_t count) {
  std::uint64_t h = 1469598103934665603ull ^ static_cast<std::uint64_t>(count);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::int32_t i = 0; i < count; ++i) {
    const Command& c = cmds[i];
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.client)) << 32) | c.seq);
    mix(static_cast<std::uint64_t>(c.op));
    mix(c.key);
    mix(c.value);
  }
  return h;
}

inline std::uint64_t batch_digest(const Batch& b) {
  return batch_digest(b.data(), static_cast<std::int32_t>(b.size()));
}

}  // namespace ci::consensus
