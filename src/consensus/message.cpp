#include "consensus/message.hpp"

namespace ci::consensus {

namespace {

std::size_t entry_bytes(const UtilityEntry& e) {
  // Entries without batched proposals keep the pre-batching layout: the
  // appended batched[] region is never serialized, so legacy traffic is
  // unchanged byte for byte (receivers zero-fill, so num_batched reads 0).
  if (e.num_batched == 0) {
    return offsetof(UtilityEntry, proposals) +
           static_cast<std::size_t>(e.num_proposals) * sizeof(Proposal);
  }
  return offsetof(UtilityEntry, batched) +
         static_cast<std::size_t>(e.num_batched) * sizeof(BatchedProposalRef);
}

// Count-prefixed Command runs: the fixed fields (everything before the
// in-memory CommandRun) + `count` commands. The codec serializes the run's
// commands at this offset, where the fixed-size cmds[] array used to sit,
// so the frame bytes are unchanged.
template <typename P>
std::size_t batch_bytes(const P& p) {
  return offsetof(P, run) + static_cast<std::size_t>(p.count) * sizeof(Command);
}

std::size_t payload_bytes(const Message& m) {
  switch (m.type) {
    case MsgType::kNone:
    case MsgType::kStart:
    case MsgType::kStop:
    case MsgType::kPing:
      return 0;
    case MsgType::kHeartbeat:
    case MsgType::kPong:
      // A pong answers a liveness probe with the responder's commit
      // frontier (Heartbeat-shaped payload): recovery polls read it, so the
      // frame must carry it — a 0-byte pong would silently truncate the
      // frontier to zero on decode.
      return sizeof(Heartbeat);
    case MsgType::kClientRequest:
      return sizeof(ClientRequest);
    case MsgType::kClientReply:
      return sizeof(ClientReply);
    case MsgType::kTwoPcPrepare:
      return sizeof(TwoPcPrepare);
    case MsgType::kTwoPcPrepareAck:
    case MsgType::kTwoPcPrepareNack:
    case MsgType::kTwoPcCommit:
    case MsgType::kTwoPcCommitAck:
    case MsgType::kTwoPcRollback:
      return sizeof(TwoPcAck);
    case MsgType::kPhase1Req:
      return sizeof(Phase1Req);
    case MsgType::kPhase1Resp:
      return offsetof(Phase1Resp, proposals) +
             static_cast<std::size_t>(m.u.phase1_resp.num_proposals) * sizeof(Proposal);
    case MsgType::kPhase2Req:
      return sizeof(Phase2Req);
    case MsgType::kPhase2Acked:
      return sizeof(Phase2Acked);
    case MsgType::kNack:
      return sizeof(Nack);
    case MsgType::kOpxPrepareReq:
      return sizeof(OpxPrepareReq);
    case MsgType::kOpxPrepareResp:
      return offsetof(OpxPrepareResp, accepted) +
             static_cast<std::size_t>(m.u.opx_prepare_resp.num_accepted) * sizeof(Proposal);
    case MsgType::kOpxAcceptReq:
      return sizeof(OpxAcceptReq);
    case MsgType::kOpxAbandon:
      return sizeof(OpxAbandon);
    case MsgType::kOpxLearn:
      return sizeof(OpxLearn);
    case MsgType::kOpxCatchupReq:
      return sizeof(OpxCatchupReq);
    case MsgType::kUtilPhase1Req:
      return sizeof(UtilPhase1Req);
    case MsgType::kUtilPhase1Resp:
      return offsetof(UtilPhase1Resp, accepted) + entry_bytes(m.u.util_phase1_resp.accepted);
    case MsgType::kUtilPhase2Req:
      return offsetof(UtilPhase2Req, entry) + entry_bytes(m.u.util_phase2_req.entry);
    case MsgType::kUtilAccepted:
      return offsetof(UtilAccepted, entry) + entry_bytes(m.u.util_accepted.entry);
    case MsgType::kUtilNack:
      return sizeof(UtilNack);
    case MsgType::kPhase2BatchReq:
      return batch_bytes(m.u.phase2_batch_req);
    case MsgType::kPhase2BatchAcked:
      return batch_bytes(m.u.phase2_batch_acked);
    case MsgType::kPhase1BatchResp:
      return batch_bytes(m.u.phase1_batch_resp);
    case MsgType::kOpxBatchAcceptReq:
      return batch_bytes(m.u.opx_batch_accept_req);
    case MsgType::kOpxBatchLearn:
      return batch_bytes(m.u.opx_batch_learn);
    case MsgType::kOpxPrepareBatchResp:
      return batch_bytes(m.u.opx_prepare_batch_resp);
    case MsgType::kOpxWindowBody:
      return batch_bytes(m.u.opx_window_body);
    case MsgType::kOpxWindowFetchReq:
      return sizeof(OpxWindowFetchReq);
    case MsgType::kClientCmdBatch:
      return batch_bytes(m.u.client_cmd_batch);
    case MsgType::kOpxLearnRun:
      return batch_bytes(m.u.opx_learn_run);
    case MsgType::kLeaseGrant:
      return sizeof(LeaseGrant);
  }
  return sizeof(Message::Payload);  // unknown: be conservative
}

bool count_ok(std::int32_t n) { return n >= 0 && n <= kMaxProposalsPerMsg; }

bool known_type(MsgType t) {
  switch (t) {
    case MsgType::kNone:
    case MsgType::kStart:
    case MsgType::kStop:
    case MsgType::kHeartbeat:
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kClientRequest:
    case MsgType::kClientReply:
    case MsgType::kTwoPcPrepare:
    case MsgType::kTwoPcPrepareAck:
    case MsgType::kTwoPcPrepareNack:
    case MsgType::kTwoPcCommit:
    case MsgType::kTwoPcCommitAck:
    case MsgType::kTwoPcRollback:
    case MsgType::kPhase1Req:
    case MsgType::kPhase1Resp:
    case MsgType::kPhase2Req:
    case MsgType::kPhase2Acked:
    case MsgType::kNack:
    case MsgType::kOpxPrepareReq:
    case MsgType::kOpxPrepareResp:
    case MsgType::kOpxAcceptReq:
    case MsgType::kOpxAbandon:
    case MsgType::kOpxLearn:
    case MsgType::kOpxCatchupReq:
    case MsgType::kUtilPhase1Req:
    case MsgType::kUtilPhase1Resp:
    case MsgType::kUtilPhase2Req:
    case MsgType::kUtilAccepted:
    case MsgType::kUtilNack:
    case MsgType::kPhase2BatchReq:
    case MsgType::kPhase2BatchAcked:
    case MsgType::kPhase1BatchResp:
    case MsgType::kOpxBatchAcceptReq:
    case MsgType::kOpxBatchLearn:
    case MsgType::kOpxPrepareBatchResp:
    case MsgType::kOpxWindowBody:
    case MsgType::kOpxWindowFetchReq:
    case MsgType::kClientCmdBatch:
    case MsgType::kOpxLearnRun:
    case MsgType::kLeaseGrant:
      return true;
  }
  return false;
}

// A batched frame must carry at least 2 commands (count-1 values use the
// legacy single-command frames) and at most the compile-time ceiling.
bool batch_count_ok(std::int32_t n) { return n >= 2 && n <= kMaxCommandsPerBatch; }

bool entry_ok(const UtilityEntry& e) {
  if (!count_ok(e.num_proposals)) return false;
  if (e.num_batched < 0 || e.num_batched > kMaxBatchedPerEntry) return false;
  for (std::int32_t i = 0; i < e.num_batched; ++i) {
    if (!batch_count_ok(e.batched[i].count)) return false;
  }
  return true;
}

}  // namespace

std::size_t wire_size(const Message& m) { return kMessageHeaderBytes + payload_bytes(m); }

bool wire_validate(const Message& m, std::size_t bytes) {
  if (bytes < kMessageHeaderBytes) return false;
  if (!known_type(m.type)) return false;
  if (m.group < 0) return false;
  switch (m.type) {
    case MsgType::kPhase1Resp:
      if (!count_ok(m.u.phase1_resp.num_proposals)) return false;
      if (m.u.phase1_resp.num_batched < 0) return false;
      break;
    case MsgType::kOpxPrepareResp:
      if (!count_ok(m.u.opx_prepare_resp.num_accepted)) return false;
      if (m.u.opx_prepare_resp.num_batched < 0) return false;
      break;
    case MsgType::kUtilPhase1Resp:
      if (!entry_ok(m.u.util_phase1_resp.accepted)) return false;
      break;
    case MsgType::kUtilPhase2Req:
      if (!entry_ok(m.u.util_phase2_req.entry)) return false;
      break;
    case MsgType::kUtilAccepted:
      if (!entry_ok(m.u.util_accepted.entry)) return false;
      break;
    case MsgType::kPhase2BatchReq:
      if (!batch_count_ok(m.u.phase2_batch_req.count)) return false;
      break;
    case MsgType::kPhase2BatchAcked:
      if (!batch_count_ok(m.u.phase2_batch_acked.count)) return false;
      break;
    case MsgType::kPhase1BatchResp:
      if (!batch_count_ok(m.u.phase1_batch_resp.count)) return false;
      break;
    case MsgType::kOpxBatchAcceptReq:
      if (!batch_count_ok(m.u.opx_batch_accept_req.count)) return false;
      break;
    case MsgType::kOpxBatchLearn:
      if (!batch_count_ok(m.u.opx_batch_learn.count)) return false;
      break;
    case MsgType::kOpxPrepareBatchResp:
      if (!batch_count_ok(m.u.opx_prepare_batch_resp.count)) return false;
      break;
    case MsgType::kOpxWindowBody:
      if (!batch_count_ok(m.u.opx_window_body.count)) return false;
      break;
    case MsgType::kClientCmdBatch:
      // Tighter cap than the protocol batches: client runs stay inline.
      // count == 1 is legal (a coalescing window can close with one
      // command queued); senders still prefer the legacy kClientRequest
      // frame for singles, so default wire traffic is unchanged.
      if (m.u.client_cmd_batch.count < 1 ||
          m.u.client_cmd_batch.count > kMaxClientBatchCommands) {
        return false;
      }
      break;
    case MsgType::kOpxLearnRun:
      // Runs of 1 use the legacy kOpxLearn frame; the cap is the catch-up
      // window, tighter than the batch ceiling.
      if (m.u.opx_learn_run.count < 2 ||
          m.u.opx_learn_run.count > kMaxLearnRunCommands) {
        return false;
      }
      break;
    default:
      break;
  }
  return bytes >= wire_size(m);
}

}  // namespace ci::consensus
