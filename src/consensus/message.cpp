#include "consensus/message.hpp"

namespace ci::consensus {

namespace {

std::size_t entry_bytes(const UtilityEntry& e) {
  return offsetof(UtilityEntry, proposals) +
         static_cast<std::size_t>(e.num_proposals) * sizeof(Proposal);
}

std::size_t payload_bytes(const Message& m) {
  switch (m.type) {
    case MsgType::kNone:
    case MsgType::kStart:
    case MsgType::kStop:
    case MsgType::kPing:
    case MsgType::kPong:
      return 0;
    case MsgType::kHeartbeat:
      return sizeof(Heartbeat);
    case MsgType::kClientRequest:
      return sizeof(ClientRequest);
    case MsgType::kClientReply:
      return sizeof(ClientReply);
    case MsgType::kTwoPcPrepare:
      return sizeof(TwoPcPrepare);
    case MsgType::kTwoPcPrepareAck:
    case MsgType::kTwoPcPrepareNack:
    case MsgType::kTwoPcCommit:
    case MsgType::kTwoPcCommitAck:
    case MsgType::kTwoPcRollback:
      return sizeof(TwoPcAck);
    case MsgType::kPhase1Req:
      return sizeof(Phase1Req);
    case MsgType::kPhase1Resp:
      return offsetof(Phase1Resp, proposals) +
             static_cast<std::size_t>(m.u.phase1_resp.num_proposals) * sizeof(Proposal);
    case MsgType::kPhase2Req:
      return sizeof(Phase2Req);
    case MsgType::kPhase2Acked:
      return sizeof(Phase2Acked);
    case MsgType::kNack:
      return sizeof(Nack);
    case MsgType::kOpxPrepareReq:
      return sizeof(OpxPrepareReq);
    case MsgType::kOpxPrepareResp:
      return offsetof(OpxPrepareResp, accepted) +
             static_cast<std::size_t>(m.u.opx_prepare_resp.num_accepted) * sizeof(Proposal);
    case MsgType::kOpxAcceptReq:
      return sizeof(OpxAcceptReq);
    case MsgType::kOpxAbandon:
      return sizeof(OpxAbandon);
    case MsgType::kOpxLearn:
      return sizeof(OpxLearn);
    case MsgType::kOpxCatchupReq:
      return sizeof(OpxCatchupReq);
    case MsgType::kUtilPhase1Req:
      return sizeof(UtilPhase1Req);
    case MsgType::kUtilPhase1Resp:
      return offsetof(UtilPhase1Resp, accepted) + entry_bytes(m.u.util_phase1_resp.accepted);
    case MsgType::kUtilPhase2Req:
      return offsetof(UtilPhase2Req, entry) + entry_bytes(m.u.util_phase2_req.entry);
    case MsgType::kUtilAccepted:
      return offsetof(UtilAccepted, entry) + entry_bytes(m.u.util_accepted.entry);
    case MsgType::kUtilNack:
      return sizeof(UtilNack);
  }
  return sizeof(Message::Payload);  // unknown: be conservative
}

bool count_ok(std::int32_t n) { return n >= 0 && n <= kMaxProposalsPerMsg; }

bool known_type(MsgType t) {
  switch (t) {
    case MsgType::kNone:
    case MsgType::kStart:
    case MsgType::kStop:
    case MsgType::kHeartbeat:
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kClientRequest:
    case MsgType::kClientReply:
    case MsgType::kTwoPcPrepare:
    case MsgType::kTwoPcPrepareAck:
    case MsgType::kTwoPcPrepareNack:
    case MsgType::kTwoPcCommit:
    case MsgType::kTwoPcCommitAck:
    case MsgType::kTwoPcRollback:
    case MsgType::kPhase1Req:
    case MsgType::kPhase1Resp:
    case MsgType::kPhase2Req:
    case MsgType::kPhase2Acked:
    case MsgType::kNack:
    case MsgType::kOpxPrepareReq:
    case MsgType::kOpxPrepareResp:
    case MsgType::kOpxAcceptReq:
    case MsgType::kOpxAbandon:
    case MsgType::kOpxLearn:
    case MsgType::kOpxCatchupReq:
    case MsgType::kUtilPhase1Req:
    case MsgType::kUtilPhase1Resp:
    case MsgType::kUtilPhase2Req:
    case MsgType::kUtilAccepted:
    case MsgType::kUtilNack:
      return true;
  }
  return false;
}

}  // namespace

std::size_t wire_size(const Message& m) { return kMessageHeaderBytes + payload_bytes(m); }

bool wire_validate(const Message& m, std::size_t bytes) {
  if (bytes < kMessageHeaderBytes) return false;
  if (!known_type(m.type)) return false;
  if (m.group < 0) return false;
  switch (m.type) {
    case MsgType::kPhase1Resp:
      if (!count_ok(m.u.phase1_resp.num_proposals)) return false;
      break;
    case MsgType::kOpxPrepareResp:
      if (!count_ok(m.u.opx_prepare_resp.num_accepted)) return false;
      break;
    case MsgType::kUtilPhase1Resp:
      if (!count_ok(m.u.util_phase1_resp.accepted.num_proposals)) return false;
      break;
    case MsgType::kUtilPhase2Req:
      if (!count_ok(m.u.util_phase2_req.entry.num_proposals)) return false;
      break;
    case MsgType::kUtilAccepted:
      if (!count_ok(m.u.util_accepted.entry.num_proposals)) return false;
      break;
    default:
      break;
  }
  return bytes >= wire_size(m);
}

}  // namespace ci::consensus
