// Single-decree Synod building blocks shared by Basic-Paxos, Multi-Paxos
// and PaxosUtility: the acceptor cell (the subtle promise/accept rules) and
// the learner's majority counter.
#pragma once

#include <cstdint>
#include <map>

#include "consensus/types.hpp"

namespace ci::consensus {

// Acceptor state for one instance (or, for Multi-Paxos, the leadership-
// scoped promise plus per-instance accepted values).
template <typename V>
struct SynodAcceptor {
  ProposalNum promised;      // highest prepare seen (hpn)
  ProposalNum accepted_pn;   // ballot of the accepted value
  V accepted_value{};
  bool has_accepted = false;

  // Phase 1: promise not to accept ballots below pn. Returns true and
  // updates the promise iff pn is strictly greater than any prior promise.
  bool phase1(ProposalNum pn) {
    if (pn > promised) {
      promised = pn;
      return true;
    }
    return false;
  }

  // Phase 2: accept (pn, v) iff the promise allows it.
  bool phase2(ProposalNum pn, const V& v) {
    if (pn >= promised) {
      promised = pn;
      accepted_pn = pn;
      accepted_value = v;
      has_accepted = true;
      return true;
    }
    return false;
  }
};

// Learner-side counting: a value is chosen once a majority of acceptors
// accepted it at the same ballot.
class SynodLearner {
 public:
  // Records that `acceptor` accepted at `pn`. Returns true when this
  // acceptance completes a majority (fires exactly once per ballot).
  bool record(ProposalNum pn, NodeId acceptor, std::int32_t majority_size) {
    auto& mask = per_ballot_[pn];
    const std::uint64_t bit = 1ULL << acceptor;
    if ((mask & bit) != 0) return false;
    mask |= bit;
    return count_bits(mask) == majority_size;
  }

  bool has_majority(std::int32_t majority_size) const {
    for (const auto& [pn, mask] : per_ballot_) {
      if (count_bits(mask) >= majority_size) return true;
    }
    return false;
  }

 private:
  static std::int32_t count_bits(std::uint64_t m) { return static_cast<std::int32_t>(__builtin_popcountll(m)); }

  std::map<ProposalNum, std::uint64_t> per_ballot_;
};

}  // namespace ci::consensus
