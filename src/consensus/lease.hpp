// Leader-lease bookkeeping shared by the Multi-Paxos and 1Paxos engines
// (DESIGN.md §1f).
//
// The protocol rides the existing heartbeats: each heartbeat round carries a
// fresh lease_seq, and a follower that honors it replies with a kLeaseGrant
// echoing that seq — a promise not to start (or support) a takeover for
// lease_duration from its OWN receive time. The leader never compares
// cross-node clocks: it bounds each grant by the time IT sent the echoed
// heartbeat, minus lease_epsilon, so the promise holds whenever the
// follower's lease_duration does not elapse faster than the leader's
// lease_duration - lease_epsilon (bounded relative clock-rate skew).
//
// A leader holding unexpired grants from a majority of voters (itself
// included) owns the read fast path: Op::kRead / Op::kReadVersioned answered
// from the applied state machine with no log entry.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/time.hpp"
#include "consensus/engine.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

// Leader-side grant ledger: which followers promised support, until when (on
// the leader's clock).
class LeaseLedger {
 public:
  void configure(Nanos duration, Nanos epsilon) {
    duration_ = duration;
    epsilon_ = epsilon;
  }

  bool enabled() const { return duration_ > 0; }

  // Opens a renewal round: returns the lease_seq to stamp into this
  // heartbeat round and records the send time the echoes will be bound by.
  // Seq 0 is reserved for "leases disabled", so the counter skips it on wrap.
  std::uint32_t open_round(Nanos now) {
    if (++seq_ == 0) ++seq_;
    sent_[seq_] = now;
    // A grant can only echo a seq whose round-trip is still in flight; a
    // handful of rounds bounds the map under any reordering the transports
    // produce (an older echo is simply a weaker grant we decline to record).
    while (sent_.size() > kRoundsRemembered) sent_.erase(sent_.begin());
    return seq_;
  }

  // Records a grant echoing `seq`. The grant's expiry is the leader's OWN
  // send time of that round plus the follower's promise, discounted by
  // epsilon; a monotonic per-grantor maximum, so reordered echoes are safe.
  void on_grant(NodeId grantor, std::uint32_t seq) {
    auto it = sent_.find(seq);
    if (it == sent_.end()) return;  // round too old to bound — ignore
    const Nanos expiry = it->second + duration_ - epsilon_;
    Nanos& have = expiry_[grantor];
    if (expiry > have) have = expiry;
  }

  // Does the leader hold a quorum of unexpired grants at `now`? `voters` is
  // the electorate size (acceptor_count for Multi-Paxos, num_replicas for
  // 1Paxos); the leader's own vote is implicit when self_votes.
  bool held(Nanos now, std::int32_t voters, bool self_votes) const {
    if (!enabled()) return false;
    std::int32_t n = self_votes ? 1 : 0;
    for (const auto& [grantor, until] : expiry_) {
      if (until > now) ++n;
    }
    return n >= majority(voters);
  }

  // Count of currently-live grants (test introspection).
  std::int32_t live_grants(Nanos now) const {
    std::int32_t n = 0;
    for (const auto& [grantor, until] : expiry_) {
      if (until > now) ++n;
    }
    return n;
  }

  // Drop everything — on step-down or ballot change the old grants support a
  // dead regime (on_grant already can't resurrect them: sent_ is cleared).
  void reset() {
    sent_.clear();
    expiry_.clear();
  }

 private:
  static constexpr std::size_t kRoundsRemembered = 8;

  Nanos duration_ = 0;
  Nanos epsilon_ = 0;
  std::uint32_t seq_ = 0;
  std::map<std::uint32_t, Nanos> sent_;        // seq -> leader send time
  std::unordered_map<NodeId, Nanos> expiry_;   // grantor -> grant expiry
};

// Follower-side state: the one outstanding promise this node has made. While
// live, the follower must not begin a takeover nor promise to (or vote for)
// any candidate other than the grantee.
struct FollowerLease {
  NodeId to = kNoNode;
  Nanos until = 0;

  bool live(Nanos now) const { return to != kNoNode && now < until; }
  bool blocks(NodeId candidate, Nanos now) const {
    return live(now) && candidate != to;
  }
  void grant(NodeId leader, Nanos now, Nanos duration) {
    to = leader;
    until = now + duration;
  }
  void clear() {
    to = kNoNode;
    until = 0;
  }
};

}  // namespace ci::consensus
