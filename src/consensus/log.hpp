// The replicated command log: learned (decided) values by instance, plus an
// execution cursor over the contiguous prefix.
//
// Since the batching layer, the value of one instance is a Batch — an
// ordered run of 1..kMaxCommandsPerBatch commands. drain() fans a decided
// batch back out command by command, so execution, delivery reporting and
// client acks stay per-command everywhere above this class.
#pragma once

#include <deque>
#include <optional>

#include "common/check.hpp"
#include "consensus/batch.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

class ReplicatedLog {
 public:
  // Records the decided value for an instance. Learning the same instance
  // twice is legal (retries, catch-up) but the value must not change —
  // that is the consistency property all our protocols guarantee, so it is
  // enforced here as a hard invariant. Batches compare element-wise: a
  // batch differing in any command (or in length) is a different value.
  void learn(Instance in, const Batch& value) {
    CI_CHECK(in >= 0);
    CI_CHECK(!value.empty());
    const auto idx = static_cast<std::size_t>(in);
    if (idx >= entries_.size()) entries_.resize(idx + 1);
    if (entries_[idx].has_value()) {
      CI_CHECK_MSG(*entries_[idx] == value, "two different values learned for one instance");
      return;
    }
    entries_[idx] = value;
    while (first_gap_ < static_cast<Instance>(entries_.size()) &&
           entries_[static_cast<std::size_t>(first_gap_)].has_value()) {
      first_gap_++;
    }
  }

  void learn(Instance in, const Command& cmd) { learn(in, single_batch(cmd)); }

  bool is_learned(Instance in) const {
    return in >= 0 && in < static_cast<Instance>(entries_.size()) &&
           entries_[static_cast<std::size_t>(in)].has_value();
  }

  const Batch* get_batch(Instance in) const {
    if (!is_learned(in)) return nullptr;
    return &*entries_[static_cast<std::size_t>(in)];
  }

  // First command of the instance's value — the whole value in the
  // one-command-per-instance regime (single-command protocols and tests
  // read through this).
  const Command* get(Instance in) const {
    const Batch* b = get_batch(in);
    return b == nullptr ? nullptr : &b->front();
  }

  // First instance with no learned value; everything below is decided.
  Instance first_gap() const { return first_gap_; }

  // One past the highest learned instance.
  Instance end() const { return static_cast<Instance>(entries_.size()); }

  // Invokes f(instance, command) for every newly contiguous decided command
  // past the execution cursor — batched instances fan out in batch order —
  // advancing the cursor. This is where state machine application happens.
  template <typename F>
  void drain(F&& f) {
    while (executed_ < first_gap_) {
      const Batch& b = *entries_[static_cast<std::size_t>(executed_)];
      for (const Command& cmd : b) f(executed_, cmd);
      executed_++;
    }
  }

  Instance executed_prefix() const { return executed_; }

 private:
  std::deque<std::optional<Batch>> entries_;
  Instance first_gap_ = 0;
  Instance executed_ = 0;
};

}  // namespace ci::consensus
