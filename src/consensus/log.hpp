// The replicated command log: learned (decided) values by instance, plus an
// execution cursor over the contiguous prefix.
#pragma once

#include <deque>
#include <optional>

#include "common/check.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

class ReplicatedLog {
 public:
  // Records the decided value for an instance. Learning the same instance
  // twice is legal (retries, catch-up) but the value must not change —
  // that is the consistency property all our protocols guarantee, so it is
  // enforced here as a hard invariant.
  void learn(Instance in, const Command& cmd) {
    CI_CHECK(in >= 0);
    const auto idx = static_cast<std::size_t>(in);
    if (idx >= entries_.size()) entries_.resize(idx + 1);
    if (entries_[idx].has_value()) {
      CI_CHECK_MSG(*entries_[idx] == cmd, "two different values learned for one instance");
      return;
    }
    entries_[idx] = cmd;
    while (first_gap_ < static_cast<Instance>(entries_.size()) &&
           entries_[static_cast<std::size_t>(first_gap_)].has_value()) {
      first_gap_++;
    }
  }

  bool is_learned(Instance in) const {
    return in >= 0 && in < static_cast<Instance>(entries_.size()) &&
           entries_[static_cast<std::size_t>(in)].has_value();
  }

  const Command* get(Instance in) const {
    if (!is_learned(in)) return nullptr;
    return &*entries_[static_cast<std::size_t>(in)];
  }

  // First instance with no learned value; everything below is decided.
  Instance first_gap() const { return first_gap_; }

  // One past the highest learned instance.
  Instance end() const { return static_cast<Instance>(entries_.size()); }

  // Invokes f(instance, command) for every newly contiguous decided entry
  // past the execution cursor, advancing it. This is where state machine
  // application happens.
  template <typename F>
  void drain(F&& f) {
    while (executed_ < first_gap_) {
      f(executed_, *entries_[static_cast<std::size_t>(executed_)]);
      executed_++;
    }
  }

  Instance executed_prefix() const { return executed_; }

 private:
  std::deque<std::optional<Command>> entries_;
  Instance first_gap_ = 0;
  Instance executed_ = 0;
};

}  // namespace ci::consensus
