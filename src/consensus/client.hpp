// Closed-loop client engine (paper §7.1): send one request, wait for the
// commit ACK, optionally think, send the next. Clients re-target another
// replica when the presumed leader stops answering (§7.6: "once the clients
// detect the slow leader, they send their requests to other nodes").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/timeseries.hpp"
#include "consensus/engine.hpp"

namespace ci::consensus {

struct ClientConfig {
  EngineConfig base;
  NodeId initial_target = 0;              // the paper's clients start at core 0
  Nanos request_timeout = 2 * kMillisecond;
  Nanos think_time = 0;                   // §7.4 uses 2 ms between requests
  double read_fraction = 0.0;             // §7.5 read workloads
  std::uint64_t total_requests = 0;       // 0 = run until kStop
  bool auto_start = false;                // otherwise waits for kStart

  // Client-side coalescing (general-traffic counterpart of the leader's
  // batching knob): N > 1 turns each closed-loop round into N commands
  // shipped together in one kClientCmdBatch frame; the round completes when
  // every reply lands, and each command records its own latency. N = 1 is
  // the classic one-request loop, bit-identical on the wire. Bounded by
  // kMaxClientBatchCommands.
  std::int32_t coalesce = 1;

  // Joint deployments: called for read commands before going to the
  // network; returning true services the read from the co-located replica
  // (2PC-Joint local reads, §7.5).
  std::function<bool(const Command&, std::uint64_t*)> local_read;
};

class ClientEngine final : public Engine {
 public:
  explicit ClientEngine(const ClientConfig& cfg);

  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;
  NodeId believed_leader() const override { return target_; }

  // Counters are readable from other threads while the client runs (the
  // real-thread harness polls them); relaxed atomics, monotonic.
  std::uint64_t committed() const { return committed_.load(std::memory_order_relaxed); }
  std::uint64_t issued() const { return issued_.load(std::memory_order_relaxed); }
  std::uint64_t local_reads() const { return local_reads_.load(std::memory_order_relaxed); }
  std::uint64_t retries() const { return retries_; }
  bool done() const { return cfg_.total_requests != 0 && committed() >= cfg_.total_requests; }

  // Commit latency distribution (closed-loop, per request).
  const Histogram& latency() const { return latency_; }

  // Optional: commit timestamps for throughput-over-time plots (Fig. 11).
  void set_commit_series(TimeSeries* ts) { commit_series_ = ts; }

 private:
  // Max locally-serviced reads completed in one issue_next call; bounds the
  // work done inside a single event when reads never touch the network.
  static constexpr int kMaxLocalBurst = 32;

  void issue_next(Context& ctx);
  Command make_command();

  // Round mode (cfg_.coalesce > 1): issue a whole round in one frame /
  // complete it as replies land / degrade retries to legacy singles.
  void issue_round(Context& ctx);
  void on_round_reply(Context& ctx, const Message& m);
  void retry_round(Context& ctx, Nanos now);

  ClientConfig cfg_;
  Rng rng_;
  bool started_ = false;
  bool waiting_ = false;
  std::uint32_t current_seq_ = 0;
  Command current_cmd_;
  Nanos first_sent_ = 0;
  Nanos last_sent_ = 0;
  Nanos next_issue_at_ = 0;
  NodeId target_ = kNoNode;
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> issued_{0};
  std::atomic<std::uint64_t> local_reads_{0};
  std::uint64_t retries_ = 0;
  Histogram latency_;
  TimeSeries* commit_series_ = nullptr;

  // Round-mode state: the current round's commands and which still await a
  // reply (parallel vectors; round_open_ counts the undone ones).
  std::vector<Command> round_cmds_;
  std::vector<bool> round_done_;
  std::int32_t round_open_ = 0;
};

}  // namespace ci::consensus
