#include "consensus/basic_paxos.hpp"

#include <algorithm>

namespace ci::consensus {

namespace {

std::uint64_t client_key(const Command& cmd) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cmd.client)) << 32) | cmd.seq;
}

}  // namespace

BasicPaxosEngine::BasicPaxosEngine(const EngineConfig& cfg)
    : cfg_(cfg), executor_(cfg.state_machine), rng_(cfg.seed + static_cast<std::uint64_t>(cfg.self)) {}

void BasicPaxosEngine::start(Context&) {}

ProposalNum BasicPaxosEngine::next_ballot() {
  ballot_counter_++;
  return ProposalNum{ballot_counter_, cfg_.self};
}

void BasicPaxosEngine::on_message(Context& ctx, const Message& m) {
  switch (m.type) {
    case MsgType::kClientRequest:
      pending_.push_back(m.u.client_request.cmd);
      propose_next(ctx);
      return;
    case MsgType::kPhase1Req:
      handle_phase1_req(ctx, m);
      return;
    case MsgType::kPhase1Resp:
      handle_phase1_resp(ctx, m);
      return;
    case MsgType::kPhase2Req:
      handle_phase2_req(ctx, m);
      return;
    case MsgType::kPhase2Acked:
      handle_phase2_acked(ctx, m);
      return;
    case MsgType::kNack:
      handle_nack(ctx, m);
      return;
    default:
      return;
  }
}

void BasicPaxosEngine::tick(Context& ctx) {
  const Nanos now = ctx.now();
  for (auto& [in, p] : proposing_) {
    const Nanos budget = cfg_.retry_timeout * (1 + p.backoff_rounds);
    if (now - p.last_send < budget) continue;
    // Restart from phase 1 with a fresh ballot (covers lost messages and
    // lost contention alike).
    p.pn = next_ballot();
    p.promise_mask = 0;
    p.constrained = false;
    p.highest_accepted = ProposalNum{};
    p.value = p.own_value;
    p.phase = ProposerState::Phase::kPrepare;
    start_prepare(ctx, in, p);
  }
  propose_next(ctx);
}

void BasicPaxosEngine::propose_next(Context& ctx) {
  while (!pending_.empty() &&
         static_cast<std::int32_t>(proposing_.size()) < cfg_.pipeline_window) {
    Instance in = std::max(next_free_, log_.first_gap());
    while (log_.is_learned(in) || proposing_.count(in) != 0) in++;
    next_free_ = in;
    ProposerState p;
    p.own_value = pending_.front();
    pending_.pop_front();
    p.value = p.own_value;
    p.pn = next_ballot();
    if (p.own_value.client != kNoNode) advocated_[client_key(p.own_value)] = in;
    auto [it, inserted] = proposing_.emplace(in, p);
    start_prepare(ctx, in, it->second);
  }
}

void BasicPaxosEngine::start_prepare(Context& ctx, Instance in, ProposerState& p) {
  p.phase = ProposerState::Phase::kPrepare;
  p.last_send = ctx.now();
  for (NodeId r = 0; r < cfg_.num_replicas; ++r) {
    Message m(MsgType::kPhase1Req, ProtoId::kBasicPaxos, cfg_.self, r);
    m.u.phase1_req.pn = p.pn;
    m.u.phase1_req.from_instance = in;
    ctx.send(r, m);
  }
}

void BasicPaxosEngine::start_accept(Context& ctx, Instance in, ProposerState& p) {
  p.phase = ProposerState::Phase::kAccept;
  p.last_send = ctx.now();
  for (NodeId r = 0; r < cfg_.num_replicas; ++r) {
    Message m(MsgType::kPhase2Req, ProtoId::kBasicPaxos, cfg_.self, r);
    m.u.phase2_req.instance = in;
    m.u.phase2_req.pn = p.pn;
    m.u.phase2_req.value = p.value;
    ctx.send(r, m);
  }
}

void BasicPaxosEngine::handle_phase1_req(Context& ctx, const Message& m) {
  const Instance in = m.u.phase1_req.from_instance;
  const ProposalNum pn = m.u.phase1_req.pn;
  if (log_.is_learned(in)) {
    // Already decided: short-circuit with the chosen value so a lagging
    // proposer converges instead of fighting settled history.
    Message acked(MsgType::kPhase2Acked, ProtoId::kBasicPaxos, cfg_.self, m.src);
    acked.u.phase2_acked.instance = in;
    acked.u.phase2_acked.pn = ProposalNum{};  // flagging "decided"
    acked.u.phase2_acked.value = *log_.get(in);
    acked.flags = 1;  // decided marker
    ctx.send(m.src, acked);
    return;
  }
  auto& cell = acceptors_[in];
  if (cell.phase1(pn)) {
    Message resp(MsgType::kPhase1Resp, ProtoId::kBasicPaxos, cfg_.self, m.src);
    resp.u.phase1_resp.pn = pn;
    if (cell.has_accepted) {
      resp.u.phase1_resp.num_proposals = 1;
      resp.u.phase1_resp.proposals[0] = Proposal{in, cell.accepted_pn, cell.accepted_value};
    }
    ctx.send(m.src, resp);
  } else {
    Message nack(MsgType::kNack, ProtoId::kBasicPaxos, cfg_.self, m.src);
    nack.u.nack.instance = in;
    nack.u.nack.higher_pn = cell.promised;
    ctx.send(m.src, nack);
  }
}

void BasicPaxosEngine::handle_phase1_resp(Context& ctx, const Message& m) {
  // Basic-Paxos phase-1 responses carry at most one proposal (this
  // instance's); the instance rides in proposals[0] when present, else we
  // match by ballot.
  const ProposalNum pn = m.u.phase1_resp.pn;
  for (auto& [in, p] : proposing_) {
    if (p.phase != ProposerState::Phase::kPrepare || !(p.pn == pn)) continue;
    p.promise_mask |= 1ULL << m.src;
    if (m.u.phase1_resp.num_proposals > 0) {
      const Proposal& prop = m.u.phase1_resp.proposals[0];
      if (prop.pn > p.highest_accepted) {
        p.highest_accepted = prop.pn;
        p.value = prop.value;
        p.constrained = true;
      }
    }
    if (__builtin_popcountll(p.promise_mask) >= majority(cfg_.num_replicas)) {
      start_accept(ctx, in, p);
    }
    return;
  }
}

void BasicPaxosEngine::handle_phase2_req(Context& ctx, const Message& m) {
  const Instance in = m.u.phase2_req.instance;
  const ProposalNum pn = m.u.phase2_req.pn;
  if (log_.is_learned(in)) {
    Message acked(MsgType::kPhase2Acked, ProtoId::kBasicPaxos, cfg_.self, m.src);
    acked.u.phase2_acked.instance = in;
    acked.u.phase2_acked.value = *log_.get(in);
    acked.flags = 1;
    ctx.send(m.src, acked);
    return;
  }
  auto& cell = acceptors_[in];
  if (cell.phase2(pn, m.u.phase2_req.value)) {
    // Accepted: broadcast to all learners (every replica).
    for (NodeId r = 0; r < cfg_.num_replicas; ++r) {
      Message acked(MsgType::kPhase2Acked, ProtoId::kBasicPaxos, cfg_.self, r);
      acked.u.phase2_acked.instance = in;
      acked.u.phase2_acked.pn = pn;
      acked.u.phase2_acked.value = m.u.phase2_req.value;
      ctx.send(r, acked);
    }
  } else {
    Message nack(MsgType::kNack, ProtoId::kBasicPaxos, cfg_.self, m.src);
    nack.u.nack.instance = in;
    nack.u.nack.higher_pn = cell.promised;
    ctx.send(m.src, nack);
  }
}

void BasicPaxosEngine::handle_phase2_acked(Context& ctx, const Message& m) {
  const Instance in = m.u.phase2_acked.instance;
  if (log_.is_learned(in)) return;
  if (m.flags == 1) {
    // Decided-value catch-up (not an acceptance count).
    learn(ctx, in, m.u.phase2_acked.value);
    return;
  }
  auto& learner = learners_[in];
  if (learner.record(m.u.phase2_acked.pn, m.src, majority(cfg_.num_replicas))) {
    learn(ctx, in, m.u.phase2_acked.value);
  }
}

void BasicPaxosEngine::handle_nack(Context& ctx, const Message& m) {
  const Instance in = m.u.nack.instance;
  auto it = proposing_.find(in);
  if (it == proposing_.end()) return;
  ProposerState& p = it->second;
  ballot_counter_ = std::max(ballot_counter_, m.u.nack.higher_pn.counter);
  // Randomized backoff (in retry-timeout units) to break livelock between
  // dueling proposers.
  p.backoff_rounds = static_cast<std::int64_t>(rng_.next_below(3));
  p.last_send = ctx.now();             // restart happens in tick()
  p.phase = ProposerState::Phase::kPrepare;
  p.promise_mask = 0;
}

void BasicPaxosEngine::learn(Context& ctx, Instance in, const Command& cmd) {
  log_.learn(in, cmd);
  acceptors_.erase(in);
  learners_.erase(in);
  auto it = proposing_.find(in);
  if (it != proposing_.end()) {
    if (!(cmd == it->second.own_value)) {
      // Lost the instance to a competing proposer: re-advocate our command
      // at a later instance.
      pending_.push_front(it->second.own_value);
    }
    proposing_.erase(it);
  }
  log_.drain([&](Instance din, const Command& dcmd) {
    const Executor::Applied applied = executor_.apply(dcmd);
    ctx.deliver(din, dcmd);
    auto adv = advocated_.find(client_key(dcmd));
    if (adv != advocated_.end()) {
      Message reply(MsgType::kClientReply, ProtoId::kClient, cfg_.self, dcmd.client);
      reply.u.client_reply.seq = dcmd.seq;
      reply.u.client_reply.ok = 1;
      reply.u.client_reply.instance = din;
      reply.u.client_reply.result = applied.result;
      reply.u.client_reply.leader_hint = cfg_.self;
      ctx.send(dcmd.client, reply);
      advocated_.erase(adv);
    }
  });
  propose_next(ctx);
}

}  // namespace ci::consensus
