#include "consensus/wire_codec.hpp"

#include <cstring>

#include "common/check.hpp"

namespace ci::wire {

using consensus::Command;
using consensus::CommandPool;
using consensus::CommandRun;
using consensus::kMaxCommandsPerBatch;
using consensus::kMessageHeaderBytes;
using consensus::Message;
using consensus::MsgType;

namespace {

// The batched payloads all follow one shape: fixed fields, a count, and a
// CommandRun. This view erases the per-type struct so encode/decode handle
// them uniformly; fixed is the payload-relative offset of the run (pinned
// by static_asserts in message.hpp). min_count/max_count bound the legal
// run per type: protocol batches need >= 2 (singles use legacy frames),
// client coalescing tolerates 1, learn runs cap at the catch-up window.
struct RunView {
  std::size_t fixed = 0;
  CommandRun* run = nullptr;
  std::int32_t count = 0;
  std::int32_t min_count = 2;
  std::int32_t max_count = kMaxCommandsPerBatch;
};

// Non-const so decode can assign into the run; encode uses it read-only.
bool run_view(Message& m, RunView* v) {
  switch (m.type) {
    case MsgType::kPhase2BatchReq:
      *v = {offsetof(consensus::Phase2BatchReq, run), &m.u.phase2_batch_req.run,
            m.u.phase2_batch_req.count};
      return true;
    case MsgType::kPhase2BatchAcked:
      *v = {offsetof(consensus::Phase2BatchAcked, run), &m.u.phase2_batch_acked.run,
            m.u.phase2_batch_acked.count};
      return true;
    case MsgType::kPhase1BatchResp:
      *v = {offsetof(consensus::Phase1BatchResp, run), &m.u.phase1_batch_resp.run,
            m.u.phase1_batch_resp.count};
      return true;
    case MsgType::kOpxBatchAcceptReq:
      *v = {offsetof(consensus::OpxBatchAcceptReq, run), &m.u.opx_batch_accept_req.run,
            m.u.opx_batch_accept_req.count};
      return true;
    case MsgType::kOpxBatchLearn:
      *v = {offsetof(consensus::OpxBatchLearn, run), &m.u.opx_batch_learn.run,
            m.u.opx_batch_learn.count};
      return true;
    case MsgType::kOpxPrepareBatchResp:
      *v = {offsetof(consensus::OpxPrepareBatchResp, run), &m.u.opx_prepare_batch_resp.run,
            m.u.opx_prepare_batch_resp.count};
      return true;
    case MsgType::kOpxWindowBody:
      *v = {offsetof(consensus::OpxWindowBody, run), &m.u.opx_window_body.run,
            m.u.opx_window_body.count};
      return true;
    case MsgType::kClientCmdBatch:
      *v = {offsetof(consensus::ClientCmdBatch, run), &m.u.client_cmd_batch.run,
            m.u.client_cmd_batch.count, /*min_count=*/1, consensus::kMaxClientBatchCommands};
      return true;
    case MsgType::kOpxLearnRun:
      *v = {offsetof(consensus::OpxLearnRun, run), &m.u.opx_learn_run.run,
            m.u.opx_learn_run.count, /*min_count=*/2, consensus::kMaxLearnRunCommands};
      return true;
    default:
      return false;
  }
}

}  // namespace

CopyStats& copy_stats() {
  thread_local CopyStats stats;
  return stats;
}

void BufferWriter::do_append(const void* data, std::size_t n) {
  std::memcpy(buf_ + n_, data, n);
  n_ += static_cast<std::uint32_t>(n);
}

std::uint32_t encode_into(const Message& m, FrameWriter& w, consensus::NodeId src,
                          consensus::NodeId dst) {
  // The stamped header is rebuilt on the stack (16 bytes) so the source
  // Message stays const and no destination fix-up pass is needed.
  unsigned char hdr[kMessageHeaderBytes];
  std::memcpy(hdr, &m, kMessageHeaderBytes);
  std::memcpy(hdr + offsetof(Message, src), &src, sizeof(src));
  std::memcpy(hdr + offsetof(Message, dst), &dst, sizeof(dst));
  const auto* body = reinterpret_cast<const unsigned char*>(&m) + kMessageHeaderBytes;
  RunView v;
  if (run_view(const_cast<Message&>(m), &v)) {
    CI_CHECK_MSG(v.count >= v.min_count && v.count <= v.max_count,
                 "encoding a batched frame with a bogus count");
    const std::size_t cmds = static_cast<std::size_t>(v.count) * sizeof(Command);
    w.append(hdr, kMessageHeaderBytes);
    w.append(body, v.fixed);
    // Pooled runs are read straight out of the pool block here — the one
    // and only copy of the body after the sender packed it.
    w.append(v.run->data(v.count), cmds);
    return static_cast<std::uint32_t>(kMessageHeaderBytes + v.fixed + cmds);
  }
  const std::size_t n = consensus::wire_size(m);
  CI_CHECK(n <= kMaxFrameBytes);
  w.append(hdr, kMessageHeaderBytes);
  w.append(body, n - kMessageHeaderBytes);
  return static_cast<std::uint32_t>(n);
}

std::uint32_t encode(const Message& m, unsigned char* buf) {
  BufferWriter w(buf);
  return encode_into(m, w, m.src, m.dst);
}

bool try_decode(const unsigned char* buf, std::size_t n, Message* out) {
  if (n < kMessageHeaderBytes || n > kMaxFrameBytes) return false;
  Message m;  // zero-filled payload: undelivered frame bytes read as zeroes
  std::memcpy(static_cast<void*>(&m), buf, kMessageHeaderBytes);
  RunView v;
  if (run_view(m, &v)) {
    const std::size_t fixed = kMessageHeaderBytes + v.fixed;
    if (n < fixed) return false;
    std::memcpy(static_cast<void*>(&m), buf, fixed);
    if (!run_view(m, &v)) return false;  // re-read with the real count
    if (v.count < v.min_count || v.count > v.max_count) return false;
    const std::size_t cmds = static_cast<std::size_t>(v.count) * sizeof(Command);
    if (n < fixed + cmds) return false;  // truncated command run
    if (!consensus::wire_validate(m, n)) return false;
    // All checks passed: materialize the run (may allocate a pool block the
    // caller now owns through *out).
    v.run->assign(reinterpret_cast<const Command*>(buf + fixed), v.count);
    *out = m;
    return true;
  }
  if (n > sizeof(Message)) return false;  // legacy frames are struct prefixes
  std::memcpy(static_cast<void*>(&m), buf, n);
  if (!consensus::wire_validate(m, n)) return false;
  *out = m;
  return true;
}

void release_body(const Message& m) {
  RunView v;
  if (!run_view(const_cast<Message&>(m), &v)) return;
  if (v.count > consensus::kInlineBatchCommands && v.run->ref) {
    CommandPool::local().release(v.run->ref);
  }
}

std::uint32_t max_frame_bytes(const consensus::BatchPolicy& policy) {
  const std::size_t batch_frame =
      kMessageHeaderBytes + kMaxBatchFixedBytes +
      static_cast<std::size_t>(policy.commands_cap()) * sizeof(Command);
  const std::size_t entry_frame = kMessageHeaderBytes +
                                  offsetof(consensus::UtilPhase1Resp, accepted) +
                                  sizeof(consensus::UtilityEntry);
  // Catch-up learn runs are policy-independent: even a batch=1 deployment
  // can coalesce up to kMaxLearnRunCommands decided singles in one frame.
  const std::size_t learn_run_frame =
      kMessageHeaderBytes + offsetof(consensus::OpxLearnRun, run) +
      static_cast<std::size_t>(consensus::kMaxLearnRunCommands) * sizeof(Command);
  return static_cast<std::uint32_t>(std::max({batch_frame, entry_frame, learn_run_frame}));
}

}  // namespace ci::wire
