// Shared identifiers and value types for all agreement protocols.
//
// Node ids follow the paper's deployment (§7.1): replicas occupy ids
// 0..R-1 (cores 0..2 in the paper), clients follow. In "joint" deployments
// (§7.4) every node is both a replica and a client.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

namespace ci::consensus {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

// Consensus group (shard). Every message belongs to exactly one group; a
// single-group deployment is group 0, so the zero-initialized default is
// always valid. Groups partition the instance space: instance i of group g
// and instance i of group g' are unrelated decisions.
using GroupId = std::int32_t;
inline constexpr GroupId kGroup0 = 0;

// Index in the replicated command log (a Paxos instance number / 2PC round).
using Instance = std::int64_t;
inline constexpr Instance kNoInstance = -1;

// Paxos proposal (ballot) number, totally ordered and unique per proposer.
struct ProposalNum {
  std::int64_t counter = 0;  // 0 = "none yet"
  NodeId node = kNoNode;

  friend auto operator<=>(const ProposalNum&, const ProposalNum&) = default;
  bool valid() const { return counter > 0; }
};

enum class Op : std::uint8_t {
  kNoop = 0,
  kWrite = 1,
  kRead = 2,

  // Cross-shard transaction participation (paper §2.2 layering: classic 2PC
  // across groups, each participant itself a non-blocking replicated group).
  // These ride the replicated logs like any other command; the Executor
  // routes them to the StateMachine's prepare/commit/abort hooks instead of
  // apply(). See DESIGN.md §1d for the message flow.
  kTxnPrepare = 3,  // lock cmd.key, stage cmd.value; result = vote (1 yes / 0 no)
  kTxnCommit = 4,   // apply cmd.txn's staged writes, release its locks
  kTxnAbort = 5,    // discard cmd.txn's staged writes, release its locks
  kTxnDecide = 6,   // home group only: record the decision (value 1=commit, 0=abort)
  // Home-group anchor: the coordinator's OWN prepare, the replicated
  // decision, AND the home group's final, composed into one replicated
  // command. The coordinator withholds the home group's first put until
  // every other vote is in, then ships it with the outcome so far in
  // reserved[0] (1 = all others voted yes): execute() prepares the anchor
  // key, combines the votes, records the decision, and applies or aborts —
  // one log entry where the classic flow replicated three (prepare, decide,
  // final). Result = 1 committed, 0 aborted.
  kTxnPrepareDecide = 7,

  // Read returning (value, per-key version) — the probe of the snapshot
  // read-only transaction (client/txn.hpp): round one collects values and
  // versions across groups, round two re-reads the versions; unchanged
  // versions prove the values formed one consistent cut. Serviced on the
  // lease fast path like kRead. NOT a txn op (no lock/stage hooks).
  kReadVersioned = 8,
};

// Identifies one cross-shard transaction: (coordinating session node, local
// counter), packed so it fits the Command padding below. 0 = "not a txn".
using TxnId = std::uint32_t;
inline constexpr TxnId kNoTxn = 0;
inline constexpr int kTxnSessionShift = 20;  // 12 bits session, 20 bits counter

inline TxnId make_txn_id(NodeId session, std::uint32_t counter) {
  return (static_cast<TxnId>(session & 0xFFF) << kTxnSessionShift) |
         (counter & ((1u << kTxnSessionShift) - 1));
}

// A client command — the value agreed on by consensus. The paper's
// evaluation uses empty payloads; we carry a small key/value so the examples
// can replicate real state with the very same protocol code.
struct Command {
  NodeId client = kNoNode;
  std::uint32_t seq = 0;  // client-local sequence number, for dedup/replies
  Op op = Op::kNoop;
  std::uint8_t reserved[3] = {0, 0, 0};
  // Transaction this command belongs to (kTxn* ops only; kNoTxn otherwise).
  // Occupies what used to be struct padding, so offsets of every other
  // field — and with them all wire frames carrying commands — are unchanged.
  TxnId txn = kNoTxn;
  std::uint64_t key = 0;
  std::uint64_t value = 0;

  friend bool operator==(const Command& a, const Command& b) {
    return a.client == b.client && a.seq == b.seq && a.op == b.op && a.txn == b.txn &&
           a.key == b.key && a.value == b.value;
  }
  bool is_noop() const { return op == Op::kNoop && client == kNoNode; }
  bool is_txn_op() const { return op >= Op::kTxnPrepare && op <= Op::kTxnPrepareDecide; }
};
static_assert(sizeof(Command) == 32);
static_assert(offsetof(Command, key) == 16 && offsetof(Command, value) == 24,
              "Command::txn must occupy the former padding, not shift fields");

// A (possibly uncommitted) proposal: the unit handed between acceptors and
// leaders during 1Paxos reconfiguration (paper §5.2).
struct Proposal {
  Instance instance = kNoInstance;
  ProposalNum pn;
  Command value;

  friend bool operator==(const Proposal& a, const Proposal& b) {
    return a.instance == b.instance && a.pn == b.pn && a.value == b.value;
  }
};

// Upper bound on proposals carried by one message. Kept at twice the default
// pipeline window so a reconfiguration entry can carry the union of two
// leaders' uncommitted windows (handover after handover) in one entry.
inline constexpr int kMaxProposalsPerMsg = 16;

// Compile-time ceiling on commands batched into one agreement instance
// (leader-side request batching; BatchPolicy::max_commands is clamped to
// it). Wire frames carry batches as count-prefixed Command runs, so only
// the used prefix travels.
inline constexpr std::int32_t kMaxCommandsPerBatch = 64;

// Commands a batch payload stores inside the Message itself. Longer runs
// live out of line in the CommandPool (command_pool.hpp) so sizeof(Message)
// stays within its budget; short runs stay self-contained, which also keeps
// hand-stepped test harnesses (which copy and re-inject messages) free of
// pool-custody concerns at small batch sizes.
inline constexpr std::int32_t kInlineBatchCommands = 8;

}  // namespace ci::consensus
