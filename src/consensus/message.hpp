// Wire messages for every protocol in the repository.
//
// One trivially-copyable Message struct carries a small header plus a union
// payload. The in-memory Message is deliberately decoupled from the wire:
// batched command runs longer than the inline buffer live out of line in
// the CommandPool (command_pool.hpp) and the wire::Codec (wire_codec.hpp)
// produces compact variable-length frames, so sizeof(Message) stays within
// the budget pinned below instead of growing with the worst-case batch.
// wire_size() returns the encoded frame size for a given message; every
// fast-path message fits a single 128-byte QC-libtask slot, while batched
// frames and the rare 1Paxos reconfiguration entries span a few fragments
// (paper §5.2: the backup-acceptor machinery stays off the fast path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/check.hpp"
#include "consensus/command_pool.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

enum class ProtoId : std::uint8_t {
  kNone = 0,
  kControl,   // start/stop/heartbeat/ping
  kClient,    // request/reply
  kTwoPc,
  kBasicPaxos,
  kMultiPaxos,
  kOnePaxos,
  kUtility,   // PaxosUtility configuration consensus
};

enum class MsgType : std::uint8_t {
  kNone = 0,

  // Control plane.
  kStart,        // load manager -> clients: begin issuing requests
  kStop,         // load manager -> everyone: drain and stop
  kHeartbeat,    // leader -> replicas (failure detection)
  kPing,         // liveness probe (leader -> active acceptor)
  kPong,

  // Client traffic.
  kClientRequest,
  kClientReply,

  // 2PC (§2.2).
  kTwoPcPrepare,
  kTwoPcPrepareAck,
  kTwoPcPrepareNack,
  kTwoPcCommit,
  kTwoPcCommitAck,
  kTwoPcRollback,

  // Paxos phases (Basic- and Multi-Paxos, §2.3).
  kPhase1Req,    // prepare request
  kPhase1Resp,   // promise, carrying accepted proposals
  kPhase2Req,    // accept request
  kPhase2Acked,  // acceptor -> learners broadcast
  kNack,         // reject with higher ballot

  // 1Paxos (§5, Appendix A).
  kOpxPrepareReq,
  kOpxPrepareResp,
  kOpxAcceptReq,
  kOpxAbandon,
  kOpxLearn,       // single active acceptor -> all learners
  kOpxCatchupReq,  // lagging learner -> leader: re-send decided values

  // PaxosUtility (§5.2).
  kUtilPhase1Req,
  kUtilPhase1Resp,
  kUtilPhase2Req,
  kUtilAccepted,
  kUtilNack,

  // Batched fast path (leader-side request batching; consensus/batch.hpp).
  // One instance deciding a run of >= 2 commands. Single-command batches
  // use the legacy frames above, so an unbatched deployment's wire traffic
  // is unchanged byte for byte.
  kPhase2BatchReq,    // Multi-Paxos accept carrying a batch
  kPhase2BatchAcked,  // acceptor broadcast / decided catch-up for a batch
  kOpxBatchAcceptReq,
  kOpxBatchLearn,

  // Batched recovery sidecars: one per batched accepted-but-undecided
  // instance, sent BEFORE the main phase-1 / prepare response, which counts
  // them (num_batched) so the adopter can tell a complete report from a
  // reordered or partially-lost one and wait (or retry) instead of
  // recovering half a window.
  kPhase1BatchResp,
  kOpxPrepareBatchResp,

  // Out-of-line batched-window bodies (1Paxos reconfiguration). An
  // AcceptorChange entry identifies its batched uncommitted values by
  // (instance, count, digest); the command bodies are published to every
  // replica as kOpxWindowBody frames when the change is proposed, and an
  // adopter missing one fetches it with kOpxWindowFetchReq (fetch-on-adopt,
  // DESIGN.md §1c). This keeps the consensus value itself small and
  // self-contained instead of appending a worst-case command pool to it.
  kOpxWindowBody,
  kOpxWindowFetchReq,

  // Client-side command batching (cross-shard transactions and session
  // coalescing, client/txn.hpp + client/async_client.hpp): one frame
  // carrying a run of 1..kInlineBatchCommands commands from one client to
  // one group's replica. The GroupDemuxEngine on the receiving node
  // decomposes the run into ordinary kClientRequest deliveries, so every
  // protocol engine handles the commands without knowing the frame exists;
  // replies stay per-command. Coalescing senders still emit single-command
  // submissions as legacy kClientRequest frames, so unbatched wire traffic
  // is unchanged (count == 1 is merely tolerated on decode).
  kClientCmdBatch,

  // Catch-up run (1Paxos): a run of count (>= 2) CONSECUTIVE instances
  // starting at first_instance, each of which decided exactly ONE command
  // (cmds[i] is the whole value of first_instance + i). Replaces the
  // per-instance kOpxLearn resends a lagging learner's kOpxCatchupReq used
  // to trigger: one header amortizes over the run. Instances that decided
  // multi-command batches still ride kOpxBatchLearn.
  kOpxLearnRun,

  // Leader-lease grant (follower -> leader): the follower promises not to
  // start (or support) a takeover for lease_duration after receiving the
  // heartbeat that carried lease_seq; the grant echoes that seq so the
  // leader can bound each grant by its OWN send time (no cross-node clock
  // is ever compared). Leases exist only when EngineConfig::lease_duration
  // > 0 — heartbeats then carry a nonzero lease_seq — so default
  // deployments emit no grants and their wire traffic is unchanged.
  kLeaseGrant,
};

// Message::flags bits.
inline constexpr std::uint16_t kFlagDecided = 1;        // Phase2Acked carries a decided value
inline constexpr std::uint16_t kFlagLeaderSuspect = 2;  // client re-sent after a timeout
inline constexpr std::uint16_t kFlagEstablishing = 4;   // heartbeat from a leader mid-recovery

// ---- Payloads ----

struct ClientRequest {
  Command cmd;
};

struct ClientReply {
  std::uint32_t seq = 0;
  std::uint8_t ok = 1;
  std::uint8_t reserved[3] = {0, 0, 0};
  std::uint64_t result = 0;     // read value for kRead commands
  Instance instance = kNoInstance;
  NodeId leader_hint = kNoNode;  // who the client should talk to
  // The answering replica's write epoch: a counter that advances on every
  // state-mutating command the replica applies. The session near-cache
  // (client/service_client.hpp) keys entries by (key, epoch) and treats any
  // entry older than the latest epoch seen from the group as invalid — the
  // ack stream IS the invalidation channel. 0 = epoch not reported (engines
  // start at 1). Occupies the struct's former trailing padding, so the wire
  // frame layout is unchanged.
  std::uint32_t lease_epoch = 0;
};
static_assert(sizeof(ClientReply) == 32 && offsetof(ClientReply, lease_epoch) == 28,
              "lease_epoch must occupy ClientReply's former trailing padding");

struct TwoPcPrepare {
  Instance instance = kNoInstance;
  Command cmd;
};

struct TwoPcAck {  // prepare-ack/nack, commit-ack, rollback, commit
  Instance instance = kNoInstance;
};

struct Heartbeat {
  NodeId leader = kNoNode;
  // Lease renewal round this heartbeat opens (0 = leases disabled, the
  // default — followers then send no kLeaseGrant replies and the frame's
  // bytes match the pre-lease system). Occupies former struct padding.
  std::uint32_t lease_seq = 0;
  Instance committed = kNoInstance;  // leader's contiguous commit prefix
  ProposalNum ballot;                // resolves dueling leaders by comparison
};
static_assert(offsetof(Heartbeat, committed) == 8,
              "lease_seq must occupy Heartbeat's former padding, not shift fields");

// Follower -> leader lease grant (kLeaseGrant): "I will not elect or
// support another leader for lease_duration from when I sent this." The
// leader discounts it by lease_epsilon against its own send time of the
// heartbeat `lease_seq` echoes, so the promise holds under bounded relative
// clock skew (DESIGN.md §1f).
struct LeaseGrant {
  NodeId grantor = kNoNode;
  std::uint32_t lease_seq = 0;  // echo of Heartbeat::lease_seq
  ProposalNum ballot;           // the leadership regime the grant supports
};

struct Phase1Req {
  ProposalNum pn;
  Instance from_instance = 0;  // promises cover [from_instance, inf)
};

struct Phase1Resp {
  ProposalNum pn;  // the promised ballot (echo)
  std::int32_t num_proposals = 0;
  // Batched accepted values travel as kPhase1BatchResp sidecars (one per
  // instance) sent before this message; this is their count. Occupies what
  // used to be padding, so the single-command wire layout is unchanged.
  std::int32_t num_batched = 0;
  Proposal proposals[kMaxProposalsPerMsg];  // accepted values >= from_instance
};

struct Phase2Req {
  Instance instance = kNoInstance;
  ProposalNum pn;
  Command value;
};

struct Phase2Acked {
  Instance instance = kNoInstance;
  ProposalNum pn;
  Command value;
};

struct Nack {
  Instance instance = kNoInstance;
  ProposalNum higher_pn;  // the ballot the acceptor is promised to
  NodeId leader_hint = kNoNode;
};

// 1Paxos payloads (Appendix A).

struct OpxPrepareReq {
  ProposalNum pn;
  std::uint8_t you_must_be_fresh = 0;
  std::uint8_t reserved[7] = {0};
};

struct OpxPrepareResp {
  NodeId acceptor = kNoNode;  // Ai: lets a proposer ignore stale responses
  ProposalNum pn;
  // The acceptor's allocation frontier: one past the highest instance it has
  // seen decided or accepted. The adopting leader must not allocate below it.
  Instance frontier = 0;
  std::int32_t num_accepted = 0;
  // Batched ap entries travel as kOpxPrepareBatchResp sidecars sent before
  // this message; this is their count (former padding, layout unchanged).
  std::int32_t num_batched = 0;
  Proposal accepted[kMaxProposalsPerMsg];  // ap: the acceptor's short-term memory
};

struct OpxAcceptReq {
  Instance instance = kNoInstance;
  ProposalNum pn;
  Command value;
};

struct OpxAbandon {
  ProposalNum higher_pn;
};

struct OpxLearn {
  Instance instance = kNoInstance;
  Command value;
};

struct OpxCatchupReq {
  Instance from_instance = 0;  // send decided values from here on
};

// ---- Batched payloads ----
// One instance whose value is a run of count (>= 2) commands. In memory the
// run is a CommandRun: inline up to kInlineBatchCommands, out of line in
// the CommandPool beyond that. On the wire the codec serializes the fixed
// fields (everything before the run — their offsets are pinned below, so
// frames are byte-identical to the fixed-size era) followed by exactly
// `count` commands: a batch of k costs one header plus k commands — the
// amortization the batching layer buys.

struct CommandRun {
  BodyRef ref;  // non-null iff the run is pooled (count > kInlineBatchCommands)
  Command inline_cmds[kInlineBatchCommands];

  const Command* data(std::int32_t count) const {
    return count <= kInlineBatchCommands ? inline_cmds : CommandPool::local().data(ref);
  }

  // Copies the run in; long runs allocate a pool block whose single
  // reference this message now owns (see wire_codec.hpp for the custody
  // rules: ctx.send() consumes it, transports release after delivery).
  void assign(const Command* src, std::int32_t count) {
    CI_CHECK(count >= 1 && count <= kMaxCommandsPerBatch);
    if (count <= kInlineBatchCommands) {
      std::memcpy(inline_cmds, src, static_cast<std::size_t>(count) * sizeof(Command));
      ref = BodyRef{};
    } else {
      ref = CommandPool::local().alloc(src, count);
    }
  }

  // Engine convenience: copy a whole batch in, returning its count for the
  // payload's count field. (Templated so this header stays independent of
  // batch.hpp, which defines the Batch vector type.)
  template <typename BatchT>
  std::int32_t pack(const BatchT& b) {
    const auto count = static_cast<std::int32_t>(b.size());
    assign(b.data(), count);
    return count;
  }
};

struct Phase2BatchReq {
  Instance instance = kNoInstance;
  ProposalNum pn;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

struct Phase2BatchAcked {
  Instance instance = kNoInstance;
  ProposalNum pn;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

// Recovery sidecar: one batched accepted-but-undecided instance reported
// during a Multi-Paxos takeover (single-command entries stay inline in the
// main Phase1Resp).
struct Phase1BatchResp {
  ProposalNum pn;           // the promised ballot (echo, matches the main resp)
  ProposalNum accepted_pn;  // ballot this batch was accepted at
  Instance instance = kNoInstance;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

struct OpxBatchAcceptReq {
  Instance instance = kNoInstance;
  ProposalNum pn;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

struct OpxBatchLearn {
  Instance instance = kNoInstance;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

// Recovery sidecar: one batched ap entry reported during a 1Paxos adoption.
struct OpxPrepareBatchResp {
  NodeId acceptor = kNoNode;  // Ai (mirrors the main resp's guard)
  std::int32_t count = 0;
  ProposalNum pn;  // the adoption ballot (echo, matches the main resp)
  Instance instance = kNoInstance;
  CommandRun run;
};

// A batched uncommitted value published out of line when an AcceptorChange
// entry is proposed: every replica stores the body keyed by (instance,
// digest) so a later adopter can resolve the entry's refs locally.
struct OpxWindowBody {
  Instance instance = kNoInstance;
  std::uint64_t digest = 0;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

// Fetch-on-adopt: an adopter missing a body named by an AcceptorChange ref
// asks the other replicas; any holder answers with kOpxWindowBody.
struct OpxWindowFetchReq {
  Instance instance = kNoInstance;
  std::uint64_t digest = 0;
};

// A run of client commands in one frame (kClientCmdBatch). Capped at the
// inline run capacity: the run never touches the CommandPool (sessions live
// on application threads; the pool is engine-thread-local) and the frame
// always fits an unbatched deployment's default SPSC queue slots, so
// clients may send it regardless of the group's BatchPolicy.
struct ClientCmdBatch {
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};
inline constexpr std::int32_t kMaxClientBatchCommands = kInlineBatchCommands;

// A catch-up run (kOpxLearnRun): `count` consecutive single-command decided
// instances, [first_instance, first_instance + count). Same shape as
// OpxBatchLearn — the meaning of the run differs (one command per instance,
// not one instance deciding the run). Capped at the catch-up window (16
// instances per kOpxCatchupReq), which keeps the frame under every
// deployment's max_frame_bytes() bound regardless of batch policy.
inline constexpr std::int32_t kMaxLearnRunCommands = 16;
struct OpxLearnRun {
  Instance first_instance = kNoInstance;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  CommandRun run;
};

// PaxosUtility: consensus entries are leader/acceptor changes, with the
// uncommitted proposals attached to AcceptorChange (paper §5.2).

// Capacity of a UtilityEntry's batched-ref array. Like the legacy proposals
// array (twice the default pipeline window), it holds the union of TWO
// uncommitted batched windows (handover after handover). Refs are a few
// dozen bytes each: the command bodies travel out of line (kOpxWindowBody),
// which is what keeps the entry — and with it sizeof(Message) — small.
inline constexpr std::int32_t kMaxBatchedPerEntry = kMaxProposalsPerMsg;

// One batched uncommitted instance inside a UtilityEntry: `count` commands
// whose bodies are named by `digest` (batch_digest in batch.hpp). The entry
// stays a self-contained consensus value — what was agreed is the (instance,
// count, digest) binding — while the bodies are published to every replica
// when the change is proposed and fetched on adopt if missing.
struct BatchedProposalRef {
  Instance instance = kNoInstance;
  std::int32_t count = 0;
  std::uint8_t reserved[4] = {0};
  std::uint64_t digest = 0;
};

struct UtilityEntry {
  enum class Kind : std::uint8_t { kNone = 0, kLeaderChange, kAcceptorChange };

  Kind kind = Kind::kNone;
  std::uint8_t reserved[3] = {0, 0, 0};
  NodeId leader = kNoNode;    // kLeaderChange: the announcing proposer
  NodeId acceptor = kNoNode;  // both kinds: the active acceptor
  // kAcceptorChange: the switching leader's allocation frontier — no
  // instance below it may ever be allocated to a new command. This is what
  // keeps a future leader with a lossy log from re-filling an instance that
  // already decided (the paper assumes lossless links; with loss the
  // frontier must travel with the configuration).
  Instance frontier = 0;
  std::int32_t num_proposals = 0;
  // Batched uncommitted values ride as refs in batched[] below; num_batched
  // occupies former padding, and entries with num_batched == 0 keep the
  // legacy wire size exactly (see entry_bytes in message.cpp).
  std::int32_t num_batched = 0;
  Proposal proposals[kMaxProposalsPerMsg];  // kAcceptorChange: single-command values
  BatchedProposalRef batched[kMaxBatchedPerEntry];

  friend bool operator==(const UtilityEntry& a, const UtilityEntry& b) {
    if (a.kind != b.kind || a.leader != b.leader || a.acceptor != b.acceptor ||
        a.frontier != b.frontier || a.num_proposals != b.num_proposals ||
        a.num_batched != b.num_batched) {
      return false;
    }
    for (std::int32_t i = 0; i < a.num_proposals; ++i) {
      if (!(a.proposals[i] == b.proposals[i])) return false;
    }
    // The digest IS the batched value's identity: two producers packing the
    // same window compute the same digest (batch_digest is order-sensitive
    // and padding-blind), so semantic equality survived the move out of line.
    for (std::int32_t i = 0; i < a.num_batched; ++i) {
      const BatchedProposalRef& ra = a.batched[i];
      const BatchedProposalRef& rb = b.batched[i];
      if (ra.instance != rb.instance || ra.count != rb.count || ra.digest != rb.digest) {
        return false;
      }
    }
    return true;
  }
};

struct UtilPhase1Req {
  Instance instance = kNoInstance;  // utility instances are per-slot (Basic-Paxos)
  ProposalNum pn;
};

struct UtilPhase1Resp {
  Instance instance = kNoInstance;
  ProposalNum pn;
  std::uint8_t has_accepted = 0;
  std::uint8_t reserved[7] = {0};
  ProposalNum accepted_pn;
  UtilityEntry accepted;
};

struct UtilPhase2Req {
  Instance instance = kNoInstance;
  ProposalNum pn;
  UtilityEntry entry;
};

struct UtilAccepted {
  Instance instance = kNoInstance;
  ProposalNum pn;
  UtilityEntry entry;
};

struct UtilNack {
  Instance instance = kNoInstance;
  ProposalNum higher_pn;
};

// ---- The message ----

struct Message {
  MsgType type = MsgType::kNone;
  ProtoId proto = ProtoId::kNone;
  std::uint16_t flags = 0;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  // Consensus group this message belongs to. Multi-group deployments run
  // several independent groups over one transport; a demux on each node
  // routes by this field. Single-group traffic is group 0, and the field
  // occupies what used to be header padding, so the wire layout of existing
  // deployments is unchanged.
  GroupId group = kGroup0;

  union Payload {
    ClientRequest client_request;
    ClientReply client_reply;
    TwoPcPrepare two_pc_prepare;
    TwoPcAck two_pc_ack;
    Heartbeat heartbeat;
    LeaseGrant lease_grant;
    Phase1Req phase1_req;
    Phase1Resp phase1_resp;
    Phase2Req phase2_req;
    Phase2Acked phase2_acked;
    Nack nack;
    OpxPrepareReq opx_prepare_req;
    OpxPrepareResp opx_prepare_resp;
    OpxAcceptReq opx_accept_req;
    OpxAbandon opx_abandon;
    OpxLearn opx_learn;
    OpxCatchupReq opx_catchup_req;
    UtilPhase1Req util_phase1_req;
    UtilPhase1Resp util_phase1_resp;
    UtilPhase2Req util_phase2_req;
    UtilAccepted util_accepted;
    UtilNack util_nack;
    Phase2BatchReq phase2_batch_req;
    Phase2BatchAcked phase2_batch_acked;
    Phase1BatchResp phase1_batch_resp;
    OpxBatchAcceptReq opx_batch_accept_req;
    OpxBatchLearn opx_batch_learn;
    OpxPrepareBatchResp opx_prepare_batch_resp;
    OpxWindowBody opx_window_body;
    OpxWindowFetchReq opx_window_fetch_req;
    ClientCmdBatch client_cmd_batch;
    OpxLearnRun opx_learn_run;

    // All members are trivially copyable PODs; zero-fill so serialized
    // padding bytes are deterministic.
    Payload() { std::memset(static_cast<void*>(this), 0, sizeof(*this)); }
  } u;

  Message() = default;
  Message(MsgType t, ProtoId p, NodeId from, NodeId to) : type(t), proto(p), src(from), dst(to) {}
};

static_assert(std::is_trivially_copyable_v<Message>);

inline constexpr std::size_t kMessageHeaderBytes = offsetof(Message, u);
// `group` must fit inside the pre-existing header padding (the union is
// 8-byte aligned); growing the header would change every wire frame.
static_assert(kMessageHeaderBytes == 16);

// The batching counters must occupy pre-existing struct padding: moving the
// proposal arrays would change the single-command wire frames that batching
// promises to keep byte-identical.
static_assert(offsetof(Phase1Resp, proposals) == 24);
static_assert(offsetof(OpxPrepareResp, accepted) == 40);
static_assert(offsetof(UtilityEntry, proposals) == 32);

// A batch frame's fixed fields end where its command run begins; pinning
// the run offsets pins the frame prefix the codec serializes, keeping
// batched wire frames byte-identical to the fixed-size era (the commands
// followed the fixed fields at these very offsets).
static_assert(offsetof(Phase2BatchReq, run) == 32);
static_assert(offsetof(Phase2BatchAcked, run) == 32);
static_assert(offsetof(Phase1BatchResp, run) == 48);
static_assert(offsetof(OpxBatchAcceptReq, run) == 32);
static_assert(offsetof(OpxBatchLearn, run) == 16);
static_assert(offsetof(OpxPrepareBatchResp, run) == 32);
static_assert(offsetof(ClientCmdBatch, run) == 8);
static_assert(offsetof(OpxLearnRun, run) == 16);

// The budget this refactor exists to enforce: every Message construction
// zero-fills sizeof(Message) bytes and every SPSC slot, rt task stack, and
// sim event is sized against it, so the worst-case union member must stay
// small. Regressions fail the build here (and the ctest wire-budget checks
// pin the per-frame encodings; see tests/consensus/wire_codec_test.cpp).
inline constexpr std::size_t kMessageBudgetBytes = 1536;
static_assert(sizeof(Message) <= kMessageBudgetBytes,
              "sizeof(Message) exceeds its budget: move payload out of line "
              "instead of growing the union");

// Encoded frame size of a message (header + compact payload). Variable-
// length payloads — proposal arrays, command runs — are truncated to their
// used prefix; out-of-line runs count their commands, not their refs.
std::size_t wire_size(const Message& m);

// True when the message's fixed fields look internally consistent; used by
// transports after deserialization.
bool wire_validate(const Message& m, std::size_t bytes);

}  // namespace ci::consensus
