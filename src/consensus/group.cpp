#include "consensus/group.hpp"

#include "common/check.hpp"

namespace ci::consensus {

void GroupRouting::map(NodeId local, NodeId global) {
  CI_CHECK(local >= 0 && global >= 0);
  if (local >= static_cast<NodeId>(local_to_global.size())) {
    local_to_global.resize(static_cast<std::size_t>(local) + 1, kNoNode);
  }
  if (global >= static_cast<NodeId>(global_to_local.size())) {
    global_to_local.resize(static_cast<std::size_t>(global) + 1, kNoNode);
  }
  CI_CHECK(local_to_global[static_cast<std::size_t>(local)] == kNoNode);
  CI_CHECK(global_to_local[static_cast<std::size_t>(global)] == kNoNode);
  local_to_global[static_cast<std::size_t>(local)] = global;
  global_to_local[static_cast<std::size_t>(global)] = local;
}

// The Context a hosted engine sees: group-local ids in, group-local ids
// out. Stack-allocated per call — it only borrows the transport context.
class GroupDemuxEngine::GroupContext final : public Context {
 public:
  GroupContext(Context& parent, const Port& port, GroupDemuxEngine* demux)
      : parent_(parent), port_(port), demux_(demux) {}

  NodeId self() const override { return port_.local_self; }
  Nanos now() const override { return parent_.now(); }

  void send(NodeId dst, const Message& m) override {
    const NodeId gdst = port_.routing->to_global(dst);
    CI_CHECK_MSG(gdst != kNoNode, "engine addressed a node outside its group");
    // Engines stamp src with their (local) self; transports re-stamp with
    // the sending node anyway, but keep the frame coherent for tests that
    // inspect it before it travels.
    const NodeId gsrc = port_.routing->to_global(m.src);
    const NodeId src = gsrc != kNoNode ? gsrc : m.src;
    if (gdst == m.dst && src == m.src && m.group == port_.g) {
      // Identity layout (the groups=1 common case): no rewrite, no copy —
      // the demux must not tax unsharded hot paths.
      parent_.send(gdst, m);
      return;
    }
    Message out = m;
    out.group = port_.g;
    out.src = src;
    out.dst = gdst;
    parent_.send(gdst, out);
  }

  void deliver(Instance in, const Command& cmd) override {
    if (demux_->hook_) demux_->hook_(port_.g, port_.local_self, in, cmd);
  }

 private:
  Context& parent_;
  const Port& port_;
  GroupDemuxEngine* demux_;
};

void GroupDemuxEngine::add_group(GroupId g, Engine* engine, NodeId local_self,
                                 const GroupRouting* routing) {
  CI_CHECK(g >= 0 && engine != nullptr && routing != nullptr);
  CI_CHECK(routing->to_global(local_self) == global_self_);
  CI_CHECK(find(g) == nullptr);
  if (g >= static_cast<GroupId>(by_group_.size())) {
    by_group_.resize(static_cast<std::size_t>(g) + 1, -1);
  }
  by_group_[static_cast<std::size_t>(g)] = static_cast<std::int32_t>(ports_.size());
  ports_.push_back(Port{g, engine, local_self, routing});
}

void GroupDemuxEngine::start(Context& ctx) {
  for (const Port& p : ports_) {
    GroupContext gctx(ctx, p, this);
    p.engine->start(gctx);
  }
}

void GroupDemuxEngine::on_message(Context& ctx, const Message& m) {
  const Port* p = find(m.group);
  if (p == nullptr) {
    unroutable_++;
    return;
  }
  GroupContext gctx(ctx, *p, this);
  // Out-of-group senders (e.g. the rt load manager's kStart) have no local
  // id; kNoNode is fine — engines never reply to control traffic.
  const NodeId lsrc = p->routing->to_local(m.src);
  if (m.type == MsgType::kClientCmdBatch) {
    // A client-side command run: decompose into ordinary kClientRequest
    // deliveries so the hosted engine — whichever protocol it speaks —
    // handles each command exactly as if it had arrived alone. Replies are
    // per-command through the usual path. The run is inline by construction
    // (kMaxClientBatchCommands <= kInlineBatchCommands), so no pool custody
    // changes hands here; the transport's post-delivery release is a no-op.
    const std::int32_t count = m.u.client_cmd_batch.count;
    const Command* cmds = m.u.client_cmd_batch.run.data(count);
    Message each(MsgType::kClientRequest, ProtoId::kClient,
                 lsrc != kNoNode ? lsrc : m.src, p->local_self);
    each.flags = m.flags;
    each.group = p->g;
    for (std::int32_t i = 0; i < count; ++i) {
      each.u.client_request.cmd = cmds[i];
      p->engine->on_message(gctx, each);
    }
    return;
  }
  if (lsrc == m.src && m.dst == p->local_self) {
    p->engine->on_message(gctx, m);  // identity layout: skip the copy
    return;
  }
  Message in = m;
  in.src = lsrc;
  in.dst = p->local_self;
  p->engine->on_message(gctx, in);
}

void GroupDemuxEngine::tick(Context& ctx) {
  for (const Port& p : ports_) {
    GroupContext gctx(ctx, p, this);
    p.engine->tick(gctx);
  }
}

NodeId GroupDemuxEngine::believed_leader() const {
  return ports_.empty() ? kNoNode : ports_.front().engine->believed_leader();
}

}  // namespace ci::consensus
