#include "consensus/two_pc.hpp"

namespace ci::consensus {

TwoPcEngine::TwoPcEngine(const TwoPcConfig& cfg)
    : cfg_(cfg), executor_(cfg.base.state_machine) {}

void TwoPcEngine::start(Context&) {}

void TwoPcEngine::on_message(Context& ctx, const Message& m) {
  switch (m.type) {
    case MsgType::kClientRequest:
      if (!is_coordinator()) {
        // 2PC has a fixed coordinator; redirect the client there.
        Message fwd = m;
        fwd.dst = cfg_.coordinator;
        ctx.send(cfg_.coordinator, fwd);
        return;
      }
      pending_.push_back(m.u.client_request.cmd);
      pump_rounds(ctx);
      return;
    case MsgType::kTwoPcPrepare:
      handle_prepare(ctx, m);
      return;
    case MsgType::kTwoPcPrepareAck: {
      auto it = rounds_.find(m.u.two_pc_ack.instance);
      if (it == rounds_.end() || it->second.phase != Phase::kPreparing) return;
      it->second.ack_mask |= 1ULL << m.src;
      if (it->second.ack_mask == all_replicas_mask()) broadcast_commit(ctx, it->first, it->second);
      return;
    }
    case MsgType::kTwoPcPrepareNack: {
      // Cannot happen with a single coordinator; handled for completeness:
      // roll the round back and retry later.
      auto it = rounds_.find(m.u.two_pc_ack.instance);
      if (it == rounds_.end() || it->second.phase != Phase::kPreparing) return;
      Message rb(MsgType::kTwoPcRollback, ProtoId::kTwoPc, cfg_.base.self, kNoNode);
      rb.u.two_pc_ack.instance = it->first;
      for (NodeId r = 0; r < cfg_.base.num_replicas; ++r) {
        if (r == cfg_.base.self) continue;
        rb.dst = r;
        ctx.send(r, rb);
      }
      prepared_.erase(it->first);
      pending_.push_front(it->second.cmd);
      rounds_.erase(it);
      return;
    }
    case MsgType::kTwoPcCommit:
      handle_commit(ctx, m);
      return;
    case MsgType::kTwoPcCommitAck: {
      auto it = rounds_.find(m.u.two_pc_ack.instance);
      if (it == rounds_.end() || it->second.phase != Phase::kCommitting) return;
      it->second.ack_mask |= 1ULL << m.src;
      if (it->second.ack_mask == all_replicas_mask()) {
        // Round fully acknowledged: reply to the client and free the slot.
        const Instance in = it->first;
        if (it->second.has_client) {
          const Command& cmd = it->second.cmd;
          Message reply(MsgType::kClientReply, ProtoId::kClient, cfg_.base.self, cmd.client);
          reply.u.client_reply.seq = cmd.seq;
          reply.u.client_reply.ok = 1;
          reply.u.client_reply.instance = in;
          reply.u.client_reply.leader_hint = cfg_.coordinator;
          auto rit = results_.find(in);
          reply.u.client_reply.result = rit == results_.end() ? 0 : rit->second;
          results_.erase(in);
          ctx.send(cmd.client, reply);
        }
        committed_rounds_++;
        rounds_.erase(it);
        pump_rounds(ctx);
      }
      return;
    }
    case MsgType::kTwoPcRollback:
      prepared_.erase(m.u.two_pc_ack.instance);
      return;
    default:
      return;  // not a 2PC message
  }
}

void TwoPcEngine::tick(Context& ctx) {
  if (!is_coordinator()) return;
  const Nanos now = ctx.now();
  for (auto& [in, r] : rounds_) {
    if (now - r.last_send < cfg_.base.retry_timeout) continue;
    r.last_send = now;
    const MsgType t =
        r.phase == Phase::kPreparing ? MsgType::kTwoPcPrepare : MsgType::kTwoPcCommit;
    for (NodeId peer = 0; peer < cfg_.base.num_replicas; ++peer) {
      if (peer == cfg_.base.self || (r.ack_mask & (1ULL << peer)) != 0) continue;
      Message m(t, ProtoId::kTwoPc, cfg_.base.self, peer);
      if (t == MsgType::kTwoPcPrepare) {
        m.u.two_pc_prepare.instance = in;
        m.u.two_pc_prepare.cmd = r.cmd;
      } else {
        m.u.two_pc_ack.instance = in;
      }
      ctx.send(peer, m);
    }
  }
}

void TwoPcEngine::pump_rounds(Context& ctx) {
  while (!pending_.empty() &&
         static_cast<std::int32_t>(rounds_.size()) < cfg_.base.pipeline_window) {
    const Command cmd = pending_.front();
    pending_.pop_front();
    begin_round(ctx, next_instance_++, cmd, /*has_client=*/cmd.client != kNoNode);
  }
}

void TwoPcEngine::begin_round(Context& ctx, Instance in, const Command& cmd, bool has_client) {
  Round r;
  r.cmd = cmd;
  r.has_client = has_client;
  r.last_send = ctx.now();
  r.ack_mask = 1ULL << cfg_.base.self;  // self-prepare succeeds locally
  prepared_.emplace(in, cmd);
  advocated_.emplace(in, cmd);
  rounds_.emplace(in, r);
  for (NodeId peer = 0; peer < cfg_.base.num_replicas; ++peer) {
    if (peer == cfg_.base.self) continue;
    Message m(MsgType::kTwoPcPrepare, ProtoId::kTwoPc, cfg_.base.self, peer);
    m.u.two_pc_prepare.instance = in;
    m.u.two_pc_prepare.cmd = cmd;
    ctx.send(peer, m);
  }
  // Single-replica degenerate deployment commits immediately.
  auto it = rounds_.find(in);
  if (it != rounds_.end() && it->second.ack_mask == all_replicas_mask()) {
    broadcast_commit(ctx, in, it->second);
  }
}

void TwoPcEngine::broadcast_commit(Context& ctx, Instance in, Round& r) {
  r.phase = Phase::kCommitting;
  r.ack_mask = 1ULL << cfg_.base.self;
  r.last_send = ctx.now();
  for (NodeId peer = 0; peer < cfg_.base.num_replicas; ++peer) {
    if (peer == cfg_.base.self) continue;
    Message m(MsgType::kTwoPcCommit, ProtoId::kTwoPc, cfg_.base.self, peer);
    m.u.two_pc_ack.instance = in;
    ctx.send(peer, m);
  }
  // The coordinator executes at the commit decision point.
  prepared_.erase(in);
  log_.learn(in, r.cmd);
  log_.drain([&](Instance din, const Command& dcmd) { on_executed(ctx, din, dcmd); });
  // Degenerate single-replica case: already fully acked.
  if (r.ack_mask == all_replicas_mask()) {
    const Round done = r;
    if (done.has_client) {
      Message reply(MsgType::kClientReply, ProtoId::kClient, cfg_.base.self, done.cmd.client);
      reply.u.client_reply.seq = done.cmd.seq;
      reply.u.client_reply.ok = 1;
      reply.u.client_reply.instance = in;
      reply.u.client_reply.leader_hint = cfg_.coordinator;
      auto rit = results_.find(in);
      reply.u.client_reply.result = rit == results_.end() ? 0 : rit->second;
      results_.erase(in);
      ctx.send(done.cmd.client, reply);
    }
    committed_rounds_++;
    rounds_.erase(in);
  }
}

void TwoPcEngine::handle_prepare(Context& ctx, const Message& m) {
  const Instance in = m.u.two_pc_prepare.instance;
  if (log_.is_learned(in)) {
    // Duplicate of an already committed round: the commit must have been
    // processed; re-ack it.
    Message ack(MsgType::kTwoPcCommitAck, ProtoId::kTwoPc, cfg_.base.self, m.src);
    ack.u.two_pc_ack.instance = in;
    ctx.send(m.src, ack);
    return;
  }
  auto [it, inserted] = prepared_.try_emplace(in, m.u.two_pc_prepare.cmd);
  if (!inserted && !(it->second == m.u.two_pc_prepare.cmd)) {
    // Locked by a different coordinator's command.
    Message nack(MsgType::kTwoPcPrepareNack, ProtoId::kTwoPc, cfg_.base.self, m.src);
    nack.u.two_pc_ack.instance = in;
    ctx.send(m.src, nack);
    return;
  }
  Message ack(MsgType::kTwoPcPrepareAck, ProtoId::kTwoPc, cfg_.base.self, m.src);
  ack.u.two_pc_ack.instance = in;
  ctx.send(m.src, ack);
}

void TwoPcEngine::handle_commit(Context& ctx, const Message& m) {
  const Instance in = m.u.two_pc_ack.instance;
  auto it = prepared_.find(in);
  if (it != prepared_.end()) {
    log_.learn(in, it->second);
    prepared_.erase(it);
    log_.drain([&](Instance din, const Command& dcmd) { on_executed(ctx, din, dcmd); });
  }
  // Ack even when this is a duplicate commit: the coordinator may be
  // retransmitting because the previous ack raced with the retry timer.
  Message ack(MsgType::kTwoPcCommitAck, ProtoId::kTwoPc, cfg_.base.self, m.src);
  ack.u.two_pc_ack.instance = in;
  ctx.send(m.src, ack);
}

void TwoPcEngine::on_executed(Context& ctx, Instance in, const Command& cmd) {
  const Executor::Applied applied = executor_.apply(cmd);
  ctx.deliver(in, cmd);
  if (is_coordinator() && advocated_.count(in) != 0) {
    results_[in] = applied.result;
    advocated_.erase(in);
  }
}

}  // namespace ci::consensus
