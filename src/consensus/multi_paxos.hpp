// Multi-Paxos (paper §2.3): collapsed roles with a stable leader that skips
// phase 1 for successive instances. The baseline the paper calls "the most
// efficient consensus protocol to date" in IP settings — and the protocol
// 1Paxos halves the message count of (Fig. 3).
//
// Acceptors broadcast their acceptance to every replica; a value is learned
// once a majority of acceptors accepted it. Followers detect a silent
// leader via heartbeat timeouts and take over with a higher ballot, running
// phase 1 over the un-decided window.
//
// `acceptor_count` (default: all replicas) shrinks the acceptor set for the
// acceptor-replication ablation (DESIGN.md A2): with k acceptors a value
// needs majority-of-k acceptances, trading message load for the fault
// tolerance the paper discusses in §4.3.
//
// With a batching policy (EngineConfig::batch) the leader packs pending
// client commands into multi-command instances: one accept / one acceptance
// broadcast decides a whole run, and the execution path fans it back out
// with one ack per command. Takeovers recover batched values through
// kPhase1BatchResp sidecars counted by the main response.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "consensus/engine.hpp"
#include "consensus/lease.hpp"
#include "consensus/log.hpp"
#include "consensus/state_machine.hpp"
#include "consensus/synod.hpp"

namespace ci::consensus {

struct MultiPaxosConfig {
  EngineConfig base;
  // Node that starts as the established leader (ballot pre-agreed across
  // replicas, matching the paper's steady-state measurements). kNoNode
  // forces a cold-start election.
  NodeId initial_leader = 0;
  // Size of the acceptor set (replicas [0, acceptor_count)); -1 = all.
  std::int32_t acceptor_count = -1;
};

class MultiPaxosEngine final : public Engine {
 public:
  explicit MultiPaxosEngine(const MultiPaxosConfig& cfg);

  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;
  NodeId believed_leader() const override { return current_leader_; }

  bool is_leader() const { return leader_; }
  const ReplicatedLog& log() const { return log_; }

  // Lease introspection (tests/reads): does this node hold the read fast
  // path at `now`, and its current cache epoch (count of applied mutations).
  bool holds_lease(Nanos now) const {
    return leader_ && lease_.held(now, acceptor_count(), is_acceptor(cfg_.base.self)) &&
           log_.first_gap() >= read_floor_;
  }
  std::uint32_t write_epoch() const { return write_epoch_; }
  std::uint64_t lease_reads() const { return lease_reads_; }

 private:
  struct Outstanding {
    Batch value;
    Nanos last_send = 0;
  };

  // An accepted-but-undecided value (what phase 1 must recover).
  struct AcceptedValue {
    ProposalNum pn;
    Batch value;
  };

  struct Takeover {
    ProposalNum pn;
    Instance from_instance = 0;
    std::uint64_t promise_mask = 0;
    std::map<Instance, AcceptedValue> recovered;  // highest-ballot accepted values
    // Per-acceptor report progress: the main Phase1Resp announces how many
    // batched sidecars it was preceded by; the acceptor only counts toward
    // the majority once all of them arrived (they may be reordered or lost
    // — a retry with a fresh ballot re-requests everything).
    struct Report {
      bool main = false;
      std::int32_t expect_batched = 0;
      std::int32_t seen_batched = 0;
    };
    std::map<NodeId, Report> reports;
    Nanos started = 0;
  };

  std::int32_t acceptor_count() const;
  bool is_acceptor(NodeId n) const { return n >= 0 && n < acceptor_count(); }
  ProposalNum next_ballot();
  void pump(Context& ctx);
  void send_accept(Context& ctx, Instance in, const Batch& value);
  void send_acked(Context& ctx, NodeId dst, Instance in, ProposalNum pn, const Batch& value,
                  bool decided);
  void begin_takeover(Context& ctx);
  void merge_recovered(Instance in, ProposalNum pn, const Batch& value);
  void maybe_count_promise(Context& ctx, NodeId acceptor);
  void finish_takeover(Context& ctx);
  void step_down(Context& ctx, NodeId new_leader);
  void forward_pending(Context& ctx);
  void handle_client_request(Context& ctx, const Message& m);
  void handle_phase1_req(Context& ctx, const Message& m);
  void handle_phase1_resp(Context& ctx, const Message& m);
  void handle_phase1_batch_resp(Context& ctx, const Message& m);
  void handle_phase2_req(Context& ctx, Instance in, ProposalNum pn, const Batch& value,
                         NodeId src);
  void handle_phase2_acked(Context& ctx, Instance in, ProposalNum pn, const Batch& value,
                           NodeId src, bool decided);
  void handle_nack(Context& ctx, const Message& m);
  void handle_heartbeat(Context& ctx, const Message& m);
  void handle_lease_grant(const Message& m);
  bool try_lease_read(Context& ctx, const Command& cmd);
  void learn(Context& ctx, Instance in, const Batch& value);

  MultiPaxosConfig cfg_;
  ReplicatedLog log_;
  Executor executor_;
  Rng rng_;

  // Leadership.
  bool leader_ = false;
  NodeId current_leader_ = kNoNode;
  ProposalNum my_ballot_;
  std::int64_t ballot_counter_ = 0;
  std::optional<Takeover> takeover_;

  // Acceptor.
  ProposalNum promised_;
  std::map<Instance, AcceptedValue> accepted_;  // un-decided accepted values

  // Learner.
  std::unordered_map<Instance, SynodLearner> learners_;

  // Proposer.
  Batcher pending_;
  std::map<Instance, Outstanding> outstanding_;
  Instance next_instance_ = 0;
  std::unordered_set<std::uint64_t> advocated_;

  // Reused single-command wrapper for the legacy-frame dispatch path, so
  // the unbatched regime stays allocation-free per message (the vector's
  // capacity persists across handlers; engines are single-threaded and the
  // handlers copy the value before any re-entry can occur).
  Batch scratch_;

  // Failure detection.
  Nanos last_leader_contact_ = 0;
  Nanos last_heartbeat_sent_ = 0;
  Nanos fd_jitter_ = 0;

  // Leader leases (DESIGN.md §1f; off unless cfg_.base.lease_duration > 0).
  LeaseLedger lease_;      // leader side: grants followers gave us
  FollowerLease granted_;  // follower side: our outstanding promise
  // Reads are only served from local state once every instance the previous
  // regime may have decided is applied here: set to max_recovered + 1 at
  // takeover (0 for a pre-agreed initial leader — nothing precedes it).
  Instance read_floor_ = 0;
  // Counts applied state-mutating commands; stamped into every ClientReply
  // as the near-cache epoch. Deterministic across replicas (derived from the
  // applied log prefix). Starts at 1 — epoch 0 means "not reported". On u32
  // wrap it skips 0; a client whose cached entry survives a full 4B-write
  // wrap could see a false hit, which at any realistic rate needs a session
  // idle for hours against a saturated group (documented, accepted).
  std::uint32_t write_epoch_ = 1;
  std::uint64_t lease_reads_ = 0;  // fast-path reads served (introspection)
};

}  // namespace ci::consensus
