#include "consensus/command_pool.hpp"

#include <cstring>

#include "common/check.hpp"

namespace ci::consensus {

namespace {

// (index, generation) packing: the index addresses blocks_, the generation
// guards against stale refs to a recycled block.
constexpr std::uint64_t make_bits(std::uint32_t index, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(index) << 32) | generation;
}
constexpr std::uint32_t index_of(BodyRef ref) {
  return static_cast<std::uint32_t>(ref.bits >> 32);
}
constexpr std::uint32_t generation_of(BodyRef ref) {
  return static_cast<std::uint32_t>(ref.bits & 0xFFFFFFFFu);
}

}  // namespace

CommandPool& CommandPool::local() {
  thread_local CommandPool pool;
  return pool;
}

CommandPool::Block& CommandPool::checked_block(BodyRef ref) {
  CI_CHECK_MSG(ref.bits != 0, "null command-pool ref");
  const std::uint32_t idx = index_of(ref);
  CI_CHECK_MSG(idx < blocks_.size(), "command-pool ref out of range");
  Block& b = blocks_[idx];
  CI_CHECK_MSG(b.generation == generation_of(ref) && b.refs > 0,
               "stale command-pool ref (block was released)");
  return b;
}

const CommandPool::Block& CommandPool::checked_block(BodyRef ref) const {
  return const_cast<CommandPool*>(this)->checked_block(ref);
}

BodyRef CommandPool::alloc(const Command* src, std::int32_t count) {
  CI_CHECK(src != nullptr && count >= 1 && count <= kMaxCommandsPerBatch);
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(blocks_.size());
    blocks_.emplace_back();
  }
  Block& b = blocks_[idx];
  b.refs = 1;
  std::memcpy(b.cmds, src, static_cast<std::size_t>(count) * sizeof(Command));
  live_++;
  return BodyRef{make_bits(idx, b.generation)};
}

const Command* CommandPool::data(BodyRef ref) const { return checked_block(ref).cmds; }

void CommandPool::retain(BodyRef ref) { checked_block(ref).refs++; }

void CommandPool::release(BodyRef ref) {
  Block& b = checked_block(ref);
  if (--b.refs == 0) {
    b.generation++;
    free_.push_back(index_of(ref));
    live_--;
  }
}

}  // namespace ci::consensus
