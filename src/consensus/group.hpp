// Multi-group plumbing: many independent consensus groups over one
// transport.
//
// Engines are written for a single group — they address peers with dense
// local ids 0..R-1 (+ client ids after) and know nothing about sharding.
// A GroupDemuxEngine sits between the transport and one node's engines:
//   * outgoing sends are stamped with the group id and translated from the
//     group's local id space to transport (global) node ids;
//   * incoming messages are routed by Message::group to the hosted engine
//     and translated back to local ids before the engine sees them.
// One demux hosts one engine per group mapped to its node — one under
// group-major/interleaved placement, one per group when replicas of every
// group are co-located on the same node.
//
// Translation is a per-group GroupRouting table (local<->global), shared by
// every demux of the group and owned by whoever laid the groups out
// (core::ShardedDeployment).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "consensus/engine.hpp"

namespace ci::consensus {

// local<->global node id maps for one group. Built once during layout;
// read-only on the message path.
struct GroupRouting {
  std::vector<NodeId> local_to_global;
  std::vector<NodeId> global_to_local;

  void map(NodeId local, NodeId global);
  NodeId to_global(NodeId local) const {
    return local >= 0 && local < static_cast<NodeId>(local_to_global.size())
               ? local_to_global[static_cast<std::size_t>(local)]
               : kNoNode;
  }
  NodeId to_local(NodeId global) const {
    return global >= 0 && global < static_cast<NodeId>(global_to_local.size())
               ? global_to_local[static_cast<std::size_t>(global)]
               : kNoNode;
  }
};

class GroupDemuxEngine final : public Engine {
 public:
  // (group, local node id, instance, command) of one state-machine delivery
  // from a hosted engine. Runtimes route this to the group's agreement
  // recorder (sim: live; rt: via a per-node log read after join).
  using DeliverHook = std::function<void(GroupId g, NodeId local, Instance in,
                                         const Command& cmd)>;

  explicit GroupDemuxEngine(NodeId global_self) : global_self_(global_self) {}

  // Hosts `engine` as group `g`'s participant `local_self` on this node.
  // `routing` must outlive the demux and already map local_self to this
  // demux's global node id.
  void add_group(GroupId g, Engine* engine, NodeId local_self, const GroupRouting* routing);

  void set_deliver_hook(DeliverHook hook) { hook_ = std::move(hook); }

  NodeId global_self() const { return global_self_; }
  Engine* engine_for(GroupId g) const {
    const Port* p = find(g);
    return p ? p->engine : nullptr;
  }
  // Messages whose group has no engine on this node (routing bug or stray
  // traffic); dropped rather than delivered to the wrong group.
  std::uint64_t unroutable() const { return unroutable_; }

  // ---- Engine interface (the transport drives these) ----
  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;
  // The first hosted engine's view, as a LOCAL id (single-group nodes host
  // exactly one engine, so this matches the pre-sharding behavior).
  NodeId believed_leader() const override;

 private:
  struct Port {
    GroupId g = kGroup0;
    Engine* engine = nullptr;
    NodeId local_self = kNoNode;
    const GroupRouting* routing = nullptr;
  };

  class GroupContext;

  const Port* find(GroupId g) const {
    return g >= 0 && g < static_cast<GroupId>(by_group_.size()) &&
                   by_group_[static_cast<std::size_t>(g)] >= 0
               ? &ports_[static_cast<std::size_t>(by_group_[static_cast<std::size_t>(g)])]
               : nullptr;
  }

  NodeId global_self_;
  std::vector<Port> ports_;             // in add_group order
  std::vector<std::int32_t> by_group_;  // group id -> index into ports_ (-1 absent)
  DeliverHook hook_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace ci::consensus
