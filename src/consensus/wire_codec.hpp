// wire::Codec — the one seam between in-memory Messages and wire frames.
//
// A frame is the 16-byte message header followed by the payload's compact
// encoding: fixed fields, then any variable-length tail (proposal arrays,
// command runs) truncated to its used prefix. For every message whose
// payload is stored contiguously in the Message this is a plain prefix copy
// — bit-identical to the fixed-size-Message era, which is what keeps
// batch=1 deployments byte-stable on the wire. Batched payloads differ only
// in memory (their command run may live in the CommandPool): the codec
// serializes the fixed fields at their pinned offsets and appends the
// commands exactly where the old inline array sat, so batched frames are
// byte-identical too.
//
// Both backends speak frames through this codec: the rt transport encodes
// into SPSC slots (rt/wire.hpp delegates here), the simulator charges
// frame_size() bytes per send, and a future LAN-socket backend would write
// these very frames to a socket — the codec is the seam it plugs into.
//
// Custody rules for pooled bodies (CommandRun::ref, thread-local pool):
//   * building a batched message (CommandRun::assign / pack_batch) hands
//     the block's single reference to that message;
//   * ctx.send() CONSUMES the reference — the transport either encodes the
//     frame immediately (rt) or holds the message and releases after
//     delivery (sim, FakeNet); the sender must not touch the run after
//     send();
//   * decode() allocates a fresh block for long runs on the receiving side;
//     the transport releases it (release_body) once the handler returns —
//     engines copy commands out inside on_message and never retain refs;
//   * encode_into() writes a pooled run's commands STRAIGHT from the pool
//     block into the destination (an SPSC slot, a pooled sim event body) —
//     the body is read exactly once at encode and never copied again, which
//     is why send paths release it immediately after encoding.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "consensus/batch.hpp"
#include "consensus/message.hpp"

namespace ci::wire {

// Largest fixed-field region among the batched frame kinds (the codec
// writes commands immediately after it).
inline constexpr std::size_t kMaxBatchFixedBytes = std::max({
    offsetof(consensus::Phase2BatchReq, run),
    offsetof(consensus::Phase2BatchAcked, run),
    offsetof(consensus::Phase1BatchResp, run),
    offsetof(consensus::OpxBatchAcceptReq, run),
    offsetof(consensus::OpxBatchLearn, run),
    offsetof(consensus::OpxPrepareBatchResp, run),
    offsetof(consensus::OpxWindowBody, run),
    offsetof(consensus::OpxLearnRun, run),
});

// Upper bound on any encoded frame: either a full-capacity batched frame or
// the largest contiguous payload. Transport buffers and queue sizing derive
// from this — NOT from sizeof(Message), which no longer bounds a frame now
// that command runs live out of line.
inline constexpr std::size_t kMaxFrameBytes =
    consensus::kMessageHeaderBytes +
    std::max(sizeof(consensus::Message::Payload),
             kMaxBatchFixedBytes + static_cast<std::size_t>(consensus::kMaxCommandsPerBatch) *
                                       sizeof(consensus::Command));

// Encoded size of `m`'s frame (== consensus::wire_size).
inline std::size_t frame_size(const consensus::Message& m) { return consensus::wire_size(m); }

// Per-thread send-path copy accounting: every FrameWriter::append bumps
// these, so tests can pin "bytes copied == frame bytes" — exactly one pass,
// source fields to destination memory, per encoded frame (the WireBudgets
// suite asserts the bound).
struct CopyStats {
  std::uint64_t bytes = 0;
  std::uint64_t appends = 0;
  void reset() { *this = CopyStats{}; }
};
CopyStats& copy_stats();

// Destination-agnostic frame sink. encode_into() appends the stamped header
// and the payload fields straight into wherever the transport wants the
// frame — an rt SPSC slot span (rt::SlotFrameWriter), a pooled SimNet event
// body, a backlog vector — so the encode IS the only copy; there is no
// intermediate stack Message or scratch buffer. Appends arrive in wire
// order and their sizes sum to the frame length the encode call returns.
class FrameWriter {
 public:
  virtual ~FrameWriter() = default;

  void append(const void* data, std::size_t n) {
    CopyStats& s = copy_stats();
    s.bytes += n;
    s.appends++;
    do_append(data, n);
  }

 private:
  virtual void do_append(const void* data, std::size_t n) = 0;
};

// FrameWriter over a contiguous buffer (capacity >= kMaxFrameBytes).
class BufferWriter final : public FrameWriter {
 public:
  explicit BufferWriter(unsigned char* buf) : buf_(buf) {}
  std::uint32_t written() const { return n_; }

 private:
  void do_append(const void* data, std::size_t n) override;

  unsigned char* buf_;
  std::uint32_t n_ = 0;
};

// Encodes `m` into `w` with src/dst stamped into the frame header (the
// in-memory message is not touched — transports stamp at encode time, so
// the same Message can be encoded toward several destinations). Returns the
// frame length. Does NOT release a pooled body — callers that consume the
// message (transport send paths) pair this with release_body().
std::uint32_t encode_into(const consensus::Message& m, FrameWriter& w,
                          consensus::NodeId src, consensus::NodeId dst);

// Encodes `m` into `buf` (capacity >= kMaxFrameBytes); returns the frame
// length. Header src/dst are taken from the message unchanged. Same custody
// note as encode_into.
std::uint32_t encode(const consensus::Message& m, unsigned char* buf);

// Decodes a frame. Returns false on anything malformed — short buffers,
// unknown types, bogus counts, truncated command runs — without leaking
// pool blocks. On success *out owns any pooled body decode allocated.
bool try_decode(const unsigned char* buf, std::size_t n, consensus::Message* out);

// Returns the pooled body (if any) of a message back to the pool. The
// transport-side half of the custody rules above; harmless on messages
// whose run is inline or absent.
void release_body(const consensus::Message& m);

// Largest frame a deployment with this batch policy can put on the wire:
// a commands_cap()-sized batched frame or a reconfiguration entry frame,
// whichever is bigger. rt queue/stack sizing uses this instead of
// sizeof(Message).
std::uint32_t max_frame_bytes(const consensus::BatchPolicy& policy);

}  // namespace ci::wire
