// Transport-agnostic protocol engines.
//
// Every protocol (2PC, Basic-/Multi-Paxos, 1Paxos, PaxosUtility, clients) is
// a deterministic state machine driven by on_message() and tick(). The same
// engine code runs under the discrete-event simulator (property tests,
// full-scale sweeps) and the real pinned-core runtime (latency benches) —
// only the Context implementation differs.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "consensus/batch.hpp"
#include "consensus/message.hpp"
#include "consensus/state_machine.hpp"
#include "consensus/types.hpp"

namespace ci::consensus {

// Services a runtime provides to an engine. All calls are made from the
// engine's own node; engines never share state across nodes.
class Context {
 public:
  virtual ~Context() = default;

  virtual NodeId self() const = 0;
  virtual Nanos now() const = 0;

  // Queues a message. dst == self() is legal and delivered locally without
  // crossing a node boundary (collapsed-roles deployments rely on it).
  virtual void send(NodeId dst, const Message& m) = 0;

  // Reports a decided-and-executed log entry to the hosting runtime, in
  // instance order. Tests use this to check agreement invariants.
  virtual void deliver(Instance in, const Command& cmd) = 0;
};

struct EngineConfig {
  NodeId self = kNoNode;
  std::int32_t num_replicas = 3;

  // Timeouts. Defaults suit the many-core regime (microsecond latencies);
  // LAN-model simulations scale them up.
  Nanos retry_timeout = 200 * kMicrosecond;      // resend unacked protocol messages
  Nanos fd_timeout = 1 * kMillisecond;           // suspect leader after silence
  Nanos heartbeat_period = 200 * kMicrosecond;   // leader heartbeat interval

  // Max outstanding (proposed, not yet decided) instances per leader. Kept
  // at half kMaxProposalsPerMsg so one reconfiguration entry can carry the
  // union of two uncommitted windows.
  std::int32_t pipeline_window = kMaxProposalsPerMsg / 2;

  // Leader-side request batching (consensus/batch.hpp). The default
  // (max_commands == 1) reproduces unbatched behavior bit for bit.
  BatchPolicy batch;

  // Leader leases (DESIGN.md §1f). lease_duration > 0 makes heartbeats
  // carry lease renewal rounds: each follower grants "I will not elect or
  // support another leader for lease_duration from my receive time", and a
  // leader holding unexpired grants from a majority answers Op::kRead /
  // Op::kReadVersioned from its applied state machine without a log entry.
  // The leader discounts every grant by lease_epsilon against its OWN send
  // time, so correctness needs only bounded relative clock-rate skew (the
  // follower's lease_duration must not elapse faster than the leader's
  // lease_duration - lease_epsilon). 0 = leases off: no grants, no fast
  // path, wire traffic bit-identical to the pre-lease system.
  Nanos lease_duration = 0;
  Nanos lease_epsilon = 0;

  // Applied state machine; may be null (agreement only).
  StateMachine* state_machine = nullptr;

  // Seed for engine-local randomization (timeout jitter); keyed per node by
  // runtimes so simulations stay deterministic.
  std::uint64_t seed = 1;
};

class Engine {
 public:
  virtual ~Engine() = default;

  // Called once before any message is delivered.
  virtual void start(Context&) {}

  virtual void on_message(Context& ctx, const Message& m) = 0;

  // Called periodically by the runtime (tick interval is a runtime choice);
  // drives timeouts and retries.
  virtual void tick(Context&) {}

  // Test/bench introspection: which node this engine currently believes
  // coordinates the protocol (leader / 2PC coordinator).
  virtual NodeId believed_leader() const { return kNoNode; }
};

// Convenience: all replica node ids are [0, num_replicas).
inline bool is_replica(const EngineConfig& cfg, NodeId n) {
  return n >= 0 && n < cfg.num_replicas;
}

inline std::int32_t majority(std::int32_t num_replicas) { return num_replicas / 2 + 1; }

}  // namespace ci::consensus
