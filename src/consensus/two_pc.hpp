// Two-phase commit in its agreement form, as used by Barrelfish and
// described in paper §2.2.
//
// The coordinator (a fixed replica, core 0 in the paper) drives one
// prepare/ack + commit/commit-ack exchange per client command. It needs
// responses from *all* replicas in both phases — the protocol is blocking:
// one slow replica halts every in-flight round (§2.2, §7.6). There is no
// coordinator takeover, faithfully to the baseline.
//
// Rounds for different instances pipeline up to EngineConfig::pipeline_window
// (agreement on a log, as in Barrelfish's replicated capability state);
// locking is per instance, and the joint-deployment read optimization
// (§7.5) asks a replica whether any instance is between the two phases via
// has_prepared_uncommitted().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "consensus/engine.hpp"
#include "consensus/log.hpp"
#include "consensus/state_machine.hpp"

namespace ci::consensus {

struct TwoPcConfig {
  EngineConfig base;
  NodeId coordinator = 0;
};

// The two phases every 2PC round walks: fan out prepares, collect the
// votes, fan out the decision, collect the acks. Shared by the single-group
// engine below (participants = replicas) and the cross-group transaction
// coordinator built on top of replicated groups (participants = groups;
// client/txn.hpp) — the §2.2 layering reuses the round structure one level
// up.
enum class TwoPcPhase : std::uint8_t { kPreparing, kCommitting };

class TwoPcEngine final : public Engine {
 public:
  explicit TwoPcEngine(const TwoPcConfig& cfg);

  void start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void tick(Context& ctx) override;
  NodeId believed_leader() const override { return cfg_.coordinator; }

  // True while some instance on this replica is locked between prepare and
  // commit — the window during which joint-mode local reads must stall.
  bool has_prepared_uncommitted() const { return !prepared_.empty(); }

  const ReplicatedLog& log() const { return log_; }
  std::uint64_t committed_rounds() const { return committed_rounds_; }

 private:
  using Phase = TwoPcPhase;

  struct Round {
    Command cmd;
    Phase phase = Phase::kPreparing;
    std::uint64_t ack_mask = 0;  // replicas that ack'd the current phase
    Nanos last_send = 0;
    bool has_client = false;
  };

  bool is_coordinator() const { return cfg_.base.self == cfg_.coordinator; }
  void pump_rounds(Context& ctx);
  void begin_round(Context& ctx, Instance in, const Command& cmd, bool has_client);
  void broadcast_commit(Context& ctx, Instance in, Round& r);
  void handle_prepare(Context& ctx, const Message& m);
  void handle_commit(Context& ctx, const Message& m);
  void on_executed(Context& ctx, Instance in, const Command& cmd);

  std::uint64_t all_replicas_mask() const { return (1ULL << cfg_.base.num_replicas) - 1; }

  TwoPcConfig cfg_;
  ReplicatedLog log_;
  Executor executor_;

  // Coordinator state.
  std::deque<Command> pending_;
  std::map<Instance, Round> rounds_;  // in-flight, ordered by instance
  Instance next_instance_ = 0;
  std::uint64_t committed_rounds_ = 0;

  // Participant state: instances locked by a prepare, awaiting commit.
  std::unordered_map<Instance, Command> prepared_;

  // Replies owed to clients, by instance (coordinator only).
  std::unordered_map<Instance, Command> advocated_;
  std::unordered_map<Instance, std::uint64_t> results_;
};

}  // namespace ci::consensus
