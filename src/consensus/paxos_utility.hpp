// PaxosUtility — the small configuration consensus 1Paxos falls back to for
// replacing its leader or its single active acceptor (paper §5.2–5.4).
//
// It is an ordinary Basic-Paxos over a sequence of UtilityEntry values
// (LeaderChange / AcceptorChange), run among the same replica nodes: "running
// PaxosUtility does not require any extra nodes". Entries are rare (only on
// failures), so no stable-leader optimization is needed — every proposal
// runs both phases.
//
// This is a component embedded in OnePaxosEngine rather than a standalone
// Engine: the owner routes ProtoId::kUtility messages here and receives
// decided entries through a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "consensus/engine.hpp"
#include "consensus/synod.hpp"

namespace ci::consensus {

class PaxosUtility {
 public:
  // on_decided(ctx, index, entry) fires exactly once per decided index, in
  // index order over the contiguous prefix (the owner reacts to
  // LeaderChange/AcceptorChange relevant to it).
  using DecidedCb = std::function<void(Context&, Instance, const UtilityEntry&)>;
  // Proposal outcome: success == our entry was chosen at the instance we
  // targeted. On failure the caller re-reads the log and retries.
  using ProposeCb = std::function<void(Context&, bool)>;

  PaxosUtility(const EngineConfig& cfg, DecidedCb on_decided);

  // Installs the initial configuration as already-decided entries on every
  // node (Appendix B's initialization step, done deterministically instead
  // of with startup messages).
  void bootstrap(NodeId initial_leader, NodeId initial_acceptor);

  // Starts consensus for `entry`. `at_instance` anchors the proposal to the
  // caller's snapshot of the log (Fig. 12 lines 3/27: lastLeader /
  // lastActiveAcceptor return the index to propose at): if the log moved in
  // the meantime — someone else inserted an entry — the proposal FAILS and
  // the caller re-reads, which is what makes snapshot+propose atomic.
  // kNoInstance means "next locally-unknown index".
  // Returns false if a proposal is already in flight (callers retry from
  // tick()). The callback may fire synchronously when the outcome is
  // already known.
  bool propose(Context& ctx, const UtilityEntry& entry, ProposeCb cb,
               Instance at_instance = kNoInstance);

  // The caller's snapshot anchor: the next undecided index in this node's
  // view of the utility log.
  Instance next_instance() const { return static_cast<Instance>(first_gap_); }

  bool propose_in_flight() const { return proposal_.has_value(); }

  // The node that inserted the last decided LeaderChange (the Global leader
  // of Appendix B). Returns kNoNode if none.
  NodeId last_leader(Instance* index = nullptr) const;

  // The last decided AcceptorChange: the Global acceptor, plus the
  // uncommitted proposals attached to it (for registerProposals).
  struct AcceptorInfo {
    NodeId acceptor = kNoNode;
    Instance index = kNoInstance;
    const UtilityEntry* entry = nullptr;  // owned by the utility log
  };
  AcceptorInfo last_active_acceptor() const;

  void on_message(Context& ctx, const Message& m);
  void tick(Context& ctx);

  Instance decided_count() const { return static_cast<Instance>(first_gap_); }
  const UtilityEntry* decided(Instance idx) const;

 private:
  struct InFlight {
    Instance instance = kNoInstance;
    ProposalNum pn;
    UtilityEntry own;    // what the owner wants decided
    UtilityEntry value;  // what we actually propose (may be adopted)
    bool constrained = false;
    ProposalNum highest_accepted;
    std::uint64_t promise_mask = 0;
    Nanos last_send = 0;
    ProposeCb cb;
  };

  void start_phase1(Context& ctx);
  void start_phase2(Context& ctx);
  void learn(Context& ctx, Instance in, const UtilityEntry& entry);
  ProposalNum next_ballot();

  EngineConfig cfg_;
  DecidedCb on_decided_;

  std::vector<std::optional<UtilityEntry>> decided_;
  std::size_t first_gap_ = 0;

  std::map<Instance, SynodAcceptor<UtilityEntry>> acceptors_;
  std::map<Instance, SynodLearner> learners_;
  std::optional<InFlight> proposal_;
  std::int64_t ballot_counter_ = 0;
};

}  // namespace ci::consensus
